// Multistream: the serving-layer counterpart of examples/multifunction.
// Where multifunction splits the machine *statically* (each pipeline gets
// half the cores up front), this example runs several streams truly
// concurrently — one goroutine per engine over a shared bounded worker
// pool — and lets the global controller re-divide the modeled 8-core
// machine between them from their per-frame Triple-C predictions.
//
// The third stream is deliberately given a tight latency budget so its
// predicted core need exceeds any fair share: the controller responds by
// shifting cores toward it and, when the aggregate demand still exceeds the
// machine, shedding load (serial fallback, then alternate-frame skipping)
// instead of letting every stream's latency collapse.
//
// Run with:
//
//	go run ./examples/multistream
package main

import (
	"fmt"
	"log"
	"strings"

	"triplec/internal/experiments"
	"triplec/internal/metrics"
	"triplec/internal/sched"
	"triplec/internal/stream"
)

func main() {
	study := experiments.DefaultStudy()
	study.TrainSeqs = 4
	study.TrainFrames = 60

	fmt.Println("training the shared Triple-C models once...")
	mkStream := func(name string, seed uint64, budgetMs float64) stream.Config {
		p, err := study.TrainPredictor()
		if err != nil {
			log.Fatal(err)
		}
		mgr, err := sched.NewManager(p, study.Arch)
		if err != nil {
			log.Fatal(err)
		}
		mgr.Sticky = true
		eng, err := study.Engine()
		if err != nil {
			log.Fatal(err)
		}
		seq, err := study.Sequence(seed)
		if err != nil {
			log.Fatal(err)
		}
		return stream.Config{
			Name:        name,
			Engine:      eng,
			Manager:     mgr,
			Source:      experiments.Source(seq),
			FramePixels: study.FramePixels(),
			BudgetMs:    budgetMs,
		}
	}

	cfgs := []stream.Config{
		mkStream("lab-A", 101, 0), // budget from first frame
		mkStream("lab-B", 202, 0),
		mkStream("lab-C-tight", 303, 8), // deliberately infeasible deadline
	}
	reg := metrics.NewRegistry()
	srv, err := stream.NewServer(stream.ServerConfig{RebalanceEvery: 4, Metrics: reg}, cfgs)
	if err != nil {
		log.Fatal(err)
	}

	const frames = 120
	fmt.Printf("serving %d streams x %d frames concurrently...\n\n", len(cfgs), frames)
	res, err := srv.Run(frames)
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range res.Streams {
		st := s.Stats
		fmt.Printf("%-12s budget %6.1f ms | processed %3d, skipped %2d, serial-fallback %2d | mean %6.1f ms, worst %6.1f ms, miss rate %4.0f%%\n",
			st.Name, st.BudgetMs, st.Processed, st.Skipped, st.SerialFallbacks,
			st.MeanLatencyMs, st.WorstLatencyMs, 100*st.MissRate())
	}
	fmt.Printf("\naggregate %.1f frames/s, %d controller rebalances, final core split %v over the modeled %d-core machine\n",
		res.AggregateFPS, res.Rebalances, res.FinalBudgets, study.Arch.NumCPUs)

	// The merged trace lines every stream's series up frame by frame: show
	// the per-stream core allocation the controller converged to.
	merged, err := res.MergedTrace()
	if err != nil {
		log.Fatal(err)
	}
	chart, err := merged.Chart(64, 8, "lab-A_cores", "lab-C-tight_cores")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncore allocation over time (lab-A vs lab-C-tight):\n%s", chart)

	// The same run also populated the live telemetry layer: print the
	// prediction-error summary every stream's accountant collected — the
	// paper's "statistical information of the differences between the
	// actually consumed resources and the predicted values", live.
	fmt.Println("\nprediction-error accounting (from the metrics registry):")
	for _, h := range srv.Healths() {
		fmt.Printf("%-12s state %-5s | scenario hit rate %3.0f%% | mean latency %6.1f ms, p95 %6.1f ms\n",
			h.Stream, h.State, 100*h.ScenarioHitRate, h.MeanLatencyMs, h.P95LatencyMs)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "triplec_prediction_abs_error_ms_count") ||
			strings.HasPrefix(line, "triplec_scenario_predictions_") {
			fmt.Println(line)
		}
	}
}

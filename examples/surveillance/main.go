// Surveillance: the paper's conclusion suggests the Triple-C techniques
// "can potentially be used for alternative applications using image
// analysis, such as in surveillance systems". This example models a
// surveillance analytics pipeline — background subtraction, blob detection
// and per-object tracking — whose load depends on how many objects cross
// the scene, and shows that the same EWMA + Markov machinery predicts its
// computation time.
//
// Run with:
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"math"

	"triplec/internal/core"
	"triplec/internal/stats"
)

// sceneLoad synthesizes the per-frame computation time (ms) of the
// surveillance pipeline: a constant background-subtraction share, a blob
// detection share that follows the slowly varying scene activity, and a
// tracking share proportional to the current object count (which follows a
// birth/death process — short-term correlated, like the paper's CPLS task).
func sceneLoad(seed uint64, frames int) []float64 {
	rng := stats.NewRNG(seed)
	series := make([]float64, frames)
	objects := 3.0
	for i := range series {
		// Slow diurnal-style activity drift (long-term part).
		activity := 1 + 0.5*math.Sin(2*math.Pi*float64(i)/240)
		// Object birth/death keeps short-term correlation.
		objects += rng.Norm(0, 0.6)
		if objects < 0 {
			objects = 0
		}
		if objects > 12 {
			objects = 12
		}
		const bgSubMs, blobMsPerAct, trackMsPerObj = 4.0, 3.0, 1.2
		series[i] = bgSubMs + blobMsPerAct*activity + trackMsPerObj*objects + rng.Norm(0, 0.2)
		if series[i] < 0 {
			series[i] = 0
		}
	}
	return series
}

func main() {
	// Train on a few independent scenes, evaluate on a fresh one — the
	// exact procedure the paper uses for the medical tasks.
	var trainSets [][]float64
	for s := uint64(1); s <= 5; s++ {
		trainSets = append(trainSets, sceneLoad(s, 600))
	}
	model, err := core.NewEWMAMarkovModel(trainSets, 0.15, 10, "SURV")
	if err != nil {
		log.Fatal(err)
	}

	test := sceneLoad(77, 600)
	model.ResetOnline()
	var preds, acts []float64
	for i, x := range test {
		if i > 0 {
			preds = append(preds, model.Predict(core.Context{}))
			acts = append(acts, x)
		}
		model.Observe(core.Context{}, x)
	}
	mape, err := stats.MeanAbsPercentError(preds, acts)
	if err != nil {
		log.Fatal(err)
	}
	worst, err := stats.MaxAbsPercentError(preds, acts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("surveillance analytics load prediction (EWMA + Markov, Table 2b machinery)")
	fmt.Printf("  test scene: %d frames, load %.1f..%.1f ms (mean %.1f)\n",
		len(test), stats.Min(test), stats.Max(test), stats.Mean(test))
	fmt.Printf("  mean prediction accuracy %.1f%%, worst excursion %.0f%%\n",
		100*(1-mape), 100*worst)

	// Show a window of the series against its predictions.
	fmt.Printf("\n%8s %12s %12s\n", "frame", "actual(ms)", "predicted")
	for i := 100; i < 120; i++ {
		fmt.Printf("%8d %12.2f %12.2f\n", i, acts[i], preds[i])
	}

	// A naive mean predictor for contrast.
	mean := stats.Mean(trainSets[0])
	naive := make([]float64, len(acts))
	for i := range naive {
		naive[i] = mean
	}
	nm, _ := stats.MeanAbsPercentError(naive, acts)
	fmt.Printf("\nnaive mean-of-training predictor accuracy: %.1f%% — the scenario-aware model wins\n", 100*(1-nm))
}

// Quickstart: generate a synthetic X-ray angiography sequence, run the
// motion-compensated feature-enhancement pipeline over it, and print the
// per-frame scenario, latency and an ASCII rendering of the enhanced stent
// view.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"triplec/internal/frame"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/synth"
)

func main() {
	// A 128x128 synthetic sequence with all the paper's dynamics: contrast
	// bursts, marker dropouts, breathing and cardiac motion, clutter.
	cfg := synth.DefaultConfig(7)
	cfg.Width, cfg.Height = 128, 128
	cfg.MarkerSpacing = 36
	seq, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The pipeline engine models the paper's dual quad-core platform and
	// extrapolates task costs to the clinical 1024x1024 geometry.
	eng, err := pipeline.New(pipeline.Config{
		Width: 128, Height: 128,
		MarkerSpacing: cfg.MarkerSpacing,
		Arch:          platform.Blackford(),
	})
	if err != nil {
		log.Fatal(err)
	}

	var lastOutput *frame.Frame
	fmt.Printf("%6s %-28s %12s %10s %s\n", "frame", "scenario", "latency(ms)", "candidates", "registration")
	for i := 0; i < 30; i++ {
		f, _ := seq.Frame(i)
		rep, err := eng.Process(f, nil)
		if err != nil {
			log.Fatal(err)
		}
		regState := "fail"
		if rep.Registration.OK {
			regState = fmt.Sprintf("ok (dx=%+.1f dy=%+.1f)", rep.Registration.DX, rep.Registration.DY)
		}
		fmt.Printf("%6d %-28s %12.1f %10d %s\n",
			rep.Index, rep.Scenario.String(), rep.LatencyMs, rep.Candidates, regState)
		if rep.Output != nil {
			lastOutput = rep.Output
		}
	}

	if lastOutput != nil {
		fmt.Println("\nenhanced stent view (temporal integration, ASCII):")
		fmt.Print(frame.RenderASCII(lastOutput, 56, 28))
	} else {
		fmt.Println("\nno enhanced output produced in 30 frames")
	}
}

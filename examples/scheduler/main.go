// Scheduler: the paper's Section 6 workflow end to end — train the Triple-C
// predictor on a profiling corpus, then let the runtime manager repartition
// the flow graph on the fly and compare against the straightforward static
// mapping (the paper's Fig. 7).
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"triplec/internal/experiments"
	"triplec/internal/sched"
	"triplec/internal/stats"
)

func main() {
	study := experiments.DefaultStudy()
	study.TrainSeqs = 4
	study.TrainFrames = 60

	fmt.Println("step 1 — profiling & training (the paper's 37-sequence corpus, scaled down)")
	predictor, err := study.TrainPredictor()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(predictor.ModelSummary())

	fmt.Println("step 2 — straightforward mapping (static, serial)")
	seq, err := study.Sequence(31415)
	if err != nil {
		log.Fatal(err)
	}
	src := experiments.Source(seq)
	const frames = 120
	eng1, err := study.Engine()
	if err != nil {
		log.Fatal(err)
	}
	_, straight, err := sched.RunStraightforward(eng1, frames, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  latency %.0f..%.0f ms (mean %.1f)\n",
		stats.Min(straight), stats.Max(straight), stats.Mean(straight))

	fmt.Println("step 3 — semi-automatic parallelization (prediction-driven repartitioning)")
	mgr, err := sched.NewManager(predictor, study.Arch)
	if err != nil {
		log.Fatal(err)
	}
	eng2, err := study.Engine()
	if err != nil {
		log.Fatal(err)
	}
	managed, err := sched.RunManaged(eng2, mgr, frames, src, study.FramePixels())
	if err != nil {
		log.Fatal(err)
	}
	repartitions := 0
	for _, d := range managed.Decisions {
		if d.Repartition {
			repartitions++
		}
	}
	fmt.Printf("  budget %.1f ms, output latency %.0f..%.0f ms, %d repartitions\n",
		mgr.BudgetMs, stats.Min(managed.Output), stats.Max(managed.Output), repartitions)

	cmp, err := sched.Summarize(straight, managed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsummary (paper Fig. 7):")
	fmt.Printf("  worst-vs-average gap: straightforward %.0f%% -> semi-auto %.0f%% (paper: 85%% -> 20%%)\n",
		100*cmp.StraightWorstVsAvg, 100*cmp.ManagedWorstVsAvg)
	fmt.Printf("  jitter reduction:     %.0f%% (paper: ~70%%)\n", 100*cmp.JitterReduction)
	fmt.Printf("  budget overruns:      %.0f%% of frames\n", 100*cmp.OverrunRate)
}

// StentBoost: the full medical application of the paper — motion-
// compensated stent enhancement over a long angiography run. The example
// tracks how well the analysis chain recovers the ground-truth markers,
// writes the input and enhanced frames as 16-bit PGM images, and reports
// the enhancement's noise reduction.
//
// Run with:
//
//	go run ./examples/stentboost [output-dir]
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"triplec/internal/frame"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/stats"
	"triplec/internal/synth"
)

func main() {
	outDir := "stentboost-out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	cfg := synth.DefaultConfig(99)
	cfg.Width, cfg.Height = 192, 192
	cfg.MarkerSpacing = 48
	cfg.NoiseSigma = 400
	cfg.QuantumGain = 0
	cfg.ClutterRate = 1.5
	cfg.DropoutEvery = 0 // a clean acquisition for the showcase
	seq, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pipeline.New(pipeline.Config{
		Width: cfg.Width, Height: cfg.Height,
		MarkerSpacing: cfg.MarkerSpacing,
		Arch:          platform.Blackford(),
	})
	if err != nil {
		log.Fatal(err)
	}

	const frames = 60
	var allErrs, acceptedErrs []float64
	var lastInput, lastOutput, lastAnnotated *frame.Frame
	enhanced := 0
	for i := 0; i < frames; i++ {
		f, truth := seq.Frame(i)
		rep, err := eng.Process(f, nil)
		if err != nil {
			log.Fatal(err)
		}
		lastInput = f
		// Annotated view: detected couple crosses + estimated ROI box.
		if rep.Couple != nil {
			annotated := f.Clone()
			frame.DrawCross(annotated, int(rep.Couple.A.X), int(rep.Couple.A.Y), 5, 0xFFFF)
			frame.DrawCross(annotated, int(rep.Couple.B.X), int(rep.Couple.B.Y), 5, 0xFFFF)
			frame.DrawLine(annotated, int(rep.Couple.A.X), int(rep.Couple.A.Y),
				int(rep.Couple.B.X), int(rep.Couple.B.Y), 0xFFFF)
			if !rep.ROI.Empty() {
				frame.DrawRectOutline(annotated, rep.ROI, 0xFFFF)
			}
			lastAnnotated = annotated
		}
		if rep.Output != nil {
			lastOutput = rep.Output
			enhanced++
		}
		// Tracking accuracy: distance between the selected couple and the
		// ground-truth markers (order-insensitive).
		if rep.Couple != nil && truth.MarkersVisible {
			c := rep.Couple
			d1 := math.Hypot(c.A.X-truth.MarkerA[0], c.A.Y-truth.MarkerA[1]) +
				math.Hypot(c.B.X-truth.MarkerB[0], c.B.Y-truth.MarkerB[1])
			d2 := math.Hypot(c.A.X-truth.MarkerB[0], c.A.Y-truth.MarkerB[1]) +
				math.Hypot(c.B.X-truth.MarkerA[0], c.B.Y-truth.MarkerA[1])
			e := math.Min(d1, d2) / 2
			allErrs = append(allErrs, e)
			if rep.Registration.OK {
				acceptedErrs = append(acceptedErrs, e)
			}
		}
	}

	fmt.Printf("processed %d frames; %d enhanced outputs\n", frames, enhanced)
	if len(allErrs) > 0 {
		fmt.Printf("marker tracking (all couples):        %d frames, mean error %.2f px\n",
			len(allErrs), stats.Mean(allErrs))
	}
	if len(acceptedErrs) > 0 {
		// Wrong couples picked during contrast bursts fail the motion
		// criterion; only registration-accepted couples feed the
		// enhancement, so this is the error that matters clinically.
		fmt.Printf("marker tracking (registration-accepted): %d frames, mean error %.2f px, max %.2f px\n",
			len(acceptedErrs), stats.Mean(acceptedErrs), stats.Max(acceptedErrs))
	}

	if lastInput != nil {
		path := filepath.Join(outDir, "input.pgm")
		if err := frame.SavePGM(path, lastInput); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	if lastAnnotated != nil {
		path := filepath.Join(outDir, "annotated.pgm")
		if err := frame.SavePGM(path, lastAnnotated); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	if lastOutput != nil {
		path := filepath.Join(outDir, "enhanced.pgm")
		if err := frame.SavePGM(path, lastOutput); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)

		// Noise comparison: pixel standard deviation in a background region
		// of the single frame vs the temporally integrated view.
		fmt.Printf("background noise: input sigma %.0f vs enhanced sigma %.0f (temporal integration)\n",
			regionStdDev(lastInput, frame.R(8, 8, 40, 40)),
			regionStdDev(lastOutput, frame.R(8, 8, 40, 40)))
	}
}

// regionStdDev returns the pixel standard deviation within r.
func regionStdDev(f *frame.Frame, r frame.Rect) float64 {
	sub := f.SubFrame(r)
	var vals []float64
	for y := sub.Bounds.Y0; y < sub.Bounds.Y1; y++ {
		for _, v := range sub.Row(y) {
			vals = append(vals, float64(v))
		}
	}
	return stats.StdDev(vals)
}

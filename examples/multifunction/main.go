// Multifunction: the paper's motivating goal — "a multitude of imaging
// functions is carried out in parallel" on one off-the-shelf multiprocessor
// (Section 2) and Triple-C's predictions make that sharing safe (Section 6).
// Two stent-enhancement pipelines each receive half of the 8-core machine;
// the example shows both meeting their latency budgets, the Gantt timeline
// of a frame, and the bandwidth-side feasibility check.
//
// Run with:
//
//	go run ./examples/multifunction
package main

import (
	"fmt"
	"log"

	"triplec/internal/bandwidth"
	"triplec/internal/experiments"
	"triplec/internal/flowgraph"
	"triplec/internal/memmodel"
	"triplec/internal/qos"
	"triplec/internal/sched"
	"triplec/internal/stats"
)

func main() {
	study := experiments.DefaultStudy()
	study.TrainSeqs = 4
	study.TrainFrames = 60

	fmt.Println("training the shared Triple-C models once...")
	mkApp := func(name string, seed uint64) sched.App {
		p, err := study.TrainPredictor()
		if err != nil {
			log.Fatal(err)
		}
		mgr, err := sched.NewManager(p, study.Arch)
		if err != nil {
			log.Fatal(err)
		}
		if err := mgr.SetCoreBudget(study.Arch.NumCPUs / 2); err != nil {
			log.Fatal(err)
		}
		mgr.Sticky = true
		eng, err := study.Engine()
		if err != nil {
			log.Fatal(err)
		}
		seq, err := study.Sequence(seed)
		if err != nil {
			log.Fatal(err)
		}
		return sched.App{
			Name: name, Engine: eng, Manager: mgr,
			Source: experiments.Source(seq), FramePixels: study.FramePixels(),
		}
	}

	apps := []sched.App{mkApp("lab-A stent enhancement", 101), mkApp("lab-B stent enhancement", 202)}
	const frames = 100
	res, err := sched.RunMultiApp(apps, frames)
	if err != nil {
		log.Fatal(err)
	}

	for i, app := range apps {
		r := res.PerApp[i]
		gap, err := qos.WorstVsAverage(r.Output)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d cores, budget %.1f ms, output %.0f..%.0f ms, worst-vs-avg %.0f%%, overruns %.0f%%\n",
			app.Name, app.Manager.CoreBudget(), r.Regulator.BudgetMs,
			stats.Min(r.Output), stats.Max(r.Output),
			100*gap, 100*r.Regulator.OverrunRate(r.Processing))
	}

	// One frame's Gantt across the shared machine: app A on cores 0..3,
	// app B on cores 4..7.
	mid := frames / 2
	tlA, err := sched.BuildTimeline(res.PerApp[0].Reports[mid], study.Arch.NumCPUs, 0)
	if err != nil {
		log.Fatal(err)
	}
	tlB, err := sched.BuildTimeline(res.PerApp[1].Reports[mid], study.Arch.NumCPUs, study.Arch.NumCPUs/2)
	if err != nil {
		log.Fatal(err)
	}
	tlA.Intervals = append(tlA.Intervals, tlB.Intervals...)
	if tlB.MakespanMs > tlA.MakespanMs {
		tlA.MakespanMs = tlB.MakespanMs
	}
	if err := tlA.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframe %d across the shared 8-core machine:\n%s", mid, tlA.Render(64))

	// Bandwidth side: how many instances does the 29 GB/s memory sustain?
	an, err := bandwidth.Analyze(flowgraph.WorstCase(), memmodel.PaperFrameKB,
		study.Arch.L2.SizeBytes/1024, 30)
	if err != nil {
		log.Fatal(err)
	}
	n, err := bandwidth.MaxConcurrentInstances(an, study.Arch.MemBWGBs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbandwidth check: worst-case scenario needs %.1f GB/s; the %.0f GB/s bus sustains %d instances\n",
		an.TotalMBs()/1024, study.Arch.MemBWGBs, n)
}

package memmodel_test

import (
	"fmt"

	"triplec/internal/memmodel"
	"triplec/internal/tasks"
)

// ExampleLookup shows the Table 1 row of RDG FULL at the paper's geometry.
func ExampleLookup() {
	req, err := memmodel.Lookup(tasks.NameRDGFull, true, memmodel.PaperFrameKB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("input=%d intermediate=%d output=%d total=%d KB\n",
		req.InputKB, req.IntermediateKB, req.OutputKB, req.TotalKB())
	// Output:
	// input=2048 intermediate=7168 output=5120 total=14336 KB
}

// ExampleIntraTaskOverflowKB shows which tasks overflow the 4 MB L2.
func ExampleIntraTaskOverflowKB() {
	over, err := memmodel.IntraTaskOverflowKB(memmodel.PaperFrameKB, 4096)
	if err != nil {
		panic(err)
	}
	fmt.Println("RDG FULL overflow:", over[tasks.NameRDGFull], "KB")
	// Output:
	// RDG FULL overflow: 10240 KB
}

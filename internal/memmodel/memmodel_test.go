package memmodel

import (
	"testing"
	"testing/quick"

	"triplec/internal/tasks"
)

func TestFrameKBPaperGeometry(t *testing.T) {
	if got := FrameKB(1024, 1024); got != 2048 {
		t.Fatalf("FrameKB(1024,1024) = %d, want 2048", got)
	}
	if got := FrameKB(512, 512); got != 512 {
		t.Fatalf("FrameKB(512,512) = %d, want 512", got)
	}
}

// TestTable1Verbatim checks every number of the paper's Table 1 at the
// 1024x1024 geometry.
func TestTable1Verbatim(t *testing.T) {
	rows, err := Table(PaperFrameKB)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		task         tasks.Name
		rdg          bool
		in, mid, out int
	}{
		{tasks.NameRDGFull, true, 2048, 7168, 5120},
		{tasks.NameRDGROI, true, 2048, 5120, 5120},
		{tasks.NameMKXExt, false, 512, 512, 2560},
		{tasks.NameMKXExt, true, 4608, 512, 2560},
		{tasks.NameENH, false, 2048, 8192, 1024},
		{tasks.NameZOOM, false, 1024, 4096, 4096},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Task != w.task || r.RDGSelected != w.rdg {
			t.Fatalf("row %d: got %s/%v, want %s/%v", i, r.Task, r.RDGSelected, w.task, w.rdg)
		}
		if r.InputKB != w.in || r.IntermediateKB != w.mid || r.OutputKB != w.out {
			t.Fatalf("row %d (%s): got %d/%d/%d, want %d/%d/%d",
				i, r.Task, r.InputKB, r.IntermediateKB, r.OutputKB, w.in, w.mid, w.out)
		}
	}
}

func TestLookupFeatureTasksNegligible(t *testing.T) {
	for _, task := range []tasks.Name{
		tasks.NameCPLSSel, tasks.NameREG, tasks.NameROIEst, tasks.NameGWExt, tasks.NameDetect,
	} {
		r, err := Lookup(task, false, PaperFrameKB)
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		if r.TotalKB() != 0 {
			t.Fatalf("%s: footprint %d KB, want 0", task, r.TotalKB())
		}
	}
}

func TestLookupUnknownTask(t *testing.T) {
	if _, err := Lookup(tasks.Name("NOPE"), false, 2048); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestLookupInvalidFrame(t *testing.T) {
	if _, err := Lookup(tasks.NameENH, false, 0); err == nil {
		t.Fatal("zero frameKB accepted")
	}
}

func TestMKXSwitchDependence(t *testing.T) {
	off, _ := Lookup(tasks.NameMKXExt, false, PaperFrameKB)
	on, _ := Lookup(tasks.NameMKXExt, true, PaperFrameKB)
	if on.InputKB <= off.InputKB {
		t.Fatal("MKX input must grow when RDG is selected")
	}
	if on.OutputKB != off.OutputKB || on.IntermediateKB != off.IntermediateKB {
		t.Fatal("only the MKX input depends on the switch")
	}
}

func TestScalesWithGeometry(t *testing.T) {
	small, _ := Lookup(tasks.NameRDGFull, true, 512)
	big, _ := Lookup(tasks.NameRDGFull, true, 2048)
	if big.TotalKB() != 4*small.TotalKB() {
		t.Fatalf("footprint must scale linearly: %d vs %d", big.TotalKB(), small.TotalKB())
	}
}

func TestTotalKB(t *testing.T) {
	r := Requirement{InputKB: 1, IntermediateKB: 2, OutputKB: 3}
	if r.TotalKB() != 6 {
		t.Fatal("TotalKB wrong")
	}
}

// TestIntraTaskOverflow reproduces the paper's Section 5 observation: at
// 1024x1024 against the 4 MB L2, exactly RDG FULL (and ROI), ENH and ZOOM
// overflow; MKX does not.
func TestIntraTaskOverflow(t *testing.T) {
	over, err := IntraTaskOverflowKB(PaperFrameKB, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, mustOverflow := range []tasks.Name{tasks.NameRDGFull, tasks.NameENH, tasks.NameZOOM} {
		if _, ok := over[mustOverflow]; !ok {
			t.Fatalf("%s must overflow the 4 MB L2 (paper Section 5)", mustOverflow)
		}
	}
	// RDG FULL: 14,336 KB total - 4,096 KB = 10,240 KB overflow.
	if over[tasks.NameRDGFull] != 2048+7168+5120-4096 {
		t.Fatalf("RDG FULL overflow = %d", over[tasks.NameRDGFull])
	}
}

func TestIntraTaskOverflowSmallFrames(t *testing.T) {
	// At 128x128 (32 KB frames) nothing overflows a 4 MB cache.
	over, err := IntraTaskOverflowKB(FrameKB(128, 128), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(over) != 0 {
		t.Fatalf("small frames must not overflow: %v", over)
	}
}

func TestIntraTaskOverflowInvalidCache(t *testing.T) {
	if _, err := IntraTaskOverflowKB(2048, 0); err == nil {
		t.Fatal("zero cache accepted")
	}
}

// Property: pixel-task footprints scale linearly with the frame size, and
// the Table 1 relations (MKX input grows with RDG selected, intermediate
// dominates for RDG FULL and ENH) hold at every geometry.
func TestPropertyFootprintScaling(t *testing.T) {
	f := func(raw uint16) bool {
		frameKB := int(raw)%8192 + 16
		for _, task := range []tasks.Name{
			tasks.NameRDGFull, tasks.NameRDGROI, tasks.NameENH, tasks.NameZOOM,
		} {
			small, err := Lookup(task, true, frameKB)
			if err != nil {
				return false
			}
			big, err := Lookup(task, true, frameKB*2)
			if err != nil {
				return false
			}
			// The per-buffer KB rounding allows a small wobble.
			if d := big.TotalKB() - 2*small.TotalKB(); d > 2 || d < -2 {
				return false
			}
		}
		off, err := Lookup(tasks.NameMKXExt, false, frameKB)
		if err != nil {
			return false
		}
		on, err := Lookup(tasks.NameMKXExt, true, frameKB)
		if err != nil {
			return false
		}
		return on.InputKB > off.InputKB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

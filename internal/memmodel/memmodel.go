// Package memmodel reproduces the paper's Table 1: the per-task memory
// requirements (input, intermediate and output buffers) of the
// feature-enhancement application, extracted from the reference
// implementation. Only operations on pixel arrays are counted; tasks that
// operate on extracted feature data (CPLS SEL, REG, ROI EST, GW EXT) are
// negligible in terms of memory consumption, exactly as the paper notes.
//
// Requirements are expressed as ratios of the frame buffer size, so the
// model scales with geometry; at the paper's 1024x1024 x 2 B/px geometry
// (frame = 2,048 KB) the table reproduces Table 1 verbatim.
package memmodel

import (
	"fmt"

	"triplec/internal/tasks"
)

// FrameKB returns the size of one full frame buffer in KB for the given
// geometry (2 bytes per pixel).
func FrameKB(width, height int) int {
	return width * height * 2 / 1024
}

// PaperFrameKB is the frame buffer size of the paper's geometry
// (1024x1024 x 2 B = 2,048 KB).
const PaperFrameKB = 2048

// Requirement is one row of Table 1.
type Requirement struct {
	Task           tasks.Name
	RDGSelected    bool // the "RDG select" column; only MKX EXT depends on it
	HasRDGVariants bool // true for MKX EXT, which appears once per switch state
	InputKB        int
	IntermediateKB int
	OutputKB       int
}

// TotalKB returns the task's total footprint.
func (r Requirement) TotalKB() int { return r.InputKB + r.IntermediateKB + r.OutputKB }

// ratios of the frame size {input, intermediate, output}, per task.
// Dividing Table 1's KB values by 2,048 KB gives these constants.
var ratioTable = map[tasks.Name][3]float64{
	tasks.NameRDGFull: {1, 3.5, 2.5},      // 2048, 7168, 5120
	tasks.NameRDGROI:  {1, 2.5, 2.5},      // 2048, 5120, 5120
	tasks.NameENH:     {1, 4, 0.5},        // 2048, 8192, 1024
	tasks.NameZOOM:    {0.5, 2, 2},        // 1024, 4096, 4096
	tasks.NameMKXExt:  {0.25, 0.25, 1.25}, // 512, 512, 2560 (RDG off)
}

// mkxInputWithRDG is the MKX EXT input ratio when the ridge-detection task
// is selected: MKX then consumes the ridge candidate maps (Table 1: 4,608 KB).
const mkxInputWithRDG = 2.25

// Lookup returns the requirement of one task at the given frame size.
// rdgSelected only affects MKX EXT. Feature-level tasks return a zero-pixel
// requirement (a fixed few KB of feature lists, reported as 0 like Table 1
// omits them).
func Lookup(task tasks.Name, rdgSelected bool, frameKB int) (Requirement, error) {
	if frameKB <= 0 {
		return Requirement{}, fmt.Errorf("memmodel: frameKB must be positive, got %d", frameKB)
	}
	req := Requirement{Task: task, RDGSelected: rdgSelected}
	switch task {
	case tasks.NameRDGFull, tasks.NameRDGROI, tasks.NameENH, tasks.NameZOOM:
		r := ratioTable[task]
		req.InputKB = scale(frameKB, r[0])
		req.IntermediateKB = scale(frameKB, r[1])
		req.OutputKB = scale(frameKB, r[2])
	case tasks.NameMKXExt:
		r := ratioTable[task]
		req.HasRDGVariants = true
		if rdgSelected {
			req.InputKB = scale(frameKB, mkxInputWithRDG)
		} else {
			req.InputKB = scale(frameKB, r[0])
		}
		req.IntermediateKB = scale(frameKB, r[1])
		req.OutputKB = scale(frameKB, r[2])
	case tasks.NameCPLSSel, tasks.NameREG, tasks.NameROIEst, tasks.NameGWExt, tasks.NameDetect:
		// Feature-data tasks: negligible array traffic (paper Section 5.1).
	default:
		return Requirement{}, fmt.Errorf("memmodel: unknown task %q", task)
	}
	return req, nil
}

func scale(frameKB int, ratio float64) int {
	return int(float64(frameKB)*ratio + 0.5)
}

// Table returns the full Table 1 for the given frame size: the four
// pixel-array tasks, with MKX EXT listed in both switch states, in the
// paper's row order (RDG FULL, RDG ROI, MKX off/on, ENH, ZOOM).
func Table(frameKB int) ([]Requirement, error) {
	var rows []Requirement
	type rowSpec struct {
		task tasks.Name
		rdg  bool
	}
	for _, spec := range []rowSpec{
		{tasks.NameRDGFull, true},
		{tasks.NameRDGROI, true},
		{tasks.NameMKXExt, false},
		{tasks.NameMKXExt, true},
		{tasks.NameENH, false},
		{tasks.NameZOOM, false},
	} {
		r, err := Lookup(spec.task, spec.rdg, frameKB)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// IntraTaskOverflowKB lists, for each task whose intra-task footprint
// exceeds the given cache capacity, the amount by which it overflows. The
// paper (Section 5) singles out RDG FULL, ENH and ZOOM against the 4 MB L2.
func IntraTaskOverflowKB(frameKB, cacheKB int) (map[tasks.Name]int, error) {
	if cacheKB <= 0 {
		return nil, fmt.Errorf("memmodel: cacheKB must be positive")
	}
	out := map[tasks.Name]int{}
	for _, task := range []tasks.Name{
		tasks.NameRDGFull, tasks.NameRDGROI, tasks.NameMKXExt,
		tasks.NameENH, tasks.NameZOOM,
	} {
		req, err := Lookup(task, true, frameKB)
		if err != nil {
			return nil, err
		}
		if tot := req.TotalKB(); tot > cacheKB {
			out[task] = tot - cacheKB
		}
	}
	return out, nil
}

package ewma

import (
	"math"
	"testing"
	"testing/quick"

	"triplec/internal/stats"
)

func TestNewFilterValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.1} {
		if _, err := NewFilter(alpha); err == nil {
			t.Fatalf("alpha %v accepted", alpha)
		}
	}
	if _, err := NewFilter(1); err != nil {
		t.Fatal("alpha 1 must be allowed")
	}
}

func TestFilterPrimesOnFirstSample(t *testing.T) {
	f, _ := NewFilter(0.1)
	if f.Primed() {
		t.Fatal("fresh filter must not be primed")
	}
	if got := f.Update(42); got != 42 {
		t.Fatalf("first update = %v, want 42", got)
	}
	if !f.Primed() {
		t.Fatal("filter must be primed after first sample")
	}
}

func TestFilterEquationOne(t *testing.T) {
	// y(tk) = (1-alpha)*y(tk-1) + alpha*x(tk), checked by hand.
	f, _ := NewFilter(0.25)
	f.Update(100)
	got := f.Update(200) // 0.75*100 + 0.25*200 = 125
	if got != 125 {
		t.Fatalf("Eq. 1 violated: %v, want 125", got)
	}
	got = f.Update(0) // 0.75*125 = 93.75
	if got != 93.75 {
		t.Fatalf("Eq. 1 violated: %v, want 93.75", got)
	}
}

func TestFilterAlphaOneTracksInput(t *testing.T) {
	f, _ := NewFilter(1)
	for _, x := range []float64{5, -3, 17} {
		if got := f.Update(x); got != x {
			t.Fatalf("alpha=1 must track input: %v vs %v", got, x)
		}
	}
}

func TestFilterConvergesToConstant(t *testing.T) {
	f, _ := NewFilter(0.2)
	for i := 0; i < 200; i++ {
		f.Update(50)
	}
	if math.Abs(f.Value()-50) > 1e-9 {
		t.Fatalf("filter did not converge: %v", f.Value())
	}
}

func TestFilterReset(t *testing.T) {
	f, _ := NewFilter(0.5)
	f.Update(10)
	f.Reset()
	if f.Primed() || f.Value() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestFilterAdaptsFasterWithLargerAlpha(t *testing.T) {
	slow, _ := NewFilter(0.05)
	fast, _ := NewFilter(0.5)
	slow.Update(0)
	fast.Update(0)
	for i := 0; i < 5; i++ {
		slow.Update(100)
		fast.Update(100)
	}
	if fast.Value() <= slow.Value() {
		t.Fatal("larger alpha must adapt faster (the paper's reason for IIR)")
	}
}

func TestDecomposeReconstructs(t *testing.T) {
	xs := []float64{3, 9, 1, 7, 5, 5, 8}
	lpf, hpf, err := Decompose(xs, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Abs(lpf[i]+hpf[i]-xs[i]) > 1e-12 {
			t.Fatalf("lpf+hpf != x at %d", i)
		}
	}
}

func TestDecomposeInvalidAlpha(t *testing.T) {
	if _, _, err := Decompose([]float64{1}, 0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}

func TestDecomposeSeparatesScales(t *testing.T) {
	// Slow ramp + fast alternation: the LPF must carry the ramp, the HPF
	// the alternation.
	n := 400
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)*0.1 + 5*math.Pow(-1, float64(i))
	}
	lpf, hpf, err := Decompose(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// LPF variance dominated by the trend; HPF mean near zero with spread ~5.
	if stats.Mean(hpf[50:]) > 1.5 || stats.Mean(hpf[50:]) < -1.5 {
		t.Fatalf("HPF mean = %v, want near 0", stats.Mean(hpf[50:]))
	}
	if lpf[n-1] < 30 {
		t.Fatalf("LPF lost the trend: %v", lpf[n-1])
	}
	if stats.StdDev(hpf[50:]) < 2 {
		t.Fatal("HPF lost the fast alternation")
	}
}

func TestFitLinearGrowthRecoversEq3(t *testing.T) {
	// Generate samples from the paper's Eq. 3 and recover it.
	var xs, ys []float64
	for x := 0.0; x <= 300000; x += 10000 {
		xs = append(xs, x/1000) // in kilopixels as Fig. 6's axis
		ys = append(ys, 0.067*(x/1000)+20.6)
	}
	g, err := FitLinearGrowth(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Slope-0.067) > 1e-9 || math.Abs(g.Intercept-20.6) > 1e-9 {
		t.Fatalf("fit = %+v, want slope 0.067 intercept 20.6", g)
	}
	if g.R2 < 0.999 {
		t.Fatalf("R2 = %v", g.R2)
	}
}

func TestLinearGrowthPredict(t *testing.T) {
	g := LinearGrowth{Slope: 2, Intercept: 1}
	if g.Predict(3) != 7 {
		t.Fatal("Predict wrong")
	}
}

func TestDetrend(t *testing.T) {
	g := LinearGrowth{Slope: 1, Intercept: 0}
	res, err := g.Detrend([]float64{1, 2, 3}, []float64{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 1}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("Detrend = %v, want %v", res, want)
		}
	}
	if _, err := g.Detrend([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// Property: the filter output always lies within the range of inputs seen
// so far (convexity of the EWMA update).
func TestPropertyFilterBounded(t *testing.T) {
	f := func(raw []int8, alphaRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alpha := float64(alphaRaw%99+1) / 100
		fl, err := NewFilter(alpha)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			y := fl.Update(x)
			if y < lo-1e-9 || y > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewHoltValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.5}, {0.5, 0}, {1.5, 0.5}, {0.5, 1.5}} {
		if _, err := NewHolt(bad[0], bad[1]); err == nil {
			t.Fatalf("factors %v accepted", bad)
		}
	}
	if _, err := NewHolt(0.5, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	// On a pure ramp, Holt's one-step forecast converges to the true next
	// value while a plain EWMA lags behind by a constant offset.
	h, _ := NewHolt(0.5, 0.3)
	f, _ := NewFilter(0.5)
	var holtErr, ewmaErr float64
	for i := 0; i < 300; i++ {
		x := float64(i) * 2 // slope 2 ramp
		if i > 200 {
			holtErr += math.Abs(h.Forecast(1) - (x))
			ewmaErr += math.Abs(f.Value() - x)
		}
		h.Update(x)
		f.Update(x)
	}
	if holtErr >= ewmaErr/2 {
		t.Fatalf("Holt error %v must clearly beat EWMA %v on a ramp", holtErr, ewmaErr)
	}
}

func TestHoltPrimeAndReset(t *testing.T) {
	h, _ := NewHolt(0.4, 0.4)
	if h.Primed() {
		t.Fatal("fresh filter primed")
	}
	if got := h.Update(10); got != 10 {
		t.Fatalf("first update = %v", got)
	}
	if !h.Primed() {
		t.Fatal("not primed after update")
	}
	h.Reset()
	if h.Primed() || h.Forecast(1) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHoltConstantSeriesZeroTrend(t *testing.T) {
	h, _ := NewHolt(0.3, 0.3)
	for i := 0; i < 100; i++ {
		h.Update(42)
	}
	if math.Abs(h.Forecast(5)-42) > 1e-9 {
		t.Fatalf("constant series forecast = %v", h.Forecast(5))
	}
}

// Package ewma implements the long-term part of Triple-C's computation-time
// model (paper Section 4): the Exponentially Weighted Moving Average filter
// of Eq. 1,
//
//	y(tk) = (1 - alpha) * y(tk-1) + alpha * x(tk),
//
// used to separate the low-frequency structural fluctuations of a task's
// processing time from the high-frequency short-term fluctuations that the
// Markov chain models, plus the linear growth function of Eq. 3 describing
// the dependency of the ridge-detection time on the ROI size.
package ewma

import (
	"errors"

	"triplec/internal/stats"
)

// Filter is the EWMA (first-order IIR) low-pass filter of Eq. 1. The zero
// value is not usable; construct with NewFilter.
type Filter struct {
	alpha  float64
	y      float64
	primed bool
}

// NewFilter returns a filter with the given smoothing factor alpha in
// (0, 1]. Larger alpha weights recent inputs more heavily (the paper picks
// the EWMA over FIR filters precisely for this fast adaptation).
func NewFilter(alpha float64) (*Filter, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("ewma: alpha must be in (0, 1]")
	}
	return &Filter{alpha: alpha}, nil
}

// Alpha returns the smoothing factor.
func (f *Filter) Alpha() float64 { return f.alpha }

// Update feeds one sample and returns the new filter output. The first
// sample primes the filter (y = x).
func (f *Filter) Update(x float64) float64 {
	if !f.primed {
		f.y = x
		f.primed = true
		return f.y
	}
	f.y = (1-f.alpha)*f.y + f.alpha*x
	return f.y
}

// Value returns the current filter output (0 before the first Update).
func (f *Filter) Value() float64 { return f.y }

// Primed reports whether the filter has seen at least one sample.
func (f *Filter) Primed() bool { return f.primed }

// Reset clears the filter state.
func (f *Filter) Reset() {
	f.y = 0
	f.primed = false
}

// Decompose splits a series into its low-frequency (EWMA output) and
// high-frequency (residual) parts — the LPF and HPF curves of the paper's
// Fig. 3. len(lpf) == len(hpf) == len(xs).
func Decompose(xs []float64, alpha float64) (lpf, hpf []float64, err error) {
	f, err := NewFilter(alpha)
	if err != nil {
		return nil, nil, err
	}
	lpf = make([]float64, len(xs))
	hpf = make([]float64, len(xs))
	for i, x := range xs {
		lpf[i] = f.Update(x)
		hpf[i] = x - lpf[i]
	}
	return lpf, hpf, nil
}

// Holt is double-exponential (Holt) smoothing: a level filter plus a trend
// filter, so forecasts follow a drifting series instead of lagging it the
// way a plain EWMA does. Kept as the alternative the paper's Eq. 1 choice
// can be ablated against on strongly trending load.
type Holt struct {
	alpha, beta  float64
	level, trend float64
	primed       bool
}

// NewHolt returns a Holt filter with level factor alpha and trend factor
// beta, both in (0, 1].
func NewHolt(alpha, beta float64) (*Holt, error) {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, errors.New("ewma: Holt factors must be in (0, 1]")
	}
	return &Holt{alpha: alpha, beta: beta}, nil
}

// Update feeds one sample and returns the updated level.
func (h *Holt) Update(x float64) float64 {
	if !h.primed {
		h.level = x
		h.trend = 0
		h.primed = true
		return h.level
	}
	prevLevel := h.level
	h.level = h.alpha*x + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	return h.level
}

// Forecast returns the k-step-ahead prediction level + k*trend.
func (h *Holt) Forecast(k int) float64 {
	return h.level + float64(k)*h.trend
}

// Primed reports whether the filter has seen a sample.
func (h *Holt) Primed() bool { return h.primed }

// Reset clears the filter state.
func (h *Holt) Reset() {
	h.level, h.trend = 0, 0
	h.primed = false
}

// LinearGrowth is the paper's Eq. 3: a linear model y = Slope*x + Intercept
// relating processing time to ROI size. The paper reports
// y = 0.067*t + 20.6 for the ridge-detection task.
type LinearGrowth struct {
	Slope, Intercept float64
	R2               float64 // goodness of the fit that produced the model
}

// FitLinearGrowth estimates the growth model from (x, y) observations by
// ordinary least squares.
func FitLinearGrowth(xs, ys []float64) (LinearGrowth, error) {
	a, b, r2, err := stats.LinearFit(xs, ys)
	if err != nil {
		return LinearGrowth{}, err
	}
	return LinearGrowth{Slope: a, Intercept: b, R2: r2}, nil
}

// Predict evaluates the model at x.
func (g LinearGrowth) Predict(x float64) float64 { return g.Slope*x + g.Intercept }

// Detrend subtracts the model from the observations, leaving the
// data-dependent fluctuations the paper feeds into the Markov
// state-generation process.
func (g LinearGrowth) Detrend(xs, ys []float64) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("ewma: length mismatch")
	}
	out := make([]float64, len(ys))
	for i := range ys {
		out[i] = ys[i] - g.Predict(xs[i])
	}
	return out, nil
}

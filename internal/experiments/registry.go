package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment against a study.
type Runner func(w io.Writer, study Study) error

// Registry maps experiment ids (as accepted by cmd/experiments -run) to
// their runners, covering every table and figure of the paper.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig2":      func(w io.Writer, _ Study) error { return Fig2(w) },
		"fig3":      func(w io.Writer, s Study) error { return Fig3(w, s, 400) },
		"fig4":      func(w io.Writer, s Study) error { return Fig4(w, s.Arch) },
		"fig5":      func(w io.Writer, s Study) error { return Fig5(w, s.Arch) },
		"fig6":      func(w io.Writer, s Study) error { return Fig6(w, s) },
		"fig7":      func(w io.Writer, s Study) error { return Fig7(w, s, 200) },
		"table1":    func(w io.Writer, _ Study) error { return Table1(w) },
		"table2a":   Table2a,
		"table2b":   Table2b,
		"accuracy":  AccuracyReport,
		"multiapp":  MultiApp,
		"ablations": Ablations,
		"crossval":  CrossVal,
	}
}

// IDs returns the registered experiment ids in stable order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(w io.Writer, study Study, id string) error {
	r, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(w, study)
}

// All executes every experiment in order.
func All(w io.Writer, study Study) error {
	for _, id := range IDs() {
		if err := Run(w, study, id); err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
	}
	return nil
}

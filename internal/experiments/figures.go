package experiments

import (
	"fmt"
	"io"

	"triplec/internal/bandwidth"
	"triplec/internal/ewma"
	"triplec/internal/flowgraph"
	"triplec/internal/frame"
	"triplec/internal/memmodel"
	"triplec/internal/platform"
	"triplec/internal/qos"
	"triplec/internal/sched"
	"triplec/internal/stats"
	"triplec/internal/synth"
	"triplec/internal/tasks"
)

// Fig2 reproduces the flow graph with the inter-task bandwidth labels
// (paper Fig. 2): every scenario's edges at the 1024x1024 / 30 Hz geometry.
func Fig2(w io.Writer) error {
	header(w, "Fig. 2", "flow graph and inter-task bandwidth (MB/s)")
	out, err := flowgraph.WorstCase().Render(memmodel.PaperFrameKB, 30)
	if err != nil {
		return err
	}
	fmt.Fprint(w, out)
	fmt.Fprintln(w, "\nper-scenario total inter-task bandwidth:")
	sorted, err := flowgraph.SortedByBandwidth(memmodel.PaperFrameKB, 30)
	if err != nil {
		return err
	}
	for _, s := range sorted {
		total, err := s.TotalMBs(memmodel.PaperFrameKB, 30)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  scenario %-28s %7.1f MB/s\n", s, total)
	}
	return nil
}

// Fig3 reproduces the computation-time statistics of the RDG FULL task
// (paper Fig. 3): the raw series with its EWMA low-pass and the residual
// high-pass component, plus the autocorrelation check justifying the
// Markov model.
func Fig3(w io.Writer, study Study, frames int) error {
	header(w, "Fig. 3", fmt.Sprintf("RDG FULL computation time over %d frames", frames))
	cfg := study.SynthConfig(study.Seed + 3)
	// Keep contrast permanently active so RDG runs on every frame, like the
	// profiling run behind the paper's figure, and strengthen the slow
	// vessel-activity modulation so the series shows the paper's long-term
	// structural fluctuations on top of the short-term noise.
	cfg.ContrastEvery = 1
	cfg.ContrastLen = 1
	cfg.VesselModAmp = 0.35
	cfg.VesselModPeriod = float64(frames) / 3
	seq2, err := newSeq(cfg)
	if err != nil {
		return err
	}
	machine, err := platform.NewMachine(study.Arch)
	if err != nil {
		return err
	}
	rdg := tasks.NewRidgeDetector(tasksParams(study))
	series := make([]float64, frames)
	for i := 0; i < frames; i++ {
		f, _ := seq2.Frame(i)
		_, cost := rdg.Run(f)
		series[i] = machine.ExecMs(cost, 1)
	}
	lpf, hpf, err := ewma.Decompose(series, 0.15)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "frame", "raw (ms)", "LPF (ms)", "HPF (ms)")
	step := frames / 25
	if step < 1 {
		step = 1
	}
	for i := 0; i < frames; i += step {
		fmt.Fprintf(w, "%8d %12.2f %12.2f %+12.2f\n", i, series[i], lpf[i], hpf[i])
	}
	fmt.Fprintf(w, "raw: mean %.2f ms, min %.2f, max %.2f, std %.2f\n",
		stats.Mean(series), stats.Min(series), stats.Max(series), stats.StdDev(series))
	acf, err := stats.Autocorrelation(hpf, 8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "HPF autocorrelation (lags 0..8):")
	for _, v := range acf {
		fmt.Fprintf(w, " %.2f", v)
	}
	fmt.Fprintln(w)
	if lambda, res, err := stats.ExponentialDecayFit(acf); err == nil {
		fmt.Fprintf(w, "exponential-decay fit: lambda=%.2f (log-space residual %.2f) — Markov-chain modeling applicable\n", lambda, res)
	}
	return nil
}

// Table1 reproduces the per-task memory requirements (paper Table 1).
func Table1(w io.Writer) error {
	header(w, "Table 1", "memory requirements per task (KB), 1024x1024 x 2 B/px")
	rows, err := memmodel.Table(memmodel.PaperFrameKB)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-10s %8s %13s %8s\n", "Task", "RDG select", "Input", "Intermediate", "Output")
	for _, r := range rows {
		sel := "-"
		if r.HasRDGVariants && r.RDGSelected {
			sel = "x"
		}
		if !r.HasRDGVariants {
			sel = ""
		}
		fmt.Fprintf(w, "%-10s %-10s %8d %13d %8d\n",
			r.Task, sel, r.InputKB, r.IntermediateKB, r.OutputKB)
	}
	return nil
}

// Fig4 prints the architecture model with its parameters (paper Fig. 4).
func Fig4(w io.Writer, arch platform.Arch) error {
	header(w, "Fig. 4", "instantiated architecture with parameters")
	fmt.Fprint(w, arch.Describe())
	return nil
}

// Fig5 reproduces the intra-task bandwidth of the RDG FULL task due to the
// limited cache-memory storage (paper Fig. 5).
func Fig5(w io.Writer, arch platform.Arch) error {
	header(w, "Fig. 5", "RDG FULL intra-task bandwidth (space-time buffer occupation)")
	out, err := bandwidth.Fig5Report(memmodel.PaperFrameKB, arch.L2.SizeBytes/1024, 30)
	if err != nil {
		return err
	}
	fmt.Fprint(w, out)
	fmt.Fprintln(w, "\nintra-task traffic of all overflowing tasks (KB/frame):")
	for _, task := range []tasks.Name{tasks.NameRDGFull, tasks.NameRDGROI, tasks.NameMKXExt, tasks.NameENH, tasks.NameZOOM} {
		kb, err := bandwidth.IntraTaskKB(task, true, memmodel.PaperFrameKB, arch.L2.SizeBytes/1024)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-9s %6d KB/frame = %7.1f MB/s\n", task, kb, float64(kb)*30/1024)
	}
	return nil
}

// Fig6 reproduces the processing-time statistics for different ROI sizes
// (paper Fig. 6): effective latency vs ROI pixels for the serial and the
// 2-stripe parallel partitioning, with the linear growth fit of Eq. 3.
func Fig6(w io.Writer, study Study) error {
	header(w, "Fig. 6", "effective RDG latency vs ROI size: serial vs 2-stripe")
	cfg := study.SynthConfig(study.Seed + 6)
	cfg.ContrastEvery = 1
	cfg.ContrastLen = 1
	seq, err := newSeq(cfg)
	if err != nil {
		return err
	}
	machine, err := platform.NewMachine(study.Arch)
	if err != nil {
		return err
	}
	params := tasksParams(study)
	rdg := tasks.NewRidgeDetector(params)
	scale := params.PixelScale

	fmt.Fprintf(w, "%14s %14s %14s\n", "ROI (pixels)", "serial (ms)", "2-stripe (ms)")
	var xs, ys []float64
	maxSide := study.FrameW
	for side := 16; side <= maxSide; side += 8 {
		f, _ := seq.Frame(side) // vary content with the sweep
		cx, cy := study.FrameW/2, study.FrameH/2
		roi := frame.R(cx-side/2, cy-side/2, cx-side/2+side, cy-side/2+side).ClampTo(f.Bounds)
		sub := f.SubFrame(roi)
		_, cost := rdg.Run(sub)
		serial := machine.ExecMs(cost, 1)
		striped := machine.StripedMs(cost, 2)
		modeled := float64(roi.Area()) * scale // full-geometry pixel count
		fmt.Fprintf(w, "%14.0f %14.2f %14.2f\n", modeled, serial, striped)
		xs = append(xs, modeled)
		ys = append(ys, serial)
	}
	a, b, r2, err := stats.LinearFit(xs, ys)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "linear growth fit (Eq. 3 analogue): y = %.4f ms/Kpx * x + %.2f ms (R2 %.3f)\n",
		a*1000, b, r2)
	fmt.Fprintf(w, "paper reports y = 0.067*t + 20.6 on its testbed; the reproduction preserves linearity and the serial/2-stripe ordering\n")
	return nil
}

// Table2a renders the trained Markov transition matrix of the
// ridge-detection task (paper Table 2a).
func Table2a(w io.Writer, study Study) error {
	header(w, "Table 2a", "RDG Markov transition matrix")
	p, err := study.TrainPredictor()
	if err != nil {
		return err
	}
	if p.RDGChain() == nil {
		return fmt.Errorf("experiments: no RDG chain trained")
	}
	chain := p.RDGChain().Chain()
	fmt.Fprintf(w, "states: %d (paper uses 10)\n", chain.States())
	fmt.Fprint(w, chain.Render())
	return nil
}

// Table2b renders the model summary (paper Table 2b).
func Table2b(w io.Writer, study Study) error {
	header(w, "Table 2b", "model summary")
	p, err := study.TrainPredictor()
	if err != nil {
		return err
	}
	fmt.Fprint(w, p.ModelSummary())
	return nil
}

// Fig7 reproduces the headline comparison (paper Fig. 7): prediction model
// vs actual computation time, straightforward mapping vs semi-automatic
// parallelization.
func Fig7(w io.Writer, study Study, frames int) error {
	header(w, "Fig. 7", "prediction vs actual; straightforward vs semi-auto parallel")
	seq, err := study.Sequence(study.Seed + 424242)
	if err != nil {
		return err
	}
	src := Source(seq)

	straightEng, err := study.Engine()
	if err != nil {
		return err
	}
	_, straight, err := sched.RunStraightforward(straightEng, frames, src)
	if err != nil {
		return err
	}

	p, err := study.TrainPredictor()
	if err != nil {
		return err
	}
	mgr, err := sched.NewManager(p, study.Arch)
	if err != nil {
		return err
	}
	managedEng, err := study.Engine()
	if err != nil {
		return err
	}
	managed, err := sched.RunManaged(managedEng, mgr, frames, src, study.FramePixels())
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%8s %16s %16s %16s\n", "frame", "straight (ms)", "managed out (ms)", "predicted (ms)")
	step := frames / 25
	if step < 1 {
		step = 1
	}
	for i := 0; i < frames; i += step {
		fmt.Fprintf(w, "%8d %16.1f %16.1f %16.1f\n",
			i, straight[i], managed.Output[i], managed.Decisions[i].PredictedMs)
	}
	cmp, err := sched.Summarize(straight, managed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstraightforward: worst-vs-avg gap %.0f%% (paper: ~85%%), latency %.0f..%.0f ms\n",
		100*cmp.StraightWorstVsAvg, stats.Min(straight), stats.Max(straight))
	fmt.Fprintf(w, "semi-auto:       worst-vs-avg gap %.0f%% (paper: ~20%%), budget %.1f ms, overruns %.0f%%\n",
		100*cmp.ManagedWorstVsAvg, cmp.BudgetMs, 100*cmp.OverrunRate)
	fmt.Fprintf(w, "jitter reduction %.0f%% (paper: ~70%%)\n", 100*cmp.JitterReduction)

	fmt.Fprintf(w, "\nlatency profiles (ms):\n")
	fmt.Fprintf(w, "  %-16s %7s %7s %7s %7s %7s %7s\n", "series", "mean", "p50", "p90", "p95", "p99", "max")
	for _, row := range []struct {
		name   string
		series []float64
	}{
		{"straightforward", straight},
		{"managed output", managed.Output},
	} {
		pr, err := qos.ProfileOf(row.series)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-16s %7.1f %7.1f %7.1f %7.1f %7.1f %7.1f\n",
			row.name, pr.Mean, pr.P50, pr.P90, pr.P95, pr.P99, pr.Max)
	}

	// Extension: two-stage software pipelining estimate (front end /
	// enhancement back end overlapping across frames).
	est, err := sched.EstimatePipelining(managed.Reports)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ntwo-stage pipelining estimate: period %.1f ms (throughput %.1f fps), latency %.1f ms, speedup vs serial %.2fx\n",
		est.AvgPeriodMs, 1000/est.AvgPeriodMs, est.AvgLatencyMs, est.SpeedupVsSerial)
	return nil
}

// AccuracyReport reproduces the paper's Section 7 accuracy claims: 97%
// average computation-prediction accuracy with sporadic excursions up to
// 20-30%, and ~90% cache/bandwidth analysis accuracy.
func AccuracyReport(w io.Writer, study Study) error {
	header(w, "§7 accuracy", "prediction accuracy on held-out sequences")
	p, err := study.TrainPredictor()
	if err != nil {
		return err
	}
	tests, err := study.TestSets()
	if err != nil {
		return err
	}
	acc, err := p.Evaluate(tests, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "computation prediction: mean accuracy %.1f%% (paper: 97%%), worst excursion %.0f%% (paper: 20-30%%)\n",
		100*acc.Mean, 100*acc.WorstExcursion)
	fmt.Fprintf(w, "scenario prediction:    %.1f%% of switches anticipated; unconditional accuracy %.1f%%\n",
		100*acc.ScenarioHits, 100*acc.UncondMean)

	perTask, err := p.EvaluatePerTask(tests, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nper-task prediction accuracy:\n")
	fmt.Fprintf(w, "  %-11s %9s %9s %8s\n", "task", "mean", "worst", "samples")
	for _, a := range perTask {
		fmt.Fprintf(w, "  %-11s %8.1f%% %8.0f%% %8d\n", a.Task, 100*a.Mean, 100*a.Worst, a.Samples)
	}

	// Cache/bandwidth analysis vs cache-simulator measurement (the paper's
	// 90% figure).
	cacheCfg := study.Arch.L2
	totalAcc, n := 0.0, 0
	for _, task := range []tasks.Name{tasks.NameRDGFull, tasks.NameMKXExt, tasks.NameENH, tasks.NameZOOM} {
		predicted, err := bandwidth.IntraTaskKB(task, true, memmodel.PaperFrameKB, cacheCfg.SizeBytes/1024)
		if err != nil {
			return err
		}
		measured, err := bandwidth.MeasureIntraTaskKB(task, true, memmodel.PaperFrameKB, cacheCfg)
		if err != nil {
			return err
		}
		a := 1.0
		if measured > 0 {
			d := float64(predicted - measured)
			if d < 0 {
				d = -d
			}
			a = 1 - d/float64(measured)
		}
		totalAcc += a
		n++
		fmt.Fprintf(w, "bandwidth analysis %-9s predicted %6d KB vs simulated %6d KB (accuracy %.0f%%)\n",
			task, predicted, measured, 100*a)
	}
	fmt.Fprintf(w, "mean cache/bandwidth analysis accuracy %.0f%% (paper: ~90%%)\n", 100*totalAcc/float64(n))
	return nil
}

// tasksParams returns the calibrated cost parameters for the study geometry.
func tasksParams(study Study) tasks.CostParams {
	return tasks.DefaultCostParams(study.FramePixels())
}

// newSeq builds a sequence from an explicit config (figures that override
// the contrast schedule use this instead of Study.Sequence).
func newSeq(cfg synth.Config) (*synth.Sequence, error) { return synth.New(cfg) }

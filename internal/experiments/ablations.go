package experiments

import (
	"fmt"
	"io"

	"triplec/internal/core"
	"triplec/internal/markov"
	"triplec/internal/platform"
	"triplec/internal/stats"
	"triplec/internal/tasks"
)

// Ablations runs the model-design studies of DESIGN.md §5 as a printed
// report (the benchmarks report the same numbers as metrics): the
// long/short-term decoupling, the state-count rule, the quantization
// scheme, the Markov order, and the baselines.
func Ablations(w io.Writer, study Study) error {
	header(w, "ablations", "model design choices (DESIGN.md §5)")

	// Build the RDG FULL series the studies run on.
	cfg := study.SynthConfig(study.Seed + 9)
	cfg.ContrastEvery = 1
	cfg.ContrastLen = 1
	cfg.VesselModAmp = 0.35
	cfg.VesselModPeriod = 120
	seq, err := newSeq(cfg)
	if err != nil {
		return err
	}
	machine, err := platform.NewMachine(study.Arch)
	if err != nil {
		return err
	}
	rdg := tasks.NewRidgeDetector(tasksParams(study))
	series := make([]float64, 360)
	for i := range series {
		f, _ := seq.Frame(i)
		_, cost := rdg.Run(f)
		series[i] = machine.ExecMs(cost, 1)
	}
	train, test := series[:270], series[270:]

	score := func(m core.Model) float64 {
		m.ResetOnline()
		var preds, acts []float64
		for i, x := range test {
			if i > 0 {
				preds = append(preds, m.Predict(core.Context{}))
				acts = append(acts, x)
			}
			m.Observe(core.Context{}, x)
		}
		mape, err := stats.MeanAbsPercentError(preds, acts)
		if err != nil {
			return 0
		}
		return 1 - mape
	}
	chainScore := func(c *markov.Chain) float64 {
		var preds, acts []float64
		for i := 1; i < len(test); i++ {
			preds = append(preds, c.ExpectedNext(test[i-1]))
			acts = append(acts, test[i])
		}
		mape, err := stats.MeanAbsPercentError(preds, acts)
		if err != nil {
			return 0
		}
		return 1 - mape
	}

	fmt.Fprintln(w, "model decomposition (paper §4 decoupling):")
	if m, err := core.NewEWMAMarkovModel([][]float64{train}, 0.15, 10, "RDG"); err == nil {
		fmt.Fprintf(w, "  EWMA + Markov       %.2f%%\n", 100*score(m))
	}
	if m, err := core.NewLastValueModel(train); err == nil {
		fmt.Fprintf(w, "  last value          %.2f%%\n", 100*score(m))
	}
	if m, err := core.NewConstantModel(train); err == nil {
		fmt.Fprintf(w, "  training mean       %.2f%%\n", 100*score(m))
	}
	if m, err := core.NewWorstCaseModel(train); err == nil {
		waste, _ := core.OverReservation(m.Worst, test)
		fmt.Fprintf(w, "  worst-case reserve  %.2f%% (over-reservation %.1f%%)\n",
			100*score(m), 100*waste)
	}

	fmt.Fprintln(w, "\nstate count (rule M = Cmax/sigma, x2, cap):")
	for _, n := range []int{2, 4, 8, 10, 20} {
		m, err := core.NewEWMAMarkovModel([][]float64{train}, 0.15, n, "RDG")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  cap %-3d -> %d states  %.2f%%\n",
			n, m.Chain().States(), 100*score(m))
	}

	fmt.Fprintln(w, "\nquantization (adaptive equal-frequency vs fixed equal-width):")
	if c, err := markov.Train([][]float64{train}, 10); err == nil {
		fmt.Fprintf(w, "  equal-frequency  %d states  %.2f%%\n", c.States(), 100*chainScore(c))
	}
	if q, err := markov.NewEqualWidthQuantizer(train, 10); err == nil {
		if c, err := markov.TrainWithQuantizer(q, [][]float64{train}); err == nil {
			fmt.Fprintf(w, "  equal-width      %d states  %.2f%%\n", c.States(), 100*chainScore(c))
		}
	}

	fmt.Fprintln(w, "\nMarkov order (the paper's state-space explosion argument):")
	if c, err := markov.Train([][]float64{train}, 10); err == nil {
		fmt.Fprintf(w, "  order 1  %3d states       %.2f%%\n", c.States(), 100*chainScore(c))
	}
	if c2, err := markov.TrainOrder2([][]float64{train}, 10); err == nil {
		var preds, acts []float64
		for i := 2; i < len(test); i++ {
			preds = append(preds, c2.ExpectedNext(test[i-2], test[i-1]))
			acts = append(acts, test[i])
		}
		mape, err := stats.MeanAbsPercentError(preds, acts)
		if err == nil {
			fmt.Fprintf(w, "  order 2  %3d pair states  %.2f%% (only %d/%d pairs ever observed)\n",
				c2.PairStates(), 100*(1-mape), c2.ObservedPairs(), c2.PairStates())
		}
	}

	fmt.Fprintln(w, "\nEWMA alpha (Eq. 1 adaptivity):")
	for _, alpha := range []float64{0.05, 0.15, 0.3, 0.6} {
		m, err := core.NewEWMAMarkovModel([][]float64{train}, alpha, 10, "RDG")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  alpha %.2f  %.2f%%\n", alpha, 100*score(m))
	}
	return nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each experiment
// is a function writing the paper-style rows/series to an io.Writer; the
// cmd/experiments binary and the top-level benchmarks drive them.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"triplec/internal/core"
	"triplec/internal/frame"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/synth"
)

// Study bundles the common experimental setup: frame geometry, platform,
// training corpus size and seeds. The paper's corpus is 37 sequences /
// 1,921 frames; the default study uses a smaller corpus that trains the
// same models in seconds (pass -full to cmd/experiments for the
// paper-sized corpus).
type Study struct {
	FrameW, FrameH int
	Spacing        float64
	Arch           platform.Arch
	TrainSeqs      int
	TrainFrames    int
	TestSeqs       int
	TestFrames     int
	Seed           uint64
}

// DefaultStudy returns the fast study configuration.
func DefaultStudy() Study {
	return Study{
		FrameW: 128, FrameH: 128,
		Spacing:     36,
		Arch:        platform.Blackford(),
		TrainSeqs:   6,
		TrainFrames: 80,
		TestSeqs:    2,
		TestFrames:  100,
		Seed:        1,
	}
}

// PaperStudy returns the full-size study: 37 training sequences of ~52
// frames each, totalling 1,921 frames like the paper's corpus.
func PaperStudy() Study {
	s := DefaultStudy()
	s.TrainSeqs = 37
	s.TrainFrames = 52 // 37 * 52 = 1,924 ≈ the paper's 1,921 frames
	s.TestSeqs = 4
	s.TestFrames = 200
	return s
}

// FramePixels returns the processed pixel count.
func (s Study) FramePixels() int { return s.FrameW * s.FrameH }

// SynthConfig returns the synthetic-sequence configuration for a seed.
func (s Study) SynthConfig(seed uint64) synth.Config {
	cfg := synth.DefaultConfig(seed)
	cfg.Width, cfg.Height = s.FrameW, s.FrameH
	cfg.MarkerSpacing = s.Spacing
	cfg.NoiseSigma = 250
	cfg.QuantumGain = 0
	cfg.ClutterRate = 3
	cfg.DropoutEvery = 23
	return cfg
}

// Sequence builds a synthetic sequence for a seed.
func (s Study) Sequence(seed uint64) (*synth.Sequence, error) {
	return synth.New(s.SynthConfig(seed))
}

// Engine builds a fresh pipeline engine.
func (s Study) Engine() (*pipeline.Engine, error) {
	return pipeline.New(pipeline.Config{
		Width: s.FrameW, Height: s.FrameH,
		MarkerSpacing: s.Spacing,
		Arch:          s.Arch,
	})
}

// Source adapts a sequence to the pipeline's frame source signature.
func Source(seq *synth.Sequence) func(int) *frame.Frame {
	return func(i int) *frame.Frame {
		f, _ := seq.Frame(i)
		return f
	}
}

// Observations profiles one sequence through a fresh engine with the serial
// mapping and returns the observation stream.
func (s Study) Observations(seed uint64, frames int) ([]core.Observation, error) {
	seq, err := s.Sequence(seed)
	if err != nil {
		return nil, err
	}
	eng, err := s.Engine()
	if err != nil {
		return nil, err
	}
	reports, err := eng.RunSequence(frames, Source(seq), nil)
	if err != nil {
		return nil, err
	}
	return core.FromReports(reports, s.FramePixels()), nil
}

// TrainingSets profiles the study's training corpus.
func (s Study) TrainingSets() ([][]core.Observation, error) {
	out := make([][]core.Observation, 0, s.TrainSeqs)
	for i := 0; i < s.TrainSeqs; i++ {
		obs, err := s.Observations(s.Seed+1000+uint64(i)*17, s.TrainFrames)
		if err != nil {
			return nil, err
		}
		out = append(out, obs)
	}
	return out, nil
}

// TestSets profiles the held-out test sequences.
func (s Study) TestSets() ([][]core.Observation, error) {
	out := make([][]core.Observation, 0, s.TestSeqs)
	for i := 0; i < s.TestSeqs; i++ {
		obs, err := s.Observations(s.Seed+900000+uint64(i)*83, s.TestFrames)
		if err != nil {
			return nil, err
		}
		out = append(out, obs)
	}
	return out, nil
}

// trainCache memoizes trained predictors per study configuration (Study is
// a comparable value type) so a multi-experiment run does not re-profile
// the same corpus for every table and figure. Each caller receives a fresh
// predictor restored from the cached serialized form, so online state and
// online training never leak between experiments.
var trainCache sync.Map // Study -> []byte (serialized predictor)

// TrainPredictor trains a Triple-C predictor on the study corpus (cached
// per study configuration).
func (s Study) TrainPredictor() (*core.Predictor, error) {
	if blob, ok := trainCache.Load(s); ok {
		return core.Load(bytes.NewReader(blob.([]byte)))
	}
	sets, err := s.TrainingSets()
	if err != nil {
		return nil, err
	}
	p, err := core.Train(sets, core.TrainConfig{})
	if err != nil {
		return nil, err
	}
	p.ResetOnline()
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		trainCache.Store(s, buf.Bytes())
	}
	return p, nil
}

// header prints a section banner.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n================ %s — %s ================\n", id, title)
}

package experiments

import (
	"fmt"
	"io"

	"triplec/internal/core"
	"triplec/internal/qos"
	"triplec/internal/sched"
	"triplec/internal/stats"
)

// CrossVal runs k-fold cross validation over the training corpus, giving
// the accuracy headline a variance estimate instead of a single train/test
// split.
func CrossVal(w io.Writer, study Study) error {
	header(w, "extension", "k-fold cross-validated prediction accuracy")
	sets, err := study.TrainingSets()
	if err != nil {
		return err
	}
	k := len(sets)
	if k > 5 {
		k = 5
	}
	cv, err := core.CrossValidate(sets, k, core.TrainConfig{}, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d folds over %d sequences:\n", k, len(sets))
	for _, f := range cv.Folds {
		fmt.Fprintf(w, "  fold %d: accuracy %.1f%%, worst excursion %.0f%%, scenarios %.0f%% (%d frames)\n",
			f.Fold, 100*f.Accuracy.Mean, 100*f.Accuracy.WorstExcursion,
			100*f.Accuracy.ScenarioHits, f.Accuracy.Frames)
	}
	fmt.Fprintf(w, "mean accuracy %.1f%% ± %.1f%% (weakest fold %.1f%%)\n",
		100*cv.MeanAcc, 100*cv.StdAcc, 100*cv.WorstAcc)
	return nil
}

// MultiApp demonstrates the paper's stated aim "to execute more functions
// on the same platform" (Sections 1, 6, 8): two independent imaging
// pipelines, each granted half the 8-core machine, are co-scheduled under
// Triple-C prediction. The report shows each application's latency
// stability, the combined peak core demand, a Gantt view of one frame, and
// the waste a static worst-case reservation would have incurred instead.
func MultiApp(w io.Writer, study Study) error {
	header(w, "extension", "two functions on the same platform (paper §6 aim)")
	const frames = 80

	mkApp := func(name string, seed uint64) (sched.App, error) {
		p, err := study.TrainPredictor()
		if err != nil {
			return sched.App{}, err
		}
		mgr, err := sched.NewManager(p, study.Arch)
		if err != nil {
			return sched.App{}, err
		}
		if err := mgr.SetCoreBudget(study.Arch.NumCPUs / 2); err != nil {
			return sched.App{}, err
		}
		eng, err := study.Engine()
		if err != nil {
			return sched.App{}, err
		}
		seq, err := study.Sequence(seed)
		if err != nil {
			return sched.App{}, err
		}
		return sched.App{
			Name: name, Engine: eng, Manager: mgr,
			Source: Source(seq), FramePixels: study.FramePixels(),
		}, nil
	}

	appA, err := mkApp("stentboost-A", study.Seed+111)
	if err != nil {
		return err
	}
	appB, err := mkApp("stentboost-B", study.Seed+222)
	if err != nil {
		return err
	}
	res, err := sched.RunMultiApp([]sched.App{appA, appB}, frames)
	if err != nil {
		return err
	}

	for i, name := range []string{appA.Name, appB.Name} {
		r := res.PerApp[i]
		gap, err := qos.WorstVsAverage(r.Output)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: budget %.1f ms on %d cores, output %.0f..%.0f ms, worst-vs-avg %.0f%%, overruns %.0f%%\n",
			name, r.Regulator.BudgetMs, study.Arch.NumCPUs/2,
			stats.Min(r.Output), stats.Max(r.Output),
			100*gap, 100*r.Regulator.OverrunRate(r.Processing))
	}
	peak := 0
	for _, p := range res.PeakCores {
		if p > peak {
			peak = p
		}
	}
	fmt.Fprintf(w, "combined peak core demand: %d of %d cores\n", peak, study.Arch.NumCPUs)

	// Gantt view of one representative frame of app A (placed on cores
	// 0..3) to visualize the sharing.
	mid := frames / 2
	tl, err := sched.BuildTimeline(res.PerApp[0].Reports[mid], study.Arch.NumCPUs, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\napp A frame %d on its core partition:\n%s", mid, tl.Render(64))

	// Contrast with the static worst-case reservation the paper rejects.
	worst := stats.Max(res.PerApp[0].Processing)
	waste, err := core.OverReservation(worst, res.PerApp[0].Processing)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstatic worst-case reservation at %.1f ms would waste %.0f%% of the budget on average\n",
		worst, 100*waste)
	return nil
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// fastStudy keeps experiment tests quick.
func fastStudy() Study {
	s := DefaultStudy()
	s.TrainSeqs = 3
	s.TrainFrames = 50
	s.TestSeqs = 1
	s.TestFrames = 60
	return s
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1", "table2a", "table2b", "accuracy", "multiapp", "ablations", "crossval"}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, fastStudy(), "nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"150.0 MB/s", "120.0 MB/s", "per-scenario"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(&buf, fastStudy(), 120); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LPF", "HPF", "autocorrelation", "mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Spot-check the verbatim Table 1 numbers.
	for _, want := range []string{"7168", "5120", "4608", "8192", "2560"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf, fastStudy().Arch); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2327") {
		t.Fatalf("Fig4 missing clock:\n%s", buf.String())
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, fastStudy().Arch); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EVICTED", "RDG_FULL", "MB/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig5 missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf, fastStudy()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"serial", "2-stripe", "linear growth fit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig6 missing %q:\n%s", want, out)
		}
	}
	// The sweep must show the 2-stripe column beating serial on the largest
	// ROI row: parse is overkill, just check ordering textually appears via
	// the fit being positive.
	if strings.Contains(out, "y = -") {
		t.Fatalf("Fig6 fit has negative slope:\n%s", out)
	}
}

func TestTable2aOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2a(&buf, fastStudy()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "s0") {
		t.Fatalf("Table2a missing states:\n%s", buf.String())
	}
}

func TestTable2bOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2b(&buf, fastStudy()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<Eq. 1> + Markov RDG", "<Eq. 3> + Markov RDG"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2b missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(&buf, fastStudy(), 80); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"straightforward", "semi-auto", "jitter reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestAccuracyOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := AccuracyReport(&buf, fastStudy()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mean accuracy", "bandwidth analysis", "worst excursion"} {
		if !strings.Contains(out, want) {
			t.Fatalf("accuracy report missing %q:\n%s", want, out)
		}
	}
}

func TestPaperStudyCorpusSize(t *testing.T) {
	s := PaperStudy()
	if s.TrainSeqs != 37 {
		t.Fatalf("paper study must use 37 sequences, got %d", s.TrainSeqs)
	}
	total := s.TrainSeqs * s.TrainFrames
	if total < 1900 || total > 1950 {
		t.Fatalf("paper corpus = %d frames, want ~1,921", total)
	}
}

func TestStudyObservationsDeterministic(t *testing.T) {
	s := fastStudy()
	a, err := s.Observations(42, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Observations(42, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].TotalMs != b[i].TotalMs {
			t.Fatalf("observation %d not deterministic", i)
		}
	}
}

func TestMultiAppOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := MultiApp(&buf, fastStudy()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stentboost-A", "stentboost-B", "combined peak core demand", "timeline", "worst-case reservation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("multiapp report missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablations(&buf, fastStudy()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"EWMA + Markov", "worst-case reserve", "state count",
		"equal-frequency", "equal-width", "order 2", "alpha",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations report missing %q:\n%s", want, out)
		}
	}
}

func TestCrossValOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := CrossVal(&buf, fastStudy()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fold 0", "mean accuracy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("crossval report missing %q:\n%s", want, out)
		}
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the trace parser: malformed CSV must error, valid
// parses must round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("frame,lat\n0,1.5\n1,2.5\n")
	f.Add("frame,a,b\n0,1,2\n")
	f.Add("frame,x\n0,abc\n")
	f.Add("nope\n")
	f.Add("")
	f.Add("frame,x\n0,1\n1\n")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != tr.Len() || len(back.Names()) != len(tr.Names()) {
			t.Fatal("round trip changed shape")
		}
	})
}

package trace

import (
	"errors"
	"math"

	"triplec/internal/metrics"
)

// Recorder bridges the live telemetry layer into the trace tooling: each
// Sample appends one aligned row per registered instrument to a Trace, so a
// serving run's metrics can be exported as CSV or charted with the same
// machinery as the per-frame traces. Counters and gauges become one column
// each; histograms become a _count and a _sum column (enough to recover the
// rate and the mean between any two samples).
//
// The first Sample fixes the column set. Later samples match instruments by
// name, so instruments registered after the first Sample are ignored and an
// instrument that yields no value records NaN (the Chart renderer skips
// non-finite samples).
type Recorder struct {
	reg  *metrics.Registry
	tr   *Trace
	cols []string
}

// NewRecorder builds a recorder over reg with an empty trace.
func NewRecorder(reg *metrics.Registry) (*Recorder, error) {
	if reg == nil {
		return nil, errors.New("trace: recorder needs a registry")
	}
	return &Recorder{reg: reg, tr: New()}, nil
}

// columnName flattens one instrument to a stable series name.
func columnName(family string, m metrics.MetricSnapshot, suffix string) string {
	name := family + suffix
	if m.LabelStr != "" {
		name += "{" + m.LabelStr + "}"
	}
	return name
}

// flatten renders the registry snapshot as name→value pairs in snapshot
// order.
func flatten(snap metrics.Snapshot) ([]string, map[string]float64) {
	var names []string
	values := make(map[string]float64)
	add := func(name string, v float64) {
		if _, dup := values[name]; dup {
			return
		}
		names = append(names, name)
		values[name] = v
	}
	for _, f := range snap.Families {
		for _, m := range f.Metrics {
			switch f.Kind {
			case metrics.KindCounter, metrics.KindGauge:
				add(columnName(f.Name, m, ""), m.Value)
			case metrics.KindHistogram:
				add(columnName(f.Name, m, "_count"), float64(m.Histogram.Count))
				add(columnName(f.Name, m, "_sum"), m.Histogram.Sum)
			}
		}
	}
	return names, values
}

// Sample reads the registry and appends one row to the trace.
func (r *Recorder) Sample() error {
	names, values := flatten(r.reg.Snapshot())
	if r.cols == nil {
		r.cols = names
		for _, n := range names {
			if err := r.tr.AddEmpty(n); err != nil {
				return err
			}
		}
	}
	row := make([]float64, len(r.cols))
	for i, n := range r.cols {
		if v, ok := values[n]; ok {
			row[i] = v
		} else {
			row[i] = math.NaN()
		}
	}
	return r.tr.Append(row...)
}

// Trace returns the recorded trace (one row per Sample). The trace is live:
// further Samples keep appending to it.
func (r *Recorder) Trace() *Trace {
	return r.tr
}

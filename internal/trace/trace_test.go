package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndGet(t *testing.T) {
	tr := New()
	if err := tr.Add("lat", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get("lat")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("Get = %v", got)
	}
	// Returned slice is a copy.
	got[0] = 99
	again, _ := tr.Get("lat")
	if again[0] != 1 {
		t.Fatal("Get must return a copy")
	}
}

func TestAddValidation(t *testing.T) {
	tr := New()
	if err := tr.Add("", nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := tr.Add("a", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add("a", []float64{3, 4}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := tr.Add("b", []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := New().Get("x"); err == nil {
		t.Fatal("unknown series accepted")
	}
}

func TestAppendFlow(t *testing.T) {
	tr := New()
	if err := tr.AddEmpty("a"); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddEmpty("b"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(3, 4); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Append(1); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := tr.AddEmpty("c"); err == nil {
		t.Fatal("AddEmpty on non-empty trace accepted")
	}
}

func TestNamesOrder(t *testing.T) {
	tr := New()
	tr.Add("z", []float64{1})
	tr.Add("a", []float64{2})
	names := tr.Names()
	if names[0] != "z" || names[1] != "a" {
		t.Fatalf("Names = %v, want insertion order", names)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := New()
	tr.Add("lat", []float64{1.5, 2.25, 3})
	tr.Add("pred", []float64{1.4, 2.5, 2.9})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("round trip Len = %d", back.Len())
	}
	a, _ := back.Get("lat")
	if a[1] != 2.25 {
		t.Fatalf("round trip value = %v", a[1])
	}
}

func TestCSVHeader(t *testing.T) {
	tr := New()
	tr.Add("x", []float64{7})
	var buf bytes.Buffer
	tr.WriteCSV(&buf)
	if !strings.HasPrefix(buf.String(), "frame,x\n0,7\n") {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("nope,x\n0,1\n")); err == nil {
		t.Fatal("missing frame header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("frame,x\n0,abc\n")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}

func TestSummary(t *testing.T) {
	tr := New()
	tr.Add("lat", []float64{10, 20, 30})
	s := tr.Summary()
	if !strings.Contains(s, "lat") || !strings.Contains(s, "20.00") {
		t.Fatalf("summary = %q", s)
	}
	empty := New()
	empty.AddEmpty("void")
	if !strings.Contains(empty.Summary(), "-") {
		t.Fatal("empty series summary must show dashes")
	}
}

func TestChart(t *testing.T) {
	tr := New()
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = float64(i)
	}
	tr.Add("ramp", vals)
	out, err := tr.Chart(40, 8, "ramp")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "ramp") {
		t.Fatalf("chart = %q", out)
	}
	lines := strings.Split(out, "\n")
	// hi label + 8 rows + lo/legend line (+ trailing empty)
	if len(lines) < 10 {
		t.Fatalf("chart has %d lines", len(lines))
	}
}

func TestChartOverlay(t *testing.T) {
	tr := New()
	tr.Add("a", []float64{1, 2, 3, 4})
	tr.Add("b", []float64{4, 3, 2, 1})
	out, err := tr.Chart(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("overlay chart missing glyphs:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	tr := New()
	tr.Add("a", []float64{1})
	if _, err := tr.Chart(4, 1, "a"); err == nil {
		t.Fatal("tiny chart accepted")
	}
	if _, err := tr.Chart(20, 5, "zzz"); err == nil {
		t.Fatal("unknown series accepted")
	}
	empty := New()
	empty.AddEmpty("e")
	if _, err := empty.Chart(20, 5, "e"); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	tr := New()
	tr.Add("flat", []float64{5, 5, 5})
	if _, err := tr.Chart(20, 5, "flat"); err != nil {
		t.Fatalf("constant series must chart: %v", err)
	}
}

// Property: CSV round trip preserves every value (within float formatting).
func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(raw []int32) bool {
		tr := New()
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v) / 8
		}
		if err := tr.Add("v", vals); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		got, err := back.Get("v")
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMergePrefixesSeries(t *testing.T) {
	a := New()
	if err := a.Add("latency_ms", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	b := New()
	if err := b.Add("latency_ms", []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	m, err := Merge([]string{"s0", "s1"}, []*Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Get("s1_latency_ms")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("merged series = %v", got)
	}
	if names := m.Names(); len(names) != 2 || names[0] != "s0_latency_ms" {
		t.Fatalf("merged names = %v", names)
	}
}

func TestMergeValidation(t *testing.T) {
	a := New()
	if err := a.Add("x", []float64{1}); err != nil {
		t.Fatal(err)
	}
	b := New()
	if err := b.Add("x", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]string{"a"}, []*Trace{a, b}); err == nil {
		t.Fatal("prefix/trace count mismatch accepted")
	}
	if _, err := Merge([]string{"a", "b"}, []*Trace{a, b}); err == nil {
		t.Fatal("unequal lengths accepted")
	}
	if _, err := Merge(nil, nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge([]string{"a"}, []*Trace{nil}); err == nil {
		t.Fatal("nil trace accepted")
	}
}

package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"triplec/internal/metrics"
)

func TestCSVRoundTripNonFinite(t *testing.T) {
	tr := New()
	if err := tr.Add("v", []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), -2.5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("round-trip with NaN/Inf failed: %v", err)
	}
	got, err := back.Get("v")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), -2.5}
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		switch {
		case math.IsNaN(want[i]):
			if !math.IsNaN(got[i]) {
				t.Errorf("value %d: got %v, want NaN", i, got[i])
			}
		case got[i] != want[i]:
			t.Errorf("value %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestChartSkipsNonFinite(t *testing.T) {
	tr := New()
	// One NaN and one +Inf embedded in an otherwise 0..4 ramp: the scale
	// must come from the finite samples only.
	if err := tr.Add("v", []float64{0, math.NaN(), 2, math.Inf(1), 4}); err != nil {
		t.Fatal(err)
	}
	chart, err := tr.Chart(10, 5, "v")
	if err != nil {
		t.Fatalf("chart with non-finite samples: %v", err)
	}
	if !strings.HasPrefix(chart, "4.00\n") {
		t.Errorf("max label not taken from finite samples:\n%s", chart)
	}
	if !strings.Contains(chart, "\n0.00") {
		t.Errorf("min label not taken from finite samples:\n%s", chart)
	}
}

func TestChartAllNonFinite(t *testing.T) {
	tr := New()
	if err := tr.Add("v", []float64{math.NaN(), math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Chart(10, 5, "v"); err == nil {
		t.Fatal("chart of all-non-finite series succeeded")
	}
}

// TestRecorderAlignedSeries drives the metrics→trace bridge: successive
// Samples must land as aligned rows, histograms must expand to _count/_sum
// columns, and instruments registered after the first Sample must not skew
// the existing columns.
func TestRecorderAlignedSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	frames, err := reg.NewCounter("frames_total", "processed frames", metrics.L("stream", "a"))
	if err != nil {
		t.Fatal(err)
	}
	lat, err := reg.NewHistogram("latency_ms", "frame latency",
		metrics.DefaultLatencyBucketsMs(), metrics.L("stream", "a"))
	if err != nil {
		t.Fatal(err)
	}

	rec, err := NewRecorder(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Sample(); err != nil { // row 0: all zero
		t.Fatal(err)
	}
	frames.Inc()
	lat.Observe(4)
	lat.Observe(6)
	if err := rec.Sample(); err != nil { // row 1
		t.Fatal(err)
	}

	// A late registration must not disturb the fixed columns.
	late, err := reg.NewCounter("late_total", "registered after first sample")
	if err != nil {
		t.Fatal(err)
	}
	late.Inc()
	frames.Inc()
	if err := rec.Sample(); err != nil { // row 2
		t.Fatal(err)
	}

	tr := rec.Trace()
	if tr.Len() != 3 {
		t.Fatalf("trace has %d rows, want 3", tr.Len())
	}
	check := func(col string, want []float64) {
		t.Helper()
		got, err := tr.Get(col)
		if err != nil {
			t.Fatalf("column %q: %v (have %v)", col, err, tr.Names())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("column %q row %d: got %v, want %v", col, i, got[i], want[i])
			}
		}
	}
	check(`frames_total{stream="a"}`, []float64{0, 1, 2})
	check(`latency_ms_count{stream="a"}`, []float64{0, 2, 2})
	check(`latency_ms_sum{stream="a"}`, []float64{0, 10, 10})
	for _, n := range tr.Names() {
		if strings.Contains(n, "late_total") {
			t.Errorf("late registration leaked into columns: %v", tr.Names())
		}
	}

	// The bridged trace must survive the CSV round trip.
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSV(&buf); err != nil {
		t.Fatalf("bridged trace CSV round trip: %v", err)
	}
}

// Package trace records per-frame execution traces and renders them as
// CSV/TSV tables or quick ASCII charts. The paper's profiling step gathers
// exactly this kind of data ("statistical information of the differences
// between the actually consumed resources and the predicted values"); the
// cmd tools and examples use it to export series for external plotting.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"triplec/internal/stats"
)

// Series is a named column of per-frame values.
type Series struct {
	Name   string
	Values []float64
}

// Trace is a collection of aligned per-frame series.
type Trace struct {
	columns []Series
	index   map[string]int
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{index: map[string]int{}}
}

// Add appends a complete series. All series in a trace must have the same
// length; the first Add fixes it.
func (t *Trace) Add(name string, values []float64) error {
	if name == "" {
		return errors.New("trace: empty series name")
	}
	if _, dup := t.index[name]; dup {
		return fmt.Errorf("trace: duplicate series %q", name)
	}
	if len(t.columns) > 0 && len(values) != t.Len() {
		return fmt.Errorf("trace: series %q has %d values, trace has %d frames",
			name, len(values), t.Len())
	}
	t.index[name] = len(t.columns)
	t.columns = append(t.columns, Series{Name: name, Values: append([]float64(nil), values...)})
	return nil
}

// Append adds one frame worth of values, one per existing series, in the
// order the series were added. Use for incremental recording: create the
// trace with AddEmpty columns first.
func (t *Trace) Append(values ...float64) error {
	if len(values) != len(t.columns) {
		return fmt.Errorf("trace: Append got %d values for %d series", len(values), len(t.columns))
	}
	for i, v := range values {
		t.columns[i].Values = append(t.columns[i].Values, v)
	}
	return nil
}

// AddEmpty declares a series with no values yet (for Append-style use).
func (t *Trace) AddEmpty(name string) error {
	if t.Len() > 0 {
		return errors.New("trace: cannot add empty series to a non-empty trace")
	}
	return t.Add(name, nil)
}

// Len returns the number of frames recorded.
func (t *Trace) Len() int {
	if len(t.columns) == 0 {
		return 0
	}
	return len(t.columns[0].Values)
}

// Names returns the series names in column order.
func (t *Trace) Names() []string {
	out := make([]string, len(t.columns))
	for i, c := range t.columns {
		out[i] = c.Name
	}
	return out
}

// Get returns a copy of the named series.
func (t *Trace) Get(name string) ([]float64, error) {
	i, ok := t.index[name]
	if !ok {
		return nil, fmt.Errorf("trace: no series %q", name)
	}
	return append([]float64(nil), t.columns[i].Values...), nil
}

// Merge combines several traces of equal length into one, prefixing every
// series name with the corresponding prefix (joined with "_"). The serving
// layer uses it to export the per-stream latency/throughput/deadline series
// side by side in a single CSV.
func Merge(prefixes []string, traces []*Trace) (*Trace, error) {
	if len(prefixes) != len(traces) {
		return nil, fmt.Errorf("trace: %d prefixes for %d traces", len(prefixes), len(traces))
	}
	if len(traces) == 0 {
		return nil, errors.New("trace: nothing to merge")
	}
	out := New()
	for ti, tr := range traces {
		if tr == nil {
			return nil, fmt.Errorf("trace: trace %d is nil", ti)
		}
		if tr.Len() != traces[0].Len() {
			return nil, fmt.Errorf("trace: trace %q has %d frames, want %d",
				prefixes[ti], tr.Len(), traces[0].Len())
		}
		for _, c := range tr.columns {
			name := c.Name
			if prefixes[ti] != "" {
				name = prefixes[ti] + "_" + name
			}
			if err := out.Add(name, c.Values); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// WriteCSV emits the trace as CSV with a header row and a leading frame
// column.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"frame"}, t.Names()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < t.Len(); i++ {
		row[0] = strconv.Itoa(i)
		for j, c := range t.columns {
			row[j+1] = strconv.FormatFloat(c.Values[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 || len(records[0]) < 2 || records[0][0] != "frame" {
		return nil, errors.New("trace: not a trace CSV")
	}
	names := records[0][1:]
	cols := make([][]float64, len(names))
	for rowIdx, rec := range records[1:] {
		if len(rec) != len(names)+1 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", rowIdx+1, len(rec), len(names)+1)
		}
		for j := range names {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d column %q: %w", rowIdx+1, names[j], err)
			}
			cols[j] = append(cols[j], v)
		}
	}
	out := New()
	for j, name := range names {
		if err := out.Add(name, cols[j]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Summary renders per-series statistics.
func (t *Trace) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %10s %10s %10s\n", "series", "mean", "min", "max", "std")
	for _, c := range t.columns {
		if len(c.Values) == 0 {
			fmt.Fprintf(&b, "%-20s %10s %10s %10s %10s\n", c.Name, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-20s %10.2f %10.2f %10.2f %10.2f\n",
			c.Name, stats.Mean(c.Values), stats.Min(c.Values), stats.Max(c.Values), stats.StdDev(c.Values))
	}
	return b.String()
}

// Chart renders an ASCII line chart of the named series, `width` columns
// wide and `height` rows tall, with min/max labels. Several series can be
// overlaid; each uses its own glyph.
func (t *Trace) Chart(width, height int, names ...string) (string, error) {
	if width < 8 || height < 2 {
		return "", errors.New("trace: chart too small")
	}
	if len(names) == 0 {
		names = t.Names()
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#'}
	var cols []Series
	// The range scan and the plot below ignore NaN/±Inf samples (series fed
	// from live metrics may contain gaps) instead of letting one poison the
	// whole scale.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, n := range names {
		i, ok := t.index[n]
		if !ok {
			return "", fmt.Errorf("trace: no series %q", n)
		}
		c := t.columns[i]
		if len(c.Values) == 0 {
			return "", fmt.Errorf("trace: series %q empty", n)
		}
		cols = append(cols, c)
		for _, v := range c.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > hi {
		return "", fmt.Errorf("trace: series %s hold no finite values to chart", strings.Join(names, ", "))
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range cols {
		g := glyphs[ci%len(glyphs)]
		n := len(c.Values)
		for x := 0; x < width; x++ {
			idx := x * (n - 1) / max(1, width-1)
			if n == 1 {
				idx = 0
			}
			v := c.Values[idx]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue // leave a gap where the sample is not finite
			}
			row := int((hi - v) / (hi - lo) * float64(height-1))
			grid[row][x] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%.2f\n", hi)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%.2f", lo)
	legend := make([]string, len(cols))
	for i, c := range cols {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], c.Name)
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, "   [%s]\n", strings.Join(legend, " "))
	return b.String(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

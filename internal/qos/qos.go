// Package qos implements the quality-of-service side of the runtime
// manager: the constant-latency output regulator (a delay function at the
// end of the pipeline) and the jitter metrics the paper's Section 7 reports
// (latency variability, worst-case vs average-case gap, jitter reduction).
package qos

import (
	"errors"

	"triplec/internal/stats"
)

// Regulator keeps the output latency constant at BudgetMs: frames that
// finish early are delayed to the budget; frames that overrun are emitted
// late. During a live interventional X-ray procedure large latency
// differences between succeeding frames are not allowed for clinical
// reasons (eye-hand coordination of the physician).
type Regulator struct {
	// BudgetMs is the constant output latency target, initialized close to
	// the average case per the paper's Section 6.
	BudgetMs float64
}

// OutputLatency returns the latency the viewer observes for a frame with
// the given processing time: the budget when processing finished in time,
// the processing time itself when it overran.
func (r Regulator) OutputLatency(processingMs float64) float64 {
	if processingMs > r.BudgetMs {
		return processingMs
	}
	return r.BudgetMs
}

// DelayMs returns the artificial delay inserted for the frame.
func (r Regulator) DelayMs(processingMs float64) float64 {
	if processingMs >= r.BudgetMs {
		return 0
	}
	return r.BudgetMs - processingMs
}

// Overrun returns by how much the frame missed the budget (0 if met).
func (r Regulator) Overrun(processingMs float64) float64 {
	if processingMs <= r.BudgetMs {
		return 0
	}
	return processingMs - r.BudgetMs
}

// Regulate maps a processing-latency series to the observed output-latency
// series.
func (r Regulator) Regulate(processing []float64) []float64 {
	out := make([]float64, len(processing))
	for i, p := range processing {
		out[i] = r.OutputLatency(p)
	}
	return out
}

// OverrunRate returns the fraction of frames that missed the budget.
func (r Regulator) OverrunRate(processing []float64) float64 {
	if len(processing) == 0 {
		return 0
	}
	n := 0
	for _, p := range processing {
		if p > r.BudgetMs {
			n++
		}
	}
	return float64(n) / float64(len(processing))
}

// JitterReduction returns how much of the latency jitter the `after` series
// removes relative to `before`, measured on the standard deviation:
// 1 - std(after)/std(before). The paper reports that semi-automatic
// parallelization lowers the jitter by almost 70%.
func JitterReduction(before, after []float64) (float64, error) {
	if len(before) == 0 || len(after) == 0 {
		return 0, errors.New("qos: empty series")
	}
	sb := stats.StdDev(before)
	if sb == 0 {
		return 0, errors.New("qos: reference series has no jitter")
	}
	return 1 - stats.StdDev(after)/sb, nil
}

// WorstVsAverage returns the relative worst-case vs average-case gap of a
// latency series ((max-mean)/mean) — 85% for the paper's straightforward
// mapping, 20% for the semi-automatic parallel case.
func WorstVsAverage(series []float64) (float64, error) {
	j, err := stats.JitterOf(series)
	if err != nil {
		return 0, err
	}
	return j.WorstVsAvg, nil
}

// LatencyProfile summarizes a latency series the way real-time systems are
// specified: mean and tail percentiles.
type LatencyProfile struct {
	Mean, P50, P90, P95, P99, Max float64
	Frames                        int
}

// ProfileOf computes the LatencyProfile of a series.
func ProfileOf(series []float64) (LatencyProfile, error) {
	if len(series) == 0 {
		return LatencyProfile{}, errors.New("qos: empty series")
	}
	p := LatencyProfile{Mean: stats.Mean(series), Max: stats.Max(series), Frames: len(series)}
	for _, q := range []struct {
		pct float64
		dst *float64
	}{{50, &p.P50}, {90, &p.P90}, {95, &p.P95}, {99, &p.P99}} {
		v, err := stats.Percentile(series, q.pct)
		if err != nil {
			return LatencyProfile{}, err
		}
		*q.dst = v
	}
	return p, nil
}

package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOutputLatency(t *testing.T) {
	r := Regulator{BudgetMs: 40}
	if r.OutputLatency(30) != 40 {
		t.Fatal("early frame must be delayed to the budget")
	}
	if r.OutputLatency(55) != 55 {
		t.Fatal("overrunning frame must pass through")
	}
	if r.OutputLatency(40) != 40 {
		t.Fatal("exact frame must match budget")
	}
}

func TestDelayMs(t *testing.T) {
	r := Regulator{BudgetMs: 40}
	if r.DelayMs(30) != 10 {
		t.Fatal("delay wrong")
	}
	if r.DelayMs(45) != 0 {
		t.Fatal("overrun must have zero delay")
	}
}

func TestOverrun(t *testing.T) {
	r := Regulator{BudgetMs: 40}
	if r.Overrun(30) != 0 {
		t.Fatal("met budget must have zero overrun")
	}
	if r.Overrun(47) != 7 {
		t.Fatal("overrun wrong")
	}
}

func TestRegulate(t *testing.T) {
	r := Regulator{BudgetMs: 10}
	out := r.Regulate([]float64{5, 10, 15})
	want := []float64{10, 10, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Regulate = %v, want %v", out, want)
		}
	}
}

func TestOverrunRate(t *testing.T) {
	r := Regulator{BudgetMs: 10}
	if got := r.OverrunRate([]float64{5, 11, 9, 20}); got != 0.5 {
		t.Fatalf("OverrunRate = %v, want 0.5", got)
	}
	if r.OverrunRate(nil) != 0 {
		t.Fatal("empty series rate must be 0")
	}
}

func TestJitterReduction(t *testing.T) {
	before := []float64{60, 120, 60, 120} // std 30
	after := []float64{85, 95, 85, 95}    // std 5
	got, err := JitterReduction(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(1-5.0/30)) > 1e-12 {
		t.Fatalf("JitterReduction = %v", got)
	}
}

func TestJitterReductionErrors(t *testing.T) {
	if _, err := JitterReduction(nil, []float64{1}); err == nil {
		t.Fatal("empty before accepted")
	}
	if _, err := JitterReduction([]float64{1}, nil); err == nil {
		t.Fatal("empty after accepted")
	}
	if _, err := JitterReduction([]float64{5, 5}, []float64{1, 2}); err == nil {
		t.Fatal("zero-jitter reference accepted")
	}
}

func TestWorstVsAverage(t *testing.T) {
	got, err := WorstVsAverage([]float64{80, 100, 100, 120})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("WorstVsAverage = %v, want 0.2", got)
	}
	if _, err := WorstVsAverage(nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

// Property: the regulator's output is never below the budget and never
// below the processing time.
func TestPropertyRegulatorBounds(t *testing.T) {
	f := func(pRaw uint16, bRaw uint16) bool {
		p := float64(pRaw) / 10
		b := float64(bRaw) / 10
		r := Regulator{BudgetMs: b}
		out := r.OutputLatency(p)
		return out >= b && out >= p && math.Abs(out-(p+r.DelayMs(p))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileOf(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i + 1) // 1..100
	}
	p, err := ProfileOf(series)
	if err != nil {
		t.Fatal(err)
	}
	if p.Frames != 100 || p.Max != 100 {
		t.Fatalf("profile basics wrong: %+v", p)
	}
	if math.Abs(p.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v", p.Mean)
	}
	if p.P50 < 49 || p.P50 > 52 {
		t.Fatalf("P50 = %v", p.P50)
	}
	if p.P99 < 98 || p.P99 > 100 {
		t.Fatalf("P99 = %v", p.P99)
	}
	if !(p.P50 <= p.P90 && p.P90 <= p.P95 && p.P95 <= p.P99 && p.P99 <= p.Max) {
		t.Fatalf("percentiles not ordered: %+v", p)
	}
	if _, err := ProfileOf(nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

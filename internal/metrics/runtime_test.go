package metrics

import (
	"bytes"
	"math"
	"testing"
)

// TestSignedRelErr pins the degenerate-sample contract: non-finite values
// on either side, and actuals too small to carry scale, are rejected
// rather than turned into million-percent relative errors.
func TestSignedRelErr(t *testing.T) {
	cases := []struct {
		name      string
		predicted float64
		actual    float64
		want      float64
		ok        bool
	}{
		{"over-prediction", 1.2, 1.0, 0.2, true},
		{"under-prediction", 0.5, 1.0, -0.5, true},
		{"exact", 3.0, 3.0, 0, true},
		{"zero prediction", 0, 2.0, -1, true},
		{"actual at the floor", 2e-6, MinActualMs, 1, true},
		{"zero actual", 1.0, 0, 0, false},
		{"actual below floor", 1.0, MinActualMs / 2, 0, false},
		{"negative actual", 1.0, -1.0, 0, false},
		{"NaN prediction", math.NaN(), 1.0, 0, false},
		{"NaN actual", 1.0, math.NaN(), 0, false},
		{"Inf prediction", math.Inf(1), 1.0, 0, false},
		{"Inf actual", 1.0, math.Inf(-1), 0, false},
	}
	for _, tc := range cases {
		rel, ok := SignedRelErr(tc.predicted, tc.actual)
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if !ok {
			if rel != 0 {
				t.Errorf("%s: degenerate sample returned rel %v, want 0", tc.name, rel)
			}
			continue
		}
		if math.Abs(rel-tc.want) > 1e-12 {
			t.Errorf("%s: rel = %v, want %v", tc.name, rel, tc.want)
		}
	}
}

// TestAccountantDegenerateSamples checks degenerate predictions increment
// the drop counter instead of poisoning the error histograms.
func TestAccountantDegenerateSamples(t *testing.T) {
	r := NewRegistry()
	a, err := NewAccountant(r, AccountantConfig{Stream: "s0", Tasks: []string{"T0"}})
	if err != nil {
		t.Fatal(err)
	}
	a.ObservePrediction(0, 1.0, 0)           // actual carries no scale
	a.ObservePrediction(0, math.NaN(), 1.0)  // non-finite prediction
	a.ObservePrediction(0, 1.0, math.Inf(1)) // non-finite actual
	a.ObservePrediction(0, 1.1, 1.0)         // the one good sample
	if got := a.Degenerate.Value(); got != 3 {
		t.Errorf("degenerate counter = %v, want 3", got)
	}
	if got := a.TaskRelErr[0].Count(); got != 1 {
		t.Errorf("rel-error histogram holds %d samples, want only the good one", got)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for series, v := range parseExposition(t, b.String()) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("degenerate samples leaked a non-finite value into %s = %v", series, v)
		}
	}
}

// TestRuntimeMetrics registers the runtime health gauges and checks a
// scrape refreshes them with sane values via the registered collector.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	m, err := NewRuntimeMetrics(r)
	if err != nil {
		t.Fatal(err)
	}
	// Values are only sampled at scrape time: render an exposition to fire
	// the collector.
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if g := m.Goroutines.Value(); g < 1 {
		t.Errorf("goroutines = %v, want at least this one", g)
	}
	if m.HeapAlloc.Value() <= 0 || m.HeapInuse.Value() <= 0 {
		t.Errorf("heap gauges not sampled: alloc=%v inuse=%v",
			m.HeapAlloc.Value(), m.HeapInuse.Value())
	}
	if m.TotalAlloc.Value() < m.HeapAlloc.Value() {
		t.Errorf("cumulative alloc %v below live heap %v",
			m.TotalAlloc.Value(), m.HeapAlloc.Value())
	}
	samples := parseExposition(t, b.String())
	for _, fam := range []string{
		"triplec_go_goroutines",
		"triplec_go_heap_alloc_bytes",
		"triplec_go_heap_inuse_bytes",
		"triplec_go_alloc_bytes_total",
		"triplec_go_gc_pause_last_ns",
		"triplec_go_gc_pause_total_ns",
		"triplec_go_gc_runs_total",
	} {
		if _, found := samples[fam]; !found {
			t.Errorf("family %s missing from exposition", fam)
		}
	}

	// The family names are claimed once; a second registration must fail
	// rather than silently fork the gauges.
	if _, err := NewRuntimeMetrics(r); err == nil {
		t.Error("duplicate runtime metric registration accepted")
	}
}

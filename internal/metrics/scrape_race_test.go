package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentScrapeDuringRecording hammers the exposition path while
// writers record and new instruments register — the exact interleaving a
// Prometheus scraper produces against a live serving run. Run under -race
// this pins the registry's snapshot/registration locking; functionally it
// checks every scrape returns a parseable, internally consistent page.
func TestConcurrentScrapeDuringRecording(t *testing.T) {
	r := NewRegistry()
	c, err := r.NewCounter("frames_total", "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := r.NewGauge("budget_ms", "")
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.NewHistogram("latency_ms", "", []float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	handler := Handler(r)

	var stop atomic.Bool
	var writers, readers sync.WaitGroup

	// Writers: record as fast as possible until the scrapers are done.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; !stop.Load(); i++ {
				c.Inc()
				g.Set(float64(i % 50))
				h.Observe(float64(i % 200))
			}
		}()
	}
	// Registrar: keep adding instrument families mid-flight.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; i < 64; i++ {
			name := "dynamic_" + string(rune('a'+i%26)) + "_total"
			cc, err := r.NewCounter(name, "", L("i", string(rune('a'+i%26))))
			if err == nil {
				cc.Inc()
			}
		}
	}()

	// Scrapers: concurrent GET /metrics against the same registry.
	const scrapers, scrapes = 4, 50
	errs := make(chan string, scrapers*scrapes)
	for s := 0; s < scrapers; s++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < scrapes; i++ {
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if rec.Code != 200 {
					errs <- "scrape status " + rec.Result().Status
					continue
				}
				body := rec.Body.String()
				if !strings.Contains(body, "frames_total") {
					errs <- "scrape missing frames_total"
				}
				// Histogram invariant: +Inf bucket must appear whenever the
				// histogram family is rendered.
				if strings.Contains(body, "latency_ms_bucket") &&
					!strings.Contains(body, `le="+Inf"`) {
					errs <- "histogram rendered without +Inf bucket"
				}
			}
		}()
	}

	readers.Wait()
	stop.Store(true)
	writers.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

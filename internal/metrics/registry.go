package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to an instrument.
type Label struct {
	Name, Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Kind is the instrument type of a metric family.
type Kind int

// The three instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// entry is one registered instrument: a family member with a fixed label
// set, pre-rendered at registration so exposition never re-escapes.
type entry struct {
	labels   []Label
	labelStr string // `stream="a",task="b"` with escaped values, or ""

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups all instruments sharing one metric name.
type family struct {
	name, help string
	kind       Kind
	entries    []*entry
	seen       map[string]bool // label signatures, for duplicate detection
}

// Registry holds named instrument families. All methods are safe for
// concurrent use; registration normally happens once at setup time, the
// record path then touches only the returned instrument handles.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string // family registration order, for stable exposition
	collectors []func() // refresh hooks run before every snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// NewCounter registers a counter with the given label set and returns its
// handle. Registering the same name with a different kind, or the same
// (name, labels) twice, is an error.
func (r *Registry) NewCounter(name, help string, labels ...Label) (*Counter, error) {
	e, err := r.register(name, help, KindCounter, nil, labels)
	if err != nil {
		return nil, err
	}
	return e.counter, nil
}

// NewGauge registers a gauge and returns its handle.
func (r *Registry) NewGauge(name, help string, labels ...Label) (*Gauge, error) {
	e, err := r.register(name, help, KindGauge, nil, labels)
	if err != nil {
		return nil, err
	}
	return e.gauge, nil
}

// NewHistogram registers a histogram with the given bucket upper bounds
// (strictly increasing, finite; +Inf is implicit) and returns its handle.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...Label) (*Histogram, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("metrics: histogram %q needs at least one bucket", name)
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("metrics: histogram %q bucket %d is not finite", name, i)
		}
		if i > 0 && b <= buckets[i-1] {
			return nil, fmt.Errorf("metrics: histogram %q buckets not strictly increasing at %d", name, i)
		}
	}
	e, err := r.register(name, help, KindHistogram, buckets, labels)
	if err != nil {
		return nil, err
	}
	return e.hist, nil
}

func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []Label) (*entry, error) {
	if !validMetricName(name) {
		return nil, fmt.Errorf("metrics: invalid metric name %q", name)
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			return nil, fmt.Errorf("metrics: metric %q: invalid label name %q", name, l.Name)
		}
		if kind == KindHistogram && l.Name == "le" {
			return nil, fmt.Errorf("metrics: metric %q: label \"le\" is reserved for histogram buckets", name)
		}
	}
	e := &entry{
		labels:   append([]Label(nil), labels...),
		labelStr: renderLabels(labels),
	}
	switch kind {
	case KindCounter:
		e.counter = &Counter{}
	case KindGauge:
		e.gauge = &Gauge{}
	case KindHistogram:
		e.hist = newHistogram(buckets)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, seen: map[string]bool{}}
		r.families[name] = f
		r.order = append(r.order, name)
	} else {
		if f.kind != kind {
			return nil, fmt.Errorf("metrics: metric %q already registered as %s", name, f.kind)
		}
		if help != "" && f.help == "" {
			f.help = help
		}
	}
	if f.seen[e.labelStr] {
		return nil, fmt.Errorf("metrics: duplicate metric %q{%s}", name, e.labelStr)
	}
	f.seen[e.labelStr] = true
	f.entries = append(f.entries, e)
	return e, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels pre-renders `k="v",k2="v2"` with label values escaped per
// the Prometheus text format (backslash, double-quote, newline).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		for _, c := range l.Value {
			switch c {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(c)
			}
		}
		b.WriteByte('"')
	}
	return b.String()
}

// Snapshot is a point-in-time copy of every registered instrument, in
// registration order — the input of the metrics→trace bridge and the
// /healthz summaries.
type Snapshot struct {
	Families []FamilySnapshot
}

// FamilySnapshot is one metric family's snapshot.
type FamilySnapshot struct {
	Name, Help string
	Kind       Kind
	Metrics    []MetricSnapshot
}

// MetricSnapshot is one instrument's snapshot. Value carries counter and
// gauge readings; Histogram is set for histograms.
type MetricSnapshot struct {
	Labels    []Label
	LabelStr  string
	Value     float64
	Histogram *HistogramSnapshot
}

// RegisterCollector adds a refresh hook invoked before every Snapshot (and
// therefore before every exposition scrape and CSV sample). Collectors
// update pull-style gauges — e.g. Go runtime health — that have no event to
// record on; they run outside the registry lock, so they may only touch
// instrument handles (which are atomics), never the registry itself.
func (r *Registry) RegisterCollector(f func()) {
	if f == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// Snapshot copies the current state of every instrument. Families and
// instruments appear in registration order, so repeated snapshots of a
// registry keep stable prefixes even when new instruments are registered in
// between (they append).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	collectors := r.collectors
	r.mu.Unlock()
	for _, f := range collectors {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := Snapshot{Families: make([]FamilySnapshot, 0, len(r.order))}
	for _, name := range r.order {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind,
			Metrics: make([]MetricSnapshot, 0, len(f.entries))}
		for _, e := range f.entries {
			ms := MetricSnapshot{Labels: append([]Label(nil), e.labels...), LabelStr: e.labelStr}
			switch f.kind {
			case KindCounter:
				ms.Value = float64(e.counter.Value())
			case KindGauge:
				ms.Value = e.gauge.Value()
			case KindHistogram:
				h := e.hist.Snapshot()
				ms.Histogram = &h
				ms.Value = h.Sum
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}

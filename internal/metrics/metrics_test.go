package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	// Nil receivers are no-ops so call sites need no telemetry branch.
	var nc *Counter
	var ng *Gauge
	nc.Inc()
	ng.Set(1)
	if nc.Value() != 0 || ng.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", s.Count)
	}
	want := []uint64{2, 1, 1, 1} // ≤1, ≤2, ≤5, +Inf
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if s.Sum != 16 {
		t.Fatalf("sum = %v, want 16", s.Sum)
	}
	if m := s.Mean(); m != 3.2 {
		t.Fatalf("mean = %v, want 3.2", m)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 2 {
		t.Fatalf("p50 = %v, want within (0, 2]", q)
	}
	if q := s.Quantile(1); q != 5 {
		t.Fatalf("p100 = %v, want clamp to last finite bound 5", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.NewCounter("bad name", ""); err == nil {
		t.Fatal("invalid metric name accepted")
	}
	if _, err := r.NewCounter("ok_total", "", L("__reserved", "x")); err == nil {
		t.Fatal("reserved label name accepted")
	}
	if _, err := r.NewCounter("ok_total", "", L("stream", "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewCounter("ok_total", "", L("stream", "a")); err == nil {
		t.Fatal("duplicate (name, labels) accepted")
	}
	if _, err := r.NewGauge("ok_total", ""); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := r.NewHistogram("h", "", nil); err == nil {
		t.Fatal("empty buckets accepted")
	}
	if _, err := r.NewHistogram("h", "", []float64{1, 1}); err == nil {
		t.Fatal("non-increasing buckets accepted")
	}
	if _, err := r.NewHistogram("h", "", []float64{1, math.Inf(1)}); err == nil {
		t.Fatal("non-finite bucket accepted")
	}
	if _, err := r.NewHistogram("h", "", []float64{1}, L("le", "x")); err == nil {
		t.Fatal("reserved le label accepted on histogram")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c, err := r.NewCounter("c_total", "")
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.NewHistogram("h_ms", "", []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if c.Value() != goroutines*per {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*per)
	}
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*per)
	}
}

// TestRecordPathAllocFree pins the instrumented frame path at zero
// steady-state allocations: every recording primitive the hot loops call is
// pure atomics.
func TestRecordPathAllocFree(t *testing.T) {
	r := NewRegistry()
	a, err := NewAccountant(r, AccountantConfig{Stream: "pin", Tasks: []string{"T0", "T1"}})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		a.Offered.Inc()
		a.Processed.Inc()
		a.LastLatencyMs.Set(12.5)
		a.FrameLatencyMs.Observe(12.5)
		a.ObserveTask(0, 3.25)
		a.ObservePrediction(1, 3.5, 3.25)
		a.ObserveScenario(true)
		a.ObserveResourceErr(0.05, -0.02)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f times per frame, want 0", allocs)
	}
}

// parseExposition is a strict little parser for the Prometheus text format:
// it validates every line, checks TYPE declarations precede samples, that
// histogram buckets are cumulative and le="+Inf" matches _count, and
// returns the scalar samples.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	lastBucket := map[string]float64{} // series (sans le) -> cumulative count
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || !validMetricName(parts[2]) {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = parts[3]
			}
			continue
		}
		// Sample line: name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			var err error
			if v, err = parseFloat(valStr); err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, series)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if typed[name] == "" && typed[base] == "" {
			t.Fatalf("line %d: sample %q precedes its TYPE declaration", ln+1, name)
		}
		if !validMetricName(name) {
			t.Fatalf("line %d: invalid metric name %q", ln+1, name)
		}
		for _, kv := range splitLabels(labels) {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 || !validLabelName(kv[:eq]) && kv[:eq] != "le" {
				t.Fatalf("line %d: malformed label %q", ln+1, kv)
			}
			val := kv[eq+1:]
			if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				t.Fatalf("line %d: unquoted label value %q", ln+1, kv)
			}
		}
		if strings.HasSuffix(name, "_bucket") {
			key := base + "{" + stripLE(labels) + "}"
			if prev, ok := lastBucket[key]; ok && v < prev {
				t.Fatalf("line %d: histogram %q buckets not cumulative (%v < %v)", ln+1, key, v, prev)
			}
			lastBucket[key] = v
			if strings.Contains(labels, `le="+Inf"`) {
				samples[base+"_inf{"+stripLE(labels)+"}"] = v
			}
			continue
		}
		samples[series] = v
	}
	// Every histogram's +Inf bucket must equal its _count.
	for key, v := range samples {
		if i := strings.Index(key, "_inf{"); i >= 0 {
			countKey := key[:i] + "_count{" + key[i+len("_inf{"):]
			if c, ok := samples[countKey]; !ok || c != v {
				t.Fatalf("histogram %q: le=\"+Inf\" bucket %v != count %v", key, v, c)
			}
		}
	}
	return samples
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	// Label values produced by this package never contain unescaped commas
	// inside quotes except in task/stream names, which the tests avoid.
	return strings.Split(s, ",")
}

func stripLE(labels string) string {
	var out []string
	for _, kv := range splitLabels(labels) {
		if !strings.HasPrefix(kv, "le=") {
			out = append(out, kv)
		}
	}
	return strings.Join(out, ",")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	a, err := NewAccountant(r, AccountantConfig{Stream: "s0", Tasks: []string{"RDG_FULL", "MKX_EXT"}})
	if err != nil {
		t.Fatal(err)
	}
	a.Offered.Add(10)
	a.Processed.Add(9)
	a.Skipped.Inc()
	a.BudgetMs.Set(33.5)
	a.FrameLatencyMs.Observe(12)
	a.FrameLatencyMs.Observe(48)
	a.ObserveTask(0, 7.5)
	a.ObservePrediction(0, 8, 7.5)
	a.ObserveScenario(true)
	a.ObserveScenario(false)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseExposition(t, text)

	if got := samples[`triplec_frames_offered_total{stream="s0"}`]; got != 10 {
		t.Fatalf("offered = %v, want 10", got)
	}
	if got := samples[`triplec_budget_ms{stream="s0"}`]; got != 33.5 {
		t.Fatalf("budget = %v, want 33.5", got)
	}
	if got := samples[`triplec_frame_latency_ms_count{stream="s0"}`]; got != 2 {
		t.Fatalf("latency count = %v, want 2", got)
	}
	if got := samples[`triplec_frame_latency_ms_sum{stream="s0"}`]; got != 60 {
		t.Fatalf("latency sum = %v, want 60", got)
	}
	if got := samples[`triplec_task_ms_count{stream="s0",task="RDG_FULL"}`]; got != 1 {
		t.Fatalf("task count = %v, want 1", got)
	}
	if !strings.Contains(text, "# TYPE triplec_frame_latency_ms histogram") {
		t.Fatal("missing histogram TYPE line")
	}
	if !strings.Contains(text, "# TYPE triplec_frames_offered_total counter") {
		t.Fatal("missing counter TYPE line")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	if _, err := r.NewGauge("g", "help with \\ and\nnewline", L("stream", "a\"b\\c\nd")); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `stream="a\"b\\c\nd"`) {
		t.Fatalf("label value not escaped: %q", text)
	}
	if !strings.Contains(text, `# HELP g help with \\ and\nnewline`) {
		t.Fatalf("help not escaped: %q", text)
	}
}

func TestAccountantHelpers(t *testing.T) {
	r := NewRegistry()
	a, err := NewAccountant(r, AccountantConfig{Stream: "s", Tasks: []string{"A"}})
	if err != nil {
		t.Fatal(err)
	}
	if a.MissRate() != 0 || a.ScenarioHitRate() != 0 {
		t.Fatal("fresh accountant rates must be 0")
	}
	a.Processed.Add(4)
	a.DeadlineMisses.Inc()
	if got := a.MissRate(); got != 0.25 {
		t.Fatalf("miss rate = %v, want 0.25", got)
	}
	a.ObserveScenario(true)
	a.ObserveScenario(true)
	a.ObserveScenario(false)
	if got := a.ScenarioHitRate(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("scenario hit rate = %v, want 2/3", got)
	}
	// Out-of-range task indices and zero actuals must be dropped, not panic.
	a.ObserveTask(-1, 1)
	a.ObserveTask(99, 1)
	a.ObservePrediction(0, 1, 0)
	if got := a.TaskRelErr[0].Count(); got != 0 {
		t.Fatalf("zero-actual prediction recorded a relative error (count=%d)", got)
	}
	if RelErr(11, 10) != 0.1 {
		t.Fatalf("RelErr = %v, want 0.1", RelErr(11, 10))
	}
	if RelErr(1, 0) != 0 || RelErr(math.NaN(), 1) != 0 || RelErr(1, math.Inf(1)) != 0 {
		t.Fatal("RelErr must be 0 for unscalable inputs")
	}
	// Duplicate stream label on the same registry must fail.
	if _, err := NewAccountant(r, AccountantConfig{Stream: "s", Tasks: []string{"A"}}); err == nil {
		t.Fatal("duplicate accountant accepted")
	}
}

func TestSnapshotOrderStable(t *testing.T) {
	r := NewRegistry()
	c1, _ := r.NewCounter("first_total", "")
	g1, _ := r.NewGauge("second", "")
	c1.Add(3)
	g1.Set(7)
	s1 := r.Snapshot()
	// Registering more instruments must append, keeping earlier indices
	// stable (the trace bridge depends on this).
	if _, err := r.NewCounter("third_total", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewCounter("first_total", "", L("stream", "x")); err != nil {
		t.Fatal(err)
	}
	s2 := r.Snapshot()
	if s1.Families[0].Name != s2.Families[0].Name || s1.Families[1].Name != s2.Families[1].Name {
		t.Fatal("family order changed across registrations")
	}
	if s2.Families[0].Metrics[0].Value != 3 {
		t.Fatalf("first_total = %v, want 3", s2.Families[0].Metrics[0].Value)
	}
	if len(s2.Families) != 3 {
		t.Fatalf("families = %d, want 3", len(s2.Families))
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if len(lin) != 3 || lin[0] != 1 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if len(exp) != 3 || exp[2] != 100 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
	for _, bs := range [][]float64{DefaultLatencyBucketsMs(), DefaultSignedErrorBuckets()} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("default buckets not increasing: %v", bs)
			}
		}
	}
}

package metrics

import (
	"errors"
	"fmt"
	"math"
)

// AccountantConfig configures a per-stream prediction-error accountant.
type AccountantConfig struct {
	// Namespace prefixes every metric name (default "triplec").
	Namespace string
	// Stream is the stream label value attached to every instrument.
	Stream string
	// Tasks lists the task names the accountant tracks, in the dense index
	// order the caller will use with ObserveTask/ObservePrediction.
	Tasks []string
	// LatencyBucketsMs overrides the frame/task latency histogram buckets.
	LatencyBucketsMs []float64
	// ErrorBuckets overrides the signed relative-error histogram buckets.
	ErrorBuckets []float64
}

// Accountant is the per-stream prediction-error accountant: one
// preregistered instrument per quantity the paper's profiling step compares
// ("the differences between the actually consumed resources and the
// predicted values"), recordable from the frame path without allocation.
// All fields are plain instrument handles; every recording method is safe
// on a nil receiver so call sites need no telemetry-enabled branch.
type Accountant struct {
	// Admission and outcome counters.
	Offered, Processed, Skipped  *Counter
	SerialFallbacks              *Counter
	DeadlineMisses               *Counter
	AccountingErrs               *Counter
	Repartitions                 *Counter
	ScenarioHits, ScenarioMisses *Counter
	// Degenerate counts prediction samples dropped from the relative-error
	// distributions because the actual carried no scale (≈0) or either side
	// was NaN/Inf — recording them would poison the histogram sums.
	Degenerate *Counter

	// Live gauges: last-seen values for /healthz-style summaries.
	BudgetMs          *Gauge
	PredictedDemandMs *Gauge
	CoreBudget        *Gauge
	LastLatencyMs     *Gauge
	LastFrame         *Gauge

	// Distributions.
	FrameLatencyMs     *Histogram
	TaskMs             []*Histogram // actual per-task ms, by task index
	TaskRelErr         []*Histogram // signed (predicted-actual)/actual, by task index
	PredictionAbsErrMs *Histogram   // |predicted-actual| per task sample
	BandwidthRelErr    *Histogram   // signed relative bandwidth-model error
	CacheRelErr        *Histogram   // signed relative cache-occupation error
}

// NewAccountant registers one full per-stream instrument set on the
// registry. Registering two accountants with the same stream label on one
// registry is an error (duplicate instruments).
func NewAccountant(r *Registry, cfg AccountantConfig) (*Accountant, error) {
	if r == nil {
		return nil, errors.New("metrics: nil registry")
	}
	ns := cfg.Namespace
	if ns == "" {
		ns = "triplec"
	}
	latBuckets := cfg.LatencyBucketsMs
	if latBuckets == nil {
		latBuckets = DefaultLatencyBucketsMs()
	}
	errBuckets := cfg.ErrorBuckets
	if errBuckets == nil {
		errBuckets = DefaultSignedErrorBuckets()
	}
	sl := L("stream", cfg.Stream)
	a := &Accountant{}
	var err error
	counter := func(dst **Counter, name, help string) {
		if err == nil {
			*dst, err = r.NewCounter(ns+"_"+name, help, sl)
		}
	}
	gauge := func(dst **Gauge, name, help string) {
		if err == nil {
			*dst, err = r.NewGauge(ns+"_"+name, help, sl)
		}
	}
	counter(&a.Offered, "frames_offered_total", "Frames offered to the stream by its source.")
	counter(&a.Processed, "frames_processed_total", "Frames fully processed by the pipeline.")
	counter(&a.Skipped, "frames_skipped_total", "Frames shed by the controller (alternate-frame skipping).")
	counter(&a.SerialFallbacks, "serial_fallbacks_total", "Processed frames forced to the serial mapping under contention.")
	counter(&a.DeadlineMisses, "deadline_misses_total", "Processed frames whose latency exceeded the stream budget.")
	counter(&a.AccountingErrs, "accounting_errors_total", "Frames with incomplete bandwidth accounting.")
	counter(&a.Repartitions, "repartitions_total", "Frames where the runtime manager changed the mapping.")
	counter(&a.ScenarioHits, "scenario_predictions_hit_total", "Frames whose scenario the Markov state table predicted correctly.")
	counter(&a.ScenarioMisses, "scenario_predictions_miss_total", "Frames whose predicted scenario differed from the executed one.")
	counter(&a.Degenerate, "prediction_degenerate_samples_total", "Prediction samples dropped from the error distributions (actual ≈ 0 or non-finite values).")
	gauge(&a.BudgetMs, "budget_ms", "Current per-frame latency budget.")
	gauge(&a.PredictedDemandMs, "predicted_demand_ms", "Latest predicted serial demand reported to the core arbiter.")
	gauge(&a.CoreBudget, "core_budget", "Cores currently allocated to the stream by the arbiter.")
	gauge(&a.LastLatencyMs, "last_latency_ms", "Latency of the most recently processed frame.")
	gauge(&a.LastFrame, "last_frame_index", "Index of the most recently offered frame.")
	if err == nil {
		a.FrameLatencyMs, err = r.NewHistogram(ns+"_frame_latency_ms",
			"Per-frame processing latency.", latBuckets, sl)
	}
	if err == nil {
		a.PredictionAbsErrMs, err = r.NewHistogram(ns+"_prediction_abs_error_ms",
			"Absolute per-task prediction error |predicted-actual|.", latBuckets, sl)
	}
	if err == nil {
		a.BandwidthRelErr, err = r.NewHistogram(ns+"_bandwidth_model_rel_error",
			"Signed relative error of the predicted scenario's communication bandwidth.", errBuckets, sl)
	}
	if err == nil {
		a.CacheRelErr, err = r.NewHistogram(ns+"_cache_model_rel_error",
			"Signed relative error of the predicted scenario's cache occupation.", errBuckets, sl)
	}
	if err != nil {
		return nil, err
	}
	a.TaskMs = make([]*Histogram, len(cfg.Tasks))
	a.TaskRelErr = make([]*Histogram, len(cfg.Tasks))
	for i, task := range cfg.Tasks {
		tl := L("task", task)
		a.TaskMs[i], err = r.NewHistogram(ns+"_task_ms",
			"Actual per-task execution time.", latBuckets, sl, tl)
		if err != nil {
			return nil, err
		}
		a.TaskRelErr[i], err = r.NewHistogram(ns+"_task_prediction_rel_error",
			"Signed relative per-task prediction error (predicted-actual)/actual.", errBuckets, sl, tl)
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// ObserveTask records one task's actual execution time. Indices outside the
// registered task set are dropped.
func (a *Accountant) ObserveTask(task int, actualMs float64) {
	if a == nil || task < 0 || task >= len(a.TaskMs) {
		return
	}
	a.TaskMs[task].Observe(actualMs)
}

// ObservePrediction records one task's predicted-vs-actual computation
// time: the signed relative error lands in the task's error histogram, the
// absolute error in the stream-wide PredictionAbsErrMs distribution.
// Degenerate samples — non-finite on either side, or an actual too close
// to zero to carry scale — are dropped from the distributions and counted
// in Degenerate instead, so a single bad frame can never turn a histogram
// sum into NaN/Inf.
func (a *Accountant) ObservePrediction(task int, predictedMs, actualMs float64) {
	if a == nil {
		return
	}
	rel, ok := SignedRelErr(predictedMs, actualMs)
	if !ok {
		a.Degenerate.Inc()
		return
	}
	a.PredictionAbsErrMs.Observe(math.Abs(predictedMs - actualMs))
	if task < 0 || task >= len(a.TaskRelErr) {
		return
	}
	a.TaskRelErr[task].Observe(rel)
}

// ObserveScenario records one Markov scenario-transition outcome.
func (a *Accountant) ObserveScenario(hit bool) {
	if a == nil {
		return
	}
	if hit {
		a.ScenarioHits.Inc()
	} else {
		a.ScenarioMisses.Inc()
	}
}

// ObserveResourceErr records the signed relative error of the bandwidth and
// cache-occupation models for one frame: RelErr(predicted, actual) of the
// two resource forecasts.
func (a *Accountant) ObserveResourceErr(bwRel, cacheRel float64) {
	if a == nil {
		return
	}
	a.BandwidthRelErr.Observe(bwRel)
	a.CacheRelErr.Observe(cacheRel)
}

// ScenarioHitRate returns the fraction of correctly predicted scenario
// transitions so far (0 before any sample).
func (a *Accountant) ScenarioHitRate() float64 {
	if a == nil {
		return 0
	}
	hits := a.ScenarioHits.Value()
	total := hits + a.ScenarioMisses.Value()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// MissRate returns the deadline-miss fraction over processed frames so far.
func (a *Accountant) MissRate() float64 {
	if a == nil {
		return 0
	}
	p := a.Processed.Value()
	if p == 0 {
		return 0
	}
	return float64(a.DeadlineMisses.Value()) / float64(p)
}

// RelErr returns the signed relative error (predicted-actual)/actual, or 0
// when the actual carries no scale (zero, NaN or infinite).
func RelErr(predicted, actual float64) float64 {
	if actual == 0 || math.IsNaN(actual) || math.IsInf(actual, 0) || math.IsNaN(predicted) || math.IsInf(predicted, 0) {
		return 0
	}
	return (predicted - actual) / actual
}

// MinActualMs is the scale floor below which an actual execution time is
// considered degenerate for relative-error accounting: dividing by an
// actual this close to zero yields errors in the 1e6+ range that swamp a
// histogram sum even though every individual value stays finite.
const MinActualMs = 1e-6

// SignedRelErr returns the signed relative error (predicted-actual)/actual
// and whether the sample is usable. It reports false — callers should drop
// the sample and count it as degenerate — when either side is NaN or
// infinite, or the actual is below MinActualMs.
func SignedRelErr(predicted, actual float64) (float64, bool) {
	if math.IsNaN(predicted) || math.IsInf(predicted, 0) ||
		math.IsNaN(actual) || math.IsInf(actual, 0) || actual < MinActualMs {
		return 0, false
	}
	return (predicted - actual) / actual, true
}

// String summarizes the accountant's live state (for examples and logs).
func (a *Accountant) String() string {
	if a == nil {
		return "accountant(nil)"
	}
	return fmt.Sprintf("accountant(processed=%d missed=%d scenario-hit=%.0f%%)",
		a.Processed.Value(), a.DeadlineMisses.Value(), 100*a.ScenarioHitRate())
}

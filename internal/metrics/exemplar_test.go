package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
)

// parseOpenMetrics is a strict parser for the OpenMetrics text rendering:
// it checks the `# EOF` terminator, that counter HELP/TYPE lines drop the
// `_total` suffix while sample names keep it, that exemplar clauses only
// appear on `_bucket` lines and parse as `# {k="v",...} value`, and that
// buckets stay cumulative. Returns scalar samples and bucket exemplars
// keyed by full series name.
func parseOpenMetrics(t *testing.T, text string) (map[string]float64, map[string]float64) {
	t.Helper()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition does not end with %q", "# EOF\n")
	}
	samples := map[string]float64{}
	exemplars := map[string]float64{} // bucket series -> exemplar value
	typed := map[string]string{}
	lastBucket := map[string]float64{}
	lines := strings.Split(text, "\n")
	for ln, line := range lines {
		if line == "" {
			if ln != len(lines)-1 {
				t.Fatalf("line %d: blank line inside exposition", ln+1)
			}
			continue
		}
		if line == "# EOF" {
			if ln != len(lines)-2 {
				t.Fatalf("line %d: # EOF is not the final line", ln+1)
			}
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || !validMetricName(parts[2]) {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				if parts[3] == "counter" && strings.HasSuffix(parts[2], "_total") {
					t.Fatalf("line %d: counter family %q keeps _total in TYPE", ln+1, parts[2])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		// Sample line, optionally with a trailing exemplar clause:
		//   series value [# {labels} exemplarValue]
		sample := line
		var exClause string
		if i := strings.Index(line, " # "); i >= 0 {
			sample, exClause = line[:i], line[i+3:]
		}
		sp := strings.LastIndexByte(sample, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, sample)
		}
		series, valStr := sample[:sp], sample[sp+1:]
		v, err := parseFloat(valStr)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, series)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if typed[name] == "" && typed[base] == "" && typed[strings.TrimSuffix(name, "_total")] == "" {
			t.Fatalf("line %d: sample %q precedes its TYPE declaration", ln+1, name)
		}
		if exClause != "" {
			if !strings.HasSuffix(name, "_bucket") {
				t.Fatalf("line %d: exemplar on non-bucket series %q", ln+1, series)
			}
			close := strings.Index(exClause, "} ")
			if !strings.HasPrefix(exClause, "{") || close < 0 {
				t.Fatalf("line %d: malformed exemplar clause %q", ln+1, exClause)
			}
			for _, kv := range splitLabels(exClause[1:close]) {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 || !validLabelName(kv[:eq]) {
					t.Fatalf("line %d: malformed exemplar label %q", ln+1, kv)
				}
				val := kv[eq+1:]
				if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
					t.Fatalf("line %d: unquoted exemplar label value %q", ln+1, kv)
				}
			}
			ev, err := parseFloat(exClause[close+2:])
			if err != nil {
				t.Fatalf("line %d: bad exemplar value %q: %v", ln+1, exClause, err)
			}
			exemplars[series] = ev
		}
		if strings.HasSuffix(name, "_bucket") {
			key := base + "{" + stripLE(labels) + "}"
			if prev, ok := lastBucket[key]; ok && v < prev {
				t.Fatalf("line %d: histogram %q buckets not cumulative (%v < %v)", ln+1, key, v, prev)
			}
			lastBucket[key] = v
			continue
		}
		samples[series] = v
	}
	return samples, exemplars
}

// TestOpenMetricsExemplarRoundTrip: attach exemplars, render OpenMetrics,
// and verify via the strict parser that every exemplar lands on the right
// bucket with the right trace references.
func TestOpenMetricsExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	c, err := r.NewCounter("rt_frames_total", "Frames.", L("stream", "s0"))
	if err != nil {
		t.Fatal(err)
	}
	c.Add(3)
	h, err := r.NewHistogram("rt_latency_ms", "Latency.", []float64{1, 10, 100}, L("stream", "s0"))
	if err != nil {
		t.Fatal(err)
	}
	h.EnableExemplars()
	h.Observe(5)
	h.Observe(40)
	h.AttachExemplar(40, 17, 2)  // bucket le="100", dump linked
	h.AttachExemplar(0.5, 3, -1) // bucket le="1", no dump
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	_, exemplars := parseOpenMetrics(t, out)

	if got := exemplars[`rt_latency_ms_bucket{stream="s0",le="100"}`]; got != 40 {
		t.Fatalf("le=100 exemplar value %v, want 40", got)
	}
	if got := exemplars[`rt_latency_ms_bucket{stream="s0",le="1"}`]; got != 0.5 {
		t.Fatalf("le=1 exemplar value %v, want 0.5", got)
	}
	if !strings.Contains(out, `# {frame="17",dump="2"} 40`) {
		t.Errorf("exposition missing dump-linked exemplar:\n%s", out)
	}
	if !strings.Contains(out, `# {frame="3"} 0.5`) {
		t.Errorf("exposition missing dumpless exemplar:\n%s", out)
	}
	// Counter family name drops _total in HELP/TYPE only.
	if !strings.Contains(out, "# TYPE rt_frames counter") {
		t.Error("counter TYPE line did not strip _total")
	}
	if !strings.Contains(out, `rt_frames_total{stream="s0"} 3`) {
		t.Error("counter sample lost its _total suffix")
	}
	// The Prometheus (0.0.4) rendering must stay exemplar-free.
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "# {") {
		t.Error("Prometheus rendering leaked exemplar syntax")
	}
	parseExposition(t, buf.String())
}

// TestHandlerContentNegotiation: the /metrics handler switches format on
// the Accept header.
func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.NewCounter("neg_total", "n."); err != nil {
		t.Fatal(err)
	}
	hd := Handler(r)

	rec := httptest.NewRecorder()
	hd.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("default content type %q", ct)
	}
	if strings.Contains(rec.Body.String(), "# EOF") {
		t.Fatal("default format has an OpenMetrics terminator")
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	hd.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Fatalf("negotiated content type %q", ct)
	}
	if !strings.HasSuffix(rec.Body.String(), "# EOF\n") {
		t.Fatal("negotiated body is not OpenMetrics-terminated")
	}
}

// TestExemplarPathAllocFree re-pins the hot path at 0 allocs/op with
// exemplars enabled: both the plain Observe and the AttachExemplar call.
func TestExemplarPathAllocFree(t *testing.T) {
	r := NewRegistry()
	plain, err := r.NewHistogram("pin_plain_ms", "", DefaultLatencyBucketsMs())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := r.NewHistogram("pin_ex_ms", "", DefaultLatencyBucketsMs())
	if err != nil {
		t.Fatal(err)
	}
	ex.EnableExemplars()
	frame := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		frame++
		plain.Observe(12.5)
		ex.Observe(12.5)
		ex.AttachExemplar(12.5, frame, -1)
	})
	if allocs != 0 {
		t.Fatalf("exemplar-enabled record path allocates %.1f/op, want 0", allocs)
	}
}

// TestObserveDropsNonFinite: NaN and ±Inf must not move any histogram
// state.
func TestObserveDropsNonFinite(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.EnableExemplars()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		h.Observe(v)
		h.AttachExemplar(v, 1, 1)
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("non-finite observations counted: count=%d sum=%g", h.Count(), h.Sum())
	}
	for _, e := range h.Snapshot().Exemplars {
		if e.Valid {
			t.Fatalf("non-finite exemplar stored: %+v", e)
		}
	}
}

// TestQuantileProperty fuzzes Quantile over random histograms and q
// values (including q outside [0,1], NaN, and empty histograms): the
// estimate must always be finite, land inside [0, max bound], and be
// monotone in q.
func TestQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 2000; iter++ {
		nb := 1 + rng.Intn(10)
		bounds := make([]float64, 0, nb)
		seen := map[float64]bool{}
		for len(bounds) < nb {
			b := math.Round(rng.Float64()*1000) / 10
			if !seen[b] {
				seen[b] = true
				bounds = append(bounds, b)
			}
		}
		sort.Float64s(bounds)
		h := newHistogram(bounds)
		n := rng.Intn(50) // sometimes zero: the empty-histogram case
		for i := 0; i < n; i++ {
			h.Observe(rng.Float64() * 120)
		}
		s := h.Snapshot()
		qs := []float64{-0.5, 0, 0.25, 0.5, 0.9, 0.99, 1, 1.7, math.NaN(), math.Inf(1), math.Inf(-1)}
		prev := math.Inf(-1)
		for _, q := range qs {
			v := s.Quantile(q)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("iter %d: Quantile(%v) = %v escapes", iter, q, v)
			}
			if v < 0 || v > bounds[len(bounds)-1] {
				t.Fatalf("iter %d: Quantile(%v) = %v outside [0, %v]", iter, q, v, bounds[len(bounds)-1])
			}
			if s.Count == 0 && v != 0 {
				t.Fatalf("iter %d: empty histogram Quantile(%v) = %v, want 0", iter, q, v)
			}
			// Monotonicity over the ordered finite prefix of qs.
			if !math.IsNaN(q) && !math.IsInf(q, 0) {
				if v < prev {
					t.Fatalf("iter %d: Quantile not monotone: q=%v gave %v after %v", iter, q, v, prev)
				}
				prev = v
			}
		}
	}
	// Degenerate snapshot with no bounds at all must return 0.
	empty := HistogramSnapshot{Count: 5, Counts: []uint64{5}}
	if v := empty.Quantile(0.5); v != 0 {
		t.Fatalf("boundless snapshot Quantile = %v, want 0", v)
	}
}

package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): `# HELP` / `# TYPE` headers per
// family, one sample line per instrument, and the cumulative
// _bucket/_sum/_count triplet for histograms. Families appear in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	for _, f := range snap.Families {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for _, m := range f.Metrics {
			switch f.Kind {
			case KindCounter, KindGauge:
				writeSample(bw, f.Name, "", m.LabelStr, "", m.Value)
			case KindHistogram:
				h := m.Histogram
				cum := uint64(0)
				for i, c := range h.Counts {
					cum += c
					le := "+Inf"
					if i < len(h.Bounds) {
						le = formatFloat(h.Bounds[i])
					}
					writeSample(bw, f.Name, "_bucket", m.LabelStr, le, float64(cum))
				}
				writeSample(bw, f.Name, "_sum", m.LabelStr, "", h.Sum)
				writeSample(bw, f.Name, "_count", m.LabelStr, "", float64(h.Count))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line; le, when non-empty, is
// merged into the label set as the bucket bound.
func writeSample(bw *bufio.Writer, name, suffix, labels, le string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || le != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if le != "" {
			if labels != "" {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteOpenMetrics renders the registry in the OpenMetrics 1.0 text
// format: counter family names drop their `_total` suffix in the HELP and
// TYPE lines (sample names keep it), histogram bucket lines carry
// exemplars (`# {frame="12",dump="3"} value`) when one is attached, and
// the stream ends with the mandatory `# EOF` terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	for _, f := range snap.Families {
		famName := f.Name
		if f.Kind == KindCounter {
			famName = strings.TrimSuffix(famName, "_total")
		}
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(famName)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(famName)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for _, m := range f.Metrics {
			switch f.Kind {
			case KindCounter, KindGauge:
				writeSample(bw, f.Name, "", m.LabelStr, "", m.Value)
			case KindHistogram:
				h := m.Histogram
				cum := uint64(0)
				for i, c := range h.Counts {
					cum += c
					le := "+Inf"
					if i < len(h.Bounds) {
						le = formatFloat(h.Bounds[i])
					}
					writeBucketSample(bw, f.Name, m.LabelStr, le, float64(cum), bucketExemplar(h, i))
				}
				writeSample(bw, f.Name, "_sum", m.LabelStr, "", h.Sum)
				writeSample(bw, f.Name, "_count", m.LabelStr, "", float64(h.Count))
			}
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

func bucketExemplar(h *HistogramSnapshot, i int) *Exemplar {
	if i >= len(h.Exemplars) || !h.Exemplars[i].Valid {
		return nil
	}
	return &h.Exemplars[i]
}

// writeBucketSample emits one `name_bucket{...,le="x"} value` line with an
// optional trailing OpenMetrics exemplar clause.
func writeBucketSample(bw *bufio.Writer, name, labels, le string, v float64, ex *Exemplar) {
	bw.WriteString(name)
	bw.WriteString("_bucket{")
	bw.WriteString(labels)
	if labels != "" {
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(formatFloat(v))
	if ex != nil {
		bw.WriteString(` # {frame="`)
		bw.WriteString(strconv.FormatInt(ex.Frame, 10))
		bw.WriteByte('"')
		if ex.Dump >= 0 {
			bw.WriteString(`,dump="`)
			bw.WriteString(strconv.FormatInt(ex.Dump, 10))
			bw.WriteByte('"')
		}
		bw.WriteString("} ")
		bw.WriteString(formatFloat(ex.Value))
	}
	bw.WriteByte('\n')
}

// openMetricsContentType is what an OpenMetrics-negotiated scrape gets.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler returns an http.Handler serving the registry in the Prometheus
// text format — mount it at /metrics. Scrapers whose Accept header asks
// for application/openmetrics-text get the OpenMetrics rendering
// (exemplars included) instead.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// The write goes straight to the response; a scrape error at this
		// point means the client went away, nothing to recover.
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

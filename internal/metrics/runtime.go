package metrics

import "runtime"

// RuntimeMetrics exports Go runtime health — goroutine count, heap sizes
// and GC pause behaviour — so the cost of optional serving-path layers
// (shadow evaluation, span tracing) is visible in the same production
// scrapes that carry the prediction-error families. The gauges are sampled
// lazily: NewRuntimeMetrics registers a collector on the registry, so every
// Snapshot (scrape, CSV sample) refreshes them and nothing runs per frame.
type RuntimeMetrics struct {
	Goroutines   *Gauge // runtime.NumGoroutine
	HeapAlloc    *Gauge // bytes of allocated heap objects (MemStats.HeapAlloc)
	HeapInuse    *Gauge // bytes in in-use heap spans (MemStats.HeapInuse)
	TotalAlloc   *Gauge // cumulative bytes allocated (monotone, sampled)
	GCPauseLast  *Gauge // most recent GC stop-the-world pause, nanoseconds
	GCPauseTotal *Gauge // cumulative GC pause, nanoseconds (monotone, sampled)
	GCRuns       *Gauge // completed GC cycles (monotone, sampled)
}

// NewRuntimeMetrics registers the runtime health gauges on the registry and
// installs the collector that refreshes them on every snapshot.
func NewRuntimeMetrics(r *Registry) (*RuntimeMetrics, error) {
	m := &RuntimeMetrics{}
	var err error
	gauge := func(dst **Gauge, name, help string) {
		if err == nil {
			*dst, err = r.NewGauge(name, help)
		}
	}
	gauge(&m.Goroutines, "triplec_go_goroutines", "Live goroutines at the last scrape.")
	gauge(&m.HeapAlloc, "triplec_go_heap_alloc_bytes", "Bytes of allocated heap objects at the last scrape.")
	gauge(&m.HeapInuse, "triplec_go_heap_inuse_bytes", "Bytes in in-use heap spans at the last scrape.")
	gauge(&m.TotalAlloc, "triplec_go_alloc_bytes_total", "Cumulative bytes allocated for heap objects (sampled at scrape time).")
	gauge(&m.GCPauseLast, "triplec_go_gc_pause_last_ns", "Most recent GC stop-the-world pause in nanoseconds.")
	gauge(&m.GCPauseTotal, "triplec_go_gc_pause_total_ns", "Cumulative GC stop-the-world pause in nanoseconds (sampled at scrape time).")
	gauge(&m.GCRuns, "triplec_go_gc_runs_total", "Completed GC cycles (sampled at scrape time).")
	if err != nil {
		return nil, err
	}
	r.RegisterCollector(m.Collect)
	return m, nil
}

// Collect refreshes the gauges from the runtime. It stops the world briefly
// (runtime.ReadMemStats), which is fine per scrape and unacceptable per
// frame — hence the collector design.
func (m *RuntimeMetrics) Collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Goroutines.Set(float64(runtime.NumGoroutine()))
	m.HeapAlloc.Set(float64(ms.HeapAlloc))
	m.HeapInuse.Set(float64(ms.HeapInuse))
	m.TotalAlloc.Set(float64(ms.TotalAlloc))
	if ms.NumGC > 0 {
		m.GCPauseLast.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
	m.GCPauseTotal.Set(float64(ms.PauseTotalNs))
	m.GCRuns.Set(float64(ms.NumGC))
}

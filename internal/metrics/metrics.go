// Package metrics is the live telemetry layer of the serving stack: a
// dependency-free, concurrency-safe registry of atomic counters, gauges and
// fixed-bucket histograms, with snapshot support and hand-rolled Prometheus
// text exposition. The paper's profiling step gathers "statistical
// information of the differences between the actually consumed resources
// and the predicted values"; this package makes those differences
// observable *while* a run is in flight instead of only in post-hoc trace
// CSVs.
//
// Design constraints, in order:
//
//   - The record path (Counter.Inc, Gauge.Set, Histogram.Observe) is
//     allocation-free and lock-free: instruments are preregistered once and
//     then touched only through atomic operations, so the per-frame hot
//     paths of pipeline/sched/stream can be instrumented without map
//     lookups, fmt, or heap traffic in steady state.
//   - Registration and exposition take the registry lock; they happen at
//     setup time and on scrapes, never per frame.
//   - No external dependencies: the Prometheus text format is emitted by
//     hand (exposition.go), so the repo stays self-contained.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer, safe for concurrent use.
// The zero value is ready to use, but counters are normally obtained from a
// Registry so they appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop; no locks, no allocation).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets defined by their upper
// bounds (an implicit +Inf bucket is always appended). Observe is
// allocation-free; the bucket list is scanned linearly, which beats binary
// search for the short (≤ ~20 entry) bucket lists used here.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64

	// Exemplar slots, one per bucket, allocated only by EnableExemplars
	// (opt-in): the plain Observe path never touches them, so its
	// 0 allocs/op contract is unchanged.
	exMu sync.Mutex
	ex   []Exemplar
}

// Exemplar links one bucket's latest noteworthy observation to its trace
// context: the frame index it came from and, when the flight recorder
// had a dump armed, the dump sequence number (-1 otherwise). Exposed in
// OpenMetrics exemplar syntax so a bad latency bucket points straight at
// the Chrome-trace dump explaining it.
type Exemplar struct {
	Value float64
	Frame int64
	Dump  int64 // flight-recorder dump seq, -1 when none
	Valid bool
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample. NaN and ±Inf observations are dropped so a
// single bad frame can never poison the running sum or the quantile
// estimate.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// EnableExemplars allocates the per-bucket exemplar slots. Call once at
// setup time, before concurrent use.
func (h *Histogram) EnableExemplars() {
	if h == nil {
		return
	}
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]Exemplar, len(h.counts))
	}
	h.exMu.Unlock()
}

// AttachExemplar stores an exemplar on the bucket v falls into,
// overwriting the bucket's previous one. It does NOT count v — the
// caller already Observed the value (typically via an engine observer);
// attaching is a separate step so the sample is never double-counted.
// No-op unless EnableExemplars was called. Allocation-free.
func (h *Histogram) AttachExemplar(v float64, frame, dump int64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.exMu.Lock()
	if h.ex != nil {
		i := 0
		for i < len(h.bounds) && v > h.bounds[i] {
			i++
		}
		h.ex[i] = Exemplar{Value: v, Frame: frame, Dump: dump, Valid: true}
	}
	h.exMu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram's state. Counts
// are per-bucket (not cumulative); the last entry is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, +Inf excluded
	Counts []uint64  // len(Bounds)+1, last is the +Inf bucket
	Count  uint64
	Sum    float64
	// Exemplars is len(Counts) when exemplars are enabled, nil otherwise;
	// entries with Valid=false have never been attached.
	Exemplars []Exemplar
}

// Snapshot copies the histogram state. Buckets and the total are read
// without a global lock, so a snapshot taken during concurrent writes may be
// off by the few in-flight observations — fine for scraping.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	h.exMu.Lock()
	if h.ex != nil {
		s.Exemplars = append([]Exemplar(nil), h.ex...)
	}
	h.exMu.Unlock()
	return s
}

// Mean returns the mean of the observed values, or 0 before any sample.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the rank, the standard Prometheus
// histogram_quantile estimate. Values in the +Inf bucket clamp to the last
// finite bound. Returns 0 before any sample.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	seen := 0.0
	for i, c := range s.Counts {
		seen += float64(c)
		if seen < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: clamp to the largest finite bound
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - (seen - float64(c))) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns n upper bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBucketsMs spans the modeled per-frame latencies (the
// paper's pipeline runs 60–120 ms serially; managed frames land near the
// budget, scaled-down test geometries well below it).
func DefaultLatencyBucketsMs() []float64 {
	return []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
}

// DefaultSignedErrorBuckets spans signed relative prediction errors
// (predicted-actual)/actual. The paper reports ~97% mean accuracy with
// sporadic 20–30% excursions, so the buckets resolve the ±5% core finely
// and keep coarse tails for the excursions.
func DefaultSignedErrorBuckets() []float64 {
	return []float64{-1, -0.5, -0.3, -0.2, -0.1, -0.05, -0.02, 0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1}
}

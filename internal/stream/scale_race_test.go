//go:build race

package stream

// raceScale widens the wall-clock thresholds (watchdogs, stall limits,
// injected hang durations) in the timing-sensitive tests: under the race
// detector frames run many times slower, and an unscaled watchdog would
// abandon healthy frames.
const raceScale = 8.0

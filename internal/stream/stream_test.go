package stream

import (
	"math"
	"strings"
	"testing"

	"triplec/internal/experiments"
	"triplec/internal/frame"
	"triplec/internal/pipeline"
	"triplec/internal/sched"
	"triplec/internal/synth"
)

// testStudy is a cheap training setup shared by all stream tests (the
// trained predictor is memoized per study configuration).
func testStudy() experiments.Study {
	s := experiments.DefaultStudy()
	s.TrainSeqs = 2
	s.TrainFrames = 30
	return s
}

// cheapSource returns a frame source whose scenario mix is deliberately
// light: no contrast bursts (ridge detection mostly off) and markers fading
// every other frame (registration fails, the enhancement tail is skipped).
// Its per-frame demand is a fraction of a normal sequence's, giving the
// arbiter a real gap to re-divide over.
func cheapSource(t *testing.T, study experiments.Study, seed uint64) func(int) *frame.Frame {
	t.Helper()
	cfg := study.SynthConfig(seed)
	cfg.DropoutEvery = 2
	cfg.ContrastEvery = 0
	seq, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return experiments.Source(seq)
}

func mkStream(t *testing.T, study experiments.Study, name string, seed uint64, budgetMs float64) Config {
	t.Helper()
	p, err := study.TrainPredictor()
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := sched.NewManager(p, study.Arch)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Sticky = true
	eng, err := study.Engine()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := study.Sequence(seed)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Name:        name,
		Engine:      eng,
		Manager:     mgr,
		Source:      experiments.Source(seq),
		FramePixels: study.FramePixels(),
		BudgetMs:    budgetMs,
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}, nil); err == nil {
		t.Fatal("empty stream set accepted")
	}
	s := testStudy()
	cfg := mkStream(t, s, "a", 1, 0)
	broken := cfg
	broken.Engine = nil
	if _, err := NewServer(ServerConfig{}, []Config{broken}); err == nil {
		t.Fatal("nil engine accepted")
	}
	broken = cfg
	broken.FramePixels = 0
	if _, err := NewServer(ServerConfig{}, []Config{broken}); err == nil {
		t.Fatal("zero frame pixels accepted")
	}
	broken = cfg
	broken.BudgetMs = -1
	if _, err := NewServer(ServerConfig{}, []Config{broken}); err == nil {
		t.Fatal("negative budget accepted")
	}
	broken = cfg
	broken.BudgetMs = math.NaN()
	if _, err := NewServer(ServerConfig{}, []Config{broken}); err == nil {
		t.Fatal("NaN budget accepted")
	}
	broken = cfg
	broken.BudgetMs = math.Inf(1)
	if _, err := NewServer(ServerConfig{}, []Config{broken}); err == nil {
		t.Fatal("infinite budget accepted")
	}
	for _, bad := range []ServerConfig{
		{WatchdogMs: -1},
		{WatchdogMs: math.NaN()},
		{StallMs: -1},
		{WatchdogMs: 50, StallMs: 20}, // stall bound below the watchdog
		{Supervise: true, MaxRestarts: -1},
		{Supervise: true, RestartBudget: -1},
		{Supervise: true, BackoffMs: -1},
		{Supervise: true, MaxBackoffMs: math.NaN()},
		{Degrade: true, Degrader: pipeline.DegraderConfig{MinDwell: -1}},
	} {
		if _, err := NewServer(bad, []Config{cfg}); err == nil {
			t.Fatalf("invalid server config accepted: %+v", bad)
		}
	}
	srv, err := NewServer(ServerConfig{}, []Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(0); err == nil {
		t.Fatal("zero frames accepted")
	}
}

// The core concurrency test: N engines process concurrently, one goroutine
// each, over the shared pool (exercised under -race by the CI recipe).
func TestServeConcurrentStreams(t *testing.T) {
	s := testStudy()
	cfgs := []Config{
		mkStream(t, s, "s0", 11, 0),
		mkStream(t, s, "s1", 22, 0),
		mkStream(t, s, "s2", 33, 0),
	}
	srv, err := NewServer(ServerConfig{RebalanceEvery: 3}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	res, err := srv.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, r := range res.Streams {
		st := r.Stats
		if st.Offered != n {
			t.Fatalf("stream %d offered %d frames, want %d", i, st.Offered, n)
		}
		if st.Processed+st.Skipped != n {
			t.Fatalf("stream %d: processed %d + skipped %d != %d", i, st.Processed, st.Skipped, n)
		}
		if len(r.Reports) != st.Processed {
			t.Fatalf("stream %d: %d reports for %d processed frames", i, len(r.Reports), st.Processed)
		}
		if r.Trace.Len() != n {
			t.Fatalf("stream %d trace has %d rows, want %d", i, r.Trace.Len(), n)
		}
		if st.Processed > 0 && st.MeanLatencyMs <= 0 {
			t.Fatalf("stream %d mean latency %v", i, st.MeanLatencyMs)
		}
		if st.BudgetMs <= 0 {
			t.Fatalf("stream %d budget never initialized", i)
		}
		total += st.Processed
	}
	if total == 0 {
		t.Fatal("nothing processed")
	}
	if res.AggregateFPS <= 0 || res.WallMs <= 0 {
		t.Fatalf("throughput bookkeeping empty: %v fps over %v ms", res.AggregateFPS, res.WallMs)
	}
	sum := 0
	for _, b := range res.FinalBudgets {
		if b < 1 {
			t.Fatalf("final budgets %v below the one-core floor", res.FinalBudgets)
		}
		sum += b
	}
	if sum != s.Arch.NumCPUs {
		t.Fatalf("final budgets %v do not sum to the %d-core machine", res.FinalBudgets, s.Arch.NumCPUs)
	}
}

// The controller must shift cores toward the heavier stream mid-run.
func TestControllerReallocatesMidRun(t *testing.T) {
	s := testStudy()
	light := mkStream(t, s, "light", 44, 0)
	light.Source = cheapSource(t, s, 44)
	heavy := mkStream(t, s, "heavy", 55, 0)
	srv, err := NewServer(ServerConfig{RebalanceEvery: 2}, []Config{light, heavy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalances == 0 {
		t.Fatal("controller never rebalanced")
	}
	if res.FinalBudgets[1] <= res.FinalBudgets[0] {
		t.Fatalf("heavy stream got %d cores, light got %d: no demand-driven shift",
			res.FinalBudgets[1], res.FinalBudgets[0])
	}
	// The allocation change must be visible in the per-frame series too.
	cores, err := res.Streams[1].Trace.Get("cores")
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for _, v := range cores[1:] {
		if v != cores[0] {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("heavy stream's core allocation never changed mid-run")
	}
}

// Overload: three streams with infeasible deadlines on a modeled 2-core
// machine must shed (serial fallback and alternate-frame skips) instead of
// failing, and the controller must keep every stream serving.
func TestSheddingUnderOverload(t *testing.T) {
	s := testStudy()
	cfgs := []Config{
		mkStream(t, s, "a", 1, 1),
		mkStream(t, s, "b", 2, 1),
		mkStream(t, s, "c", 3, 1),
	}
	srv, err := NewServer(ServerConfig{ModelCores: 2, RebalanceEvery: 2, SkipOver: 1.5}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	res, err := srv.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	skipped, serial := 0, 0
	for i, r := range res.Streams {
		st := r.Stats
		if st.Processed+st.Skipped != n {
			t.Fatalf("stream %d lost frames: %d + %d != %d", i, st.Processed, st.Skipped, n)
		}
		if st.Processed == 0 {
			t.Fatalf("stream %d starved entirely", i)
		}
		skipped += st.Skipped
		serial += st.SerialFallbacks
	}
	if skipped == 0 {
		t.Fatal("overload shed no frames")
	}
	if serial == 0 {
		t.Fatal("overload forced no serial fallbacks")
	}
}

// A failing stream records its error and the remaining streams keep
// serving to completion.
func TestStreamFailureIsolated(t *testing.T) {
	s := testStudy()
	good := mkStream(t, s, "good", 66, 0)
	bad := mkStream(t, s, "bad", 77, 0)
	goodSrc := good.Source
	badSrc := bad.Source
	bad.Source = func(i int) *frame.Frame {
		if i == 3 {
			return nil
		}
		return badSrc(i)
	}
	good.Source = goodSrc
	srv, err := NewServer(ServerConfig{}, []Config{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	res, err := srv.Run(n)
	if err == nil {
		t.Fatal("failing stream produced no error")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error %q does not name the failing stream", err)
	}
	if res.Streams[1].Err == nil {
		t.Fatal("failing stream's result has no error")
	}
	if res.Streams[0].Err != nil {
		t.Fatalf("healthy stream errored: %v", res.Streams[0].Err)
	}
	if res.Streams[0].Stats.Processed != n {
		t.Fatalf("healthy stream processed %d frames, want %d", res.Streams[0].Stats.Processed, n)
	}
}

func TestMergedTrace(t *testing.T) {
	s := testStudy()
	cfgs := []Config{mkStream(t, s, "x", 7, 0), mkStream(t, s, "y", 8, 0)}
	srv, err := NewServer(ServerConfig{}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := res.MergedTrace()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 8 {
		t.Fatalf("merged trace has %d rows, want 8", merged.Len())
	}
	if _, err := merged.Get("x_latency_ms"); err != nil {
		t.Fatal(err)
	}
	if _, err := merged.Get("y_missed"); err != nil {
		t.Fatal(err)
	}
	if got := len(merged.Names()); got != 16 {
		t.Fatalf("merged trace has %d columns, want 16 (8 per stream)", got)
	}
}

package stream

import (
	"runtime"
	"testing"
)

// TestServeSteadyStateAllocBudget pins the serving loop's per-frame heap
// traffic. Each offered frame inherently allocates its synthesized input
// frame and the escaping zoom output; with the frame pool and Into-kernels
// threaded through the engine, everything in between is recycled. The
// budget of six frame-equivalents per offered frame fails if the pipeline
// regresses to allocating its intermediates fresh (which costs tens of
// frame-equivalents per frame).
func TestServeSteadyStateAllocBudget(t *testing.T) {
	s := testStudy()
	cfg := mkStream(t, s, "pin", 17, 0)
	srv, err := NewServer(ServerConfig{}, []Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	// Warm pools, predictor memoization and trace buffers.
	if _, err := srv.Run(10); err != nil {
		t.Fatal(err)
	}

	const frames = 40
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := srv.Run(frames); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	perFrame := float64(after.TotalAlloc-before.TotalAlloc) / frames
	framePixelBytes := float64(s.FramePixels() * 2)
	budget := 6 * framePixelBytes
	t.Logf("serving steady state: %.0f bytes/frame (budget %.0f)", perFrame, budget)
	if perFrame > budget {
		t.Errorf("serving loop allocates %.0f bytes/frame, budget %.0f", perFrame, budget)
	}
}

package stream

import (
	"sync"

	"triplec/internal/sched"
)

// Mode is the controller's per-frame directive for one stream.
type Mode int

// Shedding ladder, mildest first.
const (
	// ModeRun processes the frame normally: the manager plans a striped
	// mapping within the stream's current core allocation.
	ModeRun Mode = iota
	// ModeSerial processes the frame but forces the serial mapping: under
	// contention a stream whose core need exceeds its allocation gives up
	// striping, shrinking its footprint to one core so under-allocated
	// peers actually receive their stripes.
	ModeSerial
	// ModeSkip sheds the frame entirely (alternate frames only): when the
	// aggregate predicted demand exceeds the machine by more than the skip
	// threshold, halving an overloaded stream's frame rate is the only way
	// to keep every stream's latency bounded.
	ModeSkip
)

func (m Mode) String() string {
	switch m {
	case ModeRun:
		return "run"
	case ModeSerial:
		return "serial"
	case ModeSkip:
		return "skip"
	}
	return "unknown"
}

// Directive is the controller's admission decision for one frame.
type Directive struct {
	Mode  Mode
	Cores int // core budget the stream's manager may plan with
}

// controller wraps the sched.MultiManager arbiter with the per-frame
// admission policy (the shedding ladder) and the rebalance cadence. All
// methods are called concurrently from the stream goroutines.
type controller struct {
	mm             *sched.MultiManager
	modelCores     int
	skipOver       float64 // aggregate load ratio beyond which skipping starts
	rebalanceEvery int     // demand reports between re-divisions

	mu        sync.Mutex
	budgetsMs []float64 // per-stream frame deadline (0 until initialized)
	reports   int
}

func newController(mm *sched.MultiManager, modelCores, rebalanceEvery int, skipOver float64, budgetsMs []float64) *controller {
	c := &controller{
		mm:             mm,
		modelCores:     modelCores,
		skipOver:       skipOver,
		rebalanceEvery: rebalanceEvery,
		budgetsMs:      make([]float64, len(budgetsMs)),
	}
	copy(c.budgetsMs, budgetsMs)
	return c
}

// setBudgetMs records stream i's frame deadline once its manager has
// initialized it from the first processed frame.
func (c *controller) setBudgetMs(i int, ms float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.budgetsMs) {
		c.budgetsMs[i] = ms
	}
}

func (c *controller) budgetMs(i int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.budgetsMs) {
		return 0
	}
	return c.budgetsMs[i]
}

// load returns the aggregate predicted core need relative to the machine:
// 1.0 means the streams' Triple-C predictions exactly fill the cores.
func (c *controller) load(demands []float64, budgets []float64) float64 {
	need := 0
	for j := range demands {
		need += sched.CoreNeed(demands[j], budgets[j], c.modelCores)
	}
	return float64(need) / float64(c.modelCores)
}

// directive decides stream i's action for frame frameIdx from the current
// core allocation and the aggregate load.
func (c *controller) directive(i, frameIdx int) Directive {
	cores := c.mm.BudgetFor(i)
	if cores < 1 {
		// Zero budget is the arbiter's shed signal (SplitCores in the
		// oversubscribed regime: more live streams than cores). Time-slice
		// deterministically — skip alternate frames, run the others serially
		// on one borrowed core — instead of planning against a core this
		// stream does not own.
		if frameIdx%2 == 1 {
			return Directive{Mode: ModeSkip, Cores: 1}
		}
		return Directive{Mode: ModeSerial, Cores: 1}
	}
	demands := c.mm.Demands()
	c.mu.Lock()
	budgets := make([]float64, len(c.budgetsMs))
	copy(budgets, c.budgetsMs)
	c.mu.Unlock()

	need := sched.CoreNeed(demands[i], budgets[i], c.modelCores)
	if need <= cores {
		return Directive{Mode: ModeRun, Cores: cores}
	}
	// This stream is under-allocated. Shedding only engages when the
	// *aggregate* predicted demand exceeds the machine — otherwise the
	// stream simply plans within its (tight) allocation and the regulator
	// absorbs the difference.
	load := c.load(demands, budgets)
	if load <= 1 {
		return Directive{Mode: ModeRun, Cores: cores}
	}
	if load > c.skipOver && frameIdx%2 == 1 {
		return Directive{Mode: ModeSkip, Cores: 1}
	}
	return Directive{Mode: ModeSerial, Cores: 1}
}

// rebalances exposes the arbiter's re-division count (the cause ledger
// flags frames that follow one).
func (c *controller) rebalances() int {
	return c.mm.Rebalances()
}

// quarantine retires stream i from the arbitration: its cores flow to the
// surviving streams immediately (the arbiter rebalances inside Retire), so
// they stop shedding load against a dead stream's stale demand.
func (c *controller) quarantine(i int) {
	c.mm.Retire(i)
}

// report feeds stream i's latest demand signal — scalar predicted demand
// plus the scenario-conditioned cost profile the mapping optimizer scores
// candidates with — to the arbiter and triggers a re-division every
// rebalanceEvery reports. Redivide (not Rebalance) keeps the steady-state
// control loop allocation-free; streams read the outcome back per frame via
// BudgetFor.
func (c *controller) report(i int, d *sched.StreamDemand) {
	c.mm.ReportStream(i, d)
	c.mu.Lock()
	c.reports++
	due := c.reports%c.rebalanceEvery == 0
	c.mu.Unlock()
	if due {
		c.mm.Redivide()
	}
}

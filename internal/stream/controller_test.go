package stream

import (
	"testing"

	"triplec/internal/sched"
)

// mkController builds a controller over a fresh arbiter, reports the given
// demands once (the first report sets the EWMA level exactly), and returns
// both. budgets are the per-stream frame deadlines in ms.
func mkController(t *testing.T, modelCores, rebalanceEvery int, skipOver float64, demands, budgets []float64) (*controller, *sched.MultiManager) {
	t.Helper()
	mm, err := sched.NewMultiManager(modelCores, len(demands))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range demands {
		if d > 0 {
			mm.ReportDemand(i, d)
		}
	}
	return newController(mm, modelCores, rebalanceEvery, skipOver, budgets), mm
}

// TestDirectiveSkipThresholdExact: the skip rung engages only strictly
// beyond SkipOver. An aggregate load sitting exactly at the threshold must
// stay on the serial rung — the ladder sheds the mildest sufficient way.
func TestDirectiveSkipThresholdExact(t *testing.T) {
	// Two streams, 4 modeled cores, demand 40 ms against a 10 ms budget:
	// each needs ceil(40/10)=4 cores, aggregate need 8, load exactly 2.0.
	c, _ := mkController(t, 4, 4, 2.0, []float64{40, 40}, []float64{10, 10})
	for frameIdx := 0; frameIdx < 4; frameIdx++ {
		d := c.directive(0, frameIdx)
		if d.Mode == ModeSkip {
			t.Fatalf("frame %d skipped at load exactly equal to SkipOver", frameIdx)
		}
		if d.Mode != ModeSerial {
			t.Fatalf("frame %d: mode %v at load 2.0 with 2 cores for need 4, want serial", frameIdx, d.Mode)
		}
	}
	// An epsilon past the threshold, alternate (odd) frames skip.
	c2, _ := mkController(t, 4, 4, 1.99, []float64{40, 40}, []float64{10, 10})
	if d := c2.directive(0, 1); d.Mode != ModeSkip {
		t.Fatalf("odd frame mode %v just past SkipOver, want skip", d.Mode)
	}
	if d := c2.directive(0, 2); d.Mode != ModeSerial {
		t.Fatalf("even frame mode %v just past SkipOver, want serial (alternate frames only)", d.Mode)
	}
}

// TestDirectiveZeroBudgetStream: a stream whose deadline is still
// uninitialized (BudgetMs 0 until the first processed frame) must be
// admitted normally — CoreNeed treats the unknown budget as satisfiable by
// one core, so the stream can process the very frame that initializes it.
func TestDirectiveZeroBudgetStream(t *testing.T) {
	c, _ := mkController(t, 4, 4, 2.0, []float64{500, 500}, []float64{0, 0})
	for frameIdx := 0; frameIdx < 3; frameIdx++ {
		d := c.directive(0, frameIdx)
		if d.Mode != ModeRun {
			t.Fatalf("frame %d: mode %v with uninitialized budget, want run", frameIdx, d.Mode)
		}
		if d.Cores < 1 {
			t.Fatalf("frame %d: %d cores", frameIdx, d.Cores)
		}
	}
}

// TestControllerRebalanceOnFirstReport: with RebalanceEvery=1 the very
// first demand report must already trigger a re-division — the cadence
// counter starts at zero, not one.
func TestControllerRebalanceOnFirstReport(t *testing.T) {
	c, mm := mkController(t, 8, 1, 2.0, []float64{0, 0}, []float64{10, 10})
	if mm.Rebalances() != 0 {
		t.Fatalf("rebalances before any report: %d", mm.Rebalances())
	}
	c.report(0, &sched.StreamDemand{TotalMs: 30})
	if mm.Rebalances() != 1 {
		t.Fatalf("rebalances after first report = %d with RebalanceEvery=1, want 1", mm.Rebalances())
	}
	c.report(1, &sched.StreamDemand{TotalMs: 10})
	if mm.Rebalances() != 2 {
		t.Fatalf("rebalances after second report = %d, want 2", mm.Rebalances())
	}
	if b := mm.BudgetFor(0); b <= mm.BudgetFor(1) {
		t.Fatalf("3x demand did not earn more cores: %d vs %d", b, mm.BudgetFor(1))
	}
}

// TestControllerQuarantineFreesCores: retiring a stream hands its share to
// the survivors immediately and silences its demand.
func TestControllerQuarantineFreesCores(t *testing.T) {
	c, mm := mkController(t, 8, 4, 2.0, []float64{40, 40}, []float64{10, 10})
	mm.Rebalance()
	before := mm.BudgetFor(0)
	c.quarantine(1)
	if got := mm.BudgetFor(0); got != 8 {
		t.Fatalf("survivor holds %d cores after quarantine (had %d), want all 8", got, before)
	}
	if got := mm.BudgetFor(1); got != 0 {
		t.Fatalf("quarantined stream still holds %d cores", got)
	}
	// The survivor's directive is now unconstrained: full allocation, run.
	if d := c.directive(0, 1); d.Mode != ModeRun || d.Cores != 8 {
		t.Fatalf("survivor directive %v/%d cores, want run/8", d.Mode, d.Cores)
	}
}

package stream

import (
	"triplec/internal/core"
	"triplec/internal/flowgraph"
	"triplec/internal/pipeline"
	"triplec/internal/span"
	"triplec/internal/tasks"
)

// This file threads the span/flight-recorder layer through the serving
// loop. Each stream's serving goroutine owns one span.FrameBuilder bound
// to its current engine; the builder is committed (or abandoned) by the
// serving layer after every frame, and replaced together with the engine
// after a stall — a poisoned engine's leaked goroutine may still write
// into the old builder, so that builder is never committed again (the
// same ownership rule the Engine concurrency contract imposes).

// spanMeta builds the dump-time label tables from the stream set and the
// fixed task/scenario/quality universes.
func spanMeta(streams []Config) span.Meta {
	m := span.Meta{
		Streams:   make([]string, len(streams)),
		Tasks:     make([]string, tasks.NumNames),
		Scenarios: make([]string, 8),
		Qualities: make([]string, int(pipeline.QualityMax)+1),
		Predictor: core.BackendBaseline,
	}
	for i, sc := range streams {
		m.Streams[i] = streamLabel(sc, i)
	}
	for i, tn := range tasks.AllNames() {
		m.Tasks[i] = string(tn)
	}
	for i := range m.Scenarios {
		m.Scenarios[i] = flowgraph.FromIndex(i).String()
	}
	for q := range m.Qualities {
		m.Qualities[q] = pipeline.Quality(q).String()
	}
	return m
}

// spanSink fans the predictor's per-frame samples out to the telemetry
// layer (when enabled) and into the open span frame: per-task predicted
// times land on the staged task spans, and a scenario mismatch stages a
// miss instant. The samples fire inside Manager.Observe on the serving
// goroutine, after Process returned but before the frame commits — exactly
// the window in which prediction data exists and the frame is still open.
type spanSink struct {
	tel *telemetry
	r   *runner
}

func (s *spanSink) TaskSample(task tasks.Name, predictedMs, actualMs float64) {
	if s.tel != nil {
		s.tel.TaskSample(task, predictedMs, actualMs)
	}
	s.r.fb.SetPredicted(tasks.IndexOf(task), predictedMs)
}

func (s *spanSink) ScenarioSample(predicted, actual flowgraph.Scenario) {
	if s.tel != nil {
		s.tel.ScenarioSample(predicted, actual)
	}
	if predicted != actual {
		s.r.fb.ScenarioMiss(predicted.Index(), actual.Index())
		// Stage the miss for the cause ledger: consumed (and cleared) when
		// this frame commits through observeSLO.
		s.r.pendingScenMiss = true
	}
}

// attachSpans binds a fresh frame builder to the runner's current engine
// and installs the fan-out metrics sink on its predictor. Called at stream
// start and again after every supervisor rebuild (after telemetry rewire,
// so the fan-out sink wins). The sink is also what stages scenario misses
// for the SLO cause ledger, so it installs whenever Flight OR SLO is
// configured (every FrameBuilder method is nil-receiver safe, so a
// flight-less sink is harmless).
func (r *runner) attachSpans() {
	if r.cfg.Flight == nil && r.cfg.SLO == nil {
		return
	}
	if r.cfg.Flight != nil {
		r.fr = r.cfg.Flight
		r.fb = span.NewFrameBuilder(r.fr.Recorder(), int32(r.si))
		r.eng.SetSpanBuilder(r.fb)
	}
	r.mgr.Predictor().SetMetricsSink(&spanSink{tel: r.tel, r: r})
}

// spanInstant emits one frame-lifecycle instant for this stream.
func (r *runner) spanInstant(kind span.Kind, frame int) {
	if r.fr == nil {
		return
	}
	r.fr.Recorder().Emit(span.Event{
		Kind: kind, Stream: int32(r.si), Frame: int32(frame), Task: -1, Scenario: -1,
	})
}

// spanSkip records a frame shed by the admission controller.
func (r *runner) spanSkip(i int) { r.spanInstant(span.KindSkip, i) }

// spanProcessed commits the processed frame's span group and feeds the
// deadline/prediction outcome to the trigger engine. Allocation-free.
func (r *runner) spanProcessed(i, scenario, quality, cores int, predictedMs, actualMs float64, missed bool) {
	if r.fr == nil {
		return
	}
	r.fb.Commit(i, scenario, quality, span.OutcomeProcessed, cores, predictedMs, actualMs, r.mgr.BudgetMs)
	r.fr.ObserveFrame(r.si, i, missed, predictedMs, actualMs)
}

// spanFailed commits a frame lost to a recovered task panic (the engine's
// guard already closed the in-flight task span) and arms the panic trigger.
func (r *runner) spanFailed(i, cores int) {
	if r.fr == nil {
		return
	}
	r.fb.Commit(i, -1, int(r.deg.Level()), span.OutcomeFailed, cores, 0, 0, r.mgr.BudgetMs)
	r.fr.ObservePanic(r.si, i)
}

// spanAbandon commits a frame given up past the watchdog. The late
// goroutine has finished (its done channel closed before runProcess
// returned procAbandoned), so the builder is safely ours again.
func (r *runner) spanAbandon(i, cores int) {
	if r.fr == nil {
		return
	}
	r.spanInstant(span.KindAbandon, i)
	r.fb.Commit(i, -1, int(r.deg.Level()), span.OutcomeAbandoned, cores, 0, 0, r.mgr.BudgetMs)
}

// spanStall records an engine poisoning and orphans the builder: the
// stalled goroutine may still be writing into it, so it must never be
// committed. The supervisor's rebuild attaches a fresh one.
func (r *runner) spanStall(i int) {
	if r.fr == nil {
		return
	}
	r.spanInstant(span.KindStall, i)
	r.fb = nil
}

// spanRestart records a supervisor restart of the serving loop.
func (r *runner) spanRestart(failedAt int) { r.spanInstant(span.KindRestart, failedAt) }

// spanQuarantine records the stream's retirement and arms the quarantine
// trigger (the dump flushes at end of run if no more frames arrive).
func (r *runner) spanQuarantine() {
	if r.fr == nil {
		return
	}
	r.spanInstant(span.KindQuarantine, -1)
	r.fr.ObserveQuarantine(r.si, -1)
}

// spanDegrade records a quality-ladder transition.
func (r *runner) spanDegrade(from, to pipeline.Quality) {
	if r.fr == nil {
		return
	}
	r.fr.Recorder().Emit(span.Event{
		Kind: span.KindDegrade, Stream: int32(r.si), Frame: -1, Task: -1, Scenario: -1,
		Quality: int32(to), Arg0: float64(from),
	})
}

package stream

import (
	"fmt"
	"time"
)

// This file is the per-stream restart supervisor (ServerConfig.Supervise):
// a serving loop that dies — stall past StallMs, nil source frame, planning
// failure — is restarted with capped exponential backoff instead of ending
// the stream. The crashed frame is accounted (failed, or abandoned for a
// stall) and serving resumes at the next frame, so one poisoned frame costs
// exactly one frame. A stream that keeps dying without making progress is
// quarantined: it stops serving, keeps its partial results, and is retired
// from the core arbitration so the healthy streams inherit its share
// immediately (MultiManager.Retire) instead of shedding load against a
// corpse's stale demand.

// supervised drives serveFrames under the restart policy. It returns when
// the stream completes, or after quarantining it (res.Err set).
func (r *runner) supervised() {
	start := 0
	consecutive := 0 // crashes since the last frame of progress
	restarts := 0
	backoff := r.cfg.BackoffMs
	var recoverySumMs float64
	for {
		r.sinceRestart = 0
		failedAt, stalled, err := r.serveFrames(start)
		if err == nil {
			return
		}
		crashedAt := time.Now()
		if r.sinceRestart > 0 {
			// The loop made progress before dying: the failure streak is
			// broken, so the backoff resets too.
			consecutive = 0
			backoff = r.cfg.BackoffMs
		}
		consecutive++
		restarts++
		// Account the killing frame (its Offered was already counted) and
		// resume past it.
		r.recordLostFrame(failedAt, 0, 0, !stalled)
		if stalled && r.sc.Rebuild == nil {
			r.quarantine(fmt.Errorf("stalled without a Rebuild hook: %w", err))
			return
		}
		if consecutive > r.cfg.MaxRestarts {
			r.quarantine(fmt.Errorf("%d consecutive crashes without progress: %w", consecutive, err))
			return
		}
		if restarts > r.cfg.RestartBudget {
			r.quarantine(fmt.Errorf("restart budget of %d exhausted: %w", r.cfg.RestartBudget, err))
			return
		}
		time.Sleep(time.Duration(backoff * float64(time.Millisecond)))
		backoff *= 2
		if backoff > r.cfg.MaxBackoffMs {
			backoff = r.cfg.MaxBackoffMs
		}
		if stalled {
			// The old engine may still be executing on a leaked goroutine;
			// per the Engine concurrency contract it is dead to us. Build a
			// replacement and re-thread the telemetry hot paths.
			eng, mgr, rerr := r.sc.Rebuild()
			if rerr != nil || eng == nil || mgr == nil {
				r.quarantine(fmt.Errorf("rebuild after stall failed: %v (stall: %w)", rerr, err))
				return
			}
			mgr.BudgetMs = r.mgr.BudgetMs
			r.tel.rewire(eng, mgr, r.mgr)
			r.eng, r.mgr = eng, mgr
			// The rebuilt engine stripes through the shared host pool like
			// the original (serveOne wired the first one).
			r.eng.SetWorkers(r.pool)
			// Fresh builder + fan-out sink for the rebuilt pair (the old
			// builder stays with the poisoned engine, never committed).
			r.attachSpans()
			if r.cfg.Promote != nil {
				// The rebuilt manager starts un-steered; re-apply the
				// controller's current demand source and tail guard so a
				// stall during a canary cannot silently drop the steering.
				r.cfg.Promote.Rewire(r.si, r.mgr)
			}
		}
		r.res.Stats.Restarts++
		r.tel.restarted()
		r.spanRestart(failedAt)
		// MeanRecoveryMs averages *completed* recoveries only: a crash that
		// ends in quarantine (above) never resumes serving, so its recovery
		// time is abandoned rather than folded in, and Stats.Restarts stays
		// at the completed count. The explicit guard keeps the accounting
		// NaN-free even if a future path computes the mean before the first
		// increment (quarantine on the very first restart leaves it zero).
		recoverySumMs += float64(time.Since(crashedAt).Nanoseconds()) / 1e6
		if n := r.res.Stats.Restarts; n > 0 {
			r.res.Stats.MeanRecoveryMs = recoverySumMs / float64(n)
		}
		start = failedAt + 1
	}
}

// quarantine ends the stream permanently: the error is recorded, the stats
// marked, and the stream retired from the core arbitration.
func (r *runner) quarantine(err error) {
	r.res.Err = fmt.Errorf("quarantined: %w", err)
	r.res.Stats.Quarantined = true
	r.ctl.quarantine(r.si)
	r.spanQuarantine()
}

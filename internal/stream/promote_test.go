package stream

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"triplec/internal/core"
	"triplec/internal/metrics"
	"triplec/internal/promote"
	"triplec/internal/shadow"
)

// TestRollingMissDivergence: a late burst of deadline misses moves the
// 64-frame rolling window immediately while the lifetime rate still
// averages it away — the signal the promotion guardrails (and /healthz
// readers) depend on.
func TestRollingMissDivergence(t *testing.T) {
	reg := metrics.NewRegistry()
	acct, err := metrics.NewAccountant(reg, metrics.AccountantConfig{Stream: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	tel := &telemetry{acct: acct}

	// 100 clean frames, then a 32-frame miss burst.
	for i := 0; i < 100; i++ {
		tel.processed(10, false, false)
	}
	for i := 0; i < 32; i++ {
		tel.processed(40, true, false)
	}

	rolling, samples := tel.rollingMissRate()
	if samples != missWindow {
		t.Fatalf("rolling window holds %d samples, want %d", samples, missWindow)
	}
	if rolling != 0.5 {
		t.Fatalf("rolling miss rate %v, want 0.5 (32 misses in the last 64 frames)", rolling)
	}
	lifetime := float64(acct.DeadlineMisses.Value()) / float64(acct.Processed.Value())
	if lifetime >= 0.3 {
		t.Fatalf("lifetime miss rate %v, want the burst diluted below 0.3", lifetime)
	}
	if rolling <= 2*lifetime {
		t.Fatalf("rolling (%v) does not diverge from lifetime (%v) under a late burst", rolling, lifetime)
	}
}

// TestRollingMissWindowPartial: before 64 frames the window reports exactly
// the frames seen so far, masked to avoid phantom samples.
func TestRollingMissWindowPartial(t *testing.T) {
	reg := metrics.NewRegistry()
	acct, err := metrics.NewAccountant(reg, metrics.AccountantConfig{Stream: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	tel := &telemetry{acct: acct}
	tel.processed(10, true, false)
	tel.processed(10, false, false)
	tel.processed(10, true, false)
	rolling, samples := tel.rollingMissRate()
	if samples != 3 || rolling != 2.0/3.0 {
		t.Fatalf("partial window = %v over %d samples, want 2/3 over 3", rolling, samples)
	}
}

// TestServeWithPromotion runs the serving loop with the promotion
// controller attached to every stream: /healthz must carry the fleet
// promotion status and the per-stream predictor identity must follow the
// canary assignment, and end-of-run Stats must surface the rolling miss
// window.
func TestServeWithPromotion(t *testing.T) {
	s := testStudy()
	p, err := s.TrainPredictor()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		mkStream(t, s, "p0", 3, 0),
		mkStream(t, s, "p1", 4, 0),
	}
	for i := range cfgs {
		cfgs[i].Shadow = mkShadowBoard(t, s, p, cfgs[i].Name)
	}
	// A named challenger canaries immediately; an enormous canary window
	// keeps the run inside the canary stage so the steering is observable.
	ctl, err := promote.NewController(promote.Config{
		Challenger:   shadow.BackendOrder2,
		CanaryFrac:   0.5,
		CanaryFrames: 1 << 20,
		MinSamples:   1 << 20, // guards never fire in this short run
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv, err := NewServer(ServerConfig{Metrics: reg, Promote: ctl}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(30)
	if err != nil {
		t.Fatal(err)
	}

	if st := ctl.State(); st != promote.StateCanary {
		t.Fatalf("controller state %s after the run, want canary", st)
	}
	canaried := 0
	for i := range cfgs {
		switch got := ctl.StreamPredictor(i); got {
		case shadow.BackendOrder2:
			canaried++
		case core.BackendBaseline:
		default:
			t.Fatalf("stream %d predictor %q, want challenger or baseline", i, got)
		}
	}
	if canaried != 1 {
		t.Fatalf("%d of 2 streams canaried, want exactly 1 at canary-frac 0.5", canaried)
	}

	// End-of-run stats surface the rolling miss window.
	for i, sr := range res.Streams {
		want := sr.Stats.Processed
		if want > 64 {
			want = 64
		}
		if sr.Stats.RollingMissSamples != want {
			t.Errorf("stream %d rolling samples %d, want %d", i, sr.Stats.RollingMissSamples, want)
		}
		if sr.Stats.RollingMissRate < 0 || sr.Stats.RollingMissRate > 1 {
			t.Errorf("stream %d rolling miss rate %v outside [0,1]", i, sr.Stats.RollingMissRate)
		}
	}

	// /healthz: fleet promotion block plus per-stream predictor identity
	// and rolling miss window.
	rec := httptest.NewRecorder()
	srv.HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var rep struct {
		Promotion *promote.Status `json:"promotion"`
		Streams   []struct {
			Name               string  `json:"name"`
			Predictor          string  `json:"predictor"`
			RollingMissRate    float64 `json:"rolling_miss_rate"`
			RollingMissSamples int     `json:"rolling_miss_samples"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if rep.Promotion == nil {
		t.Fatal("healthz missing the promotion block")
	}
	if rep.Promotion.State != promote.StateCanary.String() {
		t.Fatalf("healthz promotion state %q, want %q", rep.Promotion.State, promote.StateCanary)
	}
	if rep.Promotion.Challenger != shadow.BackendOrder2 {
		t.Fatalf("healthz challenger %q, want %q", rep.Promotion.Challenger, shadow.BackendOrder2)
	}
	healthCanaried := 0
	for _, h := range rep.Streams {
		if h.Predictor == shadow.BackendOrder2 {
			healthCanaried++
		}
		if h.RollingMissSamples == 0 {
			t.Errorf("stream %s: healthz rolling miss window empty after a served run", h.Name)
		}
	}
	if healthCanaried != canaried {
		t.Fatalf("healthz shows %d canaried streams, controller says %d", healthCanaried, canaried)
	}

	// The promote metric families are live on the registry.
	mrec := httptest.NewRecorder()
	metrics.Handler(reg).ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	body := mrec.Body.String()
	for _, want := range []string{"triplec_promote_state", "triplec_promote_canary_streams"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

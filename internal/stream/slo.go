package stream

import (
	"triplec/internal/slo"
)

// This file threads the frame-latency cause ledger through the serving
// loop. Every processed frame is classified once, at commit time, from
// evidence the loop already has on hand: the admission directive (core
// arbitration), the predictor sink (scenario misses, staged by spanSink
// during Manager.Observe), the degradation ladder, the supervisor (fault
// recovery via recordLostFrame), and the arbiter's rebalance counter. The
// path reuses one FrameInput scratch per stream and allocates nothing.

// observeSLO feeds one processed frame to the cause ledger and burn-rate
// tracker, and attaches the latency exemplar when enabled. The pending
// cross-frame flags are consumed (and cleared) even when no tracker is
// configured so they can never go stale.
func (r *runner) observeSLO(frameIdx int, mode Mode, predictedMs, latencyMs float64) {
	scenMiss, faultRec := r.pendingScenMiss, r.pendingFault
	r.pendingScenMiss, r.pendingFault = false, false
	t := r.cfg.SLO
	if t == nil {
		return
	}
	rebalanced := false
	if rb := r.ctl.rebalances(); rb != r.lastRebalances {
		r.lastRebalances = rb
		rebalanced = true
	}
	in := &r.sloIn
	*in = slo.FrameInput{
		Stream:      r.si,
		Frame:       frameIdx,
		LatencyMs:   latencyMs,
		PredictedMs: predictedMs,
		BudgetMs:    r.mgr.BudgetMs,
		// ModeSerial from the arbiter means this frame ran throttled while
		// waiting on cores owned by other streams.
		CoreWait:     mode == ModeSerial,
		ScenarioMiss: scenMiss,
		Rebalanced:   rebalanced,
		Degraded:     r.deg.Level() != 0,
		FaultRecover: faultRec,
	}
	t.ObserveFrame(in)
	if r.cfg.SLOExemplars && r.tel != nil {
		// ArmedDumpSeq is -1 when no flight-recorder dump is pending, so the
		// exemplar's dump label is omitted from the exposition.
		r.tel.acct.FrameLatencyMs.AttachExemplar(latencyMs, int64(frameIdx), int64(r.fr.ArmedDumpSeq()))
	}
}

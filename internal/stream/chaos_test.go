package stream

import (
	"net/http/httptest"
	"strings"
	"testing"

	"triplec/internal/fault"
	"triplec/internal/metrics"
	"triplec/internal/tasks"
)

// This file holds the PR's acceptance chaos run: four streams serving 500
// frames each under deterministic fault injection — task panics and
// stuck-task hangs on two streams, the other two fault-free — must complete
// with no process crash, quarantine only the faulted streams, keep the
// healthy streams' deadline-miss rate within 2x the fault-free baseline,
// and surface the recovery events through the metrics registry.

const (
	chaosStreams = 4
	chaosFrames  = 500
)

// chaosServerConfig is shared by the baseline and the chaos run so the two
// miss rates are comparable.
func chaosServerConfig(reg *metrics.Registry) ServerConfig {
	return ServerConfig{
		HostWorkers: chaosStreams + 2, // stalled frames hold a worker; keep slack
		Supervise:   true,
		WatchdogMs:  250 * raceScale,
		StallMs:     400 * raceScale,
		MaxRestarts: 3,
		// Low enough that the permanently faulted streams exhaust it within
		// the run and demonstrate quarantine, high enough to show restarts.
		RestartBudget: 4,
		BackoffMs:     0.5,
		MaxBackoffMs:  5,
		Degrade:       true,
		Metrics:       reg,
	}
}

func chaosStreamSet(t *testing.T, inj *fault.Injector) []Config {
	t.Helper()
	s := testStudy()
	cfgs := make([]Config, chaosStreams)
	for i := 0; i < chaosStreams; i++ {
		name := []string{"faulted-a", "faulted-b", "healthy-a", "healthy-b"}[i]
		sc := mkStream(t, s, name, 100+uint64(i), 0)
		if inj != nil && i < 2 {
			si := inj.ForStream(i)
			sc.Engine.SetTaskHook(si.BeforeTask)
			sc.Source = si.WrapSource(sc.Source)
			sc = withRebuild(t, sc, si.BeforeTask)
		}
		cfgs[i] = sc
	}
	return cfgs
}

func TestChaosRunSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	// Fault-free baseline for the miss-rate comparison.
	srv, err := NewServer(chaosServerConfig(nil), chaosStreamSet(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	base, err := srv.Run(chaosFrames)
	if err != nil {
		t.Fatalf("fault-free baseline failed: %v", err)
	}

	// The chaos run: 5% task panics and 2% stuck-task hangs on streams 0-1
	// (hangs exceed StallMs, forcing stall -> rebuild -> quarantine), plus
	// occasional frame corruption. Streams 2-3 are fault-free.
	inj, err := fault.New(fault.Config{
		Seed:        2026,
		Defaults:    fault.Probs{Panic: 0.05, Hang: 0.02},
		CorruptProb: 0.01,
		HangMs:      800 * raceScale, // far past StallMs: a hang is a stall, not a spike
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv, err = NewServer(chaosServerConfig(reg), chaosStreamSet(t, inj))
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Run(chaosFrames)
	// The run's error may only report quarantines of the faulted streams.
	if err != nil && !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("chaos run failed beyond quarantine: %v", err)
	}

	counts := inj.Counts()
	if counts.Panics == 0 || counts.Hangs == 0 {
		t.Fatalf("injection plan fired no faults: %+v", counts)
	}
	t.Logf("injected: %v", counts)

	for i, r := range out.Streams {
		st := r.Stats
		faulted := i < 2
		if st.Offered != st.Processed+st.Skipped+st.Failed+st.Abandoned {
			t.Errorf("%s: frame accounting broken: %+v", st.Name, st)
		}
		if !faulted {
			if st.Quarantined || r.Err != nil {
				t.Errorf("healthy stream %s impacted: quarantined=%v err=%v", st.Name, st.Quarantined, r.Err)
			}
			if st.Offered != chaosFrames {
				t.Errorf("healthy stream %s served %d frames, want %d", st.Name, st.Offered, chaosFrames)
			}
			if st.Failed != 0 || st.Restarts != 0 {
				t.Errorf("healthy stream %s shows fault symptoms: %+v", st.Name, st)
			}
			// SLO: miss rate within 2x the fault-free baseline (epsilon
			// floor absorbs tiny-denominator noise).
			baseRate := base.Streams[i].Stats.MissRate()
			if rate := st.MissRate(); rate > 2*baseRate+0.05 {
				t.Errorf("healthy stream %s miss rate %.3f vs baseline %.3f (limit 2x + 0.05)",
					st.Name, rate, baseRate)
			}
			continue
		}
		// Faulted streams: survived task panics as per-frame failures and
		// were eventually quarantined by the hang-induced stalls.
		if st.Failed == 0 {
			t.Errorf("faulted stream %s recorded no failed frames", st.Name)
		}
		if st.Processed == 0 {
			t.Errorf("faulted stream %s processed nothing despite ~73%% clean frames", st.Name)
		}
		if !st.Quarantined {
			t.Errorf("faulted stream %s not quarantined: restarts=%d abandoned=%d", st.Name, st.Restarts, st.Abandoned)
		}
		if st.Restarts == 0 || st.MeanRecoveryMs <= 0 {
			t.Errorf("faulted stream %s shows no recoveries: %+v", st.Name, st)
		}
	}

	// Recovery events must be visible through /metrics.
	rec := httptest.NewRecorder()
	metrics.Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`triplec_stream_restarts_total{stream="faulted-a"}`,
		`triplec_stream_quarantines_total{stream="faulted-a"} 1`,
		`triplec_stream_quarantines_total{stream="faulted-b"} 1`,
		`triplec_task_panics_total{stream="faulted-a"}`,
		`triplec_frames_failed_total{stream="faulted-b"}`,
		`triplec_frames_abandoned_total{stream="faulted-a"}`,
		`triplec_stream_quarantines_total{stream="healthy-a"} 0`,
		`triplec_stream_restarts_total{stream="healthy-b"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /healthz reports the quarantined streams and degrades the status.
	hrec := httptest.NewRecorder()
	srv.HealthHandler().ServeHTTP(hrec, httptest.NewRequest("GET", "/healthz", nil))
	if hrec.Code != 503 {
		t.Errorf("/healthz code %d with quarantined streams, want 503", hrec.Code)
	}
	hbody := hrec.Body.String()
	if !strings.Contains(hbody, `"quarantined"`) || !strings.Contains(hbody, `"degraded"`) {
		t.Errorf("/healthz does not surface the quarantine: %s", hbody)
	}
}

// TestChaosDeterministic: the same fault plan yields the same injected
// fault decisions (the serving interleavings differ, but the per-stream
// injectors draw identical decision streams).
func TestChaosDeterministic(t *testing.T) {
	cfg := fault.Config{Seed: 7, Defaults: fault.Probs{Panic: 0.1, Spike: 0.05}, SpikeMs: 1}
	runOnce := func() fault.Counts {
		inj, err := fault.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := inj.ForStream(0)
		for f := 0; f < 200; f++ {
			for _, task := range []tasks.Name{tasks.NameDetect, tasks.NameMKXExt, tasks.NameENH} {
				func() {
					defer func() { _ = recover() }()
					s.BeforeTask(task, f)
				}()
			}
		}
		return s.Counts()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("identical fault plans diverged: %+v vs %+v", a, b)
	}
	if a.Panics == 0 || a.Spikes == 0 {
		t.Fatalf("plan fired nothing: %+v", a)
	}
}

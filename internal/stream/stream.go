// Package stream is the concurrent multi-stream serving layer: it runs N
// independent imaging streams — each with its own pipeline.Engine, trained
// core.Predictor and sched.Manager — over one shared host, arbitrated by a
// global controller that re-divides the modeled machine's cores across the
// streams from their per-frame Triple-C predictions and sheds load
// gracefully (serial fallback, then alternate-frame skipping) when the
// aggregate predicted demand exceeds the machine.
//
// Two resources are managed at once:
//
//   - the modeled platform's cores (the paper's 8-core Blackford): divided
//     between the streams' runtime managers by a sched.MultiManager so
//     every stream plans its striping within its current share, and
//   - the host's actual cores: all frame processing funnels through one
//     bounded parallel.Pool, so N streams never oversubscribe the machine
//     the reproduction really runs on.
//
// Concurrency discipline: each stream is driven by exactly one goroutine
// that owns its Engine and Manager (see the Engine concurrency contract in
// internal/pipeline); goroutines communicate only through the controller,
// whose state is mutex-guarded.
package stream

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"triplec/internal/core"
	"triplec/internal/frame"
	"triplec/internal/metrics"
	"triplec/internal/parallel"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/promote"
	"triplec/internal/sched"
	"triplec/internal/shadow"
	"triplec/internal/slo"
	"triplec/internal/span"
	"triplec/internal/trace"
)

// Config describes one stream to serve.
type Config struct {
	Name        string
	Engine      *pipeline.Engine
	Manager     *sched.Manager
	Source      func(int) *frame.Frame
	FramePixels int
	// BudgetMs is the per-frame latency deadline. 0 initializes it from
	// the first processed frame like the paper's runtime manager does.
	BudgetMs float64
	// Rebuild, when set, constructs a fresh Engine+Manager pair for this
	// stream after a stall (a frame exceeding ServerConfig.StallMs): the
	// stalled engine may still be executing on a leaked goroutine, so per
	// the Engine concurrency contract it can never be touched again. The
	// supervisor quarantines a stalled stream immediately when Rebuild is
	// nil. The returned manager starts untrained (or pre-trained, the
	// caller's choice); its budget is re-initialized from the crashed
	// manager automatically.
	Rebuild func() (*pipeline.Engine, *sched.Manager, error)
	// Shadow, when set, receives every processed frame's dense observation
	// for the predictor bake-off. Strictly read-only with respect to
	// scheduling: the board's backends race the deployed predictor but
	// nothing they produce flows back into planning, and the frame-path
	// cost is one mutex-guarded scoring pass with zero allocations.
	Shadow *shadow.Board
}

// ServerConfig tunes the serving layer.
type ServerConfig struct {
	// ModelCores is the modeled machine size the controller divides across
	// streams. 0 defaults to the first stream's architecture.
	ModelCores int
	// HostWorkers bounds concurrent frame processing on the host (the
	// shared pool size). 0 defaults to GOMAXPROCS.
	HostWorkers int
	// Mapper selects the core-division policy the arbiter applies at every
	// re-division: nil is the greedy proportional baseline (SplitCores);
	// internal/mapping.NewOptimizer supplies the bi-criteria Pareto
	// optimizer, which conditions the division on each stream's reported
	// cost profile. The serving loop processes frame-at-a-time, so only the
	// plans' core counts steer it; the stage structure is consumed by the
	// pipelined executor in internal/bench.
	Mapper sched.Mapper
	// RebalanceEvery is the number of per-stream demand reports between
	// controller re-divisions. 0 means the default of 4; negative values
	// are rejected by NewServer.
	RebalanceEvery int
	// SkipOver is the aggregate load ratio (predicted core need / machine
	// cores) beyond which under-allocated streams skip alternate frames.
	// 0 means the default of 2.0; negative or NaN values are rejected by
	// NewServer.
	SkipOver float64
	// WatchdogMs, when positive, is the per-frame *wall-clock* deadline: a
	// frame still executing past it is abandoned (counted, traced, and the
	// next frame admitted once the engine comes back). 0 disables the
	// watchdog. Distinct from Config.BudgetMs, which bounds the modeled
	// latency — the watchdog guards the host against stuck tasks.
	WatchdogMs float64
	// StallMs is the total wall-clock wait before an abandoned frame's
	// engine is declared stalled (likely hung forever): the serving loop
	// must wait for an abandoned frame before reusing its engine (Engine
	// concurrency contract), so only a stall breaks off — after which the
	// engine is poisoned and the supervisor must Rebuild or quarantine.
	// 0 defaults to 10x WatchdogMs; it must exceed WatchdogMs.
	StallMs float64
	// Supervise enables the restart supervisor: a stream whose serving
	// loop dies (stall, nil source frame, planning failure) is restarted
	// with capped exponential backoff instead of ending the stream, and
	// quarantined after MaxRestarts consecutive failures without progress
	// (or RestartBudget restarts in total). Quarantine retires the stream
	// from the core arbitration so healthy streams inherit its share.
	Supervise bool
	// MaxRestarts is the consecutive no-progress restart limit before
	// quarantine (default 3).
	MaxRestarts int
	// RestartBudget is the stream-lifetime restart limit (default 10).
	RestartBudget int
	// BackoffMs is the initial restart backoff (default 1); doubled per
	// consecutive restart and capped at MaxBackoffMs (default 100).
	BackoffMs    float64
	MaxBackoffMs float64
	// Degrade enables the per-stream degradation ladder: sustained bad
	// frames (miss, failure, abandonment) step the pipeline down
	// pipeline.Quality rungs, recovered streams step back up after the
	// cool-down (see pipeline.DegraderConfig).
	Degrade bool
	// Degrader tunes the ladder's hysteresis (zero value = defaults).
	Degrader pipeline.DegraderConfig
	// Metrics, when set, enables the live telemetry layer: NewServer
	// registers one per-stream instrument set (metrics.Accountant plus the
	// plan-level gauges) and the global arbiter instruments on this
	// registry, and threads them through the engine, predictor and manager
	// hot paths. Stream names label the instruments, so they must be
	// unique (empty names fall back to stream<i>). Expose the registry via
	// metrics.Handler and the per-stream summary via Server.HealthHandler.
	Metrics *metrics.Registry
	// Flight, when set, enables per-frame span tracing into the flight
	// recorder's always-on ring: frame root spans and task child spans with
	// predicted-vs-actual times, plus instants for skips, abandons, stalls,
	// restarts, quarantines, degradations and rebalances. Triggered dumps
	// (deadline miss, task panic, quarantine, prediction error) land in the
	// recorder's directory as Chrome trace-event JSON; Server.Run flushes
	// any pending dump before returning. Recording on the steady-state
	// frame path allocates nothing.
	Flight *span.FlightRecorder
	// Promote, when set, is the guarded predictor-promotion controller:
	// NewServer attaches every stream's shadow board and runtime manager to
	// it (so each stream needs Config.Shadow), the serving loop feeds it
	// every served frame's deadline outcome, and the supervisor re-wires
	// rebuilt managers through it so a mid-canary stall cannot silently
	// shed the steering. The controller's state rides along in /healthz
	// (healthReport.Promotion, per-stream Predictor) and, when Flight is
	// also set, in every dump's metadata and promote instants.
	Promote *promote.Controller
	// SLO, when set, is the frame-latency cause ledger and burn-rate
	// tracker: the serving loop classifies every processed frame's latency
	// overage into causes (compute, core-wait, scenario-miss, rebalance,
	// degrade, fault, drain) and feeds the multi-window burn-rate alerts.
	// Build it with slo.NewTracker (Config.Streams must cover the stream
	// count), expose it via Tracker.Handler at /debug/sloz; its status
	// rides along in /healthz (healthReport.SLO). The per-frame observation
	// path is allocation-free.
	SLO *slo.Tracker
	// SLOExemplars links each stream's frame-latency histogram to the
	// flight recorder: every processed frame's latency is attached as an
	// OpenMetrics exemplar carrying the frame index and, when a dump is
	// armed, the dump sequence number. Needs Metrics; Flight supplies the
	// dump linkage (without it exemplars carry the frame index only).
	SLOExemplars bool
}

func (c ServerConfig) withDefaults(streams []Config) ServerConfig {
	if c.ModelCores == 0 && len(streams) > 0 {
		c.ModelCores = streams[0].Manager.Arch().NumCPUs
	}
	if c.RebalanceEvery == 0 {
		c.RebalanceEvery = 4
	}
	if c.SkipOver == 0 {
		c.SkipOver = 2.0
	}
	if c.WatchdogMs > 0 && c.StallMs == 0 {
		c.StallMs = 10 * c.WatchdogMs
	}
	if c.Supervise {
		if c.MaxRestarts == 0 {
			c.MaxRestarts = 3
		}
		if c.RestartBudget == 0 {
			c.RestartBudget = 10
		}
		if c.BackoffMs == 0 {
			c.BackoffMs = 1
		}
		if c.MaxBackoffMs == 0 {
			c.MaxBackoffMs = 100
		}
	}
	return c
}

// Stats summarizes one stream after a run. Every offered frame lands in
// exactly one of Processed, Skipped, Failed or Abandoned.
type Stats struct {
	Name            string
	Offered         int  // frames offered by the source
	Processed       int  // frames actually processed
	Skipped         int  // frames shed by the controller
	Failed          int  // frames lost to a recovered task panic or crash
	Abandoned       int  // frames given up past the watchdog deadline
	SerialFallbacks int  // processed frames forced to the serial mapping
	DeadlineMisses  int  // processed frames over the stream's budget
	AccountingErrs  int  // frames with incomplete bandwidth accounting
	Restarts        int  // supervisor restarts of the serving loop
	Quarantined     bool // stream retired after exhausting its restarts
	Degradations    int  // quality-ladder transitions (either direction)
	FinalQuality    pipeline.Quality
	MeanRecoveryMs  float64 // mean crash-to-serving wall-clock time
	BudgetMs        float64
	MeanLatencyMs   float64
	WorstLatencyMs  float64
	ThroughputFPS   float64 // processed frames per wall-clock second
	// RollingMissRate is the deadline-miss fraction over the last
	// RollingMissSamples (≤ 64) processed frames when the run ended — the
	// recency view /healthz serves live, kept here so offline runs can see
	// end-of-run drift that the lifetime MissRate averages away.
	RollingMissRate    float64
	RollingMissSamples int
}

// MissRate returns the deadline-miss fraction over processed frames.
func (s Stats) MissRate() float64 {
	if s.Processed == 0 {
		return 0
	}
	return float64(s.DeadlineMisses) / float64(s.Processed)
}

// Result is one stream's outcome.
type Result struct {
	Stats   Stats
	Reports []pipeline.Report // processed frames only
	// Trace holds aligned per-frame series (one row per *offered* frame):
	// latency_ms, predicted_ms, cores, missed, skipped, serial, failed,
	// abandoned.
	Trace *trace.Trace
	Err   error
}

// RunResult aggregates a full serving run.
type RunResult struct {
	Streams      []Result
	FinalBudgets []int // per-stream core budgets when the run ended
	Rebalances   int
	WallMs       float64
	AggregateFPS float64 // total processed frames per wall-clock second
}

// Server runs several streams concurrently under one global controller.
type Server struct {
	cfg     ServerConfig
	streams []Config

	// Telemetry (nil/empty unless cfg.Metrics was set).
	tels         []*telemetry
	multiMetrics *sched.MultiMetrics
}

// NewServer validates the stream set and builds a server.
func NewServer(cfg ServerConfig, streams []Config) (*Server, error) {
	if len(streams) == 0 {
		return nil, errors.New("stream: no streams to serve")
	}
	names := make(map[string]int, len(streams))
	for i, s := range streams {
		if s.Engine == nil || s.Manager == nil || s.Source == nil {
			return nil, fmt.Errorf("stream: stream %d (%q) incomplete: needs engine, manager and source", i, s.Name)
		}
		if s.FramePixels <= 0 {
			return nil, fmt.Errorf("stream: stream %d (%q) has no frame geometry", i, s.Name)
		}
		if s.BudgetMs < 0 || math.IsNaN(s.BudgetMs) || math.IsInf(s.BudgetMs, 0) {
			return nil, fmt.Errorf("stream: stream %d (%q) has invalid budget %v ms; use 0 to initialize from the first frame or a positive finite deadline", i, s.Name, s.BudgetMs)
		}
		if s.Name != "" {
			if j, dup := names[s.Name]; dup {
				return nil, fmt.Errorf("stream: duplicate stream name %q (streams %d and %d); names label metrics and health reports, so they must be unique", s.Name, j, i)
			}
			names[s.Name] = i
		}
	}
	if cfg.WatchdogMs < 0 || math.IsNaN(cfg.WatchdogMs) {
		return nil, fmt.Errorf("stream: WatchdogMs %v is invalid; use 0 to disable the per-frame wall-clock deadline", cfg.WatchdogMs)
	}
	if cfg.StallMs < 0 || math.IsNaN(cfg.StallMs) {
		return nil, fmt.Errorf("stream: StallMs %v is invalid; use 0 for the default of 10x WatchdogMs", cfg.StallMs)
	}
	if cfg.StallMs > 0 && cfg.StallMs <= cfg.WatchdogMs {
		return nil, fmt.Errorf("stream: StallMs %v must exceed WatchdogMs %v (an abandoned frame is waited for before being declared stalled)", cfg.StallMs, cfg.WatchdogMs)
	}
	if cfg.MaxRestarts < 0 || cfg.RestartBudget < 0 {
		return nil, fmt.Errorf("stream: MaxRestarts %d / RestartBudget %d must be non-negative; use 0 for the defaults", cfg.MaxRestarts, cfg.RestartBudget)
	}
	if cfg.BackoffMs < 0 || math.IsNaN(cfg.BackoffMs) || cfg.MaxBackoffMs < 0 || math.IsNaN(cfg.MaxBackoffMs) {
		return nil, fmt.Errorf("stream: BackoffMs %v / MaxBackoffMs %v must be non-negative", cfg.BackoffMs, cfg.MaxBackoffMs)
	}
	if err := cfg.Degrader.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if cfg.RebalanceEvery < 0 {
		return nil, fmt.Errorf("stream: RebalanceEvery %d is negative; use 0 for the default of 4 demand reports per re-division", cfg.RebalanceEvery)
	}
	if cfg.SkipOver < 0 || math.IsNaN(cfg.SkipOver) {
		return nil, fmt.Errorf("stream: SkipOver %v is invalid; use 0 for the default load ratio of 2.0", cfg.SkipOver)
	}
	cfg = cfg.withDefaults(streams)
	if cfg.ModelCores < 1 {
		return nil, fmt.Errorf("stream: modeled machine needs at least one core, got %d", cfg.ModelCores)
	}
	srv := &Server{cfg: cfg, streams: streams}
	if cfg.Metrics != nil {
		srv.tels = make([]*telemetry, len(streams))
		coreAlloc := make([]*metrics.Gauge, len(streams))
		for i, sc := range streams {
			t, err := newTelemetry(cfg.Metrics, sc, i)
			if err != nil {
				return nil, err
			}
			srv.tels[i] = t
			coreAlloc[i] = t.acct.CoreBudget
		}
		rebalances, err := cfg.Metrics.NewCounter("triplec_rebalances_total",
			"Cross-stream core re-divisions applied by the arbiter.")
		if err != nil {
			return nil, err
		}
		srv.multiMetrics = &sched.MultiMetrics{Rebalances: rebalances, CoreAllocation: coreAlloc}
	}
	if cfg.Flight != nil {
		cfg.Flight.SetMeta(spanMeta(streams))
	}
	if cfg.Promote != nil {
		for i, sc := range streams {
			if sc.Shadow == nil {
				return nil, fmt.Errorf("stream: stream %d (%q) has no shadow board; guarded promotion scores challengers on the per-stream bake-off boards, so every stream needs Config.Shadow", i, sc.Name)
			}
			if err := cfg.Promote.AttachStream(streamLabel(sc, i), sc.Shadow, sc.Manager); err != nil {
				return nil, fmt.Errorf("stream: %w", err)
			}
		}
		if cfg.Flight != nil {
			// Stamp the controller's state into every dump's metadata and
			// emit promote instants into the trace ring.
			cfg.Promote.SetSpanRecorder(cfg.Flight.Recorder())
		}
	}
	if cfg.SLOExemplars {
		if srv.tels == nil {
			return nil, errors.New("stream: SLOExemplars needs ServerConfig.Metrics (exemplars attach to the frame-latency histograms)")
		}
		for _, t := range srv.tels {
			t.acct.FrameLatencyMs.EnableExemplars()
		}
	}
	return srv, nil
}

// Run serves n frames on every stream concurrently and returns the
// per-stream results. A stream that fails stops early and records its error
// in its Result; the remaining streams keep serving.
func (s *Server) Run(n int) (RunResult, error) {
	if n <= 0 {
		return RunResult{}, errors.New("stream: need at least one frame")
	}
	mm, err := sched.NewMultiManager(s.cfg.ModelCores, len(s.streams))
	if err != nil {
		return RunResult{}, err
	}
	mm.Mapper = s.cfg.Mapper
	mm.Metrics = s.multiMetrics
	if fr := s.cfg.Flight; fr != nil {
		rec := fr.Recorder()
		mm.OnRebalance = func(before, after []int) {
			p0, n := span.PackBudgets(before)
			p1, _ := span.PackBudgets(after)
			rec.Emit(span.Event{
				Kind: span.KindRebalance, Stream: -1, Frame: -1, Task: -1, Scenario: -1,
				Cores: n, Pack0: p0, Pack1: p1,
			})
		}
	}
	budgets := make([]float64, len(s.streams))
	for i, sc := range s.streams {
		budgets[i] = sc.BudgetMs
	}
	ctl := newController(mm, s.cfg.ModelCores, s.cfg.RebalanceEvery, s.cfg.SkipOver, budgets)
	pool := parallel.NewPool(s.cfg.HostWorkers)
	defer pool.Close()

	out := RunResult{Streams: make([]Result, len(s.streams))}
	start := time.Now()
	done := make(chan int, len(s.streams))
	for i := range s.streams {
		go func(si int) {
			var tel *telemetry
			if s.tels != nil {
				tel = s.tels[si]
			}
			out.Streams[si] = serveOne(si, s.streams[si], n, ctl, pool, tel, s.cfg)
			done <- si
		}(i)
	}
	for range s.streams {
		<-done
	}
	wall := time.Since(start)

	out.WallMs = float64(wall.Nanoseconds()) / 1e6
	out.Rebalances = mm.Rebalances()
	out.FinalBudgets = mm.Rebalance()
	processed := 0
	var errs []error
	for i := range out.Streams {
		r := &out.Streams[i]
		processed += r.Stats.Processed
		r.Stats.ThroughputFPS = throughputFPS(r.Stats.Processed, wall)
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("stream %q: %w", r.Stats.Name, r.Err))
		}
	}
	out.AggregateFPS = throughputFPS(processed, wall)
	// A dump armed near the end of the run (or by a quarantine with no more
	// frames coming) would otherwise wait forever for its after-window.
	if err := s.cfg.Flight.Flush(); err != nil {
		errs = append(errs, fmt.Errorf("flight recorder: %w", err))
	}
	return out, errors.Join(errs...)
}

// throughputFPS divides processed frames by the wall-clock duration,
// returning an explicit 0 for zero-duration (or clock-skewed negative) runs
// so downstream consumers — Stats, /healthz JSON — never see NaN or Inf.
func throughputFPS(processed int, wall time.Duration) float64 {
	if processed <= 0 || wall <= 0 {
		return 0
	}
	return float64(processed) / wall.Seconds()
}

// runner is one stream's serving state: the loop body in serveFrames and
// the restart supervisor in supervisor.go both operate on it. It lives on
// the stream's serving goroutine only.
type runner struct {
	si   int
	sc   Config
	n    int
	ctl  *controller
	pool *parallel.Pool
	tel  *telemetry
	cfg  ServerConfig

	eng *pipeline.Engine
	mgr *sched.Manager
	deg *pipeline.Degrader

	// Span tracing (nil when ServerConfig.Flight is unset). fb is replaced
	// together with the engine after a stall — see span.go.
	fr *span.FlightRecorder
	fb *span.FrameBuilder

	res          Result
	latencySum   float64
	sinceRestart int // frames resolved since the last (re)start

	// Rolling deadline-miss window over processed frames: the low bit of
	// each served frame shifts in (1 = miss), missWinN saturates at
	// missWindow. Owned by the serving goroutine; snapshotted into
	// Stats.RollingMissRate when the stream ends.
	missWin  uint64
	missWinN int

	// shadowObs is the reusable dense observation handed to the shadow
	// board each frame (scratch space keeps the path allocation-free).
	shadowObs core.FrameObs

	// SLO cause-ledger state (used only when cfg.SLO is set). sloIn is the
	// reusable classification input; the pending flags carry cross-frame
	// cause evidence (a scenario miss noticed inside Manager.Observe, a
	// fault-recovery frame) to the next ObserveFrame. lastRebalances
	// detects arbiter re-divisions between this stream's frames.
	sloIn           slo.FrameInput
	pendingScenMiss bool
	pendingFault    bool
	lastRebalances  int
}

// serveOne is the per-stream goroutine body: admission, planning,
// processing on the shared pool, observation, demand reporting — wrapped by
// the watchdog and, when enabled, the restart supervisor. tel may be nil
// (telemetry disabled); its event methods are nil-safe.
func serveOne(si int, sc Config, n int, ctl *controller, pool *parallel.Pool, tel *telemetry, cfg ServerConfig) Result {
	r := &runner{
		si: si, sc: sc, n: n, ctl: ctl, pool: pool, tel: tel, cfg: cfg,
		eng: sc.Engine, mgr: sc.Manager,
		res: Result{
			Stats:   Stats{Name: sc.Name, BudgetMs: sc.BudgetMs},
			Reports: make([]pipeline.Report, 0, n),
		},
	}
	// All streams stripe through the one shared host pool: batching the
	// same-task stripes of independent streams through a single dispatch is
	// what keeps N streams from oversubscribing the host (package doc).
	r.eng.SetWorkers(pool)
	tel.serving()
	defer func() {
		if r.res.Stats.Quarantined {
			tel.quarantined(r.res.Err)
		} else {
			tel.finished(r.res.Err)
		}
	}()
	tr := trace.New()
	for _, col := range []string{"latency_ms", "predicted_ms", "cores", "missed", "skipped", "serial", "failed", "abandoned"} {
		if err := tr.AddEmpty(col); err != nil {
			r.res.Err = err
			return r.res
		}
	}
	r.res.Trace = tr

	if cfg.Degrade {
		deg, err := pipeline.NewDegrader(cfg.Degrader)
		if err != nil {
			r.res.Err = err
			return r.res
		}
		r.deg = deg
	}
	if sc.BudgetMs > 0 {
		r.mgr.BudgetMs = sc.BudgetMs
	}
	r.attachSpans()
	if cfg.Supervise {
		r.supervised()
	} else {
		if _, _, err := r.serveFrames(0); err != nil {
			r.res.Err = err
		}
	}
	if r.res.Stats.Processed > 0 {
		r.res.Stats.MeanLatencyMs = r.latencySum / float64(r.res.Stats.Processed)
	}
	if r.missWinN > 0 {
		win := r.missWin
		if r.missWinN < missWindow {
			win &= (1 << r.missWinN) - 1
		}
		r.res.Stats.RollingMissRate = float64(bits.OnesCount64(win)) / float64(r.missWinN)
		r.res.Stats.RollingMissSamples = r.missWinN
	}
	r.res.Stats.BudgetMs = r.mgr.BudgetMs
	r.res.Stats.FinalQuality = r.deg.Level()
	r.res.Stats.Degradations = r.deg.Transitions()
	return r.res
}

// procOutcome classifies one watched frame execution.
type procOutcome int

const (
	procCompleted procOutcome = iota // Process returned within the watchdog
	procAbandoned                    // late past WatchdogMs, but the engine came back
	procStalled                      // still running past StallMs: engine poisoned
)

// runProcess executes one frame on the shared pool, watched. Without a
// watchdog it degenerates to a plain synchronous call. An abandoned frame
// is still *waited for* (up to StallMs) before returning, because the
// engine must never be entered by two goroutines (Engine concurrency
// contract); only a stall breaks off, leaving the engine unusable.
func (r *runner) runProcess(f *frame.Frame, m partition.Mapping) (rep pipeline.Report, perr error, doErr error, outcome procOutcome) {
	if r.cfg.WatchdogMs <= 0 {
		doErr = r.pool.Do(func() { rep, perr = r.eng.Process(f, m) })
		return rep, perr, doErr, procCompleted
	}
	// Bind the engine now: after a stall the supervisor swaps r.eng for a
	// rebuilt one, and this goroutine (possibly still queued in the pool)
	// must keep pointing at the poisoned engine, never the replacement. The
	// results live in locals distinct from the named returns — on a stall
	// this function returns while the leaked goroutine is still running, and
	// it must not write into frames the caller has already read.
	eng := r.eng
	var (
		lateRep          pipeline.Report
		latePerr, lateDo error
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		lateDo = r.pool.Do(func() { lateRep, latePerr = eng.Process(f, m) })
	}()
	watchdog := time.NewTimer(time.Duration(r.cfg.WatchdogMs * float64(time.Millisecond)))
	defer watchdog.Stop()
	select {
	case <-done:
		return lateRep, latePerr, lateDo, procCompleted
	case <-watchdog.C:
	}
	// Past the wall-clock deadline: the frame is lost either way; wait for
	// the engine up to the stall bound.
	stall := time.NewTimer(time.Duration((r.cfg.StallMs - r.cfg.WatchdogMs) * float64(time.Millisecond)))
	defer stall.Stop()
	select {
	case <-done:
		return pipeline.Report{}, nil, nil, procAbandoned
	case <-stall.C:
		return pipeline.Report{}, nil, nil, procStalled
	}
}

// serveFrames serves frames [start, n) on the runner's current engine. On a
// fatal error it returns the index of the frame that killed the loop and
// whether the engine stalled (poisoned); the supervisor accounts the frame
// and resumes past it. err == nil means the stream completed.
func (r *runner) serveFrames(start int) (failedAt int, stalled bool, err error) {
	sc, tel, tr := r.sc, r.tel, r.res.Trace
	res := &r.res
	for i := start; i < r.n; i++ {
		res.Stats.Offered++
		tel.offered(i)
		if r.deg != nil {
			r.eng.SetQuality(r.deg.Level())
		}
		d := r.ctl.directive(r.si, i)
		if d.Mode == ModeSkip {
			res.Stats.Skipped++
			r.sinceRestart++
			tel.skipped()
			r.spanSkip(i)
			if err := tr.Append(0, 0, 0, 0, 1, 0, 0, 0); err != nil {
				return i, false, err
			}
			continue
		}
		if err := r.mgr.SetCoreBudget(clamp(d.Cores, 1, r.mgr.Arch().NumCPUs)); err != nil {
			return i, false, err
		}
		var dec sched.Decision
		if res.Stats.Processed == 0 {
			// Initialization frame: serial, like the paper's manager.
			dec = sched.Decision{Mapping: partition.Serial()}
		} else {
			dec = r.mgr.Plan()
		}
		serialFrame := 0.0
		if d.Mode == ModeSerial || r.deg.Level().ForceSerial() {
			dec.Mapping = partition.Serial()
			serialFrame = 1
			res.Stats.SerialFallbacks++
			tel.serialFallback()
		}
		f := sc.Source(i)
		if f == nil {
			return i, false, fmt.Errorf("frame %d: source returned nil frame", i)
		}
		rep, perr, doErr, outcome := r.runProcess(f, dec.Mapping)
		switch outcome {
		case procAbandoned:
			r.spanAbandon(i, d.Cores)
			r.recordLostFrame(i, float64(d.Cores), serialFrame, false)
			continue
		case procStalled:
			r.spanStall(i)
			return i, true, fmt.Errorf("frame %d: stalled past %v ms wall clock; engine unusable", i, r.cfg.StallMs)
		}
		if doErr != nil {
			return i, false, doErr
		}
		if perr != nil {
			var te *pipeline.TaskError
			if errors.As(perr, &te) {
				// A recovered task panic fails the frame, not the stream.
				r.spanFailed(i, d.Cores)
				r.recordLostFrame(i, float64(d.Cores), serialFrame, true)
				tel.taskPanic()
				continue
			}
			return i, false, fmt.Errorf("frame %d: %w", i, perr)
		}
		if res.Stats.Processed == 0 && r.mgr.BudgetMs <= 0 {
			r.mgr.InitBudget(rep.LatencyMs)
			res.Stats.BudgetMs = r.mgr.BudgetMs
			r.ctl.setBudgetMs(r.si, r.mgr.BudgetMs)
		}
		r.mgr.Observe(core.FromReports([]pipeline.Report{rep}, sc.FramePixels)[0])
		if sc.Shadow != nil {
			core.DenseFromReport(&rep, sc.FramePixels, &r.shadowObs)
			sc.Shadow.ObserveFrame(&r.shadowObs)
		}

		res.Stats.Processed++
		r.sinceRestart++
		res.Reports = append(res.Reports, rep)
		r.latencySum += rep.LatencyMs
		if rep.LatencyMs > res.Stats.WorstLatencyMs {
			res.Stats.WorstLatencyMs = rep.LatencyMs
		}
		missed := 0.0
		if r.mgr.BudgetMs > 0 && rep.LatencyMs > r.mgr.BudgetMs {
			res.Stats.DeadlineMisses++
			missed = 1
		}
		if len(rep.AccountingErrs) > 0 {
			res.Stats.AccountingErrs++
		}
		r.noteMiss(missed == 1)
		if r.cfg.Promote != nil {
			r.cfg.Promote.ObserveServed(r.si, missed == 1)
		}
		r.observeOutcome(missed == 0)
		r.spanProcessed(i, rep.Scenario.Index(), int(rep.Quality), d.Cores, dec.PredictedMs, rep.LatencyMs, missed == 1)
		r.observeSLO(i, d.Mode, dec.PredictedMs, rep.LatencyMs)
		tel.processed(rep.LatencyMs, missed == 1, len(rep.AccountingErrs) > 0)
		if err := tr.Append(rep.LatencyMs, dec.PredictedMs, float64(d.Cores), missed, 0, serialFrame, 0, 0); err != nil {
			return i, false, err
		}
		// Feed the arbiter the Triple-C demand for the scenario the stream
		// is currently in (see Manager.PredictedDemandMs): unlike Plan's
		// pessimistic SerialMs — which covers the scenario table's worst
		// successor and so never drops for a stream stuck in a cheap
		// degenerate mode — this signal adapts online per task and lets the
		// controller shift cores between unequal streams.
		demand := r.mgr.PredictedDemandMs()
		if demand <= 0 {
			demand = rep.LatencyMs
		}
		tel.demand(demand)
		// The full demand signal: scalar prediction plus this frame's
		// scenario-conditioned costs (a single-frame profile the arbiter
		// EWMA-folds into the stream's running profile). Stack-allocated —
		// the steady-state reporting path stays heap-free.
		sd := sched.StreamDemand{
			TotalMs:  demand,
			BudgetMs: r.mgr.BudgetMs,
			FrameKB:  sc.FramePixels * frame.BytesPerPixel / 1024,
		}
		sd.Profile.Add(rep)
		r.ctl.report(r.si, &sd)
	}
	return r.n, false, nil
}

// recordLostFrame accounts a frame that was offered but neither processed
// nor skipped: failed (recovered task panic, fatal crash) or abandoned
// (watchdog). Trace-append errors here are swallowed — the frame is already
// lost and the loop continues on the next one.
func (r *runner) recordLostFrame(i int, cores, serialFrame float64, taskFailure bool) {
	failed, abandoned := 0.0, 1.0
	if taskFailure {
		failed, abandoned = 1.0, 0.0
		r.res.Stats.Failed++
		r.tel.failedFrame()
	} else {
		r.res.Stats.Abandoned++
		r.tel.abandoned()
	}
	r.sinceRestart++
	r.observeOutcome(false)
	// The next processed frame is a fault-recovery frame: the cause ledger
	// charges its overage to recovery, not to scheduling.
	r.pendingFault = true
	_ = r.res.Trace.Append(0, 0, cores, 0, 0, serialFrame, failed, abandoned)
}

// noteMiss shifts one served frame's deadline outcome into the runner's
// rolling miss window (see Stats.RollingMissRate).
func (r *runner) noteMiss(missed bool) {
	bit := uint64(0)
	if missed {
		bit = 1
	}
	r.missWin = r.missWin<<1 | bit
	if r.missWinN < missWindow {
		r.missWinN++
	}
}

// observeOutcome feeds the degradation ladder and publishes rung changes.
func (r *runner) observeOutcome(ok bool) {
	prev := r.deg.Level()
	if r.deg.Observe(ok) {
		r.tel.qualityChanged(r.deg.Level())
		r.spanDegrade(prev, r.deg.Level())
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MergedTrace exports every stream's per-frame series side by side, one
// column group per stream, prefixed with the stream name (or stream<i> when
// unnamed).
func (r RunResult) MergedTrace() (*trace.Trace, error) {
	prefixes := make([]string, len(r.Streams))
	traces := make([]*trace.Trace, len(r.Streams))
	for i, s := range r.Streams {
		name := s.Stats.Name
		if name == "" {
			name = fmt.Sprintf("stream%d", i)
		}
		prefixes[i] = name
		traces[i] = s.Trace
	}
	return trace.Merge(prefixes, traces)
}

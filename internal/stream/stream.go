// Package stream is the concurrent multi-stream serving layer: it runs N
// independent imaging streams — each with its own pipeline.Engine, trained
// core.Predictor and sched.Manager — over one shared host, arbitrated by a
// global controller that re-divides the modeled machine's cores across the
// streams from their per-frame Triple-C predictions and sheds load
// gracefully (serial fallback, then alternate-frame skipping) when the
// aggregate predicted demand exceeds the machine.
//
// Two resources are managed at once:
//
//   - the modeled platform's cores (the paper's 8-core Blackford): divided
//     between the streams' runtime managers by a sched.MultiManager so
//     every stream plans its striping within its current share, and
//   - the host's actual cores: all frame processing funnels through one
//     bounded parallel.Pool, so N streams never oversubscribe the machine
//     the reproduction really runs on.
//
// Concurrency discipline: each stream is driven by exactly one goroutine
// that owns its Engine and Manager (see the Engine concurrency contract in
// internal/pipeline); goroutines communicate only through the controller,
// whose state is mutex-guarded.
package stream

import (
	"errors"
	"fmt"
	"math"
	"time"

	"triplec/internal/core"
	"triplec/internal/frame"
	"triplec/internal/metrics"
	"triplec/internal/parallel"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/sched"
	"triplec/internal/trace"
)

// Config describes one stream to serve.
type Config struct {
	Name        string
	Engine      *pipeline.Engine
	Manager     *sched.Manager
	Source      func(int) *frame.Frame
	FramePixels int
	// BudgetMs is the per-frame latency deadline. 0 initializes it from
	// the first processed frame like the paper's runtime manager does.
	BudgetMs float64
}

// ServerConfig tunes the serving layer.
type ServerConfig struct {
	// ModelCores is the modeled machine size the controller divides across
	// streams. 0 defaults to the first stream's architecture.
	ModelCores int
	// HostWorkers bounds concurrent frame processing on the host (the
	// shared pool size). 0 defaults to GOMAXPROCS.
	HostWorkers int
	// RebalanceEvery is the number of per-stream demand reports between
	// controller re-divisions. 0 means the default of 4; negative values
	// are rejected by NewServer.
	RebalanceEvery int
	// SkipOver is the aggregate load ratio (predicted core need / machine
	// cores) beyond which under-allocated streams skip alternate frames.
	// 0 means the default of 2.0; negative or NaN values are rejected by
	// NewServer.
	SkipOver float64
	// Metrics, when set, enables the live telemetry layer: NewServer
	// registers one per-stream instrument set (metrics.Accountant plus the
	// plan-level gauges) and the global arbiter instruments on this
	// registry, and threads them through the engine, predictor and manager
	// hot paths. Stream names label the instruments, so they must be
	// unique (empty names fall back to stream<i>). Expose the registry via
	// metrics.Handler and the per-stream summary via Server.HealthHandler.
	Metrics *metrics.Registry
}

func (c ServerConfig) withDefaults(streams []Config) ServerConfig {
	if c.ModelCores == 0 && len(streams) > 0 {
		c.ModelCores = streams[0].Manager.Arch().NumCPUs
	}
	if c.RebalanceEvery == 0 {
		c.RebalanceEvery = 4
	}
	if c.SkipOver == 0 {
		c.SkipOver = 2.0
	}
	return c
}

// Stats summarizes one stream after a run.
type Stats struct {
	Name            string
	Offered         int // frames offered by the source
	Processed       int // frames actually processed
	Skipped         int // frames shed by the controller
	SerialFallbacks int // processed frames forced to the serial mapping
	DeadlineMisses  int // processed frames over the stream's budget
	AccountingErrs  int // frames with incomplete bandwidth accounting
	BudgetMs        float64
	MeanLatencyMs   float64
	WorstLatencyMs  float64
	ThroughputFPS   float64 // processed frames per wall-clock second
}

// MissRate returns the deadline-miss fraction over processed frames.
func (s Stats) MissRate() float64 {
	if s.Processed == 0 {
		return 0
	}
	return float64(s.DeadlineMisses) / float64(s.Processed)
}

// Result is one stream's outcome.
type Result struct {
	Stats   Stats
	Reports []pipeline.Report // processed frames only
	// Trace holds aligned per-frame series (one row per *offered* frame):
	// latency_ms, predicted_ms, cores, missed, skipped, serial.
	Trace *trace.Trace
	Err   error
}

// RunResult aggregates a full serving run.
type RunResult struct {
	Streams      []Result
	FinalBudgets []int // per-stream core budgets when the run ended
	Rebalances   int
	WallMs       float64
	AggregateFPS float64 // total processed frames per wall-clock second
}

// Server runs several streams concurrently under one global controller.
type Server struct {
	cfg     ServerConfig
	streams []Config

	// Telemetry (nil/empty unless cfg.Metrics was set).
	tels         []*telemetry
	multiMetrics *sched.MultiMetrics
}

// NewServer validates the stream set and builds a server.
func NewServer(cfg ServerConfig, streams []Config) (*Server, error) {
	if len(streams) == 0 {
		return nil, errors.New("stream: no streams to serve")
	}
	for i, s := range streams {
		if s.Engine == nil || s.Manager == nil || s.Source == nil {
			return nil, fmt.Errorf("stream: stream %d (%q) incomplete: needs engine, manager and source", i, s.Name)
		}
		if s.FramePixels <= 0 {
			return nil, fmt.Errorf("stream: stream %d (%q) has no frame geometry", i, s.Name)
		}
		if s.BudgetMs < 0 {
			return nil, fmt.Errorf("stream: stream %d (%q) has negative budget", i, s.Name)
		}
	}
	if cfg.RebalanceEvery < 0 {
		return nil, fmt.Errorf("stream: RebalanceEvery %d is negative; use 0 for the default of 4 demand reports per re-division", cfg.RebalanceEvery)
	}
	if cfg.SkipOver < 0 || math.IsNaN(cfg.SkipOver) {
		return nil, fmt.Errorf("stream: SkipOver %v is invalid; use 0 for the default load ratio of 2.0", cfg.SkipOver)
	}
	cfg = cfg.withDefaults(streams)
	if cfg.ModelCores < 1 {
		return nil, fmt.Errorf("stream: modeled machine needs at least one core, got %d", cfg.ModelCores)
	}
	srv := &Server{cfg: cfg, streams: streams}
	if cfg.Metrics != nil {
		srv.tels = make([]*telemetry, len(streams))
		coreAlloc := make([]*metrics.Gauge, len(streams))
		for i, sc := range streams {
			t, err := newTelemetry(cfg.Metrics, sc, i)
			if err != nil {
				return nil, err
			}
			srv.tels[i] = t
			coreAlloc[i] = t.acct.CoreBudget
		}
		rebalances, err := cfg.Metrics.NewCounter("triplec_rebalances_total",
			"Cross-stream core re-divisions applied by the arbiter.")
		if err != nil {
			return nil, err
		}
		srv.multiMetrics = &sched.MultiMetrics{Rebalances: rebalances, CoreAllocation: coreAlloc}
	}
	return srv, nil
}

// Run serves n frames on every stream concurrently and returns the
// per-stream results. A stream that fails stops early and records its error
// in its Result; the remaining streams keep serving.
func (s *Server) Run(n int) (RunResult, error) {
	if n <= 0 {
		return RunResult{}, errors.New("stream: need at least one frame")
	}
	mm, err := sched.NewMultiManager(s.cfg.ModelCores, len(s.streams))
	if err != nil {
		return RunResult{}, err
	}
	mm.Metrics = s.multiMetrics
	budgets := make([]float64, len(s.streams))
	for i, sc := range s.streams {
		budgets[i] = sc.BudgetMs
	}
	ctl := newController(mm, s.cfg.ModelCores, s.cfg.RebalanceEvery, s.cfg.SkipOver, budgets)
	pool := parallel.NewPool(s.cfg.HostWorkers)
	defer pool.Close()

	out := RunResult{Streams: make([]Result, len(s.streams))}
	start := time.Now()
	done := make(chan int, len(s.streams))
	for i := range s.streams {
		go func(si int) {
			var tel *telemetry
			if s.tels != nil {
				tel = s.tels[si]
			}
			out.Streams[si] = serveOne(si, s.streams[si], n, ctl, pool, tel)
			done <- si
		}(i)
	}
	for range s.streams {
		<-done
	}
	wall := time.Since(start)

	out.WallMs = float64(wall.Nanoseconds()) / 1e6
	out.Rebalances = mm.Rebalances()
	out.FinalBudgets = mm.Rebalance()
	processed := 0
	var errs []error
	for i := range out.Streams {
		r := &out.Streams[i]
		processed += r.Stats.Processed
		r.Stats.ThroughputFPS = throughputFPS(r.Stats.Processed, wall)
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("stream %q: %w", r.Stats.Name, r.Err))
		}
	}
	out.AggregateFPS = throughputFPS(processed, wall)
	return out, errors.Join(errs...)
}

// throughputFPS divides processed frames by the wall-clock duration,
// returning an explicit 0 for zero-duration (or clock-skewed negative) runs
// so downstream consumers — Stats, /healthz JSON — never see NaN or Inf.
func throughputFPS(processed int, wall time.Duration) float64 {
	if processed <= 0 || wall <= 0 {
		return 0
	}
	return float64(processed) / wall.Seconds()
}

// serveOne is the per-stream goroutine body: admission, planning,
// processing on the shared pool, observation, demand reporting. tel may be
// nil (telemetry disabled); its event methods are nil-safe.
func serveOne(si int, sc Config, n int, ctl *controller, pool *parallel.Pool, tel *telemetry) Result {
	res := Result{
		Stats:   Stats{Name: sc.Name, BudgetMs: sc.BudgetMs},
		Reports: make([]pipeline.Report, 0, n),
	}
	tel.serving()
	defer func() { tel.finished(res.Err) }()
	tr := trace.New()
	for _, col := range []string{"latency_ms", "predicted_ms", "cores", "missed", "skipped", "serial"} {
		if err := tr.AddEmpty(col); err != nil {
			res.Err = err
			return res
		}
	}
	res.Trace = tr

	mgr, eng := sc.Manager, sc.Engine
	if sc.BudgetMs > 0 {
		mgr.BudgetMs = sc.BudgetMs
	}
	var latencySum float64
	for i := 0; i < n; i++ {
		res.Stats.Offered++
		tel.offered(i)
		d := ctl.directive(si, i)
		if d.Mode == ModeSkip {
			res.Stats.Skipped++
			tel.skipped()
			if err := tr.Append(0, 0, 0, 0, 1, 0); err != nil {
				res.Err = err
				return res
			}
			continue
		}
		if err := mgr.SetCoreBudget(clamp(d.Cores, 1, mgr.Arch().NumCPUs)); err != nil {
			res.Err = err
			return res
		}
		var dec sched.Decision
		if res.Stats.Processed == 0 {
			// Initialization frame: serial, like the paper's manager.
			dec = sched.Decision{Mapping: partition.Serial()}
		} else {
			dec = mgr.Plan()
		}
		serialFrame := 0.0
		if d.Mode == ModeSerial {
			dec.Mapping = partition.Serial()
			serialFrame = 1
			res.Stats.SerialFallbacks++
			tel.serialFallback()
		}
		f := sc.Source(i)
		if f == nil {
			res.Err = fmt.Errorf("frame %d: source returned nil frame", i)
			return res
		}
		var rep pipeline.Report
		var perr error
		if err := pool.Do(func() { rep, perr = eng.Process(f, dec.Mapping) }); err != nil {
			res.Err = err
			return res
		}
		if perr != nil {
			res.Err = fmt.Errorf("frame %d: %w", i, perr)
			return res
		}
		if res.Stats.Processed == 0 && mgr.BudgetMs <= 0 {
			mgr.InitBudget(rep.LatencyMs)
			res.Stats.BudgetMs = mgr.BudgetMs
			ctl.setBudgetMs(si, mgr.BudgetMs)
		}
		mgr.Observe(core.FromReports([]pipeline.Report{rep}, sc.FramePixels)[0])

		res.Stats.Processed++
		res.Reports = append(res.Reports, rep)
		latencySum += rep.LatencyMs
		if rep.LatencyMs > res.Stats.WorstLatencyMs {
			res.Stats.WorstLatencyMs = rep.LatencyMs
		}
		missed := 0.0
		if mgr.BudgetMs > 0 && rep.LatencyMs > mgr.BudgetMs {
			res.Stats.DeadlineMisses++
			missed = 1
		}
		if len(rep.AccountingErrs) > 0 {
			res.Stats.AccountingErrs++
		}
		tel.processed(rep.LatencyMs, missed == 1, len(rep.AccountingErrs) > 0)
		if err := tr.Append(rep.LatencyMs, dec.PredictedMs, float64(d.Cores), missed, 0, serialFrame); err != nil {
			res.Err = err
			return res
		}
		// Feed the arbiter the Triple-C demand for the scenario the stream
		// is currently in (see Manager.PredictedDemandMs): unlike Plan's
		// pessimistic SerialMs — which covers the scenario table's worst
		// successor and so never drops for a stream stuck in a cheap
		// degenerate mode — this signal adapts online per task and lets the
		// controller shift cores between unequal streams.
		demand := mgr.PredictedDemandMs()
		if demand <= 0 {
			demand = rep.LatencyMs
		}
		tel.demand(demand)
		ctl.report(si, demand)
	}
	if res.Stats.Processed > 0 {
		res.Stats.MeanLatencyMs = latencySum / float64(res.Stats.Processed)
	}
	res.Stats.BudgetMs = mgr.BudgetMs
	return res
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MergedTrace exports every stream's per-frame series side by side, one
// column group per stream, prefixed with the stream name (or stream<i> when
// unnamed).
func (r RunResult) MergedTrace() (*trace.Trace, error) {
	prefixes := make([]string, len(r.Streams))
	traces := make([]*trace.Trace, len(r.Streams))
	for i, s := range r.Streams {
		name := s.Stats.Name
		if name == "" {
			name = fmt.Sprintf("stream%d", i)
		}
		prefixes[i] = name
		traces[i] = s.Trace
	}
	return trace.Merge(prefixes, traces)
}

package stream

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"testing"

	"triplec/internal/core"
	"triplec/internal/experiments"
	"triplec/internal/metrics"
	"triplec/internal/shadow"
)

// mkShadowBoard trains the full backend roster on the study's corpus and
// wraps it in a board for one stream.
func mkShadowBoard(t *testing.T, study experiments.Study, p *core.Predictor, name string) *shadow.Board {
	t.Helper()
	train, err := study.TrainingSets()
	if err != nil {
		t.Fatal(err)
	}
	backends, err := shadow.TrainBackends(p, train, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	board, err := shadow.NewBoard(name, backends)
	if err != nil {
		t.Fatal(err)
	}
	return board
}

// TestServeWithShadowBoard runs the serving loop with a shadow board
// attached and checks the bake-off scored the stream's frames without
// touching the serving results, and that /healthz reports the deployed
// predictor identity plus the rolling scenario hit rate.
func TestServeWithShadowBoard(t *testing.T) {
	s := testStudy()
	p, err := s.TrainPredictor()
	if err != nil {
		t.Fatal(err)
	}
	cfg := mkStream(t, s, "shadowed", 5, 0)
	board := mkShadowBoard(t, s, p, "shadowed")
	cfg.Shadow = board

	reg := metrics.NewRegistry()
	if err := board.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Metrics: reg}, []Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 30
	res, err := srv.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams[0].Stats.Processed == 0 {
		t.Fatal("no frames served")
	}

	snap := board.Snapshot()
	if snap.FramesObserved != uint64(res.Streams[0].Stats.Processed) {
		t.Errorf("board observed %d frames, stream processed %d",
			snap.FramesObserved, res.Streams[0].Stats.Processed)
	}
	if snap.FramesScored == 0 {
		t.Error("board scored no frames")
	}
	if len(snap.Backends) < 4 {
		t.Errorf("board races %d backends, want at least 4", len(snap.Backends))
	}
	if snap.Deployed != core.BackendBaseline {
		t.Errorf("deployed = %q, want %q", snap.Deployed, core.BackendBaseline)
	}
	for _, b := range snap.Backends {
		if b.ScenarioHits+b.ScenarioMisses != snap.FramesScored {
			t.Errorf("backend %s scored %d scenario outcomes, want %d",
				b.Name, b.ScenarioHits+b.ScenarioMisses, snap.FramesScored)
		}
	}

	// /healthz carries the deployed predictor identity and the rolling
	// scenario hit-rate window.
	rec := httptest.NewRecorder()
	srv.HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var rep struct {
		Streams []struct {
			Predictor              string  `json:"predictor"`
			RollingScenarioHitRate float64 `json:"rolling_scenario_hit_rate"`
			RollingScenarioSamples int     `json:"rolling_scenario_samples"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	h := rep.Streams[0]
	if h.Predictor != core.BackendBaseline {
		t.Errorf("healthz predictor = %q, want %q", h.Predictor, core.BackendBaseline)
	}
	if h.RollingScenarioSamples == 0 {
		t.Error("healthz rolling window is empty after a served run")
	}
	if h.RollingScenarioHitRate < 0 || h.RollingScenarioHitRate > 1 {
		t.Errorf("rolling hit rate %v outside [0,1]", h.RollingScenarioHitRate)
	}
}

// TestServeShadowAllocBudget re-runs the steady-state allocation budget
// with the shadow bake-off attached: racing four extra backends must not
// add per-frame heap traffic beyond the serving loop's existing budget.
func TestServeShadowAllocBudget(t *testing.T) {
	s := testStudy()
	p, err := s.TrainPredictor()
	if err != nil {
		t.Fatal(err)
	}
	cfg := mkStream(t, s, "pin-shadow", 17, 0)
	cfg.Shadow = mkShadowBoard(t, s, p, "pin-shadow")
	srv, err := NewServer(ServerConfig{}, []Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(10); err != nil { // warm pools and forecasts
		t.Fatal(err)
	}

	const frames = 40
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := srv.Run(frames); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	perFrame := float64(after.TotalAlloc-before.TotalAlloc) / frames
	framePixelBytes := float64(s.FramePixels() * 2)
	budget := 6 * framePixelBytes // identical to the shadow-less pin
	t.Logf("shadowed steady state: %.0f bytes/frame (budget %.0f)", perFrame, budget)
	if perFrame > budget {
		t.Errorf("shadowed serving loop allocates %.0f bytes/frame, budget %.0f", perFrame, budget)
	}
}

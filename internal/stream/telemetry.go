package stream

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"triplec/internal/bandwidth"
	"triplec/internal/flowgraph"
	"triplec/internal/memmodel"
	"triplec/internal/metrics"
	"triplec/internal/pipeline"
	"triplec/internal/sched"
	"triplec/internal/tasks"
)

// telemetry is one stream's live-instrumentation glue: it owns the stream's
// prediction-error accountant, implements core.MetricsSink for the
// predictor's per-frame error samples, observes every pipeline report, and
// tracks the stream goroutine's liveness for /healthz. All event methods
// are nil-safe so the serving loop carries no telemetry-enabled branches,
// and the record path is pure atomics — no allocation, map lookups or fmt
// per frame (the per-scenario resource forecasts are precomputed tables).
type telemetry struct {
	acct *metrics.Accountant

	// Extra plan-level instruments not covered by the accountant.
	planPredictedMs *metrics.Gauge
	planSerialMs    *metrics.Gauge
	plans           *metrics.Counter

	// Robustness instruments (restart supervisor, watchdog, fault boundary,
	// degradation ladder).
	restarts        *metrics.Counter
	quarantines     *metrics.Counter
	failedFrames    *metrics.Counter
	abandonedFrames *metrics.Counter
	taskPanics      *metrics.Counter
	degradations    *metrics.Counter
	qualityLevel    *metrics.Gauge

	// Per-scenario resource forecasts at the stream's modeled geometry,
	// indexed by flowgraph.Scenario.Index(): the predicted-vs-actual
	// scenario pair maps to a bandwidth and cache-occupation model error
	// with two table reads instead of re-running the analysis per frame.
	bwMBs   [8]float64
	cacheKB [8]float64

	state  atomic.Int32 // streamIdle | streamServing | streamDone | streamFailed
	errMsg atomic.Value // string; last serve error

	// Rolling scenario-forecast window for /healthz: the low bit of each
	// sample shifts into scenarioWin (1 = hit), scenarioWinN saturates at
	// 64. Written only by the serving goroutine inside ScenarioSample;
	// readers snapshot both atomics (a torn pair can skew the rate by at
	// most one frame, fine for a health probe).
	scenarioWin  atomic.Uint64
	scenarioWinN atomic.Uint64

	// Rolling deadline-miss window over processed frames, same shape as the
	// scenario window above (1 = miss). Written only inside processed().
	missWin  atomic.Uint64
	missWinN atomic.Uint64
}

// scenarioWindow is the rolling hit-rate window size.
const scenarioWindow = 64

// missWindow is the rolling deadline-miss window size: the last 64 processed
// frames, sized to one uint64 so the per-frame update is two atomic stores.
const missWindow = 64

const (
	streamIdle = int32(iota)
	streamServing
	streamDone
	streamFailed
	streamQuarantined
)

// streamLabel names stream i for instruments and health reports.
func streamLabel(sc Config, i int) string {
	if sc.Name != "" {
		return sc.Name
	}
	return fmt.Sprintf("stream%d", i)
}

// newTelemetry registers stream i's instruments on the registry and wires
// the engine, predictor and manager hot paths to them.
func newTelemetry(reg *metrics.Registry, sc Config, i int) (*telemetry, error) {
	name := streamLabel(sc, i)
	taskNames := make([]string, tasks.NumNames)
	for ti, tn := range tasks.AllNames() {
		taskNames[ti] = string(tn)
	}
	acct, err := metrics.NewAccountant(reg, metrics.AccountantConfig{Stream: name, Tasks: taskNames})
	if err != nil {
		return nil, fmt.Errorf("stream: %s: %w", name, err)
	}
	t := &telemetry{acct: acct}
	sl := metrics.L("stream", name)
	if t.planPredictedMs, err = reg.NewGauge("triplec_plan_predicted_ms",
		"Predicted latency of the mapping chosen by the last Plan.", sl); err != nil {
		return nil, err
	}
	if t.planSerialMs, err = reg.NewGauge("triplec_plan_serial_ms",
		"Predicted latency of the serial mapping at the last Plan.", sl); err != nil {
		return nil, err
	}
	if t.plans, err = reg.NewCounter("triplec_plans_total",
		"Runtime-manager planning decisions taken.", sl); err != nil {
		return nil, err
	}
	if t.restarts, err = reg.NewCounter("triplec_stream_restarts_total",
		"Supervisor restarts of the stream's serving loop.", sl); err != nil {
		return nil, err
	}
	if t.quarantines, err = reg.NewCounter("triplec_stream_quarantines_total",
		"Streams retired after exhausting their restart policy.", sl); err != nil {
		return nil, err
	}
	if t.failedFrames, err = reg.NewCounter("triplec_frames_failed_total",
		"Frames lost to a recovered task panic or serving-loop crash.", sl); err != nil {
		return nil, err
	}
	if t.abandonedFrames, err = reg.NewCounter("triplec_frames_abandoned_total",
		"Frames given up past the wall-clock watchdog deadline.", sl); err != nil {
		return nil, err
	}
	if t.taskPanics, err = reg.NewCounter("triplec_task_panics_total",
		"Task panics recovered by the pipeline fault boundary.", sl); err != nil {
		return nil, err
	}
	if t.degradations, err = reg.NewCounter("triplec_quality_degradations_total",
		"Degradation-ladder transitions, in either direction.", sl); err != nil {
		return nil, err
	}
	if t.qualityLevel, err = reg.NewGauge("triplec_quality_level",
		"Current degradation rung (0 = full quality, 4 = serial fallback).", sl); err != nil {
		return nil, err
	}

	// Precompute the per-scenario bandwidth and cache-occupation forecasts
	// at the engine's modeled geometry.
	cfg := sc.Engine.Config()
	cacheKB := cfg.Arch.L2.SizeBytes / 1024
	for si := 0; si < 8; si++ {
		s := flowgraph.FromIndex(si)
		an, err := bandwidth.Analyze(s, cfg.ModelFrameKB, cacheKB, cfg.FrameRate)
		if err != nil {
			return nil, fmt.Errorf("stream: %s: scenario %s bandwidth table: %w", name, s, err)
		}
		t.bwMBs[si] = an.TotalMBs()
		occ := 0
		for _, task := range s.ActiveTasks() {
			req, err := memmodel.Lookup(task, s.RDGOn, cfg.ModelFrameKB)
			if err != nil {
				return nil, fmt.Errorf("stream: %s: scenario %s cache table: %w", name, s, err)
			}
			occ += req.TotalKB()
		}
		t.cacheKB[si] = float64(occ)
	}

	// Thread the instruments through the hot paths.
	sc.Engine.SetObserver(t.observeReport)
	sc.Manager.Predictor().SetMetricsSink(t)
	sc.Manager.Metrics = &sched.ManagerMetrics{
		BudgetMs:     acct.BudgetMs,
		PredictedMs:  t.planPredictedMs,
		SerialMs:     t.planSerialMs,
		CoreBudget:   acct.CoreBudget,
		Repartitions: acct.Repartitions,
		Plans:        t.plans,
	}
	if sc.BudgetMs > 0 {
		acct.BudgetMs.Set(sc.BudgetMs)
	}
	return t, nil
}

// observeReport is the pipeline.Engine per-frame hook: frame latency plus
// every executed task's actual time.
func (t *telemetry) observeReport(rep pipeline.Report) {
	t.acct.FrameLatencyMs.Observe(rep.LatencyMs)
	for _, e := range rep.Execs {
		t.acct.ObserveTask(tasks.IndexOf(e.Task), e.Ms)
	}
}

// TaskSample implements core.MetricsSink: one task's predicted-vs-actual
// computation time.
func (t *telemetry) TaskSample(task tasks.Name, predictedMs, actualMs float64) {
	t.acct.ObservePrediction(tasks.IndexOf(task), predictedMs, actualMs)
}

// ScenarioSample implements core.MetricsSink: the Markov state table's
// next-scenario forecast against the scenario that executed, plus the
// bandwidth and cache-occupation model error the misprediction implies
// (zero on a hit — the error histograms stay centered when the table is
// accurate).
func (t *telemetry) ScenarioSample(predicted, actual flowgraph.Scenario) {
	t.acct.ObserveScenario(predicted == actual)
	bit := uint64(0)
	if predicted == actual {
		bit = 1
	}
	t.scenarioWin.Store(t.scenarioWin.Load()<<1 | bit)
	if n := t.scenarioWinN.Load(); n < scenarioWindow {
		t.scenarioWinN.Store(n + 1)
	}
	pi, ai := predicted.Index(), actual.Index()
	t.acct.ObserveResourceErr(
		metrics.RelErr(t.bwMBs[pi], t.bwMBs[ai]),
		metrics.RelErr(t.cacheKB[pi], t.cacheKB[ai]),
	)
}

// rollingScenarioHitRate reports the hit fraction over the last
// min(samples, 64) scenario forecasts, and how many samples back it.
func (t *telemetry) rollingScenarioHitRate() (rate float64, samples int) {
	n := t.scenarioWinN.Load()
	if n == 0 {
		return 0, 0
	}
	win := t.scenarioWin.Load()
	if n < scenarioWindow {
		win &= (1 << n) - 1
	}
	return float64(bits.OnesCount64(win)) / float64(n), int(n)
}

// rollingMissRate reports the deadline-miss fraction over the last
// min(samples, 64) processed frames, and how many samples back it — the
// recency counterpart to the lifetime Accountant.MissRate, so /healthz
// shows a shift (a promotion gone wrong, a scene change) while the
// cumulative rate still averages it away.
func (t *telemetry) rollingMissRate() (rate float64, samples int) {
	n := t.missWinN.Load()
	if n == 0 {
		return 0, 0
	}
	win := t.missWin.Load()
	if n < missWindow {
		win &= (1 << n) - 1
	}
	return float64(bits.OnesCount64(win)) / float64(n), int(n)
}

// Serving-loop events, nil-safe so serveOne needs no telemetry branches.

func (t *telemetry) serving() {
	if t == nil {
		return
	}
	t.state.Store(streamServing)
}

func (t *telemetry) finished(err error) {
	if t == nil {
		return
	}
	if err != nil {
		t.errMsg.Store(err.Error())
		t.state.Store(streamFailed)
		return
	}
	t.state.Store(streamDone)
}

func (t *telemetry) offered(frame int) {
	if t == nil {
		return
	}
	t.acct.Offered.Inc()
	t.acct.LastFrame.Set(float64(frame))
}

func (t *telemetry) skipped() {
	if t == nil {
		return
	}
	t.acct.Skipped.Inc()
}

func (t *telemetry) serialFallback() {
	if t == nil {
		return
	}
	t.acct.SerialFallbacks.Inc()
}

func (t *telemetry) processed(latencyMs float64, missed, acctErr bool) {
	if t == nil {
		return
	}
	t.acct.Processed.Inc()
	t.acct.LastLatencyMs.Set(latencyMs)
	bit := uint64(0)
	if missed {
		bit = 1
		t.acct.DeadlineMisses.Inc()
	}
	t.missWin.Store(t.missWin.Load()<<1 | bit)
	if n := t.missWinN.Load(); n < missWindow {
		t.missWinN.Store(n + 1)
	}
	if acctErr {
		t.acct.AccountingErrs.Inc()
	}
}

func (t *telemetry) demand(predictedMs float64) {
	if t == nil {
		return
	}
	t.acct.PredictedDemandMs.Set(predictedMs)
}

func (t *telemetry) failedFrame() {
	if t == nil {
		return
	}
	t.failedFrames.Inc()
}

func (t *telemetry) abandoned() {
	if t == nil {
		return
	}
	t.abandonedFrames.Inc()
}

func (t *telemetry) taskPanic() {
	if t == nil {
		return
	}
	t.taskPanics.Inc()
}

func (t *telemetry) restarted() {
	if t == nil {
		return
	}
	t.restarts.Inc()
}

func (t *telemetry) quarantined(err error) {
	if t == nil {
		return
	}
	if err != nil {
		t.errMsg.Store(err.Error())
	}
	t.quarantines.Inc()
	t.state.Store(streamQuarantined)
}

func (t *telemetry) qualityChanged(q pipeline.Quality) {
	if t == nil {
		return
	}
	t.degradations.Inc()
	t.qualityLevel.Set(float64(q))
}

// rewire threads the telemetry hot paths through a rebuilt engine+manager
// pair after a stall, carrying the instrument set over from the old manager.
func (t *telemetry) rewire(eng *pipeline.Engine, mgr *sched.Manager, old *sched.Manager) {
	if t == nil {
		return
	}
	eng.SetObserver(t.observeReport)
	mgr.Predictor().SetMetricsSink(t)
	mgr.Metrics = old.Metrics
}

package stream

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"triplec/internal/metrics"
)

// TestTelemetryPopulatesDuringRun is the acceptance check for the live
// telemetry layer: a real two-stream serving run must populate the
// per-stream counters, the frame-latency histogram and the per-task
// prediction-error histograms, and the registry must expose them all.
func TestTelemetryPopulatesDuringRun(t *testing.T) {
	s := testStudy()
	reg := metrics.NewRegistry()
	streams := []Config{
		mkStream(t, s, "alpha", 3, 0),
		mkStream(t, s, "beta", 4, 0),
	}
	srv, err := NewServer(ServerConfig{Metrics: reg}, streams)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 30
	out, err := srv.Run(frames)
	if err != nil {
		t.Fatal(err)
	}

	for i, tel := range srv.tels {
		a := tel.acct
		if got := a.Offered.Value(); got != frames {
			t.Errorf("stream %d: offered %d, want %d", i, got, frames)
		}
		if a.Processed.Value() == 0 {
			t.Errorf("stream %d: no frames processed", i)
		}
		if int(a.Processed.Value()) != out.Streams[i].Stats.Processed {
			t.Errorf("stream %d: telemetry processed %d != stats %d",
				i, a.Processed.Value(), out.Streams[i].Stats.Processed)
		}
		lat := a.FrameLatencyMs.Snapshot()
		if int(lat.Count) != out.Streams[i].Stats.Processed {
			t.Errorf("stream %d: latency histogram count %d != processed %d",
				i, lat.Count, out.Streams[i].Stats.Processed)
		}
		if lat.Mean() <= 0 {
			t.Errorf("stream %d: latency mean %v not positive", i, lat.Mean())
		}
		// The predictor scores every observed frame after the first, so the
		// per-task prediction-error histograms must hold real samples.
		relSamples := uint64(0)
		for _, h := range a.TaskRelErr {
			relSamples += h.Snapshot().Count
		}
		if relSamples == 0 {
			t.Errorf("stream %d: per-task prediction-error histograms empty", i)
		}
		if a.PredictionAbsErrMs.Snapshot().Count == 0 {
			t.Errorf("stream %d: absolute prediction-error histogram empty", i)
		}
		if a.ScenarioHits.Value()+a.ScenarioMisses.Value() == 0 {
			t.Errorf("stream %d: no scenario predictions scored", i)
		}
		if a.BandwidthRelErr.Snapshot().Count == 0 {
			t.Errorf("stream %d: bandwidth model error histogram empty", i)
		}
		if tel.state.Load() != streamDone {
			t.Errorf("stream %d: state %d after clean run, want done", i, tel.state.Load())
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`triplec_frames_processed_total{stream="alpha"}`,
		`triplec_frames_processed_total{stream="beta"}`,
		`triplec_frame_latency_ms_bucket{stream="alpha",le="+Inf"}`,
		`triplec_plans_total{stream="alpha"}`,
		"triplec_rebalances_total",
		`triplec_task_ms_count{stream="alpha",task="ZOOM"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTelemetryDuplicateStreamNames: stream names label instruments and
// health reports, so duplicates are rejected up front — with or without
// telemetry — rather than failing at scrape time or producing ambiguous
// health entries.
func TestTelemetryDuplicateStreamNames(t *testing.T) {
	s := testStudy()
	a := mkStream(t, s, "same", 3, 0)
	b := mkStream(t, s, "same", 4, 0)
	if _, err := NewServer(ServerConfig{Metrics: metrics.NewRegistry()}, []Config{a, b}); err == nil {
		t.Fatal("duplicate stream names accepted with telemetry enabled")
	}
	if _, err := NewServer(ServerConfig{}, []Config{a, b}); err == nil {
		t.Fatal("duplicate stream names accepted without telemetry")
	}
	// Unnamed streams never collide (they default to stream<i> labels).
	a.Name, b.Name = "", ""
	if _, err := NewServer(ServerConfig{}, []Config{a, b}); err != nil {
		t.Fatalf("unnamed streams rejected: %v", err)
	}
}

// TestHealthHandler drives the /healthz endpoint after a run and checks the
// JSON is well-formed, finite and consistent with the run's stats.
func TestHealthHandler(t *testing.T) {
	s := testStudy()
	reg := metrics.NewRegistry()
	srv, err := NewServer(ServerConfig{Metrics: reg}, []Config{mkStream(t, s, "h", 5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Run(12)
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz status %d, body %s", rec.Code, rec.Body.String())
	}
	var rep struct {
		Status  string   `json:"status"`
		Streams []Health `json:"streams"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("healthz JSON invalid: %v\n%s", err, rec.Body.String())
	}
	if rep.Status != "ok" || len(rep.Streams) != 1 {
		t.Fatalf("healthz report %+v", rep)
	}
	h := rep.Streams[0]
	if h.Stream != "h" || h.State != "done" {
		t.Errorf("health identity %+v", h)
	}
	if int(h.Processed) != out.Streams[0].Stats.Processed {
		t.Errorf("health processed %d != stats %d", h.Processed, out.Streams[0].Stats.Processed)
	}
	for name, v := range map[string]float64{
		"miss_rate": h.MissRate, "scenario_hit_rate": h.ScenarioHitRate,
		"budget_ms": h.BudgetMs, "mean_latency_ms": h.MeanLatencyMs,
		"p95_latency_ms": h.P95LatencyMs, "core_budget": h.CoreBudget,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("health field %s not finite: %v", name, v)
		}
	}
	if h.MeanLatencyMs <= 0 {
		t.Errorf("mean latency %v not positive after a run", h.MeanLatencyMs)
	}

	// Without telemetry the handler answers 404, not a panic or empty 200.
	bare, err := NewServer(ServerConfig{}, []Config{mkStream(t, s, "h", 5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	bare.HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 404 {
		t.Errorf("healthz without telemetry: status %d, want 404", rec.Code)
	}
}

// TestHealthzBeforeRun: the endpoint must be scrapeable before the first
// frame (all-idle, zero-valued, finite) — the serve command starts the HTTP
// listener before Run.
func TestHealthzBeforeRun(t *testing.T) {
	s := testStudy()
	srv, err := NewServer(ServerConfig{Metrics: metrics.NewRegistry()},
		[]Config{mkStream(t, s, "idle", 6, 0)})
	if err != nil {
		t.Fatal(err)
	}
	hs := srv.Healths()
	if len(hs) != 1 {
		t.Fatalf("healths: %+v", hs)
	}
	if hs[0].State != "idle" || hs[0].Offered != 0 || hs[0].MeanLatencyMs != 0 {
		t.Errorf("pre-run health %+v", hs[0])
	}
}

// TestThroughputFPSZeroDuration pins the Stats.ThroughputFPS contract: a
// zero-duration (or zero-work) run reports an explicit 0, never NaN or Inf.
func TestThroughputFPSZeroDuration(t *testing.T) {
	cases := []struct {
		processed int
		wall      time.Duration
		want      float64
	}{
		{0, 0, 0},
		{5, 0, 0},
		{0, time.Second, 0},
		{5, -time.Second, 0},
		{10, 2 * time.Second, 5},
	}
	for _, c := range cases {
		got := throughputFPS(c.processed, c.wall)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("throughputFPS(%d, %v) = %v, not finite", c.processed, c.wall, got)
		}
		if got != c.want {
			t.Errorf("throughputFPS(%d, %v) = %v, want %v", c.processed, c.wall, got, c.want)
		}
	}
}

// TestNewServerRejectsNegativeConfig covers the tightened ServerConfig
// validation: negative RebalanceEvery and negative/NaN SkipOver used to be
// silently replaced by the defaults; now they are configuration errors.
func TestNewServerRejectsNegativeConfig(t *testing.T) {
	s := testStudy()
	cfg := mkStream(t, s, "v", 7, 0)
	if _, err := NewServer(ServerConfig{RebalanceEvery: -1}, []Config{cfg}); err == nil ||
		!strings.Contains(err.Error(), "RebalanceEvery") {
		t.Errorf("negative RebalanceEvery: err %v", err)
	}
	if _, err := NewServer(ServerConfig{SkipOver: -0.5}, []Config{cfg}); err == nil ||
		!strings.Contains(err.Error(), "SkipOver") {
		t.Errorf("negative SkipOver: err %v", err)
	}
	if _, err := NewServer(ServerConfig{SkipOver: math.NaN()}, []Config{cfg}); err == nil ||
		!strings.Contains(err.Error(), "SkipOver") {
		t.Errorf("NaN SkipOver: err %v", err)
	}
	// Zero still means "use the default".
	if _, err := NewServer(ServerConfig{}, []Config{cfg}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// TestTelemetryAllocBudget re-runs the steady-state allocation pin with the
// full telemetry layer enabled: instrument recording must not add per-frame
// heap traffic (same six-frame-equivalent budget as the bare serving loop).
func TestTelemetryAllocBudget(t *testing.T) {
	s := testStudy()
	cfg := mkStream(t, s, "pin-telemetry", 17, 0)
	srv, err := NewServer(ServerConfig{Metrics: metrics.NewRegistry()}, []Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(10); err != nil { // warm pools and buffers
		t.Fatal(err)
	}

	const frames = 40
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := srv.Run(frames); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	perFrame := float64(after.TotalAlloc-before.TotalAlloc) / frames
	budget := 6 * float64(s.FramePixels()*2)
	t.Logf("telemetry steady state: %.0f bytes/frame (budget %.0f)", perFrame, budget)
	if perFrame > budget {
		t.Errorf("telemetry-enabled serving allocates %.0f bytes/frame, budget %.0f", perFrame, budget)
	}
}

package stream

import (
	"math"
	"strings"
	"testing"
	"time"

	"triplec/internal/frame"
	"triplec/internal/pipeline"
	"triplec/internal/sched"
	"triplec/internal/tasks"
)

// withRebuild equips a stream config with a Rebuild hook that constructs a
// fresh engine+manager pair (re-installing hookFn on the replacement when
// given — a real deployment re-wires its fault instrumentation the same
// way).
func withRebuild(t *testing.T, sc Config, hookFn func(tasks.Name, int)) Config {
	t.Helper()
	s := testStudy()
	p, err := s.TrainPredictor()
	if err != nil {
		t.Fatal(err)
	}
	sc.Rebuild = func() (*pipeline.Engine, *sched.Manager, error) {
		eng, err := s.Engine()
		if err != nil {
			return nil, nil, err
		}
		mgr, err := sched.NewManager(p, s.Arch)
		if err != nil {
			return nil, nil, err
		}
		mgr.Sticky = true
		if hookFn != nil {
			eng.SetTaskHook(hookFn)
		}
		return eng, mgr, nil
	}
	return sc
}

// assertFrameAccounting checks the offered-frame partition invariant.
func assertFrameAccounting(t *testing.T, st Stats, n int) {
	t.Helper()
	if st.Offered != n {
		t.Fatalf("%s: offered %d frames, want %d", st.Name, st.Offered, n)
	}
	if got := st.Processed + st.Skipped + st.Failed + st.Abandoned; got != n {
		t.Fatalf("%s: processed %d + skipped %d + failed %d + abandoned %d = %d, want %d",
			st.Name, st.Processed, st.Skipped, st.Failed, st.Abandoned, got, n)
	}
}

// TestTaskPanicFailsFrameNotStream: a panicking task costs one frame; the
// stream (and the process) survive without supervision.
func TestTaskPanicFailsFrameNotStream(t *testing.T) {
	s := testStudy()
	sc := mkStream(t, s, "panicky", 41, 0)
	sc.Engine.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if frameIdx%7 == 3 {
			panic("injected")
		}
	})
	srv, err := NewServer(ServerConfig{}, []Config{sc})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	out, err := srv.Run(n)
	if err != nil {
		t.Fatalf("recovered task panics must not fail the run: %v", err)
	}
	st := out.Streams[0].Stats
	assertFrameAccounting(t, st, n)
	if st.Failed == 0 {
		t.Fatal("no frames failed despite injected panics")
	}
	if st.Processed == 0 {
		t.Fatal("no frames processed")
	}
	if out.Streams[0].Trace.Len() != n {
		t.Fatalf("trace has %d rows, want %d", out.Streams[0].Trace.Len(), n)
	}
	failedCol, err := out.Streams[0].Trace.Get("failed")
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for _, v := range failedCol {
		if v == 1 {
			marked++
		}
	}
	if marked != st.Failed {
		t.Fatalf("trace marks %d failed frames, stats say %d", marked, st.Failed)
	}
}

// TestWatchdogAbandonsSlowFrame: a frame exceeding the wall-clock deadline
// is abandoned (after waiting for the engine) and serving continues.
func TestWatchdogAbandonsSlowFrame(t *testing.T) {
	s := testStudy()
	sc := mkStream(t, s, "slow", 43, 0)
	sc.Engine.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if frameIdx == 4 && task == tasks.NameDetect {
			time.Sleep(time.Duration(120*raceScale) * time.Millisecond)
		}
	})
	srv, err := NewServer(ServerConfig{WatchdogMs: 40 * raceScale, StallMs: 2000 * raceScale}, []Config{sc})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	out, err := srv.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Streams[0].Stats
	assertFrameAccounting(t, st, n)
	if st.Abandoned != 1 {
		t.Fatalf("abandoned %d frames, want exactly the slow one", st.Abandoned)
	}
	if st.Processed != n-1 {
		t.Fatalf("processed %d, want %d", st.Processed, n-1)
	}
}

// TestSupervisorRestartsAfterCrash: a fatal serve error (nil source frame)
// costs one frame under supervision; the loop resumes at the next frame.
func TestSupervisorRestartsAfterCrash(t *testing.T) {
	s := testStudy()
	sc := mkStream(t, s, "crashy", 47, 0)
	src := sc.Source
	sc.Source = func(i int) *frame.Frame {
		if i == 5 {
			return nil
		}
		return src(i)
	}
	srv, err := NewServer(ServerConfig{Supervise: true, BackoffMs: 0.1}, []Config{sc})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	out, err := srv.Run(n)
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	st := out.Streams[0].Stats
	assertFrameAccounting(t, st, n)
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", st.Restarts)
	}
	if st.Failed != 1 {
		t.Fatalf("failed = %d, want 1 (the nil frame)", st.Failed)
	}
	if st.Quarantined {
		t.Fatal("quarantined after a single recoverable crash")
	}
	if st.MeanRecoveryMs <= 0 {
		t.Fatal("no recovery time recorded")
	}
	if out.Streams[0].Trace.Len() != n {
		t.Fatalf("trace has %d rows, want %d", out.Streams[0].Trace.Len(), n)
	}
}

// TestSupervisorQuarantinesAfterRepeatedCrashes: consecutive no-progress
// crashes past MaxRestarts quarantine the stream; a healthy peer keeps
// serving and inherits the cores.
func TestSupervisorQuarantinesAfterRepeatedCrashes(t *testing.T) {
	s := testStudy()
	bad := mkStream(t, s, "doomed", 53, 0)
	src := bad.Source
	bad.Source = func(i int) *frame.Frame {
		if i >= 4 {
			return nil // permanently broken source
		}
		return src(i)
	}
	good := mkStream(t, s, "healthy", 59, 0)
	srv, err := NewServer(ServerConfig{Supervise: true, MaxRestarts: 2, BackoffMs: 0.1}, []Config{bad, good})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	out, err := srv.Run(n)
	if err == nil {
		t.Fatal("run reported no error despite a quarantined stream")
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("error %q does not mention quarantine", err)
	}
	st := out.Streams[0].Stats
	if !st.Quarantined {
		t.Fatal("doomed stream not quarantined")
	}
	if st.Restarts != 2 {
		t.Fatalf("restarts = %d before quarantine, want MaxRestarts = 2", st.Restarts)
	}
	// The healthy stream is untouched and ends holding the whole machine.
	hs := out.Streams[1].Stats
	if hs.Quarantined || out.Streams[1].Err != nil {
		t.Fatalf("healthy stream affected: %+v, err %v", hs, out.Streams[1].Err)
	}
	assertFrameAccounting(t, hs, n)
	if out.FinalBudgets[0] != 0 {
		t.Fatalf("quarantined stream still holds %d cores", out.FinalBudgets[0])
	}
	if out.FinalBudgets[1] != srv.cfg.ModelCores {
		t.Fatalf("healthy stream holds %d cores, want the whole machine (%d)", out.FinalBudgets[1], srv.cfg.ModelCores)
	}
}

// TestSupervisorRebuildsAfterStall: a stuck task poisons the engine; the
// supervisor rebuilds via Config.Rebuild and the stream finishes.
func TestSupervisorRebuildsAfterStall(t *testing.T) {
	s := testStudy()
	sc := mkStream(t, s, "stuck", 61, 0)
	// The first engine hangs on frame 3 far past StallMs; the rebuilt
	// engine gets no hook and serves cleanly.
	sc.Engine.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if frameIdx == 3 && task == tasks.NameDetect {
			time.Sleep(time.Duration(1500*raceScale) * time.Millisecond)
		}
	})
	sc = withRebuild(t, sc, nil)
	srv, err := NewServer(ServerConfig{
		Supervise: true, WatchdogMs: 20 * raceScale, StallMs: 60 * raceScale, BackoffMs: 0.1, HostWorkers: 4,
	}, []Config{sc})
	if err != nil {
		t.Fatal(err)
	}
	const n = 15
	out, err := srv.Run(n)
	if err != nil {
		t.Fatalf("stalled stream did not recover: %v", err)
	}
	st := out.Streams[0].Stats
	assertFrameAccounting(t, st, n)
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", st.Restarts)
	}
	if st.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1 (the stalled frame)", st.Abandoned)
	}
	if st.Quarantined {
		t.Fatal("quarantined despite a working Rebuild")
	}
}

// TestStallWithoutRebuildQuarantines: a stalled engine cannot be reused, so
// without a Rebuild hook the stream must be quarantined immediately.
func TestStallWithoutRebuildQuarantines(t *testing.T) {
	s := testStudy()
	sc := mkStream(t, s, "dead-end", 67, 0)
	sc.Engine.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if frameIdx == 2 && task == tasks.NameDetect {
			time.Sleep(time.Duration(1500*raceScale) * time.Millisecond)
		}
	})
	srv, err := NewServer(ServerConfig{
		Supervise: true, WatchdogMs: 20 * raceScale, StallMs: 60 * raceScale, BackoffMs: 0.1, HostWorkers: 4,
	}, []Config{sc})
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Run(10)
	if err == nil || !strings.Contains(err.Error(), "Rebuild") {
		t.Fatalf("err %v, want quarantine naming the missing Rebuild hook", err)
	}
	st := out.Streams[0].Stats
	if !st.Quarantined {
		t.Fatal("stream not quarantined")
	}
	// Quarantine on the very first crash: no restart ever completed, so the
	// recovery accounting must stay at zero instead of dividing by a zero
	// restart count.
	if st.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 (the first crash went straight to quarantine)", st.Restarts)
	}
	if st.MeanRecoveryMs != 0 || math.IsNaN(st.MeanRecoveryMs) {
		t.Fatalf("MeanRecoveryMs = %v, want 0 with no completed recoveries", st.MeanRecoveryMs)
	}
}

// TestQuarantineExcludesAbandonedRecovery: the crash that triggers quarantine
// never completes its recovery, so the mean covers only the restarts that
// actually resumed serving.
func TestQuarantineExcludesAbandonedRecovery(t *testing.T) {
	s := testStudy()
	bad := mkStream(t, s, "budgeted", 73, 0)
	src := bad.Source
	bad.Source = func(i int) *frame.Frame {
		if i >= 3 {
			return nil // permanently broken source
		}
		return src(i)
	}
	// RestartBudget 1: the first crash restarts (MaxRestarts 5 tolerates it),
	// the second exhausts the lifetime budget and quarantines.
	srv, err := NewServer(ServerConfig{Supervise: true, MaxRestarts: 5, RestartBudget: 1, BackoffMs: 0.1}, []Config{bad})
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Run(12)
	if err == nil || !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("err %v, want quarantine naming the exhausted restart budget", err)
	}
	st := out.Streams[0].Stats
	if !st.Quarantined {
		t.Fatal("stream not quarantined")
	}
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 completed restart before quarantine", st.Restarts)
	}
	if st.MeanRecoveryMs <= 0 || math.IsNaN(st.MeanRecoveryMs) {
		t.Fatalf("MeanRecoveryMs = %v, want a positive finite mean over the single completed recovery", st.MeanRecoveryMs)
	}
}

// TestDegradationLadder: sustained failures step the quality down; after
// the fault clears the cool-down steps it back to full.
func TestDegradationLadder(t *testing.T) {
	s := testStudy()
	sc := mkStream(t, s, "ladder", 71, 0)
	sc.Engine.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if frameIdx >= 3 && frameIdx <= 8 && task == tasks.NameMKXExt {
			panic("burst fault")
		}
	})
	srv, err := NewServer(ServerConfig{
		Degrade:  true,
		Degrader: pipeline.DegraderConfig{StepDownAfter: 2, StepUpAfter: 4, MinDwell: 1},
	}, []Config{sc})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	out, err := srv.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Streams[0].Stats
	assertFrameAccounting(t, st, n)
	if st.Degradations < 2 {
		t.Fatalf("degradations = %d, want at least one down and one up transition", st.Degradations)
	}
	if st.FinalQuality != pipeline.QualityFull {
		t.Fatalf("final quality %v after the fault cleared and the cool-down elapsed, want full", st.FinalQuality)
	}
	// During the burst the reports carry the degraded rungs.
	sawDegraded := false
	for _, rep := range out.Streams[0].Reports {
		if rep.Quality > pipeline.QualityFull {
			sawDegraded = true
			break
		}
	}
	if !sawDegraded {
		t.Fatal("no processed frame ran at a degraded rung")
	}
}

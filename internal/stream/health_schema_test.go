package stream

import (
	"encoding/json"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"triplec/internal/metrics"
	"triplec/internal/slo"
)

// healthzGoldenPaths is the pinned /healthz JSON schema for a healthy run
// with telemetry and the SLO tracker enabled: every leaf field, arrays
// flattened as "[]". Adding a field is fine (extend the golden); renaming
// or dropping one breaks dashboards and must show up here.
var healthzGoldenPaths = []string{
	"slo.fleet.causes[].cause",
	"slo.fleet.causes[].frames",
	"slo.fleet.causes[].ms",
	"slo.fleet.causes[].ms_share",
	"slo.fleet.causes[].over_share",
	"slo.fleet.frames",
	"slo.fleet.missed",
	"slo.fleet.over_ms",
	"slo.fleet.stream",
	"slo.frame",
	"slo.slos[].bad_frames",
	"slo.slos[].fast_burn",
	"slo.slos[].fast_window",
	"slo.slos[].good_frames",
	"slo.slos[].objective",
	"slo.slos[].page_burn",
	"slo.slos[].pages",
	"slo.slos[].slo",
	"slo.slos[].slow_burn",
	"slo.slos[].slow_window",
	"slo.slos[].state",
	"slo.slos[].ticket_burn",
	"slo.slos[].tickets",
	"status",
	"streams[].abandoned",
	"streams[].accounting_errors",
	"streams[].budget_ms",
	"streams[].core_budget",
	"streams[].deadline_misses",
	"streams[].failed",
	"streams[].last_frame",
	"streams[].last_latency_ms",
	"streams[].mean_latency_ms",
	"streams[].miss_rate",
	"streams[].offered",
	"streams[].p95_latency_ms",
	"streams[].predictor",
	"streams[].processed",
	"streams[].quality_level",
	"streams[].restarts",
	"streams[].rolling_miss_rate",
	"streams[].rolling_miss_samples",
	"streams[].rolling_scenario_hit_rate",
	"streams[].rolling_scenario_samples",
	"streams[].scenario_hit_rate",
	"streams[].serial_fallbacks",
	"streams[].skipped",
	"streams[].state",
	"streams[].stream",
	"streams[].task_panics",
}

// collectPaths flattens a decoded JSON document into its leaf paths.
func collectPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, vv := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			collectPaths(p, vv, out)
		}
	case []any:
		if len(x) == 0 {
			out[prefix+"[]"] = true
			return
		}
		for _, vv := range x {
			collectPaths(prefix+"[]", vv, out)
		}
	default:
		out[prefix] = true
	}
}

// TestHealthzGoldenSchema serves a short run with telemetry, the SLO
// tracker and exemplars enabled, then pins the exact /healthz JSON shape
// and checks the tracker's ledger agrees with the serving stats.
func TestHealthzGoldenSchema(t *testing.T) {
	s := testStudy()
	cfgs := []Config{
		mkStream(t, s, "g0", 3, 0),
		mkStream(t, s, "g1", 4, 0),
	}
	reg := metrics.NewRegistry()
	tracker := slo.NewTracker(slo.Config{Streams: len(cfgs)})
	if err := tracker.EnableMetrics(reg, []string{"g0", "g1"}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Metrics: reg, SLO: tracker, SLOExemplars: true}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	// 24 frames/stream: enough ledger mass, but the 64-frame fast window
	// never fills, so no alert transitions appear (they are omitempty and
	// would perturb the schema).
	res, err := srv.Run(24)
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz status %d: %s", rec.Code, rec.Body.String())
	}
	var doc any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	paths := map[string]bool{}
	collectPaths("", doc, paths)
	got := make([]string, 0, len(paths))
	for p := range paths {
		got = append(got, p)
	}
	sort.Strings(got)
	want := append([]string(nil), healthzGoldenPaths...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Errorf("healthz schema has %d paths, golden has %d", len(got), len(want))
	}
	for i := 0; i < len(got) || i < len(want); i++ {
		var g, w string
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Fatalf("healthz schema diverges from golden at entry %d: got %q, want %q\nfull schema:\n%s",
				i, g, w, strings.Join(got, "\n"))
		}
	}

	// The tracker's fleet ledger must agree with the serving stats.
	processed := 0
	for _, sr := range res.Streams {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		processed += sr.Stats.Processed
	}
	st := tracker.Status(true)
	if st.Fleet.Frames != uint64(processed) {
		t.Fatalf("tracker saw %d frames, server processed %d", st.Fleet.Frames, processed)
	}
	if len(st.Streams) != len(cfgs) {
		t.Fatalf("tracker reports %d streams, want %d", len(st.Streams), len(cfgs))
	}

	// The triplec_slo_* families are live, and the OpenMetrics rendering
	// carries a frame-latency exemplar from the serving loop.
	mreq := httptest.NewRequest("GET", "/metrics", nil)
	mreq.Header.Set("Accept", "application/openmetrics-text")
	mrec := httptest.NewRecorder()
	metrics.Handler(reg).ServeHTTP(mrec, mreq)
	body := mrec.Body.String()
	for _, fam := range []string{"triplec_slo_frames_total", "triplec_slo_burn_rate", "triplec_slo_cause_ms"} {
		if !strings.Contains(body, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
	if !strings.Contains(body, `# {frame="`) {
		t.Error("OpenMetrics exposition carries no exemplar despite SLOExemplars")
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Error("OpenMetrics exposition missing the EOF terminator")
	}
}

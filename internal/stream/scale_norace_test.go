//go:build !race

package stream

// raceScale is 1 without the race detector; see scale_race_test.go.
const raceScale = 1.0

package stream

import (
	"encoding/json"
	"math"
	"net/http"

	"triplec/internal/core"
	"triplec/internal/promote"
	"triplec/internal/slo"
)

// Health is one stream's live serving summary, assembled from the stream's
// telemetry instruments. Every numeric field is sanitized to a finite value
// so the JSON encoding can never fail on NaN/Inf.
type Health struct {
	Stream string `json:"stream"`
	// State is "idle" (before the first Run), "serving", "done", "failed"
	// or "quarantined"; Error carries the serve error of a failed or
	// quarantined stream.
	State string `json:"state"`
	Error string `json:"error,omitempty"`

	Offered         uint64 `json:"offered"`
	Processed       uint64 `json:"processed"`
	Skipped         uint64 `json:"skipped"`
	Failed          uint64 `json:"failed"`
	Abandoned       uint64 `json:"abandoned"`
	SerialFallbacks uint64 `json:"serial_fallbacks"`
	DeadlineMisses  uint64 `json:"deadline_misses"`
	AccountingErrs  uint64 `json:"accounting_errors"`
	Restarts        uint64 `json:"restarts"`
	TaskPanics      uint64 `json:"task_panics"`
	LastFrame       int    `json:"last_frame"`
	QualityLevel    int    `json:"quality_level"`

	// Predictor identifies the deployed prediction backend steering this
	// stream's scheduling decisions. Without a promotion controller it is
	// always the baseline; with one it flips to the challenger on the
	// streams a canary or fleet promotion is steering, and back on rollback.
	Predictor string `json:"predictor"`

	MissRate float64 `json:"miss_rate"`
	// RollingMissRate is the miss fraction over the last RollingMissSamples
	// (≤ 64) processed frames — the promotion guardrails watch this shape
	// of signal, and a shift shows here while the lifetime MissRate still
	// averages it away.
	RollingMissRate    float64 `json:"rolling_miss_rate"`
	RollingMissSamples int     `json:"rolling_miss_samples"`
	ScenarioHitRate    float64 `json:"scenario_hit_rate"`
	// RollingScenarioHitRate is the hit fraction over the last
	// RollingScenarioSamples (≤ 64) forecasts — a drift probe that reacts
	// where the cumulative ScenarioHitRate averages it away.
	RollingScenarioHitRate float64 `json:"rolling_scenario_hit_rate"`
	RollingScenarioSamples int     `json:"rolling_scenario_samples"`
	BudgetMs               float64 `json:"budget_ms"`
	LastLatencyMs          float64 `json:"last_latency_ms"`
	MeanLatencyMs          float64 `json:"mean_latency_ms"`
	P95LatencyMs           float64 `json:"p95_latency_ms"`
	CoreBudget             float64 `json:"core_budget"`
}

// healthReport is the /healthz response body.
type healthReport struct {
	Status  string   `json:"status"` // "ok" or "degraded"
	Streams []Health `json:"streams"`
	// Promotion is the guarded-promotion controller's live status (state,
	// challenger, canary width, guard windows); omitted when the server was
	// built without ServerConfig.Promote.
	Promotion *promote.Status `json:"promotion,omitempty"`
	// SLO is the burn-rate tracker's live status (per-SLO alert states and
	// burn rates plus the fleet cause ledger); omitted when the server was
	// built without ServerConfig.SLO.
	SLO *slo.Status `json:"slo,omitempty"`
}

func stateString(s int32) string {
	switch s {
	case streamServing:
		return "serving"
	case streamDone:
		return "done"
	case streamFailed:
		return "failed"
	case streamQuarantined:
		return "quarantined"
	}
	return "idle"
}

func finiteOr0(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Healths returns every stream's live serving summary. It is safe to call
// concurrently with Run (the instruments are atomics) and returns nil when
// the server was built without a metrics registry.
func (s *Server) Healths() []Health {
	if len(s.tels) == 0 {
		return nil
	}
	out := make([]Health, len(s.tels))
	for i, t := range s.tels {
		a := t.acct
		lat := a.FrameLatencyMs.Snapshot()
		pred := core.BackendBaseline
		if s.cfg.Promote != nil {
			pred = s.cfg.Promote.StreamPredictor(i)
		}
		h := Health{
			Stream:          streamLabel(s.streams[i], i),
			State:           stateString(t.state.Load()),
			Offered:         a.Offered.Value(),
			Processed:       a.Processed.Value(),
			Skipped:         a.Skipped.Value(),
			Failed:          t.failedFrames.Value(),
			Abandoned:       t.abandonedFrames.Value(),
			SerialFallbacks: a.SerialFallbacks.Value(),
			DeadlineMisses:  a.DeadlineMisses.Value(),
			AccountingErrs:  a.AccountingErrs.Value(),
			Restarts:        t.restarts.Value(),
			TaskPanics:      t.taskPanics.Value(),
			LastFrame:       int(finiteOr0(a.LastFrame.Value())),
			QualityLevel:    int(finiteOr0(t.qualityLevel.Value())),
			Predictor:       pred,
			MissRate:        finiteOr0(a.MissRate()),
			ScenarioHitRate: finiteOr0(a.ScenarioHitRate()),
			BudgetMs:        finiteOr0(a.BudgetMs.Value()),
			LastLatencyMs:   finiteOr0(a.LastLatencyMs.Value()),
			MeanLatencyMs:   finiteOr0(lat.Mean()),
			P95LatencyMs:    finiteOr0(lat.Quantile(0.95)),
			CoreBudget:      finiteOr0(a.CoreBudget.Value()),
		}
		h.RollingScenarioHitRate, h.RollingScenarioSamples = t.rollingScenarioHitRate()
		h.RollingScenarioHitRate = finiteOr0(h.RollingScenarioHitRate)
		h.RollingMissRate, h.RollingMissSamples = t.rollingMissRate()
		h.RollingMissRate = finiteOr0(h.RollingMissRate)
		if msg, ok := t.errMsg.Load().(string); ok {
			h.Error = msg
		}
		out[i] = h
	}
	return out
}

// HealthHandler serves the per-stream liveness and miss-rate summary as
// JSON — mount it at /healthz. It answers 200 with status "ok" while every
// stream is healthy and 503 with status "degraded" once any stream has
// failed; without telemetry enabled it answers 404.
func (s *Server) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		streams := s.Healths()
		if streams == nil {
			http.Error(w, `{"error":"telemetry disabled: build the server with ServerConfig.Metrics"}`,
				http.StatusNotFound)
			return
		}
		rep := healthReport{Status: "ok", Streams: streams}
		if s.cfg.Promote != nil {
			st := s.cfg.Promote.Status()
			rep.Promotion = &st
		}
		if s.cfg.SLO != nil {
			rep.SLO = s.cfg.SLO.Status(false)
		}
		code := http.StatusOK
		for _, h := range streams {
			if h.State == "failed" || h.State == "quarantined" {
				rep.Status = "degraded"
				code = http.StatusServiceUnavailable
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding cannot fail: every numeric field is sanitized finite.
		_ = enc.Encode(rep)
	})
}

package stream

import (
	"os"
	"path/filepath"
	"testing"

	"triplec/internal/span"
)

// TestTightBudgetProducesValidDump is the end-to-end flight-recorder test:
// serving real streams against an absurdly tight latency budget must fire
// the deadline-miss trigger and leave at least one parseable Perfetto dump
// whose task spans carry predictions and scenario labels.
func TestTightBudgetProducesValidDump(t *testing.T) {
	dir := t.TempDir()
	trig := span.DefaultTriggers()
	trig.AfterFrames = 4
	flight, err := span.NewFlightRecorder(dir, trig)
	if err != nil {
		t.Fatal(err)
	}

	s := testStudy()
	cfgs := []Config{
		mkStream(t, s, "s0", 11, 2), // 2 ms budget: every frame misses
		mkStream(t, s, "s1", 23, 2),
	}
	srv, err := NewServer(ServerConfig{Flight: flight}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(30); err != nil {
		t.Fatal(err)
	}

	dumps := flight.Dumps()
	if len(dumps) == 0 {
		t.Fatal("tight budget produced no flight-recorder dump")
	}
	if err := flight.Err(); err != nil {
		t.Fatal(err)
	}
	for _, info := range dumps {
		if info.Reason != "deadline_miss" && info.Reason != "prediction_relerr" {
			t.Errorf("unexpected trigger reason %q", info.Reason)
		}
		f, err := os.Open(filepath.Join(dir, info.File))
		if err != nil {
			t.Fatal(err)
		}
		d, err := span.ReadDump(f)
		f.Close()
		if err != nil {
			t.Fatalf("dump %s does not parse: %v", info.File, err)
		}
		if d.Reason != info.Reason {
			t.Errorf("dump %s reason = %q, info says %q", info.File, d.Reason, info.Reason)
		}
		if len(d.Frames) == 0 {
			t.Fatalf("dump %s has no frame spans", info.File)
		}
		tasksSeen, predicted := 0, 0
		for _, fr := range d.Frames {
			if fr.Scenario == "" {
				t.Errorf("dump %s frame %d has no scenario label", info.File, fr.Frame)
			}
			if fr.BudgetMs != 2 {
				t.Errorf("dump %s frame %d budget = %v, want 2", info.File, fr.Frame, fr.BudgetMs)
			}
			for _, task := range fr.Tasks {
				tasksSeen++
				if task.PredictedMs > 0 {
					predicted++
				}
			}
		}
		if tasksSeen == 0 {
			t.Errorf("dump %s has no task spans", info.File)
		}
		if predicted == 0 {
			t.Errorf("dump %s: no task span carries a prediction", info.File)
		}
		if d.Processes[1] != "s0" || d.Processes[2] != "s1" {
			t.Errorf("dump %s process table = %v", info.File, d.Processes)
		}
	}
}

// TestFlightFlushSurfacesAtRunEnd checks that a dump armed too close to the
// end of the run (its after-window never elapses) is still flushed by
// Server.Run rather than silently dropped.
func TestFlightFlushSurfacesAtRunEnd(t *testing.T) {
	dir := t.TempDir()
	trig := span.DefaultTriggers()
	trig.AfterFrames = 10000 // the window can never elapse in-run
	flight, err := span.NewFlightRecorder(dir, trig)
	if err != nil {
		t.Fatal(err)
	}
	s := testStudy()
	srv, err := NewServer(ServerConfig{Flight: flight},
		[]Config{mkStream(t, s, "s0", 11, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := len(flight.Dumps()); got != 1 {
		t.Fatalf("run-end flush wrote %d dumps, want 1", got)
	}
}

// TestServeWithoutFlightStaysQuiet pins the disabled path: no flight
// recorder configured means no span machinery runs and serving behaves
// exactly as before.
func TestServeWithoutFlightStaysQuiet(t *testing.T) {
	s := testStudy()
	srv, err := NewServer(ServerConfig{}, []Config{mkStream(t, s, "s0", 11, 0)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams[0].Stats.Processed == 0 {
		t.Fatal("no frames processed")
	}
}

// TestSpanMetaTables checks the label tables handed to the recorder cover
// every id the serving layer stamps.
func TestSpanMetaTables(t *testing.T) {
	s := testStudy()
	m := spanMeta([]Config{mkStream(t, s, "s0", 1, 0), mkStream(t, s, "", 2, 0)})
	if len(m.Streams) != 2 || m.Streams[0] != "s0" {
		t.Errorf("stream labels = %v", m.Streams)
	}
	if m.Streams[1] == "" {
		t.Error("unnamed stream got an empty label")
	}
	if len(m.Tasks) != 10 {
		t.Errorf("task table has %d entries, want 10", len(m.Tasks))
	}
	if len(m.Scenarios) != 8 {
		t.Errorf("scenario table has %d entries, want 8", len(m.Scenarios))
	}
	if len(m.Qualities) == 0 {
		t.Error("quality table empty")
	}
}

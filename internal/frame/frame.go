// Package frame provides the image substrate for the Triple-C reproduction:
// 16-bit grayscale frames as used by the paper's X-ray application
// (1024x1024 pixels, 2 bytes/pixel, 30 Hz), rectangular regions of interest,
// and the pixel-level operations the task library is built from.
//
// Pixels are stored row-major in a flat []uint16; a Frame may alias a region
// of a parent frame (like the standard library's image.SubImage) so ROI
// processing does not copy pixel data.
package frame

import (
	"errors"
	"fmt"
)

// BytesPerPixel is the pixel storage width used throughout the paper's
// bandwidth arithmetic (1024x1024 px * 2 B/px * 30 Hz ~= 60 MB/s).
const BytesPerPixel = 2

// Rect is a rectangular pixel region [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is shorthand for constructing a Rect.
func R(x0, y0, x1, y1 int) Rect { return Rect{x0, y0, x1, y1} }

// Width returns the horizontal extent of r (0 when empty).
func (r Rect) Width() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// Height returns the vertical extent of r (0 when empty).
func (r Rect) Height() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns Width*Height in pixels.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Empty reports whether r contains no pixels.
func (r Rect) Empty() bool { return r.Area() == 0 }

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Intersect returns the largest rectangle contained in both r and s.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max(r.X0, s.X0), Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1), Y1: min(r.Y1, s.Y1),
	}
	if out.X1 < out.X0 {
		out.X1 = out.X0
	}
	if out.Y1 < out.Y0 {
		out.Y1 = out.Y0
	}
	return out
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle is the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0), Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1), Y1: max(r.Y1, s.Y1),
	}
}

// Inset shrinks r by d pixels on every side (negative d grows it). The
// result is clamped to be non-inverted.
func (r Rect) Inset(d int) Rect {
	out := Rect{r.X0 + d, r.Y0 + d, r.X1 - d, r.Y1 - d}
	if out.X1 < out.X0 {
		out.X0 = (r.X0 + r.X1) / 2
		out.X1 = out.X0
	}
	if out.Y1 < out.Y0 {
		out.Y0 = (r.Y0 + r.Y1) / 2
		out.Y1 = out.Y0
	}
	return out
}

// ClampTo translates and clips r so it fits within bounds while preserving
// its size where possible.
func (r Rect) ClampTo(bounds Rect) Rect {
	w, h := r.Width(), r.Height()
	if w > bounds.Width() {
		w = bounds.Width()
	}
	if h > bounds.Height() {
		h = bounds.Height()
	}
	x0, y0 := r.X0, r.Y0
	if x0 < bounds.X0 {
		x0 = bounds.X0
	}
	if y0 < bounds.Y0 {
		y0 = bounds.Y0
	}
	if x0+w > bounds.X1 {
		x0 = bounds.X1 - w
	}
	if y0+h > bounds.Y1 {
		y0 = bounds.Y1 - h
	}
	return Rect{x0, y0, x0 + w, y0 + h}
}

// String renders the rectangle's corners.
func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d)-(%d,%d)", r.X0, r.Y0, r.X1, r.Y1)
}

// Frame is a 16-bit grayscale image. The zero value is an empty frame.
type Frame struct {
	// Pix holds pixels row-major; row y starts at (y-Bounds.Y0)*Stride and
	// pixel (x, y) is Pix[(y-Bounds.Y0)*Stride + (x-Bounds.X0)].
	Pix    []uint16
	Stride int
	Bounds Rect
}

// New allocates a zeroed frame of the given dimensions.
func New(w, h int) *Frame {
	if w < 0 || h < 0 {
		panic("frame: negative dimensions")
	}
	return &Frame{
		Pix:    make([]uint16, w*h),
		Stride: w,
		Bounds: Rect{0, 0, w, h},
	}
}

// FromPix wraps an existing pixel slice (length must be w*h) without copying.
func FromPix(pix []uint16, w, h int) (*Frame, error) {
	if len(pix) != w*h {
		return nil, errors.New("frame: pixel slice length does not match dimensions")
	}
	return &Frame{Pix: pix, Stride: w, Bounds: Rect{0, 0, w, h}}, nil
}

// Width returns the frame width in pixels.
func (f *Frame) Width() int { return f.Bounds.Width() }

// Height returns the frame height in pixels.
func (f *Frame) Height() int { return f.Bounds.Height() }

// Pixels returns Width*Height.
func (f *Frame) Pixels() int { return f.Bounds.Area() }

// SizeBytes returns the storage footprint of the frame's pixel region in
// bytes (Pixels * BytesPerPixel). This feeds the Table 1 memory analysis.
func (f *Frame) SizeBytes() int { return f.Pixels() * BytesPerPixel }

// offset returns the index of (x, y) in Pix. No bounds check.
func (f *Frame) offset(x, y int) int {
	return (y-f.Bounds.Y0)*f.Stride + (x - f.Bounds.X0)
}

// At returns the pixel at (x, y). Out-of-bounds reads return 0, which gives
// filters zero-padding semantics at image borders.
func (f *Frame) At(x, y int) uint16 {
	if !f.Bounds.Contains(x, y) {
		return 0
	}
	return f.Pix[f.offset(x, y)]
}

// AtClamped returns the pixel at (x, y) with coordinates clamped to the
// frame bounds (replicate-border semantics, used by the smoothing filters).
func (f *Frame) AtClamped(x, y int) uint16 {
	if f.Bounds.Empty() {
		return 0
	}
	if x < f.Bounds.X0 {
		x = f.Bounds.X0
	}
	if x >= f.Bounds.X1 {
		x = f.Bounds.X1 - 1
	}
	if y < f.Bounds.Y0 {
		y = f.Bounds.Y0
	}
	if y >= f.Bounds.Y1 {
		y = f.Bounds.Y1 - 1
	}
	return f.Pix[f.offset(x, y)]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (f *Frame) Set(x, y int, v uint16) {
	if !f.Bounds.Contains(x, y) {
		return
	}
	f.Pix[f.offset(x, y)] = v
}

// Fill sets every pixel in the frame to v.
func (f *Frame) Fill(v uint16) {
	for y := f.Bounds.Y0; y < f.Bounds.Y1; y++ {
		row := f.Pix[f.offset(f.Bounds.X0, y) : f.offset(f.Bounds.X0, y)+f.Width()]
		for i := range row {
			row[i] = v
		}
	}
}

// Clone returns a deep copy of f with compact stride.
func (f *Frame) Clone() *Frame {
	out := New(f.Width(), f.Height())
	out.Bounds = f.Bounds
	for y := f.Bounds.Y0; y < f.Bounds.Y1; y++ {
		src := f.Pix[f.offset(f.Bounds.X0, y) : f.offset(f.Bounds.X0, y)+f.Width()]
		dst := out.Pix[(y-f.Bounds.Y0)*out.Stride : (y-f.Bounds.Y0)*out.Stride+f.Width()]
		copy(dst, src)
	}
	return out
}

// SubFrame returns a view of f restricted to r (intersected with f's
// bounds). The view shares pixel storage with f.
func (f *Frame) SubFrame(r Rect) *Frame {
	r = r.Intersect(f.Bounds)
	if r.Empty() {
		return &Frame{Bounds: r, Stride: f.Stride}
	}
	return &Frame{
		Pix:    f.Pix[f.offset(r.X0, r.Y0):],
		Stride: f.Stride,
		Bounds: r,
	}
}

// Row returns the pixels of row y as a shared slice, or nil if y is outside
// the frame.
func (f *Frame) Row(y int) []uint16 {
	if y < f.Bounds.Y0 || y >= f.Bounds.Y1 {
		return nil
	}
	start := f.offset(f.Bounds.X0, y)
	return f.Pix[start : start+f.Width()]
}

// MinMax returns the smallest and largest pixel value in the frame.
// An empty frame reports (0, 0).
func (f *Frame) MinMax() (lo, hi uint16) {
	if f.Bounds.Empty() {
		return 0, 0
	}
	lo, hi = 0xFFFF, 0
	for y := f.Bounds.Y0; y < f.Bounds.Y1; y++ {
		for _, v := range f.Row(y) {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// MeanValue returns the average pixel value of the frame.
func (f *Frame) MeanValue() float64 {
	n := f.Pixels()
	if n == 0 {
		return 0
	}
	var sum uint64
	for y := f.Bounds.Y0; y < f.Bounds.Y1; y++ {
		for _, v := range f.Row(y) {
			sum += uint64(v)
		}
	}
	return float64(sum) / float64(n)
}

// Equal reports whether two frames have identical bounds and pixels.
func (f *Frame) Equal(g *Frame) bool {
	if f.Bounds != g.Bounds {
		return false
	}
	for y := f.Bounds.Y0; y < f.Bounds.Y1; y++ {
		fr, gr := f.Row(y), g.Row(y)
		for i := range fr {
			if fr[i] != gr[i] {
				return false
			}
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package frame

import "testing"

func noisyFrame(w, h int, seed uint16) *Frame {
	f := New(w, h)
	v := seed
	for i := range f.Pix {
		v = v*25173 + 13849
		f.Pix[i] = v
	}
	return f
}

func TestGaussianBlurParallelMatchesSerial(t *testing.T) {
	f := noisyFrame(64, 48, 7)
	want := GaussianBlur(f, 1.4)
	for _, k := range []int{1, 2, 3, 8, 100} {
		got := GaussianBlurParallel(f, 1.4, k)
		if !got.Equal(want) {
			t.Fatalf("k=%d: parallel blur differs from serial", k)
		}
	}
}

func TestGaussianBlurParallelSubFrame(t *testing.T) {
	base := noisyFrame(64, 64, 11)
	sub := base.SubFrame(R(8, 8, 56, 40))
	want := GaussianBlur(sub, 1.2)
	got := GaussianBlurParallel(sub, 1.2, 4)
	if !got.Equal(want) {
		t.Fatal("parallel blur differs on subframe")
	}
}

func TestResizeParallelMatchesSerial(t *testing.T) {
	f := noisyFrame(50, 30, 13)
	want := Resize(f, 77, 19)
	for _, k := range []int{1, 4, 16} {
		got := ResizeParallel(f, 77, 19, k)
		if !got.Equal(want) {
			t.Fatalf("k=%d: parallel resize differs", k)
		}
	}
	if z := ResizeParallel(f, 0, 10, 4); z.Pixels() != 0 {
		t.Fatal("zero-size resize must be empty")
	}
}

func TestConvolveParallelMatchesSerial(t *testing.T) {
	f := noisyFrame(40, 40, 17)
	kern, err := NewKernel([]float64{0, -1, 0, -1, 5, -1, 0, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := Convolve(f, kern)
	got := ConvolveParallel(f, kern, 6)
	if !got.Equal(want) {
		t.Fatal("parallel convolve differs")
	}
}

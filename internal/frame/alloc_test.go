package frame

import (
	"math/rand"
	"testing"
)

// Allocation pins for the pooled per-frame kernel paths. The Into variants
// with a reused destination must not allocate at all; GaussianBlurInto may
// touch the shared pool for its intermediate buffer, which allocates only on
// a pool miss (e.g. when the GC drained the pool mid-run), so its pin is a
// fraction rather than exactly zero.

func TestKernelIntoPathsDoNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	src := randFrame(rng, 128, 96)
	src2 := randFrame(rng, 128, 96)
	k, err := NewKernel([]float64{0, -1, 0, -1, 5, -1, 0, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	dst := New(128, 96)
	small := New(64, 48)

	cases := []struct {
		name  string
		limit float64 // average allocations per run
		run   func()
	}{
		{"ConvolveInto", 0, func() { ConvolveInto(dst, src, k) }},
		{"Median3x3Into", 0, func() { Median3x3Into(dst, src) }},
		{"SobelInto", 0, func() { SobelInto(dst, src) }},
		{"ResizeInto", 0, func() { ResizeInto(small, src, 64, 48) }},
		{"ThresholdInto", 0, func() { ThresholdInto(dst, src, 30000) }},
		{"InvertInto", 0, func() { InvertInto(dst, src) }},
		{"TranslateInto", 0, func() { TranslateInto(dst, src, 0.7, 1.3) }},
		{"AbsDiffInto", 0, func() { _, _ = AbsDiffInto(dst, src, src2) }},
		// Pool-backed paths: tolerate rare GC-induced pool misses.
		{"GaussianBlurInto", 0.5, func() { GaussianBlurInto(dst, src, 1.2) }},
		{"BorrowRelease", 0.5, func() { Release(BorrowUninit(128, 96)) }},
	}
	for _, tc := range cases {
		tc.run() // warm pools and kernel caches outside the measured runs
		if avg := testing.AllocsPerRun(50, tc.run); avg > tc.limit {
			t.Errorf("%s: %.2f allocs/op, want <= %.1f", tc.name, avg, tc.limit)
		}
	}
}

// TestAccumulatorAverageIntoDoesNotAllocate pins the enhancement stage's
// steady state: integrating a frame and refreshing the running average into
// a reused destination is allocation-free.
func TestAccumulatorAverageIntoDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := randFrame(rng, 64, 64)
	acc := NewAccumulator(64, 64)
	if err := acc.Add(f); err != nil {
		t.Fatal(err)
	}
	dst := New(64, 64)
	run := func() {
		if err := acc.Add(f); err != nil {
			t.Fatal(err)
		}
		acc.AverageInto(dst)
	}
	run()
	if avg := testing.AllocsPerRun(50, run); avg > 0 {
		t.Errorf("Add+AverageInto: %.2f allocs/op, want 0", avg)
	}
}

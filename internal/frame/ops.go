package frame

import (
	"errors"
	"math"
)

// Kernel is a square convolution kernel with odd side length.
type Kernel struct {
	Side int       // side length, odd
	W    []float64 // Side*Side weights, row-major
}

// NewKernel constructs a kernel from weights; len(w) must be an odd perfect
// square.
func NewKernel(w []float64) (Kernel, error) {
	side := int(math.Round(math.Sqrt(float64(len(w)))))
	if side*side != len(w) || side%2 == 0 || side == 0 {
		return Kernel{}, errors.New("frame: kernel must be an odd square")
	}
	return Kernel{Side: side, W: w}, nil
}

// Convolve applies k to src with replicate borders and returns a new frame
// of the same bounds. Results are clamped to [0, 65535].
func Convolve(src *Frame, k Kernel) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	r := k.Side / 2
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			acc := 0.0
			wi := 0
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					acc += k.W[wi] * float64(src.AtClamped(x+dx, y+dy))
					wi++
				}
			}
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = clamp16(acc)
		}
	}
	return dst
}

// GaussianKernel1D returns a normalized 1-D Gaussian of the given sigma,
// truncated at 3 sigma (minimum radius 1).
func GaussianKernel1D(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	w := make([]float64, 2*r+1)
	sum := 0.0
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		w[i+r] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// GaussianBlur applies a separable Gaussian of the given sigma (two 1-D
// passes), the standard pre-smoothing step of the ridge filter.
func GaussianBlur(src *Frame, sigma float64) *Frame {
	w := GaussianKernel1D(sigma)
	r := len(w) / 2
	tmp := New(src.Width(), src.Height())
	tmp.Bounds = src.Bounds
	// Horizontal pass.
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			acc := 0.0
			for i := -r; i <= r; i++ {
				acc += w[i+r] * float64(src.AtClamped(x+i, y))
			}
			tmp.Pix[(y-src.Bounds.Y0)*tmp.Stride+(x-src.Bounds.X0)] = clamp16(acc)
		}
	}
	// Vertical pass.
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			acc := 0.0
			for i := -r; i <= r; i++ {
				acc += w[i+r] * float64(tmp.AtClamped(x, y+i))
			}
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = clamp16(acc)
		}
	}
	return dst
}

// Hessian holds the three independent second-derivative responses at a pixel.
type Hessian struct {
	XX, YY, XY float64
}

// HessianAt computes central-difference second derivatives at (x, y) with
// replicate borders.
func HessianAt(f *Frame, x, y int) Hessian {
	c := float64(f.AtClamped(x, y))
	return Hessian{
		XX: float64(f.AtClamped(x+1, y)) - 2*c + float64(f.AtClamped(x-1, y)),
		YY: float64(f.AtClamped(x, y+1)) - 2*c + float64(f.AtClamped(x, y-1)),
		XY: (float64(f.AtClamped(x+1, y+1)) - float64(f.AtClamped(x-1, y+1)) -
			float64(f.AtClamped(x+1, y-1)) + float64(f.AtClamped(x-1, y-1))) / 4,
	}
}

// Eigenvalues returns the eigenvalues of the 2x2 symmetric Hessian, ordered
// |l1| >= |l2|. For a dark line on a bright background the principal
// eigenvalue l1 is large and positive.
func (h Hessian) Eigenvalues() (l1, l2 float64) {
	tr := h.XX + h.YY
	det := h.XX*h.YY - h.XY*h.XY
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	a, b := tr/2+disc, tr/2-disc
	if math.Abs(a) >= math.Abs(b) {
		return a, b
	}
	return b, a
}

// Gradient returns central-difference first derivatives at (x, y).
func Gradient(f *Frame, x, y int) (gx, gy float64) {
	gx = (float64(f.AtClamped(x+1, y)) - float64(f.AtClamped(x-1, y))) / 2
	gy = (float64(f.AtClamped(x, y+1)) - float64(f.AtClamped(x, y-1))) / 2
	return gx, gy
}

// Threshold returns a frame where pixels >= t map to 65535 and others to 0.
func Threshold(src *Frame, t uint16) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		srow := src.Row(y)
		drow := dst.Pix[(y-src.Bounds.Y0)*dst.Stride : (y-src.Bounds.Y0)*dst.Stride+src.Width()]
		for i, v := range srow {
			if v >= t {
				drow[i] = 0xFFFF
			}
		}
	}
	return dst
}

// Invert returns 65535 - pixel for every pixel (dark features become bright).
func Invert(src *Frame) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		srow := src.Row(y)
		drow := dst.Pix[(y-src.Bounds.Y0)*dst.Stride : (y-src.Bounds.Y0)*dst.Stride+src.Width()]
		for i, v := range srow {
			drow[i] = 0xFFFF - v
		}
	}
	return dst
}

// AbsDiff returns |a - b| per pixel; the frames must have equal bounds.
// This is the temporal difference used by the registration stage.
func AbsDiff(a, b *Frame) (*Frame, error) {
	if a.Bounds != b.Bounds {
		return nil, errors.New("frame: AbsDiff bounds mismatch")
	}
	dst := New(a.Width(), a.Height())
	dst.Bounds = a.Bounds
	for y := a.Bounds.Y0; y < a.Bounds.Y1; y++ {
		ar, br := a.Row(y), b.Row(y)
		drow := dst.Pix[(y-a.Bounds.Y0)*dst.Stride : (y-a.Bounds.Y0)*dst.Stride+a.Width()]
		for i := range ar {
			if ar[i] >= br[i] {
				drow[i] = ar[i] - br[i]
			} else {
				drow[i] = br[i] - ar[i]
			}
		}
	}
	return dst, nil
}

// Normalize linearly rescales the frame's pixel range to [0, 65535].
// A constant frame maps to all-zero.
func Normalize(src *Frame) *Frame {
	lo, hi := src.MinMax()
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	if hi == lo {
		return dst
	}
	scale := 65535.0 / float64(hi-lo)
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		srow := src.Row(y)
		drow := dst.Pix[(y-src.Bounds.Y0)*dst.Stride : (y-src.Bounds.Y0)*dst.Stride+src.Width()]
		for i, v := range srow {
			drow[i] = clamp16(float64(v-lo) * scale)
		}
	}
	return dst
}

// BilinearAt samples f at the real-valued location (x, y) with bilinear
// interpolation and replicate borders.
func BilinearAt(f *Frame, x, y float64) float64 {
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	fx, fy := x-float64(x0), y-float64(y0)
	v00 := float64(f.AtClamped(x0, y0))
	v10 := float64(f.AtClamped(x0+1, y0))
	v01 := float64(f.AtClamped(x0, y0+1))
	v11 := float64(f.AtClamped(x0+1, y0+1))
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// Resize scales src to (w, h) with bilinear interpolation; this is the
// zoom-stage primitive.
func Resize(src *Frame, w, h int) *Frame {
	dst := New(w, h)
	if src.Pixels() == 0 || w == 0 || h == 0 {
		return dst
	}
	sx := float64(src.Width()) / float64(w)
	sy := float64(src.Height()) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			srcX := float64(src.Bounds.X0) + (float64(x)+0.5)*sx - 0.5
			srcY := float64(src.Bounds.Y0) + (float64(y)+0.5)*sy - 0.5
			dst.Pix[y*dst.Stride+x] = clamp16(BilinearAt(src, srcX, srcY))
		}
	}
	return dst
}

// Translate returns src shifted by the real-valued offset (dx, dy) using
// bilinear resampling; the registration stage aligns frames this way.
func Translate(src *Frame, dx, dy float64) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			v := BilinearAt(src, float64(x)-dx, float64(y)-dy)
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = clamp16(v)
		}
	}
	return dst
}

// Accumulator integrates frames for temporal averaging (the enhancement
// stage). It keeps 32-bit sums so up to 65536 16-bit frames can be
// integrated without overflow.
type Accumulator struct {
	sum    []uint32
	w, h   int
	frames int
}

// NewAccumulator returns an accumulator for frames of (w, h) pixels.
func NewAccumulator(w, h int) *Accumulator {
	return &Accumulator{sum: make([]uint32, w*h), w: w, h: h}
}

// Add integrates one frame; its dimensions must match the accumulator's.
func (a *Accumulator) Add(f *Frame) error {
	if f.Width() != a.w || f.Height() != a.h {
		return errors.New("frame: accumulator dimension mismatch")
	}
	i := 0
	for y := f.Bounds.Y0; y < f.Bounds.Y1; y++ {
		for _, v := range f.Row(y) {
			a.sum[i] += uint32(v)
			i++
		}
	}
	a.frames++
	return nil
}

// Frames returns how many frames have been integrated.
func (a *Accumulator) Frames() int { return a.frames }

// Average returns the running mean frame; nil before any Add.
func (a *Accumulator) Average() *Frame {
	if a.frames == 0 {
		return nil
	}
	out := New(a.w, a.h)
	for i, s := range a.sum {
		out.Pix[i] = uint16(s / uint32(a.frames))
	}
	return out
}

// Reset clears the accumulator.
func (a *Accumulator) Reset() {
	for i := range a.sum {
		a.sum[i] = 0
	}
	a.frames = 0
}

func clamp16(v float64) uint16 {
	if v <= 0 {
		return 0
	}
	if v >= 65535 {
		return 65535
	}
	return uint16(v + 0.5)
}

package frame

import (
	"errors"
	"math"
	"sync"
)

// The stencil kernels in this file are split into a fast interior path and a
// thin clamped border path. The interior path indexes Pix directly with
// hoisted strides — no per-pixel bounds clamps — while the border of radius
// r falls back to AtClamped. Both paths accumulate in exactly the same
// order, so the split output is bit-identical to the naive
// clamp-every-tap formulation (the equivalence tests in equiv_test.go and
// fuzz_test.go pin this).
//
// Every kernel also has a ...Into variant that reuses a caller-supplied
// destination when its geometry matches, so steady-state per-frame
// processing allocates nothing (see pool.go for the buffer pool the task
// layer feeds these from).

// Kernel is a square convolution kernel with odd side length.
type Kernel struct {
	Side int       // side length, odd
	W    []float64 // Side*Side weights, row-major
}

// NewKernel constructs a kernel from weights; len(w) must be an odd perfect
// square.
func NewKernel(w []float64) (Kernel, error) {
	side := int(math.Round(math.Sqrt(float64(len(w)))))
	if side*side != len(w) || side%2 == 0 || side == 0 {
		return Kernel{}, errors.New("frame: kernel must be an odd square")
	}
	return Kernel{Side: side, W: w}, nil
}

// ensureDst returns dst when it can hold a compact w x h image (Stride == w
// and exactly w*h pixels), rebounded to bounds; otherwise it allocates a
// fresh frame. Into-variants use it so callers can blindly thread a reused
// destination (possibly nil) through per-frame loops.
func ensureDst(dst *Frame, w, h int, bounds Rect) *Frame {
	if dst != nil && dst.Stride == w && len(dst.Pix) == w*h && w > 0 {
		dst.Bounds = bounds
		return dst
	}
	out := New(w, h)
	out.Bounds = bounds
	return out
}

// Convolve applies k to src with replicate borders and returns a new frame
// of the same bounds. Results are clamped to [0, 65535].
func Convolve(src *Frame, k Kernel) *Frame {
	return ConvolveInto(nil, src, k)
}

// ConvolveInto is Convolve writing into dst (reused when its geometry
// matches, freshly allocated otherwise; dst may be nil). dst must not alias
// src. It returns the destination actually used.
func ConvolveInto(dst, src *Frame, k Kernel) *Frame {
	dst = ensureDst(dst, src.Width(), src.Height(), src.Bounds)
	convolveRows(dst, src, k, src.Bounds.Y0, src.Bounds.Y1)
	return dst
}

// convolveRows convolves the absolute row range [yLo, yHi) of src into dst.
// The row range split lets the parallel variant stripe the same code.
func convolveRows(dst, src *Frame, k Kernel, yLo, yHi int) {
	b := src.Bounds
	r := k.Side / 2
	xLoI, xHiI := b.X0+r, b.X1-r // interior column span (may be empty)
	for y := yLo; y < yHi; y++ {
		d0 := (y - b.Y0) * dst.Stride
		drow := dst.Pix[d0 : d0+b.Width()]
		if y-b.Y0 >= r && b.Y1-y > r && xHiI > xLoI {
			for x := b.X0; x < xLoI; x++ {
				drow[x-b.X0] = convolveClamped(src, k, r, x, y)
			}
			base := (y-r-b.Y0)*src.Stride - b.X0 - r
			for x := xLoI; x < xHiI; x++ {
				acc := 0.0
				wi := 0
				off := base + x
				for dy := 0; dy < k.Side; dy++ {
					row := src.Pix[off : off+k.Side]
					for j, wv := range k.W[wi : wi+k.Side] {
						acc += wv * float64(row[j])
					}
					wi += k.Side
					off += src.Stride
				}
				drow[x-b.X0] = clamp16(acc)
			}
			for x := xHiI; x < b.X1; x++ {
				drow[x-b.X0] = convolveClamped(src, k, r, x, y)
			}
		} else {
			for x := b.X0; x < b.X1; x++ {
				drow[x-b.X0] = convolveClamped(src, k, r, x, y)
			}
		}
	}
}

// convolveClamped is the border path: every tap goes through AtClamped.
func convolveClamped(src *Frame, k Kernel, r, x, y int) uint16 {
	acc := 0.0
	wi := 0
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			acc += k.W[wi] * float64(src.AtClamped(x+dx, y+dy))
			wi++
		}
	}
	return clamp16(acc)
}

// GaussianKernel1D returns a normalized 1-D Gaussian of the given sigma,
// truncated at 3 sigma (minimum radius 1).
func GaussianKernel1D(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	w := make([]float64, 2*r+1)
	sum := 0.0
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		w[i+r] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// gaussCache memoizes GaussianKernel1D per sigma so the per-frame blur path
// allocates no kernel weights. The cache is capped: past 64 distinct sigmas
// (only tests sweep that many) new sigmas compute without being stored.
var (
	gaussMu    sync.Mutex
	gaussCache = make(map[float64][]float64)
)

func gaussianKernel(sigma float64) []float64 {
	gaussMu.Lock()
	w, ok := gaussCache[sigma]
	gaussMu.Unlock()
	if ok {
		return w
	}
	w = GaussianKernel1D(sigma)
	gaussMu.Lock()
	if len(gaussCache) < 64 {
		gaussCache[sigma] = w
	}
	gaussMu.Unlock()
	return w
}

// GaussianBlur applies a separable Gaussian of the given sigma (two 1-D
// passes), the standard pre-smoothing step of the ridge filter.
func GaussianBlur(src *Frame, sigma float64) *Frame {
	return GaussianBlurInto(nil, src, sigma)
}

// GaussianBlurInto is GaussianBlur writing into dst (reused when its
// geometry matches; dst may be nil, must not alias src). The intermediate
// horizontal-pass buffer comes from the shared pool, so a steady-state call
// with a reused dst allocates nothing. It returns the destination used.
func GaussianBlurInto(dst, src *Frame, sigma float64) *Frame {
	w := gaussianKernel(sigma)
	width, height := src.Width(), src.Height()
	dst = ensureDst(dst, width, height, src.Bounds)
	if width == 0 || height == 0 {
		return dst
	}
	tmp := BorrowUninit(width, height)
	tmp.Bounds = src.Bounds
	blurHRows(tmp, src, w, src.Bounds.Y0, src.Bounds.Y1)
	blurVRows(dst, tmp, w, src.Bounds.Y0, src.Bounds.Y1)
	Release(tmp)
	return dst
}

// blurHRows runs the horizontal 1-D pass over the absolute row range
// [yLo, yHi) of src into out.
func blurHRows(out, src *Frame, w []float64, yLo, yHi int) {
	b := src.Bounds
	r := len(w) / 2
	width := b.Width()
	xLoI, xHiI := b.X0+r, b.X1-r
	for y := yLo; y < yHi; y++ {
		o0 := (y - b.Y0) * out.Stride
		orow := out.Pix[o0 : o0+width]
		s0 := (y - b.Y0) * src.Stride
		srow := src.Pix[s0 : s0+width]
		if xHiI > xLoI {
			for x := b.X0; x < xLoI; x++ {
				orow[x-b.X0] = blurHClamped(src, w, r, x, y)
			}
			for x := xLoI; x < xHiI; x++ {
				acc := 0.0
				off := x - r - b.X0
				for i, wv := range w {
					acc += wv * float64(srow[off+i])
				}
				orow[x-b.X0] = clamp16(acc)
			}
			for x := xHiI; x < b.X1; x++ {
				orow[x-b.X0] = blurHClamped(src, w, r, x, y)
			}
		} else {
			for x := b.X0; x < b.X1; x++ {
				orow[x-b.X0] = blurHClamped(src, w, r, x, y)
			}
		}
	}
}

func blurHClamped(src *Frame, w []float64, r, x, y int) uint16 {
	acc := 0.0
	for i := -r; i <= r; i++ {
		acc += w[i+r] * float64(src.AtClamped(x+i, y))
	}
	return clamp16(acc)
}

// blurVRows runs the vertical 1-D pass over the absolute row range
// [yLo, yHi) of src into out.
func blurVRows(out, src *Frame, w []float64, yLo, yHi int) {
	b := src.Bounds
	r := len(w) / 2
	width := b.Width()
	for y := yLo; y < yHi; y++ {
		o0 := (y - b.Y0) * out.Stride
		orow := out.Pix[o0 : o0+width]
		if y-b.Y0 >= r && b.Y1-y > r {
			base := (y - r - b.Y0) * src.Stride
			for xx := 0; xx < width; xx++ {
				acc := 0.0
				off := base + xx
				for _, wv := range w {
					acc += wv * float64(src.Pix[off])
					off += src.Stride
				}
				orow[xx] = clamp16(acc)
			}
		} else {
			for x := b.X0; x < b.X1; x++ {
				acc := 0.0
				for i := -r; i <= r; i++ {
					acc += w[i+r] * float64(src.AtClamped(x, y+i))
				}
				orow[x-b.X0] = clamp16(acc)
			}
		}
	}
}

// Hessian holds the three independent second-derivative responses at a pixel.
type Hessian struct {
	XX, YY, XY float64
}

// HessianAt computes central-difference second derivatives at (x, y) with
// replicate borders. Interior pixels (at least one pixel from every edge)
// take a direct-indexing fast path.
func HessianAt(f *Frame, x, y int) Hessian {
	b := f.Bounds
	if x > b.X0 && x < b.X1-1 && y > b.Y0 && y < b.Y1-1 {
		i := (y-b.Y0)*f.Stride + (x - b.X0)
		s := f.Stride
		c := float64(f.Pix[i])
		return Hessian{
			XX: float64(f.Pix[i+1]) - 2*c + float64(f.Pix[i-1]),
			YY: float64(f.Pix[i+s]) - 2*c + float64(f.Pix[i-s]),
			XY: (float64(f.Pix[i+s+1]) - float64(f.Pix[i+s-1]) -
				float64(f.Pix[i-s+1]) + float64(f.Pix[i-s-1])) / 4,
		}
	}
	c := float64(f.AtClamped(x, y))
	return Hessian{
		XX: float64(f.AtClamped(x+1, y)) - 2*c + float64(f.AtClamped(x-1, y)),
		YY: float64(f.AtClamped(x, y+1)) - 2*c + float64(f.AtClamped(x, y-1)),
		XY: (float64(f.AtClamped(x+1, y+1)) - float64(f.AtClamped(x-1, y+1)) -
			float64(f.AtClamped(x+1, y-1)) + float64(f.AtClamped(x-1, y-1))) / 4,
	}
}

// Eigenvalues returns the eigenvalues of the 2x2 symmetric Hessian, ordered
// |l1| >= |l2|. For a dark line on a bright background the principal
// eigenvalue l1 is large and positive.
func (h Hessian) Eigenvalues() (l1, l2 float64) {
	tr := h.XX + h.YY
	det := h.XX*h.YY - h.XY*h.XY
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	a, b := tr/2+disc, tr/2-disc
	if math.Abs(a) >= math.Abs(b) {
		return a, b
	}
	return b, a
}

// Gradient returns central-difference first derivatives at (x, y), with a
// direct-indexing fast path for interior pixels.
func Gradient(f *Frame, x, y int) (gx, gy float64) {
	b := f.Bounds
	if x > b.X0 && x < b.X1-1 && y > b.Y0 && y < b.Y1-1 {
		i := (y-b.Y0)*f.Stride + (x - b.X0)
		gx = (float64(f.Pix[i+1]) - float64(f.Pix[i-1])) / 2
		gy = (float64(f.Pix[i+f.Stride]) - float64(f.Pix[i-f.Stride])) / 2
		return gx, gy
	}
	gx = (float64(f.AtClamped(x+1, y)) - float64(f.AtClamped(x-1, y))) / 2
	gy = (float64(f.AtClamped(x, y+1)) - float64(f.AtClamped(x, y-1))) / 2
	return gx, gy
}

// Threshold returns a frame where pixels >= t map to 65535 and others to 0.
func Threshold(src *Frame, t uint16) *Frame {
	return ThresholdInto(nil, src, t)
}

// ThresholdInto is Threshold with destination reuse (dst may be nil, must
// not alias src); it returns the destination used.
func ThresholdInto(dst, src *Frame, t uint16) *Frame {
	dst = ensureDst(dst, src.Width(), src.Height(), src.Bounds)
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		srow := src.Row(y)
		d0 := (y - src.Bounds.Y0) * dst.Stride
		drow := dst.Pix[d0 : d0+src.Width()]
		for i, v := range srow {
			if v >= t {
				drow[i] = 0xFFFF
			} else {
				drow[i] = 0
			}
		}
	}
	return dst
}

// Invert returns 65535 - pixel for every pixel (dark features become bright).
func Invert(src *Frame) *Frame {
	return InvertInto(nil, src)
}

// InvertInto is Invert with destination reuse (dst may be nil, must not
// alias src); it returns the destination used.
func InvertInto(dst, src *Frame) *Frame {
	dst = ensureDst(dst, src.Width(), src.Height(), src.Bounds)
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		srow := src.Row(y)
		d0 := (y - src.Bounds.Y0) * dst.Stride
		drow := dst.Pix[d0 : d0+src.Width()]
		for i, v := range srow {
			drow[i] = 0xFFFF - v
		}
	}
	return dst
}

// AbsDiff returns |a - b| per pixel; the frames must have equal bounds.
// This is the temporal difference used by the registration stage.
func AbsDiff(a, b *Frame) (*Frame, error) {
	return AbsDiffInto(nil, a, b)
}

// AbsDiffInto is AbsDiff with destination reuse (dst may be nil, must not
// alias a or b); it returns the destination used.
func AbsDiffInto(dst, a, b *Frame) (*Frame, error) {
	if a.Bounds != b.Bounds {
		return nil, errors.New("frame: AbsDiff bounds mismatch")
	}
	dst = ensureDst(dst, a.Width(), a.Height(), a.Bounds)
	for y := a.Bounds.Y0; y < a.Bounds.Y1; y++ {
		ar, br := a.Row(y), b.Row(y)
		d0 := (y - a.Bounds.Y0) * dst.Stride
		drow := dst.Pix[d0 : d0+a.Width()]
		for i := range ar {
			if ar[i] >= br[i] {
				drow[i] = ar[i] - br[i]
			} else {
				drow[i] = br[i] - ar[i]
			}
		}
	}
	return dst, nil
}

// Normalize linearly rescales the frame's pixel range to [0, 65535].
// A constant frame maps to all-zero.
func Normalize(src *Frame) *Frame {
	lo, hi := src.MinMax()
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	if hi == lo {
		return dst
	}
	scale := 65535.0 / float64(hi-lo)
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		srow := src.Row(y)
		drow := dst.Pix[(y-src.Bounds.Y0)*dst.Stride : (y-src.Bounds.Y0)*dst.Stride+src.Width()]
		for i, v := range srow {
			drow[i] = clamp16(float64(v-lo) * scale)
		}
	}
	return dst
}

// BilinearAt samples f at the real-valued location (x, y) with bilinear
// interpolation and replicate borders. The four taps take a direct-indexing
// fast path when the 2x2 support lies inside the frame.
func BilinearAt(f *Frame, x, y float64) float64 {
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	fx, fy := x-float64(x0), y-float64(y0)
	b := f.Bounds
	var v00, v10, v01, v11 float64
	if x0 >= b.X0 && x0+1 < b.X1 && y0 >= b.Y0 && y0+1 < b.Y1 {
		i := (y0-b.Y0)*f.Stride + (x0 - b.X0)
		v00 = float64(f.Pix[i])
		v10 = float64(f.Pix[i+1])
		v01 = float64(f.Pix[i+f.Stride])
		v11 = float64(f.Pix[i+f.Stride+1])
	} else {
		v00 = float64(f.AtClamped(x0, y0))
		v10 = float64(f.AtClamped(x0+1, y0))
		v01 = float64(f.AtClamped(x0, y0+1))
		v11 = float64(f.AtClamped(x0+1, y0+1))
	}
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// Resize scales src to (w, h) with bilinear interpolation; this is the
// zoom-stage primitive.
func Resize(src *Frame, w, h int) *Frame {
	return ResizeInto(nil, src, w, h)
}

// ResizeInto is Resize with destination reuse (dst may be nil, must not
// alias src); it returns the destination used.
func ResizeInto(dst, src *Frame, w, h int) *Frame {
	dst = ensureDst(dst, w, h, Rect{0, 0, w, h})
	if src.Pixels() == 0 || w == 0 || h == 0 {
		clear(dst.Pix)
		return dst
	}
	resizeRows(dst, src, 0, h)
	return dst
}

// resizeRows fills destination rows [yLo, yHi) of the bilinear resample.
func resizeRows(dst, src *Frame, yLo, yHi int) {
	w, h := dst.Width(), dst.Height()
	sx := float64(src.Width()) / float64(w)
	sy := float64(src.Height()) / float64(h)
	for y := yLo; y < yHi; y++ {
		drow := dst.Pix[y*dst.Stride : y*dst.Stride+w]
		srcY := float64(src.Bounds.Y0) + (float64(y)+0.5)*sy - 0.5
		for x := 0; x < w; x++ {
			srcX := float64(src.Bounds.X0) + (float64(x)+0.5)*sx - 0.5
			drow[x] = clamp16(BilinearAt(src, srcX, srcY))
		}
	}
}

// Translate returns src shifted by the real-valued offset (dx, dy) using
// bilinear resampling; the registration stage aligns frames this way.
func Translate(src *Frame, dx, dy float64) *Frame {
	return TranslateInto(nil, src, dx, dy)
}

// TranslateInto is Translate with destination reuse (dst may be nil, must
// not alias src); it returns the destination used.
func TranslateInto(dst, src *Frame, dx, dy float64) *Frame {
	dst = ensureDst(dst, src.Width(), src.Height(), src.Bounds)
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		d0 := (y - src.Bounds.Y0) * dst.Stride
		drow := dst.Pix[d0 : d0+src.Width()]
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			v := BilinearAt(src, float64(x)-dx, float64(y)-dy)
			drow[x-src.Bounds.X0] = clamp16(v)
		}
	}
	return dst
}

// Accumulator integrates frames for temporal averaging (the enhancement
// stage). It keeps 32-bit sums so up to 65536 16-bit frames can be
// integrated without overflow.
type Accumulator struct {
	sum    []uint32
	w, h   int
	frames int
}

// NewAccumulator returns an accumulator for frames of (w, h) pixels.
func NewAccumulator(w, h int) *Accumulator {
	return &Accumulator{sum: make([]uint32, w*h), w: w, h: h}
}

// Add integrates one frame; its dimensions must match the accumulator's.
func (a *Accumulator) Add(f *Frame) error {
	if f.Width() != a.w || f.Height() != a.h {
		return errors.New("frame: accumulator dimension mismatch")
	}
	i := 0
	for y := f.Bounds.Y0; y < f.Bounds.Y1; y++ {
		for _, v := range f.Row(y) {
			a.sum[i] += uint32(v)
			i++
		}
	}
	a.frames++
	return nil
}

// Frames returns how many frames have been integrated.
func (a *Accumulator) Frames() int { return a.frames }

// Average returns the running mean frame; nil before any Add.
func (a *Accumulator) Average() *Frame {
	return a.AverageInto(nil)
}

// AverageInto is Average with destination reuse (dst may be nil); it
// returns the destination used, or nil before any Add.
func (a *Accumulator) AverageInto(dst *Frame) *Frame {
	if a.frames == 0 {
		return nil
	}
	dst = ensureDst(dst, a.w, a.h, Rect{0, 0, a.w, a.h})
	n := uint32(a.frames)
	for i, s := range a.sum {
		dst.Pix[i] = uint16(s / n)
	}
	return dst
}

// Reset clears the accumulator.
func (a *Accumulator) Reset() {
	for i := range a.sum {
		a.sum[i] = 0
	}
	a.frames = 0
}

func clamp16(v float64) uint16 {
	if v <= 0 {
		return 0
	}
	if v >= 65535 {
		return 65535
	}
	return uint16(v + 0.5)
}

package frame

// Component is a 4-connected region of non-zero pixels, as produced by
// LabelComponents. The marker-extraction task scores components as candidate
// balloon markers.
type Component struct {
	Label    int     // 1-based component id
	Size     int     // pixel count
	BBox     Rect    // tight bounding box
	CX, CY   float64 // centroid
	MeanVal  float64 // mean source-pixel value over the component
	Compact  float64 // Size / BBox.Area(); 1.0 for a filled rectangle
	Elongate float64 // max(w,h)/min(w,h) of the bounding box
}

// LabelComponents finds 4-connected components of non-zero pixels in mask,
// computing statistics against the pixel values of src (which must share
// mask's bounds; pass mask itself to use binary values). Components smaller
// than minSize are discarded.
func LabelComponents(mask, src *Frame, minSize int) []Component {
	if src == nil {
		src = mask
	}
	b := mask.Bounds
	w, h := b.Width(), b.Height()
	if w == 0 || h == 0 {
		return nil
	}
	labels := make([]int32, w*h)
	var comps []Component
	// Iterative flood fill with an explicit stack to avoid recursion depth
	// limits on large blobs.
	stack := make([][2]int, 0, 64)
	next := int32(1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if labels[y*w+x] != 0 || mask.At(b.X0+x, b.Y0+y) == 0 {
				continue
			}
			id := next
			next++
			c := Component{Label: int(id), BBox: Rect{b.X0 + x, b.Y0 + y, b.X0 + x + 1, b.Y0 + y + 1}}
			var sumX, sumY, sumV float64
			stack = stack[:0]
			stack = append(stack, [2]int{x, y})
			labels[y*w+x] = id
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				px, py := p[0], p[1]
				gx, gy := b.X0+px, b.Y0+py
				c.Size++
				sumX += float64(gx)
				sumY += float64(gy)
				sumV += float64(src.AtClamped(gx, gy))
				c.BBox = c.BBox.Union(Rect{gx, gy, gx + 1, gy + 1})
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := px+d[0], py+d[1]
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					if labels[ny*w+nx] != 0 || mask.At(b.X0+nx, b.Y0+ny) == 0 {
						continue
					}
					labels[ny*w+nx] = id
					stack = append(stack, [2]int{nx, ny})
				}
			}
			if c.Size < minSize {
				continue
			}
			c.CX = sumX / float64(c.Size)
			c.CY = sumY / float64(c.Size)
			c.MeanVal = sumV / float64(c.Size)
			if a := c.BBox.Area(); a > 0 {
				c.Compact = float64(c.Size) / float64(a)
			}
			bw, bh := c.BBox.Width(), c.BBox.Height()
			if bw > 0 && bh > 0 {
				if bw > bh {
					c.Elongate = float64(bw) / float64(bh)
				} else {
					c.Elongate = float64(bh) / float64(bw)
				}
			}
			comps = append(comps, c)
		}
	}
	return comps
}

package frame

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// WritePGM writes f as a binary 16-bit PGM (P5, maxval 65535, big-endian
// samples per the Netpbm spec) so enhanced outputs from the examples can be
// inspected with any image viewer.
func WritePGM(w io.Writer, f *Frame) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n65535\n", f.Width(), f.Height()); err != nil {
		return err
	}
	buf := make([]byte, 2*f.Width())
	for y := f.Bounds.Y0; y < f.Bounds.Y1; y++ {
		row := f.Row(y)
		for i, v := range row {
			binary.BigEndian.PutUint16(buf[2*i:], v)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SavePGM writes f to the named file as 16-bit PGM.
func SavePGM(path string, f *Frame) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return WritePGM(file, f)
}

// ReadPGM parses a binary 16-bit PGM produced by WritePGM.
func ReadPGM(r io.Reader) (*Frame, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxval int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxval); err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, errors.New("frame: not a P5 PGM")
	}
	if maxval != 65535 {
		return nil, errors.New("frame: only 16-bit PGM supported")
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, errors.New("frame: unreasonable PGM dimensions")
	}
	// Exactly one whitespace byte separates the header from the raster.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	f := New(w, h)
	buf := make([]byte, 2*w)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		row := f.Pix[y*f.Stride : y*f.Stride+w]
		for i := range row {
			row[i] = binary.BigEndian.Uint16(buf[2*i:])
		}
	}
	return f, nil
}

// RenderASCII returns a coarse ASCII rendering of f, downsampled to at most
// (cols, rows) characters, dark pixels printed dense. Useful for terminal
// demos in the examples.
func RenderASCII(f *Frame, cols, rows int) string {
	if f.Pixels() == 0 || cols <= 0 || rows <= 0 {
		return ""
	}
	ramp := []byte("@%#*+=-:. ") // dark .. bright
	small := Resize(f, cols, rows)
	lo, hi := small.MinMax()
	span := float64(hi-lo) + 1
	out := make([]byte, 0, (cols+1)*rows)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			v := float64(small.At(x, y)-lo) / span
			idx := int(v * float64(len(ramp)))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			out = append(out, ramp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}

package frame

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	f := New(7, 5)
	for y := 0; y < 5; y++ {
		for x := 0; x < 7; x++ {
			f.Set(x, y, uint16(1000*y+x))
		}
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("PGM round trip lost data")
	}
}

func TestPGMHeader(t *testing.T) {
	f := New(3, 2)
	var buf bytes.Buffer
	if err := WritePGM(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n3 2\n65535\n") {
		t.Fatalf("bad header: %q", buf.String()[:20])
	}
}

func TestReadPGMRejectsBadMagic(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P2\n1 1\n65535\n0")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestReadPGMRejects8Bit(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P5\n1 1\n255\n\x00")); err == nil {
		t.Fatal("expected maxval error")
	}
}

func TestReadPGMRejectsBadDims(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P5\n0 5\n65535\n")); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestReadPGMTruncated(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P5\n4 4\n65535\n\x00\x01")); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestSavePGM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.pgm")
	f := New(4, 4)
	f.Fill(9999)
	if err := SavePGM(path, f); err != nil {
		t.Fatal(err)
	}
	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	g, err := ReadPGM(file)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("file round trip lost data")
	}
}

func TestRenderASCII(t *testing.T) {
	f := New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 32; x++ {
			f.Set(x, y, 60000) // bright left half
		}
	}
	s := RenderASCII(f, 16, 8)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 8 || len(lines[0]) != 16 {
		t.Fatalf("ASCII geometry wrong: %d lines, %d cols", len(lines), len(lines[0]))
	}
	// Bright left should use the light end of the ramp, dark right the dense end.
	if lines[4][0] == lines[4][15] {
		t.Fatal("ASCII render shows no contrast")
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	var empty Frame
	if RenderASCII(&empty, 10, 10) != "" {
		t.Fatal("empty frame must render empty string")
	}
	if RenderASCII(New(4, 4), 0, 3) != "" {
		t.Fatal("zero cols must render empty string")
	}
}

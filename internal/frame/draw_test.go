package frame

import "testing"

func TestDrawRectOutline(t *testing.T) {
	f := New(10, 10)
	DrawRectOutline(f, R(2, 3, 7, 8), 999)
	// Corners and edges set, interior untouched.
	for _, p := range [][2]int{{2, 3}, {6, 3}, {2, 7}, {6, 7}, {4, 3}, {2, 5}} {
		if f.At(p[0], p[1]) != 999 {
			t.Fatalf("outline missing at %v", p)
		}
	}
	if f.At(4, 5) != 0 {
		t.Fatal("interior must stay untouched")
	}
}

func TestDrawRectOutlineClipped(t *testing.T) {
	f := New(8, 8)
	DrawRectOutline(f, R(-5, -5, 20, 20), 100) // fully clipped to the frame
	if f.At(0, 0) != 100 || f.At(7, 7) != 100 {
		t.Fatal("clipped outline must hug the frame border")
	}
	DrawRectOutline(f, R(50, 50, 60, 60), 100) // disjoint: no-op, no panic
}

func TestDrawCross(t *testing.T) {
	f := New(9, 9)
	DrawCross(f, 4, 4, 2, 777)
	for d := -2; d <= 2; d++ {
		if f.At(4+d, 4) != 777 || f.At(4, 4+d) != 777 {
			t.Fatalf("cross arm missing at offset %d", d)
		}
	}
	if f.At(3, 3) != 0 {
		t.Fatal("diagonal must stay untouched")
	}
	DrawCross(f, 0, 0, 5, 1) // partially off-frame: no panic
}

func TestDrawLineHorizontalVertical(t *testing.T) {
	f := New(10, 10)
	DrawLine(f, 1, 2, 8, 2, 50)
	for x := 1; x <= 8; x++ {
		if f.At(x, 2) != 50 {
			t.Fatalf("horizontal line missing at %d", x)
		}
	}
	DrawLine(f, 3, 0, 3, 9, 60)
	for y := 0; y <= 9; y++ {
		if f.At(3, y) != 60 {
			t.Fatalf("vertical line missing at %d", y)
		}
	}
}

func TestDrawLineDiagonalEndpoints(t *testing.T) {
	f := New(16, 16)
	DrawLine(f, 2, 3, 13, 11, 90)
	if f.At(2, 3) != 90 || f.At(13, 11) != 90 {
		t.Fatal("line endpoints missing")
	}
	// The line must be connected-ish: count pixels along it.
	n := 0
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if f.At(x, y) == 90 {
				n++
			}
		}
	}
	if n < 11 {
		t.Fatalf("diagonal line too sparse: %d pixels", n)
	}
}

func TestDrawLineReverseDirection(t *testing.T) {
	a, b := New(10, 10), New(10, 10)
	DrawLine(a, 1, 1, 8, 6, 5)
	DrawLine(b, 8, 6, 1, 1, 5)
	if !a.Equal(b) {
		t.Fatal("line must be direction independent")
	}
}

package frame

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := R(1, 2, 5, 7)
	if r.Width() != 4 || r.Height() != 5 || r.Area() != 20 {
		t.Fatalf("rect geometry wrong: %v", r)
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !r.Contains(1, 2) || r.Contains(5, 7) {
		t.Fatal("Contains must be half-open")
	}
}

func TestRectEmpty(t *testing.T) {
	r := R(5, 5, 5, 9)
	if !r.Empty() || r.Width() != 0 {
		t.Fatalf("degenerate rect: %v", r)
	}
	inv := R(5, 5, 2, 2)
	if inv.Width() != 0 || inv.Height() != 0 {
		t.Fatal("inverted rect must report zero extents")
	}
}

func TestRectIntersect(t *testing.T) {
	a, b := R(0, 0, 10, 10), R(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	disjoint := a.Intersect(R(20, 20, 30, 30))
	if !disjoint.Empty() {
		t.Fatalf("disjoint intersect not empty: %v", disjoint)
	}
}

func TestRectUnion(t *testing.T) {
	a, b := R(0, 0, 2, 2), R(5, 5, 6, 6)
	if got := a.Union(b); got != R(0, 0, 6, 6) {
		t.Fatalf("Union = %v", got)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Fatalf("empty union identity broken: %v", got)
	}
	if got := b.Union(Rect{}); got != b {
		t.Fatalf("union with empty identity broken: %v", got)
	}
}

func TestRectInset(t *testing.T) {
	r := R(0, 0, 10, 10).Inset(2)
	if r != R(2, 2, 8, 8) {
		t.Fatalf("Inset = %v", r)
	}
	collapsed := R(0, 0, 4, 4).Inset(3)
	if !collapsed.Empty() {
		t.Fatalf("over-inset must collapse: %v", collapsed)
	}
}

func TestRectClampTo(t *testing.T) {
	bounds := R(0, 0, 100, 100)
	r := R(-10, 95, 10, 115).ClampTo(bounds)
	if r.Width() != 20 || r.Height() != 20 {
		t.Fatalf("ClampTo must preserve size: %v", r)
	}
	if r.X0 < 0 || r.Y1 > 100 {
		t.Fatalf("ClampTo out of bounds: %v", r)
	}
	big := R(0, 0, 200, 50).ClampTo(bounds)
	if big.Width() != 100 {
		t.Fatalf("oversized rect must shrink: %v", big)
	}
}

func TestNewFrame(t *testing.T) {
	f := New(8, 4)
	if f.Width() != 8 || f.Height() != 4 || f.Pixels() != 32 {
		t.Fatalf("frame geometry wrong")
	}
	if f.SizeBytes() != 64 {
		t.Fatalf("SizeBytes = %d, want 64", f.SizeBytes())
	}
}

func TestNewFramePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromPix(t *testing.T) {
	pix := []uint16{1, 2, 3, 4, 5, 6}
	f, err := FromPix(pix, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %d, want 6", f.At(2, 1))
	}
	if _, err := FromPix(pix, 4, 2); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestAtSetBounds(t *testing.T) {
	f := New(4, 4)
	f.Set(1, 2, 77)
	if f.At(1, 2) != 77 {
		t.Fatal("Set/At round trip failed")
	}
	if f.At(-1, 0) != 0 || f.At(4, 0) != 0 {
		t.Fatal("out-of-bounds At must return 0")
	}
	f.Set(10, 10, 9) // must not panic
}

func TestAtClamped(t *testing.T) {
	f := New(3, 3)
	f.Set(0, 0, 10)
	f.Set(2, 2, 20)
	if f.AtClamped(-5, -5) != 10 {
		t.Fatal("clamp to top-left failed")
	}
	if f.AtClamped(9, 9) != 20 {
		t.Fatal("clamp to bottom-right failed")
	}
	var empty Frame
	if empty.AtClamped(0, 0) != 0 {
		t.Fatal("empty frame AtClamped must be 0")
	}
}

func TestFillAndMeanValue(t *testing.T) {
	f := New(5, 5)
	f.Fill(100)
	if f.MeanValue() != 100 {
		t.Fatalf("MeanValue = %v", f.MeanValue())
	}
	var empty Frame
	if empty.MeanValue() != 0 {
		t.Fatal("empty MeanValue must be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(4, 4)
	f.Set(2, 2, 9)
	g := f.Clone()
	g.Set(2, 2, 5)
	if f.At(2, 2) != 9 {
		t.Fatal("Clone must not share storage")
	}
	if !f.Equal(f.Clone()) {
		t.Fatal("Clone must be Equal to source")
	}
}

func TestSubFrameSharesStorage(t *testing.T) {
	f := New(10, 10)
	sub := f.SubFrame(R(2, 3, 6, 8))
	sub.Set(2, 3, 42)
	if f.At(2, 3) != 42 {
		t.Fatal("SubFrame must alias parent pixels")
	}
	if sub.Width() != 4 || sub.Height() != 5 {
		t.Fatalf("SubFrame geometry: %v", sub.Bounds)
	}
	// Clipped to parent.
	clipped := f.SubFrame(R(8, 8, 20, 20))
	if clipped.Width() != 2 {
		t.Fatalf("SubFrame clipping failed: %v", clipped.Bounds)
	}
	empty := f.SubFrame(R(50, 50, 60, 60))
	if !empty.Bounds.Empty() {
		t.Fatal("disjoint SubFrame must be empty")
	}
}

func TestSubFrameCloneCompacts(t *testing.T) {
	f := New(10, 10)
	f.Set(5, 5, 123)
	sub := f.SubFrame(R(4, 4, 8, 8))
	c := sub.Clone()
	if c.At(5, 5) != 123 {
		t.Fatalf("cloned subframe lost pixel: %d", c.At(5, 5))
	}
	if c.Stride != 4 {
		t.Fatalf("clone stride = %d, want compact 4", c.Stride)
	}
}

func TestRow(t *testing.T) {
	f := New(3, 2)
	f.Set(1, 1, 7)
	row := f.Row(1)
	if len(row) != 3 || row[1] != 7 {
		t.Fatalf("Row = %v", row)
	}
	if f.Row(5) != nil || f.Row(-1) != nil {
		t.Fatal("out-of-range Row must be nil")
	}
}

func TestMinMax(t *testing.T) {
	f := New(2, 2)
	f.Set(0, 0, 5)
	f.Set(1, 1, 500)
	lo, hi := f.MinMax()
	if lo != 0 || hi != 500 {
		t.Fatalf("MinMax = %d, %d", lo, hi)
	}
	var empty Frame
	lo, hi = empty.MinMax()
	if lo != 0 || hi != 0 {
		t.Fatal("empty MinMax must be 0,0")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	if !a.Equal(b) {
		t.Fatal("identical frames not Equal")
	}
	b.Set(0, 0, 1)
	if a.Equal(b) {
		t.Fatal("different frames reported Equal")
	}
	c := New(3, 2)
	if a.Equal(c) {
		t.Fatal("different bounds reported Equal")
	}
}

func TestNewKernelValidation(t *testing.T) {
	if _, err := NewKernel(make([]float64, 9)); err != nil {
		t.Fatalf("3x3 kernel rejected: %v", err)
	}
	if _, err := NewKernel(make([]float64, 4)); err == nil {
		t.Fatal("2x2 kernel accepted")
	}
	if _, err := NewKernel(make([]float64, 8)); err == nil {
		t.Fatal("non-square kernel accepted")
	}
	if _, err := NewKernel(nil); err == nil {
		t.Fatal("empty kernel accepted")
	}
}

func TestConvolveIdentity(t *testing.T) {
	f := New(6, 6)
	f.Set(3, 3, 1000)
	id, _ := NewKernel([]float64{0, 0, 0, 0, 1, 0, 0, 0, 0})
	g := Convolve(f, id)
	if !f.Equal(g) {
		t.Fatal("identity kernel must preserve the frame")
	}
}

func TestConvolveBoxSmooths(t *testing.T) {
	f := New(5, 5)
	f.Set(2, 2, 900)
	box, _ := NewKernel([]float64{
		1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9,
	})
	g := Convolve(f, box)
	if g.At(2, 2) != 100 {
		t.Fatalf("box blur center = %d, want 100", g.At(2, 2))
	}
	if g.At(1, 1) != 100 {
		t.Fatalf("box blur neighbor = %d, want 100", g.At(1, 1))
	}
}

func TestConvolveClamps(t *testing.T) {
	f := New(3, 3)
	f.Fill(60000)
	gain, _ := NewKernel([]float64{0, 0, 0, 0, 2, 0, 0, 0, 0})
	g := Convolve(f, gain)
	if g.At(1, 1) != 65535 {
		t.Fatalf("convolution must clamp: %d", g.At(1, 1))
	}
}

func TestGaussianKernel1DNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5} {
		w := GaussianKernel1D(sigma)
		if len(w)%2 != 1 {
			t.Fatalf("kernel length must be odd: %d", len(w))
		}
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("kernel sum = %v", sum)
		}
	}
	if w := GaussianKernel1D(0); len(w) != 1 || w[0] != 1 {
		t.Fatalf("sigma<=0 must give identity: %v", w)
	}
}

func TestGaussianBlurPreservesFlat(t *testing.T) {
	f := New(16, 16)
	f.Fill(5000)
	g := GaussianBlur(f, 1.5)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if d := int(g.At(x, y)) - 5000; d < -1 || d > 1 {
				t.Fatalf("flat field changed at (%d,%d): %d", x, y, g.At(x, y))
			}
		}
	}
}

func TestGaussianBlurSpreadsImpulse(t *testing.T) {
	f := New(11, 11)
	f.Set(5, 5, 10000)
	g := GaussianBlur(f, 1)
	if g.At(5, 5) >= 10000 {
		t.Fatal("peak must decrease")
	}
	if g.At(4, 5) == 0 || g.At(5, 4) == 0 {
		t.Fatal("energy must spread to neighbors")
	}
}

func TestHessianOnRidge(t *testing.T) {
	// A vertical dark line on a bright background: XX strongly positive
	// (second derivative across the line of an inverted valley), YY ~ 0.
	f := New(9, 9)
	f.Fill(1000)
	for y := 0; y < 9; y++ {
		f.Set(4, y, 100)
	}
	h := HessianAt(f, 4, 4)
	if h.XX <= 0 {
		t.Fatalf("XX = %v, want > 0 across dark line", h.XX)
	}
	if math.Abs(h.YY) > 1e-9 {
		t.Fatalf("YY = %v, want 0 along line", h.YY)
	}
	l1, l2 := h.Eigenvalues()
	if math.Abs(l1) < math.Abs(l2) {
		t.Fatal("eigenvalues must be ordered by magnitude")
	}
	if l1 <= 0 {
		t.Fatalf("principal eigenvalue = %v, want positive for dark ridge", l1)
	}
}

func TestHessianEigenvaluesSymmetric(t *testing.T) {
	h := Hessian{XX: 2, YY: 2, XY: 0}
	l1, l2 := h.Eigenvalues()
	if l1 != 2 || l2 != 2 {
		t.Fatalf("eigenvalues = %v, %v; want 2, 2", l1, l2)
	}
	h = Hessian{XX: 0, YY: 0, XY: 3}
	l1, l2 = h.Eigenvalues()
	if math.Abs(math.Abs(l1)-3) > 1e-12 || math.Abs(math.Abs(l2)-3) > 1e-12 {
		t.Fatalf("pure shear eigenvalues = %v, %v; want ±3", l1, l2)
	}
}

func TestGradient(t *testing.T) {
	f := New(5, 5)
	// Linear ramp: value = 10*x.
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			f.Set(x, y, uint16(10*x))
		}
	}
	gx, gy := Gradient(f, 2, 2)
	if gx != 10 || gy != 0 {
		t.Fatalf("gradient = %v, %v; want 10, 0", gx, gy)
	}
}

func TestThreshold(t *testing.T) {
	f := New(2, 1)
	f.Set(0, 0, 100)
	f.Set(1, 0, 99)
	g := Threshold(f, 100)
	if g.At(0, 0) != 0xFFFF || g.At(1, 0) != 0 {
		t.Fatalf("threshold wrong: %d, %d", g.At(0, 0), g.At(1, 0))
	}
}

func TestInvert(t *testing.T) {
	f := New(1, 1)
	f.Set(0, 0, 1)
	g := Invert(f)
	if g.At(0, 0) != 0xFFFE {
		t.Fatalf("Invert = %d", g.At(0, 0))
	}
	if Invert(g).At(0, 0) != 1 {
		t.Fatal("double inversion must be identity")
	}
}

func TestAbsDiff(t *testing.T) {
	a, b := New(2, 1), New(2, 1)
	a.Set(0, 0, 10)
	b.Set(0, 0, 25)
	a.Set(1, 0, 30)
	b.Set(1, 0, 5)
	d, err := AbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 15 || d.At(1, 0) != 25 {
		t.Fatalf("AbsDiff = %d, %d", d.At(0, 0), d.At(1, 0))
	}
	if _, err := AbsDiff(a, New(3, 1)); err == nil {
		t.Fatal("expected bounds mismatch error")
	}
}

func TestNormalize(t *testing.T) {
	f := New(2, 1)
	f.Set(0, 0, 100)
	f.Set(1, 0, 200)
	g := Normalize(f)
	if g.At(0, 0) != 0 || g.At(1, 0) != 65535 {
		t.Fatalf("Normalize = %d, %d", g.At(0, 0), g.At(1, 0))
	}
	flat := New(2, 1)
	flat.Fill(7)
	if n := Normalize(flat); n.At(0, 0) != 0 {
		t.Fatal("constant frame must normalize to zero")
	}
}

func TestBilinearAt(t *testing.T) {
	f := New(2, 2)
	f.Set(0, 0, 0)
	f.Set(1, 0, 100)
	f.Set(0, 1, 200)
	f.Set(1, 1, 300)
	if v := BilinearAt(f, 0.5, 0.5); math.Abs(v-150) > 1e-9 {
		t.Fatalf("center sample = %v, want 150", v)
	}
	if v := BilinearAt(f, 0, 0); v != 0 {
		t.Fatalf("corner sample = %v, want 0", v)
	}
}

func TestResize(t *testing.T) {
	f := New(4, 4)
	f.Fill(1234)
	g := Resize(f, 8, 8)
	if g.Width() != 8 || g.Height() != 8 {
		t.Fatal("resize geometry wrong")
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if d := int(g.At(x, y)) - 1234; d < -1 || d > 1 {
				t.Fatalf("flat resize changed value: %d", g.At(x, y))
			}
		}
	}
	if z := Resize(f, 0, 5); z.Pixels() != 0 {
		t.Fatal("zero-size resize must be empty")
	}
}

func TestTranslateInteger(t *testing.T) {
	f := New(5, 5)
	f.Set(2, 2, 4000)
	g := Translate(f, 1, 0)
	if g.At(3, 2) != 4000 {
		t.Fatalf("translate by (1,0) lost pixel: %d", g.At(3, 2))
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(2, 2)
	if a.Average() != nil {
		t.Fatal("Average before Add must be nil")
	}
	f1, f2 := New(2, 2), New(2, 2)
	f1.Fill(100)
	f2.Fill(300)
	if err := a.Add(f1); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(f2); err != nil {
		t.Fatal(err)
	}
	if a.Frames() != 2 {
		t.Fatalf("Frames = %d", a.Frames())
	}
	avg := a.Average()
	if avg.At(0, 0) != 200 {
		t.Fatalf("Average = %d, want 200", avg.At(0, 0))
	}
	if err := a.Add(New(3, 3)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	a.Reset()
	if a.Frames() != 0 {
		t.Fatal("Reset must clear frame count")
	}
}

func TestLabelComponentsTwoBlobs(t *testing.T) {
	mask := New(10, 10)
	// Blob A: 2x2 at (1,1); blob B: 3x1 at (6,6).
	for _, p := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {6, 6}, {7, 6}, {8, 6}} {
		mask.Set(p[0], p[1], 1)
	}
	comps := LabelComponents(mask, nil, 1)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	a := comps[0]
	if a.Size != 4 || a.CX != 1.5 || a.CY != 1.5 {
		t.Fatalf("blob A stats: %+v", a)
	}
	if a.Compact != 1.0 {
		t.Fatalf("filled square compactness = %v", a.Compact)
	}
	b := comps[1]
	if b.Size != 3 || b.Elongate != 3 {
		t.Fatalf("blob B stats: %+v", b)
	}
}

func TestLabelComponentsMinSize(t *testing.T) {
	mask := New(5, 5)
	mask.Set(0, 0, 1)
	mask.Set(3, 3, 1)
	mask.Set(4, 3, 1)
	comps := LabelComponents(mask, nil, 2)
	if len(comps) != 1 || comps[0].Size != 2 {
		t.Fatalf("minSize filter failed: %+v", comps)
	}
}

func TestLabelComponentsDiagonalNotConnected(t *testing.T) {
	mask := New(4, 4)
	mask.Set(1, 1, 1)
	mask.Set(2, 2, 1)
	comps := LabelComponents(mask, nil, 1)
	if len(comps) != 2 {
		t.Fatalf("4-connectivity violated: %d components", len(comps))
	}
}

func TestLabelComponentsEmpty(t *testing.T) {
	if got := LabelComponents(New(4, 4), nil, 1); got != nil {
		t.Fatalf("empty mask must give nil, got %v", got)
	}
	var empty Frame
	if got := LabelComponents(&empty, nil, 1); got != nil {
		t.Fatal("zero frame must give nil")
	}
}

func TestLabelComponentsSourceStats(t *testing.T) {
	mask, src := New(3, 3), New(3, 3)
	mask.Set(1, 1, 1)
	src.Set(1, 1, 4242)
	comps := LabelComponents(mask, src, 1)
	if len(comps) != 1 || comps[0].MeanVal != 4242 {
		t.Fatalf("source stats wrong: %+v", comps)
	}
}

func TestLabelComponentsLargeBlobNoOverflow(t *testing.T) {
	// A full-frame blob exercises the explicit stack.
	mask := New(128, 128)
	mask.Fill(1)
	comps := LabelComponents(mask, nil, 1)
	if len(comps) != 1 || comps[0].Size != 128*128 {
		t.Fatalf("full-frame blob mislabeled: %+v", comps)
	}
}

// Property: translating by integer offsets then back is identity away from
// the borders.
func TestPropertyTranslateRoundTrip(t *testing.T) {
	f := func(dx, dy uint8, seed int64) bool {
		sx, sy := int(dx%4), int(dy%4)
		src := New(16, 16)
		v := uint16(seed)
		for y := 4; y < 12; y++ {
			for x := 4; x < 12; x++ {
				v = v*31 + 7
				src.Set(x, y, v)
			}
		}
		moved := Translate(src, float64(sx), float64(sy))
		back := Translate(moved, float64(-sx), float64(-sy))
		for y := 6; y < 10; y++ {
			for x := 6; x < 10; x++ {
				if back.At(x, y) != src.At(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SubFrame of SubFrame equals SubFrame of the intersection.
func TestPropertySubFrameComposes(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		base := New(32, 32)
		base.Set(10, 10, 99)
		r1 := R(int(a%16), int(b%16), int(a%16)+10, int(b%16)+10)
		r2 := R(int(c%16), int(d%16), int(c%16)+8, int(d%16)+8)
		s1 := base.SubFrame(r1).SubFrame(r2)
		s2 := base.SubFrame(r1.Intersect(r2))
		if s1.Bounds != s2.Bounds {
			return false
		}
		for y := s1.Bounds.Y0; y < s1.Bounds.Y1; y++ {
			for x := s1.Bounds.X0; x < s1.Bounds.X1; x++ {
				if s1.At(x, y) != s2.At(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package frame

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the central claim of the interior/border kernel split: the
// fast paths must be bit-identical to the naive clamp-every-tap reference
// formulations below, across arbitrary geometries — including SubFrame views
// whose storage is a strided window into a larger parent.

// ---- naive reference implementations (clamp every tap, no fast paths) ----

func naiveConvolve(src *Frame, k Kernel) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	r := k.Side / 2
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			acc := 0.0
			wi := 0
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					acc += k.W[wi] * float64(src.AtClamped(x+dx, y+dy))
					wi++
				}
			}
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = clamp16(acc)
		}
	}
	return dst
}

func naiveGaussianBlur(src *Frame, sigma float64) *Frame {
	w := GaussianKernel1D(sigma)
	r := len(w) / 2
	width, height := src.Width(), src.Height()
	tmp := New(width, height)
	tmp.Bounds = src.Bounds
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			acc := 0.0
			for i := -r; i <= r; i++ {
				acc += w[i+r] * float64(src.AtClamped(x+i, y))
			}
			tmp.Pix[(y-src.Bounds.Y0)*tmp.Stride+(x-src.Bounds.X0)] = clamp16(acc)
		}
	}
	dst := New(width, height)
	dst.Bounds = src.Bounds
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			acc := 0.0
			for i := -r; i <= r; i++ {
				acc += w[i+r] * float64(tmp.AtClamped(x, y+i))
			}
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = clamp16(acc)
		}
	}
	return dst
}

func naiveMedian3x3(src *Frame) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	var w [9]uint16
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			i := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					w[i] = src.AtClamped(x+dx, y+dy)
					i++
				}
			}
			s := w
			sort.Slice(s[:], func(a, b int) bool { return s[a] < s[b] })
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = s[4]
		}
	}
	return dst
}

func naiveSobel(src *Frame) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			p := func(dx, dy int) float64 { return float64(src.AtClamped(x+dx, y+dy)) }
			gx := -p(-1, -1) - 2*p(-1, 0) - p(-1, 1) + p(1, -1) + 2*p(1, 0) + p(1, 1)
			gy := -p(-1, -1) - 2*p(0, -1) - p(1, -1) + p(-1, 1) + 2*p(0, 1) + p(1, 1)
			v := math.Hypot(gx, gy) / (4 * 65535) * 65535
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = clamp16(v)
		}
	}
	return dst
}

func naiveHessianAt(f *Frame, x, y int) Hessian {
	c := float64(f.AtClamped(x, y))
	return Hessian{
		XX: float64(f.AtClamped(x+1, y)) - 2*c + float64(f.AtClamped(x-1, y)),
		YY: float64(f.AtClamped(x, y+1)) - 2*c + float64(f.AtClamped(x, y-1)),
		XY: (float64(f.AtClamped(x+1, y+1)) - float64(f.AtClamped(x-1, y+1)) -
			float64(f.AtClamped(x+1, y-1)) + float64(f.AtClamped(x-1, y-1))) / 4,
	}
}

func naiveGradient(f *Frame, x, y int) (gx, gy float64) {
	gx = (float64(f.AtClamped(x+1, y)) - float64(f.AtClamped(x-1, y))) / 2
	gy = (float64(f.AtClamped(x, y+1)) - float64(f.AtClamped(x, y-1))) / 2
	return gx, gy
}

func naiveBilinearAt(f *Frame, x, y float64) float64 {
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	fx, fy := x-float64(x0), y-float64(y0)
	v00 := float64(f.AtClamped(x0, y0))
	v10 := float64(f.AtClamped(x0+1, y0))
	v01 := float64(f.AtClamped(x0, y0+1))
	v11 := float64(f.AtClamped(x0+1, y0+1))
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

func naiveResize(src *Frame, w, h int) *Frame {
	dst := New(w, h)
	if src.Pixels() == 0 || w == 0 || h == 0 {
		return dst
	}
	sx := float64(src.Width()) / float64(w)
	sy := float64(src.Height()) / float64(h)
	for y := 0; y < h; y++ {
		srcY := float64(src.Bounds.Y0) + (float64(y)+0.5)*sy - 0.5
		for x := 0; x < w; x++ {
			srcX := float64(src.Bounds.X0) + (float64(x)+0.5)*sx - 0.5
			dst.Pix[y*dst.Stride+x] = clamp16(naiveBilinearAt(src, srcX, srcY))
		}
	}
	return dst
}

// ---- random-frame generators ----

// randFrame fills a compact w x h frame with deterministic noise.
func randFrame(rng *rand.Rand, w, h int) *Frame {
	f := New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint16(rng.Intn(65536))
	}
	return f
}

// randROI returns a non-empty SubFrame view of a random parent strictly
// larger than the view, so the view has a non-compact stride and offset
// bounds — the geometry that stresses the interior row-slice arithmetic.
func randROI(rng *rand.Rand, w, h int) *Frame {
	pw := w + 1 + rng.Intn(8)
	ph := h + 1 + rng.Intn(8)
	parent := randFrame(rng, pw, ph)
	x0 := rng.Intn(pw - w + 1)
	y0 := rng.Intn(ph - h + 1)
	return parent.SubFrame(R(x0, y0, x0+w, y0+h))
}

// geometries covers degenerate and awkward shapes: single pixels, single
// rows/columns, shapes thinner than typical kernel radii, and sizes around
// stripe boundaries.
var geometries = [][2]int{
	{1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 3}, {2, 9}, {9, 2},
	{5, 5}, {8, 3}, {17, 9}, {31, 16}, {32, 32},
}

func frameVariants(rng *rand.Rand, w, h int) []*Frame {
	return []*Frame{randFrame(rng, w, h), randROI(rng, w, h)}
}

func requireEqual(t *testing.T, ctx string, got, want *Frame) {
	t.Helper()
	if got.Width() != want.Width() || got.Height() != want.Height() {
		t.Fatalf("%s: geometry %dx%d, want %dx%d",
			ctx, got.Width(), got.Height(), want.Width(), want.Height())
	}
	for y := 0; y < want.Height(); y++ {
		gr := got.Row(got.Bounds.Y0 + y)
		wr := want.Row(want.Bounds.Y0 + y)
		for x := range wr {
			if gr[x] != wr[x] {
				t.Fatalf("%s: pixel (%d,%d) = %d, want %d", ctx, x, y, gr[x], wr[x])
			}
		}
	}
}

// ---- equivalence tests ----

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kernels := []int{1, 3, 5, 7}
	for _, g := range geometries {
		for _, src := range frameVariants(rng, g[0], g[1]) {
			for _, side := range kernels {
				w := make([]float64, side*side)
				for i := range w {
					w[i] = rng.Float64()*2 - 0.5
				}
				k, err := NewKernel(w)
				if err != nil {
					t.Fatal(err)
				}
				got := Convolve(src, k)
				requireEqual(t, "convolve", got, naiveConvolve(src, k))
			}
		}
	}
}

func TestGaussianBlurMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sigmas := []float64{0, 0.4, 1.2, 2.0, 3.7}
	for _, g := range geometries {
		for _, src := range frameVariants(rng, g[0], g[1]) {
			for _, sigma := range sigmas {
				got := GaussianBlur(src, sigma)
				requireEqual(t, "blur", got, naiveGaussianBlur(src, sigma))
			}
		}
	}
}

func TestMedian3x3MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range geometries {
		for _, src := range frameVariants(rng, g[0], g[1]) {
			requireEqual(t, "median", Median3x3(src), naiveMedian3x3(src))
		}
	}
}

func TestSobelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, g := range geometries {
		for _, src := range frameVariants(rng, g[0], g[1]) {
			requireEqual(t, "sobel", Sobel(src), naiveSobel(src))
		}
	}
}

func TestResizeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	targets := [][2]int{{1, 1}, {3, 5}, {8, 8}, {13, 4}, {40, 23}}
	for _, g := range geometries {
		for _, src := range frameVariants(rng, g[0], g[1]) {
			for _, tg := range targets {
				got := Resize(src, tg[0], tg[1])
				requireEqual(t, "resize", got, naiveResize(src, tg[0], tg[1]))
			}
		}
	}
}

func TestPointSamplersMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, g := range geometries {
		for _, f := range frameVariants(rng, g[0], g[1]) {
			b := f.Bounds
			// Probe every pixel plus a ring outside the bounds.
			for y := b.Y0 - 2; y < b.Y1+2; y++ {
				for x := b.X0 - 2; x < b.X1+2; x++ {
					if got, want := HessianAt(f, x, y), naiveHessianAt(f, x, y); got != want {
						t.Fatalf("HessianAt(%d,%d) = %+v, want %+v", x, y, got, want)
					}
					ggx, ggy := Gradient(f, x, y)
					wgx, wgy := naiveGradient(f, x, y)
					if ggx != wgx || ggy != wgy {
						t.Fatalf("Gradient(%d,%d) = (%v,%v), want (%v,%v)", x, y, ggx, ggy, wgx, wgy)
					}
					fx := float64(x) + rng.Float64()
					fy := float64(y) + rng.Float64()
					if got, want := BilinearAt(f, fx, fy), naiveBilinearAt(f, fx, fy); got != want {
						t.Fatalf("BilinearAt(%v,%v) = %v, want %v", fx, fy, got, want)
					}
				}
			}
		}
	}
}

// TestIntoVariantsReuseDirtyDst checks that every Into kernel fully
// overwrites a reused destination: leftover garbage from a previous frame
// must never leak into the output, and the destination must actually be
// reused (no hidden allocation swap).
func TestIntoVariantsReuseDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := randFrame(rng, 19, 13)
	roi := randROI(rng, 19, 13)
	k, err := NewKernel([]float64{0, -1, 0, -1, 5, -1, 0, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	dirty := func() *Frame {
		d := New(19, 13)
		for i := range d.Pix {
			d.Pix[i] = 0xBEEF
		}
		return d
	}
	for _, in := range []*Frame{src, roi} {
		cases := []struct {
			name string
			run  func(dst *Frame) *Frame
			want *Frame
		}{
			{"ConvolveInto", func(d *Frame) *Frame { return ConvolveInto(d, in, k) }, naiveConvolve(in, k)},
			{"GaussianBlurInto", func(d *Frame) *Frame { return GaussianBlurInto(d, in, 1.3) }, naiveGaussianBlur(in, 1.3)},
			{"Median3x3Into", func(d *Frame) *Frame { return Median3x3Into(d, in) }, naiveMedian3x3(in)},
			{"SobelInto", func(d *Frame) *Frame { return SobelInto(d, in) }, naiveSobel(in)},
			{"ResizeInto", func(d *Frame) *Frame { return ResizeInto(d, in, 19, 13) }, naiveResize(in, 19, 13)},
			{"ThresholdInto", func(d *Frame) *Frame { return ThresholdInto(d, in, 30000) }, Threshold(in, 30000)},
			{"InvertInto", func(d *Frame) *Frame { return InvertInto(d, in) }, Invert(in)},
			{"TranslateInto", func(d *Frame) *Frame { return TranslateInto(d, in, 1.7, -0.4) }, Translate(in, 1.7, -0.4)},
		}
		for _, tc := range cases {
			d := dirty()
			got := tc.run(d)
			if got != d {
				t.Errorf("%s: did not reuse matching destination", tc.name)
			}
			requireEqual(t, tc.name, got, tc.want)
		}
	}

	// Mismatched destinations must be replaced, not written out of bounds.
	small := New(3, 3)
	out := ConvolveInto(small, src, k)
	if out == small {
		t.Fatal("ConvolveInto reused a destination with the wrong geometry")
	}
	requireEqual(t, "convolve-mismatch", out, naiveConvolve(src, k))
}

func TestAbsDiffIntoMatchesAbsDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randFrame(rng, 11, 6)
	b := randFrame(rng, 11, 6)
	want, err := AbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d := New(11, 6)
	for i := range d.Pix {
		d.Pix[i] = 0xBEEF
	}
	got, err := AbsDiffInto(d, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Error("AbsDiffInto did not reuse matching destination")
	}
	requireEqual(t, "absdiff", got, want)
	if _, err := AbsDiffInto(nil, a, randFrame(rng, 5, 5)); err == nil {
		t.Error("AbsDiffInto accepted mismatched bounds")
	}
}

func TestAverageIntoMatchesAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	acc := NewAccumulator(9, 7)
	if acc.AverageInto(nil) != nil {
		t.Fatal("AverageInto before any Add must return nil")
	}
	for i := 0; i < 5; i++ {
		if err := acc.Add(randFrame(rng, 9, 7)); err != nil {
			t.Fatal(err)
		}
	}
	want := acc.Average()
	d := New(9, 7)
	for i := range d.Pix {
		d.Pix[i] = 0xBEEF
	}
	got := acc.AverageInto(d)
	if got != d {
		t.Error("AverageInto did not reuse matching destination")
	}
	requireEqual(t, "average", got, want)
}

func TestParallelVariantsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	k, err := NewKernel([]float64{1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range geometries {
		for _, src := range frameVariants(rng, g[0], g[1]) {
			for _, stripes := range []int{1, 2, 3, 8} {
				requireEqual(t, "blur-parallel",
					GaussianBlurParallel(src, 1.2, stripes), GaussianBlur(src, 1.2))
				requireEqual(t, "convolve-parallel",
					ConvolveParallel(src, k, stripes), Convolve(src, k))
				requireEqual(t, "resize-parallel",
					ResizeParallel(src, 10, 10, stripes), Resize(src, 10, 10))
			}
		}
	}
}

// ---- pool sanity ----

func TestPoolRecyclesZeroed(t *testing.T) {
	var p Pool
	f := p.Get(16, 8)
	if f.Width() != 16 || f.Height() != 8 || f.Stride != 16 {
		t.Fatalf("bad pooled geometry: %dx%d stride %d", f.Width(), f.Height(), f.Stride)
	}
	for i := range f.Pix {
		f.Pix[i] = 0xAAAA
	}
	p.Put(f)
	g := p.Get(16, 8)
	for i, v := range g.Pix {
		if v != 0 {
			t.Fatalf("Get returned dirty pixel %d = %#x", i, v)
		}
	}
	// A smaller request may reuse the same storage; geometry must be exact.
	p.Put(g)
	h := p.Get(3, 3)
	if h.Width() != 3 || h.Height() != 3 || len(h.Pix) != 9 || h.Stride != 3 {
		t.Fatalf("bad reshaped geometry: %dx%d stride %d len %d",
			h.Width(), h.Height(), h.Stride, len(h.Pix))
	}
	for i, v := range h.Pix {
		if v != 0 {
			t.Fatalf("reshaped Get returned dirty pixel %d = %#x", i, v)
		}
	}
}

func TestPoolDegenerateSizes(t *testing.T) {
	var p Pool
	z := p.Get(0, 0)
	if z.Pixels() != 0 {
		t.Fatal("zero-size Get must return an empty frame")
	}
	p.Put(z)   // no-op
	p.Put(nil) // no-op
	one := p.Get(1, 1)
	if len(one.Pix) != 1 {
		t.Fatalf("1x1 Get returned %d pixels", len(one.Pix))
	}
	p.Put(one)
}

func TestBorrowReleaseRoundTrip(t *testing.T) {
	f := Borrow(12, 5)
	for _, v := range f.Pix {
		if v != 0 {
			t.Fatal("Borrow returned dirty frame")
		}
	}
	f.Fill(0x1234)
	Release(f)
	g := Borrow(12, 5)
	for _, v := range g.Pix {
		if v != 0 {
			t.Fatal("Borrow after Release returned dirty frame")
		}
	}
	u := BorrowUninit(12, 5)
	if u.Width() != 12 || u.Height() != 5 {
		t.Fatal("BorrowUninit bad geometry")
	}
	Release(g)
	Release(u)
}

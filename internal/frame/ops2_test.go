package frame

import (
	"testing"
	"testing/quick"
)

func TestMedian3x3RemovesImpulse(t *testing.T) {
	f := New(7, 7)
	f.Fill(1000)
	f.Set(3, 3, 65535) // salt impulse
	g := Median3x3(f)
	if g.At(3, 3) != 1000 {
		t.Fatalf("median did not remove impulse: %d", g.At(3, 3))
	}
}

func TestMedian3x3PreservesFlat(t *testing.T) {
	f := New(8, 8)
	f.Fill(4242)
	if !Median3x3(f).Equal(f) {
		t.Fatal("median changed a flat field")
	}
}

func TestMedian3x3PreservesEdgeLocation(t *testing.T) {
	f := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			f.Set(x, y, 10000)
		}
	}
	g := Median3x3(f)
	if g.At(2, 4) != 0 || g.At(5, 4) != 10000 {
		t.Fatalf("median moved the edge: %d, %d", g.At(2, 4), g.At(5, 4))
	}
}

func TestOtsuBimodal(t *testing.T) {
	f := New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if x < 8 {
				f.Set(x, y, 5000)
			} else {
				f.Set(x, y, 50000)
			}
		}
	}
	thr, err := OtsuThreshold(f)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 5000 || thr >= 50000 {
		t.Fatalf("Otsu threshold %d not between the modes", thr)
	}
	// Thresholding at the result must separate exactly the two halves.
	mask := Threshold(f, thr)
	if mask.At(0, 0) != 0 || mask.At(15, 0) != 0xFFFF {
		t.Fatal("Otsu threshold does not separate the modes")
	}
}

func TestOtsuDegenerate(t *testing.T) {
	if _, err := OtsuThreshold(New(0, 0)); err == nil {
		t.Fatal("empty frame accepted")
	}
	flat := New(4, 4)
	flat.Fill(7)
	if _, err := OtsuThreshold(flat); err == nil {
		t.Fatal("constant frame accepted")
	}
}

func TestDownsample2xAverages(t *testing.T) {
	f := New(4, 2)
	// First 2x2 block: 0, 100, 200, 300 -> mean 150.
	f.Set(0, 0, 0)
	f.Set(1, 0, 100)
	f.Set(0, 1, 200)
	f.Set(1, 1, 300)
	// Second block constant 40.
	for _, p := range [][2]int{{2, 0}, {3, 0}, {2, 1}, {3, 1}} {
		f.Set(p[0], p[1], 40)
	}
	g := Downsample2x(f)
	if g.Width() != 2 || g.Height() != 1 {
		t.Fatalf("downsample geometry %dx%d", g.Width(), g.Height())
	}
	if g.At(0, 0) != 150 || g.At(1, 0) != 40 {
		t.Fatalf("downsample values %d, %d", g.At(0, 0), g.At(1, 0))
	}
}

func TestDownsample2xOddDimensions(t *testing.T) {
	g := Downsample2x(New(5, 3))
	if g.Width() != 2 || g.Height() != 1 {
		t.Fatalf("odd-dimension downsample %dx%d", g.Width(), g.Height())
	}
}

func TestDownsample2xReducesNoise(t *testing.T) {
	// Averaging 4 independent noise samples must reduce the variance by
	// roughly 4x.
	f := New(64, 64)
	v := uint16(1)
	for i := range f.Pix {
		v = v*25173 + 13849 // LCG noise
		f.Pix[i] = v
	}
	area := Downsample2x(f)
	varOf := func(fr *Frame) float64 {
		m := fr.MeanValue()
		s := 0.0
		for y := 0; y < fr.Height(); y++ {
			for _, px := range fr.Row(y) {
				d := float64(px) - m
				s += d * d
			}
		}
		return s / float64(fr.Pixels())
	}
	src, ds := varOf(f), varOf(area)
	if ds > src/2.5 {
		t.Fatalf("area downsample variance %v not well below source %v", ds, src)
	}
}

func TestIntegralSums(t *testing.T) {
	f := New(4, 3)
	val := uint16(1)
	var total uint64
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			f.Set(x, y, val)
			total += uint64(val)
			val++
		}
	}
	ig := NewIntegral(f)
	if got := ig.Sum(0, 0, 4, 3); got != total {
		t.Fatalf("full sum = %d, want %d", got, total)
	}
	// Single pixel (2,1): value = 1 + 1*4 + 2 = 7.
	if got := ig.Sum(2, 1, 3, 2); got != 7 {
		t.Fatalf("single-pixel sum = %d, want 7", got)
	}
	// Clamping and empty rectangles.
	if ig.Sum(-5, -5, 100, 100) != total {
		t.Fatal("clamped full sum wrong")
	}
	if ig.Sum(2, 2, 2, 3) != 0 || ig.Sum(3, 1, 2, 2) != 0 {
		t.Fatal("empty rectangle must sum to 0")
	}
}

func TestIntegralMean(t *testing.T) {
	f := New(4, 4)
	f.Fill(100)
	ig := NewIntegral(f)
	if got := ig.Mean(1, 1, 3, 3); got != 100 {
		t.Fatalf("mean = %v, want 100", got)
	}
	if ig.Mean(2, 2, 2, 2) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestSobelFlatIsZero(t *testing.T) {
	f := New(8, 8)
	f.Fill(30000)
	g := Sobel(f)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if g.At(x, y) != 0 {
				t.Fatalf("Sobel of flat field non-zero at (%d,%d)", x, y)
			}
		}
	}
}

func TestSobelEdgeResponds(t *testing.T) {
	f := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			f.Set(x, y, 40000)
		}
	}
	g := Sobel(f)
	if g.At(4, 4) == 0 && g.At(3, 4) == 0 {
		t.Fatal("Sobel missed a vertical edge")
	}
	if g.At(1, 4) != 0 {
		t.Fatal("Sobel responded away from the edge")
	}
}

// Property: the integral image agrees with brute-force summation.
func TestPropertyIntegralBruteForce(t *testing.T) {
	f := func(seed uint16, x0, y0, x1, y1 uint8) bool {
		fr := New(12, 12)
		v := seed
		for i := range fr.Pix {
			v = v*31 + 7
			fr.Pix[i] = v % 1000
		}
		ig := NewIntegral(fr)
		ax0, ay0 := int(x0%13), int(y0%13)
		ax1, ay1 := int(x1%13), int(y1%13)
		var brute uint64
		for y := ay0; y < ay1 && y < 12; y++ {
			for x := ax0; x < ax1 && x < 12; x++ {
				if x >= 0 && y >= 0 {
					brute += uint64(fr.At(x, y))
				}
			}
		}
		return ig.Sum(ax0, ay0, ax1, ay1) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the median filter output values always come from the input's
// value set neighborhood (no invented values).
func TestPropertyMedianFromNeighborhood(t *testing.T) {
	f := func(seed uint16) bool {
		fr := New(6, 6)
		v := seed
		for i := range fr.Pix {
			v = v*13 + 101
			fr.Pix[i] = v % 512
		}
		g := Median3x3(fr)
		for y := 0; y < 6; y++ {
			for x := 0; x < 6; x++ {
				found := false
				for dy := -1; dy <= 1 && !found; dy++ {
					for dx := -1; dx <= 1 && !found; dx++ {
						if fr.AtClamped(x+dx, y+dy) == g.At(x, y) {
							found = true
						}
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package frame

import (
	"bytes"
	"testing"
)

// FuzzReadPGM hardens the PGM parser against malformed input: it must
// return an error or a consistent frame, never panic or over-allocate.
func FuzzReadPGM(f *testing.F) {
	// Seed corpus: a valid tiny PGM plus truncations and corruptions.
	valid := func() []byte {
		fr := New(3, 2)
		fr.Set(1, 1, 777)
		var buf bytes.Buffer
		if err := WritePGM(&buf, fr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("P5\n3 2\n65535\n"))
	f.Add([]byte("P5\n-1 2\n65535\n\x00"))
	f.Add([]byte("P2\n1 1\n255\n0"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed frames must be internally consistent and round-trip.
		if fr.Width() <= 0 || fr.Height() <= 0 {
			t.Fatalf("parsed frame with bad geometry %dx%d", fr.Width(), fr.Height())
		}
		if len(fr.Pix) != fr.Width()*fr.Height() {
			t.Fatalf("pixel buffer size mismatch")
		}
		var buf bytes.Buffer
		if err := WritePGM(&buf, fr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !back.Equal(fr) {
			t.Fatal("round trip changed pixels")
		}
	})
}

package frame

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadPGM hardens the PGM parser against malformed input: it must
// return an error or a consistent frame, never panic or over-allocate.
func FuzzReadPGM(f *testing.F) {
	// Seed corpus: a valid tiny PGM plus truncations and corruptions.
	valid := func() []byte {
		fr := New(3, 2)
		fr.Set(1, 1, 777)
		var buf bytes.Buffer
		if err := WritePGM(&buf, fr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("P5\n3 2\n65535\n"))
	f.Add([]byte("P5\n-1 2\n65535\n\x00"))
	f.Add([]byte("P2\n1 1\n255\n0"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed frames must be internally consistent and round-trip.
		if fr.Width() <= 0 || fr.Height() <= 0 {
			t.Fatalf("parsed frame with bad geometry %dx%d", fr.Width(), fr.Height())
		}
		if len(fr.Pix) != fr.Width()*fr.Height() {
			t.Fatalf("pixel buffer size mismatch")
		}
		var buf bytes.Buffer
		if err := WritePGM(&buf, fr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !back.Equal(fr) {
			t.Fatal("round trip changed pixels")
		}
	})
}

// FuzzStencilEquivalence drives the interior/border-split kernels with
// arbitrary geometries, ROI windows and sigmas and checks them against the
// naive clamp-every-tap references from equiv_test.go. Any divergence —
// including a panic from bad interior slice arithmetic — is a bug in the
// fast paths.
func FuzzStencilEquivalence(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(0), uint8(0), uint8(8), uint8(8), int64(1), float64(1.2))
	f.Add(uint8(1), uint8(1), uint8(0), uint8(0), uint8(1), uint8(1), int64(2), float64(0.5))
	f.Add(uint8(32), uint8(3), uint8(5), uint8(1), uint8(20), uint8(2), int64(3), float64(3.0))
	f.Add(uint8(3), uint8(32), uint8(1), uint8(7), uint8(2), uint8(19), int64(4), float64(0.0))
	f.Add(uint8(17), uint8(11), uint8(16), uint8(10), uint8(1), uint8(1), int64(5), float64(7.5))

	f.Fuzz(func(t *testing.T, pw, ph, rx, ry, rw, rh uint8, seed int64, sigma float64) {
		// Bound the work: parent at most 48x48, sigma in a sane range.
		w := int(pw)%48 + 1
		h := int(ph)%48 + 1
		if sigma < 0 || sigma > 8 || sigma != sigma {
			sigma = 1.1
		}
		rng := rand.New(rand.NewSource(seed))
		parent := New(w, h)
		for i := range parent.Pix {
			parent.Pix[i] = uint16(rng.Intn(65536))
		}
		// Derive an in-bounds, non-empty ROI window from the fuzz inputs.
		x0 := int(rx) % w
		y0 := int(ry) % h
		x1 := x0 + int(rw)%(w-x0) + 1
		y1 := y0 + int(rh)%(h-y0) + 1
		for _, src := range []*Frame{parent, parent.SubFrame(R(x0, y0, x1, y1))} {
			requireEqual(t, "blur", GaussianBlur(src, sigma), naiveGaussianBlur(src, sigma))
			requireEqual(t, "median", Median3x3(src), naiveMedian3x3(src))
			requireEqual(t, "sobel", Sobel(src), naiveSobel(src))
			k, err := NewKernel([]float64{0.1, -0.2, 0.3, 0.4, 0.5, -0.6, 0.7, 0.8, -0.9})
			if err != nil {
				t.Fatal(err)
			}
			requireEqual(t, "convolve", Convolve(src, k), naiveConvolve(src, k))
			requireEqual(t, "stripes", GaussianBlurParallel(src, sigma, 3), GaussianBlur(src, sigma))
			tw, th := src.Width()/2+1, src.Height()/2+1
			requireEqual(t, "resize", Resize(src, tw, th), naiveResize(src, tw, th))
		}
	})
}

package frame

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the stencil kernels, named so that
// `go test -bench . ./internal/frame | benchstat old.txt new.txt`
// lines up across revisions: BenchmarkKernel/<op>/<size>-<procs>.
// The <op>=naive entries run the clamp-every-tap reference from
// equiv_test.go, quantifying the interior/border split's speedup
// within a single run.

func benchFrame(size int) *Frame {
	rng := rand.New(rand.NewSource(42))
	f := New(size, size)
	for i := range f.Pix {
		f.Pix[i] = uint16(rng.Intn(65536))
	}
	return f
}

var benchSizes = []int{128, 512}

func BenchmarkKernel(b *testing.B) {
	kern, err := NewKernel([]float64{0, -1, 0, -1, 5, -1, 0, -1, 0})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range benchSizes {
		src := benchFrame(size)
		dst := New(size, size)
		half := New(size/2, size/2)
		sz := fmt.Sprintf("%dx%d", size, size)
		pix := int64(size * size * 2)

		cases := []struct {
			name string
			run  func()
		}{
			{"Convolve3x3/split", func() { ConvolveInto(dst, src, kern) }},
			{"Convolve3x3/naive", func() { naiveConvolve(src, kern) }},
			{"GaussianBlur/split", func() { GaussianBlurInto(dst, src, 1.2) }},
			{"GaussianBlur/naive", func() { naiveGaussianBlur(src, 1.2) }},
			{"Median3x3/split", func() { Median3x3Into(dst, src) }},
			{"Median3x3/naive", func() { naiveMedian3x3(src) }},
			{"Sobel/split", func() { SobelInto(dst, src) }},
			{"Sobel/naive", func() { naiveSobel(src) }},
			{"Resize/split", func() { ResizeInto(half, src, size/2, size/2) }},
			{"Resize/naive", func() { naiveResize(src, size/2, size/2) }},
		}
		for _, tc := range cases {
			b.Run(tc.name+"/"+sz, func(b *testing.B) {
				b.SetBytes(pix)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tc.run()
				}
			})
		}
	}
}

func BenchmarkKernelParallel(b *testing.B) {
	for _, size := range benchSizes {
		src := benchFrame(size)
		dst := New(size, size)
		sz := fmt.Sprintf("%dx%d", size, size)
		for _, stripes := range []int{2, 4} {
			b.Run(fmt.Sprintf("GaussianBlur/k%d/%s", stripes, sz), func(b *testing.B) {
				b.SetBytes(int64(size * size * 2))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					GaussianBlurIntoParallel(dst, src, 1.2, stripes)
				}
			})
		}
	}
}

func BenchmarkPool(b *testing.B) {
	b.Run("BorrowRelease/512x512", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Release(BorrowUninit(512, 512))
		}
	})
	b.Run("New/512x512", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = New(512, 512)
		}
	})
}

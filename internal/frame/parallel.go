package frame

import (
	"triplec/internal/parallel"
)

// GaussianBlurParallel is GaussianBlur with each separable pass striped over
// k goroutines. The output is bit-identical to the serial version: the
// horizontal pass rows and the vertical pass rows are independent given the
// intermediate buffer, so striping never changes results.
func GaussianBlurParallel(src *Frame, sigma float64, k int) *Frame {
	w := GaussianKernel1D(sigma)
	r := len(w) / 2
	height := src.Height()
	tmp := New(src.Width(), height)
	tmp.Bounds = src.Bounds
	parallel.ForStripes(height, k, func(_, lo, hi int) {
		for yy := lo; yy < hi; yy++ {
			y := src.Bounds.Y0 + yy
			for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
				acc := 0.0
				for i := -r; i <= r; i++ {
					acc += w[i+r] * float64(src.AtClamped(x+i, y))
				}
				tmp.Pix[yy*tmp.Stride+(x-src.Bounds.X0)] = clamp16(acc)
			}
		}
	})
	dst := New(src.Width(), height)
	dst.Bounds = src.Bounds
	parallel.ForStripes(height, k, func(_, lo, hi int) {
		for yy := lo; yy < hi; yy++ {
			y := src.Bounds.Y0 + yy
			for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
				acc := 0.0
				for i := -r; i <= r; i++ {
					acc += w[i+r] * float64(tmp.AtClamped(x, y+i))
				}
				dst.Pix[yy*dst.Stride+(x-src.Bounds.X0)] = clamp16(acc)
			}
		}
	})
	return dst
}

// ResizeParallel is Resize with the output rows striped over k goroutines;
// bit-identical to the serial version.
func ResizeParallel(src *Frame, w, h, k int) *Frame {
	dst := New(w, h)
	if src.Pixels() == 0 || w == 0 || h == 0 {
		return dst
	}
	sx := float64(src.Width()) / float64(w)
	sy := float64(src.Height()) / float64(h)
	parallel.ForStripes(h, k, func(_, lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < w; x++ {
				srcX := float64(src.Bounds.X0) + (float64(x)+0.5)*sx - 0.5
				srcY := float64(src.Bounds.Y0) + (float64(y)+0.5)*sy - 0.5
				dst.Pix[y*dst.Stride+x] = clamp16(BilinearAt(src, srcX, srcY))
			}
		}
	})
	return dst
}

// ConvolveParallel is Convolve with output rows striped over k goroutines;
// bit-identical to the serial version.
func ConvolveParallel(src *Frame, kern Kernel, k int) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	r := kern.Side / 2
	parallel.ForStripes(src.Height(), k, func(_, lo, hi int) {
		for yy := lo; yy < hi; yy++ {
			y := src.Bounds.Y0 + yy
			for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
				acc := 0.0
				wi := 0
				for dy := -r; dy <= r; dy++ {
					for dx := -r; dx <= r; dx++ {
						acc += kern.W[wi] * float64(src.AtClamped(x+dx, y+dy))
						wi++
					}
				}
				dst.Pix[yy*dst.Stride+(x-src.Bounds.X0)] = clamp16(acc)
			}
		}
	})
	return dst
}

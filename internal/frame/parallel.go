package frame

import (
	"triplec/internal/parallel"
)

// The *Parallel variants stripe the exact same interior/border-split row
// helpers the serial kernels use (convolveRows, blurHRows/blurVRows,
// resizeRows), so their output is bit-identical to the serial versions: the
// rows of each pass are independent given the input (and, for the blur, the
// intermediate buffer), so striping never changes results.

// GaussianBlurParallel is GaussianBlur with each separable pass striped over
// k goroutines; bit-identical to the serial version.
func GaussianBlurParallel(src *Frame, sigma float64, k int) *Frame {
	return GaussianBlurIntoParallel(nil, src, sigma, k)
}

// GaussianBlurIntoParallel is GaussianBlurInto striped over k goroutines
// (dst may be nil, must not alias src); it returns the destination used.
func GaussianBlurIntoParallel(dst, src *Frame, sigma float64, k int) *Frame {
	return GaussianBlurIntoOn(nil, dst, src, sigma, k)
}

// GaussianBlurIntoOn is GaussianBlurIntoParallel with the stripes executed
// on a shared worker pool (parallel.StripesOn); a nil pool falls back to
// fresh goroutines. Bit-identical to the serial version either way.
func GaussianBlurIntoOn(pool *parallel.Pool, dst, src *Frame, sigma float64, k int) *Frame {
	w := gaussianKernel(sigma)
	width, height := src.Width(), src.Height()
	dst = ensureDst(dst, width, height, src.Bounds)
	if width == 0 || height == 0 {
		return dst
	}
	tmp := BorrowUninit(width, height)
	tmp.Bounds = src.Bounds
	y0 := src.Bounds.Y0
	parallel.StripesOn(pool, height, k, func(_, lo, hi int) {
		blurHRows(tmp, src, w, y0+lo, y0+hi)
	})
	parallel.StripesOn(pool, height, k, func(_, lo, hi int) {
		blurVRows(dst, tmp, w, y0+lo, y0+hi)
	})
	Release(tmp)
	return dst
}

// ResizeParallel is Resize with the output rows striped over k goroutines;
// bit-identical to the serial version.
func ResizeParallel(src *Frame, w, h, k int) *Frame {
	return ResizeIntoParallel(nil, src, w, h, k)
}

// ResizeIntoParallel is ResizeInto striped over k goroutines (dst may be
// nil, must not alias src); it returns the destination used.
func ResizeIntoParallel(dst, src *Frame, w, h, k int) *Frame {
	dst = ensureDst(dst, w, h, Rect{0, 0, w, h})
	if src.Pixels() == 0 || w == 0 || h == 0 {
		clear(dst.Pix)
		return dst
	}
	parallel.ForStripes(h, k, func(_, lo, hi int) {
		resizeRows(dst, src, lo, hi)
	})
	return dst
}

// ConvolveParallel is Convolve with output rows striped over k goroutines;
// bit-identical to the serial version.
func ConvolveParallel(src *Frame, kern Kernel, k int) *Frame {
	return ConvolveIntoParallel(nil, src, kern, k)
}

// ConvolveIntoParallel is ConvolveInto striped over k goroutines (dst may
// be nil, must not alias src); it returns the destination used.
func ConvolveIntoParallel(dst, src *Frame, kern Kernel, k int) *Frame {
	dst = ensureDst(dst, src.Width(), src.Height(), src.Bounds)
	y0 := src.Bounds.Y0
	parallel.ForStripes(src.Height(), k, func(_, lo, hi int) {
		convolveRows(dst, src, kern, y0+lo, y0+hi)
	})
	return dst
}

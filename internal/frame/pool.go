package frame

import (
	"math/bits"
	"sync"
)

// Pool is a size-bucketed free list of frames backed by sync.Pool. Frames
// come out of Get with compact stride (Stride == Width) and bounds anchored
// at the origin; Put recycles the whole *Frame — struct and pixel storage —
// so a steady-state Get/Put cycle performs no allocation at all.
//
// Only put back frames whose storage you own outright: a SubFrame view, or
// any frame whose Pix slice is shared, must never be released, because the
// next Get would alias live pixels. Using a frame after Put (or Putting it
// twice) is equally a use-after-free. The pool itself is safe for concurrent
// use.
//
// The zero value is ready to use.
type Pool struct {
	// buckets[i] holds frames whose Pix capacity lies in [2^i, 2^(i+1)).
	buckets [maxBucketBits]sync.Pool
}

// maxBucketBits bounds the bucket ladder at 2^30 pixels (2 GiB of uint16),
// far beyond any frame geometry the pipeline handles; larger requests fall
// through to plain allocation.
const maxBucketBits = 31

// bucketFor returns the bucket index whose buffers are guaranteed to hold n
// pixels (ceil log2), or -1 when n is out of pooling range.
func bucketFor(n int) int {
	if n <= 0 {
		return -1
	}
	idx := bits.Len(uint(n - 1)) // smallest b with 2^b >= n
	if idx >= maxBucketBits {
		return -1
	}
	return idx
}

// Get returns a zeroed w x h frame, reusing pooled storage when available.
func (p *Pool) Get(w, h int) *Frame {
	f := p.GetUninit(w, h)
	clear(f.Pix)
	return f
}

// GetUninit is Get without clearing the pixels: the contents are arbitrary
// leftovers from earlier frames. Use it only for destinations every pixel of
// which will be overwritten (convolution outputs, resize targets, …).
func (p *Pool) GetUninit(w, h int) *Frame {
	if w < 0 || h < 0 {
		panic("frame: negative dimensions")
	}
	n := w * h
	idx := bucketFor(n)
	if idx < 0 {
		return New(w, h)
	}
	if v, ok := p.buckets[idx].Get().(*Frame); ok && cap(v.Pix) >= n {
		v.Pix = v.Pix[:n]
		v.Stride = w
		v.Bounds = Rect{0, 0, w, h}
		return v
	}
	return &Frame{Pix: make([]uint16, n, 1<<idx), Stride: w, Bounds: Rect{0, 0, w, h}}
}

// Put recycles f — struct and pixel storage. nil frames and empty buffers
// are ignored, so Put is always safe on the result of a Get. f must not be
// used after.
func (p *Pool) Put(f *Frame) {
	if f == nil || cap(f.Pix) == 0 {
		return
	}
	// Bucket by floor log2 of the capacity: every frame stored in bucket i
	// holds at least 2^i pixels, which is what Get's ceil-log2 lookup needs.
	idx := bits.Len(uint(cap(f.Pix))) - 1
	if idx >= maxBucketBits {
		return
	}
	f.Pix = f.Pix[:0]
	f.Stride = 0
	f.Bounds = Rect{}
	p.buckets[idx].Put(f)
}

// shared is the package-level pool behind Borrow/Release. Kernels and tasks
// use it so independent pipeline stages — and independent streams — recycle
// each other's buffers.
var shared Pool

// Borrow returns a zeroed w x h frame from the shared pool.
func Borrow(w, h int) *Frame { return shared.Get(w, h) }

// BorrowUninit returns an uninitialized w x h frame from the shared pool;
// see Pool.GetUninit for the overwrite-everything contract.
func BorrowUninit(w, h int) *Frame { return shared.GetUninit(w, h) }

// Release returns a borrowed frame to the shared pool. Releasing frames the
// caller does not own (SubFrame views, frames still referenced elsewhere) is
// a use-after-free bug; when unsure, simply drop the frame instead.
func Release(f *Frame) { shared.Put(f) }

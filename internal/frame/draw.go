package frame

// Annotation primitives for saved output images: rectangle outlines around
// ROIs and cross markers at detected positions, so exported PGMs show what
// the analysis found.

// DrawRectOutline draws a 1-pixel rectangle outline of value v along the
// border of r (clipped to the frame).
func DrawRectOutline(f *Frame, r Rect, v uint16) {
	r = r.Intersect(f.Bounds)
	if r.Empty() {
		return
	}
	for x := r.X0; x < r.X1; x++ {
		f.Set(x, r.Y0, v)
		f.Set(x, r.Y1-1, v)
	}
	for y := r.Y0; y < r.Y1; y++ {
		f.Set(r.X0, y, v)
		f.Set(r.X1-1, y, v)
	}
}

// DrawCross draws a cross of half-length arm centered at (cx, cy).
func DrawCross(f *Frame, cx, cy, arm int, v uint16) {
	for d := -arm; d <= arm; d++ {
		f.Set(cx+d, cy, v)
		f.Set(cx, cy+d, v)
	}
}

// DrawLine draws a 1-pixel line from (x0, y0) to (x1, y1) using integer
// Bresenham stepping.
func DrawLine(f *Frame, x0, y0, x1, y1 int, v uint16) {
	dx := absInt(x1 - x0)
	dy := -absInt(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		f.Set(x0, y0, v)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

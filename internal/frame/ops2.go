package frame

import (
	"errors"
	"math"
	"sort"
)

// Additional pixel operations used by task options and available to
// downstream users of the image substrate: rank filtering, histogram-based
// thresholding, area downsampling and integral images.

// Median3x3 applies a 3x3 median filter with replicate borders — the
// classic X-ray salt-and-pepper (quantum mottle) suppressor.
func Median3x3(src *Frame) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	var window [9]uint16
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			i := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					window[i] = src.AtClamped(x+dx, y+dy)
					i++
				}
			}
			w := window
			sort.Slice(w[:], func(a, b int) bool { return w[a] < w[b] })
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = w[4]
		}
	}
	return dst
}

// OtsuThreshold computes the threshold maximizing inter-class variance over
// the frame's 256-bin intensity histogram (computed on the top 8 bits),
// returning the 16-bit threshold value. An error is returned for empty or
// constant frames, where no threshold separates anything.
func OtsuThreshold(src *Frame) (uint16, error) {
	n := src.Pixels()
	if n == 0 {
		return 0, errors.New("frame: Otsu on empty frame")
	}
	var hist [256]int
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for _, v := range src.Row(y) {
			hist[v>>8]++
		}
	}
	// Classic Otsu over the histogram.
	sumAll := 0.0
	for t, c := range hist {
		sumAll += float64(t) * float64(c)
	}
	var sumB, wB float64
	bestVar, bestT := -1.0, -1
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(n) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar = between
			bestT = t
		}
	}
	if bestT < 0 || bestVar <= 0 {
		return 0, errors.New("frame: Otsu found no separating threshold")
	}
	return uint16(bestT)<<8 | 0xFF, nil
}

// Downsample2x halves both dimensions by averaging disjoint 2x2 blocks —
// the proper area filter (Resize point-samples bilinearly and keeps more
// noise). Odd trailing rows/columns are dropped.
func Downsample2x(src *Frame) *Frame {
	w, h := src.Width()/2, src.Height()/2
	dst := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx := src.Bounds.X0 + 2*x
			sy := src.Bounds.Y0 + 2*y
			sum := uint32(src.At(sx, sy)) + uint32(src.At(sx+1, sy)) +
				uint32(src.At(sx, sy+1)) + uint32(src.At(sx+1, sy+1))
			dst.Pix[y*dst.Stride+x] = uint16(sum / 4)
		}
	}
	return dst
}

// Integral is a summed-area table: Sum(x0,y0,x1,y1) of any rectangle in
// O(1) after O(n) construction.
type Integral struct {
	w, h int
	sums []uint64 // (w+1) x (h+1), row-major, first row/col zero
}

// NewIntegral builds the summed-area table of src.
func NewIntegral(src *Frame) *Integral {
	w, h := src.Width(), src.Height()
	ig := &Integral{w: w, h: h, sums: make([]uint64, (w+1)*(h+1))}
	stride := w + 1
	for y := 0; y < h; y++ {
		row := src.Row(src.Bounds.Y0 + y)
		var rowSum uint64
		for x := 0; x < w; x++ {
			rowSum += uint64(row[x])
			ig.sums[(y+1)*stride+(x+1)] = ig.sums[y*stride+(x+1)] + rowSum
		}
	}
	return ig
}

// Sum returns the pixel sum over the half-open rectangle [x0,x1) x [y0,y1)
// in frame-local coordinates (0-based), clamped to the table's extent.
func (ig *Integral) Sum(x0, y0, x1, y1 int) uint64 {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0 = clamp(x0, 0, ig.w)
	x1 = clamp(x1, 0, ig.w)
	y0 = clamp(y0, 0, ig.h)
	y1 = clamp(y1, 0, ig.h)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	stride := ig.w + 1
	return ig.sums[y1*stride+x1] - ig.sums[y0*stride+x1] -
		ig.sums[y1*stride+x0] + ig.sums[y0*stride+x0]
}

// Mean returns the average pixel value over the rectangle (0 when empty).
func (ig *Integral) Mean(x0, y0, x1, y1 int) float64 {
	area := (x1 - x0) * (y1 - y0)
	if area <= 0 {
		return 0
	}
	return float64(ig.Sum(x0, y0, x1, y1)) / float64(area)
}

// Sobel computes the gradient-magnitude map with the 3x3 Sobel operator,
// normalized into the 16-bit range.
func Sobel(src *Frame) *Frame {
	dst := New(src.Width(), src.Height())
	dst.Bounds = src.Bounds
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for x := src.Bounds.X0; x < src.Bounds.X1; x++ {
			p := func(dx, dy int) float64 { return float64(src.AtClamped(x+dx, y+dy)) }
			gx := -p(-1, -1) - 2*p(-1, 0) - p(-1, 1) + p(1, -1) + 2*p(1, 0) + p(1, 1)
			gy := -p(-1, -1) - 2*p(0, -1) - p(1, -1) + p(-1, 1) + 2*p(0, 1) + p(1, 1)
			// Scaled so a full-range step edge maps near the top of the
			// range: max |g| is 4*65535 per axis.
			v := math.Hypot(gx, gy) / (4 * 65535) * 65535
			dst.Pix[(y-src.Bounds.Y0)*dst.Stride+(x-src.Bounds.X0)] = clamp16(v)
		}
	}
	return dst
}

package frame

import (
	"errors"
	"math"
)

// Additional pixel operations used by task options and available to
// downstream users of the image substrate: rank filtering, histogram-based
// thresholding, area downsampling and integral images.

// Median3x3 applies a 3x3 median filter with replicate borders — the
// classic X-ray salt-and-pepper (quantum mottle) suppressor.
func Median3x3(src *Frame) *Frame {
	return Median3x3Into(nil, src)
}

// Median3x3Into is Median3x3 with destination reuse (dst may be nil, must
// not alias src); it returns the destination used. Interior pixels gather
// their window from three direct row slices; only the one-pixel border pays
// the clamped path. The median itself comes from a fixed 19-comparator
// sorting network — no allocation, no interface dispatch.
func Median3x3Into(dst, src *Frame) *Frame {
	dst = ensureDst(dst, src.Width(), src.Height(), src.Bounds)
	median3x3Rows(dst, src, src.Bounds.Y0, src.Bounds.Y1)
	return dst
}

// median3x3Rows filters the absolute row range [yLo, yHi) of src into dst.
func median3x3Rows(dst, src *Frame, yLo, yHi int) {
	b := src.Bounds
	width := b.Width()
	for y := yLo; y < yHi; y++ {
		d0 := (y - b.Y0) * dst.Stride
		drow := dst.Pix[d0 : d0+width]
		if y > b.Y0 && y < b.Y1-1 && width > 2 {
			s0 := (y - b.Y0) * src.Stride
			rm := src.Pix[s0-src.Stride : s0-src.Stride+width]
			rc := src.Pix[s0 : s0+width]
			rp := src.Pix[s0+src.Stride : s0+src.Stride+width]
			drow[0] = median3x3Clamped(src, b.X0, y)
			for xx := 1; xx < width-1; xx++ {
				drow[xx] = median9(
					rm[xx-1], rm[xx], rm[xx+1],
					rc[xx-1], rc[xx], rc[xx+1],
					rp[xx-1], rp[xx], rp[xx+1])
			}
			drow[width-1] = median3x3Clamped(src, b.X1-1, y)
		} else {
			for x := b.X0; x < b.X1; x++ {
				drow[x-b.X0] = median3x3Clamped(src, x, y)
			}
		}
	}
}

// median3x3Clamped is the border path: the window is gathered through
// AtClamped (replicate borders) and fed to the same sorting network.
func median3x3Clamped(src *Frame, x, y int) uint16 {
	return median9(
		src.AtClamped(x-1, y-1), src.AtClamped(x, y-1), src.AtClamped(x+1, y-1),
		src.AtClamped(x-1, y), src.AtClamped(x, y), src.AtClamped(x+1, y),
		src.AtClamped(x-1, y+1), src.AtClamped(x, y+1), src.AtClamped(x+1, y+1))
}

// median9 returns the median of nine values via the classic 19-comparator
// exchange network (Paeth, Graphics Gems): the value it leaves in the p4
// position equals the fifth-smallest element of the input.
func median9(p0, p1, p2, p3, p4, p5, p6, p7, p8 uint16) uint16 {
	sort2 := func(a, b uint16) (uint16, uint16) {
		if a > b {
			return b, a
		}
		return a, b
	}
	p1, p2 = sort2(p1, p2)
	p4, p5 = sort2(p4, p5)
	p7, p8 = sort2(p7, p8)
	p0, p1 = sort2(p0, p1)
	p3, p4 = sort2(p3, p4)
	p6, p7 = sort2(p6, p7)
	p1, p2 = sort2(p1, p2)
	p4, p5 = sort2(p4, p5)
	p7, p8 = sort2(p7, p8)
	p0, p3 = sort2(p0, p3)
	p5, p8 = sort2(p5, p8)
	p4, p7 = sort2(p4, p7)
	p3, p6 = sort2(p3, p6)
	p1, p4 = sort2(p1, p4)
	p2, p5 = sort2(p2, p5)
	p4, p7 = sort2(p4, p7)
	p4, p2 = sort2(p4, p2)
	p6, p4 = sort2(p6, p4)
	p4, p2 = sort2(p4, p2)
	_, _, _, _, _, _ = p0, p1, p3, p5, p7, p8
	return p4
}

// OtsuThreshold computes the threshold maximizing inter-class variance over
// the frame's 256-bin intensity histogram (computed on the top 8 bits),
// returning the 16-bit threshold value. An error is returned for empty or
// constant frames, where no threshold separates anything.
func OtsuThreshold(src *Frame) (uint16, error) {
	n := src.Pixels()
	if n == 0 {
		return 0, errors.New("frame: Otsu on empty frame")
	}
	var hist [256]int
	for y := src.Bounds.Y0; y < src.Bounds.Y1; y++ {
		for _, v := range src.Row(y) {
			hist[v>>8]++
		}
	}
	// Classic Otsu over the histogram.
	sumAll := 0.0
	for t, c := range hist {
		sumAll += float64(t) * float64(c)
	}
	var sumB, wB float64
	bestVar, bestT := -1.0, -1
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(n) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar = between
			bestT = t
		}
	}
	if bestT < 0 || bestVar <= 0 {
		return 0, errors.New("frame: Otsu found no separating threshold")
	}
	return uint16(bestT)<<8 | 0xFF, nil
}

// Downsample2x halves both dimensions by averaging disjoint 2x2 blocks —
// the proper area filter (Resize point-samples bilinearly and keeps more
// noise). Odd trailing rows/columns are dropped.
func Downsample2x(src *Frame) *Frame {
	w, h := src.Width()/2, src.Height()/2
	dst := New(w, h)
	for y := 0; y < h; y++ {
		s0 := 2 * y * src.Stride
		r0 := src.Pix[s0 : s0+2*w]
		r1 := src.Pix[s0+src.Stride : s0+src.Stride+2*w]
		drow := dst.Pix[y*dst.Stride : y*dst.Stride+w]
		for x := 0; x < w; x++ {
			sum := uint32(r0[2*x]) + uint32(r0[2*x+1]) +
				uint32(r1[2*x]) + uint32(r1[2*x+1])
			drow[x] = uint16(sum / 4)
		}
	}
	return dst
}

// Integral is a summed-area table: Sum(x0,y0,x1,y1) of any rectangle in
// O(1) after O(n) construction.
type Integral struct {
	w, h int
	sums []uint64 // (w+1) x (h+1), row-major, first row/col zero
}

// NewIntegral builds the summed-area table of src.
func NewIntegral(src *Frame) *Integral {
	w, h := src.Width(), src.Height()
	ig := &Integral{w: w, h: h, sums: make([]uint64, (w+1)*(h+1))}
	stride := w + 1
	for y := 0; y < h; y++ {
		row := src.Row(src.Bounds.Y0 + y)
		var rowSum uint64
		for x := 0; x < w; x++ {
			rowSum += uint64(row[x])
			ig.sums[(y+1)*stride+(x+1)] = ig.sums[y*stride+(x+1)] + rowSum
		}
	}
	return ig
}

// Sum returns the pixel sum over the half-open rectangle [x0,x1) x [y0,y1)
// in frame-local coordinates (0-based), clamped to the table's extent.
func (ig *Integral) Sum(x0, y0, x1, y1 int) uint64 {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0 = clamp(x0, 0, ig.w)
	x1 = clamp(x1, 0, ig.w)
	y0 = clamp(y0, 0, ig.h)
	y1 = clamp(y1, 0, ig.h)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	stride := ig.w + 1
	return ig.sums[y1*stride+x1] - ig.sums[y0*stride+x1] -
		ig.sums[y1*stride+x0] + ig.sums[y0*stride+x0]
}

// Mean returns the average pixel value over the rectangle (0 when empty).
func (ig *Integral) Mean(x0, y0, x1, y1 int) float64 {
	area := (x1 - x0) * (y1 - y0)
	if area <= 0 {
		return 0
	}
	return float64(ig.Sum(x0, y0, x1, y1)) / float64(area)
}

// Sobel computes the gradient-magnitude map with the 3x3 Sobel operator,
// normalized into the 16-bit range.
func Sobel(src *Frame) *Frame {
	return SobelInto(nil, src)
}

// SobelInto is Sobel with destination reuse (dst may be nil, must not alias
// src); it returns the destination used. Interior pixels read their taps
// from three direct row slices.
func SobelInto(dst, src *Frame) *Frame {
	dst = ensureDst(dst, src.Width(), src.Height(), src.Bounds)
	b := src.Bounds
	width := b.Width()
	for y := b.Y0; y < b.Y1; y++ {
		d0 := (y - b.Y0) * dst.Stride
		drow := dst.Pix[d0 : d0+width]
		if y > b.Y0 && y < b.Y1-1 && width > 2 {
			s0 := (y - b.Y0) * src.Stride
			rm := src.Pix[s0-src.Stride : s0-src.Stride+width]
			rc := src.Pix[s0 : s0+width]
			rp := src.Pix[s0+src.Stride : s0+src.Stride+width]
			drow[0] = sobelClamped(src, b.X0, y)
			for xx := 1; xx < width-1; xx++ {
				gx := -float64(rm[xx-1]) - 2*float64(rc[xx-1]) - float64(rp[xx-1]) +
					float64(rm[xx+1]) + 2*float64(rc[xx+1]) + float64(rp[xx+1])
				gy := -float64(rm[xx-1]) - 2*float64(rm[xx]) - float64(rm[xx+1]) +
					float64(rp[xx-1]) + 2*float64(rp[xx]) + float64(rp[xx+1])
				v := math.Hypot(gx, gy) / (4 * 65535) * 65535
				drow[xx] = clamp16(v)
			}
			drow[width-1] = sobelClamped(src, b.X1-1, y)
		} else {
			for x := b.X0; x < b.X1; x++ {
				drow[x-b.X0] = sobelClamped(src, x, y)
			}
		}
	}
	return dst
}

// sobelClamped is the border path of the Sobel operator.
func sobelClamped(src *Frame, x, y int) uint16 {
	p := func(dx, dy int) float64 { return float64(src.AtClamped(x+dx, y+dy)) }
	gx := -p(-1, -1) - 2*p(-1, 0) - p(-1, 1) + p(1, -1) + 2*p(1, 0) + p(1, 1)
	gy := -p(-1, -1) - 2*p(0, -1) - p(1, -1) + p(-1, 1) + 2*p(0, 1) + p(1, 1)
	// Scaled so a full-range step edge maps near the top of the
	// range: max |g| is 4*65535 per axis.
	v := math.Hypot(gx, gy) / (4 * 65535) * 65535
	return clamp16(v)
}

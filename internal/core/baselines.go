package core

import (
	"errors"
	"fmt"

	"triplec/internal/stats"
)

// Baseline models the paper argues against, kept for comparison in the
// ablation benches and the scheduler experiments.

// LastValueModel predicts that the next execution takes exactly as long as
// the previous one — naive persistence, the simplest dynamic baseline.
type LastValueModel struct {
	last    float64
	seen    bool
	initial float64 // trained mean, used before the first observation
}

// NewLastValueModel fits the cold-start value as the training mean.
func NewLastValueModel(samples []float64) (*LastValueModel, error) {
	if len(samples) == 0 {
		return nil, errors.New("core: last-value model needs samples")
	}
	return &LastValueModel{initial: stats.Mean(samples)}, nil
}

// Predict returns the previous observation (or the trained mean cold).
func (m *LastValueModel) Predict(Context) float64 {
	if !m.seen {
		return m.initial
	}
	return m.last
}

// Observe stores the observation.
func (m *LastValueModel) Observe(_ Context, actualMs float64) {
	m.last = actualMs
	m.seen = true
}

// ResetOnline clears the persistence state.
func (m *LastValueModel) ResetOnline() {
	m.last = 0
	m.seen = false
}

// Describe names the baseline.
func (m *LastValueModel) Describe() string { return "last-value baseline" }

// WorstCaseModel always predicts the largest value seen during training —
// the static worst-case reservation whose drawbacks motivate the paper:
// "for most of the time, the reserved resource budget is set too
// conservative" (Section 6).
type WorstCaseModel struct {
	Worst float64
}

// NewWorstCaseModel fits the reservation from training samples.
func NewWorstCaseModel(samples []float64) (*WorstCaseModel, error) {
	if len(samples) == 0 {
		return nil, errors.New("core: worst-case model needs samples")
	}
	return &WorstCaseModel{Worst: stats.Max(samples)}, nil
}

// Predict returns the reservation.
func (m *WorstCaseModel) Predict(Context) float64 { return m.Worst }

// Observe grows the reservation if the observation exceeds it (a real
// worst-case reservation must never be undercut).
func (m *WorstCaseModel) Observe(_ Context, actualMs float64) {
	if actualMs > m.Worst {
		m.Worst = actualMs
	}
}

// ResetOnline keeps the reservation (it is trained state, not online state).
func (m *WorstCaseModel) ResetOnline() {}

// Describe names the baseline.
func (m *WorstCaseModel) Describe() string {
	return fmt.Sprintf("worst-case reservation (%.4g)", m.Worst)
}

// OverReservation quantifies the waste of a worst-case reservation against
// an actual series: the mean fraction of the reserved budget left unused.
func OverReservation(reservedMs float64, actual []float64) (float64, error) {
	if reservedMs <= 0 {
		return 0, errors.New("core: reservation must be positive")
	}
	if len(actual) == 0 {
		return 0, errors.New("core: no actual series")
	}
	waste := 0.0
	for _, a := range actual {
		w := (reservedMs - a) / reservedMs
		if w < 0 {
			w = 0
		}
		waste += w
	}
	return waste / float64(len(actual)), nil
}

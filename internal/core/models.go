// Package core assembles the Triple-C predictor: per-task computation-time
// models following the paper's Table 2(b) (EWMA + Markov for the
// data-dependent tasks, a linear ROI growth function for RDG ROI, constants
// for the deterministic tasks), a state table for the data-dependent flow
// graph switches, and pass-throughs to the cache-memory and
// communication-bandwidth analyses — the three C's.
package core

import (
	"errors"
	"fmt"

	"triplec/internal/ewma"
	"triplec/internal/markov"
	"triplec/internal/stats"
)

// Context carries the per-frame inputs a model may depend on.
type Context struct {
	// ROIPixels is the size of the analysis region the task will process
	// (the full frame at full granularity).
	ROIPixels int
}

// Model predicts the next execution time of one task and learns from the
// observed value. Implementations keep online state (filter values, current
// Markov state) separate from trained parameters so they can be reset
// between sequences.
type Model interface {
	// Predict estimates the next execution time in milliseconds.
	Predict(ctx Context) float64
	// Observe feeds the actual time of the execution just performed.
	Observe(ctx Context, actualMs float64)
	// ResetOnline clears the online state while keeping trained parameters.
	ResetOnline()
	// Describe names the model the way Table 2(b) does.
	Describe() string
}

// ConstantModel predicts a fixed value — the paper models MKX EXT (2.5 ms),
// REG (2 ms), ROI EST (1 ms), ENH (24 ms) and ZOOM (12.5 ms) this way.
type ConstantModel struct {
	Ms float64
}

// NewConstantModel fits the constant as the mean of the training samples.
func NewConstantModel(samples []float64) (*ConstantModel, error) {
	if len(samples) == 0 {
		return nil, errors.New("core: constant model needs samples")
	}
	return &ConstantModel{Ms: stats.Mean(samples)}, nil
}

// Predict returns the constant.
func (m *ConstantModel) Predict(Context) float64 { return m.Ms }

// Observe is a no-op: the paper treats these tasks as deterministic.
func (m *ConstantModel) Observe(Context, float64) {}

// ResetOnline is a no-op.
func (m *ConstantModel) ResetOnline() {}

// Describe returns the Table 2(b) entry.
func (m *ConstantModel) Describe() string { return fmt.Sprintf("%.4g", m.Ms) }

// EWMAMarkovModel is the paper's composite model: an EWMA filter (Eq. 1)
// tracks the long-term structural level and a Markov chain over the
// quantized residuals predicts the short-term fluctuation on top.
type EWMAMarkovModel struct {
	filter *ewma.Filter
	chain  *markov.Chain
	name   string // chain label for Describe ("RDG", "CPLS", "GW")

	lastResidual float64
	seen         bool
	fallback     float64 // trained mean, used before the filter is primed
	// OnlineTraining adds observed transitions to the chain (the paper's
	// profiling step feeds statistics back for on-line model training).
	OnlineTraining bool
}

// NewEWMAMarkovModel trains the composite model from per-sequence series.
func NewEWMAMarkovModel(series [][]float64, alpha float64, maxStates int, name string) (*EWMAMarkovModel, error) {
	var residualSets [][]float64
	var all []float64
	for _, s := range series {
		if len(s) == 0 {
			continue
		}
		_, hpf, err := ewma.Decompose(s, alpha)
		if err != nil {
			return nil, err
		}
		residualSets = append(residualSets, hpf)
		all = append(all, s...)
	}
	if len(all) < 2 {
		return nil, errors.New("core: insufficient training data for EWMA+Markov model")
	}
	chain, err := markov.Train(residualSets, maxStates)
	if err != nil {
		return nil, err
	}
	filter, err := ewma.NewFilter(alpha)
	if err != nil {
		return nil, err
	}
	return &EWMAMarkovModel{
		filter:   filter,
		chain:    chain,
		name:     name,
		fallback: stats.Mean(all),
	}, nil
}

// Chain exposes the trained Markov chain (Table 2a rendering, ablations).
func (m *EWMAMarkovModel) Chain() *markov.Chain { return m.chain }

// Predict returns filter level plus expected residual transition.
func (m *EWMAMarkovModel) Predict(Context) float64 {
	if !m.filter.Primed() {
		return m.fallback
	}
	pred := m.filter.Value()
	if m.seen {
		pred += m.chain.ExpectedNext(m.lastResidual)
	}
	if pred < 0 {
		pred = 0
	}
	return pred
}

// Observe updates the filter and the residual state.
func (m *EWMAMarkovModel) Observe(_ Context, actualMs float64) {
	prevResidual := m.lastResidual
	lpf := m.filter.Update(actualMs)
	r := actualMs - lpf
	if m.OnlineTraining && m.seen {
		m.chain.AddTransition(prevResidual, r)
	}
	m.lastResidual = r
	m.seen = true
}

// ResetOnline clears the filter and residual state.
func (m *EWMAMarkovModel) ResetOnline() {
	m.filter.Reset()
	m.lastResidual = 0
	m.seen = false
}

// Describe returns the Table 2(b) entry.
func (m *EWMAMarkovModel) Describe() string {
	return fmt.Sprintf("<Eq. 1> + Markov %s", m.name)
}

// HoltMarkovModel is the trend-tracking variant of EWMAMarkovModel: a Holt
// double-exponential filter carries the long-term part, so the model keeps
// up with steadily drifting load where the plain EWMA lags by a constant
// offset. Not used by the paper (its Table 2b pairs Eq. 1 with the chains);
// provided for the trend-filter ablation.
type HoltMarkovModel struct {
	filter *ewma.Holt
	chain  *markov.Chain
	name   string

	lastResidual float64
	seen         bool
	fallback     float64
}

// NewHoltMarkovModel trains the Holt+Markov composite from per-sequence
// series, decomposing each against a Holt filter instead of the EWMA.
func NewHoltMarkovModel(series [][]float64, alpha, beta float64, maxStates int, name string) (*HoltMarkovModel, error) {
	var residualSets [][]float64
	var all []float64
	for _, s := range series {
		if len(s) == 0 {
			continue
		}
		h, err := ewma.NewHolt(alpha, beta)
		if err != nil {
			return nil, err
		}
		res := make([]float64, len(s))
		for i, x := range s {
			res[i] = x - h.Update(x)
		}
		residualSets = append(residualSets, res)
		all = append(all, s...)
	}
	if len(all) < 2 {
		return nil, errors.New("core: insufficient training data for Holt+Markov model")
	}
	chain, err := markov.Train(residualSets, maxStates)
	if err != nil {
		return nil, err
	}
	filter, err := ewma.NewHolt(alpha, beta)
	if err != nil {
		return nil, err
	}
	return &HoltMarkovModel{
		filter:   filter,
		chain:    chain,
		name:     name,
		fallback: stats.Mean(all),
	}, nil
}

// Predict returns the one-step Holt forecast plus the expected residual.
func (m *HoltMarkovModel) Predict(Context) float64 {
	if !m.filter.Primed() {
		return m.fallback
	}
	pred := m.filter.Forecast(1)
	if m.seen {
		pred += m.chain.ExpectedNext(m.lastResidual)
	}
	if pred < 0 {
		pred = 0
	}
	return pred
}

// Observe updates the filter and the residual state.
func (m *HoltMarkovModel) Observe(_ Context, actualMs float64) {
	level := m.filter.Update(actualMs)
	m.lastResidual = actualMs - level
	m.seen = true
}

// ResetOnline clears the filter and residual state.
func (m *HoltMarkovModel) ResetOnline() {
	m.filter.Reset()
	m.lastResidual = 0
	m.seen = false
}

// Describe names the variant.
func (m *HoltMarkovModel) Describe() string {
	return fmt.Sprintf("Holt + Markov %s", m.name)
}

// LinearMarkovModel models RDG ROI: the linear ROI growth function (Eq. 3)
// plus the shared RDG Markov chain over the detrended residuals.
type LinearMarkovModel struct {
	growth ewma.LinearGrowth
	chain  *markov.Chain
	name   string

	lastResidual float64
	seen         bool
	// OnlineTraining adds observed transitions to the chain.
	OnlineTraining bool
}

// NewLinearMarkovModel builds the model from a fitted growth function and a
// trained (shared) chain.
func NewLinearMarkovModel(growth ewma.LinearGrowth, chain *markov.Chain, name string) (*LinearMarkovModel, error) {
	if chain == nil {
		return nil, errors.New("core: linear model needs a chain")
	}
	return &LinearMarkovModel{growth: growth, chain: chain, name: name}, nil
}

// Growth exposes the fitted Eq. 3 coefficients.
func (m *LinearMarkovModel) Growth() ewma.LinearGrowth { return m.growth }

// Predict evaluates the growth function at the context's ROI size plus the
// expected residual transition.
func (m *LinearMarkovModel) Predict(ctx Context) float64 {
	pred := m.growth.Predict(float64(ctx.ROIPixels))
	if m.seen {
		pred += m.chain.ExpectedNext(m.lastResidual)
	}
	if pred < 0 {
		pred = 0
	}
	return pred
}

// Observe updates the residual state against the growth trend.
func (m *LinearMarkovModel) Observe(ctx Context, actualMs float64) {
	prev := m.lastResidual
	r := actualMs - m.growth.Predict(float64(ctx.ROIPixels))
	if m.OnlineTraining && m.seen {
		m.chain.AddTransition(prev, r)
	}
	m.lastResidual = r
	m.seen = true
}

// ResetOnline clears the residual state.
func (m *LinearMarkovModel) ResetOnline() {
	m.lastResidual = 0
	m.seen = false
}

// Describe returns the Table 2(b) entry.
func (m *LinearMarkovModel) Describe() string {
	return fmt.Sprintf("<Eq. 3> + Markov %s", m.name)
}

package core

import (
	"math"
	"strings"
	"testing"

	"triplec/internal/ewma"
	"triplec/internal/flowgraph"
	"triplec/internal/frame"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/synth"
	"triplec/internal/tasks"
)

// observe runs the pipeline over a synthetic sequence and returns the
// observation stream (serial mapping — the profiling configuration).
func observe(t *testing.T, seed uint64, frames int) []Observation {
	t.Helper()
	scfg := synth.DefaultConfig(seed)
	scfg.Width, scfg.Height = 128, 128
	scfg.MarkerSpacing = 36
	scfg.NoiseSigma = 250
	scfg.QuantumGain = 0
	scfg.ClutterRate = 3
	scfg.DropoutEvery = 23
	seq, err := synth.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pipeline.New(pipeline.Config{
		Width: 128, Height: 128, MarkerSpacing: 36, Arch: platform.Blackford(),
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := eng.RunSequence(frames, func(i int) *frame.Frame {
		f, _ := seq.Frame(i)
		return f
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return FromReports(reports, 128*128)
}

// trainSets returns n observation sequences with distinct seeds.
func trainSets(t *testing.T, n, frames int) [][]Observation {
	t.Helper()
	out := make([][]Observation, n)
	for i := range out {
		out[i] = observe(t, 1000+uint64(i)*17, frames)
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Fatal("no sequences accepted")
	}
}

func TestTrainBuildsTable2bModels(t *testing.T) {
	p, err := Train(trainSets(t, 4, 60), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	expect := map[tasks.Name]string{
		tasks.NameRDGFull: "<Eq. 1> + Markov RDG",
		tasks.NameRDGROI:  "<Eq. 3> + Markov RDG",
		tasks.NameCPLSSel: "<Eq. 1> + Markov CPLS",
		tasks.NameGWExt:   "<Eq. 1> + Markov GW",
	}
	for task, want := range expect {
		m, ok := p.Models[task]
		if !ok {
			t.Fatalf("no model for %s", task)
		}
		if m.Describe() != want {
			t.Fatalf("%s model = %q, want %q", task, m.Describe(), want)
		}
	}
	// Constant tasks.
	for _, task := range []tasks.Name{tasks.NameMKXExt, tasks.NameREG, tasks.NameROIEst, tasks.NameENH, tasks.NameZOOM} {
		m, ok := p.Models[task]
		if !ok {
			t.Fatalf("no model for %s", task)
		}
		if _, isConst := m.(*ConstantModel); !isConst {
			t.Fatalf("%s must be a constant model, got %T", task, m)
		}
	}
}

func TestRDGVariantsShareChain(t *testing.T) {
	p, err := Train(trainSets(t, 4, 60), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	full := p.Models[tasks.NameRDGFull].(*EWMAMarkovModel)
	roi := p.Models[tasks.NameRDGROI].(*LinearMarkovModel)
	if full.Chain() != roi.chain {
		t.Fatal("RDG FULL and RDG ROI must share a single Markov chain (paper §4)")
	}
}

func TestConstantModelsNearTable2b(t *testing.T) {
	p, err := Train(trainSets(t, 4, 60), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated cost model must land the constants near the paper's
	// values (generous bands; exact values depend on task configuration).
	checks := []struct {
		task   tasks.Name
		lo, hi float64
	}{
		{tasks.NameREG, 0.5, 5},
		{tasks.NameROIEst, 0.05, 3},
		{tasks.NameMKXExt, 0.8, 6},
		{tasks.NameENH, 5, 40},
		{tasks.NameZOOM, 5, 25},
	}
	for _, c := range checks {
		ms := p.Models[c.task].(*ConstantModel).Ms
		if ms < c.lo || ms > c.hi {
			t.Fatalf("%s constant = %.2f ms, want within [%v, %v]", c.task, ms, c.lo, c.hi)
		}
	}
}

func TestScenarioTable(t *testing.T) {
	var tab ScenarioTable
	a, b := flowgraph.FromIndex(4), flowgraph.FromIndex(5)
	// Unseen row: predict self.
	if tab.MostLikelyNext(a) != a {
		t.Fatal("unseen row must predict self-transition")
	}
	if tab.P(a, a) != 1 || tab.P(a, b) != 0 {
		t.Fatal("unseen row probabilities wrong")
	}
	tab.Add(a, b)
	tab.Add(a, b)
	tab.Add(a, a)
	if got := tab.P(a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("P = %v, want 2/3", got)
	}
	if tab.MostLikelyNext(a) != b {
		t.Fatal("most likely successor wrong")
	}
}

func TestPredictNextBeforeObservation(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.ResetOnline()
	pred := p.PredictNext()
	if pred.Scenario != flowgraph.WorstCase() {
		t.Fatalf("cold prediction must assume the worst case, got %v", pred.Scenario)
	}
	if pred.TotalMs <= 0 {
		t.Fatal("cold prediction must still produce a positive total")
	}
}

func TestObservePredictCycle(t *testing.T) {
	seqs := trainSets(t, 3, 50)
	p, err := Train(seqs, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	test := observe(t, 4242, 50)
	p.ResetOnline()
	for i, obs := range test {
		pred := p.PredictNext()
		if pred.TotalMs < 0 {
			t.Fatalf("frame %d: negative prediction", i)
		}
		p.Observe(obs)
	}
}

// TestHeadlineAccuracy reproduces the paper's §7 claim shape: high average
// prediction accuracy (the paper reports 97%) with bounded sporadic
// excursions (20-30% in the paper). We require >= 85% average accuracy and
// excursions below 80% on held-out sequences.
func TestHeadlineAccuracy(t *testing.T) {
	p, err := Train(trainSets(t, 6, 80), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	testSeqs := [][]Observation{
		observe(t, 999983, 80),
		observe(t, 777777, 80),
	}
	acc, err := p.Evaluate(testSeqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Frames < 100 {
		t.Fatalf("evaluated only %d frames", acc.Frames)
	}
	if acc.Mean < 0.85 {
		t.Fatalf("mean accuracy %.3f below 0.85 (paper: 0.97)", acc.Mean)
	}
	if acc.WorstExcursion > 0.8 {
		t.Fatalf("worst excursion %.2f too large", acc.WorstExcursion)
	}
	if acc.ScenarioHits < 0.7 {
		t.Fatalf("scenario prediction rate %.2f too low", acc.ScenarioHits)
	}
}

func TestEvaluateValidation(t *testing.T) {
	p, err := Train(trainSets(t, 2, 40), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Evaluate(nil, 1); err == nil {
		t.Fatal("empty evaluation accepted")
	}
}

func TestModelSummaryRendersTable2b(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.ModelSummary()
	for _, want := range []string{"RDG_FULL", "<Eq. 1> + Markov RDG", "<Eq. 3> + Markov RDG", "CPLS", "GW"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestRDGChainRendersTable2a(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.RDGChain() == nil {
		t.Fatal("no RDG chain")
	}
	out := p.RDGChain().Chain().Render()
	if !strings.Contains(out, "s0") {
		t.Fatalf("Table 2a render wrong:\n%s", out)
	}
	if p.RDGChain().Chain().States() < 2 {
		t.Fatal("RDG chain must have at least 2 states")
	}
}

func TestPredictResourcesThreeCs(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.ResetOnline()
	res, err := p.PredictResources(2048, 4096, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMs <= 0 {
		t.Fatal("computation prediction missing")
	}
	if res.TotalMBs <= 0 || res.InterMBs <= 0 {
		t.Fatal("bandwidth prediction missing")
	}
	if len(res.MemoryKB) == 0 {
		t.Fatal("memory prediction missing")
	}
	// Worst-case scenario must include RDG FULL's 14,336 KB footprint.
	if res.MemoryKB[tasks.NameRDGFull] != 2048+7168+5120 {
		t.Fatalf("RDG FULL memory = %d KB", res.MemoryKB[tasks.NameRDGFull])
	}
}

func TestConstantModel(t *testing.T) {
	if _, err := NewConstantModel(nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	m, err := NewConstantModel([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(Context{}) != 3 {
		t.Fatal("constant must be the mean")
	}
	m.Observe(Context{}, 100)
	if m.Predict(Context{}) != 3 {
		t.Fatal("constant model must ignore observations")
	}
}

func TestEWMAMarkovModelValidation(t *testing.T) {
	if _, err := NewEWMAMarkovModel(nil, 0.2, 10, "X"); err == nil {
		t.Fatal("no data accepted")
	}
	if _, err := NewEWMAMarkovModel([][]float64{{1, 2, 3}}, 0, 10, "X"); err == nil {
		t.Fatal("invalid alpha accepted")
	}
}

func TestEWMAMarkovModelTracksLevelShift(t *testing.T) {
	// Train on a two-level series; after observing a run at the high level,
	// the prediction must be near the high level, not the global mean.
	series := make([]float64, 200)
	for i := range series {
		if i < 100 {
			series[i] = 10
		} else {
			series[i] = 50
		}
	}
	m, err := NewEWMAMarkovModel([][]float64{series}, 0.3, 10, "X")
	if err != nil {
		t.Fatal(err)
	}
	m.ResetOnline()
	for i := 0; i < 30; i++ {
		m.Observe(Context{}, 50)
	}
	if pred := m.Predict(Context{}); math.Abs(pred-50) > 5 {
		t.Fatalf("prediction %v did not adapt to the 50-level", pred)
	}
}

func TestEWMAMarkovResetOnline(t *testing.T) {
	m, err := NewEWMAMarkovModel([][]float64{{5, 6, 7, 8, 9, 10}}, 0.3, 10, "X")
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(Context{}, 100)
	m.ResetOnline()
	cold := m.Predict(Context{})
	if math.Abs(cold-7.5) > 1e-9 { // trained mean fallback
		t.Fatalf("cold prediction = %v, want trained mean 7.5", cold)
	}
}

func TestLinearMarkovModelValidation(t *testing.T) {
	if _, err := NewLinearMarkovModel(ewmaGrowth(1, 0), nil, "X"); err == nil {
		t.Fatal("nil chain accepted")
	}
}

func TestLinearMarkovModelUsesROISize(t *testing.T) {
	m, err := NewEWMAMarkovModel([][]float64{{0, 1, -1, 0, 1, -1, 0}}, 0.3, 4, "RDG")
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewLinearMarkovModel(ewmaGrowth(0.001, 5), m.Chain(), "RDG")
	if err != nil {
		t.Fatal(err)
	}
	small := lm.Predict(Context{ROIPixels: 1000})
	large := lm.Predict(Context{ROIPixels: 100000})
	if large <= small {
		t.Fatal("prediction must grow with ROI size (Eq. 3)")
	}
}

func TestFromReportsCarriesFields(t *testing.T) {
	obs := observe(t, 31337, 20)
	if len(obs) != 20 {
		t.Fatalf("observations = %d", len(obs))
	}
	for i, o := range obs {
		if o.FramePixels != 128*128 {
			t.Fatalf("frame %d: FramePixels = %d", i, o.FramePixels)
		}
		if o.AnalysisPixels <= 0 {
			t.Fatalf("frame %d: AnalysisPixels missing", i)
		}
		if o.TotalMs <= 0 || len(o.TaskMs) == 0 {
			t.Fatalf("frame %d: timing missing", i)
		}
	}
}

// ewmaGrowth builds a LinearGrowth without the fitting path.
func ewmaGrowth(slope, intercept float64) ewma.LinearGrowth {
	return ewma.LinearGrowth{Slope: slope, Intercept: intercept}
}

func TestEvaluatePerTask(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := p.EvaluatePerTask([][]Observation{observe(t, 818181, 60)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) < 5 {
		t.Fatalf("per-task accuracies for only %d tasks", len(accs))
	}
	byTask := map[tasks.Name]TaskAccuracy{}
	for _, a := range accs {
		if a.Samples <= 0 {
			t.Fatalf("%s: no samples", a.Task)
		}
		byTask[a.Task] = a
	}
	// Constant tasks must predict near-perfectly.
	for _, task := range []tasks.Name{tasks.NameREG, tasks.NameZOOM} {
		a, ok := byTask[task]
		if !ok {
			t.Fatalf("no accuracy for %s", task)
		}
		if a.Mean < 0.95 {
			t.Fatalf("%s accuracy %.3f, want >= 0.95 (constant model)", task, a.Mean)
		}
	}
	// The data-dependent RDG FULL must still be well predicted.
	if a, ok := byTask[tasks.NameRDGFull]; ok && a.Mean < 0.8 {
		t.Fatalf("RDG FULL accuracy %.3f too low", a.Mean)
	}
	if _, err := p.EvaluatePerTask(nil, 1); err == nil {
		t.Fatal("empty evaluation accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	seqs := trainSets(t, 4, 50)
	cv, err := CrossValidate(seqs, 4, TrainConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != 4 {
		t.Fatalf("folds = %d, want 4", len(cv.Folds))
	}
	if cv.MeanAcc < 0.8 {
		t.Fatalf("cross-validated mean accuracy %.3f too low", cv.MeanAcc)
	}
	if cv.WorstAcc > cv.MeanAcc {
		t.Fatal("worst fold cannot exceed the mean")
	}
	if cv.StdAcc < 0 {
		t.Fatal("negative std")
	}
}

func TestCrossValidateValidation(t *testing.T) {
	seqs := trainSets(t, 2, 30)
	if _, err := CrossValidate(seqs, 1, TrainConfig{}, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := CrossValidate(seqs, 5, TrainConfig{}, 1); err == nil {
		t.Fatal("more folds than sequences accepted")
	}
}

func TestScenarioTableSuccessors(t *testing.T) {
	var tab ScenarioTable
	a := flowgraph.FromIndex(4)
	b := flowgraph.FromIndex(5)
	c := flowgraph.FromIndex(6)
	// Unseen row: self-transition only.
	succ := tab.Successors(a, 0.1)
	if len(succ) != 1 || succ[0] != a {
		t.Fatalf("unseen successors = %v", succ)
	}
	for i := 0; i < 8; i++ {
		tab.Add(a, b)
	}
	tab.Add(a, c)
	tab.Add(a, c)
	// P(b)=0.8, P(c)=0.2: both above 0.1, ordered descending.
	succ = tab.Successors(a, 0.1)
	if len(succ) != 2 || succ[0] != b || succ[1] != c {
		t.Fatalf("successors = %v, want [b c]", succ)
	}
	// Threshold filters the rare one.
	succ = tab.Successors(a, 0.5)
	if len(succ) != 1 || succ[0] != b {
		t.Fatalf("filtered successors = %v", succ)
	}
}

func TestPredictorContextAccessors(t *testing.T) {
	p, err := Train(trainSets(t, 2, 40), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.ResetOnline()
	if _, ok := p.LastScenario(); ok {
		t.Fatal("cold predictor must report no last scenario")
	}
	if ctx := p.NextContext(); ctx.ROIPixels != 0 {
		t.Fatalf("cold context = %+v", ctx)
	}
	obs := Observation{
		Scenario:     flowgraph.WorstCase(),
		EstROIPixels: 4000,
		FramePixels:  128 * 128,
		TaskMs:       map[tasks.Name]float64{},
	}
	p.Observe(obs)
	if s, ok := p.LastScenario(); !ok || s != flowgraph.WorstCase() {
		t.Fatalf("LastScenario = %v, %v", s, ok)
	}
	if ctx := p.NextContext(); ctx.ROIPixels != 4000 {
		t.Fatalf("context after ROI estimate = %+v", ctx)
	}
	obs.EstROIPixels = 0
	p.Observe(obs)
	if ctx := p.NextContext(); ctx.ROIPixels != 128*128 {
		t.Fatalf("context without ROI = %+v", ctx)
	}
}

func TestPredictTasksFor(t *testing.T) {
	p, err := Train(trainSets(t, 2, 40), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.ResetOnline()
	full := p.PredictTasksFor(flowgraph.WorstCase(), Context{ROIPixels: 128 * 128})
	if len(full) < 7 {
		t.Fatalf("worst case predicted only %d tasks", len(full))
	}
	best := p.PredictTasksFor(flowgraph.BestCase(), Context{ROIPixels: 4000})
	if len(best) >= len(full) {
		t.Fatal("best case must predict fewer tasks")
	}
	for task, ms := range full {
		if ms < 0 {
			t.Fatalf("%s predicted %v", task, ms)
		}
	}
}

func TestLinearMarkovGrowthAccessor(t *testing.T) {
	p, err := Train(trainSets(t, 2, 40), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	roi := p.Models[tasks.NameRDGROI].(*LinearMarkovModel)
	if roi.Growth().Slope <= 0 {
		t.Fatalf("RDG ROI growth slope = %v, want positive", roi.Growth().Slope)
	}
}

func TestConstantModelObserveResetNoops(t *testing.T) {
	m, err := NewConstantModel([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(Context{}, 99)
	m.ResetOnline()
	if m.Predict(Context{}) != 5 {
		t.Fatal("constant model changed")
	}
}

func TestWorstCaseResetOnlineKeeps(t *testing.T) {
	m, err := NewWorstCaseModel([]float64{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	m.ResetOnline()
	if m.Worst != 9 {
		t.Fatal("reservation lost on reset")
	}
}

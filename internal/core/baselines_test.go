package core

import (
	"math"
	"strings"
	"testing"
)

func TestLastValueModel(t *testing.T) {
	m, err := NewLastValueModel([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(Context{}) != 15 {
		t.Fatal("cold prediction must be the training mean")
	}
	m.Observe(Context{}, 42)
	if m.Predict(Context{}) != 42 {
		t.Fatal("must persist the last value")
	}
	m.ResetOnline()
	if m.Predict(Context{}) != 15 {
		t.Fatal("reset must return to the trained mean")
	}
	if _, err := NewLastValueModel(nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	if !strings.Contains(m.Describe(), "last-value") {
		t.Fatal("Describe wrong")
	}
}

func TestWorstCaseModel(t *testing.T) {
	m, err := NewWorstCaseModel([]float64{10, 50, 30})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(Context{}) != 50 {
		t.Fatal("must predict the training maximum")
	}
	m.Observe(Context{}, 70)
	if m.Predict(Context{}) != 70 {
		t.Fatal("reservation must grow when undercut")
	}
	m.Observe(Context{}, 10)
	if m.Predict(Context{}) != 70 {
		t.Fatal("reservation must never shrink")
	}
	m.ResetOnline()
	if m.Predict(Context{}) != 70 {
		t.Fatal("ResetOnline must keep the reservation")
	}
	if _, err := NewWorstCaseModel(nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	if !strings.Contains(m.Describe(), "worst-case") {
		t.Fatal("Describe wrong")
	}
}

func TestOverReservation(t *testing.T) {
	// Reserve 100; actual usage 50 -> 50% wasted on average.
	waste, err := OverReservation(100, []float64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(waste-0.5) > 1e-12 {
		t.Fatalf("waste = %v, want 0.5", waste)
	}
	// Overruns count as zero waste, not negative.
	waste, err = OverReservation(100, []float64{150})
	if err != nil {
		t.Fatal(err)
	}
	if waste != 0 {
		t.Fatalf("overrun waste = %v, want 0", waste)
	}
	if _, err := OverReservation(0, []float64{1}); err == nil {
		t.Fatal("zero reservation accepted")
	}
	if _, err := OverReservation(10, nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

// TestTripleCBeatsBaselinesOnDynamicSeries: on a series with both a level
// shift and short-term correlation, the composite model must out-predict
// the worst-case reservation (which by construction over-predicts) and at
// least match naive persistence.
func TestTripleCBeatsBaselinesOnDynamicSeries(t *testing.T) {
	// Two-level series with AR(1)-style wiggle.
	series := make([]float64, 400)
	level := 20.0
	for i := range series {
		if i == 200 {
			level = 45
		}
		wiggle := 3 * math.Sin(float64(i)*1.3)
		series[i] = level + wiggle
	}
	train, test := series[:300], series[300:]

	tri, err := NewEWMAMarkovModel([][]float64{train}, 0.2, 10, "X")
	if err != nil {
		t.Fatal(err)
	}
	worst, err := NewWorstCaseModel(train)
	if err != nil {
		t.Fatal(err)
	}

	score := func(m Model) float64 {
		m.ResetOnline()
		err := 0.0
		for i := 1; i < len(test); i++ {
			m.Observe(Context{}, test[i-1])
			err += math.Abs(m.Predict(Context{}) - test[i])
		}
		return err
	}
	triErr := score(tri)
	worstErr := score(worst)
	if triErr >= worstErr {
		t.Fatalf("Triple-C error %v must beat worst-case reservation %v", triErr, worstErr)
	}
}

// TestOnlineTrainingAdapts: with OnlineTraining enabled, the chain keeps
// counting transitions, so a model trained on one regime improves on a new
// regime as it observes it (the paper's profiling feedback loop).
func TestOnlineTrainingAdapts(t *testing.T) {
	// Training regime: strictly alternating +2/-2 residuals around 30, so
	// the chain learns P(high -> low) = 1.
	train := make([]float64, 200)
	for i := range train {
		train[i] = 30 + 2*math.Pow(-1, float64(i))
	}
	// Deployment regime: the same two residual levels but persistent runs
	// of three — the transition structure changed, which only online
	// transition counting can pick up.
	deploy := make([]float64, 300)
	for i := range deploy {
		if (i/3)%2 == 0 {
			deploy[i] = 32
		} else {
			deploy[i] = 28
		}
	}

	run := func(online bool) float64 {
		m, err := NewEWMAMarkovModel([][]float64{train}, 0.3, 10, "X")
		if err != nil {
			t.Fatal(err)
		}
		m.OnlineTraining = online
		m.ResetOnline()
		errSum := 0.0
		for i := 1; i < len(deploy); i++ {
			m.Observe(Context{}, deploy[i-1])
			// Only score the second half, after adaptation had a chance.
			if i > len(deploy)/2 {
				errSum += math.Abs(m.Predict(Context{}) - deploy[i])
			}
		}
		return errSum
	}
	withOnline := run(true)
	withoutOnline := run(false)
	if withOnline >= withoutOnline {
		t.Fatalf("online training must adapt: online err %v vs frozen %v", withOnline, withoutOnline)
	}
}

func TestHoltMarkovModelValidation(t *testing.T) {
	if _, err := NewHoltMarkovModel(nil, 0.3, 0.3, 10, "X"); err == nil {
		t.Fatal("no data accepted")
	}
	if _, err := NewHoltMarkovModel([][]float64{{1, 2, 3}}, 0, 0.3, 10, "X"); err == nil {
		t.Fatal("invalid alpha accepted")
	}
}

func TestHoltMarkovBeatsEWMAOnDrift(t *testing.T) {
	// With a constant drift, the EWMA's lag is absorbed by the residual
	// chain (its representatives learn the offset), so the variants tie.
	// The Holt trend term wins when the drift RATE changes between training
	// and deployment: the chain's trained offset is now wrong, while Holt
	// re-estimates the trend online.
	mk := func(n int, slope float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = 20 + slope*float64(i) + 1.5*math.Sin(float64(i)*2.1)
		}
		return s
	}
	train := mk(300, 0.05)
	test := mk(200, 1.0)
	holt, err := NewHoltMarkovModel([][]float64{train}, 0.3, 0.2, 10, "X")
	if err != nil {
		t.Fatal(err)
	}
	ew, err := NewEWMAMarkovModel([][]float64{train}, 0.3, 10, "X")
	if err != nil {
		t.Fatal(err)
	}
	score := func(m Model) float64 {
		m.ResetOnline()
		errSum := 0.0
		for i := 1; i < len(test); i++ {
			m.Observe(Context{}, test[i-1])
			errSum += math.Abs(m.Predict(Context{}) - test[i])
		}
		return errSum
	}
	if hs, es := score(holt), score(ew); hs >= es {
		t.Fatalf("Holt error %v must beat EWMA %v on drifting load", hs, es)
	}
}

func TestHoltMarkovColdFallback(t *testing.T) {
	m, err := NewHoltMarkovModel([][]float64{{10, 20, 30}}, 0.3, 0.3, 10, "X")
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(Context{}) != 20 {
		t.Fatalf("cold prediction = %v, want trained mean 20", m.Predict(Context{}))
	}
	if m.Describe() != "Holt + Markov X" {
		t.Fatalf("Describe = %q", m.Describe())
	}
}

package core

import (
	"triplec/internal/flowgraph"
	"triplec/internal/pipeline"
	"triplec/internal/tasks"
)

// This file defines the pluggable prediction-backend seam used by the live
// shadow bake-off (internal/shadow): a Backend observes each executed
// frame and forecasts the next one, exactly like the deployed Predictor,
// but through dense allocation-free types so any number of backends can be
// raced on the serving frame path without heap traffic. The deployed
// EWMA+Markov predictor implements the interface via BaselineBackend; the
// alternatives (order-2 Markov, online ridge regression, tail quantiles)
// live in internal/shadow.

// BackendBaseline names the deployed EWMA+Markov predictor in scoreboard
// rankings, /healthz and flight-recorder dump metadata.
const BackendBaseline = "ewma+markov"

// FrameObs is the dense, allocation-free per-frame observation fed to
// shadow backends — the map-free mirror of Observation. TaskMs is indexed
// by tasks.IndexOf; Mask bit i is set when task i executed this frame.
// TotalMs is the serial-equivalent total (the sum of the per-task times),
// which is mapping-independent — scoring against the parallel frame
// latency would conflate prediction error with scheduling luck.
type FrameObs struct {
	Scenario       flowgraph.Scenario
	AnalysisPixels int
	EstROIPixels   int
	FramePixels    int
	TaskMs         [tasks.NumNames]float64
	Mask           uint16
	TotalMs        float64
}

// FramePrediction is one backend's dense next-frame forecast: the scenario
// it expects and per-task times for that scenario's active set (Mask bit i
// set when TaskMs[i] is a real prediction).
type FramePrediction struct {
	Scenario flowgraph.Scenario
	TaskMs   [tasks.NumNames]float64
	Mask     uint16
	TotalMs  float64
}

// Backend is a pluggable next-frame resource predictor raced in shadow
// mode. Implementations follow the Predictor's single-goroutine contract
// and must not allocate in Observe or Predict once constructed — the
// shadow scoreboard pins the whole observe-score-repredict cycle at zero
// allocations per frame.
type Backend interface {
	// Name identifies the backend in scoreboards, metrics labels and
	// reports. It must be stable and unique within a raced set.
	Name() string
	// Observe feeds the frame just executed.
	Observe(obs *FrameObs)
	// Predict writes the forecast for the next frame into *dst.
	Predict(dst *FramePrediction)
	// Reset clears per-sequence online state while keeping trained
	// parameters (the Model.ResetOnline contract).
	Reset()
}

// Dense converts the map-backed observation into its dense form.
func (o *Observation) Dense(dst *FrameObs) {
	*dst = FrameObs{
		Scenario:       o.Scenario,
		AnalysisPixels: o.AnalysisPixels,
		EstROIPixels:   o.EstROIPixels,
		FramePixels:    o.FramePixels,
	}
	for task, ms := range o.TaskMs {
		ti := tasks.IndexOf(task)
		if ti < 0 {
			continue
		}
		dst.TaskMs[ti] = ms
		dst.Mask |= 1 << uint(ti)
	}
	// Sum in dense index order, not map order: float addition is not
	// associative at the ulp level and the reports must be byte-stable.
	for ti := 0; ti < tasks.NumNames; ti++ {
		if dst.Mask&(1<<uint(ti)) != 0 {
			dst.TotalMs += dst.TaskMs[ti]
		}
	}
}

// DenseFromReport fills dst from a pipeline report without allocating —
// the serving loop's entry into the shadow scoreboard.
func DenseFromReport(rep *pipeline.Report, framePixels int, dst *FrameObs) {
	*dst = FrameObs{
		Scenario:       rep.Scenario,
		AnalysisPixels: rep.AnalysisPixels,
		EstROIPixels:   rep.ROI.Area(),
		FramePixels:    framePixels,
	}
	for _, e := range rep.Execs {
		ti := tasks.IndexOf(e.Task)
		if ti < 0 {
			continue
		}
		dst.TaskMs[ti] = e.Ms
		dst.Mask |= 1 << uint(ti)
		dst.TotalMs += e.Ms
	}
}

// ScenarioTaskLists precomputes each scenario's active task set as dense
// indices plus the matching mask, so backends can iterate a forecast's
// task set without the per-call slice ActiveTasks allocates.
type ScenarioTaskLists struct {
	Lists [8][]int
	Masks [8]uint16
}

// NewScenarioTaskLists builds the fixed scenario → active-task tables.
func NewScenarioTaskLists() *ScenarioTaskLists {
	l := &ScenarioTaskLists{}
	for i := 0; i < 8; i++ {
		for _, task := range flowgraph.FromIndex(i).ActiveTasks() {
			ti := tasks.IndexOf(task)
			if ti < 0 {
				continue
			}
			l.Lists[i] = append(l.Lists[i], ti)
			l.Masks[i] |= 1 << uint(ti)
		}
	}
	return l
}

// BaselineBackend adapts a Predictor to the Backend interface with an
// allocation-free predict path: it drives the predictor's models and
// scenario table directly over dense task indices, mirroring
// Predictor.Observe / PredictNext exactly (same scenario constraint, same
// ROI context) minus the per-call map the original allocates. Wrap a
// *clone* of the deployed predictor (Predictor.Clone): the backend owns
// its online state, so shadow evaluation never perturbs — and is never
// perturbed by — the instance steering the scheduler.
type BaselineBackend struct {
	p      *Predictor
	models [tasks.NumNames]Model // dense handles; nil when the task has no model
	active *ScenarioTaskLists

	last FrameObs
	seen bool
}

// NewBaselineBackend wraps a trained predictor.
func NewBaselineBackend(p *Predictor) *BaselineBackend {
	b := &BaselineBackend{p: p, active: NewScenarioTaskLists()}
	for i, task := range tasks.AllNames() {
		b.models[i] = p.Models[task]
	}
	return b
}

// Name implements Backend.
func (b *BaselineBackend) Name() string { return BackendBaseline }

// Observe implements Backend: every executed task's model learns from the
// actual time at the region size the frame actually processed.
func (b *BaselineBackend) Observe(obs *FrameObs) {
	ctx := Context{ROIPixels: obs.AnalysisPixels}
	for ti := 0; ti < tasks.NumNames; ti++ {
		if obs.Mask&(1<<uint(ti)) == 0 || b.models[ti] == nil {
			continue
		}
		b.models[ti].Observe(ctx, obs.TaskMs[ti])
	}
	b.last = *obs
	b.seen = true
}

// Predict implements Backend: the state table's most likely successor,
// constrained by the ROI physics (the next frame processes an ROI exactly
// when this frame estimated one), then one model prediction per active
// task — PredictNext without the map.
func (b *BaselineBackend) Predict(dst *FramePrediction) {
	*dst = FramePrediction{}
	roiPixels := 0
	if !b.seen {
		dst.Scenario = flowgraph.WorstCase()
	} else {
		s := b.p.Scenarios.MostLikelyNext(b.last.Scenario)
		s.ROIKnown = b.last.EstROIPixels > 0
		dst.Scenario = s
		if s.ROIKnown {
			roiPixels = b.last.EstROIPixels
		} else {
			roiPixels = b.last.FramePixels
		}
	}
	ctx := Context{ROIPixels: roiPixels}
	si := dst.Scenario.Index()
	for _, ti := range b.active.Lists[si] {
		if b.models[ti] == nil {
			continue
		}
		ms := b.models[ti].Predict(ctx)
		dst.TaskMs[ti] = ms
		dst.Mask |= 1 << uint(ti)
		dst.TotalMs += ms
	}
}

// Reset implements Backend.
func (b *BaselineBackend) Reset() {
	b.p.ResetOnline()
	b.seen = false
	b.last = FrameObs{}
}

package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"triplec/internal/flowgraph"
	"triplec/internal/tasks"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Models) != len(p.Models) {
		t.Fatalf("model count %d != %d", len(q.Models), len(p.Models))
	}
	// Model summaries (Table 2b) must match.
	if p.ModelSummary() != q.ModelSummary() {
		t.Fatalf("summaries differ:\n%s\nvs\n%s", p.ModelSummary(), q.ModelSummary())
	}
}

func TestSaveLoadPredictionsIdentical(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the same observations must produce identical predictions.
	test := observe(t, 313370, 40)
	p.ResetOnline()
	q.ResetOnline()
	for i, obs := range test {
		pp := p.PredictNext()
		qq := q.PredictNext()
		if pp.Scenario != qq.Scenario {
			t.Fatalf("frame %d: scenario %v vs %v", i, pp.Scenario, qq.Scenario)
		}
		if math.Abs(pp.TotalMs-qq.TotalMs) > 1e-9 {
			t.Fatalf("frame %d: prediction %v vs %v", i, pp.TotalMs, qq.TotalMs)
		}
		p.Observe(obs)
		q.Observe(obs)
	}
}

func TestLoadPreservesSharedRDGChain(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	full, ok := q.Models[tasks.NameRDGFull].(*EWMAMarkovModel)
	if !ok {
		t.Fatal("RDG FULL model lost its type")
	}
	roi, ok := q.Models[tasks.NameRDGROI].(*LinearMarkovModel)
	if !ok {
		t.Fatal("RDG ROI model lost its type")
	}
	if full.chain != roi.chain {
		t.Fatal("restored RDG variants no longer share one chain")
	}
	if q.RDGChain() == nil {
		t.Fatal("RDGChain accessor lost after load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99, "models": {"X": {"kind": "constant"}}}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "models": {}}`)); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "models": {"A": {"kind": "wat"}}}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "models": {"A": {"kind": "ewma-markov", "alpha": 0.2, "chainName": "missing"}}}`)); err == nil {
		t.Fatal("missing chain accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "models": {"A": {"kind": "ewma-markov", "alpha": 9, "chainName": "C"}}, "chains": {"C": {"cuts": [], "reps": [0], "counts": [[0]]}}}`)); err == nil {
		t.Fatal("invalid alpha accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "models": {"A": {"kind": "linear-markov", "chainName": "C"}}, "chains": {"C": {"cuts": [], "reps": [0], "counts": [[0]]}}}`)); err == nil {
		t.Fatal("missing growth accepted")
	}
}

func TestScenarioTableSurvivesRoundTrip(t *testing.T) {
	p, err := Train(trainSets(t, 3, 50), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			from, to := flowgraph.FromIndex(i), flowgraph.FromIndex(j)
			if math.Abs(p.Scenarios.P(from, to)-q.Scenarios.P(from, to)) > 1e-12 {
				t.Fatalf("scenario P(%d,%d) differs", i, j)
			}
		}
	}
}

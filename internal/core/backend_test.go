package core

import (
	"math"
	"testing"

	"triplec/internal/flowgraph"
	"triplec/internal/tasks"
)

// trainTwoClones trains a predictor on a small profiled corpus and returns
// two independent clones plus a held-out test sequence.
func trainTwoClones(t *testing.T) (*Predictor, *Predictor, []Observation) {
	t.Helper()
	var train [][]Observation
	for i := uint64(0); i < 3; i++ {
		train = append(train, observe(t, 100+i*7, 25))
	}
	p, err := Train(train, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	return a, b, observe(t, 999, 30)
}

// TestBaselineBackendMatchesPredictNext drives a cloned predictor through
// the map-based Observe/PredictNext loop and its twin through the dense
// BaselineBackend, asserting the forecasts are identical at every frame —
// the backend is PredictNext minus the allocations, not an approximation.
func TestBaselineBackendMatchesPredictNext(t *testing.T) {
	ref, cloned, test := trainTwoClones(t)
	backend := NewBaselineBackend(cloned)

	var dense FrameObs
	var densePred FramePrediction
	for i := range test {
		// Forecast parity before observing frame i (covers the pre-first-
		// observation worst-case path at i == 0).
		want := ref.PredictNext()
		backend.Predict(&densePred)
		if densePred.Scenario != want.Scenario {
			t.Fatalf("frame %d: scenario %v, want %v", i, densePred.Scenario, want.Scenario)
		}
		if len(want.TaskMs) == 0 {
			t.Fatalf("frame %d: reference forecast is empty", i)
		}
		for task, ms := range want.TaskMs {
			ti := tasks.IndexOf(task)
			if densePred.Mask&(1<<uint(ti)) == 0 {
				t.Fatalf("frame %d: task %s missing from dense forecast", i, task)
			}
			if densePred.TaskMs[ti] != ms {
				t.Fatalf("frame %d: task %s = %v, want %v", i, task, densePred.TaskMs[ti], ms)
			}
		}
		if math.Abs(densePred.TotalMs-want.TotalMs) > 1e-9 {
			t.Fatalf("frame %d: total %v, want %v", i, densePred.TotalMs, want.TotalMs)
		}

		ref.Observe(test[i])
		test[i].Dense(&dense)
		backend.Observe(&dense)
	}

	// Reset clears online state on both paths alike.
	backend.Reset()
	ref.ResetOnline()
	wc := ref.PredictNext()
	backend.Predict(&densePred)
	if densePred.Scenario != wc.Scenario || densePred.Scenario != flowgraph.WorstCase() {
		t.Fatalf("post-reset scenario %v, want worst case %v", densePred.Scenario, flowgraph.WorstCase())
	}
}

// TestDenseObservation checks the map → dense conversion: mask bits, task
// values, and a TotalMs that is the fixed-index-order sum of the task times
// (byte-stable across calls, unlike a map-order sum).
func TestDenseObservation(t *testing.T) {
	obs := Observation{
		Scenario:       flowgraph.WorstCase(),
		AnalysisPixels: 1000,
		EstROIPixels:   40,
		FramePixels:    1000,
		TaskMs: map[tasks.Name]float64{
			tasks.NameRDGFull: 1.25,
			tasks.NameCPLSSel: 0.5,
			tasks.NameZOOM:    0.125,
		},
	}
	var want float64
	for ti := 0; ti < tasks.NumNames; ti++ {
		want += map[int]float64{
			tasks.IndexOf(tasks.NameRDGFull): 1.25,
			tasks.IndexOf(tasks.NameCPLSSel): 0.5,
			tasks.IndexOf(tasks.NameZOOM):    0.125,
		}[ti]
	}
	var d FrameObs
	for rep := 0; rep < 32; rep++ {
		obs.Dense(&d)
		if d.Scenario != obs.Scenario || d.AnalysisPixels != 1000 || d.EstROIPixels != 40 {
			t.Fatalf("context lost: %+v", d)
		}
		for _, task := range []tasks.Name{tasks.NameRDGFull, tasks.NameCPLSSel, tasks.NameZOOM} {
			ti := tasks.IndexOf(task)
			if d.Mask&(1<<uint(ti)) == 0 || d.TaskMs[ti] != obs.TaskMs[task] {
				t.Fatalf("task %s lost: mask=%b ms=%v", task, d.Mask, d.TaskMs[ti])
			}
		}
		if d.TotalMs != want {
			t.Fatalf("TotalMs = %v, want exact fixed-order sum %v", d.TotalMs, want)
		}
	}
}

// TestBaselineBackendAllocFree pins the backend's whole per-frame cycle at
// zero heap allocations — the property that lets any number of backends
// ride the serving frame path.
func TestBaselineBackendAllocFree(t *testing.T) {
	_, cloned, test := trainTwoClones(t)
	backend := NewBaselineBackend(cloned)
	var dense FrameObs
	var pred FramePrediction
	test[0].Dense(&dense)
	backend.Observe(&dense) // prime past the worst-case branch
	allocs := testing.AllocsPerRun(200, func() {
		backend.Observe(&dense)
		backend.Predict(&pred)
	})
	if allocs != 0 {
		t.Fatalf("baseline backend allocates %.1f times per frame, want 0", allocs)
	}
}

package core

import (
	"errors"
	"fmt"

	"triplec/internal/stats"
)

// CrossValidate runs k-fold cross validation over the observation
// sequences: each fold trains a predictor on the other folds' sequences and
// evaluates on its own, giving a variance estimate for the accuracy numbers
// instead of a single train/test split.
type FoldResult struct {
	Fold     int
	Accuracy Accuracy
}

// CVSummary aggregates the folds.
type CVSummary struct {
	Folds    []FoldResult
	MeanAcc  float64 // mean of the per-fold conditional accuracies
	StdAcc   float64 // their standard deviation
	WorstAcc float64 // the weakest fold
}

// CrossValidate requires at least k sequences (one per fold), k >= 2.
func CrossValidate(sequences [][]Observation, k int, cfg TrainConfig, warmup int) (CVSummary, error) {
	if k < 2 {
		return CVSummary{}, errors.New("core: need at least 2 folds")
	}
	if len(sequences) < k {
		return CVSummary{}, fmt.Errorf("core: %d sequences cannot fill %d folds", len(sequences), k)
	}
	var out CVSummary
	var accs []float64
	for fold := 0; fold < k; fold++ {
		var train, test [][]Observation
		for i, seq := range sequences {
			if i%k == fold {
				test = append(test, seq)
			} else {
				train = append(train, seq)
			}
		}
		p, err := Train(train, cfg)
		if err != nil {
			return CVSummary{}, fmt.Errorf("core: fold %d: %w", fold, err)
		}
		acc, err := p.Evaluate(test, warmup)
		if err != nil {
			return CVSummary{}, fmt.Errorf("core: fold %d: %w", fold, err)
		}
		out.Folds = append(out.Folds, FoldResult{Fold: fold, Accuracy: acc})
		accs = append(accs, acc.Mean)
	}
	out.MeanAcc = stats.Mean(accs)
	out.StdAcc = stats.StdDev(accs)
	out.WorstAcc = stats.Min(accs)
	return out, nil
}

package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"triplec/internal/ewma"
	"triplec/internal/markov"
	"triplec/internal/tasks"
)

// Persistence: a trained Predictor serializes to JSON so training (the
// expensive profiling pass over the sequence corpus) happens once and the
// deployed runtime manager loads the models at startup. Only trained
// parameters are stored; online state (filter levels, current Markov
// states) always starts fresh.

const persistVersion = 1

type chainJSON struct {
	Cuts   []float64   `json:"cuts"`
	Reps   []float64   `json:"reps"`
	Counts [][]float64 `json:"counts"`
}

type modelJSON struct {
	Kind       string             `json:"kind"` // constant | ewma-markov | linear-markov
	ConstantMs float64            `json:"constantMs,omitempty"`
	Alpha      float64            `json:"alpha,omitempty"`
	Fallback   float64            `json:"fallback,omitempty"`
	ChainName  string             `json:"chainName,omitempty"`
	Growth     *ewma.LinearGrowth `json:"growth,omitempty"`
	Online     bool               `json:"online,omitempty"`
}

type predictorJSON struct {
	Version   int                  `json:"version"`
	Models    map[string]modelJSON `json:"models"`
	Chains    map[string]chainJSON `json:"chains"`
	Scenarios [8][8]float64        `json:"scenarios"`
}

func snapshotChain(c *markov.Chain) chainJSON {
	cuts, reps := c.Quantizer().Snapshot()
	return chainJSON{Cuts: cuts, Reps: reps, Counts: c.Counts()}
}

func restoreChain(j chainJSON) (*markov.Chain, error) {
	q, err := markov.RestoreQuantizer(j.Cuts, j.Reps)
	if err != nil {
		return nil, err
	}
	return markov.RestoreChain(q, j.Counts)
}

// Save writes the trained predictor as JSON.
func (p *Predictor) Save(w io.Writer) error {
	out := predictorJSON{
		Version: persistVersion,
		Models:  map[string]modelJSON{},
		Chains:  map[string]chainJSON{},
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			out.Scenarios[i][j] = p.Scenarios.counts[i][j]
		}
	}
	for task, m := range p.Models {
		switch mm := m.(type) {
		case *ConstantModel:
			out.Models[string(task)] = modelJSON{Kind: "constant", ConstantMs: mm.Ms}
		case *EWMAMarkovModel:
			if _, seen := out.Chains[mm.name]; !seen {
				out.Chains[mm.name] = snapshotChain(mm.chain)
			}
			out.Models[string(task)] = modelJSON{
				Kind:      "ewma-markov",
				Alpha:     mm.filter.Alpha(),
				Fallback:  mm.fallback,
				ChainName: mm.name,
				Online:    mm.OnlineTraining,
			}
		case *LinearMarkovModel:
			if _, seen := out.Chains[mm.name]; !seen {
				out.Chains[mm.name] = snapshotChain(mm.chain)
			}
			g := mm.growth
			out.Models[string(task)] = modelJSON{
				Kind:      "linear-markov",
				Growth:    &g,
				ChainName: mm.name,
				Online:    mm.OnlineTraining,
			}
		default:
			return fmt.Errorf("core: cannot persist model type %T for %s", m, task)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Clone returns an independent copy of the trained predictor via a
// Save/Load round trip: same trained parameters, fresh online state, no
// shared mutable structures. Shadow backends clone the deployed predictor
// so racing it never perturbs the instance steering the scheduler.
func (p *Predictor) Clone() (*Predictor, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, err
	}
	return Load(&buf)
}

// Load restores a predictor previously written by Save. Shared chains are
// restored once and shared between the models referencing them, preserving
// the single-RDG-chain property.
func Load(r io.Reader) (*Predictor, error) {
	var in predictorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported predictor version %d", in.Version)
	}
	if len(in.Models) == 0 {
		return nil, errors.New("core: no models in snapshot")
	}
	chains := map[string]*markov.Chain{}
	for name, cj := range in.Chains {
		c, err := restoreChain(cj)
		if err != nil {
			return nil, fmt.Errorf("core: chain %s: %w", name, err)
		}
		chains[name] = c
	}
	p := &Predictor{
		Models:    map[tasks.Name]Model{},
		Scenarios: &ScenarioTable{},
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			p.Scenarios.counts[i][j] = in.Scenarios[i][j]
		}
	}
	for name, mj := range in.Models {
		task := tasks.Name(name)
		switch mj.Kind {
		case "constant":
			p.Models[task] = &ConstantModel{Ms: mj.ConstantMs}
		case "ewma-markov":
			chain, ok := chains[mj.ChainName]
			if !ok {
				return nil, fmt.Errorf("core: model %s references missing chain %q", name, mj.ChainName)
			}
			filter, err := ewma.NewFilter(mj.Alpha)
			if err != nil {
				return nil, fmt.Errorf("core: model %s: %w", name, err)
			}
			m := &EWMAMarkovModel{
				filter:         filter,
				chain:          chain,
				name:           mj.ChainName,
				fallback:       mj.Fallback,
				OnlineTraining: mj.Online,
			}
			p.Models[task] = m
			if task == tasks.NameRDGFull {
				p.rdgChain = m
			}
		case "linear-markov":
			chain, ok := chains[mj.ChainName]
			if !ok {
				return nil, fmt.Errorf("core: model %s references missing chain %q", name, mj.ChainName)
			}
			if mj.Growth == nil {
				return nil, fmt.Errorf("core: model %s missing growth coefficients", name)
			}
			m, err := NewLinearMarkovModel(*mj.Growth, chain, mj.ChainName)
			if err != nil {
				return nil, err
			}
			m.OnlineTraining = mj.Online
			p.Models[task] = m
		default:
			return nil, fmt.Errorf("core: unknown model kind %q for %s", mj.Kind, name)
		}
	}
	return p, nil
}

package core

// DemandSource is a live-swappable next-frame forecast provider the runtime
// manager can be steered by (internal/promote's guarded switchover): when a
// shadow backend is promoted, the manager plans from this source's dense
// forecast instead of its own predictor's, and the tail guard feeds a
// quantile source's P90 total into the deadline-miss headroom. A source
// must be safe to read from the manager's goroutine while another goroutine
// installs or removes it, and DemandInto must not allocate — it runs on the
// steady-state frame path.
type DemandSource interface {
	// DemandInto copies the source's standing forecast into *dst and
	// reports whether a usable forecast exists. Returning false tells the
	// manager to fall back to its own predictor (the rollback path and the
	// cold-start path are the same branch).
	DemandInto(dst *FramePrediction) bool
	// SourceName identifies the backend behind the forecast for /healthz
	// and dump metadata.
	SourceName() string
}

package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"triplec/internal/bandwidth"
	"triplec/internal/ewma"
	"triplec/internal/flowgraph"
	"triplec/internal/memmodel"
	"triplec/internal/pipeline"
	"triplec/internal/stats"
	"triplec/internal/tasks"
)

// Observation is the per-frame training/online input of the predictor,
// extracted from a pipeline report.
type Observation struct {
	Scenario       flowgraph.Scenario
	AnalysisPixels int // region the analysis tasks processed this frame
	EstROIPixels   int // ROI estimated this frame (0 if none) — next frame's region
	FramePixels    int // full-frame pixel count
	TaskMs         map[tasks.Name]float64
	TotalMs        float64
}

// FromReports converts pipeline reports (serial mapping) into observations.
func FromReports(reports []pipeline.Report, framePixels int) []Observation {
	out := make([]Observation, 0, len(reports))
	for _, r := range reports {
		obs := Observation{
			Scenario:       r.Scenario,
			AnalysisPixels: r.AnalysisPixels,
			EstROIPixels:   r.ROI.Area(),
			FramePixels:    framePixels,
			TaskMs:         map[tasks.Name]float64{},
			TotalMs:        r.LatencyMs,
		}
		for _, e := range r.Execs {
			obs.TaskMs[e.Task] = e.Ms
		}
		out = append(out, obs)
	}
	return out
}

// ScenarioTable is the paper's "state table" for the data-dependent switch
// statements: an 8x8 first-order transition model over flow-graph scenarios.
type ScenarioTable struct {
	counts [8][8]float64
}

// Add counts one observed scenario transition.
func (t *ScenarioTable) Add(from, to flowgraph.Scenario) {
	t.counts[from.Index()][to.Index()]++
}

// P returns the transition probability; unseen rows predict self-transition.
func (t *ScenarioTable) P(from, to flowgraph.Scenario) float64 {
	row := t.counts[from.Index()]
	total := 0.0
	for _, v := range row {
		total += v
	}
	if total == 0 {
		if from == to {
			return 1
		}
		return 0
	}
	return row[to.Index()] / total
}

// Successors returns the scenarios reachable from `from` with transition
// probability at least minP, in descending probability order. The runtime
// manager plans pessimistically across this set so that a plausible switch
// to an expensive scenario is already provisioned for.
func (t *ScenarioTable) Successors(from flowgraph.Scenario, minP float64) []flowgraph.Scenario {
	type cand struct {
		s flowgraph.Scenario
		p float64
	}
	var cands []cand
	for i := 0; i < 8; i++ {
		to := flowgraph.FromIndex(i)
		if p := t.P(from, to); p >= minP && p > 0 {
			cands = append(cands, cand{to, p})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].p > cands[j].p })
	out := make([]flowgraph.Scenario, len(cands))
	for i, c := range cands {
		out[i] = c.s
	}
	return out
}

// MostLikelyNext returns the most probable successor scenario.
func (t *ScenarioTable) MostLikelyNext(from flowgraph.Scenario) flowgraph.Scenario {
	best, bestP := from, -1.0
	for i := 0; i < 8; i++ {
		to := flowgraph.FromIndex(i)
		if p := t.P(from, to); p > bestP {
			best, bestP = to, p
		}
	}
	return best
}

// TrainConfig tunes predictor training.
type TrainConfig struct {
	// Alpha is the EWMA smoothing factor (Eq. 1); default 0.15.
	Alpha float64
	// MaxStates caps the Markov state count (Table 2a uses 10); default 10.
	MaxStates int
	// OnlineTraining lets the deployed models keep counting transitions
	// (the paper's profiling feedback loop).
	OnlineTraining bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.MaxStates == 0 {
		c.MaxStates = 10
	}
	return c
}

// MetricsSink receives the predictor's per-frame prediction-vs-actual
// samples: for every executed frame, one TaskSample per task that was both
// predicted and executed, then one ScenarioSample comparing the state
// table's forecast with the scenario that actually ran. Implementations
// must be cheap and allocation-free — the samples fire on the frame path.
type MetricsSink interface {
	TaskSample(task tasks.Name, predictedMs, actualMs float64)
	ScenarioSample(predicted, actual flowgraph.Scenario)
}

// Predictor is the assembled Triple-C model set.
type Predictor struct {
	Models    map[tasks.Name]Model
	Scenarios *ScenarioTable

	cfg      TrainConfig
	rdgChain *EWMAMarkovModel // kept for Table 2a access

	lastObs *Observation

	sink     MetricsSink
	lastPred Prediction // most recent PredictNext result, for error accounting
	havePred bool
}

// Train fits all models from one or more observation sequences (the paper
// trains on 37 sequences totalling 1,921 frames).
func Train(sequences [][]Observation, cfg TrainConfig) (*Predictor, error) {
	cfg = cfg.withDefaults()
	if len(sequences) == 0 {
		return nil, errors.New("core: no training sequences")
	}

	// Gather per-sequence series for the data-dependent tasks and pooled
	// samples for the constant tasks.
	perTaskSeries := map[tasks.Name][][]float64{}
	constSamples := map[tasks.Name][]float64{}
	var roiX, roiY []float64 // (analysis pixels, ms) pairs for Eq. 3
	table := &ScenarioTable{}

	for _, seq := range sequences {
		cur := map[tasks.Name][]float64{}
		for i, obs := range seq {
			if i > 0 {
				table.Add(seq[i-1].Scenario, obs.Scenario)
			}
			for task, ms := range obs.TaskMs {
				switch task {
				case tasks.NameRDGFull, tasks.NameCPLSSel, tasks.NameGWExt:
					cur[task] = append(cur[task], ms)
				case tasks.NameRDGROI:
					roiX = append(roiX, float64(obs.AnalysisPixels))
					roiY = append(roiY, ms)
				default:
					constSamples[task] = append(constSamples[task], ms)
				}
			}
		}
		for task, s := range cur {
			perTaskSeries[task] = append(perTaskSeries[task], s)
		}
	}

	p := &Predictor{
		Models:    map[tasks.Name]Model{},
		Scenarios: table,
		cfg:       cfg,
	}

	// EWMA + Markov models. The ridge chain is trained on the union of the
	// RDG FULL residuals and the detrended RDG ROI residuals — the paper
	// generates "a single Markov chain for the ridge-detection task".
	rdgSeries := perTaskSeries[tasks.NameRDGFull]
	var rdgGrowth ewma.LinearGrowth
	haveROI := len(roiX) >= 2
	if haveROI {
		g, err := ewma.FitLinearGrowth(roiX, roiY)
		if err == nil {
			rdgGrowth = g
			detrended, err := g.Detrend(roiX, roiY)
			if err == nil {
				rdgSeries = append(rdgSeries, detrendedToSeries(detrended)...)
			}
		} else {
			haveROI = false
		}
	}
	if len(rdgSeries) > 0 {
		m, err := NewEWMAMarkovModel(rdgSeries, cfg.Alpha, cfg.MaxStates, "RDG")
		if err != nil {
			return nil, fmt.Errorf("core: RDG model: %w", err)
		}
		m.OnlineTraining = cfg.OnlineTraining
		p.Models[tasks.NameRDGFull] = m
		p.rdgChain = m
		if haveROI {
			lm, err := NewLinearMarkovModel(rdgGrowth, m.Chain(), "RDG")
			if err != nil {
				return nil, err
			}
			lm.OnlineTraining = cfg.OnlineTraining
			p.Models[tasks.NameRDGROI] = lm
		}
	}
	for task, label := range map[tasks.Name]string{
		tasks.NameCPLSSel: "CPLS",
		tasks.NameGWExt:   "GW",
	} {
		if series := perTaskSeries[task]; len(series) > 0 {
			m, err := NewEWMAMarkovModel(series, cfg.Alpha, cfg.MaxStates, label)
			if err != nil {
				return nil, fmt.Errorf("core: %s model: %w", task, err)
			}
			m.OnlineTraining = cfg.OnlineTraining
			p.Models[task] = m
		}
	}
	for task, samples := range constSamples {
		m, err := NewConstantModel(samples)
		if err != nil {
			return nil, fmt.Errorf("core: %s model: %w", task, err)
		}
		p.Models[task] = m
	}
	if len(p.Models) == 0 {
		return nil, errors.New("core: training produced no models")
	}
	return p, nil
}

// detrendedToSeries wraps a detrended residual vector as a single series.
func detrendedToSeries(r []float64) [][]float64 {
	if len(r) == 0 {
		return nil
	}
	return [][]float64{r}
}

// RDGChain exposes the trained ridge Markov chain (Table 2a).
func (p *Predictor) RDGChain() *EWMAMarkovModel { return p.rdgChain }

// ResetOnline clears all per-sequence online state.
func (p *Predictor) ResetOnline() {
	for _, m := range p.Models {
		m.ResetOnline()
	}
	p.lastObs = nil
	p.havePred = false
}

// SetMetricsSink installs (or, with nil, removes) the prediction-error
// sink. Like Observe/PredictNext it follows the predictor's single-
// goroutine contract.
func (p *Predictor) SetMetricsSink(s MetricsSink) {
	p.sink = s
	p.havePred = false
}

// Observe feeds the actual resource usage of the frame just executed.
// When a metrics sink is installed, the observation is first scored against
// the most recent PredictNext forecast — the paper's profiling step
// ("statistical information of the differences between the actually
// consumed resources and the predicted values") made observable live.
func (p *Predictor) Observe(obs Observation) {
	if p.sink != nil && p.havePred {
		for task, actual := range obs.TaskMs {
			if predicted, ok := p.lastPred.TaskMs[task]; ok {
				p.sink.TaskSample(task, predicted, actual)
			}
		}
		p.sink.ScenarioSample(p.lastPred.Scenario, obs.Scenario)
		p.havePred = false
	}
	for task, ms := range obs.TaskMs {
		m, ok := p.Models[task]
		if !ok {
			continue
		}
		m.Observe(Context{ROIPixels: obs.AnalysisPixels}, ms)
	}
	o := obs
	p.lastObs = &o
}

// Prediction is the Triple-C forecast for the next frame.
type Prediction struct {
	Scenario flowgraph.Scenario
	TaskMs   map[tasks.Name]float64
	TotalMs  float64
}

// PredictNext forecasts the next frame's scenario and per-task computation
// times from everything observed so far. Before any observation it assumes
// the worst-case scenario at full granularity.
func (p *Predictor) PredictNext() Prediction {
	var scenario flowgraph.Scenario
	roiPixels := 0
	if p.lastObs == nil {
		scenario = flowgraph.WorstCase()
	} else {
		scenario = p.ConstrainScenario(p.Scenarios.MostLikelyNext(p.lastObs.Scenario))
		if scenario.ROIKnown {
			roiPixels = p.lastObs.EstROIPixels
		} else {
			roiPixels = p.lastObs.FramePixels
		}
	}
	pred := Prediction{Scenario: scenario, TaskMs: map[tasks.Name]float64{}}
	ctx := Context{ROIPixels: roiPixels}
	for _, task := range scenario.ActiveTasks() {
		m, ok := p.Models[task]
		if !ok {
			continue
		}
		ms := m.Predict(ctx)
		pred.TaskMs[task] = ms
		pred.TotalMs += ms
	}
	if p.sink != nil {
		// Remember the forecast by value (the map header is shared, not
		// copied) so the next Observe can score it without allocating.
		p.lastPred = pred
		p.havePred = true
	}
	return pred
}

// ConstrainScenario forces the physically determined part of a candidate
// next-frame scenario: the granularity switch is not probabilistic — the
// next frame processes an ROI exactly when the last frame estimated one.
func (p *Predictor) ConstrainScenario(s flowgraph.Scenario) flowgraph.Scenario {
	if p.lastObs != nil {
		s.ROIKnown = p.lastObs.EstROIPixels > 0
	}
	return s
}

// LastScenario returns the most recently observed scenario, and false when
// nothing has been observed yet.
func (p *Predictor) LastScenario() (flowgraph.Scenario, bool) {
	if p.lastObs == nil {
		return flowgraph.Scenario{}, false
	}
	return p.lastObs.Scenario, true
}

// NextContext returns the model context for the upcoming frame: the ROI
// estimated by the last observed frame when available, else the full frame.
func (p *Predictor) NextContext() Context {
	if p.lastObs == nil {
		return Context{}
	}
	if p.lastObs.EstROIPixels > 0 {
		return Context{ROIPixels: p.lastObs.EstROIPixels}
	}
	return Context{ROIPixels: p.lastObs.FramePixels}
}

// PredictTasksFor returns per-task predictions for one scenario's active
// task set under the given context.
func (p *Predictor) PredictTasksFor(s flowgraph.Scenario, ctx Context) map[tasks.Name]float64 {
	out := map[tasks.Name]float64{}
	for _, task := range s.ActiveTasks() {
		if m, ok := p.Models[task]; ok {
			out[task] = m.Predict(ctx)
		}
	}
	return out
}

// PredictForTasks predicts the summed execution time of a given task set
// under the current online state — the quantity Fig. 7's "prediction model"
// curve plots for the tasks that actually execute.
func (p *Predictor) PredictForTasks(taskSet []tasks.Name, ctx Context) float64 {
	total := 0.0
	for _, task := range taskSet {
		if m, ok := p.Models[task]; ok {
			total += m.Predict(ctx)
		}
	}
	return total
}

// Accuracy summarizes prediction quality the way the paper's Section 7
// reports it. Mean and WorstExcursion score the resource models against the
// tasks that actually executed (the Fig. 7 prediction curve); the paper's
// "sporadic excursions up to 20-30%" appear here around the data-dependent
// flow-graph switches. ScenarioHits separately scores the switch state
// table's next-scenario prediction.
type Accuracy struct {
	Mean           float64 // 1 - MAPE of the per-frame model predictions
	WorstExcursion float64 // largest single-frame relative model error
	UncondMean     float64 // 1 - MAPE including scenario misprediction
	Frames         int     // frames evaluated
	ScenarioHits   float64 // fraction of correctly predicted scenarios
}

// Evaluate replays test sequences through the trained predictor (online
// state reset per sequence) and scores next-frame predictions against the
// actual totals. The first warmup frames of each sequence are excluded.
func (p *Predictor) Evaluate(sequences [][]Observation, warmup int) (Accuracy, error) {
	if warmup < 1 {
		warmup = 1
	}
	var condPred, uncondPred, actual []float64
	hits, total := 0, 0
	for _, seq := range sequences {
		p.ResetOnline()
		for i, obs := range seq {
			if i >= warmup {
				pr := p.PredictNext()
				// Conditional: the models applied to the tasks that actually
				// ran, at the region size they actually processed.
				taskSet := make([]tasks.Name, 0, len(obs.TaskMs))
				for task := range obs.TaskMs {
					taskSet = append(taskSet, task)
				}
				cond := p.PredictForTasks(taskSet, Context{ROIPixels: obs.AnalysisPixels})
				condPred = append(condPred, cond)
				uncondPred = append(uncondPred, pr.TotalMs)
				actual = append(actual, obs.TotalMs)
				if pr.Scenario == obs.Scenario {
					hits++
				}
				total++
			}
			p.Observe(obs)
		}
	}
	if len(actual) == 0 {
		return Accuracy{}, errors.New("core: no frames to evaluate")
	}
	mape, err := stats.MeanAbsPercentError(condPred, actual)
	if err != nil {
		return Accuracy{}, err
	}
	worst, err := stats.MaxAbsPercentError(condPred, actual)
	if err != nil {
		return Accuracy{}, err
	}
	uncondMAPE, err := stats.MeanAbsPercentError(uncondPred, actual)
	if err != nil {
		return Accuracy{}, err
	}
	return Accuracy{
		Mean:           1 - mape,
		WorstExcursion: worst,
		UncondMean:     1 - uncondMAPE,
		Frames:         len(actual),
		ScenarioHits:   float64(hits) / float64(total),
	}, nil
}

// TaskAccuracy is the per-task prediction quality over an evaluation run.
type TaskAccuracy struct {
	Task    tasks.Name
	Mean    float64 // 1 - MAPE of this task's one-step predictions
	Worst   float64 // largest single relative error
	Samples int
}

// EvaluatePerTask scores each task model independently against the frames
// where the task actually ran — the per-row view behind Table 2(b).
func (p *Predictor) EvaluatePerTask(sequences [][]Observation, warmup int) ([]TaskAccuracy, error) {
	if warmup < 1 {
		warmup = 1
	}
	preds := map[tasks.Name][]float64{}
	acts := map[tasks.Name][]float64{}
	for _, seq := range sequences {
		p.ResetOnline()
		for i, obs := range seq {
			if i >= warmup {
				ctx := Context{ROIPixels: obs.AnalysisPixels}
				for task, actual := range obs.TaskMs {
					m, ok := p.Models[task]
					if !ok {
						continue
					}
					preds[task] = append(preds[task], m.Predict(ctx))
					acts[task] = append(acts[task], actual)
				}
			}
			p.Observe(obs)
		}
	}
	if len(acts) == 0 {
		return nil, errors.New("core: no frames to evaluate")
	}
	var out []TaskAccuracy
	for _, task := range tasks.AllNames() {
		a := acts[task]
		if len(a) == 0 {
			continue
		}
		mape, err := stats.MeanAbsPercentError(preds[task], a)
		if err != nil {
			continue
		}
		worst, err := stats.MaxAbsPercentError(preds[task], a)
		if err != nil {
			continue
		}
		out = append(out, TaskAccuracy{Task: task, Mean: 1 - mape, Worst: worst, Samples: len(a)})
	}
	return out, nil
}

// ModelSummary renders Table 2(b): task -> prediction model.
func (p *Predictor) ModelSummary() string {
	names := make([]string, 0, len(p.Models))
	for t := range p.Models {
		names = append(names, string(t))
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("Task        Prediction Model [ms]\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%-11s %s\n", n, p.Models[tasks.Name(n)].Describe())
	}
	return b.String()
}

// ResourcePrediction extends the computation forecast with the other two
// C's: cache-memory requirements and communication bandwidth for the
// predicted scenario.
type ResourcePrediction struct {
	Prediction
	MemoryKB  map[tasks.Name]int // per-task footprints (Table 1)
	InterMBs  float64            // flow-graph bandwidth of the scenario
	IntraMBs  float64            // cache-overflow bandwidth of the scenario
	TotalMBs  float64
	FrameKB   int
	CacheKB   int
	FrameRate float64
}

// PredictResources produces the full three-C forecast for the next frame at
// the given modeled geometry.
func (p *Predictor) PredictResources(frameKB, cacheKB int, rate float64) (ResourcePrediction, error) {
	base := p.PredictNext()
	out := ResourcePrediction{
		Prediction: base,
		MemoryKB:   map[tasks.Name]int{},
		FrameKB:    frameKB,
		CacheKB:    cacheKB,
		FrameRate:  rate,
	}
	for _, task := range base.Scenario.ActiveTasks() {
		req, err := memmodel.Lookup(task, base.Scenario.RDGOn, frameKB)
		if err != nil {
			return ResourcePrediction{}, err
		}
		out.MemoryKB[task] = req.TotalKB()
	}
	an, err := bandwidth.Analyze(base.Scenario, frameKB, cacheKB, rate)
	if err != nil {
		return ResourcePrediction{}, err
	}
	out.InterMBs = an.InterMBs
	out.IntraMBs = an.IntraMBs
	out.TotalMBs = an.TotalMBs()
	return out, nil
}

package parallel

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSubmitBatchRunsAll(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int64
	jobs := make([]func(), 100)
	for i := range jobs {
		jobs[i] = func() { ran.Add(1) }
	}
	if err := p.SubmitBatch(jobs); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if ran.Load() != 100 {
		t.Fatalf("ran %d jobs, want 100", ran.Load())
	}
	if err := p.SubmitBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestSubmitBatchRejectsAtomically(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int64
	good := func() { ran.Add(1) }
	if err := p.SubmitBatch([]func(){good, nil, good}); err == nil {
		t.Fatal("batch with a nil job accepted")
	}
	p.Wait()
	if ran.Load() != 0 {
		t.Fatalf("%d jobs from a rejected batch ran", ran.Load())
	}
}

func TestSubmitBatchAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	if err := p.SubmitBatch([]func(){func() {}}); err == nil {
		t.Fatal("closed pool accepted a batch")
	}
	if n := p.TrySubmitBatch([]func(){func() {}}); n != 0 {
		t.Fatalf("closed pool accepted %d try-submitted jobs", n)
	}
}

// TrySubmitBatch must never block: with every worker wedged and the buffer
// full it accepts what fits and returns immediately.
func TestTrySubmitBatchNonBlocking(t *testing.T) {
	p := NewPool(1) // buffer of 2
	defer p.Close()
	release := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(1)
	if err := p.Submit(func() { wedged.Done(); <-release }); err != nil {
		t.Fatal(err)
	}
	wedged.Wait() // the single worker is now blocked
	var ran atomic.Int64
	jobs := make([]func(), 10)
	for i := range jobs {
		jobs[i] = func() { ran.Add(1) }
	}
	n := p.TrySubmitBatch(jobs) // fills the 2-slot buffer at most
	if n < 1 || n > 2 {
		t.Fatalf("accepted %d jobs into a 2-slot buffer", n)
	}
	close(release)
	p.Wait()
	if ran.Load() != int64(n) {
		t.Fatalf("ran %d of the %d accepted jobs", ran.Load(), n)
	}
}

func TestDoBatchCompletesAndReportsPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int64
	jobs := []func(){
		func() { ran.Add(1) },
		func() { panic("boom") },
		func() { ran.Add(1) },
		func() { ran.Add(1) },
	}
	err := p.DoBatch(jobs)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the job panic", err)
	}
	if _, ok := err.(*PanicError); !ok {
		t.Fatalf("err %T, want *PanicError", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d non-panicking jobs, want all 3 despite the panic", ran.Load())
	}
	if err := p.DoBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// StripesOn must produce exactly ForStripes' coverage: every index visited
// once, stripe bounds identical to the static split.
func TestStripesOnCoversRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, tc := range []struct{ n, k int }{{1, 1}, {7, 3}, {64, 4}, {100, 16}, {5, 9}} {
		visits := make([]atomic.Int32, tc.n)
		StripesOn(p, tc.n, tc.k, func(stripe, lo, hi int) {
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
		})
		for i := range visits {
			if v := visits[i].Load(); v != 1 {
				t.Fatalf("n=%d k=%d: index %d visited %d times", tc.n, tc.k, i, v)
			}
		}
	}
	StripesOn(p, 0, 4, func(int, int, int) { t.Fatal("n=0 must be a no-op") })
	StripesOn(nil, 8, 2, func(stripe, lo, hi int) {}) // nil pool falls back
}

// A panicking stripe surfaces on the caller as *PanicError, after every
// other stripe has still executed (the drain loop must not stop claiming).
func TestStripesOnPanicStillRunsAllStripes(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const k = 8
	var ran atomic.Int64
	var pe *PanicError
	func() {
		defer func() {
			if r := recover(); r != nil {
				pe, _ = r.(*PanicError)
			}
		}()
		StripesOn(p, 64, k, func(stripe, lo, hi int) {
			if stripe == 2 {
				panic("stripe boom")
			}
			ran.Add(1)
		})
	}()
	if pe == nil {
		t.Fatal("stripe panic did not surface as *PanicError")
	}
	if ran.Load() != k-1 {
		t.Fatalf("%d stripes ran, want %d despite the panicking one", ran.Load(), k-1)
	}
}

// With every worker wedged, StripesOn must still complete on the caller's
// goroutine — the claim-based design degrades to serial, never to deadlock.
func TestStripesOnBusyPoolNoDeadlock(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	release := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(2)
	for i := 0; i < 2; i++ {
		if err := p.Submit(func() { wedged.Done(); <-release }); err != nil {
			t.Fatal(err)
		}
	}
	wedged.Wait()
	var ran atomic.Int64
	StripesOn(p, 32, 8, func(stripe, lo, hi int) { ran.Add(1) })
	if ran.Load() != 8 {
		t.Fatalf("%d stripes ran with the pool wedged, want all 8", ran.Load())
	}
	close(release)
	p.Wait()
}

// Concurrent StripesOn callers share one pool without losing stripes —
// the serving layer's batching shape, exercised under -race.
func TestStripesOnConcurrentCallers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const callers = 6
	var total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				StripesOn(p, 48, 4, func(stripe, lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}
		}()
	}
	wg.Wait()
	if want := int64(callers * 20 * 48); total.Load() != want {
		t.Fatalf("covered %d indices, want %d", total.Load(), want)
	}
}

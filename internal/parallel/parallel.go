// Package parallel provides the real shared-memory execution layer behind
// the reproduction's data-parallel striping: a bounded worker pool and
// stripe/for helpers built on goroutines. The machine model in
// internal/platform answers "how long would this take on the paper's 2007
// platform"; this package actually runs the pixel work concurrently on the
// host, and the wall-clock benchmarks in bench_test.go validate that the
// striping the runtime manager plans really scales the way the model
// assumes.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from a parallel job so callers receive
// it as an ordinary error (Pool.Do) or as a re-panic on their own goroutine
// (ForStripes, Map) instead of the process crashing on a worker goroutine.
type PanicError struct {
	Value any    // the value originally passed to panic
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job panicked: %v", e.Value)
}

// asPanicError wraps a recovered value, reusing an already-wrapped panic so
// nested recovery layers (stripe goroutine -> pool worker -> Do caller) do
// not stack PanicErrors inside each other.
func asPanicError(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// panicBox collects the first panic from a group of goroutines.
type panicBox struct {
	mu  sync.Mutex
	err *PanicError
}

// capture records the recovered value r if it is the first panic seen.
func (b *panicBox) capture(r any) {
	if r == nil {
		return
	}
	pe := asPanicError(r)
	b.mu.Lock()
	if b.err == nil {
		b.err = pe
	}
	b.mu.Unlock()
}

// rethrow re-panics the first captured panic on the calling goroutine.
func (b *panicBox) rethrow() {
	if b.err != nil {
		panic(b.err)
	}
}

// ForStripes splits the half-open index range [0, n) into k contiguous
// stripes and runs fn(stripe, lo, hi) concurrently, one goroutine per
// stripe. It blocks until every stripe completes. k is clamped to [1, n]
// (for n > 0); n <= 0 is a no-op.
func ForStripes(n, k int, fn func(stripe, lo, hi int)) {
	if n <= 0 || fn == nil {
		return
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k == 1 {
		fn(0, 0, n)
		return
	}
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(k)
	for s := 0; s < k; s++ {
		lo := s * n / k
		hi := (s + 1) * n / k
		go func(stripe, lo, hi int) {
			defer wg.Done()
			defer func() { box.capture(recover()) }()
			fn(stripe, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	// A stripe panic surfaces on the caller (as a *PanicError) after every
	// stripe has finished, so a recover() around ForStripes observes a
	// consistent, fully-joined state instead of a crashed worker goroutine.
	box.rethrow()
}

// Map applies fn to every index of [0, n) using up to k workers pulling
// from a shared queue (good for unevenly sized items where static striping
// would load-imbalance).
func Map(n, k int, fn func(i int)) {
	if n <= 0 || fn == nil {
		return
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Lock-free work counter: workers claim indices with a single atomic
	// increment, so the shared queue adds no mutex contention even when
	// several streams drive pools on the same host.
	var next atomic.Int64
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(k)
	for w := 0; w < k; w++ {
		go func() {
			defer wg.Done()
			defer func() { box.capture(recover()) }()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	box.rethrow()
}

// Pool is a reusable fixed-size worker pool. Submissions run on the pool's
// goroutines; Wait blocks until all submitted work has drained. The zero
// value is not usable; construct with NewPool and release with Close.
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup // tracks in-flight jobs
	workers sync.WaitGroup // tracks worker goroutines
	panics  atomic.Uint64  // jobs that panicked (recovered by the worker)
	closed  bool
	mu      sync.Mutex
}

// NewPool starts a pool with k workers (k < 1 defaults to GOMAXPROCS).
func NewPool(k int) *Pool {
	if k < 1 {
		k = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan func(), k*2)}
	p.workers.Add(k)
	for i := 0; i < k; i++ {
		go func() {
			defer p.workers.Done()
			for job := range p.jobs {
				p.runJob(job)
				p.wg.Done()
			}
		}()
	}
	return p
}

// runJob executes one job, recovering a panic so the worker goroutine (and
// with it the whole process) survives and the in-flight accounting that
// Wait, Do and Close depend on still completes. Do-submitted jobs install
// their own recover first and hand the panic back to the Do caller; this
// outer recover is the safety net for fire-and-forget Submit jobs.
func (p *Pool) runJob(job func()) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
		}
	}()
	job()
}

// Panics returns how many jobs panicked inside the pool so far.
func (p *Pool) Panics() uint64 { return p.panics.Load() }

// Submit queues one job. It returns an error after Close.
func (p *Pool) Submit(job func()) error {
	if job == nil {
		return errors.New("parallel: nil job")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("parallel: pool closed")
	}
	p.wg.Add(1)
	p.jobs <- job
	return nil
}

// SubmitBatch queues every job in one accounting step: a single lock
// acquisition and a single wg.Add for the whole batch, instead of per-job
// lock traffic. The channel sends happen after the lock is released — the
// wg.Add performed under the lock keeps Close from closing the jobs channel
// before the sends land (Close waits for the in-flight count to drain, which
// cannot happen until every batched job has been sent and executed). The
// batch is rejected atomically: either all jobs are queued or none.
func (p *Pool) SubmitBatch(jobs []func()) error {
	for _, j := range jobs {
		if j == nil {
			return errors.New("parallel: nil job in batch")
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("parallel: pool closed")
	}
	p.wg.Add(len(jobs))
	p.mu.Unlock()
	for _, j := range jobs {
		p.jobs <- j
	}
	return nil
}

// TrySubmitBatch queues as many jobs as fit in the pool's buffer without
// blocking and returns how many were accepted (nil jobs are skipped). It is
// the submission path for *optional* work — StripesOn's redundant wake-up
// helpers — where blocking the caller on a saturated pool would invert the
// point of submitting at all.
func (p *Pool) TrySubmitBatch(jobs []func()) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0
	}
	submitted := 0
	for _, j := range jobs {
		if j == nil {
			continue
		}
		p.wg.Add(1)
		select {
		case p.jobs <- j:
			submitted++
		default:
			p.wg.Done()
			return submitted
		}
	}
	return submitted
}

// DoBatch runs every job on the pool's workers and blocks until all of them
// complete, like a multi-job Do: the batch is submitted with one accounting
// step (SubmitBatch) and the first panic among the jobs is returned as a
// *PanicError after every job has finished.
func (p *Pool) DoBatch(jobs []func()) error {
	if len(jobs) == 0 {
		return nil
	}
	for _, j := range jobs {
		if j == nil {
			return errors.New("parallel: nil job in batch")
		}
	}
	var box panicBox
	var done sync.WaitGroup
	done.Add(len(jobs))
	wrapped := make([]func(), len(jobs))
	for i, j := range jobs {
		j := j
		wrapped[i] = func() {
			defer done.Done()
			defer func() { box.capture(recover()) }()
			j()
		}
	}
	if err := p.SubmitBatch(wrapped); err != nil {
		return err
	}
	done.Wait()
	if box.err != nil {
		return box.err
	}
	return nil
}

// Wait blocks until every job submitted so far has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Do runs job on a pool worker and blocks until it completes. Callers from
// independent goroutines thereby share the pool's fixed concurrency: with k
// workers at most k Do bodies execute at once, which is how the stream
// serving layer keeps N streams from oversubscribing the host's cores.
//
// A panic inside job does not crash the process or wedge the pool: Do
// recovers it on the worker and returns it to the caller as a *PanicError.
func (p *Pool) Do(job func()) error {
	if job == nil {
		return errors.New("parallel: nil job")
	}
	done := make(chan struct{})
	var pe *PanicError
	if err := p.Submit(func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				pe = asPanicError(r)
			}
		}()
		job()
	}); err != nil {
		return err
	}
	<-done
	if pe != nil {
		return pe
	}
	return nil
}

// StripesOn runs the same striped loop as ForStripes but executes the
// stripes on p's workers instead of spawning fresh goroutines, so several
// streams striping concurrently share the pool's fixed concurrency rather
// than oversubscribing the host. It blocks until every stripe completes and
// re-panics the first stripe panic on the caller, exactly like ForStripes.
// A nil pool falls back to ForStripes.
//
// The work distribution is claim-based to stay deadlock-free: stripes live
// behind an atomic counter, the *caller* drains claims itself, and up to k-1
// redundant wake-up helpers are offered to the pool without blocking
// (TrySubmitBatch). A saturated or busy pool therefore never stalls the
// frame — the caller just executes every stripe on its own goroutine, which
// is the serial floor, never a deadlock.
func StripesOn(p *Pool, n, k int, fn func(stripe, lo, hi int)) {
	if n <= 0 || fn == nil {
		return
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		fn(0, 0, n)
		return
	}
	if p == nil {
		ForStripes(n, k, fn)
		return
	}
	var next atomic.Int64
	var box panicBox
	var done sync.WaitGroup
	done.Add(k)
	claimOne := func() (more bool) {
		defer func() { box.capture(recover()) }()
		s := int(next.Add(1) - 1)
		if s >= k {
			return false
		}
		// more is set before fn runs so a panicking stripe is captured and
		// the drain loop moves on to the next stripe instead of abandoning
		// the unclaimed remainder (which would hang the join below).
		more = true
		defer done.Done()
		fn(s, s*n/k, (s+1)*n/k)
		return true
	}
	drain := func() {
		for claimOne() {
		}
	}
	helpers := make([]func(), k-1)
	for i := range helpers {
		helpers[i] = drain
	}
	p.TrySubmitBatch(helpers)
	drain()
	// Every stripe was claimed exactly once (atomic counter) and each claim
	// decrements done even on panic, so this join cannot hang; it only waits
	// for stripes a helper claimed before the caller finished draining.
	done.Wait()
	box.rethrow()
}

// Close drains the pool and stops the workers. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
	close(p.jobs)
	p.workers.Wait()
}

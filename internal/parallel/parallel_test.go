package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForStripesCoversRangeExactlyOnce(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForStripes(n, 7, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForStripesStripeIndices(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	ForStripes(100, 4, func(stripe, lo, hi int) {
		mu.Lock()
		seen[stripe] = true
		mu.Unlock()
		if hi <= lo {
			t.Errorf("stripe %d empty: [%d,%d)", stripe, lo, hi)
		}
	})
	if len(seen) != 4 {
		t.Fatalf("stripes run = %d, want 4", len(seen))
	}
}

func TestForStripesClamps(t *testing.T) {
	// k > n must clamp; every index still visited once.
	var count int32
	ForStripes(3, 100, func(_, lo, hi int) {
		atomic.AddInt32(&count, int32(hi-lo))
	})
	if count != 3 {
		t.Fatalf("visited %d indices, want 3", count)
	}
	// Degenerates are no-ops.
	ForStripes(0, 4, func(_, _, _ int) { t.Fatal("must not run") })
	ForStripes(-5, 4, func(_, _, _ int) { t.Fatal("must not run") })
	ForStripes(5, 2, nil)
}

func TestForStripesSerialPath(t *testing.T) {
	calls := 0
	ForStripes(10, 1, func(stripe, lo, hi int) {
		calls++
		if stripe != 0 || lo != 0 || hi != 10 {
			t.Fatalf("serial stripe wrong: %d [%d,%d)", stripe, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial path ran %d times", calls)
	}
}

func TestMapVisitsAll(t *testing.T) {
	const n = 500
	var hits [n]int32
	Map(n, 8, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestMapDegenerate(t *testing.T) {
	Map(0, 4, func(int) { t.Fatal("must not run") })
	Map(5, 3, nil)
	count := 0
	Map(4, 1, func(int) { count++ })
	if count != 4 {
		t.Fatalf("serial Map ran %d times", count)
	}
}

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum int64
	for i := 1; i <= 100; i++ {
		i := i
		if err := p.Submit(func() { atomic.AddInt64(&sum, int64(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	if sum != 5050 {
		t.Fatalf("sum = %d, want 5050", sum)
	}
}

func TestPoolReuseAfterWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var n int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			if err := p.Submit(func() { atomic.AddInt64(&n, 1) }); err != nil {
				t.Fatal(err)
			}
		}
		p.Wait()
	}
	if n != 30 {
		t.Fatalf("jobs run = %d, want 30", n)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	if err := p.Submit(func() {}); err == nil {
		t.Fatal("submit after close accepted")
	}
	p.Close() // idempotent
}

func TestPoolNilJob(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if err := p.Submit(nil); err == nil {
		t.Fatal("nil job accepted")
	}
}

func TestPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	done := make(chan struct{})
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done
}

// Property: for any n and k, stripes partition [0, n) without gaps or
// overlaps and in order.
func TestPropertyStripesPartition(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n, k := int(nRaw), int(kRaw)%16+1
		if n == 0 {
			return true
		}
		type span struct{ lo, hi int }
		var mu sync.Mutex
		var spans []span
		ForStripes(n, k, func(_, lo, hi int) {
			mu.Lock()
			spans = append(spans, span{lo, hi})
			mu.Unlock()
		})
		covered := make([]bool, n)
		for _, s := range spans {
			for i := s.lo; i < s.hi; i++ {
				if i < 0 || i >= n || covered[i] {
					return false
				}
				covered[i] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the atomic work counter: many Map calls racing on separate
// counters must still each visit every index exactly once (run with -race).
func TestMapConcurrentCallers(t *testing.T) {
	const n, callers = 300, 6
	var wg sync.WaitGroup
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func() {
			defer wg.Done()
			var hits [n]int32
			Map(n, 4, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Errorf("index %d visited %d times", i, h)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Do must block the caller until the job completes and bound the number of
// concurrently executing bodies at the pool size even with more callers.
func TestPoolDoBoundsConcurrency(t *testing.T) {
	const workers, callers = 3, 12
	p := NewPool(workers)
	defer p.Close()
	var inFlight, peak int64
	var wg sync.WaitGroup
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func() {
			defer wg.Done()
			ran := false
			err := p.Do(func() {
				cur := atomic.AddInt64(&inFlight, 1)
				for {
					old := atomic.LoadInt64(&peak)
					if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
						break
					}
				}
				ran = true
				atomic.AddInt64(&inFlight, -1)
			})
			if err != nil {
				t.Error(err)
			}
			if !ran {
				t.Error("Do returned before the job ran")
			}
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt64(&peak); got > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", got, workers)
	}
}

func TestPoolDoErrors(t *testing.T) {
	p := NewPool(1)
	if err := p.Do(nil); err == nil {
		t.Fatal("nil job accepted")
	}
	p.Close()
	if err := p.Do(func() {}); err == nil {
		t.Fatal("Do after close accepted")
	}
}

// Regression: a panic inside a pooled job used to take down the worker
// goroutine (and with it the whole process); now Do returns the panic as a
// *PanicError and the pool stays fully usable — no deadlocked Do callers, no
// wedged Wait or Close.
func TestPoolDoSurvivesPanic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	err := p.Do(func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Do returned %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	// The pool must still run jobs on all workers afterwards.
	var n int64
	for i := 0; i < 20; i++ {
		if err := p.Do(func() { atomic.AddInt64(&n, 1) }); err != nil {
			t.Fatal(err)
		}
	}
	if n != 20 {
		t.Fatalf("jobs after panic = %d, want 20", n)
	}
	if p.Panics() != 0 {
		// Do recovers before the worker's safety net, so the pool-level
		// counter only counts fire-and-forget Submit panics.
		t.Fatalf("Do panic leaked to the pool counter: %d", p.Panics())
	}
}

// Concurrent Do callers must all get their results back even when some jobs
// panic (the original bug: one panic stranded every waiting caller).
func TestPoolDoConcurrentPanics(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var wg sync.WaitGroup
	var panics, oks int64
	for c := 0; c < 24; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(func() {
				if c%3 == 0 {
					panic(c)
				}
			})
			var pe *PanicError
			switch {
			case errors.As(err, &pe):
				atomic.AddInt64(&panics, 1)
			case err == nil:
				atomic.AddInt64(&oks, 1)
			default:
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if panics != 8 || oks != 16 {
		t.Fatalf("panics=%d oks=%d, want 8/16", panics, oks)
	}
}

// A fire-and-forget Submit job that panics must not kill the worker: Wait
// still returns, the panic counter records it, and Close drains cleanly.
func TestPoolSubmitPanicRecovered(t *testing.T) {
	p := NewPool(1)
	if err := p.Submit(func() { panic("fire-and-forget") }); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if got := p.Panics(); got != 1 {
		t.Fatalf("pool panic counter = %d, want 1", got)
	}
	var ran bool
	if err := p.Do(func() { ran = true }); err != nil || !ran {
		t.Fatalf("pool unusable after Submit panic: err=%v ran=%v", err, ran)
	}
	p.Close()
}

// A panic in a stripe goroutine must surface on the calling goroutine as a
// *PanicError re-panic after all stripes joined, not crash the process.
func TestForStripesRethrowsPanic(t *testing.T) {
	var visited int32
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v, want *PanicError", r)
		}
		if pe.Value != "stripe down" {
			t.Fatalf("panic value %v", pe.Value)
		}
		// Every other stripe still completed before the rethrow.
		if got := atomic.LoadInt32(&visited); got != 3 {
			t.Fatalf("%d healthy stripes ran, want 3", got)
		}
	}()
	ForStripes(4, 4, func(stripe, lo, hi int) {
		if stripe == 1 {
			panic("stripe down")
		}
		atomic.AddInt32(&visited, 1)
	})
	t.Fatal("ForStripes did not re-panic")
}

// Same contract for Map's shared-queue workers.
func TestMapRethrowsPanic(t *testing.T) {
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Fatal("Map did not re-panic as *PanicError")
		}
	}()
	Map(100, 4, func(i int) {
		if i == 50 {
			panic(i)
		}
	})
	t.Fatal("Map did not re-panic")
}

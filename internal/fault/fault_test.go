package fault

import (
	"testing"
	"time"

	"triplec/internal/frame"
	"triplec/internal/tasks"
)

func mustInjector(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.SetSleep(func(time.Duration) {})
	return in
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Defaults: Probs{Panic: -0.1}},
		{Defaults: Probs{Hang: 1.5}},
		{Defaults: Probs{Panic: 0.6, Hang: 0.6}}, // sums over 1
		{PerTask: map[tasks.Name]Probs{tasks.NameENH: {Spike: 2}}},
		{CorruptProb: -1},
		{HangMs: -5},
		{SpikeMs: -5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

// runTasks drives the injector through a fixed task-invocation sequence and
// returns the recovered injected panics.
func runTasks(in *Injector, frames int) (panics int) {
	seq := []tasks.Name{tasks.NameDetect, tasks.NameRDGFull, tasks.NameMKXExt, tasks.NameENH}
	for f := 0; f < frames; f++ {
		for _, task := range seq {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(InjectedPanic); !ok {
							panic(r)
						}
						panics++
					}
				}()
				in.BeforeTask(task, f)
			}()
		}
	}
	return panics
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Defaults: Probs{Panic: 0.05, Hang: 0.02, Spike: 0.1}}
	a := mustInjector(t, cfg)
	b := mustInjector(t, cfg)
	pa := runTasks(a, 500)
	pb := runTasks(b, 500)
	if pa != pb || a.Counts() != b.Counts() {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v", pa, a.Counts(), pb, b.Counts())
	}
	if pa == 0 || a.Counts().Hangs == 0 || a.Counts().Spikes == 0 {
		t.Fatalf("no faults fired over 2000 invocations: %v", a.Counts())
	}
	// Approximate rates: 2000 draws at 5% panic / 2% hang / 10% spike.
	c := a.Counts()
	if c.Panics < 50 || c.Panics > 160 {
		t.Errorf("panic count %d far from 100 expected", c.Panics)
	}
	if c.Hangs < 15 || c.Hangs > 70 {
		t.Errorf("hang count %d far from 40 expected", c.Hangs)
	}
}

func TestInjectorPerStreamIndependence(t *testing.T) {
	base := mustInjector(t, Config{Seed: 7, Defaults: Probs{Panic: 0.1}})
	s0a, s0b := base.ForStream(0), base.ForStream(0)
	s1 := base.ForStream(1)
	for _, in := range []*Injector{s0a, s0b, s1} {
		in.SetSleep(func(time.Duration) {})
	}
	if pa, pb := runTasks(s0a, 300), runTasks(s0b, 300); pa != pb {
		t.Fatalf("stream-0 injectors diverged: %d vs %d", pa, pb)
	}
	if runTasks(s1, 300) == 0 {
		t.Fatal("stream 1 never faulted")
	}
}

func TestInjectorPerTaskOverride(t *testing.T) {
	in := mustInjector(t, Config{
		Seed:     3,
		Defaults: Probs{Panic: 1},
		PerTask:  map[tasks.Name]Probs{tasks.NameENH: {}}, // ENH exempt
	})
	sawENH := false
	for f := 0; f < 20; f++ {
		func() {
			defer func() { recover() }()
			in.BeforeTask(tasks.NameENH, f)
			sawENH = true
		}()
	}
	if !sawENH {
		t.Fatal("per-task override did not exempt ENH")
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("default panic probability 1 did not fire")
		}
	}()
	in.BeforeTask(tasks.NameMKXExt, 0)
}

func TestInjectorTaskFilter(t *testing.T) {
	in := mustInjector(t, Config{
		Seed:     5,
		Defaults: Probs{Panic: 1},
		Tasks:    []tasks.Name{tasks.NameZOOM},
	})
	// Unlisted tasks never fault.
	for f := 0; f < 50; f++ {
		in.BeforeTask(tasks.NameREG, f)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("listed task did not fault")
		}
	}()
	in.BeforeTask(tasks.NameZOOM, 0)
}

func TestWrapSourceCorruptsCopies(t *testing.T) {
	orig := frame.New(64, 64)
	orig.Fill(1000)
	src := func(int) *frame.Frame { return orig }
	in := mustInjector(t, Config{Seed: 9, CorruptProb: 1})
	wrapped := in.WrapSource(src)
	f := wrapped(0)
	if f == orig {
		t.Fatal("corrupted frame aliases the source frame")
	}
	if f.Equal(orig) {
		t.Fatal("frame not corrupted despite probability 1")
	}
	for _, px := range orig.Pix {
		if px != 1000 {
			t.Fatal("source frame mutated")
		}
	}
	if in.Counts().Corrupted != 1 {
		t.Fatalf("corrupted count %d, want 1", in.Counts().Corrupted)
	}
	// Zero probability: the wrapper is the identity (no copy, no draw).
	clean := mustInjector(t, Config{Seed: 9})
	if got := clean.WrapSource(src)(0); got != orig {
		t.Fatal("zero-probability wrapper copied the frame")
	}
	if clean.WrapSource(nil) != nil {
		t.Fatal("nil source not passed through")
	}
}

func TestInjectedPanicString(t *testing.T) {
	p := InjectedPanic{Task: tasks.NameENH, Frame: 12}
	if p.String() != "injected panic in ENH at frame 12" {
		t.Fatalf("unexpected string %q", p.String())
	}
}

package fault

import (
	"testing"

	"triplec/internal/tasks"
)

func mustBreaker(t *testing.T, cfg BreakerConfig) *Breaker {
	t.Helper()
	b, err := NewBreaker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBreakerConfigValidation(t *testing.T) {
	bad := []BreakerConfig{
		{Window: -1},
		{MinSamples: -2},
		{OpenFrames: -3},
		{TripRate: 1.5},
		{TripRate: -0.2},
	}
	for i, cfg := range bad {
		if _, err := NewBreaker(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBreakerTripsOnFailureRate(t *testing.T) {
	b := mustBreaker(t, BreakerConfig{Window: 8, MinSamples: 4, TripRate: 0.5, OpenFrames: 3})
	task := tasks.NameRDGFull
	// Three failures among four samples: trips at the fourth record.
	b.Record(task, true)
	for i := 0; i < 3; i++ {
		if got := b.State(task); got != BreakerClosed && i < 2 {
			t.Fatalf("tripped early at %d: %v", i, got)
		}
		b.Record(task, false)
	}
	if got := b.State(task); got != BreakerOpen {
		t.Fatalf("state %v after 3/4 failures, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips %d, want 1", b.Trips())
	}
	// Open: refuses for OpenFrames-1 calls, then admits the half-open probe.
	if b.Allow(task) || b.Allow(task) {
		t.Fatal("open circuit admitted execution during cool-down")
	}
	if !b.Allow(task) {
		t.Fatal("cool-down elapsed but no half-open probe admitted")
	}
	if got := b.State(task); got != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	// Only one probe in flight.
	if b.Allow(task) {
		t.Fatal("second concurrent probe admitted")
	}
	// Successful probe closes the circuit.
	b.Record(task, true)
	if got := b.State(task); got != BreakerClosed {
		t.Fatalf("state %v after good probe, want closed", got)
	}
	if !b.Allow(task) {
		t.Fatal("closed circuit refused execution")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := mustBreaker(t, BreakerConfig{Window: 4, MinSamples: 2, TripRate: 0.5, OpenFrames: 2})
	task := tasks.NameZOOM
	b.Record(task, false)
	b.Record(task, false)
	if b.State(task) != BreakerOpen {
		t.Fatal("did not trip")
	}
	b.Allow(task) // cool-down 1
	if !b.Allow(task) {
		t.Fatal("no probe after cool-down")
	}
	b.Record(task, false) // probe fails
	if b.State(task) != BreakerOpen {
		t.Fatal("failed probe did not reopen")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips %d, want 2", b.Trips())
	}
}

func TestBreakerIsolatesTasks(t *testing.T) {
	b := mustBreaker(t, BreakerConfig{Window: 4, MinSamples: 2, TripRate: 0.5, OpenFrames: 4})
	b.Record(tasks.NameGWExt, false)
	b.Record(tasks.NameGWExt, false)
	if b.State(tasks.NameGWExt) != BreakerOpen {
		t.Fatal("GW_EXT did not trip")
	}
	if !b.Allow(tasks.NameZOOM) || b.State(tasks.NameZOOM) != BreakerClosed {
		t.Fatal("healthy task affected by another task's circuit")
	}
	open := b.OpenTasks()
	if len(open) != 1 || open[0] != tasks.NameGWExt {
		t.Fatalf("open tasks %v, want [GW_EXT]", open)
	}
}

func TestBreakerRecoversAfterIntermittentFault(t *testing.T) {
	// A fault that clears: circuit opens, probe succeeds, stays closed under
	// sustained success.
	b := mustBreaker(t, BreakerConfig{Window: 4, MinSamples: 2, TripRate: 1, OpenFrames: 1})
	task := tasks.NameRDGROI
	b.Record(task, false)
	b.Record(task, false)
	if b.State(task) != BreakerOpen {
		t.Fatal("did not trip at 100% failure")
	}
	if !b.Allow(task) { // cooldown 1 -> immediate half-open probe
		t.Fatal("no probe admitted")
	}
	b.Record(task, true)
	for i := 0; i < 50; i++ {
		if !b.Allow(task) {
			t.Fatalf("closed circuit refused at %d", i)
		}
		b.Record(task, true)
	}
	if b.Trips() != 1 {
		t.Fatalf("spurious re-trips: %d", b.Trips())
	}
}

package fault

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"triplec/internal/tasks"
)

// BreakerState is one task's circuit state.
type BreakerState int

// The classic three breaker states.
const (
	// BreakerClosed: the task runs normally; outcomes feed the window.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the task is suppressed; after OpenFrames refusals the
	// circuit moves to half-open.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe execution is admitted; its outcome
	// closes the circuit again or re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-task circuit breaker. Timing is counted in
// frames (Allow calls), not wall clock, so breaker behaviour is
// deterministic under test and independent of host speed.
type BreakerConfig struct {
	// Window is the rolling per-task outcome window (default 16).
	Window int
	// MinSamples is how many outcomes the window needs before the failure
	// rate can trip the circuit (default 4).
	MinSamples int
	// TripRate is the failure fraction within the window that opens the
	// circuit (default 0.5).
	TripRate float64
	// OpenFrames is how many Allow refusals an open circuit serves before
	// admitting a half-open probe (default 16).
	OpenFrames int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window == 0 {
		c.Window = 16
	}
	if c.MinSamples == 0 {
		c.MinSamples = 4
	}
	if c.TripRate == 0 {
		c.TripRate = 0.5
	}
	if c.OpenFrames == 0 {
		c.OpenFrames = 16
	}
	return c
}

func (c BreakerConfig) validate() error {
	if c.Window < 0 || c.MinSamples < 0 || c.OpenFrames < 0 {
		return fmt.Errorf("fault: breaker window/minSamples/openFrames must be non-negative, got %d/%d/%d",
			c.Window, c.MinSamples, c.OpenFrames)
	}
	if math.IsNaN(c.TripRate) || c.TripRate < 0 || c.TripRate > 1 {
		return fmt.Errorf("fault: breaker trip rate %v outside [0, 1]", c.TripRate)
	}
	return nil
}

// circuit is one task's breaker state.
type circuit struct {
	state    BreakerState
	window   []bool // ring of recent outcomes (true = ok)
	next     int    // ring write position
	filled   int    // samples in the ring
	cooldown int    // remaining Allow refusals while open
	probing  bool   // half-open probe currently admitted
}

func (c *circuit) record(ok bool) {
	if c.filled < len(c.window) {
		c.filled++
	}
	c.window[c.next] = ok
	c.next = (c.next + 1) % len(c.window)
}

func (c *circuit) failRate() (rate float64, samples int) {
	fails := 0
	for i := 0; i < c.filled; i++ {
		if !c.window[i] {
			fails++
		}
	}
	if c.filled == 0 {
		return 0, 0
	}
	return float64(fails) / float64(c.filled), c.filled
}

func (c *circuit) reset() {
	c.filled, c.next = 0, 0
	c.probing = false
}

// Breaker tracks per-task failure rates and suppresses tasks whose circuit
// is open, probing half-open after a frame-counted cool-down. It implements
// the pipeline's TaskGate hook and is safe for concurrent use (a stalled
// frame's late goroutine may record against a restarted stream's breaker).
type Breaker struct {
	cfg BreakerConfig

	// OnTrip, when set before first use, observes every circuit opening —
	// the span layer's breaker-trip instant. It runs under the breaker's
	// lock and must not call back in or block.
	OnTrip func(task tasks.Name)

	mu    sync.Mutex
	tasks map[tasks.Name]*circuit
	trips uint64
}

// NewBreaker builds a breaker (zero-value config = defaults).
func NewBreaker(cfg BreakerConfig) (*Breaker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Breaker{cfg: cfg.withDefaults(), tasks: map[tasks.Name]*circuit{}}, nil
}

func (b *Breaker) circuitFor(task tasks.Name) *circuit {
	c, ok := b.tasks[task]
	if !ok {
		c = &circuit{window: make([]bool, b.cfg.Window)}
		b.tasks[task] = c
	}
	return c
}

// Allow reports whether the task may execute now. An open circuit refuses
// and counts down toward half-open; a half-open circuit admits exactly one
// probe until its outcome is recorded.
func (b *Breaker) Allow(task tasks.Name) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.circuitFor(task)
	switch c.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		c.cooldown--
		if c.cooldown <= 0 {
			c.state = BreakerHalfOpen
			c.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if !c.probing {
			c.probing = true
			return true
		}
		return false
	}
	return true
}

// Record feeds one execution outcome back. In the closed state a window
// failure rate at or above TripRate (with MinSamples seen) opens the
// circuit; in the half-open state a successful probe closes it and a failed
// probe re-opens it for another full cool-down.
func (b *Breaker) Record(task tasks.Name, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.circuitFor(task)
	switch c.state {
	case BreakerClosed:
		c.record(ok)
		if rate, n := c.failRate(); n >= b.cfg.MinSamples && rate >= b.cfg.TripRate {
			c.state = BreakerOpen
			c.cooldown = b.cfg.OpenFrames
			c.reset()
			b.trips++
			if b.OnTrip != nil {
				b.OnTrip(task)
			}
		}
	case BreakerHalfOpen:
		if ok {
			c.state = BreakerClosed
			c.reset()
		} else {
			c.state = BreakerOpen
			c.cooldown = b.cfg.OpenFrames
			c.probing = false
			b.trips++
			if b.OnTrip != nil {
				b.OnTrip(task)
			}
		}
	case BreakerOpen:
		// A late outcome from a frame started before the trip: ignore.
	}
}

// State returns the task's current circuit state.
func (b *Breaker) State(task tasks.Name) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, ok := b.tasks[task]; ok {
		return c.state
	}
	return BreakerClosed
}

// Trips returns how many times any circuit opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// OpenTasks lists the tasks whose circuit is not closed, sorted by name.
func (b *Breaker) OpenTasks() []tasks.Name {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []tasks.Name
	for task, c := range b.tasks {
		if c.state != BreakerClosed {
			out = append(out, task)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

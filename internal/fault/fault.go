// Package fault is the deterministic fault-injection layer behind the
// reproduction's chaos runs: a seeded injector that wraps task execution
// (panics, latency spikes, stuck-task hangs) and frame delivery (pixel
// corruption) so robustness failures reproduce from a seed, plus a per-task
// circuit breaker with half-open probing that the pipeline uses to keep a
// repeatedly failing optional task from poisoning every frame.
//
// The injector plugs into the serving stack through the pipeline's fault
// hooks (Engine.SetTaskHook, Engine.SetGate) and a frame-source wrapper, so
// neither internal/pipeline nor internal/stream imports this package on the
// healthy path — chaos wiring lives in the chaos subcommand and the tests.
package fault

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"triplec/internal/frame"
	"triplec/internal/stats"
	"triplec/internal/tasks"
)

// Probs is one task-invocation fault mix. Each field is a probability in
// [0, 1]; the three faults are mutually exclusive per invocation (panic is
// drawn first, then hang, then spike, from a single uniform sample, so
// enabling one fault class never shifts another's decision stream).
type Probs struct {
	Panic float64 // abort the task with a panic
	Hang  float64 // block the task for Config.HangMs (a stuck task)
	Spike float64 // delay the task by Config.SpikeMs (a latency spike)
}

func (p Probs) total() float64 { return p.Panic + p.Hang + p.Spike }

func (p Probs) validate(ctx string) error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"panic", p.Panic}, {"hang", p.Hang}, {"spike", p.Spike}} {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: %s %s probability %v outside [0, 1]", ctx, f.name, f.v)
		}
	}
	if p.total() > 1 {
		return fmt.Errorf("fault: %s probabilities sum to %v > 1", ctx, p.total())
	}
	return nil
}

// Config is a fault plan: the per-task fault mix, the frame-corruption rate
// and the fault magnitudes, all driven by one seed. The zero value injects
// nothing.
type Config struct {
	// Seed drives every injection decision. Two runs with the same plan and
	// the same per-stream call sequence inject identical faults.
	Seed uint64
	// Defaults is the fault mix applied to every eligible task invocation.
	Defaults Probs
	// PerTask overrides the default mix for specific tasks.
	PerTask map[tasks.Name]Probs
	// Tasks restricts injection to the listed tasks (nil = all tasks).
	Tasks []tasks.Name
	// CorruptProb is the per-frame probability that the source frame is
	// replaced by a copy with a corrupted pixel band.
	CorruptProb float64
	// HangMs is how long a stuck task blocks (default 200). Bounded on
	// purpose: an unbounded hang would leak the worker executing it; the
	// serving layer's stall watchdog is what turns a long hang into a
	// stream crash.
	HangMs float64
	// SpikeMs is the latency-spike magnitude (default 25).
	SpikeMs float64
}

func (c Config) withDefaults() Config {
	if c.HangMs == 0 {
		c.HangMs = 200
	}
	if c.SpikeMs == 0 {
		c.SpikeMs = 25
	}
	return c
}

// Validate checks the plan's probabilities and magnitudes.
func (c Config) Validate() error {
	if err := c.Defaults.validate("default"); err != nil {
		return err
	}
	for task, p := range c.PerTask {
		if err := p.validate(string(task)); err != nil {
			return err
		}
	}
	if math.IsNaN(c.CorruptProb) || c.CorruptProb < 0 || c.CorruptProb > 1 {
		return fmt.Errorf("fault: corrupt probability %v outside [0, 1]", c.CorruptProb)
	}
	if math.IsNaN(c.HangMs) || math.IsInf(c.HangMs, 0) || c.HangMs < 0 {
		return fmt.Errorf("fault: hang duration %v ms must be finite and non-negative", c.HangMs)
	}
	if math.IsNaN(c.SpikeMs) || math.IsInf(c.SpikeMs, 0) || c.SpikeMs < 0 {
		return fmt.Errorf("fault: spike duration %v ms must be finite and non-negative", c.SpikeMs)
	}
	return nil
}

// Kind classifies one injected fault for observation hooks.
type Kind int

// The injector's four fault classes.
const (
	KindPanic Kind = iota
	KindHang
	KindSpike
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindHang:
		return "hang"
	case KindSpike:
		return "spike"
	case KindCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// InjectedPanic is the value an injected task panic carries, so chaos tests
// and recovery paths can tell injected faults from genuine bugs.
type InjectedPanic struct {
	Task  tasks.Name
	Frame int
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("injected panic in %s at frame %d", p.Task, p.Frame)
}

// Counts reports how many faults an injector has fired.
type Counts struct {
	Panics, Hangs, Spikes, Corrupted uint64
}

// Add returns the element-wise sum of two count sets.
func (c Counts) Add(d Counts) Counts {
	return Counts{
		Panics: c.Panics + d.Panics, Hangs: c.Hangs + d.Hangs,
		Spikes: c.Spikes + d.Spikes, Corrupted: c.Corrupted + d.Corrupted,
	}
}

func (c Counts) String() string {
	return fmt.Sprintf("panics=%d hangs=%d spikes=%d corrupted=%d",
		c.Panics, c.Hangs, c.Spikes, c.Corrupted)
}

// Injector deterministically injects the plan's faults into one stream's
// task and frame path. Install BeforeTask as the engine's task hook and wrap
// the stream's source with WrapSource.
//
// The decision stream is a single seeded RNG, so with one injector per
// stream (see ForStream) a chaos run replays exactly from its seed. The RNG
// is mutex-guarded anyway: after a stall the serving layer abandons the hung
// frame, and the late goroutine may still draw while the restarted stream
// proceeds.
type Injector struct {
	cfg    Config
	only   map[tasks.Name]bool // nil = all tasks eligible
	stream int                 // which stream this injector drives (ForStream)

	mu  sync.Mutex
	rng *stats.RNG

	// counts is shared between a base injector and its ForStream children,
	// so the base's Counts() aggregates the whole chaos run.
	counts *counters

	// onFault, when set (SetOnFault before ForStream), observes every fired
	// fault — the span layer's injection instant. It runs on the injecting
	// goroutine, immediately before the fault takes effect (before an
	// injected panic unwinds), and must not block.
	onFault func(stream int, task tasks.Name, frame int, kind Kind)

	// sleep is swapped out by tests to keep chaos units fast.
	sleep func(time.Duration)
}

type counters struct {
	panics, hangs, spikes, corrupted atomic.Uint64
}

// New builds an injector for the plan.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	in := &Injector{cfg: cfg, rng: stats.NewRNG(cfg.Seed), counts: &counters{}, sleep: time.Sleep}
	if cfg.Tasks != nil {
		in.only = make(map[tasks.Name]bool, len(cfg.Tasks))
		for _, t := range cfg.Tasks {
			in.only[t] = true
		}
	}
	return in, nil
}

// ForStream derives an independent injector for stream i: same plan, a
// seed split from the base seed, so per-stream decision sequences stay
// deterministic regardless of goroutine interleaving. The fault counters
// are shared with the base injector, whose Counts() therefore aggregates
// the whole run.
func (in *Injector) ForStream(i int) *Injector {
	child, err := New(in.cfg)
	if err != nil { // in was built from a validated config
		panic(err)
	}
	child.rng = stats.NewRNG(in.cfg.Seed ^ (0x9e3779b97f4a7c15 * (uint64(i) + 1)))
	child.counts = in.counts
	child.onFault = in.onFault
	child.stream = i
	child.sleep = in.sleep
	return child
}

// SetOnFault installs a hook observing every fired fault. Set it on the
// base injector before deriving per-stream children; children inherit it.
func (in *Injector) SetOnFault(fn func(stream int, task tasks.Name, frame int, kind Kind)) {
	in.onFault = fn
}

// fired reports one fault to the observation hook.
func (in *Injector) fired(task tasks.Name, frame int, kind Kind) {
	if in.onFault != nil {
		in.onFault(in.stream, task, frame, kind)
	}
}

// probsFor resolves the fault mix for one task.
func (in *Injector) probsFor(task tasks.Name) Probs {
	if in.only != nil && !in.only[task] {
		return Probs{}
	}
	if p, ok := in.cfg.PerTask[task]; ok {
		return p
	}
	return in.cfg.Defaults
}

// BeforeTask is the pipeline task hook: invoked before every task execution,
// it may panic (with an InjectedPanic), block for HangMs (a stuck task) or
// sleep SpikeMs (a latency spike), each with its configured probability.
func (in *Injector) BeforeTask(task tasks.Name, frameIdx int) {
	p := in.probsFor(task)
	if p.total() == 0 {
		return
	}
	in.mu.Lock()
	u := in.rng.Float64()
	in.mu.Unlock()
	switch {
	case u < p.Panic:
		in.counts.panics.Add(1)
		in.fired(task, frameIdx, KindPanic)
		panic(InjectedPanic{Task: task, Frame: frameIdx})
	case u < p.Panic+p.Hang:
		in.counts.hangs.Add(1)
		in.fired(task, frameIdx, KindHang)
		in.sleep(time.Duration(in.cfg.HangMs * float64(time.Millisecond)))
	case u < p.Panic+p.Hang+p.Spike:
		in.counts.spikes.Add(1)
		in.fired(task, frameIdx, KindSpike)
		in.sleep(time.Duration(in.cfg.SpikeMs * float64(time.Millisecond)))
	}
}

// WrapSource wraps a frame source: with CorruptProb, the delivered frame is
// a copy with one horizontal band overwritten by uniform noise (the
// original is never mutated — sources may share frames across streams). The
// pipeline must survive the garbage; the scenario switches it flips exercise
// the predictor's robustness.
func (in *Injector) WrapSource(src func(int) *frame.Frame) func(int) *frame.Frame {
	if src == nil || in.cfg.CorruptProb == 0 {
		return src
	}
	return func(i int) *frame.Frame {
		f := src(i)
		if f == nil || f.Pixels() == 0 {
			return f
		}
		in.mu.Lock()
		hit := in.rng.Float64() < in.cfg.CorruptProb
		var y0, rows int
		if hit {
			h := f.Height()
			rows = 1 + h/8
			y0 = in.rng.Intn(h)
		}
		in.mu.Unlock()
		if !hit {
			return f
		}
		in.counts.corrupted.Add(1)
		in.fired("", i, KindCorrupt)
		g := f.Clone()
		in.mu.Lock()
		for dy := 0; dy < rows; dy++ {
			y := y0 + dy
			if y >= g.Height() {
				break
			}
			row := g.Row(y)
			for x := range row {
				row[x] = uint16(in.rng.Uint64())
			}
		}
		in.mu.Unlock()
		return g
	}
}

// Counts returns the faults fired so far.
func (in *Injector) Counts() Counts {
	return Counts{
		Panics:    in.counts.panics.Load(),
		Hangs:     in.counts.hangs.Load(),
		Spikes:    in.counts.spikes.Load(),
		Corrupted: in.counts.corrupted.Load(),
	}
}

// SetSleep replaces the real clock used for hangs and spikes (tests).
func (in *Injector) SetSleep(fn func(time.Duration)) {
	if fn != nil {
		in.sleep = fn
	}
}

package stats

import (
	"math"
	"testing"
)

// Injected NaN/Inf samples must never change the percentile of the finite
// samples: property-tested over random series, injection positions and
// percentile ranks.
func TestPercentileIgnoresNonFinite(t *testing.T) {
	rng := NewRNG(61)
	for trial := 0; trial < 200; trial++ {
		n := 1 + int(rng.Uint64()%40)
		finite := make([]float64, n)
		for i := range finite {
			finite[i] = rng.Float64()*200 - 50
		}
		p := float64(rng.Uint64() % 101)
		want, err := Percentile(finite, p)
		if err != nil {
			t.Fatal(err)
		}
		// Inject 1..8 non-finite samples at random positions.
		poisoned := append([]float64(nil), finite...)
		for k := 0; k < 1+int(rng.Uint64()%8); k++ {
			bad := math.NaN()
			switch rng.Uint64() % 3 {
			case 1:
				bad = math.Inf(1)
			case 2:
				bad = math.Inf(-1)
			}
			pos := int(rng.Uint64() % uint64(len(poisoned)+1))
			poisoned = append(poisoned[:pos], append([]float64{bad}, poisoned[pos:]...)...)
		}
		got, err := Percentile(poisoned, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: P%.0f with injected non-finite samples = %v, want %v (finite %v, poisoned %v)",
				trial, p, got, want, finite, poisoned)
		}
	}
}

func TestPercentileAllNonFinite(t *testing.T) {
	if _, err := Percentile([]float64{math.NaN(), math.Inf(1)}, 50); err == nil {
		t.Fatal("all-non-finite series must be rejected, not interpolated")
	}
	if _, err := Percentile([]float64{1, 2, 3}, math.NaN()); err == nil {
		t.Fatal("NaN percentile rank accepted")
	}
}

func TestHistogramIgnoresNonFinite(t *testing.T) {
	finite := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	wantCounts, wantEdges, err := Histogram(finite, 4)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := append([]float64{math.Inf(1), math.NaN()}, finite...)
	poisoned = append(poisoned, math.Inf(-1))
	counts, edges, err := Histogram(poisoned, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("counts %v, want %v", counts, wantCounts)
		}
	}
	for i := range wantEdges {
		if edges[i] != wantEdges[i] {
			t.Fatalf("edges %v, want %v", edges, wantEdges)
		}
	}
	if _, _, err := Histogram([]float64{math.NaN()}, 2); err == nil {
		t.Fatal("all-NaN histogram accepted")
	}
}

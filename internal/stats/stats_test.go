package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceConstantSeries(t *testing.T) {
	if got := Variance([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("Variance of constant series = %v, want 0", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Population variance of {2,4,4,4,5,5,7,9} is 4.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestVarianceShortSeries(t *testing.T) {
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance of single element = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max(nil) did not panic")
		}
	}()
	Max(nil)
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestPercentileMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got, err := Percentile(xs, 50)
	if err != nil || got != 3 {
		t.Fatalf("Percentile(50) = %v, %v; want 3", got, err)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, err := Percentile(xs, 25)
	if err != nil || !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Percentile(25) = %v, %v; want 2.5", got, err)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("expected error for out-of-range p")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("expected error for negative p")
	}
}

func TestPercentileSingle(t *testing.T) {
	got, err := Percentile([]float64{42}, 99)
	if err != nil || got != 42 {
		t.Fatalf("Percentile of singleton = %v, %v", got, err)
	}
}

func TestAutocorrelationLagZeroIsOne(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6, 2, 8}
	acf, err := Autocorrelation(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Fatalf("acf[0] = %v, want 1", acf[0])
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	acf, err := Autocorrelation([]float64{2, 2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Fatalf("constant-series acf = %v, want [1 0 0]", acf)
	}
}

func TestAutocorrelationEmpty(t *testing.T) {
	if _, err := Autocorrelation(nil, 2); err == nil {
		t.Fatal("expected error")
	}
}

func TestAutocorrelationClampsLag(t *testing.T) {
	acf, err := Autocorrelation([]float64{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(acf) != 3 {
		t.Fatalf("acf length = %d, want 3 (lags 0..2)", len(acf))
	}
}

func TestAutocorrelationAR1Decay(t *testing.T) {
	// An AR(1) process x[t] = phi*x[t-1] + noise has acf[lag] ~ phi^lag.
	rng := NewRNG(7)
	const phi = 0.8
	xs := make([]float64, 20000)
	for i := 1; i < len(xs); i++ {
		xs[i] = phi*xs[i-1] + rng.Norm(0, 1)
	}
	acf, err := Autocorrelation(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for lag := 1; lag <= 5; lag++ {
		want := math.Pow(phi, float64(lag))
		if !almostEqual(acf[lag], want, 0.05) {
			t.Fatalf("acf[%d] = %v, want ~%v", lag, acf[lag], want)
		}
	}
}

func TestExponentialDecayFitRecovery(t *testing.T) {
	// Construct an exact exponential acf and recover its rate.
	const lambda = 0.35
	acf := make([]float64, 12)
	for lag := range acf {
		acf[lag] = math.Exp(-lambda * float64(lag))
	}
	got, res, err := ExponentialDecayFit(acf)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, lambda, 1e-9) {
		t.Fatalf("lambda = %v, want %v", got, lambda)
	}
	if res > 1e-9 {
		t.Fatalf("residual = %v, want ~0", res)
	}
}

func TestExponentialDecayFitInsufficient(t *testing.T) {
	if _, _, err := ExponentialDecayFit([]float64{1, -0.2, 0.1}); err == nil {
		t.Fatal("expected error with no positive prefix of length >= 2")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.067*x + 20.6 // the paper's Eq. 3
	}
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 0.067, 1e-12) || !almostEqual(b, 20.6, 1e-12) {
		t.Fatalf("fit = %v, %v; want 0.067, 20.6", a, b)
	}
	if !almostEqual(r2, 1, 1e-12) {
		t.Fatalf("r2 = %v, want 1", r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for n < 2")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("expected degenerate-x error")
	}
}

func TestHistogramBasic(t *testing.T) {
	counts, edges, err := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	if counts[0]+counts[1] != 5 {
		t.Fatalf("histogram lost samples: %v", counts)
	}
	// Max value must land in the last bin.
	if counts[1] < 1 {
		t.Fatalf("max value not in last bin: %v", counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, _, err := Histogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("histogram of constant series lost samples: %v", counts)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, _, err := Histogram(nil, 3); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Fatal("expected error for nbins < 1")
	}
}

func TestJitterOf(t *testing.T) {
	// Mean 100, max 120 -> worst-vs-avg gap 20% (the paper's semi-auto figure).
	xs := []float64{80, 100, 100, 120}
	j, err := JitterOf(xs)
	if err != nil {
		t.Fatal(err)
	}
	if j.Mean != 100 || j.Min != 80 || j.Max != 120 || j.PeakToPeak != 40 {
		t.Fatalf("unexpected jitter summary: %+v", j)
	}
	if !almostEqual(j.WorstVsAvg, 0.2, 1e-12) {
		t.Fatalf("WorstVsAvg = %v, want 0.2", j.WorstVsAvg)
	}
}

func TestJitterOfEmpty(t *testing.T) {
	if _, err := JitterOf(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestMAPEPerfectPrediction(t *testing.T) {
	actual := []float64{10, 20, 30}
	mape, err := MeanAbsPercentError(actual, actual)
	if err != nil || mape != 0 {
		t.Fatalf("MAPE = %v, %v; want 0", mape, err)
	}
}

func TestMAPEKnown(t *testing.T) {
	pred := []float64{11, 18}
	act := []float64{10, 20}
	mape, err := MeanAbsPercentError(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mape, 0.1, 1e-12) { // (10% + 10%) / 2
		t.Fatalf("MAPE = %v, want 0.1", mape)
	}
}

func TestMAPESkipsZeros(t *testing.T) {
	mape, err := MeanAbsPercentError([]float64{5, 11}, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mape, 0.1, 1e-12) {
		t.Fatalf("MAPE = %v, want 0.1", mape)
	}
}

func TestMAPEErrors(t *testing.T) {
	if _, err := MeanAbsPercentError([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := MeanAbsPercentError(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := MeanAbsPercentError([]float64{1}, []float64{0}); err == nil {
		t.Fatal("expected all-zero error")
	}
}

func TestMaxAbsPercentError(t *testing.T) {
	worst, err := MaxAbsPercentError([]float64{11, 26}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(worst, 0.3, 1e-12) {
		t.Fatalf("worst = %v, want 0.3", worst)
	}
}

func TestMaxAbsPercentErrorEmpty(t *testing.T) {
	if _, err := MaxAbsPercentError([]float64{1}, []float64{0}); err == nil {
		t.Fatal("expected error when all actuals are zero")
	}
}

// Property: variance is non-negative and invariant under shifts.
func TestPropertyVarianceShiftInvariant(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		vx, vy := Variance(xs), Variance(ys)
		return vx >= 0 && almostEqual(vx, vy, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the mean lies between min and max.
func TestPropertyMeanBounded(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves sample count.
func TestPropertyHistogramConservesMass(t *testing.T) {
	f := func(raw []int8, nb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		nbins := int(nb)%16 + 1
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		counts, _, err := Histogram(xs, nbins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce the all-zero fixed point")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %v", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(3).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm(10, 3)
	}
	if m := Mean(xs); !almostEqual(m, 10, 0.05) {
		t.Fatalf("Norm mean = %v, want ~10", m)
	}
	if s := StdDev(xs); !almostEqual(s, 3, 0.05) {
		t.Fatalf("Norm stddev = %v, want ~3", s)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(13)
	for _, lambda := range []float64{0.5, 4, 50} {
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		got := float64(sum) / n
		if !almostEqual(got, lambda, lambda*0.05+0.05) {
			t.Fatalf("Poisson(%v) mean = %v", lambda, got)
		}
	}
}

func TestRNGPoissonNonPositive(t *testing.T) {
	r := NewRNG(17)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive rate must be 0")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, %v; want 1", r, err)
	}
	neg := []float64{40, 30, 20, 10}
	r, err = Pearson(xs, neg)
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	rng := NewRNG(3)
	xs := make([]float64, 10000)
	ys := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Norm(0, 1)
		ys[i] = rng.Norm(0, 1)
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r > 0.05 || r < -0.05 {
		t.Fatalf("independent series correlation = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := Pearson([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("constant series accepted")
	}
}

package stats

import "math"

// RNG is a small deterministic pseudo-random number generator
// (xorshift64star). Every stochastic component of the reproduction — the
// synthetic sequence generator, noise injection, scenario scripting — draws
// from an RNG seeded explicitly, so all experiments are bit-reproducible
// without math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	// Avoid log(0) by shifting u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Poisson returns a Poisson-distributed value with rate lambda, using
// Knuth's algorithm for small lambda and a normal approximation above 30.
// X-ray quantum noise in the synthetic generator is Poisson.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := r.Norm(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Package stats provides the small statistics substrate used throughout the
// Triple-C reproduction: moments, autocorrelation, histograms, percentiles
// and least-squares fitting.
//
// The package is deliberately dependency-free and operates on float64 slices;
// all higher-level resource series (computation times in milliseconds, cache
// occupancies in bytes, bandwidths in MB/s) are represented that way before
// they reach the modeling layers in internal/ewma and internal/markov.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty series.
var ErrEmpty = errors.New("stats: empty series")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// which is what the paper's state-count rule M = Cmax/sigma implies for long
// profiling traces. Returns 0 for series shorter than 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice because a
// missing extremum indicates a logic error upstream.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty series")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty series")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// finiteOnly returns the finite samples of xs, reusing xs when every sample
// already is (the common case pays no copy).
func finiteOnly(xs []float64) []float64 {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			out := make([]float64, i, len(xs))
			copy(out, xs[:i])
			for _, y := range xs[i+1:] {
				if !math.IsNaN(y) && !math.IsInf(y, 0) {
					out = append(out, y)
				}
			}
			return out
		}
	}
	return xs
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. NaN and Inf samples are skipped —
// sort.Float64s places NaNs unpredictably, which would poison the rank
// interpolation for every finite sample (the same hazard the Chart NaN-skip
// fix closed for plotting). It returns an error for empty input, input with
// no finite samples, or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, errors.New("stats: percentile out of range")
	}
	xs = finiteOnly(xs)
	if len(xs) == 0 {
		return 0, errors.New("stats: no finite samples")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Autocorrelation returns the normalized autocorrelation function of xs for
// lags 0..maxLag inclusive. Lag 0 is always 1 (for non-constant series).
// The paper validates Markov-chain applicability by checking that this
// function decays exponentially; see ExponentialDecayFit.
func Autocorrelation(xs []float64, maxLag int) ([]float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, ErrEmpty
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	m := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	acf := make([]float64, maxLag+1)
	if denom == 0 {
		// Constant series: define acf as 1 at lag 0, 0 elsewhere.
		acf[0] = 1
		return acf, nil
	}
	for lag := 0; lag <= maxLag; lag++ {
		num := 0.0
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - m) * (xs[i+lag] - m)
		}
		acf[lag] = num / denom
	}
	return acf, nil
}

// ExponentialDecayFit fits acf[lag] ~= exp(-lambda*lag) over the positive
// prefix of the autocorrelation function and returns the decay rate lambda
// and the RMS residual of the fit in log space. A small residual indicates
// the exponential-decay property required for first-order Markov modeling.
func ExponentialDecayFit(acf []float64) (lambda, residual float64, err error) {
	// Collect lags with strictly positive correlation; stop at the first
	// non-positive value since log is undefined there and the tail is noise.
	var lags, logs []float64
	for lag := 1; lag < len(acf); lag++ {
		if acf[lag] <= 0 {
			break
		}
		lags = append(lags, float64(lag))
		logs = append(logs, math.Log(acf[lag]))
	}
	if len(lags) < 2 {
		return 0, 0, errors.New("stats: insufficient positive autocorrelation prefix")
	}
	// Least squares through the origin: log acf = -lambda * lag.
	num, den := 0.0, 0.0
	for i := range lags {
		num += lags[i] * logs[i]
		den += lags[i] * lags[i]
	}
	lambda = -num / den
	// RMS residual in log space.
	ss := 0.0
	for i := range lags {
		r := logs[i] + lambda*lags[i]
		ss += r * r
	}
	residual = math.Sqrt(ss / float64(len(lags)))
	return lambda, residual, nil
}

// LinearFit fits y = a*x + b by ordinary least squares and returns the slope
// a, intercept b and coefficient of determination r2. The paper's Eq. 3
// (y = 0.067*t + 20.6) is obtained this way from the ROI sweep.
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: length mismatch")
	}
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: degenerate x values")
	}
	a = sxy / sxx
	b = my - a*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return a, b, r2, nil
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series — used to report how tightly predictions track actuals beyond the
// MAPE headline.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: constant series has no correlation")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Histogram bins xs into nbins equal-width bins spanning [min, max] and
// returns the counts and the bin edges (nbins+1 values). Values exactly at
// max land in the last bin. NaN and Inf samples are skipped — a single
// non-finite sample would otherwise poison the [min, max] span and with it
// every bin edge.
func Histogram(xs []float64, nbins int) (counts []int, edges []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	if nbins < 1 {
		return nil, nil, errors.New("stats: nbins must be >= 1")
	}
	xs = finiteOnly(xs)
	if len(xs) == 0 {
		return nil, nil, errors.New("stats: no finite samples")
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1 // all mass in one bin; widen to avoid zero width
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return counts, edges, nil
}

// Jitter summarizes the latency variability of a series the way the paper's
// Section 7 does: the relative gap between worst case and average case,
// expressed as a fraction ((max-mean)/mean), plus the peak-to-peak range.
type Jitter struct {
	Mean         float64 // average latency
	Min, Max     float64 // extrema
	PeakToPeak   float64 // Max - Min
	WorstVsAvg   float64 // (Max - Mean) / Mean; paper: 85% straightforward vs 20% semi-auto
	StdDev       float64 // standard deviation of the series
	CoefficientV float64 // StdDev / Mean
}

// JitterOf computes the Jitter summary of xs.
func JitterOf(xs []float64) (Jitter, error) {
	if len(xs) == 0 {
		return Jitter{}, ErrEmpty
	}
	j := Jitter{
		Mean:   Mean(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
	}
	j.PeakToPeak = j.Max - j.Min
	if j.Mean != 0 {
		j.WorstVsAvg = (j.Max - j.Mean) / j.Mean
		j.CoefficientV = j.StdDev / j.Mean
	}
	return j, nil
}

// MeanAbsPercentError returns the mean absolute percentage error between
// predicted and actual series, as a fraction (0.03 == 3%). The paper's "97%
// average prediction accuracy" corresponds to 1 - MAPE = 0.97. Zero actual
// values are skipped to keep the metric defined.
func MeanAbsPercentError(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	sum, n := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, errors.New("stats: all actual values zero")
	}
	return sum / float64(n), nil
}

// MaxAbsPercentError returns the largest single-sample absolute percentage
// error (the paper's "sporadic excursions of the prediction error up to
// 20-30%").
func MaxAbsPercentError(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, errors.New("stats: length mismatch")
	}
	worst := 0.0
	seen := false
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		e := math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i])
		if e > worst {
			worst = e
		}
		seen = true
	}
	if !seen {
		return 0, ErrEmpty
	}
	return worst, nil
}

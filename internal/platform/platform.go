// Package platform models the paper's evaluation hardware (Fig. 4): a
// dual quad-core general-purpose multiprocessor — 8 CPUs of 2.327 GCycles/s,
// 8 level-1 caches of 32 KB, 4 level-2 caches of 4 MB shared per core pair,
// 4 GB of external memory, and the bus bandwidths the figure annotates.
//
// The paper profiles wall-clock time on real hardware; this reproduction
// replaces profiling with a deterministic machine model (see DESIGN.md §2):
// each task reports the work it actually performed as abstract cycles plus
// external-memory traffic, and the machine converts that into milliseconds,
// including bandwidth contention between cores. All experiments therefore
// reproduce bit-identically on any host.
package platform

import (
	"errors"
	"fmt"
	"strings"

	"triplec/internal/cache"
)

// Arch describes the platform's static resources.
type Arch struct {
	NumCPUs     int     // processing cores
	CPUHz       float64 // cycles per second per core
	L1          cache.Config
	L2          cache.Config
	L2SharedBy  int     // cores sharing one L2 (Fig. 4: two)
	DRAMBytes   int64   // external memory capacity
	L1BWGBs     float64 // CPU <-> L1 bandwidth, GB/s (Fig. 4: 72)
	L2BWGBs     float64 // L2 <-> bus bandwidth, GB/s (Fig. 4: 48)
	MemBWGBs    float64 // bus <-> external memory, GB/s (Fig. 4: 29)
	IOBWMinGBs  float64 // I/O hub min bandwidth (Fig. 4: 0.94)
	IOBWMaxGBs  float64 // I/O hub max bandwidth (Fig. 4: 3.83)
	SwitchCost  float64 // task-switch and control overhead per task start, cycles
	Description string
}

// Blackford returns the instantiated architecture of the paper's Fig. 4(b):
// the Intel 5000-series ("Blackford") dual quad-core platform.
func Blackford() Arch {
	return Arch{
		NumCPUs:     8,
		CPUHz:       2.327e9,
		L1:          cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8},
		L2:          cache.Config{SizeBytes: 4 << 20, LineBytes: 64, Assoc: 16},
		L2SharedBy:  2,
		DRAMBytes:   4 << 30,
		L1BWGBs:     72,
		L2BWGBs:     48,
		MemBWGBs:    29,
		IOBWMinGBs:  0.94,
		IOBWMaxGBs:  3.83,
		SwitchCost:  20000, // ~8.6 us of control overhead per task activation
		Description: "Intel 5000 (Blackford) dual quad-core, 8x2.327 GCycles/s",
	}
}

// Validate checks the architecture for structural consistency.
func (a Arch) Validate() error {
	if a.NumCPUs <= 0 {
		return errors.New("platform: need at least one CPU")
	}
	if a.CPUHz <= 0 {
		return errors.New("platform: CPU frequency must be positive")
	}
	if a.L2SharedBy <= 0 || a.NumCPUs%a.L2SharedBy != 0 {
		return errors.New("platform: cores must divide evenly over L2 caches")
	}
	if a.MemBWGBs <= 0 || a.L2BWGBs <= 0 || a.L1BWGBs <= 0 {
		return errors.New("platform: bandwidths must be positive")
	}
	if err := a.L1.Validate(); err != nil {
		return fmt.Errorf("platform: L1: %w", err)
	}
	if err := a.L2.Validate(); err != nil {
		return fmt.Errorf("platform: L2: %w", err)
	}
	return nil
}

// L2Count returns the number of level-2 caches.
func (a Arch) L2Count() int { return a.NumCPUs / a.L2SharedBy }

// Cost is the resource demand of one task execution, the machine model's
// currency: pure compute plus external-memory traffic.
type Cost struct {
	Cycles   float64 // compute work in CPU cycles
	MemBytes float64 // traffic between cache hierarchy and external memory
}

// Add returns the sum of two costs.
func (c Cost) Add(d Cost) Cost {
	return Cost{Cycles: c.Cycles + d.Cycles, MemBytes: c.MemBytes + d.MemBytes}
}

// Scale returns the cost multiplied by f (used when striping a task over
// multiple cores: each stripe carries a fraction of the work).
func (c Cost) Scale(f float64) Cost {
	return Cost{Cycles: c.Cycles * f, MemBytes: c.MemBytes * f}
}

// Machine converts Costs into execution times on an Arch.
type Machine struct {
	arch Arch
}

// NewMachine validates arch and returns a machine model.
func NewMachine(arch Arch) (*Machine, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	return &Machine{arch: arch}, nil
}

// Arch returns the machine's architecture.
func (m *Machine) Arch() Arch { return m.arch }

// ExecMs returns the time in milliseconds to execute a task of the given
// cost on a single core while `contending` cores in total are generating
// memory traffic (contending >= 1). Compute and memory transfer overlap is
// pessimistically ignored: the times add, which matches the paper's
// observation that cache overflow directly inflates task time.
func (m *Machine) ExecMs(c Cost, contending int) float64 {
	if contending < 1 {
		contending = 1
	}
	if contending > m.arch.NumCPUs {
		contending = m.arch.NumCPUs
	}
	computeS := (c.Cycles + m.arch.SwitchCost) / m.arch.CPUHz
	// Each contending core receives an equal share of the external-memory
	// bandwidth, and a single core can never exceed the L2 port bandwidth.
	perCoreBW := m.arch.MemBWGBs / float64(contending)
	if perCoreBW > m.arch.L2BWGBs {
		perCoreBW = m.arch.L2BWGBs
	}
	memS := c.MemBytes / (perCoreBW * 1e9)
	return (computeS + memS) * 1e3
}

// StripedMs returns the time to execute cost c split evenly over k cores
// (data-parallel striping), including a per-stripe fork/join overhead and
// bandwidth contention between the stripes. A stripe carries 1/k of the
// compute but the stripes' memory traffic contends.
func (m *Machine) StripedMs(c Cost, k int) float64 {
	if k < 1 {
		k = 1
	}
	if k > m.arch.NumCPUs {
		k = m.arch.NumCPUs
	}
	stripe := c.Scale(1 / float64(k))
	return m.ExecMs(stripe, k)
}

// MsToCycles converts milliseconds to cycles at the machine's clock.
func (m *Machine) MsToCycles(ms float64) float64 { return ms / 1e3 * m.arch.CPUHz }

// CyclesToMs converts cycles to milliseconds at the machine's clock.
func (m *Machine) CyclesToMs(cycles float64) float64 { return cycles / m.arch.CPUHz * 1e3 }

// Describe renders the architecture the way Fig. 4(b) annotates it.
func (a Arch) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", a.Description)
	fmt.Fprintf(&b, "  CPUs      : %d x %.0f MCycles/s\n", a.NumCPUs, a.CPUHz/1e6)
	fmt.Fprintf(&b, "  L1 caches : %d x %d KB (%d-way, %d B lines)\n",
		a.NumCPUs, a.L1.SizeBytes>>10, a.L1.Assoc, a.L1.LineBytes)
	fmt.Fprintf(&b, "  L2 caches : %d x %d MB shared by %d cores (%d-way)\n",
		a.L2Count(), a.L2.SizeBytes>>20, a.L2SharedBy, a.L2.Assoc)
	fmt.Fprintf(&b, "  Memory    : %d GB external\n", a.DRAMBytes>>30)
	fmt.Fprintf(&b, "  Bandwidth : CPU-cache %.0f GB/s, cache-bus %.0f GB/s, bus-memory %.0f GB/s, I/O %.2f-%.2f GB/s\n",
		a.L1BWGBs, a.L2BWGBs, a.MemBWGBs, a.IOBWMinGBs, a.IOBWMaxGBs)
	return b.String()
}

package platform

import (
	"math"
	"strings"
	"testing"

	"triplec/internal/cache"
)

func TestBlackfordMatchesFig4(t *testing.T) {
	a := Blackford()
	if a.NumCPUs != 8 {
		t.Fatalf("NumCPUs = %d, want 8", a.NumCPUs)
	}
	if a.CPUHz != 2.327e9 {
		t.Fatalf("CPUHz = %v, want 2.327e9", a.CPUHz)
	}
	if a.L1.SizeBytes != 32<<10 {
		t.Fatalf("L1 = %d, want 32 KB", a.L1.SizeBytes)
	}
	if a.L2.SizeBytes != 4<<20 {
		t.Fatalf("L2 = %d, want 4 MB", a.L2.SizeBytes)
	}
	if a.L2Count() != 4 {
		t.Fatalf("L2Count = %d, want 4", a.L2Count())
	}
	if a.DRAMBytes != 4<<30 {
		t.Fatalf("DRAM = %d, want 4 GB", a.DRAMBytes)
	}
	if a.L1BWGBs != 72 || a.L2BWGBs != 48 || a.MemBWGBs != 29 {
		t.Fatalf("bandwidths = %v/%v/%v, want 72/48/29", a.L1BWGBs, a.L2BWGBs, a.MemBWGBs)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Blackford must validate: %v", err)
	}
}

func TestValidateRejectsBadArch(t *testing.T) {
	base := Blackford()

	a := base
	a.NumCPUs = 0
	if a.Validate() == nil {
		t.Fatal("zero CPUs accepted")
	}

	a = base
	a.CPUHz = 0
	if a.Validate() == nil {
		t.Fatal("zero frequency accepted")
	}

	a = base
	a.L2SharedBy = 3 // 8 % 3 != 0
	if a.Validate() == nil {
		t.Fatal("uneven L2 sharing accepted")
	}

	a = base
	a.MemBWGBs = 0
	if a.Validate() == nil {
		t.Fatal("zero memory bandwidth accepted")
	}

	a = base
	a.L1 = cache.Config{SizeBytes: 100, LineBytes: 64}
	if a.Validate() == nil {
		t.Fatal("invalid L1 accepted")
	}

	a = base
	a.L2 = cache.Config{SizeBytes: 100, LineBytes: 64}
	if a.Validate() == nil {
		t.Fatal("invalid L2 accepted")
	}
}

func TestNewMachineValidates(t *testing.T) {
	bad := Blackford()
	bad.NumCPUs = -1
	if _, err := NewMachine(bad); err == nil {
		t.Fatal("NewMachine accepted invalid arch")
	}
	if _, err := NewMachine(Blackford()); err != nil {
		t.Fatal(err)
	}
}

func TestCostAddScale(t *testing.T) {
	c := Cost{Cycles: 100, MemBytes: 10}
	d := c.Add(Cost{Cycles: 50, MemBytes: 5})
	if d.Cycles != 150 || d.MemBytes != 15 {
		t.Fatalf("Add = %+v", d)
	}
	h := c.Scale(0.5)
	if h.Cycles != 50 || h.MemBytes != 5 {
		t.Fatalf("Scale = %+v", h)
	}
}

func TestExecMsComputeOnly(t *testing.T) {
	m, _ := NewMachine(Blackford())
	arch := m.Arch()
	// 2.327e6 cycles ~= 1 ms of pure compute (plus switch overhead).
	got := m.ExecMs(Cost{Cycles: 2.327e6}, 1)
	want := (2.327e6 + arch.SwitchCost) / arch.CPUHz * 1e3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExecMs = %v, want %v", got, want)
	}
}

func TestExecMsMemoryStall(t *testing.T) {
	m, _ := NewMachine(Blackford())
	// 29 GB at 29 GB/s (single core) = 1 s = 1000 ms of memory time.
	got := m.ExecMs(Cost{MemBytes: 29e9}, 1)
	overhead := m.CyclesToMs(m.Arch().SwitchCost)
	if math.Abs(got-overhead-1000) > 1e-6 {
		t.Fatalf("ExecMs = %v, want ~1000+overhead", got)
	}
}

func TestExecMsContentionSlowsMemory(t *testing.T) {
	m, _ := NewMachine(Blackford())
	c := Cost{MemBytes: 1e9}
	alone := m.ExecMs(c, 1)
	shared := m.ExecMs(c, 4)
	if shared <= alone {
		t.Fatal("contention must increase memory time")
	}
	// With 4 contenders the bandwidth share is 1/4 -> memory part 4x.
	overhead := m.CyclesToMs(m.Arch().SwitchCost)
	ratio := (shared - overhead) / (alone - overhead)
	if math.Abs(ratio-4) > 1e-6 {
		t.Fatalf("contention ratio = %v, want 4", ratio)
	}
}

func TestExecMsContentionClamped(t *testing.T) {
	m, _ := NewMachine(Blackford())
	c := Cost{Cycles: 1e6, MemBytes: 1e6}
	if m.ExecMs(c, 0) != m.ExecMs(c, 1) {
		t.Fatal("contending < 1 must clamp to 1")
	}
	if m.ExecMs(c, 100) != m.ExecMs(c, 8) {
		t.Fatal("contending > NumCPUs must clamp")
	}
}

func TestExecMsL2PortLimit(t *testing.T) {
	a := Blackford()
	a.MemBWGBs = 1000 // memory faster than the L2 port
	m, _ := NewMachine(a)
	got := m.ExecMs(Cost{MemBytes: 48e9}, 1)
	overhead := m.CyclesToMs(a.SwitchCost)
	// Limited by the 48 GB/s L2 port -> 1000 ms.
	if math.Abs(got-overhead-1000) > 1e-6 {
		t.Fatalf("L2 port limit not applied: %v", got)
	}
}

func TestStripedMsSpeedsUpCompute(t *testing.T) {
	m, _ := NewMachine(Blackford())
	c := Cost{Cycles: 1e8} // pure compute
	serial := m.StripedMs(c, 1)
	dual := m.StripedMs(c, 2)
	if dual >= serial {
		t.Fatal("2-stripe must be faster for compute-bound work")
	}
	// Near-ideal speedup for pure compute (only switch overhead differs).
	if dual > serial*0.55 {
		t.Fatalf("2-stripe speedup too small: %v vs %v", dual, serial)
	}
}

func TestStripedMsMemoryBoundDoesNotScale(t *testing.T) {
	m, _ := NewMachine(Blackford())
	c := Cost{MemBytes: 5e9} // pure memory traffic
	serial := m.StripedMs(c, 1)
	quad := m.StripedMs(c, 4)
	overhead := m.CyclesToMs(m.Arch().SwitchCost)
	// Each stripe moves 1/4 of the bytes at 1/4 bandwidth: same time.
	if math.Abs((quad-overhead)-(serial-overhead)) > 1e-6 {
		t.Fatalf("memory-bound striping changed time: %v vs %v", quad, serial)
	}
}

func TestStripedMsClamps(t *testing.T) {
	m, _ := NewMachine(Blackford())
	c := Cost{Cycles: 1e7}
	if m.StripedMs(c, 0) != m.StripedMs(c, 1) {
		t.Fatal("k < 1 must clamp to 1")
	}
	if m.StripedMs(c, 999) != m.StripedMs(c, 8) {
		t.Fatal("k > NumCPUs must clamp")
	}
}

func TestCycleConversionRoundTrip(t *testing.T) {
	m, _ := NewMachine(Blackford())
	ms := 12.5
	if got := m.CyclesToMs(m.MsToCycles(ms)); math.Abs(got-ms) > 1e-9 {
		t.Fatalf("round trip = %v, want %v", got, ms)
	}
}

func TestDescribeMentionsKeyNumbers(t *testing.T) {
	d := Blackford().Describe()
	for _, want := range []string{"8 x 2327", "32 KB", "4 MB", "72", "48", "29", "0.94", "3.83"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe() missing %q:\n%s", want, d)
		}
	}
}

package platform

import (
	"testing"
	"testing/quick"
)

// Property: execution time is additive in compute cycles at fixed memory
// traffic and contention.
func TestPropertyExecAdditiveInCycles(t *testing.T) {
	m, err := NewMachine(Blackford())
	if err != nil {
		t.Fatal(err)
	}
	overhead := m.CyclesToMs(m.Arch().SwitchCost)
	f := func(aRaw, bRaw uint32) bool {
		a := float64(aRaw % 1e8)
		b := float64(bRaw % 1e8)
		ta := m.ExecMs(Cost{Cycles: a}, 1) - overhead
		tb := m.ExecMs(Cost{Cycles: b}, 1) - overhead
		tab := m.ExecMs(Cost{Cycles: a + b}, 1) - overhead
		return abs(tab-(ta+tb)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: striping never increases time for compute-only work, and never
// beats the ideal k-fold speedup by more than the fork/join bookkeeping.
func TestPropertyStripedBounded(t *testing.T) {
	m, err := NewMachine(Blackford())
	if err != nil {
		t.Fatal(err)
	}
	f := func(cyclesRaw uint32, kRaw uint8) bool {
		cycles := float64(cyclesRaw%1e9) + 1e7
		k := int(kRaw)%8 + 1
		serial := m.StripedMs(Cost{Cycles: cycles}, 1)
		striped := m.StripedMs(Cost{Cycles: cycles}, k)
		if striped > serial+1e-9 {
			return false
		}
		ideal := serial / float64(k)
		// The switch overhead is charged per stripe, so the striped time can
		// not fall below the ideal split minus nothing (it is bounded below
		// by ideal considering overhead stays constant in ExecMs).
		return striped >= ideal-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: more contenders never speed up memory-bound work.
func TestPropertyContentionMonotone(t *testing.T) {
	m, err := NewMachine(Blackford())
	if err != nil {
		t.Fatal(err)
	}
	f := func(memRaw uint32, kRaw uint8) bool {
		mem := float64(memRaw%1e9) + 1e6
		k := int(kRaw)%8 + 1
		base := m.ExecMs(Cost{MemBytes: mem}, k)
		more := m.ExecMs(Cost{MemBytes: mem}, k+1)
		return more >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

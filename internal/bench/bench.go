// Package bench is the machine-readable performance trajectory: it runs a
// fixed set of multi-stream workload scenarios through the serial path and
// the committed parallel path under *two mapping policies* — the greedy
// proportional baseline and the bi-criteria Pareto optimizer
// (internal/mapping) — and emits one BENCH_<pr>.json point per PR, so
// speedups are tracked — and regressions caught — across the repository's
// history.
//
// Each scenario models N concurrent streams sharing the paper's 8-core
// Blackford machine. The modeled cores are divided from a short serial
// profiling prefix (the Triple-C methodology: measure first, then commit
// resources) by the mapper under test: the greedy baseline splits
// proportionally (sched.SplitCores) and pipelines a stream whenever its
// share allows two partitions, with an even front/back split; the optimizer
// scores serial / striped / every pipelined front-back partition per share
// against the scenario-conditioned cost profile, keeps the Pareto front
// over (latency, period), and picks with pressure-adaptive weights.
//
// All times are the machine model's milliseconds, not host wall clock, so
// every number in the trajectory is bit-reproducible on any machine and in
// CI. Mapping changes schedules, never pixels: each mapper run's outputs
// are checksummed against the serial baseline's, and outputs_identical is
// part of the validated schema.
package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"triplec/internal/frame"
	"triplec/internal/mapping"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/sched"
	"triplec/internal/speedup"
	"triplec/internal/stats"
	"triplec/internal/synth"
)

// Schema identifies the trajectory file format. v2 nests per-mapper runs
// (greedy vs optimizer) inside each scenario.
const Schema = "triplec-bench/v2"

// PR is the trajectory point this tree emits (BENCH_<PR>.json).
const PR = 7

// profileFrames is the serial profiling prefix length used to derive the
// per-stream demand signal the mapper divides the modeled machine by.
const profileFrames = 12

// Mapper-mode selectors for Options.Mapper / Trajectory.MapperMode.
const (
	MapperBoth      = "both"
	MapperGreedy    = "greedy"
	MapperOptimizer = "optimizer"
)

// Scenario is one benchmark workload: N streams of a given geometry and
// image difficulty served concurrently on the modeled machine.
type Scenario struct {
	Name          string
	Streams       int
	Width, Height int
	Spacing       float64
	NoiseSigma    float64
	ClutterRate   float64
	// Mixed varies noise and clutter per stream index, so the demands — and
	// therefore the core split — are deliberately unequal.
	Mixed bool
	// Frames per stream in full mode; Options.Short cuts it to a third
	// (floor 16).
	Frames int
}

// Scenarios returns the fixed 8-scenario workload matrix: 1/2/4/8 streams,
// 128 and 192 px geometries, clean, noisy and mixed difficulty.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "1x128-clean", Streams: 1, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 120, ClutterRate: 1, Frames: 96},
		{Name: "1x192-clean", Streams: 1, Width: 192, Height: 192, Spacing: 54, NoiseSigma: 120, ClutterRate: 1, Frames: 64},
		{Name: "2x128-mixed", Streams: 2, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 150, ClutterRate: 2, Mixed: true, Frames: 72},
		{Name: "2x192-noisy", Streams: 2, Width: 192, Height: 192, Spacing: 54, NoiseSigma: 250, ClutterRate: 3, Frames: 48},
		{Name: "4x128-clean", Streams: 4, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 120, ClutterRate: 1, Frames: 48},
		{Name: "4x128-noisy", Streams: 4, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 250, ClutterRate: 3, Frames: 48},
		{Name: "8x128-clean", Streams: 8, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 120, ClutterRate: 1, Frames: 32},
		{Name: "8x128-mixed", Streams: 8, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 150, ClutterRate: 2, Mixed: true, Frames: 32},
	}
}

// MapperRun is one mapping policy's committed-path measurement within a
// scenario. All milliseconds and fps are modeled (machine-model time),
// rounded to 4 decimals.
type MapperRun struct {
	Mapper           string  `json:"mapper"`
	CoreBudgets      []int   `json:"core_budgets"`
	PipelinedStreams int     `json:"pipelined_streams"`
	StripedStreams   int     `json:"striped_streams"`
	FPS              float64 `json:"fps"`
	ThroughputGain   float64 `json:"throughput_gain"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	SpeedupMeasured  float64 `json:"speedup_measured"`
	SpeedupPredicted float64 `json:"speedup_predicted"`
	RelErr           float64 `json:"rel_err"`
	MemBoundFrac     float64 `json:"mem_bound_frac"`
	// ParetoPoints is the optimizer's total Pareto-front size across
	// streams at their chosen shares (0 for the greedy baseline, and 0 when
	// the optimizer fell back to the greedy division).
	ParetoPoints int `json:"pareto_points"`
	// OutputsIdentical records the bit-identity check: every output frame
	// of this run hashed equal to the serial baseline's.
	OutputsIdentical bool `json:"outputs_identical"`
}

// ScenarioResult is one scenario's trajectory point: the serial baseline
// plus one committed run per mapping policy.
type ScenarioResult struct {
	Name            string `json:"name"`
	Streams         int    `json:"streams"`
	FramesPerStream int    `json:"frames_per_stream"`
	// FPSSerial is the serial baseline throughput (slowest stream's serial
	// makespan).
	FPSSerial float64 `json:"fps_serial"`
	// Greedy and Optimizer are the per-policy committed runs; in a
	// single-mapper trajectory (MapperMode != "both") the absent run is
	// zero-valued.
	Greedy    MapperRun `json:"greedy"`
	Optimizer MapperRun `json:"optimizer"`
	// OptOverGreedy is Optimizer.FPS / Greedy.FPS (0 unless both ran): the
	// side-by-side headline — above 1, the Pareto mappings beat the
	// proportional split on this scenario.
	OptOverGreedy float64 `json:"opt_over_greedy"`
}

// Runs returns the scenario's present mapper runs.
func (r *ScenarioResult) Runs() []*MapperRun {
	out := make([]*MapperRun, 0, 2)
	if r.Greedy.Mapper != "" {
		out = append(out, &r.Greedy)
	}
	if r.Optimizer.Mapper != "" {
		out = append(out, &r.Optimizer)
	}
	return out
}

// Summary aggregates the acceptance-relevant headlines.
type Summary struct {
	// BestMultiStreamGain is the largest throughput_gain over scenarios
	// with more than one stream (optimizer run when present, else greedy).
	BestMultiStreamGain float64 `json:"best_multi_stream_gain"`
	// ScenariosWithinQuarter counts scenarios whose predicted speedup lies
	// within 25% of measured (optimizer run when present, else greedy).
	ScenariosWithinQuarter int `json:"scenarios_within_quarter"`
	// MinPipelinedSpeedup is the smallest measured pipelining speedup over
	// runs that actually pipelined (1 when none did).
	MinPipelinedSpeedup float64 `json:"min_pipelined_speedup"`
	// AggFPSGreedy / AggFPSOptimizer sum each policy's fps across
	// scenarios — the aggregate multi-stream throughput the CI gate
	// compares (0 when the policy did not run).
	AggFPSGreedy    float64 `json:"agg_fps_greedy"`
	AggFPSOptimizer float64 `json:"agg_fps_optimizer"`
	// AggOptOverGreedy is AggFPSOptimizer / AggFPSGreedy (0 unless both
	// ran); BestOptOverGreedy is the largest per-scenario ratio.
	AggOptOverGreedy  float64 `json:"agg_opt_over_greedy"`
	BestOptOverGreedy float64 `json:"best_opt_over_greedy"`
}

// Trajectory is the full BENCH_<pr>.json document.
type Trajectory struct {
	Schema     string           `json:"schema"`
	PR         int              `json:"pr"`
	Arch       string           `json:"arch"`
	ModelCores int              `json:"model_cores"`
	Short      bool             `json:"short"`
	MapperMode string           `json:"mapper_mode"`
	Scenarios  []ScenarioResult `json:"scenarios"`
	Summary    Summary          `json:"summary"`
}

// Options tunes a trajectory run.
type Options struct {
	// Short cuts every scenario's frame count to a third (floor 16) for CI.
	Short bool
	// Mapper selects which policies run: "both" (default), "greedy" or
	// "optimizer".
	Mapper string
	// Log, when set, receives one progress line per scenario.
	Log io.Writer
}

// Run executes the full scenario matrix and assembles the trajectory.
func Run(opts Options) (Trajectory, error) {
	mode := opts.Mapper
	if mode == "" {
		mode = MapperBoth
	}
	if mode != MapperBoth && mode != MapperGreedy && mode != MapperOptimizer {
		return Trajectory{}, fmt.Errorf("bench: unknown mapper %q (want %s, %s or %s)",
			mode, MapperBoth, MapperGreedy, MapperOptimizer)
	}
	scens := Scenarios()
	results := make([]ScenarioResult, 0, len(scens))
	for i, sc := range scens {
		frames := sc.Frames
		if opts.Short {
			frames = sc.Frames / 3
			if frames < 16 {
				frames = 16
			}
		}
		res, err := runScenario(sc, uint64(1+8009*i), frames, mode)
		if err != nil {
			return Trajectory{}, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		if opts.Log != nil {
			line := fmt.Sprintf("%-12s streams=%d", res.Name, res.Streams)
			for _, run := range res.Runs() {
				line += fmt.Sprintf("  %s: budgets=%v gain=%.2fx", run.Mapper, run.CoreBudgets, run.ThroughputGain)
			}
			if res.OptOverGreedy > 0 {
				line += fmt.Sprintf("  opt/greedy=%.3f", res.OptOverGreedy)
			}
			fmt.Fprintln(opts.Log, line)
		}
		results = append(results, res)
	}
	return assemble(results, opts.Short, mode), nil
}

// streamConfig derives stream s's synthetic-sequence configuration; Mixed
// scenarios skew noise and clutter per stream so demands differ.
func streamConfig(sc Scenario, s int, seed uint64) synth.Config {
	cfg := synth.DefaultConfig(seed)
	cfg.Width, cfg.Height = sc.Width, sc.Height
	cfg.MarkerSpacing = sc.Spacing
	cfg.NoiseSigma = sc.NoiseSigma
	cfg.QuantumGain = 0
	cfg.ClutterRate = sc.ClutterRate
	cfg.DropoutEvery = 23
	if sc.Mixed {
		cfg.NoiseSigma += 60 * float64(s%3)
		cfg.ClutterRate += float64(s % 2)
	}
	return cfg
}

func newEngine(sc Scenario) (*pipeline.Engine, error) {
	return pipeline.New(pipeline.Config{
		Width: sc.Width, Height: sc.Height,
		MarkerSpacing: sc.Spacing,
		Arch:          platform.Blackford(),
	})
}

// outputDigest accumulates an order-sensitive FNV-1a digest of committed
// output frames — the bit-identity witness comparing a mapper run against
// the serial baseline.
type outputDigest struct{ h uint64 }

func newOutputDigest() *outputDigest { return &outputDigest{h: 14695981039346656037} }

func (d *outputDigest) mix(v uint64) {
	d.h ^= v
	d.h *= 1099511628211
}

func (d *outputDigest) observe(r pipeline.Report) {
	d.mix(uint64(r.Index))
	if r.Output == nil {
		d.mix(0xdead)
		return
	}
	w, h := r.Output.Width(), r.Output.Height()
	d.mix(uint64(w))
	d.mix(uint64(h))
	for y := 0; y < h; y++ {
		for _, px := range r.Output.Row(y) {
			d.mix(uint64(px))
		}
	}
}

// streamRun is one stream's measured committed path under a mapper's plan.
type streamRun struct {
	reports   []pipeline.Report
	servedMs  float64 // pooled stage time of the served reports
	effMs     float64 // effective makespan (pipelined overlap or serial sum)
	predEffMs float64 // makespan the analytical estimator predicts
	memBound  float64 // estimator's memory-bound weight (pipelined only)
	pipelined bool
	digest    uint64
}

// runStream executes one stream under a plan and measures it. Serial plans
// reuse baseline, the caller's pre-measured serial run, instead of
// re-executing.
func runStream(sc Scenario, src func(int) *frame.Frame, frames int, plan sched.StreamPlan, baseline streamRun) (streamRun, error) {
	arch := platform.Blackford()
	if !plan.Pipelined && (!plan.Striped || plan.Cores < 2) {
		return baseline, nil
	}
	eng, err := newEngine(sc)
	if err != nil {
		return streamRun{}, err
	}
	dig := newOutputDigest()
	eng.SetObserver(dig.observe)
	m := plan.Mapping(arch.NumCPUs)
	run := streamRun{}
	if plan.Pipelined {
		reps, err := eng.RunSequencePipelined(frames, src, m)
		if err != nil {
			return streamRun{}, err
		}
		tl := speedup.MeasureTimeline(reps)
		est, err := speedup.Predict(reps, arch)
		if err != nil {
			return streamRun{}, err
		}
		run = streamRun{
			reports: reps, servedMs: tl.SerialMs, effMs: tl.MakespanMs,
			predEffMs: tl.SerialMs / est.Speedup,
			memBound:  est.MemBoundFrac, pipelined: true,
		}
	} else {
		reps, err := eng.RunSequence(frames, src, m)
		if err != nil {
			return streamRun{}, err
		}
		tl := speedup.MeasureTimeline(reps)
		run = streamRun{reports: reps, servedMs: tl.SerialMs, effMs: tl.SerialMs, predEffMs: tl.SerialMs}
	}
	run.digest = dig.h
	return run, nil
}

// measureMapper runs every stream under the mapper's plans and aggregates
// the policy's trajectory numbers against the serial baseline.
func measureMapper(sc Scenario, name string, plans []sched.StreamPlan, paretoPoints int,
	sources []func(int) *frame.Frame, frames int, baselines []streamRun, wallSerial float64) (MapperRun, error) {
	run := MapperRun{Mapper: name, ParetoPoints: paretoPoints, OutputsIdentical: true}
	run.CoreBudgets = make([]int, len(plans))
	var (
		wallEff                    float64
		sumServed, sumEff, sumPred float64
		memBoundWeight             float64
		latencies                  []float64
	)
	for s, plan := range plans {
		run.CoreBudgets[s] = plan.Cores
		sr, err := runStream(sc, sources[s], frames, plan, baselines[s])
		if err != nil {
			return MapperRun{}, err
		}
		if sr.pipelined {
			run.PipelinedStreams++
			memBoundWeight += sr.memBound * float64(frames)
		} else if plan.Striped && plan.Cores >= 2 {
			run.StripedStreams++
		}
		if sr.digest != baselines[s].digest {
			run.OutputsIdentical = false
		}
		if sr.effMs > wallEff {
			wallEff = sr.effMs
		}
		sumServed += sr.servedMs
		sumEff += sr.effMs
		sumPred += sr.predEffMs
		for _, r := range sr.reports {
			latencies = append(latencies, r.LatencyMs)
		}
	}
	total := float64(frames * len(plans))
	run.FPS = round4(total * 1e3 / wallEff)
	run.ThroughputGain = round4(wallSerial / wallEff)
	run.SpeedupMeasured = round4(sumServed / sumEff)
	run.SpeedupPredicted = round4(sumServed / sumPred)
	run.RelErr = round4(math.Abs(run.SpeedupPredicted-run.SpeedupMeasured) / run.SpeedupMeasured)
	run.MemBoundFrac = round4(memBoundWeight / total)
	p50, err := stats.Percentile(latencies, 50)
	if err != nil {
		return MapperRun{}, err
	}
	p99, err := stats.Percentile(latencies, 99)
	if err != nil {
		return MapperRun{}, err
	}
	run.P50Ms, run.P99Ms = round4(p50), round4(p99)
	return run, nil
}

// runScenario executes one scenario: profile every stream serially, let
// each requested mapper divide the machine, then serve every stream through
// the serial baseline and the mapper's committed path.
func runScenario(sc Scenario, seedBase uint64, frames int, mode string) (ScenarioResult, error) {
	arch := platform.Blackford()
	sources := make([]func(int) *frame.Frame, sc.Streams)
	demands := make([]sched.StreamDemand, sc.Streams)
	frameKB := sc.Width * sc.Height * frame.BytesPerPixel / 1024
	for s := 0; s < sc.Streams; s++ {
		seq, err := synth.New(streamConfig(sc, s, seedBase+131*uint64(s)))
		if err != nil {
			return ScenarioResult{}, err
		}
		src := func(i int) *frame.Frame {
			f, _ := seq.Frame(i)
			return f
		}
		sources[s] = src

		// Profiling prefix: a short serial run whose mean modeled latency
		// and scenario-conditioned cost profile are the demand signal the
		// mapper divides the machine by.
		eng, err := newEngine(sc)
		if err != nil {
			return ScenarioResult{}, err
		}
		n := profileFrames
		if n > frames {
			n = frames
		}
		reps, err := eng.RunSequence(n, src, nil)
		if err != nil {
			return ScenarioResult{}, err
		}
		demands[s] = sched.DemandFromReports(reps, 0)
		demands[s].FrameKB = frameKB
	}

	res := ScenarioResult{Name: sc.Name, Streams: sc.Streams, FramesPerStream: frames}

	// Serial baseline: full run per stream, digesting outputs for the
	// bit-identity comparison.
	baselines := make([]streamRun, sc.Streams)
	wallSerial := 0.0
	for s := 0; s < sc.Streams; s++ {
		eng, err := newEngine(sc)
		if err != nil {
			return ScenarioResult{}, err
		}
		dig := newOutputDigest()
		eng.SetObserver(dig.observe)
		reps, err := eng.RunSequence(frames, sources[s], nil)
		if err != nil {
			return ScenarioResult{}, err
		}
		serialMs := speedup.MeasureTimeline(reps).SerialMs
		baselines[s] = streamRun{
			reports: reps, servedMs: serialMs, effMs: serialMs, predEffMs: serialMs,
			digest: dig.h,
		}
		if serialMs > wallSerial {
			wallSerial = serialMs
		}
	}
	total := float64(frames * sc.Streams)
	res.FPSSerial = round4(total * 1e3 / wallSerial)

	plans := make([]sched.StreamPlan, sc.Streams)
	if mode == MapperBoth || mode == MapperGreedy {
		g := &sched.GreedyMapper{}
		if err := g.Map(arch.NumCPUs, demands, plans); err != nil {
			return ScenarioResult{}, err
		}
		run, err := measureMapper(sc, MapperGreedy, plans, 0, sources, frames, baselines, wallSerial)
		if err != nil {
			return ScenarioResult{}, err
		}
		res.Greedy = run
	}
	if mode == MapperBoth || mode == MapperOptimizer {
		opt, err := mapping.NewOptimizer(arch)
		if err != nil {
			return ScenarioResult{}, err
		}
		if err := opt.Map(arch.NumCPUs, demands, plans); err != nil {
			return ScenarioResult{}, err
		}
		run, err := measureMapper(sc, MapperOptimizer, plans, opt.LastParetoPoints, sources, frames, baselines, wallSerial)
		if err != nil {
			return ScenarioResult{}, err
		}
		res.Optimizer = run
	}
	if res.Greedy.FPS > 0 && res.Optimizer.FPS > 0 {
		res.OptOverGreedy = round4(res.Optimizer.FPS / res.Greedy.FPS)
	}
	return res, nil
}

// assemble builds the trajectory document around the scenario results.
func assemble(results []ScenarioResult, short bool, mode string) Trajectory {
	t := Trajectory{
		Schema: Schema, PR: PR,
		Arch:       "Blackford DP Xeon E5345 (8-core)",
		ModelCores: platform.Blackford().NumCPUs,
		Short:      short,
		MapperMode: mode,
		Scenarios:  results,
	}
	t.Summary = summarize(results)
	return t
}

// headline returns the run the scenario's headline numbers come from: the
// optimizer when present, else greedy.
func (r *ScenarioResult) headline() *MapperRun {
	if r.Optimizer.Mapper != "" {
		return &r.Optimizer
	}
	return &r.Greedy
}

func summarize(results []ScenarioResult) Summary {
	s := Summary{MinPipelinedSpeedup: 1}
	minSet := false
	for i := range results {
		r := &results[i]
		h := r.headline()
		if r.Streams > 1 && h.ThroughputGain > s.BestMultiStreamGain {
			s.BestMultiStreamGain = h.ThroughputGain
		}
		if h.RelErr <= 0.25 {
			s.ScenariosWithinQuarter++
		}
		for _, run := range r.Runs() {
			if run.PipelinedStreams > 0 && (!minSet || run.SpeedupMeasured < s.MinPipelinedSpeedup) {
				s.MinPipelinedSpeedup = run.SpeedupMeasured
				minSet = true
			}
		}
		s.AggFPSGreedy += r.Greedy.FPS
		s.AggFPSOptimizer += r.Optimizer.FPS
		if r.OptOverGreedy > s.BestOptOverGreedy {
			s.BestOptOverGreedy = r.OptOverGreedy
		}
	}
	s.AggFPSGreedy = round4(s.AggFPSGreedy)
	s.AggFPSOptimizer = round4(s.AggFPSOptimizer)
	if s.AggFPSGreedy > 0 && s.AggFPSOptimizer > 0 {
		s.AggOptOverGreedy = round4(s.AggFPSOptimizer / s.AggFPSGreedy)
	}
	return s
}

// validateRun checks one mapper run's internal consistency.
func validateRun(name string, streams, modelCores int, run *MapperRun) error {
	if run.Mapper == "" {
		return fmt.Errorf("bench: %s: mapper run missing", name)
	}
	if len(run.CoreBudgets) != streams {
		return fmt.Errorf("bench: %s/%s: %d budgets for %d streams", name, run.Mapper, len(run.CoreBudgets), streams)
	}
	sum := 0
	for _, b := range run.CoreBudgets {
		if b < 0 {
			return fmt.Errorf("bench: %s/%s: negative core budget %d", name, run.Mapper, b)
		}
		sum += b
	}
	if sum > modelCores {
		return fmt.Errorf("bench: %s/%s: budgets %v over-commit %d cores", name, run.Mapper, run.CoreBudgets, modelCores)
	}
	if run.PipelinedStreams < 0 || run.PipelinedStreams > streams {
		return fmt.Errorf("bench: %s/%s: pipelined_streams %d out of range", name, run.Mapper, run.PipelinedStreams)
	}
	if run.StripedStreams < 0 || run.StripedStreams+run.PipelinedStreams > streams {
		return fmt.Errorf("bench: %s/%s: striped_streams %d out of range", name, run.Mapper, run.StripedStreams)
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"fps", run.FPS}, {"throughput_gain", run.ThroughputGain},
		{"p50_ms", run.P50Ms}, {"p99_ms", run.P99Ms},
		{"speedup_measured", run.SpeedupMeasured}, {"speedup_predicted", run.SpeedupPredicted},
	} {
		if v.val <= 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("bench: %s/%s: %s = %v must be positive and finite", name, run.Mapper, v.name, v.val)
		}
	}
	if run.P50Ms > run.P99Ms {
		return fmt.Errorf("bench: %s/%s: p50 %v exceeds p99 %v", name, run.Mapper, run.P50Ms, run.P99Ms)
	}
	// The window-2 pipeline cannot measure beyond its two-stage bound.
	if run.SpeedupMeasured > 2.001 {
		return fmt.Errorf("bench: %s/%s: measured speedup %v exceeds the two-stage bound", name, run.Mapper, run.SpeedupMeasured)
	}
	if run.RelErr < 0 || math.IsNaN(run.RelErr) {
		return fmt.Errorf("bench: %s/%s: rel_err %v invalid", name, run.Mapper, run.RelErr)
	}
	want := math.Abs(run.SpeedupPredicted-run.SpeedupMeasured) / run.SpeedupMeasured
	if math.Abs(run.RelErr-want) > 5e-3 {
		return fmt.Errorf("bench: %s/%s: rel_err %v inconsistent with speedups (want %.4f)", name, run.Mapper, run.RelErr, want)
	}
	if run.MemBoundFrac < 0 || run.MemBoundFrac > 1 {
		return fmt.Errorf("bench: %s/%s: mem_bound_frac %v out of [0,1]", name, run.Mapper, run.MemBoundFrac)
	}
	if run.ParetoPoints < 0 {
		return fmt.Errorf("bench: %s/%s: pareto_points %d negative", name, run.Mapper, run.ParetoPoints)
	}
	if !run.OutputsIdentical {
		return fmt.Errorf("bench: %s/%s: outputs diverged from the serial baseline (mapping must change schedules, never pixels)", name, run.Mapper)
	}
	return nil
}

// Validate checks the trajectory's schema: field presence, internal
// consistency, and physically meaningful ranges. It is the machine-readable
// contract CI enforces on every emitted BENCH_*.json.
func (t Trajectory) Validate() error {
	if t.Schema != Schema {
		return fmt.Errorf("bench: schema %q, want %q", t.Schema, Schema)
	}
	if t.PR < 1 {
		return fmt.Errorf("bench: PR %d invalid", t.PR)
	}
	if t.Arch == "" {
		return errors.New("bench: empty arch")
	}
	if t.ModelCores < 1 {
		return fmt.Errorf("bench: model_cores %d invalid", t.ModelCores)
	}
	switch t.MapperMode {
	case MapperBoth, MapperGreedy, MapperOptimizer:
	default:
		return fmt.Errorf("bench: mapper_mode %q invalid", t.MapperMode)
	}
	if len(t.Scenarios) == 0 {
		return errors.New("bench: no scenarios")
	}
	seen := map[string]bool{}
	for i := range t.Scenarios {
		r := &t.Scenarios[i]
		if r.Name == "" || seen[r.Name] {
			return fmt.Errorf("bench: missing or duplicate scenario name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Streams < 1 || r.FramesPerStream < 1 {
			return fmt.Errorf("bench: %s: streams %d / frames %d invalid", r.Name, r.Streams, r.FramesPerStream)
		}
		if r.FPSSerial <= 0 || math.IsNaN(r.FPSSerial) || math.IsInf(r.FPSSerial, 0) {
			return fmt.Errorf("bench: %s: fps_serial = %v must be positive and finite", r.Name, r.FPSSerial)
		}
		wantGreedy := t.MapperMode == MapperBoth || t.MapperMode == MapperGreedy
		wantOpt := t.MapperMode == MapperBoth || t.MapperMode == MapperOptimizer
		if wantGreedy {
			if err := validateRun(r.Name, r.Streams, t.ModelCores, &r.Greedy); err != nil {
				return err
			}
		} else if r.Greedy.Mapper != "" {
			return fmt.Errorf("bench: %s: unexpected greedy run in %s mode", r.Name, t.MapperMode)
		}
		if wantOpt {
			if err := validateRun(r.Name, r.Streams, t.ModelCores, &r.Optimizer); err != nil {
				return err
			}
		} else if r.Optimizer.Mapper != "" {
			return fmt.Errorf("bench: %s: unexpected optimizer run in %s mode", r.Name, t.MapperMode)
		}
		if t.MapperMode == MapperBoth {
			want := round4(r.Optimizer.FPS / r.Greedy.FPS)
			if math.Abs(r.OptOverGreedy-want) > 5e-3 {
				return fmt.Errorf("bench: %s: opt_over_greedy %v inconsistent with fps ratio (want %.4f)", r.Name, r.OptOverGreedy, want)
			}
		}
	}
	want := summarize(t.Scenarios)
	if math.Abs(want.BestMultiStreamGain-t.Summary.BestMultiStreamGain) > 5e-3 ||
		want.ScenariosWithinQuarter != t.Summary.ScenariosWithinQuarter ||
		math.Abs(want.MinPipelinedSpeedup-t.Summary.MinPipelinedSpeedup) > 5e-3 ||
		math.Abs(want.AggFPSGreedy-t.Summary.AggFPSGreedy) > 5e-3 ||
		math.Abs(want.AggFPSOptimizer-t.Summary.AggFPSOptimizer) > 5e-3 ||
		math.Abs(want.AggOptOverGreedy-t.Summary.AggOptOverGreedy) > 5e-3 ||
		math.Abs(want.BestOptOverGreedy-t.Summary.BestOptOverGreedy) > 5e-3 {
		return fmt.Errorf("bench: summary %+v inconsistent with scenarios (want %+v)", t.Summary, want)
	}
	return nil
}

// Check enforces the regression gate: every mapper run that pipelined must
// have measured at least minSpeedup over serial. All violations are
// collected — the error names every scenario/mapper pair that missed the
// floor, not just the first.
func (t Trajectory) Check(minSpeedup float64) error {
	var errs []error
	for i := range t.Scenarios {
		r := &t.Scenarios[i]
		for _, run := range r.Runs() {
			if run.PipelinedStreams > 0 && run.SpeedupMeasured < minSpeedup {
				errs = append(errs, fmt.Errorf("bench: %s/%s: pipelined speedup %.3f below the %.2f floor",
					r.Name, run.Mapper, run.SpeedupMeasured, minSpeedup))
			}
		}
	}
	return errors.Join(errs...)
}

// CheckOptimizer enforces the bi-criteria gate on a both-mapper trajectory:
// the optimizer's aggregate throughput must be at least the greedy
// baseline's (0.5% tolerance for pooled rounding), and no single scenario
// may regress more than 2%.
func (t Trajectory) CheckOptimizer() error {
	if t.MapperMode != MapperBoth {
		return fmt.Errorf("bench: optimizer gate needs a both-mapper trajectory, got %q", t.MapperMode)
	}
	var errs []error
	if t.Summary.AggOptOverGreedy < 0.995 {
		errs = append(errs, fmt.Errorf("bench: optimizer aggregate throughput %.4f of greedy, below the 0.995 floor",
			t.Summary.AggOptOverGreedy))
	}
	for i := range t.Scenarios {
		r := &t.Scenarios[i]
		if r.OptOverGreedy > 0 && r.OptOverGreedy < 0.98 {
			errs = append(errs, fmt.Errorf("bench: %s: optimizer throughput %.4f of greedy, below the 0.98 per-scenario floor",
				r.Name, r.OptOverGreedy))
		}
	}
	return errors.Join(errs...)
}

// WriteJSON emits the trajectory as indented JSON.
func (t Trajectory) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Load parses a trajectory document, rejecting unknown fields so schema
// drift fails loudly.
func Load(r io.Reader) (Trajectory, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Trajectory
	if err := dec.Decode(&t); err != nil {
		return Trajectory{}, fmt.Errorf("bench: %w", err)
	}
	return t, nil
}

func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}

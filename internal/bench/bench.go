// Package bench is the machine-readable performance trajectory: it runs a
// fixed set of multi-stream workload scenarios through the serial path and
// the software-pipelined path (pipeline.RunSequencePipelined) and emits one
// BENCH_<pr>.json point per PR, so speedups are tracked — and regressions
// caught — across the repository's history.
//
// Each scenario models N concurrent streams sharing the paper's 8-core
// Blackford machine. The modeled cores are divided by sched.SplitCores from
// a short serial profiling prefix (the Triple-C methodology: measure first,
// then commit resources); a stream software-pipelines only when its share
// is at least 2 cores — one core per in-flight pipeline half — and each
// half additionally stripes its data-parallel tasks over half the share
// (partition.Worst(budget/2)). Streams whose share stays at one core keep
// the serial path, so the 8-streams-on-8-cores scenario is the anchored
// no-pipelining baseline.
//
// All times are the machine model's milliseconds, not host wall clock, so
// every number in the trajectory is bit-reproducible on any machine and in
// CI. Two speedups are reported per scenario:
//
//   - speedup_measured / speedup_predicted: the pipelining gain alone,
//     measured by playing the window-2 schedule (speedup.MeasureTimeline)
//     against the same reports the analytical estimator (speedup.Predict)
//     sees — the falsifiable pair the estimator is judged on;
//   - throughput_gain: fps of the pipelined+striped path over the plain
//     serial path — the end-to-end gain a serving deployment would see.
package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"triplec/internal/frame"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/sched"
	"triplec/internal/speedup"
	"triplec/internal/stats"
	"triplec/internal/synth"
)

// Schema identifies the trajectory file format.
const Schema = "triplec-bench/v1"

// PR is the trajectory point this tree emits (BENCH_<PR>.json).
const PR = 6

// profileFrames is the serial profiling prefix length used to derive the
// per-stream demand that SplitCores divides the modeled machine by.
const profileFrames = 12

// Scenario is one benchmark workload: N streams of a given geometry and
// image difficulty served concurrently on the modeled machine.
type Scenario struct {
	Name          string
	Streams       int
	Width, Height int
	Spacing       float64
	NoiseSigma    float64
	ClutterRate   float64
	// Mixed varies noise and clutter per stream index, so the demands — and
	// therefore the core split — are deliberately unequal.
	Mixed bool
	// Frames per stream in full mode; Options.Short cuts it to a third
	// (floor 16).
	Frames int
}

// Scenarios returns the fixed 8-scenario workload matrix: 1/2/4/8 streams,
// 128 and 192 px geometries, clean, noisy and mixed difficulty.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "1x128-clean", Streams: 1, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 120, ClutterRate: 1, Frames: 96},
		{Name: "1x192-clean", Streams: 1, Width: 192, Height: 192, Spacing: 54, NoiseSigma: 120, ClutterRate: 1, Frames: 64},
		{Name: "2x128-mixed", Streams: 2, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 150, ClutterRate: 2, Mixed: true, Frames: 72},
		{Name: "2x192-noisy", Streams: 2, Width: 192, Height: 192, Spacing: 54, NoiseSigma: 250, ClutterRate: 3, Frames: 48},
		{Name: "4x128-clean", Streams: 4, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 120, ClutterRate: 1, Frames: 48},
		{Name: "4x128-noisy", Streams: 4, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 250, ClutterRate: 3, Frames: 48},
		{Name: "8x128-clean", Streams: 8, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 120, ClutterRate: 1, Frames: 32},
		{Name: "8x128-mixed", Streams: 8, Width: 128, Height: 128, Spacing: 36, NoiseSigma: 150, ClutterRate: 2, Mixed: true, Frames: 32},
	}
}

// ScenarioResult is one scenario's trajectory point. All milliseconds and
// fps are modeled (machine-model time), rounded to 4 decimals.
type ScenarioResult struct {
	Name             string  `json:"name"`
	Streams          int     `json:"streams"`
	FramesPerStream  int     `json:"frames_per_stream"`
	CoreBudgets      []int   `json:"core_budgets"`
	PipelinedStreams int     `json:"pipelined_streams"`
	FPSSerial        float64 `json:"fps_serial"`
	FPSPipelined     float64 `json:"fps_pipelined"`
	ThroughputGain   float64 `json:"throughput_gain"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	SpeedupMeasured  float64 `json:"speedup_measured"`
	SpeedupPredicted float64 `json:"speedup_predicted"`
	RelErr           float64 `json:"rel_err"`
	MemBoundFrac     float64 `json:"mem_bound_frac"`
}

// Summary aggregates the acceptance-relevant headlines.
type Summary struct {
	// BestMultiStreamGain is the largest throughput_gain over scenarios
	// with more than one stream.
	BestMultiStreamGain float64 `json:"best_multi_stream_gain"`
	// ScenariosWithinQuarter counts scenarios whose predicted speedup lies
	// within 25% of measured.
	ScenariosWithinQuarter int `json:"scenarios_within_quarter"`
	// MinPipelinedSpeedup is the smallest measured pipelining speedup over
	// scenarios that actually pipelined (1 when none did).
	MinPipelinedSpeedup float64 `json:"min_pipelined_speedup"`
}

// Trajectory is the full BENCH_<pr>.json document.
type Trajectory struct {
	Schema     string           `json:"schema"`
	PR         int              `json:"pr"`
	Arch       string           `json:"arch"`
	ModelCores int              `json:"model_cores"`
	Short      bool             `json:"short"`
	Scenarios  []ScenarioResult `json:"scenarios"`
	Summary    Summary          `json:"summary"`
}

// Options tunes a trajectory run.
type Options struct {
	// Short cuts every scenario's frame count to a third (floor 16) for CI.
	Short bool
	// Log, when set, receives one progress line per scenario.
	Log io.Writer
}

// Run executes the full scenario matrix and assembles the trajectory.
func Run(opts Options) (Trajectory, error) {
	scens := Scenarios()
	results := make([]ScenarioResult, 0, len(scens))
	for i, sc := range scens {
		frames := sc.Frames
		if opts.Short {
			frames = sc.Frames / 3
			if frames < 16 {
				frames = 16
			}
		}
		res, err := runScenario(sc, uint64(1+8009*i), frames)
		if err != nil {
			return Trajectory{}, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%-12s streams=%d budgets=%v gain=%.2fx measured=%.3f predicted=%.3f\n",
				res.Name, res.Streams, res.CoreBudgets, res.ThroughputGain, res.SpeedupMeasured, res.SpeedupPredicted)
		}
		results = append(results, res)
	}
	return assemble(results, opts.Short), nil
}

// streamConfig derives stream s's synthetic-sequence configuration; Mixed
// scenarios skew noise and clutter per stream so demands differ.
func streamConfig(sc Scenario, s int, seed uint64) synth.Config {
	cfg := synth.DefaultConfig(seed)
	cfg.Width, cfg.Height = sc.Width, sc.Height
	cfg.MarkerSpacing = sc.Spacing
	cfg.NoiseSigma = sc.NoiseSigma
	cfg.QuantumGain = 0
	cfg.ClutterRate = sc.ClutterRate
	cfg.DropoutEvery = 23
	if sc.Mixed {
		cfg.NoiseSigma += 60 * float64(s%3)
		cfg.ClutterRate += float64(s % 2)
	}
	return cfg
}

func newEngine(sc Scenario) (*pipeline.Engine, error) {
	return pipeline.New(pipeline.Config{
		Width: sc.Width, Height: sc.Height,
		MarkerSpacing: sc.Spacing,
		Arch:          platform.Blackford(),
	})
}

// runScenario executes one scenario: profile, split cores, then serve every
// stream through both the serial baseline and its committed path.
func runScenario(sc Scenario, seedBase uint64, frames int) (ScenarioResult, error) {
	arch := platform.Blackford()
	sources := make([]func(int) *frame.Frame, sc.Streams)
	demands := make([]float64, sc.Streams)
	for s := 0; s < sc.Streams; s++ {
		seq, err := synth.New(streamConfig(sc, s, seedBase+131*uint64(s)))
		if err != nil {
			return ScenarioResult{}, err
		}
		src := func(i int) *frame.Frame {
			f, _ := seq.Frame(i)
			return f
		}
		sources[s] = src

		// Profiling prefix: a short serial run whose mean modeled latency is
		// the demand signal the core split divides the machine by.
		eng, err := newEngine(sc)
		if err != nil {
			return ScenarioResult{}, err
		}
		n := profileFrames
		if n > frames {
			n = frames
		}
		reps, err := eng.RunSequence(n, src, nil)
		if err != nil {
			return ScenarioResult{}, err
		}
		for _, r := range reps {
			demands[s] += r.LatencyMs
		}
		demands[s] /= float64(len(reps))
	}
	budgets, err := sched.SplitCores(arch.NumCPUs, demands)
	if err != nil {
		return ScenarioResult{}, err
	}

	res := ScenarioResult{
		Name: sc.Name, Streams: sc.Streams, FramesPerStream: frames,
		CoreBudgets: budgets,
	}
	var (
		wallSerial, wallEff float64 // modeled makespan of the slowest stream
		sumServed, sumEff   float64 // pooled stage time vs pipelined makespan
		sumPredEff          float64 // pooled makespan the estimator predicts
		memBoundWeight      float64
		latencies           []float64
	)
	for s := 0; s < sc.Streams; s++ {
		eng, err := newEngine(sc)
		if err != nil {
			return ScenarioResult{}, err
		}
		serialReps, err := eng.RunSequence(frames, sources[s], nil)
		if err != nil {
			return ScenarioResult{}, err
		}
		serialMs := speedup.MeasureTimeline(serialReps).SerialMs
		if serialMs > wallSerial {
			wallSerial = serialMs
		}

		served := serialReps
		servedMs := serialMs
		effMs := serialMs
		predEffMs := serialMs
		if budgets[s] >= 2 {
			// The committed path: one core per in-flight half, the rest of
			// the share striping each half's data-parallel tasks.
			half := budgets[s] / 2
			m := partition.Worst(half)
			peng, err := newEngine(sc)
			if err != nil {
				return ScenarioResult{}, err
			}
			pipeReps, err := peng.RunSequencePipelined(frames, sources[s], m)
			if err != nil {
				return ScenarioResult{}, err
			}
			tl := speedup.MeasureTimeline(pipeReps)
			est, err := speedup.Predict(pipeReps, arch)
			if err != nil {
				return ScenarioResult{}, err
			}
			served = pipeReps
			servedMs = tl.SerialMs
			effMs = tl.MakespanMs
			predEffMs = tl.SerialMs / est.Speedup
			memBoundWeight += est.MemBoundFrac * float64(frames)
			res.PipelinedStreams++
		}
		if effMs > wallEff {
			wallEff = effMs
		}
		sumServed += servedMs
		sumEff += effMs
		sumPredEff += predEffMs
		for _, r := range served {
			latencies = append(latencies, r.LatencyMs)
		}
	}

	total := float64(frames * sc.Streams)
	res.FPSSerial = round4(total * 1e3 / wallSerial)
	res.FPSPipelined = round4(total * 1e3 / wallEff)
	res.ThroughputGain = round4(wallSerial / wallEff)
	res.SpeedupMeasured = round4(sumServed / sumEff)
	res.SpeedupPredicted = round4(sumServed / sumPredEff)
	res.RelErr = round4(math.Abs(res.SpeedupPredicted-res.SpeedupMeasured) / res.SpeedupMeasured)
	res.MemBoundFrac = round4(memBoundWeight / total)
	p50, err := stats.Percentile(latencies, 50)
	if err != nil {
		return ScenarioResult{}, err
	}
	p99, err := stats.Percentile(latencies, 99)
	if err != nil {
		return ScenarioResult{}, err
	}
	res.P50Ms, res.P99Ms = round4(p50), round4(p99)
	return res, nil
}

// assemble builds the trajectory document around the scenario results.
func assemble(results []ScenarioResult, short bool) Trajectory {
	t := Trajectory{
		Schema: Schema, PR: PR,
		Arch:       "Blackford DP Xeon E5345 (8-core)",
		ModelCores: platform.Blackford().NumCPUs,
		Short:      short,
		Scenarios:  results,
	}
	t.Summary = summarize(results)
	return t
}

func summarize(results []ScenarioResult) Summary {
	s := Summary{MinPipelinedSpeedup: 1}
	minSet := false
	for _, r := range results {
		if r.Streams > 1 && r.ThroughputGain > s.BestMultiStreamGain {
			s.BestMultiStreamGain = r.ThroughputGain
		}
		if r.RelErr <= 0.25 {
			s.ScenariosWithinQuarter++
		}
		if r.PipelinedStreams > 0 && (!minSet || r.SpeedupMeasured < s.MinPipelinedSpeedup) {
			s.MinPipelinedSpeedup = r.SpeedupMeasured
			minSet = true
		}
	}
	return s
}

// Validate checks the trajectory's schema: field presence, internal
// consistency, and physically meaningful ranges. It is the machine-readable
// contract CI enforces on every emitted BENCH_*.json.
func (t Trajectory) Validate() error {
	if t.Schema != Schema {
		return fmt.Errorf("bench: schema %q, want %q", t.Schema, Schema)
	}
	if t.PR < 1 {
		return fmt.Errorf("bench: PR %d invalid", t.PR)
	}
	if t.Arch == "" {
		return errors.New("bench: empty arch")
	}
	if t.ModelCores < 1 {
		return fmt.Errorf("bench: model_cores %d invalid", t.ModelCores)
	}
	if len(t.Scenarios) == 0 {
		return errors.New("bench: no scenarios")
	}
	seen := map[string]bool{}
	for _, r := range t.Scenarios {
		if r.Name == "" || seen[r.Name] {
			return fmt.Errorf("bench: missing or duplicate scenario name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Streams < 1 || r.FramesPerStream < 1 {
			return fmt.Errorf("bench: %s: streams %d / frames %d invalid", r.Name, r.Streams, r.FramesPerStream)
		}
		if len(r.CoreBudgets) != r.Streams {
			return fmt.Errorf("bench: %s: %d budgets for %d streams", r.Name, len(r.CoreBudgets), r.Streams)
		}
		sum := 0
		for _, b := range r.CoreBudgets {
			if b < 0 {
				return fmt.Errorf("bench: %s: negative core budget %d", r.Name, b)
			}
			sum += b
		}
		if sum > t.ModelCores {
			return fmt.Errorf("bench: %s: budgets %v over-commit %d cores", r.Name, r.CoreBudgets, t.ModelCores)
		}
		if r.PipelinedStreams < 0 || r.PipelinedStreams > r.Streams {
			return fmt.Errorf("bench: %s: pipelined_streams %d out of range", r.Name, r.PipelinedStreams)
		}
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"fps_serial", r.FPSSerial}, {"fps_pipelined", r.FPSPipelined},
			{"throughput_gain", r.ThroughputGain},
			{"p50_ms", r.P50Ms}, {"p99_ms", r.P99Ms},
			{"speedup_measured", r.SpeedupMeasured}, {"speedup_predicted", r.SpeedupPredicted},
		} {
			if v.val <= 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
				return fmt.Errorf("bench: %s: %s = %v must be positive and finite", r.Name, v.name, v.val)
			}
		}
		if r.P50Ms > r.P99Ms {
			return fmt.Errorf("bench: %s: p50 %v exceeds p99 %v", r.Name, r.P50Ms, r.P99Ms)
		}
		// The window-2 pipeline cannot measure beyond its two-stage bound.
		if r.SpeedupMeasured > 2.001 {
			return fmt.Errorf("bench: %s: measured speedup %v exceeds the two-stage bound", r.Name, r.SpeedupMeasured)
		}
		if r.RelErr < 0 || math.IsNaN(r.RelErr) {
			return fmt.Errorf("bench: %s: rel_err %v invalid", r.Name, r.RelErr)
		}
		want := math.Abs(r.SpeedupPredicted-r.SpeedupMeasured) / r.SpeedupMeasured
		if math.Abs(r.RelErr-want) > 5e-3 {
			return fmt.Errorf("bench: %s: rel_err %v inconsistent with speedups (want %.4f)", r.Name, r.RelErr, want)
		}
		if r.MemBoundFrac < 0 || r.MemBoundFrac > 1 {
			return fmt.Errorf("bench: %s: mem_bound_frac %v out of [0,1]", r.Name, r.MemBoundFrac)
		}
	}
	want := summarize(t.Scenarios)
	if math.Abs(want.BestMultiStreamGain-t.Summary.BestMultiStreamGain) > 5e-3 ||
		want.ScenariosWithinQuarter != t.Summary.ScenariosWithinQuarter ||
		math.Abs(want.MinPipelinedSpeedup-t.Summary.MinPipelinedSpeedup) > 5e-3 {
		return fmt.Errorf("bench: summary %+v inconsistent with scenarios (want %+v)", t.Summary, want)
	}
	return nil
}

// Check enforces the regression gate: every scenario that pipelined must
// have measured at least minSpeedup over serial.
func (t Trajectory) Check(minSpeedup float64) error {
	for _, r := range t.Scenarios {
		if r.PipelinedStreams > 0 && r.SpeedupMeasured < minSpeedup {
			return fmt.Errorf("bench: %s: pipelined speedup %.3f below the %.2f floor", r.Name, r.SpeedupMeasured, minSpeedup)
		}
	}
	return nil
}

// WriteJSON emits the trajectory as indented JSON.
func (t Trajectory) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Load parses a trajectory document, rejecting unknown fields so schema
// drift fails loudly.
func Load(r io.Reader) (Trajectory, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Trajectory
	if err := dec.Decode(&t); err != nil {
		return Trajectory{}, fmt.Errorf("bench: %w", err)
	}
	return t, nil
}

func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}

package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The scenario matrix must cover the advertised axes: 1/2/4/8 streams, both
// geometries, mixed and noisy difficulty.
func TestScenarioMatrixAxes(t *testing.T) {
	scens := Scenarios()
	if len(scens) != 8 {
		t.Fatalf("%d scenarios, want 8", len(scens))
	}
	streams := map[int]bool{}
	names := map[string]bool{}
	var has192, hasMixed, hasNoisy bool
	for _, sc := range scens {
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		streams[sc.Streams] = true
		if sc.Width == 192 {
			has192 = true
		}
		if sc.Mixed {
			hasMixed = true
		}
		if sc.NoiseSigma >= 250 {
			hasNoisy = true
		}
		if sc.Frames < 16 {
			t.Fatalf("%s: %d frames too short for a percentile estimate", sc.Name, sc.Frames)
		}
	}
	for _, n := range []int{1, 2, 4, 8} {
		if !streams[n] {
			t.Fatalf("no %d-stream scenario", n)
		}
	}
	if !has192 || !hasMixed || !hasNoisy {
		t.Fatalf("axes missing: 192px=%v mixed=%v noisy=%v", has192, hasMixed, hasNoisy)
	}
}

// A tiny live run through one single-stream and one multi-stream scenario:
// the budgets must respect the modeled machine, the measured pipelining
// speedup must be real, and the assembled document must validate.
func TestRunScenarioTiny(t *testing.T) {
	scens := Scenarios()
	var results []ScenarioResult
	for _, idx := range []int{0, 2} { // 1x128-clean, 2x128-mixed
		res, err := runScenario(scens[idx], uint64(1+8009*idx), 16)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, b := range res.CoreBudgets {
			sum += b
		}
		if sum > 8 {
			t.Fatalf("%s: budgets %v over-commit the 8-core model", res.Name, res.CoreBudgets)
		}
		if res.PipelinedStreams == 0 {
			t.Fatalf("%s: expected pipelining with budgets %v", res.Name, res.CoreBudgets)
		}
		if res.SpeedupMeasured <= 1 || res.SpeedupMeasured > 2.001 {
			t.Fatalf("%s: measured speedup %v outside (1, 2]", res.Name, res.SpeedupMeasured)
		}
		if res.ThroughputGain < res.SpeedupMeasured-5e-3 {
			t.Fatalf("%s: striped+pipelined gain %v below overlap speedup %v",
				res.Name, res.ThroughputGain, res.SpeedupMeasured)
		}
		results = append(results, res)
	}
	tr := assemble(results, true)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(1.0); err != nil {
		t.Fatal(err)
	}

	// The document round-trips through its own reader.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped document invalid: %v", err)
	}
}

func validTrajectory() Trajectory {
	return assemble([]ScenarioResult{{
		Name: "a", Streams: 2, FramesPerStream: 16, CoreBudgets: []int{4, 4},
		PipelinedStreams: 2, FPSSerial: 40, FPSPipelined: 80, ThroughputGain: 2,
		P50Ms: 20, P99Ms: 40, SpeedupMeasured: 1.3, SpeedupPredicted: 1.3,
		RelErr: 0, MemBoundFrac: 0,
	}}, false)
}

func TestValidateRejectsCorruptDocuments(t *testing.T) {
	if err := validTrajectory().Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Trajectory)
		wantSub string
	}{
		{"wrong schema", func(tr *Trajectory) { tr.Schema = "nope" }, "schema"},
		{"overcommitted budgets", func(tr *Trajectory) { tr.Scenarios[0].CoreBudgets = []int{8, 8} }, "over-commit"},
		{"budget count mismatch", func(tr *Trajectory) { tr.Scenarios[0].CoreBudgets = []int{8} }, "budgets for"},
		{"zero fps", func(tr *Trajectory) { tr.Scenarios[0].FPSPipelined = 0 }, "fps_pipelined"},
		{"inverted percentiles", func(tr *Trajectory) { tr.Scenarios[0].P50Ms = 99 }, "p50"},
		{"impossible speedup", func(tr *Trajectory) {
			tr.Scenarios[0].SpeedupMeasured = 2.5
			tr.Scenarios[0].SpeedupPredicted = 2.5
			tr.Summary = summarize(tr.Scenarios)
		}, "two-stage bound"},
		{"inconsistent rel_err", func(tr *Trajectory) { tr.Scenarios[0].RelErr = 0.5 }, "rel_err"},
		{"stale summary", func(tr *Trajectory) { tr.Summary.ScenariosWithinQuarter = 0 }, "summary"},
	}
	for _, tc := range cases {
		tr := validTrajectory()
		tc.mutate(&tr)
		err := tr.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestCheckEnforcesSpeedupFloor(t *testing.T) {
	tr := validTrajectory()
	if err := tr.Check(1.2); err != nil {
		t.Fatalf("1.3 measured rejected at 1.2 floor: %v", err)
	}
	if err := tr.Check(1.4); err == nil {
		t.Fatal("1.3 measured accepted at 1.4 floor")
	}
	// A scenario that never pipelined is exempt from the floor.
	tr.Scenarios[0].PipelinedStreams = 0
	if err := tr.Check(1.4); err != nil {
		t.Fatalf("non-pipelined scenario gated: %v", err)
	}
}

// The checked-in trajectory point must parse, validate, and meet the PR's
// acceptance thresholds: ≥1.3x throughput on a multi-stream scenario and
// the estimator within 25% of measured on ≥6 of 8 scenarios. The file is
// pure machine-model time, so this is deterministic; if modeled times
// change, regenerate it with `triplec bench`.
func TestCheckedInTrajectory(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "BENCH_6.json"))
	if err != nil {
		t.Fatalf("BENCH_6.json missing (regenerate with `triplec bench`): %v", err)
	}
	defer f.Close()
	tr, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.PR != PR || tr.Short {
		t.Fatalf("checked-in file must be a full run for PR %d, got pr=%d short=%v", PR, tr.PR, tr.Short)
	}
	if len(tr.Scenarios) != len(Scenarios()) {
		t.Fatalf("%d scenarios, want %d", len(tr.Scenarios), len(Scenarios()))
	}
	if tr.Summary.BestMultiStreamGain < 1.3 {
		t.Fatalf("best multi-stream throughput gain %.3f below the 1.3x acceptance bar", tr.Summary.BestMultiStreamGain)
	}
	if tr.Summary.ScenariosWithinQuarter < 6 {
		t.Fatalf("estimator within 25%% on only %d/%d scenarios, need ≥6",
			tr.Summary.ScenariosWithinQuarter, len(tr.Scenarios))
	}
	if err := tr.Check(1.0); err != nil {
		t.Fatal(err)
	}
}

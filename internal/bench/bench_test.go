package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The scenario matrix must cover the advertised axes: 1/2/4/8 streams, both
// geometries, mixed and noisy difficulty.
func TestScenarioMatrixAxes(t *testing.T) {
	scens := Scenarios()
	if len(scens) != 8 {
		t.Fatalf("%d scenarios, want 8", len(scens))
	}
	streams := map[int]bool{}
	names := map[string]bool{}
	var has192, hasMixed, hasNoisy bool
	for _, sc := range scens {
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		streams[sc.Streams] = true
		if sc.Width == 192 {
			has192 = true
		}
		if sc.Mixed {
			hasMixed = true
		}
		if sc.NoiseSigma >= 250 {
			hasNoisy = true
		}
		if sc.Frames < 16 {
			t.Fatalf("%s: %d frames too short for a percentile estimate", sc.Name, sc.Frames)
		}
	}
	for _, n := range []int{1, 2, 4, 8} {
		if !streams[n] {
			t.Fatalf("no %d-stream scenario", n)
		}
	}
	if !has192 || !hasMixed || !hasNoisy {
		t.Fatalf("axes missing: 192px=%v mixed=%v noisy=%v", has192, hasMixed, hasNoisy)
	}
}

// A tiny live run through one single-stream and one multi-stream scenario
// with both mappers: the budgets must respect the modeled machine, the
// measured pipelining speedup must be real, the outputs must stay
// bit-identical to serial under both mapping policies, and the assembled
// document must validate.
func TestRunScenarioTiny(t *testing.T) {
	scens := Scenarios()
	var results []ScenarioResult
	for _, idx := range []int{0, 2} { // 1x128-clean, 2x128-mixed
		res, err := runScenario(scens[idx], uint64(1+8009*idx), 16, MapperBoth)
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range res.Runs() {
			sum := 0
			for _, b := range run.CoreBudgets {
				sum += b
			}
			if sum > 8 {
				t.Fatalf("%s/%s: budgets %v over-commit the 8-core model", res.Name, run.Mapper, run.CoreBudgets)
			}
			if run.PipelinedStreams == 0 && run.StripedStreams == 0 {
				t.Fatalf("%s/%s: expected parallel structure with budgets %v", res.Name, run.Mapper, run.CoreBudgets)
			}
			if run.SpeedupMeasured <= 0 || run.SpeedupMeasured > 2.001 {
				t.Fatalf("%s/%s: measured speedup %v outside (0, 2]", res.Name, run.Mapper, run.SpeedupMeasured)
			}
			if !run.OutputsIdentical {
				t.Fatalf("%s/%s: outputs diverged from the serial baseline", res.Name, run.Mapper)
			}
		}
		if res.OptOverGreedy <= 0 {
			t.Fatalf("%s: missing opt_over_greedy in a both-mapper run", res.Name)
		}
		results = append(results, res)
	}
	tr := assemble(results, true, MapperBoth)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(1.0); err != nil {
		t.Fatal(err)
	}

	// The document round-trips through its own reader.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped document invalid: %v", err)
	}
}

func validRun(mapper string, budgets []int, pipelined int, fps float64) MapperRun {
	return MapperRun{
		Mapper: mapper, CoreBudgets: budgets, PipelinedStreams: pipelined,
		FPS: fps, ThroughputGain: fps / 40,
		P50Ms: 20, P99Ms: 40, SpeedupMeasured: 1.3, SpeedupPredicted: 1.3,
		RelErr: 0, MemBoundFrac: 0, OutputsIdentical: true,
	}
}

func validTrajectory() Trajectory {
	res := ScenarioResult{
		Name: "a", Streams: 2, FramesPerStream: 16, FPSSerial: 40,
		Greedy:    validRun("greedy", []int{4, 4}, 2, 80),
		Optimizer: validRun("optimizer", []int{5, 3}, 2, 88),
	}
	res.OptOverGreedy = round4(res.Optimizer.FPS / res.Greedy.FPS)
	return assemble([]ScenarioResult{res}, false, MapperBoth)
}

func TestValidateRejectsCorruptDocuments(t *testing.T) {
	if err := validTrajectory().Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Trajectory)
		wantSub string
	}{
		{"wrong schema", func(tr *Trajectory) { tr.Schema = "nope" }, "schema"},
		{"bad mapper mode", func(tr *Trajectory) { tr.MapperMode = "magic" }, "mapper_mode"},
		{"overcommitted budgets", func(tr *Trajectory) { tr.Scenarios[0].Greedy.CoreBudgets = []int{8, 8} }, "over-commit"},
		{"budget count mismatch", func(tr *Trajectory) { tr.Scenarios[0].Optimizer.CoreBudgets = []int{8} }, "budgets for"},
		{"zero fps", func(tr *Trajectory) { tr.Scenarios[0].Greedy.FPS = 0 }, "fps"},
		{"zero serial fps", func(tr *Trajectory) { tr.Scenarios[0].FPSSerial = 0 }, "fps_serial"},
		{"inverted percentiles", func(tr *Trajectory) { tr.Scenarios[0].Optimizer.P50Ms = 99 }, "p50"},
		{"impossible speedup", func(tr *Trajectory) {
			tr.Scenarios[0].Greedy.SpeedupMeasured = 2.5
			tr.Scenarios[0].Greedy.SpeedupPredicted = 2.5
			tr.Summary = summarize(tr.Scenarios)
		}, "two-stage bound"},
		{"inconsistent rel_err", func(tr *Trajectory) { tr.Scenarios[0].Greedy.RelErr = 0.5 }, "rel_err"},
		{"diverged outputs", func(tr *Trajectory) { tr.Scenarios[0].Optimizer.OutputsIdentical = false }, "outputs"},
		{"missing optimizer run", func(tr *Trajectory) { tr.Scenarios[0].Optimizer = MapperRun{} }, "mapper run missing"},
		{"inconsistent ratio", func(tr *Trajectory) { tr.Scenarios[0].OptOverGreedy = 3 }, "opt_over_greedy"},
		{"stale summary", func(tr *Trajectory) { tr.Summary.ScenariosWithinQuarter = 0 }, "summary"},
		{"stale aggregate", func(tr *Trajectory) { tr.Summary.AggFPSOptimizer += 1 }, "summary"},
	}
	for _, tc := range cases {
		tr := validTrajectory()
		tc.mutate(&tr)
		err := tr.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestCheckEnforcesSpeedupFloor(t *testing.T) {
	tr := validTrajectory()
	if err := tr.Check(1.2); err != nil {
		t.Fatalf("1.3 measured rejected at 1.2 floor: %v", err)
	}
	if err := tr.Check(1.4); err == nil {
		t.Fatal("1.3 measured accepted at 1.4 floor")
	}
	// A run that never pipelined is exempt from the floor.
	tr.Scenarios[0].Greedy.PipelinedStreams = 0
	tr.Scenarios[0].Optimizer.PipelinedStreams = 0
	if err := tr.Check(1.4); err != nil {
		t.Fatalf("non-pipelined runs gated: %v", err)
	}
}

// Check must name every scenario/mapper pair that missed the floor, not
// just the first failure.
func TestCheckCollectsAllViolations(t *testing.T) {
	tr := validTrajectory()
	second := tr.Scenarios[0]
	second.Name = "b"
	second.Greedy.SpeedupMeasured = 1.1
	second.Greedy.RelErr = round4(0.2 / 1.1)
	tr.Scenarios = append(tr.Scenarios, second)
	tr.Summary = summarize(tr.Scenarios)

	err := tr.Check(1.35)
	if err == nil {
		t.Fatal("floor of 1.35 accepted speedups of 1.3 and 1.1")
	}
	msg := err.Error()
	for _, want := range []string{"a/greedy", "a/optimizer", "b/greedy", "b/optimizer"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not name %s", msg, want)
		}
	}
	// Floor between the two: only the lower one is named.
	err = tr.Check(1.2)
	if err == nil {
		t.Fatal("floor of 1.2 accepted a 1.1 speedup")
	}
	msg = err.Error()
	if !strings.Contains(msg, "b/greedy") {
		t.Fatalf("error %q does not name b/greedy", msg)
	}
	if strings.Contains(msg, "a/greedy") || strings.Contains(msg, "b/optimizer") {
		t.Fatalf("error %q names runs that met the floor", msg)
	}
}

func TestCheckOptimizerGate(t *testing.T) {
	tr := validTrajectory()
	if err := tr.CheckOptimizer(); err != nil {
		t.Fatalf("optimizer ahead of greedy rejected: %v", err)
	}
	// Aggregate regression beyond tolerance.
	tr.Scenarios[0].Optimizer.FPS = 70
	tr.Scenarios[0].Optimizer.ThroughputGain = round4(70.0 / 40)
	tr.Scenarios[0].OptOverGreedy = round4(70.0 / 80)
	tr.Summary = summarize(tr.Scenarios)
	err := tr.CheckOptimizer()
	if err == nil {
		t.Fatal("12.5% aggregate regression accepted")
	}
	if !strings.Contains(err.Error(), "aggregate") {
		t.Fatalf("error %q does not mention the aggregate gate", err)
	}
	// Single-mapper documents cannot be gated.
	tr.MapperMode = MapperGreedy
	if err := tr.CheckOptimizer(); err == nil {
		t.Fatal("single-mapper trajectory accepted by the optimizer gate")
	}
}

// The checked-in trajectory point must parse, validate, and meet the PR's
// acceptance thresholds: optimizer at or above greedy on aggregate
// throughput, at least one scenario improving ≥10%, bit-identical outputs,
// ≥1.3x throughput on a multi-stream scenario, and the estimator within 25%
// of measured on ≥6 of 8 scenarios. The file is pure machine-model time, so
// this is deterministic; if modeled times change, regenerate it with
// `triplec bench`.
func TestCheckedInTrajectory(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "BENCH_7.json"))
	if err != nil {
		t.Fatalf("BENCH_7.json missing (regenerate with `triplec bench`): %v", err)
	}
	defer f.Close()
	tr, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.PR != PR || tr.Short {
		t.Fatalf("checked-in file must be a full run for PR %d, got pr=%d short=%v", PR, tr.PR, tr.Short)
	}
	if tr.MapperMode != MapperBoth {
		t.Fatalf("checked-in file must compare both mappers, got mode %q", tr.MapperMode)
	}
	if len(tr.Scenarios) != len(Scenarios()) {
		t.Fatalf("%d scenarios, want %d", len(tr.Scenarios), len(Scenarios()))
	}
	if tr.Summary.BestMultiStreamGain < 1.3 {
		t.Fatalf("best multi-stream throughput gain %.3f below the 1.3x acceptance bar", tr.Summary.BestMultiStreamGain)
	}
	if tr.Summary.ScenariosWithinQuarter < 6 {
		t.Fatalf("estimator within 25%% on only %d/%d scenarios, need ≥6",
			tr.Summary.ScenariosWithinQuarter, len(tr.Scenarios))
	}
	if tr.Summary.AggOptOverGreedy < 1.0 {
		t.Fatalf("optimizer aggregate throughput %.4f of greedy, want ≥ 1.0", tr.Summary.AggOptOverGreedy)
	}
	if tr.Summary.BestOptOverGreedy < 1.10 {
		t.Fatalf("best per-scenario optimizer gain %.4f over greedy, want ≥ 1.10", tr.Summary.BestOptOverGreedy)
	}
	for i := range tr.Scenarios {
		r := &tr.Scenarios[i]
		for _, run := range r.Runs() {
			if !run.OutputsIdentical {
				t.Fatalf("%s/%s: outputs not bit-identical to serial", r.Name, run.Mapper)
			}
		}
	}
	if err := tr.Check(1.0); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckOptimizer(); err != nil {
		t.Fatal(err)
	}
}

package mapping

import (
	"math"
	"testing"

	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/sched"
	"triplec/internal/tasks"
)

// testProfile builds a plausible scenario-conditioned cost profile: one
// dominant scenario with compute-heavy front tasks and data-parallel back
// tasks, matching the flow graph's real asymmetry.
func testProfile() pipeline.CostProfile {
	var p pipeline.CostProfile
	p.Frames = 16
	p.Weight[0] = 1
	for ti, name := range tasks.AllNames() {
		c := platform.Cost{Cycles: 2e6, MemBytes: 256 << 10}
		switch name {
		case tasks.NameENH, tasks.NameZOOM:
			c = platform.Cost{Cycles: 8e6, MemBytes: 2 << 20}
		case tasks.NameRDGFull:
			c = platform.Cost{Cycles: 6e6, MemBytes: 1 << 20}
		}
		p.Cost[0][ti] = c
	}
	return p
}

func testMachine(t testing.TB) *platform.Machine {
	t.Helper()
	m, err := platform.NewMachine(platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestParetoFrontProperties: no survivor dominates another survivor, every
// eliminated candidate is dominated by (or exactly ties) a survivor, and the
// front is non-empty for non-empty input.
func TestParetoFrontProperties(t *testing.T) {
	prof := testProfile()
	ev := newEvaluator(testMachine(t), &prof, 512)
	for c := 1; c <= 8; c++ {
		cands := ev.Candidates(c, nil)
		orig := make([]Candidate, len(cands))
		copy(orig, cands)
		front := ParetoFront(cands)
		if len(front) == 0 {
			t.Fatalf("share %d: empty front from %d candidates", c, len(orig))
		}
		for i, a := range front {
			for j, b := range front {
				if i != j && dominates(a, b) {
					t.Fatalf("share %d: front point %d dominates front point %d", c, i, j)
				}
			}
		}
		for _, o := range orig {
			covered := false
			for _, s := range front {
				if s.Plan == o.Plan || dominates(s, o) ||
					(s.LatencyMs == o.LatencyMs && s.PeriodMs == o.PeriodMs) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("share %d: candidate %+v eliminated without a dominating survivor", c, o.Plan)
			}
		}
	}
}

// TestDominates: strict dominance on one axis, tie on the other.
func TestDominates(t *testing.T) {
	a := Candidate{LatencyMs: 1, PeriodMs: 1}
	b := Candidate{LatencyMs: 2, PeriodMs: 1}
	tie := Candidate{LatencyMs: 1, PeriodMs: 1}
	cross := Candidate{LatencyMs: 0.5, PeriodMs: 2}
	if !dominates(a, b) || dominates(b, a) {
		t.Fatal("dominance on latency axis broken")
	}
	if dominates(a, tie) || dominates(tie, a) {
		t.Fatal("exact ties must not dominate")
	}
	if dominates(a, cross) || dominates(cross, a) {
		t.Fatal("criteria trade-off must be incomparable")
	}
}

// TestSoftmaxWeights: weights always sum to 1, and raising one pressure
// shifts weight toward the matching criterion.
func TestSoftmaxWeights(t *testing.T) {
	cases := []Pressures{
		{},
		{Deadline: 1},
		{Scarcity: 1},
		{Comm: 1},
		{Deadline: 0.3, Scarcity: 0.9, Comm: 0.1},
		{Deadline: math.NaN(), Scarcity: -4, Comm: 7},
	}
	for _, p := range cases {
		w := p.Softmax()
		if sum := w.Latency + w.Throughput + w.Comm; math.Abs(sum-1) > 1e-12 {
			t.Fatalf("pressures %+v: weights sum to %v", p, sum)
		}
		if w.Latency <= 0 || w.Throughput <= 0 || w.Comm <= 0 {
			t.Fatalf("pressures %+v: non-positive weight %+v", p, w)
		}
	}
	base := Pressures{Deadline: 0.5, Scarcity: 0.5, Comm: 0.5}.Softmax()
	tight := Pressures{Deadline: 1, Scarcity: 0.5, Comm: 0.5}.Softmax()
	if tight.Latency <= base.Latency {
		t.Fatalf("deadline pressure did not raise latency weight: %v -> %v", base.Latency, tight.Latency)
	}
	scarce := Pressures{Deadline: 0.5, Scarcity: 1, Comm: 0.5}.Softmax()
	if scarce.Throughput <= base.Throughput {
		t.Fatalf("scarcity pressure did not raise throughput weight: %v -> %v", base.Throughput, scarce.Throughput)
	}
}

// TestComputePressuresDefaults: unknown budget and occupancy give neutral
// pressure; a serial latency at twice the budget saturates the deadline axis.
func TestComputePressuresDefaults(t *testing.T) {
	p := ComputePressures(10, 0, 0, 0, 0)
	if p.Deadline != 0.5 || p.Scarcity != 0.5 {
		t.Fatalf("unknown signals: %+v, want neutral 0.5", p)
	}
	if got := ComputePressures(40, 20, 2, 8, 0).Deadline; got != 1 {
		t.Fatalf("2x over budget: deadline pressure %v, want 1", got)
	}
	if got := ComputePressures(10, 40, 2, 8, 0).Deadline; math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("comfortable budget: deadline pressure %v, want 0.125", got)
	}
}

// TestCandidatesContainGreedyPlan: the candidate set for every share
// includes the greedy baseline's plan — the precondition for the
// never-worse-than-greedy guarantee.
func TestCandidatesContainGreedyPlan(t *testing.T) {
	prof := testProfile()
	ev := newEvaluator(testMachine(t), &prof, 512)
	for c := 1; c <= 8; c++ {
		want := sched.GreedyPlan(c)
		found := false
		for _, cand := range ev.Candidates(c, nil) {
			if cand.Plan == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("share %d: greedy plan %+v not in candidate set", c, want)
		}
	}
}

// TestOptimizerNeverWorseThanGreedy: across machine sizes and stream mixes,
// the optimizer's plans are valid and its modeled total score never exceeds
// the greedy division's.
func TestOptimizerNeverWorseThanGreedy(t *testing.T) {
	arch := platform.Blackford()
	machine := testMachine(t)
	mixes := [][]sched.StreamDemand{
		{
			{TotalMs: 30, BudgetMs: 40, FrameKB: 512, Profile: testProfile()},
		},
		{
			{TotalMs: 30, BudgetMs: 40, FrameKB: 512, Profile: testProfile()},
			{TotalMs: 10, BudgetMs: 40, FrameKB: 512, Profile: testProfile()},
		},
		{
			{TotalMs: 30, BudgetMs: 15, FrameKB: 512, Profile: testProfile()},
			{TotalMs: 30, BudgetMs: 15, FrameKB: 512, Profile: testProfile()},
			{TotalMs: 30, BudgetMs: 15, FrameKB: 256, Profile: testProfile()},
		},
	}
	for _, cores := range []int{2, 4, 8} {
		for mi, demands := range mixes {
			n := len(demands)
			if cores < n {
				continue
			}
			opt, err := NewOptimizer(arch)
			if err != nil {
				t.Fatal(err)
			}
			plans := make([]sched.StreamPlan, n)
			if err := opt.Map(cores, demands, plans); err != nil {
				t.Fatalf("cores %d mix %d: %v", cores, mi, err)
			}
			if err := sched.ValidatePlans(cores, plans); err != nil {
				t.Fatalf("cores %d mix %d: invalid plans: %v", cores, mi, err)
			}
			greedyPlans := make([]sched.StreamPlan, n)
			var g sched.GreedyMapper
			if err := g.Map(cores, demands, greedyPlans); err != nil {
				t.Fatal(err)
			}
			score := func(ps []sched.StreamPlan) float64 {
				total := 0.0
				for i := range ps {
					d := &demands[i]
					ev := newEvaluator(machine, &d.Profile, d.FrameKB)
					serial := ev.Evaluate(sched.StreamPlan{Cores: 1})
					w := ComputePressures(serial.LatencyMs, d.BudgetMs, n, cores, ev.meanCutMs()).Softmax()
					total += w.Score(ev.Evaluate(ps[i]), serial)
				}
				return total
			}
			if os, gs := score(plans), score(greedyPlans); os > gs*(1+1e-9) {
				t.Fatalf("cores %d mix %d: optimizer score %v worse than greedy %v", cores, mi, os, gs)
			}
		}
	}
}

// TestOptimizerFallsBackWithoutProfile: until every stream has a cost
// profile, and whenever the machine is oversubscribed, the optimizer must
// reproduce the greedy division exactly.
func TestOptimizerFallsBackWithoutProfile(t *testing.T) {
	arch := platform.Blackford()
	opt, err := NewOptimizer(arch)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		cores   int
		demands []sched.StreamDemand
	}{
		{"no profile", 8, []sched.StreamDemand{
			{TotalMs: 30, Profile: testProfile()},
			{TotalMs: 10}, // Frames == 0: scalar only
		}},
		{"oversubscribed", 2, []sched.StreamDemand{
			{TotalMs: 30, Profile: testProfile()},
			{TotalMs: 20, Profile: testProfile()},
			{TotalMs: 10, Profile: testProfile()},
		}},
	}
	for _, tc := range cases {
		opt.LastParetoPoints = 99
		plans := make([]sched.StreamPlan, len(tc.demands))
		if err := opt.Map(tc.cores, tc.demands, plans); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if opt.LastParetoPoints != 0 {
			t.Fatalf("%s: fallback left LastParetoPoints = %d", tc.name, opt.LastParetoPoints)
		}
		want := make([]sched.StreamPlan, len(tc.demands))
		var g sched.GreedyMapper
		if err := g.Map(tc.cores, tc.demands, want); err != nil {
			t.Fatal(err)
		}
		for i := range plans {
			if plans[i] != want[i] {
				t.Fatalf("%s: stream %d plan %+v, greedy fallback wants %+v", tc.name, i, plans[i], want[i])
			}
		}
	}
}

// TestOptimizerRestructuresSingleStream: one stream owning the whole machine
// is where the graph structure matters most — the front stage is mostly
// non-partitionable while the back stage is data-parallel, so the even
// greedy split wastes back-stage cores. The optimizer must find a mapping
// the model scores strictly better and keep a non-trivial Pareto front.
func TestOptimizerRestructuresSingleStream(t *testing.T) {
	arch := platform.Blackford()
	opt, err := NewOptimizer(arch)
	if err != nil {
		t.Fatal(err)
	}
	demands := []sched.StreamDemand{
		{TotalMs: 30, BudgetMs: 40, FrameKB: 512, Profile: testProfile()},
	}
	plans := make([]sched.StreamPlan, 1)
	if err := opt.Map(arch.NumCPUs, demands, plans); err != nil {
		t.Fatal(err)
	}
	greedy := sched.GreedyPlan(arch.NumCPUs)
	if plans[0] == greedy {
		t.Fatalf("optimizer kept the even 4+4 split %+v on an asymmetric profile", plans[0])
	}
	if opt.LastParetoPoints < 1 {
		t.Fatalf("optimizer deviated from greedy with LastParetoPoints = %d", opt.LastParetoPoints)
	}
	// The chosen mapping must score strictly better than greedy's under the
	// model, past the stability margin.
	d := &demands[0]
	ev := newEvaluator(testMachine(t), &d.Profile, d.FrameKB)
	serial := ev.Evaluate(sched.StreamPlan{Cores: 1})
	w := ComputePressures(serial.LatencyMs, d.BudgetMs, 1, arch.NumCPUs, ev.meanCutMs()).Softmax()
	os, gs := w.Score(ev.Evaluate(plans[0]), serial), w.Score(ev.Evaluate(greedy), serial)
	if os >= gs*(1-preferGreedyMargin) {
		t.Fatalf("optimizer deviated to %+v without a material win: score %v vs greedy %v", plans[0], os, gs)
	}
}

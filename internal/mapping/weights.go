package mapping

import "math"

// Pressures are the normalized scenario pressures that steer the objective
// weights, each in [0, 1] — the adaptive-weight shape of the HPRSA
// heterogeneous-scheduling exemplar: rather than fixing the
// latency/throughput trade-off ahead of time, measure how much each concern
// currently binds and soften the objective toward it.
type Pressures struct {
	// Deadline is how tightly the stream's serial latency presses against
	// its frame budget (1: at or past the deadline without parallelism).
	Deadline float64
	// Scarcity is how oversubscribed the machine is (streams vs. cores).
	Scarcity float64
	// Comm is how large the stage-handoff cost is relative to a frame.
	Comm float64
}

// Weights are the objective weights picked from the pressures: they sum to
// 1 and weight the normalized latency, period, and communication terms of a
// candidate's score.
type Weights struct {
	Latency    float64
	Throughput float64
	Comm       float64
}

// Beta is the softmax temperature: higher values commit harder to the
// currently dominant pressure.
const Beta = 2.0

// clamp01 clamps to [0, 1]; NaN maps to 0.
func clamp01(v float64) float64 {
	if !(v > 0) { // catches NaN
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ComputePressures derives the scenario pressures for one stream.
// serialMs is the stream's predicted serial frame latency, budgetMs its
// frame deadline (0: unknown, neutral pressure), streams and cores the
// machine-level occupancy, commMs the stream's mean stage-handoff cost.
func ComputePressures(serialMs, budgetMs float64, streams, cores int, commMs float64) Pressures {
	p := Pressures{Deadline: 0.5, Scarcity: 0.5}
	if budgetMs > 0 && serialMs > 0 {
		p.Deadline = clamp01(serialMs / (2 * budgetMs))
	}
	if cores > 0 && streams > 0 {
		p.Scarcity = clamp01(float64(streams) / float64(cores))
	}
	if serialMs > 0 {
		p.Comm = clamp01(commMs / serialMs)
	}
	return p
}

// Softmax maps the pressures to objective weights: w = softmax(Beta·ρ).
// Deadline pressure favors the latency criterion, scarcity the throughput
// criterion (a scarce machine must maximize frames retired per unit time,
// the Pareto front's period axis), and communication pressure penalizes
// handoff-heavy mappings.
func (p Pressures) Softmax() Weights {
	ed := math.Exp(Beta * clamp01(p.Deadline))
	es := math.Exp(Beta * clamp01(p.Scarcity))
	ec := math.Exp(Beta * clamp01(p.Comm))
	z := ed + es + ec
	return Weights{Latency: ed / z, Throughput: es / z, Comm: ec / z}
}

// Score is the weighted objective of a candidate, normalized by the
// stream's serial reference so scores are comparable across streams of very
// different frame costs: the serial candidate scores exactly
// w.Latency + w.Throughput, and any mapping the model considers an
// improvement scores lower.
func (w Weights) Score(c Candidate, serialRef Candidate) float64 {
	ref := serialRef.LatencyMs
	if ref <= 0 {
		ref = 1
	}
	refPeriod := serialRef.PeriodMs
	if refPeriod <= 0 {
		refPeriod = ref
	}
	return w.Latency*(c.LatencyMs/ref) +
		w.Throughput*(c.PeriodMs/refPeriod) +
		w.Comm*(c.CommMs/ref)
}

// Pick chooses one point off the Pareto front by minimum weighted score;
// ties resolve to the earlier (simpler) candidate. An empty front returns a
// zero Candidate.
func Pick(front []Candidate, w Weights, serialRef Candidate) Candidate {
	var best Candidate
	bestScore := math.Inf(1)
	for _, c := range front {
		if s := w.Score(c, serialRef); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

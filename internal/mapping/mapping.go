// Package mapping is the bi-criteria stage-to-core mapping optimizer: for
// each stream it enumerates interval mappings of the flow-graph stages onto
// the stream's core allocation, scores every candidate with the scenario-
// conditioned demand model (per-task machine-model stage times, the memory
// roofline of internal/speedup, and a communication term for the stage
// handoff), keeps the Pareto front over (latency, period), and picks one
// point off the front with scenario-pressure-adaptive weights. A dynamic
// program then divides the machine across streams by the same weighted
// objective. The shape follows "Bi-criteria Pipeline Mappings for Parallel
// Image Processing" (Benoit et al.): interval mappings, latency/period
// bi-criteria, and the observation that proportional scalar splits ignore
// the graph structure the criteria depend on.
package mapping

import (
	"math"

	"triplec/internal/flowgraph"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/sched"
	"triplec/internal/speedup"
	"triplec/internal/tasks"
)

// Candidate is one evaluated stage-to-core mapping for a single stream:
// the executable plan plus its predicted criteria under the stream's
// scenario-conditioned cost profile.
type Candidate struct {
	Plan sched.StreamPlan
	// LatencyMs is the scenario-weighted mean frame latency: front + back
	// critical paths (+ handoff when the stages run on disjoint cores).
	LatencyMs float64
	// PeriodMs is the scenario-weighted steady-state initiation interval:
	// max(front, back, memory roofline) + handoff when pipelined, else the
	// latency — the inverse of attainable throughput.
	PeriodMs float64
	// CommMs is the scenario-weighted stage-handoff cost alone.
	CommMs float64
}

// evaluator scores candidates for one stream: the cost profile fixes the
// per-scenario task demands, cutMs the per-scenario handoff cost.
type evaluator struct {
	machine *platform.Machine
	arch    platform.Arch
	prof    *pipeline.CostProfile
	// cutMs[s] is the modeled time to move scenario s's front→back cut
	// through the memory system once per frame.
	cutMs [pipeline.NumScenarios]float64
	// memMs[s] is scenario s's roofline floor: total frame traffic over
	// machine bandwidth, charged when front and back contend for the bus.
	memMs [pipeline.NumScenarios]float64
}

func newEvaluator(machine *platform.Machine, prof *pipeline.CostProfile, frameKB int) *evaluator {
	ev := &evaluator{machine: machine, arch: machine.Arch(), prof: prof}
	for s := range prof.Weight {
		if prof.Weight[s] <= 0 {
			continue
		}
		traffic := 0.0
		for ti := range prof.Cost[s] {
			traffic += prof.Cost[s][ti].MemBytes
		}
		ev.memMs[s] = speedup.RooflineMs(traffic, ev.arch)
		if frameKB > 0 {
			if cutKB, err := flowgraph.FromIndex(s).CutKB(frameKB); err == nil {
				ev.cutMs[s] = speedup.RooflineMs(float64(cutKB)*1024, ev.arch)
			}
		}
	}
	return ev
}

// stageMs returns scenario s's front and back critical paths when the front
// stage owns cf cores and the back stage cb (equal to the full share for a
// non-pipelined mapping). Each task is striped to min(stage cores,
// MaxStripes(task)) — the engine's actual stripe rule — and zero-cost tasks
// are skipped so the model does not charge SwitchCost for tasks the scenario
// never runs.
func (ev *evaluator) stageMs(s, cf, cb int) (front, back float64) {
	names := tasks.AllNames()
	for ti, name := range names {
		c := ev.prof.Cost[s][ti]
		if c.Cycles <= 0 && c.MemBytes <= 0 {
			continue
		}
		if flowgraph.StageOf(name) == flowgraph.StageBack {
			back += ev.machine.StripedMs(c, partition.MaxStripes(name, cb))
		} else {
			front += ev.machine.StripedMs(c, partition.MaxStripes(name, cf))
		}
	}
	return front, back
}

// Evaluate scores a plan against the profile.
func (ev *evaluator) Evaluate(p sched.StreamPlan) Candidate {
	cand := Candidate{Plan: p}
	for s := range ev.prof.Weight {
		w := ev.prof.Weight[s]
		if w <= 0 {
			continue
		}
		var lat, period, comm float64
		if p.Pipelined {
			f, b := ev.stageMs(s, p.FrontCores, p.BackCores)
			comm = ev.cutMs[s]
			lat = f + b + comm
			period = math.Max(math.Max(f, b), ev.memMs[s]) + comm
		} else {
			k := p.Cores
			if k < 1 {
				k = 1
			}
			if !p.Striped {
				k = 1
			}
			f, b := ev.stageMs(s, k, k)
			lat = f + b
			period = lat
		}
		cand.LatencyMs += w * lat
		cand.PeriodMs += w * period
		cand.CommMs += w * comm
	}
	return cand
}

// Candidates enumerates the stream's mapping space for a share of c cores:
// serial for one core; for larger shares, full striping without pipelining
// plus every front/back core partition of the window-2 pipeline. The
// returned set always contains the greedy baseline's plan (even stage
// split), so the optimizer can never score worse than greedy under its own
// model.
func (ev *evaluator) Candidates(c int, out []Candidate) []Candidate {
	out = out[:0]
	if c < 1 {
		return out
	}
	out = append(out, ev.Evaluate(sched.StreamPlan{Cores: 1}))
	if c < 2 {
		return out
	}
	out = append(out, ev.Evaluate(sched.StreamPlan{Cores: c, Striped: true}))
	for cf := 1; cf < c; cf++ {
		out = append(out, ev.Evaluate(sched.StreamPlan{
			Cores: c, Pipelined: true, FrontCores: cf, BackCores: c - cf,
		}))
	}
	return out
}

package mapping

// dominates reports whether a is at least as good as b on both criteria and
// strictly better on one. Communication cost is not a third axis: it is
// already folded into both latency and period, and keeping the front
// two-dimensional keeps it small and interpretable.
func dominates(a, b Candidate) bool {
	if a.LatencyMs > b.LatencyMs || a.PeriodMs > b.PeriodMs {
		return false
	}
	return a.LatencyMs < b.LatencyMs || a.PeriodMs < b.PeriodMs
}

// ParetoFront compacts cands down to the non-dominated set over
// (latency, period), preserving enumeration order (deterministic for a
// deterministic candidate order). When two candidates tie exactly on both
// criteria the earlier one is kept — enumeration order puts simpler plans
// (serial, then striped, then pipelined splits) first, so ties resolve
// toward the simpler mapping. The returned slice aliases cands.
func ParetoFront(cands []Candidate) []Candidate {
	n := len(cands)
	// Mark first, compact second: the survivor test must read the original
	// set, not a partially compacted one.
	keep := 0
	for i := 0; i < n; i++ {
		c := cands[i]
		dominated := false
		for j := 0; j < n && !dominated; j++ {
			if i == j {
				continue
			}
			o := cands[j]
			if dominates(o, c) {
				dominated = true
			} else if j < i && o.LatencyMs == c.LatencyMs && o.PeriodMs == c.PeriodMs {
				// Exact tie: keep only the first.
				dominated = true
			}
		}
		if !dominated {
			cands[i], cands[keep] = cands[keep], cands[i]
			// The swap is safe: position keep ≤ i has already been
			// classified, and classification only reads values, which the
			// swap permutes but never loses.
			keep++
		}
	}
	return cands[:keep]
}

package mapping

import (
	"fmt"
	"math"

	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/sched"
)

// Optimizer is the bi-criteria mapping arbiter behind the sched.Mapper
// seam. Per stream it enumerates serial / striped / every pipelined
// front-back core partition for each possible share, keeps the Pareto front
// over (latency, period), and picks one point with the stream's
// pressure-adaptive weights; a dynamic program then chooses the per-stream
// shares that minimize the total weighted score across the machine. The
// greedy baseline's plan is always in the candidate set, and the final
// allocation falls back to greedy's unless the optimizer's modeled score is
// materially better — the optimizer can restructure mappings, but it can
// never do worse than the baseline under its own model.
//
// Not safe for concurrent use; MultiManager serializes Map calls under its
// lock.
type Optimizer struct {
	machine *platform.Machine
	greedy  sched.GreedyMapper

	// LastParetoPoints is the total Pareto-front size across streams at
	// their chosen shares in the most recent Map — a diagnostic for how
	// much genuine trade-off space the optimizer had.
	LastParetoPoints int
}

// preferGreedyMargin: the optimizer deviates from the greedy division only
// when its modeled total score improves by more than this relative margin;
// within the margin the simpler baseline wins (stability over churn).
const preferGreedyMargin = 1e-3

// NewOptimizer builds an optimizer for the modeled architecture.
func NewOptimizer(arch platform.Arch) (*Optimizer, error) {
	m, err := platform.NewMachine(arch)
	if err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	return &Optimizer{machine: m}, nil
}

// Name implements sched.Mapper.
func (o *Optimizer) Name() string { return "optimizer" }

// Map implements sched.Mapper.
func (o *Optimizer) Map(totalCores int, demands []sched.StreamDemand, plans []sched.StreamPlan) error {
	n := len(demands)
	if len(plans) != n {
		return fmt.Errorf("mapping: %d plans for %d demands", len(plans), n)
	}
	if n == 0 {
		return fmt.Errorf("mapping: no streams to map %d cores over", totalCores)
	}
	// The optimizer needs the scenario-conditioned profile; until every
	// stream has reported one — and in the oversubscribed regime, where the
	// only decision is which streams to shed (SplitCores' demand ranking) —
	// the greedy division is the answer.
	structured := totalCores >= n
	for i := range demands {
		if demands[i].Profile.Frames == 0 {
			structured = false
		}
	}
	if !structured {
		o.LastParetoPoints = 0
		return o.greedy.Map(totalCores, demands, plans)
	}

	// Per-stream tables over possible shares c ∈ [1, maxShare]: the picked
	// plan, its weighted score, and the front size behind it. Scores are
	// made monotone non-increasing in c (a larger share may always fall
	// back to the smaller share's plan), so the cross-stream DP can hand
	// out all cores without forcing any stream to waste them.
	maxShare := totalCores - (n - 1)
	bestPlan := make([][]sched.StreamPlan, n)
	bestScore := make([][]float64, n)
	bestPoints := make([][]int, n)
	var candBuf []Candidate
	for i := range demands {
		d := &demands[i]
		ev := newEvaluator(o.machine, &d.Profile, d.FrameKB)
		serial := ev.Evaluate(sched.StreamPlan{Cores: 1})
		w := ComputePressures(serial.LatencyMs, d.BudgetMs, n, totalCores, ev.meanCutMs()).Softmax()
		bestPlan[i] = make([]sched.StreamPlan, maxShare+1)
		bestScore[i] = make([]float64, maxShare+1)
		bestPoints[i] = make([]int, maxShare+1)
		for c := 1; c <= maxShare; c++ {
			candBuf = ev.Candidates(c, candBuf)
			front := ParetoFront(candBuf)
			pick := Pick(front, w, serial)
			score := w.Score(pick, serial)
			if c > 1 && bestScore[i][c-1] <= score {
				bestPlan[i][c] = bestPlan[i][c-1]
				bestScore[i][c] = bestScore[i][c-1]
				bestPoints[i][c] = bestPoints[i][c-1]
				continue
			}
			bestPlan[i][c] = pick.Plan
			bestScore[i][c] = score
			bestPoints[i][c] = len(front)
		}
	}

	// DP over streams × cores: f[j][c] is the minimal total score mapping
	// the first j streams onto exactly c cores (each stream ≥ 1). choice
	// records stream j-1's share on the optimal path.
	const inf = math.MaxFloat64
	f := make([][]float64, n+1)
	choice := make([][]int, n+1)
	for j := range f {
		f[j] = make([]float64, totalCores+1)
		choice[j] = make([]int, totalCores+1)
		for c := range f[j] {
			f[j][c] = inf
		}
	}
	f[0][0] = 0
	for j := 1; j <= n; j++ {
		for c := j; c <= totalCores-(n-j); c++ {
			for k := 1; k <= c-(j-1) && k <= maxShare; k++ {
				if f[j-1][c-k] == inf {
					continue
				}
				if s := f[j-1][c-k] + bestScore[j-1][k]; s < f[j][c] {
					f[j][c] = s
					choice[j][c] = k
				}
			}
		}
	}
	if f[n][totalCores] == inf {
		return o.greedy.Map(totalCores, demands, plans)
	}

	points := 0
	c := totalCores
	for j := n; j >= 1; j-- {
		k := choice[j][c]
		plans[j-1] = bestPlan[j-1][k]
		points += bestPoints[j-1][k]
		c -= k
	}

	// Hold the allocation to the greedy baseline unless the model predicts
	// a material improvement: the optimizer's candidate set contains every
	// greedy plan, so optScore ≤ greedyScore always holds; the margin only
	// suppresses churn on near-ties.
	greedyPlans := make([]sched.StreamPlan, n)
	if err := o.greedy.Map(totalCores, demands, greedyPlans); err == nil {
		greedyScore := 0.0
		for i, gp := range greedyPlans {
			d := &demands[i]
			ev := newEvaluator(o.machine, &d.Profile, d.FrameKB)
			serial := ev.Evaluate(sched.StreamPlan{Cores: 1})
			w := ComputePressures(serial.LatencyMs, d.BudgetMs, n, totalCores, ev.meanCutMs()).Softmax()
			greedyScore += w.Score(ev.Evaluate(gp), serial)
		}
		if f[n][totalCores] >= greedyScore*(1-preferGreedyMargin) {
			copy(plans, greedyPlans)
			o.LastParetoPoints = 0
			return nil
		}
	}
	o.LastParetoPoints = points
	return nil
}

// meanCutMs is the scenario-weighted mean stage-handoff cost — the
// communication-pressure numerator.
func (ev *evaluator) meanCutMs() float64 {
	total := 0.0
	for s := range ev.prof.Weight {
		total += ev.prof.Weight[s] * ev.cutMs[s]
	}
	return total
}

// NumScenarios re-exported for tests' convenience.
const NumScenarios = pipeline.NumScenarios

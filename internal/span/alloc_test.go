package span

import "testing"

// TestRecordingAllocatesNothing pins the tracing contract the serving loop
// relies on: with recording enabled, the full per-frame span path — begin
// frame, task spans, prediction fill-in, instants, commit to the ring —
// performs zero heap allocations.
func TestRecordingAllocatesNothing(t *testing.T) {
	rec := NewRecorder(4096)
	b := NewFrameBuilder(rec, 1)
	frame := 0
	allocs := testing.AllocsPerRun(200, func() {
		b.BeginFrame(frame)
		for task := 0; task < 5; task++ {
			b.BeginTask(task)
			b.EndTask(1.5, 2)
		}
		b.SetPredicted(2, 1.4)
		b.Suppressed(7)
		b.ScenarioMiss(0, 3)
		b.Commit(frame, 3, 1, OutcomeProcessed, 4, 9.5, 9.1, 12.0)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("enabled span recording allocates %.1f per frame, want 0", allocs)
	}
}

// TestEmitAllocatesNothing pins the same contract for out-of-frame instant
// events (rebalances, faults, breaker trips).
func TestEmitAllocatesNothing(t *testing.T) {
	rec := NewRecorder(4096)
	allocs := testing.AllocsPerRun(200, func() {
		rec.Emit(Event{Kind: KindRebalance, Stream: -1, Frame: -1, Cores: 3})
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f per event, want 0", allocs)
	}
}

// TestObserveFrameNoFireAllocatesNothing pins the trigger engine's fast
// path: feeding a healthy frame to an armed flight recorder (no trigger
// fires) must not allocate.
func TestObserveFrameNoFireAllocatesNothing(t *testing.T) {
	fr, err := NewFlightRecorder(t.TempDir(), DefaultTriggers())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		fr.ObserveFrame(0, 1, false, 10.0, 10.2)
	})
	if allocs != 0 {
		t.Fatalf("no-fire ObserveFrame allocates %.1f, want 0", allocs)
	}
}

// BenchmarkFrameEnabled measures the steady-state per-frame recording cost.
func BenchmarkFrameEnabled(b *testing.B) {
	rec := NewRecorder(8192)
	fb := NewFrameBuilder(rec, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fb.BeginFrame(i)
		for task := 0; task < 5; task++ {
			fb.BeginTask(task)
			fb.EndTask(1.5, 2)
		}
		fb.SetPredicted(2, 1.4)
		fb.Commit(i, 3, 1, OutcomeProcessed, 4, 9.5, 9.1, 12.0)
	}
}

// BenchmarkFrameDisabled measures the disabled-path no-op cost: what a
// deployment pays for leaving the instrumentation compiled in but switched
// off.
func BenchmarkFrameDisabled(b *testing.B) {
	rec := NewRecorder(8192)
	rec.SetEnabled(false)
	fb := NewFrameBuilder(rec, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fb.BeginFrame(i)
		for task := 0; task < 5; task++ {
			fb.BeginTask(task)
			fb.EndTask(1.5, 2)
		}
		fb.SetPredicted(2, 1.4)
		fb.Commit(i, 3, 1, OutcomeProcessed, 4, 9.5, 9.1, 12.0)
	}
}

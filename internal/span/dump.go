package span

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Chrome trace-event JSON (the "JSON Object Format" Perfetto and
// chrome://tracing load): a traceEvents array of complete spans (ph "X",
// ts/dur in microseconds), instants (ph "i") and metadata records (ph
// "M"), keyed by pid/tid. We map one stream to one pid (stream+1, pid 0
// reserved for global events) and carry every domain field in args so the
// reader — and a human in the Perfetto UI — can recover frame, task,
// scenario, quality and predicted-vs-actual timing per span.

type traceEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Cat   string         `json:"cat,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
	TraceEvents     []traceEvent   `json:"traceEvents"`
}

type dumpHeader struct {
	Reason    string
	Stream    int
	Frame     int
	Detail    float64
	Coalesced int
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

func pidOf(stream int32) int { return int(stream) + 1 } // -1 (global) -> 0

// WriteDump renders a ring snapshot as Chrome trace-event JSON.
func WriteDump(w io.Writer, meta Meta, events []Event, hdr dumpHeader) error {
	tf := traceFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"format":    "triplec-flight-recorder-v1",
			"reason":    hdr.Reason,
			"stream":    hdr.Stream,
			"frame":     hdr.Frame,
			"detail":    hdr.Detail,
			"coalesced": hdr.Coalesced,
			"predictor": meta.Predictor,
			"promotion": meta.Promotion,
		},
		TraceEvents: make([]traceEvent, 0, len(events)+len(meta.Streams)+1),
	}

	// Process-name metadata: one per stream plus the global pseudo-process.
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "global"},
	})
	for i, name := range meta.Streams {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": name},
		})
	}

	for i := range events {
		ev := &events[i]
		te := traceEvent{Pid: pidOf(ev.Stream), Ts: usec(ev.StartNs)}
		args := map[string]any{"frame": int(ev.Frame)}
		switch ev.Kind {
		case KindFrame:
			te.Ph, te.Cat = "X", "frame"
			te.Dur = usec(ev.DurNs)
			te.Name = "frame " + itoa(int(ev.Frame))
			args["scenario"] = label(meta.Scenarios, int(ev.Scenario), "scenario")
			args["quality"] = label(meta.Qualities, int(ev.Quality), "q")
			args["outcome"] = OutcomeName(ev.Outcome)
			args["predicted_ms"] = ev.Arg0
			args["actual_ms"] = ev.Arg1
			args["budget_ms"] = ev.Arg2
			args["cores"] = int(ev.Cores)
		case KindTask:
			te.Ph, te.Cat = "X", "task"
			te.Tid = 1
			te.Dur = usec(ev.DurNs)
			te.Name = label(meta.Tasks, int(ev.Task), "task")
			args["task"] = te.Name
			args["predicted_ms"] = ev.Arg0
			args["actual_ms"] = ev.Arg1
			args["stripes"] = int(ev.Cores)
			args["scenario"] = label(meta.Scenarios, int(ev.Scenario), "scenario")
			args["quality"] = label(meta.Qualities, int(ev.Quality), "q")
		case KindRebalance:
			te.Ph, te.Cat, te.Scope = "i", "sched", "g"
			te.Name = "rebalance"
			args["before"] = UnpackBudgets(ev.Pack0, ev.Cores)
			args["after"] = UnpackBudgets(ev.Pack1, ev.Cores)
			delete(args, "frame")
		case KindDegrade:
			te.Ph, te.Cat, te.Scope = "i", "quality", "p"
			te.Name = "degrade"
			args["from"] = label(meta.Qualities, int(ev.Arg0), "q")
			args["to"] = label(meta.Qualities, int(ev.Quality), "q")
		case KindFault:
			te.Ph, te.Cat, te.Scope = "i", "fault", "p"
			te.Name = "fault:" + FaultName(int(ev.Arg0))
			args["fault"] = FaultName(int(ev.Arg0))
			if ev.Task >= 0 {
				args["task"] = label(meta.Tasks, int(ev.Task), "task")
			}
		case KindBreakerTrip:
			te.Ph, te.Cat, te.Scope = "i", "fault", "p"
			te.Name = "breaker_trip"
			if ev.Task >= 0 {
				args["task"] = label(meta.Tasks, int(ev.Task), "task")
			}
		case KindScenarioMiss:
			te.Ph, te.Cat, te.Scope = "i", "predict", "p"
			te.Name = "scenario_miss"
			args["predicted"] = label(meta.Scenarios, int(ev.Arg0), "scenario")
			args["actual"] = label(meta.Scenarios, int(ev.Scenario), "scenario")
		case KindSuppressed:
			te.Ph, te.Cat, te.Scope = "i", "quality", "p"
			te.Name = "suppressed"
			if ev.Task >= 0 {
				args["task"] = label(meta.Tasks, int(ev.Task), "task")
			}
		case KindTrigger:
			te.Ph, te.Cat, te.Scope = "i", "flightrec", "g"
			te.Name = "trigger:" + ReasonName(TriggerReason(ev.Outcome))
			args["reason"] = ReasonName(TriggerReason(ev.Outcome))
			args["detail"] = ev.Arg0
		case KindPromote:
			te.Ph, te.Cat, te.Scope = "i", "promote", "g"
			te.Name = "promote:" + PromoteStateName(ev.Outcome)
			args["from"] = PromoteStateName(int32(ev.Arg0))
			args["to"] = PromoteStateName(ev.Outcome)
			args["backend_slot"] = int(ev.Arg1)
			delete(args, "frame")
		default: // skip, abandon, stall, restart, quarantine
			te.Ph, te.Cat, te.Scope = "i", "lifecycle", "p"
			te.Name = KindName(ev.Kind)
		}
		te.Args = args
		tf.TraceEvents = append(tf.TraceEvents, te)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// DumpTask is one task span recovered from a dump.
type DumpTask struct {
	Name        string
	StartUs     float64
	DurUs       float64
	PredictedMs float64
	ActualMs    float64
	Stripes     int
	Scenario    string
	Quality     string
}

// DumpFrame is one frame root span with its child task spans.
type DumpFrame struct {
	Pid         int
	Process     string
	Frame       int
	StartUs     float64
	DurUs       float64
	Scenario    string
	Quality     string
	Outcome     string
	PredictedMs float64
	ActualMs    float64
	BudgetMs    float64
	Cores       int
	Tasks       []DumpTask
}

// DumpInstant is one instant event recovered from a dump.
type DumpInstant struct {
	Name    string
	Cat     string
	Pid     int
	Process string
	Frame   int
	TsUs    float64
	Args    map[string]any
}

// Dump is the parsed, validated form of a flight-recorder file.
type Dump struct {
	Reason    string
	Stream    int
	Frame     int
	Detail    float64
	Coalesced int
	// Predictor is the deployed prediction backend active when the dump
	// triggered (empty in dumps written before the field existed).
	Predictor string
	// Promotion is the promotion controller's position at dump time, e.g.
	// "canary:quantile-p90" (empty with no controller or in older dumps).
	Promotion string
	Processes map[int]string
	Frames    []DumpFrame
	Instants  []DumpInstant
	// OrphanTasks counts task spans whose (pid, frame) matched no frame
	// root — ring wraparound truncating the oldest frame's children.
	OrphanTasks int
}

func argString(args map[string]any, key string) string {
	if s, ok := args[key].(string); ok {
		return s
	}
	return ""
}

func argFloat(args map[string]any, key string) float64 {
	if f, ok := args[key].(float64); ok {
		return f
	}
	return 0
}

func argInt(args map[string]any, key string) int {
	return int(argFloat(args, key))
}

// ReadDump parses and validates a flight-recorder file. It is the parsing
// core of `triplec trace` and the fuzz target: malformed input of any kind
// must come back as an error, never a panic.
func ReadDump(r io.Reader) (*Dump, error) {
	dec := json.NewDecoder(r)
	var tf traceFile
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("span: decode dump: %w", err)
	}
	if tf.TraceEvents == nil {
		return nil, fmt.Errorf("span: dump has no traceEvents array")
	}

	d := &Dump{
		Reason:    argString(tf.OtherData, "reason"),
		Stream:    argInt(tf.OtherData, "stream"),
		Frame:     argInt(tf.OtherData, "frame"),
		Detail:    argFloat(tf.OtherData, "detail"),
		Coalesced: argInt(tf.OtherData, "coalesced"),
		Predictor: argString(tf.OtherData, "predictor"),
		Promotion: argString(tf.OtherData, "promotion"),
		Processes: map[int]string{},
	}

	type frameKey struct {
		pid, frame int
	}
	frames := map[frameKey]*DumpFrame{}
	var order []frameKey
	var tasks []struct {
		key frameKey
		t   DumpTask
	}

	for i := range tf.TraceEvents {
		te := &tf.TraceEvents[i]
		switch te.Ph {
		case "M":
			if te.Name == "process_name" {
				d.Processes[te.Pid] = argString(te.Args, "name")
			}
		case "X":
			if te.Name == "" {
				return nil, fmt.Errorf("span: event %d: complete span with empty name", i)
			}
			if !finiteNonNeg(te.Ts) || !finiteNonNeg(te.Dur) {
				return nil, fmt.Errorf("span: event %d (%s): bad ts/dur %v/%v", i, te.Name, te.Ts, te.Dur)
			}
			switch te.Cat {
			case "frame":
				key := frameKey{te.Pid, argInt(te.Args, "frame")}
				f := &DumpFrame{
					Pid:         te.Pid,
					Frame:       key.frame,
					StartUs:     te.Ts,
					DurUs:       te.Dur,
					Scenario:    argString(te.Args, "scenario"),
					Quality:     argString(te.Args, "quality"),
					Outcome:     argString(te.Args, "outcome"),
					PredictedMs: argFloat(te.Args, "predicted_ms"),
					ActualMs:    argFloat(te.Args, "actual_ms"),
					BudgetMs:    argFloat(te.Args, "budget_ms"),
					Cores:       argInt(te.Args, "cores"),
				}
				if _, dup := frames[key]; !dup {
					order = append(order, key)
				}
				frames[key] = f
			case "task":
				tasks = append(tasks, struct {
					key frameKey
					t   DumpTask
				}{
					key: frameKey{te.Pid, argInt(te.Args, "frame")},
					t: DumpTask{
						Name:        te.Name,
						StartUs:     te.Ts,
						DurUs:       te.Dur,
						PredictedMs: argFloat(te.Args, "predicted_ms"),
						ActualMs:    argFloat(te.Args, "actual_ms"),
						Stripes:     argInt(te.Args, "stripes"),
						Scenario:    argString(te.Args, "scenario"),
						Quality:     argString(te.Args, "quality"),
					},
				})
			default:
				return nil, fmt.Errorf("span: event %d (%s): unknown span category %q", i, te.Name, te.Cat)
			}
		case "i", "I":
			if te.Name == "" {
				return nil, fmt.Errorf("span: event %d: instant with empty name", i)
			}
			if !finiteNonNeg(te.Ts) {
				return nil, fmt.Errorf("span: event %d (%s): bad ts %v", i, te.Name, te.Ts)
			}
			d.Instants = append(d.Instants, DumpInstant{
				Name: te.Name, Cat: te.Cat, Pid: te.Pid,
				Frame: argInt(te.Args, "frame"), TsUs: te.Ts, Args: te.Args,
			})
		case "":
			return nil, fmt.Errorf("span: event %d: missing ph", i)
		default:
			return nil, fmt.Errorf("span: event %d: unsupported ph %q", i, te.Ph)
		}
	}

	for _, rec := range tasks {
		if f, ok := frames[rec.key]; ok {
			f.Tasks = append(f.Tasks, rec.t)
		} else {
			d.OrphanTasks++
		}
	}
	for _, key := range order {
		f := frames[key]
		f.Process = d.Processes[f.Pid]
		sort.Slice(f.Tasks, func(a, b int) bool { return f.Tasks[a].StartUs < f.Tasks[b].StartUs })
		d.Frames = append(d.Frames, *f)
	}
	sort.Slice(d.Frames, func(a, b int) bool { return d.Frames[a].StartUs < d.Frames[b].StartUs })
	sort.Slice(d.Instants, func(a, b int) bool { return d.Instants[a].TsUs < d.Instants[b].TsUs })
	return d, nil
}

func finiteNonNeg(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0) && f >= 0
}

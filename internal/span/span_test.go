package span

import (
	"reflect"
	"testing"
)

func TestFrameBuilderCommit(t *testing.T) {
	rec := NewRecorder(64)
	b := NewFrameBuilder(rec, 2)

	b.BeginFrame(0)
	b.BeginTask(3)
	b.EndTask(4.5, 2)
	b.BeginTask(5)
	b.EndTask(1.25, 1)
	b.Suppressed(7)
	b.ScenarioMiss(1, 4)
	b.SetPredicted(3, 5.0)
	b.Commit(17, 4, 1, OutcomeProcessed, 6, 6.0, 5.75, 8.0)

	if got := rec.FramesCommitted(); got != 1 {
		t.Fatalf("FramesCommitted = %d, want 1", got)
	}
	evs := rec.Snapshot()
	if len(evs) != 5 { // 2 tasks + suppressed + miss + root
		t.Fatalf("snapshot has %d events, want 5", len(evs))
	}
	root := evs[len(evs)-1]
	if root.Kind != KindFrame {
		t.Fatalf("last committed event is %v, want KindFrame (root-last ordering)", root.Kind)
	}
	if root.Stream != 2 || root.Frame != 17 || root.Scenario != 4 || root.Quality != 1 ||
		root.Outcome != OutcomeProcessed || root.Cores != 6 {
		t.Errorf("root fields wrong: %+v", root)
	}
	if root.Arg0 != 6.0 || root.Arg1 != 5.75 || root.Arg2 != 8.0 {
		t.Errorf("root pred/actual/budget = %v/%v/%v, want 6/5.75/8", root.Arg0, root.Arg1, root.Arg2)
	}
	if root.DurNs < 0 {
		t.Errorf("root duration negative: %d", root.DurNs)
	}

	var task3 *Event
	for i := range evs {
		if evs[i].Kind == KindTask && evs[i].Task == 3 {
			task3 = &evs[i]
		}
	}
	if task3 == nil {
		t.Fatal("task 3 span missing from commit")
	}
	if task3.Arg0 != 5.0 {
		t.Errorf("SetPredicted did not land: Arg0 = %v, want 5", task3.Arg0)
	}
	if task3.Arg1 != 4.5 || task3.Cores != 2 {
		t.Errorf("task actual/stripes = %v/%d, want 4.5/2", task3.Arg1, task3.Cores)
	}
	// Commit must override the engine-local frame index and stamp frame
	// context onto every staged task span.
	for _, ev := range evs {
		if ev.Frame != 17 {
			t.Errorf("%s staged with frame %d, want 17", KindName(ev.Kind), ev.Frame)
		}
		if ev.Kind == KindTask && (ev.Scenario != 4 || ev.Quality != 1) {
			t.Errorf("task span missing frame context: %+v", ev)
		}
	}

	// Second commit with no open frame must be a no-op.
	b.Commit(18, 0, 0, OutcomeProcessed, 1, 0, 0, 0)
	if got := rec.FramesCommitted(); got != 1 {
		t.Errorf("commit without open frame committed: frames = %d", got)
	}
}

func TestFrameBuilderDanglingTask(t *testing.T) {
	rec := NewRecorder(64)
	b := NewFrameBuilder(rec, 0)
	b.BeginFrame(0)
	b.BeginTask(1) // never ended: simulates a panic unwinding mid-task
	b.AbortFrame()
	b.Commit(0, -1, 0, OutcomeFailed, 2, 0, 0, 10)

	evs := rec.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot has %d events, want 2", len(evs))
	}
	if evs[0].Kind != KindTask || evs[0].Arg1 != 0 {
		t.Errorf("dangling task not force-closed: %+v", evs[0])
	}
	if evs[1].Outcome != OutcomeFailed {
		t.Errorf("frame outcome = %s, want failed", OutcomeName(evs[1].Outcome))
	}
}

func TestFrameBuilderStagingOverflow(t *testing.T) {
	rec := NewRecorder(256)
	b := NewFrameBuilder(rec, 0)
	b.BeginFrame(0)
	for i := 0; i < 3*maxFrameTasks; i++ {
		b.BeginTask(i)
		b.EndTask(1, 1)
	}
	b.Commit(0, 0, 0, OutcomeProcessed, 1, 0, 0, 0)
	evs := rec.Snapshot()
	if want := maxFrameTasks + maxFrameInstants + 1; len(evs) != want {
		t.Errorf("overflowing frame committed %d events, want capped %d", len(evs), want)
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	rec := NewRecorder(8)
	b := NewFrameBuilder(rec, 0)
	for f := 0; f < 10; f++ {
		b.BeginFrame(f)
		b.BeginTask(0)
		b.EndTask(1, 1)
		b.Commit(f, 0, 0, OutcomeProcessed, 1, 0, 0, 0)
	}
	evs := rec.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot has %d events, want ring size 8", len(evs))
	}
	if got := rec.Events(); got != 20 {
		t.Errorf("Events = %d, want 20 total written", got)
	}
	// Newest event must be the latest frame's root (root-last ordering).
	last := evs[len(evs)-1]
	if last.Kind != KindFrame || last.Frame != 9 {
		t.Errorf("newest event = %+v, want frame 9 root", last)
	}
}

func TestRecorderDisabled(t *testing.T) {
	rec := NewRecorder(16)
	rec.SetEnabled(false)
	b := NewFrameBuilder(rec, 0)
	b.BeginFrame(0)
	b.BeginTask(0)
	b.EndTask(1, 1)
	b.Commit(0, 0, 0, OutcomeProcessed, 1, 0, 0, 0)
	rec.Emit(Event{Kind: KindSkip})
	if got := rec.Events(); got != 0 {
		t.Errorf("disabled recorder wrote %d events", got)
	}
	rec.SetEnabled(true)
	rec.Emit(Event{Kind: KindSkip})
	if got := rec.Events(); got != 1 {
		t.Errorf("re-enabled recorder wrote %d events, want 1", got)
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	var b *FrameBuilder
	var fr *FlightRecorder
	rec.SetEnabled(true)
	rec.Emit(Event{})
	rec.SetMeta(Meta{})
	_ = rec.Meta()
	_ = rec.Now()
	_ = rec.Snapshot()
	_ = rec.Events()
	_ = rec.FramesCommitted()
	b.BeginFrame(0)
	b.BeginTask(0)
	b.EndTask(1, 1)
	b.Suppressed(0)
	b.ScenarioMiss(0, 1)
	b.SetPredicted(0, 1)
	b.AbortFrame()
	b.Commit(0, 0, 0, OutcomeProcessed, 1, 0, 0, 0)
	if b.Open() {
		t.Error("nil builder reports open")
	}
	fr.ObserveFrame(0, 0, true, 1, 2)
	fr.ObservePanic(0, 0)
	fr.ObserveQuarantine(0, 0)
	_ = fr.Flush()
	_ = fr.Dumps()
	_ = fr.Err()
	_ = fr.Recorder()
	_ = fr.Dir()
	fr.SetMeta(Meta{})
	if h := fr.TracezHandler(); h == nil {
		t.Error("nil flight recorder handler is nil")
	}
}

func TestPackBudgetsRoundTrip(t *testing.T) {
	cases := [][]int{
		{},
		{4},
		{2, 3, 3},
		{0, 255, 17, 1, 9, 200, 31, 8},
	}
	for _, in := range cases {
		p, n := PackBudgets(in)
		got := UnpackBudgets(p, n)
		want := in
		if want == nil || len(want) == 0 {
			want = []int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("PackBudgets(%v) round trip = %v", in, got)
		}
	}
	// Clamping and truncation.
	p, n := PackBudgets([]int{-5, 999, 1, 2, 3, 4, 5, 6, 7, 8})
	if n != 8 {
		t.Errorf("packed %d budgets, want 8 max", n)
	}
	got := UnpackBudgets(p, n)
	if got[0] != 0 || got[1] != 255 {
		t.Errorf("clamping failed: %v", got)
	}
}

func TestLabelFallback(t *testing.T) {
	table := []string{"a", "b"}
	if got := label(table, 1, "x"); got != "b" {
		t.Errorf("label(1) = %q", got)
	}
	if got := label(table, 5, "x"); got != "x5" {
		t.Errorf("label(5) = %q, want fallback x5", got)
	}
	if got := label(table, -1, "x"); got != "" {
		t.Errorf("label(-1) = %q, want empty", got)
	}
	if got := itoa(1047); got != "1047" {
		t.Errorf("itoa(1047) = %q", got)
	}
}

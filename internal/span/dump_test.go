package span

import (
	"bytes"
	"strings"
	"testing"
)

var testMeta = Meta{
	Streams:   []string{"s0", "s1"},
	Tasks:     []string{"T0", "T1", "T2"},
	Scenarios: []string{"sc0", "sc1", "sc2"},
	Qualities: []string{"full", "half"},
	Predictor: "test-predictor",
}

// buildRing commits a known mix of frames and instants and returns the
// recorder, along with the expected frame/task/instant counts.
func buildRing() (rec *Recorder, frames, tasksN, instants int) {
	rec = NewRecorder(512)
	rec.SetMeta(testMeta)
	for s := int32(0); s < 2; s++ {
		b := NewFrameBuilder(rec, s)
		for f := 0; f < 4; f++ {
			b.BeginFrame(f)
			for task := 0; task < 3; task++ {
				b.BeginTask(task)
				b.EndTask(float64(task)+0.5, 1)
				b.SetPredicted(task, float64(task)+0.4)
			}
			if f == 2 {
				b.ScenarioMiss(0, 1)
				instants++
			}
			b.Commit(f, 1, 0, OutcomeProcessed, 2, 3.2, 3.0, 6.0)
			frames++
			tasksN += 3
		}
	}
	p0, n := PackBudgets([]int{4, 4})
	p1, _ := PackBudgets([]int{2, 6})
	rec.Emit(Event{Kind: KindRebalance, Stream: -1, Frame: -1, Cores: n, Pack0: p0, Pack1: p1})
	rec.Emit(Event{Kind: KindFault, Stream: 0, Frame: 3, Task: 1, Arg0: float64(FaultSpike)})
	rec.Emit(Event{Kind: KindBreakerTrip, Stream: 0, Frame: -1, Task: 1})
	rec.Emit(Event{Kind: KindRestart, Stream: 1, Frame: 2, Task: -1})
	instants += 4
	return rec, frames, tasksN, instants
}

// TestDumpRoundTrip writes a ring snapshot and parses it back, asserting
// the reader recovers exactly the structure the writer emitted.
func TestDumpRoundTrip(t *testing.T) {
	rec, wantFrames, wantTasks, wantInstants := buildRing()
	var buf bytes.Buffer
	hdr := dumpHeader{Reason: "deadline_miss", Stream: 1, Frame: 3, Detail: 9.5, Coalesced: 2}
	if err := WriteDump(&buf, rec.Meta(), rec.Snapshot(), hdr); err != nil {
		t.Fatal(err)
	}

	d, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "deadline_miss" || d.Stream != 1 || d.Frame != 3 ||
		d.Detail != 9.5 || d.Coalesced != 2 {
		t.Errorf("header lost: %+v", d)
	}
	if d.Predictor != "test-predictor" {
		t.Errorf("predictor metadata lost: %q, want %q", d.Predictor, "test-predictor")
	}
	if len(d.Frames) != wantFrames {
		t.Errorf("frames = %d, want %d", len(d.Frames), wantFrames)
	}
	gotTasks := 0
	for _, f := range d.Frames {
		gotTasks += len(f.Tasks)
		if f.Scenario != "sc1" || f.Quality != "full" || f.Outcome != "processed" {
			t.Errorf("frame context lost: %+v", f)
		}
		if f.PredictedMs != 3.2 || f.ActualMs != 3.0 || f.BudgetMs != 6.0 {
			t.Errorf("frame timing lost: %+v", f)
		}
		for _, task := range f.Tasks {
			if !strings.HasPrefix(task.Name, "T") {
				t.Errorf("task label not resolved: %q", task.Name)
			}
			if task.PredictedMs <= 0 {
				t.Errorf("task %s lost its prediction: %+v", task.Name, task)
			}
		}
	}
	if gotTasks != wantTasks {
		t.Errorf("tasks = %d, want %d", gotTasks, wantTasks)
	}
	if len(d.Instants) != wantInstants {
		t.Errorf("instants = %d, want %d", len(d.Instants), wantInstants)
	}
	if d.OrphanTasks != 0 {
		t.Errorf("orphan tasks = %d, want 0", d.OrphanTasks)
	}
	if d.Processes[0] != "global" || d.Processes[1] != "s0" || d.Processes[2] != "s1" {
		t.Errorf("process table lost: %v", d.Processes)
	}

	// The rebalance instant must carry the unpacked before/after budgets.
	var rebalance *DumpInstant
	for i := range d.Instants {
		if d.Instants[i].Name == "rebalance" {
			rebalance = &d.Instants[i]
		}
	}
	if rebalance == nil {
		t.Fatal("rebalance instant missing")
	}
	before, after := rebalance.Args["before"], rebalance.Args["after"]
	if before == nil || after == nil {
		t.Errorf("rebalance budgets missing: %v", rebalance.Args)
	}
}

func TestReadDumpRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents": [}`,
		"no traceEvents":  `{"displayTimeUnit": "ms"}`,
		"missing ph":      `{"traceEvents": [{"name": "x", "pid": 1, "ts": 0}]}`,
		"unsupported ph":  `{"traceEvents": [{"name": "x", "ph": "B", "pid": 1, "ts": 0}]}`,
		"empty span name": `{"traceEvents": [{"name": "", "ph": "X", "cat": "frame", "pid": 1, "ts": 0}]}`,
		"negative ts":     `{"traceEvents": [{"name": "f", "ph": "X", "cat": "frame", "pid": 1, "ts": -4}]}`,
		"unknown cat":     `{"traceEvents": [{"name": "f", "ph": "X", "cat": "mystery", "pid": 1, "ts": 0}]}`,
		"unnamed instant": `{"traceEvents": [{"name": "", "ph": "i", "pid": 1, "ts": 0}]}`,
	}
	for name, in := range cases {
		if _, err := ReadDump(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadDump accepted malformed input", name)
		}
	}
}

func TestReadDumpCountsOrphans(t *testing.T) {
	in := `{"traceEvents": [
		{"name": "frame 0", "ph": "X", "cat": "frame", "pid": 1, "ts": 0, "dur": 5, "args": {"frame": 0}},
		{"name": "T0", "ph": "X", "cat": "task", "pid": 1, "tid": 1, "ts": 1, "dur": 2, "args": {"frame": 0}},
		{"name": "T1", "ph": "X", "cat": "task", "pid": 1, "tid": 1, "ts": 9, "dur": 2, "args": {"frame": 7}},
		{"name": "T2", "ph": "X", "cat": "task", "pid": 2, "tid": 1, "ts": 9, "dur": 2, "args": {"frame": 0}}
	]}`
	d, err := ReadDump(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Frames) != 1 || len(d.Frames[0].Tasks) != 1 {
		t.Errorf("frame association wrong: %+v", d.Frames)
	}
	if d.OrphanTasks != 2 {
		t.Errorf("orphans = %d, want 2 (wrong frame + wrong pid)", d.OrphanTasks)
	}
}

// FuzzReadDump pins the parsing contract: arbitrary input must come back as
// (*Dump, nil) or (nil, error) — never a panic, and never both nil.
func FuzzReadDump(f *testing.F) {
	rec, _, _, _ := buildRing()
	var buf bytes.Buffer
	if err := WriteDump(&buf, rec.Meta(), rec.Snapshot(), dumpHeader{Reason: "manual"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"traceEvents": []}`))
	f.Add([]byte(`{"traceEvents": [{"name": "f", "ph": "X", "cat": "frame", "pid": 1, "ts": 1e308, "dur": 1e308}]}`))
	f.Add([]byte(`{"otherData": {"reason": 42}, "traceEvents": null}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDump(bytes.NewReader(data))
		if d == nil && err == nil {
			t.Fatal("ReadDump returned neither a dump nor an error")
		}
		if err != nil {
			return
		}
		// A parsed dump must satisfy the reader's ordering invariants.
		for i := 1; i < len(d.Frames); i++ {
			if d.Frames[i].StartUs < d.Frames[i-1].StartUs {
				t.Fatal("frames not sorted by start time")
			}
		}
		for i := 1; i < len(d.Instants); i++ {
			if d.Instants[i].TsUs < d.Instants[i-1].TsUs {
				t.Fatal("instants not sorted by time")
			}
		}
	})
}

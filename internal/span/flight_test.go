package span

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// commitFrames pushes n trivially-valid frames through a builder.
func commitFrames(b *FrameBuilder, start, n int) {
	for i := 0; i < n; i++ {
		b.BeginFrame(start + i)
		b.BeginTask(0)
		b.EndTask(2, 1)
		b.SetPredicted(0, 1.8)
		b.Commit(start+i, 1, 0, OutcomeProcessed, 2, 2.0, 2.1, 5.0)
	}
}

func newTestFlight(t *testing.T, cfg TriggerConfig) *FlightRecorder {
	t.Helper()
	fr, err := NewFlightRecorder(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr.SetMeta(Meta{
		Streams:   []string{"s0", "s1"},
		Tasks:     []string{"T0", "T1"},
		Scenarios: []string{"sc0", "sc1"},
		Qualities: []string{"full", "half"},
	})
	return fr
}

func TestDeadlineMissTriggersDumpAfterWindow(t *testing.T) {
	cfg := DefaultTriggers()
	cfg.AfterFrames = 3
	fr := newTestFlight(t, cfg)
	b := NewFrameBuilder(fr.Recorder(), 0)

	commitFrames(b, 0, 5)
	fr.ObserveFrame(0, 4, true, 2.0, 9.0) // deadline miss arms the dump

	if len(fr.Dumps()) != 0 {
		t.Fatal("dump written before the after-window elapsed")
	}
	commitFrames(b, 5, 3) // after-window frames
	dumps := fr.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps after window, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Reason != "deadline_miss" || d.Stream != 0 || d.Frame != 4 {
		t.Errorf("dump info wrong: %+v", d)
	}
	if d.Frames < 8 {
		t.Errorf("dump recorded %d frames, want >= 8 (5 before + 3 after)", d.Frames)
	}

	// The file must parse as a valid trace with the trigger instant inside.
	f, err := os.Open(filepath.Join(fr.Dir(), d.File))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := ReadDump(f)
	if err != nil {
		t.Fatalf("written dump does not parse: %v", err)
	}
	if parsed.Reason != "deadline_miss" {
		t.Errorf("parsed reason = %q", parsed.Reason)
	}
	found := false
	for _, in := range parsed.Instants {
		if strings.HasPrefix(in.Name, "trigger:") {
			found = true
		}
	}
	if !found {
		t.Error("dump carries no trigger instant")
	}
}

func TestRelErrTrigger(t *testing.T) {
	cfg := DefaultTriggers()
	cfg.AfterFrames = 1
	cfg.RelErr = 0.5
	fr := newTestFlight(t, cfg)
	b := NewFrameBuilder(fr.Recorder(), 0)

	commitFrames(b, 0, 1)
	fr.ObserveFrame(0, 0, false, 10.0, 9.0) // rel err 0.11: below threshold
	commitFrames(b, 1, 2)
	if len(fr.Dumps()) != 0 {
		t.Fatal("sub-threshold prediction error triggered a dump")
	}
	fr.ObserveFrame(0, 3, false, 20.0, 8.0) // rel err 1.5: fires
	commitFrames(b, 3, 1)
	dumps := fr.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "prediction_relerr" {
		t.Fatalf("dumps = %+v, want one prediction_relerr", dumps)
	}
	if dumps[0].Detail < 1.4 || dumps[0].Detail > 1.6 {
		t.Errorf("detail = %v, want the relative error 1.5", dumps[0].Detail)
	}
}

func TestTriggerCoalescingAndCooldown(t *testing.T) {
	cfg := DefaultTriggers()
	cfg.AfterFrames = 4
	cfg.CooldownFrames = 100
	fr := newTestFlight(t, cfg)
	b := NewFrameBuilder(fr.Recorder(), 0)

	commitFrames(b, 0, 2)
	fr.ObservePanic(0, 1)
	fr.ObservePanic(0, 2) // while pending: coalesced
	fr.ObserveQuarantine(1, -1)
	commitFrames(b, 2, 4)

	dumps := fr.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1 (coalesced)", len(dumps))
	}
	if dumps[0].Reason != "task_panic" || dumps[0].Coalesced != 2 {
		t.Errorf("dump = %+v, want task_panic with 2 coalesced", dumps[0])
	}

	// Within the cooldown window nothing re-arms.
	fr.ObservePanic(0, 6)
	commitFrames(b, 6, 6)
	if got := len(fr.Dumps()); got != 1 {
		t.Errorf("cooldown violated: %d dumps", got)
	}
}

func TestMaxDumpsCap(t *testing.T) {
	cfg := DefaultTriggers()
	cfg.AfterFrames = 1
	cfg.CooldownFrames = 1
	cfg.MaxDumps = 2
	fr := newTestFlight(t, cfg)
	b := NewFrameBuilder(fr.Recorder(), 0)

	for i := 0; i < 5; i++ {
		commitFrames(b, i*4, 2)
		fr.ObservePanic(0, i*4)
		commitFrames(b, i*4+2, 2)
	}
	if got := len(fr.Dumps()); got != 2 {
		t.Errorf("MaxDumps=2 but wrote %d dumps", got)
	}
}

func TestFlushWritesPendingDump(t *testing.T) {
	cfg := DefaultTriggers()
	cfg.AfterFrames = 1000 // window will never elapse in this test
	fr := newTestFlight(t, cfg)
	b := NewFrameBuilder(fr.Recorder(), 0)

	commitFrames(b, 0, 3)
	fr.ObserveQuarantine(0, -1)
	if len(fr.Dumps()) != 0 {
		t.Fatal("dump written before flush")
	}
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}
	dumps := fr.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "quarantine" {
		t.Fatalf("flush dumps = %+v", dumps)
	}
	// Flush with nothing pending is a clean no-op.
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(fr.Dumps()) != 1 {
		t.Error("idle flush wrote a dump")
	}
}

func TestDisarmedTriggersDoNotFire(t *testing.T) {
	cfg := TriggerConfig{AfterFrames: 1} // nothing armed
	fr := newTestFlight(t, cfg)
	b := NewFrameBuilder(fr.Recorder(), 0)
	commitFrames(b, 0, 2)
	fr.ObserveFrame(0, 0, true, 1, 100)
	fr.ObservePanic(0, 1)
	fr.ObserveQuarantine(0, -1)
	commitFrames(b, 2, 2)
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(fr.Dumps()); got != 0 {
		t.Errorf("disarmed recorder wrote %d dumps", got)
	}
}

// Package span is the per-frame span tracing layer behind the serving
// stack's flight recorder: an always-on, fixed-size, lock-light ring of
// fixed-size event records (frame root spans, child task spans with
// predicted-vs-actual times, and instant events for rebalances,
// degradations, faults, restarts and quarantines), plus a trigger engine
// that snapshots the ring into a Chrome trace-event / Perfetto-loadable
// JSON dump when something goes wrong (deadline miss, task panic,
// quarantine, prediction error past a threshold).
//
// Aggregate telemetry (internal/metrics) answers "the p99 slipped"; this
// package answers "what happened inside frame 4711": which task ran where,
// for how long, under which scenario and quality rung, against which
// prediction — the causal record the paper's per-frame resource accounting
// (Table 2b, Eq. 1-3) implies but counters cannot carry.
//
// Recording discipline: the steady-state frame path allocates nothing.
// Events are fixed-size value records (no strings, no maps — small integer
// ids resolved against a Meta label table only at dump time), staged in a
// per-engine FrameBuilder (single-writer, fixed arrays) and committed to
// the shared ring under one short mutex hold per frame. Every method is
// nil-safe so callers carry no tracing-enabled branches.
package span

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one ring event.
type Kind uint8

// Event kinds. KindFrame and KindTask are complete spans (StartNs+DurNs);
// everything else is an instant event.
const (
	// KindFrame is a frame root span: one per frame that entered the
	// pipeline. Arg0 = predicted total ms, Arg1 = actual (modeled) latency
	// ms, Arg2 = budget ms; Outcome classifies how the frame ended.
	KindFrame Kind = iota
	// KindTask is a child task span within a frame. Arg0 = predicted ms
	// (0 until the predictor scores the frame), Arg1 = actual modeled ms,
	// Cores = stripe count; Scenario/Quality are stamped at frame commit.
	KindTask
	// KindSuppressed marks a task withheld this frame by the quality level
	// or an open circuit.
	KindSuppressed
	// KindScenarioMiss marks a frame whose executed scenario differed from
	// the Markov state table's forecast. Arg0 = predicted scenario index,
	// Scenario = the scenario that actually ran.
	KindScenarioMiss
	// KindSkip marks a frame shed by the admission controller.
	KindSkip
	// KindAbandon marks a frame given up past the wall-clock watchdog.
	KindAbandon
	// KindStall marks an engine declared stalled (poisoned) past StallMs.
	KindStall
	// KindFault is an injected fault (internal/fault). Arg0 = fault code
	// (see FaultPanic..FaultCorrupt).
	KindFault
	// KindBreakerTrip marks a per-task circuit breaker opening.
	KindBreakerTrip
	// KindRebalance is a cross-stream core re-division. Pack0/Pack1 carry
	// the before/after per-stream core allocations (see PackBudgets);
	// Cores = how many streams are packed.
	KindRebalance
	// KindDegrade is a quality-ladder transition. Arg0 = previous rung,
	// Quality = new rung.
	KindDegrade
	// KindRestart marks a supervisor restart of a stream's serving loop.
	KindRestart
	// KindQuarantine marks a stream retired after exhausting its restarts.
	KindQuarantine
	// KindTrigger records a flight-recorder trigger firing. Outcome = the
	// TriggerReason, Arg0 = the reason-specific detail.
	KindTrigger
	// KindPromote is a predictor-promotion state-machine transition
	// (internal/promote). Arg0 = previous state, Outcome = new state (see
	// PromoteStateName), Arg1 = the challenger's shadow-roster slot.
	KindPromote
)

// KindName returns a stable lowercase label for the kind.
func KindName(k Kind) string {
	switch k {
	case KindFrame:
		return "frame"
	case KindTask:
		return "task"
	case KindSuppressed:
		return "suppressed"
	case KindScenarioMiss:
		return "scenario_miss"
	case KindSkip:
		return "skip"
	case KindAbandon:
		return "abandon"
	case KindStall:
		return "stall"
	case KindFault:
		return "fault"
	case KindBreakerTrip:
		return "breaker_trip"
	case KindRebalance:
		return "rebalance"
	case KindDegrade:
		return "degrade"
	case KindRestart:
		return "restart"
	case KindQuarantine:
		return "quarantine"
	case KindTrigger:
		return "trigger"
	case KindPromote:
		return "promote"
	}
	return "unknown"
}

// Predictor-promotion states (Event.Outcome / Arg0 on KindPromote). The
// promotion controller's State mirrors these values so span events, dump
// metadata and /healthz all speak the same enum.
const (
	PromoteShadow = iota
	PromoteCanary
	PromotePromoted
	PromoteRolledBack
	PromoteQuarantined
)

// PromoteStateName renders a promotion state.
func PromoteStateName(s int32) string {
	switch s {
	case PromoteShadow:
		return "shadow"
	case PromoteCanary:
		return "canary"
	case PromotePromoted:
		return "promoted"
	case PromoteRolledBack:
		return "rolled-back"
	case PromoteQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// Frame outcomes (Event.Outcome on KindFrame).
const (
	OutcomeProcessed = iota
	OutcomeFailed
	OutcomeAbandoned
)

// OutcomeName renders a frame outcome.
func OutcomeName(o int32) string {
	switch o {
	case OutcomeProcessed:
		return "processed"
	case OutcomeFailed:
		return "failed"
	case OutcomeAbandoned:
		return "abandoned"
	}
	return "unknown"
}

// Fault codes (Event.Arg0 on KindFault), matching internal/fault's classes.
const (
	FaultPanic = iota
	FaultHang
	FaultSpike
	FaultCorrupt
)

// FaultName renders a fault code.
func FaultName(c int) string {
	switch c {
	case FaultPanic:
		return "panic"
	case FaultHang:
		return "hang"
	case FaultSpike:
		return "spike"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// Event is one fixed-size ring record. It carries no pointers so recording
// never allocates; integer ids resolve against the recorder's Meta tables
// only when a dump is rendered. Unused fields are zero; Task and Scenario
// use -1 for "not applicable".
type Event struct {
	Kind     Kind
	Stream   int32 // stream index, -1 for global events
	Frame    int32 // frame index within the stream
	Task     int32 // task id (tasks.IndexOf order), -1 if none
	Scenario int32 // flowgraph scenario index 0..7, -1 if unknown
	Quality  int32 // degradation rung
	Cores    int32 // stripes (task), core budget (frame), count (rebalance)
	Outcome  int32 // frame outcome or trigger reason
	StartNs  int64 // ns since the recorder epoch
	DurNs    int64 // span duration (0 for instants)
	Arg0     float64
	Arg1     float64
	Arg2     float64
	Pack0    uint64 // packed budgets (rebalance: before)
	Pack1    uint64 // packed budgets (rebalance: after)
}

// Meta is the label table used to render integer event ids at dump time.
// Missing entries fall back to generic "<prefix><id>" labels, so recording
// never depends on the tables being complete.
type Meta struct {
	Streams   []string
	Tasks     []string
	Scenarios []string
	Qualities []string
	// Predictor names the deployed prediction backend; it is stamped into
	// dump metadata so a recorded incident can be tied back to the
	// predictor that was steering the scheduler when it happened.
	Predictor string
	// Promotion is the promotion controller's current position, e.g.
	// "shadow" or "canary:quantile-p90" — empty when no controller runs.
	// Updated in place on every transition via SetPromotion.
	Promotion string
}

func label(table []string, i int, prefix string) string {
	if i >= 0 && i < len(table) {
		return table[i]
	}
	if i < 0 {
		return ""
	}
	return prefix + itoa(i)
}

// itoa is a tiny strconv.Itoa for small non-negative ints (label fallback
// only — never on the recording path).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// PackBudgets packs up to 8 per-stream core budgets (clamped to 0..255)
// into one uint64, byte per stream, so a rebalance instant's before and
// after allocations each fit one packed word of a fixed-size Event.
// Returns the packed word and how many budgets fit.
func PackBudgets(budgets []int) (p uint64, n int32) {
	for i, b := range budgets {
		if i >= 8 {
			break
		}
		if b < 0 {
			b = 0
		}
		if b > 255 {
			b = 255
		}
		p |= uint64(b) << (8 * uint(i))
		n++
	}
	return p, n
}

// UnpackBudgets reverses PackBudgets.
func UnpackBudgets(p uint64, n int32) []int {
	if n < 0 {
		n = 0
	}
	if n > 8 {
		n = 8
	}
	out := make([]int, n)
	for i := int32(0); i < n; i++ {
		out[i] = int((p >> (8 * uint(i))) & 0xff)
	}
	return out
}

// Recorder is the always-on, fixed-size span ring. Writers from any
// goroutine append under one short mutex hold; the ring never grows, so a
// recorder's memory footprint is fixed at construction. All methods are
// nil-safe.
type Recorder struct {
	epoch   time.Time
	enabled atomic.Bool

	mu     sync.Mutex
	ring   []Event
	head   uint64 // total events ever written
	frames uint64 // total frame spans ever committed

	// onFrame, when set (before the first commit), is invoked after every
	// frame commit with the total frame count — the flight recorder's
	// after-window clock. It runs outside the ring mutex on the committing
	// goroutine and must be cheap on the no-trigger path.
	onFrame func(frames uint64)

	metaMu sync.RWMutex
	meta   Meta
}

// DefaultRingEvents is the default ring capacity: at ~11 events per frame
// (root + up to 9 tasks + an instant) it retains on the order of 700
// frames of history.
const DefaultRingEvents = 8192

// NewRecorder builds an enabled recorder with a fixed ring of size events
// (0 or negative = DefaultRingEvents).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingEvents
	}
	r := &Recorder{epoch: time.Now(), ring: make([]Event, size)}
	r.enabled.Store(true)
	return r
}

// SetEnabled switches recording on or off. Disabled recording is a no-op
// on every path (builders stage nothing, Emit drops).
func (r *Recorder) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether the recorder accepts events.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// SetMeta installs the label tables used when rendering dumps.
func (r *Recorder) SetMeta(m Meta) {
	if r == nil {
		return
	}
	r.metaMu.Lock()
	r.meta = m
	r.metaMu.Unlock()
}

// SetPromotion updates only the promotion label of the current meta —
// the promotion controller calls it on every state transition so dumps
// written later carry the position at dump time. Nil-safe.
func (r *Recorder) SetPromotion(label string) {
	if r == nil {
		return
	}
	r.metaMu.Lock()
	r.meta.Promotion = label
	r.metaMu.Unlock()
}

// Meta returns the current label tables.
func (r *Recorder) Meta() Meta {
	if r == nil {
		return Meta{}
	}
	r.metaMu.RLock()
	defer r.metaMu.RUnlock()
	return r.meta
}

// Now returns nanoseconds since the recorder epoch (the timestamp base of
// every event). Allocation-free.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Emit appends one instant event to the ring. A zero StartNs is stamped
// with the current time. Safe from any goroutine; allocation-free.
func (r *Recorder) Emit(ev Event) {
	if r == nil || !r.enabled.Load() {
		return
	}
	if ev.StartNs == 0 {
		ev.StartNs = r.Now()
	}
	r.mu.Lock()
	r.push(ev)
	r.mu.Unlock()
}

// push appends under r.mu.
func (r *Recorder) push(ev Event) {
	r.ring[int(r.head%uint64(len(r.ring)))] = ev
	r.head++
}

// commitFrame appends a frame's staged events followed by its root span in
// one critical section, counts the frame, and fires the frame hook. The
// root goes last so a ring wraparound truncates a frame's oldest task
// spans before ever orphaning them from their root.
func (r *Recorder) commitFrame(staged []Event, root Event) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.mu.Lock()
	for i := range staged {
		r.push(staged[i])
	}
	r.push(root)
	r.frames++
	frames := r.frames
	hook := r.onFrame
	r.mu.Unlock()
	if hook != nil {
		hook(frames)
	}
}

// FramesCommitted returns how many frame spans have ever been committed.
func (r *Recorder) FramesCommitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frames
}

// Events returns how many events have ever been written (including those
// already overwritten by the ring).
func (r *Recorder) Events() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// Snapshot copies the ring's current contents, oldest first. It allocates
// and is meant for the dump path only.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.head
	if n > uint64(len(r.ring)) {
		n = uint64(len(r.ring))
	}
	out := make([]Event, n)
	start := r.head - n
	for i := uint64(0); i < n; i++ {
		out[i] = r.ring[int((start+i)%uint64(len(r.ring)))]
	}
	return out
}

// Per-frame staging capacities: the flow graph runs at most 10 tasks per
// frame, and instants (suppressions, scenario misses) are few.
const (
	maxFrameTasks    = 12
	maxFrameInstants = 8
)

// FrameBuilder stages one engine's current frame before it is committed to
// the ring as an atomic group. It is single-writer: exactly one goroutine
// (the one executing Engine.Process, then the stream's serving goroutine)
// touches it at a time, which the serving layer guarantees by giving every
// engine its own builder and abandoning a builder together with a stalled
// engine. All methods are nil-safe and allocation-free.
type FrameBuilder struct {
	rec    *Recorder
	stream int32

	open    bool
	frame   int32
	startNs int64
	cur     int // staged index of the in-flight task span, -1 if none
	n       int
	staged  [maxFrameTasks + maxFrameInstants]Event
}

// NewFrameBuilder builds a staging buffer bound to one stream id.
func NewFrameBuilder(rec *Recorder, stream int32) *FrameBuilder {
	return &FrameBuilder{rec: rec, stream: stream, cur: -1}
}

func (b *FrameBuilder) active() bool {
	return b != nil && b.rec != nil && b.rec.enabled.Load()
}

// BeginFrame opens a new frame, discarding any uncommitted previous one.
func (b *FrameBuilder) BeginFrame(frameIdx int) {
	if !b.active() {
		return
	}
	b.open = true
	b.frame = int32(frameIdx)
	b.startNs = b.rec.Now()
	b.cur = -1
	b.n = 0
}

// stage appends one event to the frame group, stamping stream and frame.
// Returns the staged index, or -1 when the group is full (the event is
// dropped — a frame can only overflow its fixed budget if the pipeline
// grows beyond the staging capacity, which the tests pin).
func (b *FrameBuilder) stage(ev Event) int {
	if b.n >= len(b.staged) {
		return -1
	}
	ev.Stream = b.stream
	ev.Frame = b.frame
	b.staged[b.n] = ev
	b.n++
	return b.n - 1
}

// BeginTask opens a task span within the current frame.
func (b *FrameBuilder) BeginTask(task int) {
	if !b.active() || !b.open {
		return
	}
	b.closeTask(0) // a dangling task span means the previous one never ended
	b.cur = b.stage(Event{Kind: KindTask, Task: int32(task), StartNs: b.rec.Now()})
}

// EndTask closes the in-flight task span with its modeled execution time
// and stripe count. The wall-clock duration is taken from the recorder
// clock; the predicted time arrives later via SetPredicted.
func (b *FrameBuilder) EndTask(actualMs float64, stripes int) {
	if !b.active() || b.cur < 0 {
		return
	}
	ev := &b.staged[b.cur]
	ev.DurNs = b.rec.Now() - ev.StartNs
	ev.Arg1 = actualMs
	ev.Cores = int32(stripes)
	b.cur = -1
}

// closeTask force-closes a dangling task span (panic unwind or a missing
// EndTask) with the given modeled time.
func (b *FrameBuilder) closeTask(actualMs float64) {
	if b.cur < 0 {
		return
	}
	ev := &b.staged[b.cur]
	ev.DurNs = b.rec.Now() - ev.StartNs
	ev.Arg1 = actualMs
	b.cur = -1
}

// AbortFrame closes any in-flight task span after a panic unwound the
// frame; the frame stays open so the serving layer can commit it with a
// failure outcome.
func (b *FrameBuilder) AbortFrame() {
	if !b.active() || !b.open {
		return
	}
	b.closeTask(0)
}

// Suppressed stages an instant marking a task withheld this frame.
func (b *FrameBuilder) Suppressed(task int) {
	if !b.active() || !b.open {
		return
	}
	b.stage(Event{Kind: KindSuppressed, Task: int32(task), StartNs: b.rec.Now()})
}

// ScenarioMiss stages an instant marking a Markov scenario misprediction
// for the current frame.
func (b *FrameBuilder) ScenarioMiss(predicted, actual int) {
	if !b.active() || !b.open {
		return
	}
	b.stage(Event{Kind: KindScenarioMiss, Scenario: int32(actual), Arg0: float64(predicted), StartNs: b.rec.Now()})
}

// SetPredicted fills the predicted execution time into the staged span of
// the given task (the predictor scores a frame only after it executed, so
// prediction data arrives between EndTask and Commit).
func (b *FrameBuilder) SetPredicted(task int, predictedMs float64) {
	if !b.active() || !b.open {
		return
	}
	for i := 0; i < b.n; i++ {
		if b.staged[i].Kind == KindTask && b.staged[i].Task == int32(task) {
			b.staged[i].Arg0 = predictedMs
			return
		}
	}
}

// Open reports whether a frame is currently staged.
func (b *FrameBuilder) Open() bool { return b != nil && b.open }

// Commit closes the staged frame and appends the whole group (task spans,
// instants, then the frame root) to the ring atomically. frameIdx is the
// serving layer's frame index (it overrides the engine-local index staged
// at BeginFrame, which resets when an engine is rebuilt); scenario and
// quality are stamped onto every staged task span so each task carries its
// frame context. No-op when no frame is open.
func (b *FrameBuilder) Commit(frameIdx, scenario, quality, outcome, cores int, predictedMs, actualMs, budgetMs float64) {
	if !b.active() || !b.open {
		return
	}
	b.closeTask(0)
	for i := 0; i < b.n; i++ {
		b.staged[i].Frame = int32(frameIdx)
		if b.staged[i].Kind == KindTask {
			b.staged[i].Scenario = int32(scenario)
			b.staged[i].Quality = int32(quality)
		}
	}
	root := Event{
		Kind:     KindFrame,
		Stream:   b.stream,
		Frame:    int32(frameIdx),
		Task:     -1,
		Scenario: int32(scenario),
		Quality:  int32(quality),
		Cores:    int32(cores),
		Outcome:  int32(outcome),
		StartNs:  b.startNs,
		DurNs:    b.rec.Now() - b.startNs,
		Arg0:     predictedMs,
		Arg1:     actualMs,
		Arg2:     budgetMs,
	}
	b.rec.commitFrame(b.staged[:b.n], root)
	b.open = false
	b.n = 0
	b.cur = -1
}

package span

import (
	"fmt"
	"html/template"
	"net/http"
	"os"
	"path/filepath"
)

// TracezHandler serves /debug/tracez: an HTML index of the flight-recorder
// dumps written so far, and — with ?dump=<file> — an inline per-frame
// waterfall of one dump. Only files the recorder itself wrote are served;
// the query parameter is matched against the known dump list, never used
// as a path.
func (fr *FlightRecorder) TracezHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		if name := r.URL.Query().Get("dump"); name != "" {
			fr.serveDump(w, name)
			return
		}
		fr.serveIndex(w)
	})
}

var indexTmpl = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>tracez</title><style>
body{font-family:monospace;margin:2em}
table{border-collapse:collapse}
td,th{border:1px solid #ccc;padding:4px 10px;text-align:left}
th{background:#eee}
</style></head><body>
<h1>flight-recorder dumps</h1>
<p>dir: {{.Dir}} &middot; {{len .Dumps}} dump(s). Load a file in
<a href="https://ui.perfetto.dev">ui.perfetto.dev</a> for the full timeline,
or click through for an inline waterfall.</p>
<table><tr><th>file</th><th>reason</th><th>stream</th><th>frame</th><th>detail</th><th>frames</th><th>events</th><th>coalesced</th><th>written</th></tr>
{{range .Dumps}}<tr>
<td><a href="?dump={{.File}}">{{.File}}</a></td>
<td>{{.Reason}}</td><td>{{.Stream}}</td><td>{{.Frame}}</td>
<td>{{printf "%.3f" .Detail}}</td><td>{{.Frames}}</td><td>{{.Events}}</td>
<td>{{.Coalesced}}</td><td>{{.WrittenAt.Format "15:04:05.000"}}</td>
</tr>{{end}}
</table></body></html>
`))

var dumpTmpl = template.Must(template.New("dump").Parse(`<!doctype html>
<html><head><title>tracez: {{.File}}</title><style>
body{font-family:monospace;margin:2em}
.frame{margin:1.2em 0;border-left:3px solid #888;padding-left:1em}
.frame.missed{border-color:#c33}
.bar{display:inline-block;height:10px;background:#48a}
.bar.task{background:#8b4}
.lane{white-space:nowrap}
.lbl{display:inline-block;width:11em}
.num{color:#666}
</style></head><body>
<p><a href="?">&larr; all dumps</a></p>
<h1>{{.File}}</h1>
<p>trigger: <b>{{.Dump.Reason}}</b> stream {{.Dump.Stream}} frame {{.Dump.Frame}}
(detail {{printf "%.3f" .Dump.Detail}}, {{.Dump.Coalesced}} coalesced)
&middot; {{len .Dump.Frames}} frames, {{len .Dump.Instants}} instants,
{{.Dump.OrphanTasks}} orphan task spans</p>
{{range .Frames}}
<div class="frame{{if .Missed}} missed{{end}}">
<b>{{.F.Process}}</b> frame {{.F.Frame}} &mdash; {{.F.Outcome}},
scenario {{.F.Scenario}}, quality {{.F.Quality}}, {{.F.Cores}} cores,
pred {{printf "%.2f" .F.PredictedMs}}ms / actual {{printf "%.2f" .F.ActualMs}}ms
/ budget {{printf "%.2f" .F.BudgetMs}}ms{{if .Missed}} <b>MISS</b>{{end}}<br>
{{range .Lanes}}<span class="lane"><span class="lbl">{{.Name}}</span><span style="margin-left:{{.OffPx}}px" class="bar task" title="{{.Title}}">&nbsp;</span> <span class="num">{{.Title}}</span></span><br>{{end}}
</div>
{{end}}
</body></html>
`))

type tracezLane struct {
	Name  string
	OffPx int
	Title string
}

type tracezFrame struct {
	F      DumpFrame
	Missed bool
	Lanes  []tracezLane
}

func (fr *FlightRecorder) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := indexTmpl.Execute(w, struct {
		Dir   string
		Dumps []DumpInfo
	}{fr.dir, fr.Dumps()})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (fr *FlightRecorder) serveDump(w http.ResponseWriter, name string) {
	var info *DumpInfo
	for _, d := range fr.Dumps() {
		if d.File == name {
			info = &d
			break
		}
	}
	if info == nil {
		http.Error(w, "unknown dump", http.StatusNotFound)
		return
	}
	f, err := os.Open(filepath.Join(fr.dir, filepath.Base(info.File)))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	d, err := ReadDump(f)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse dump: %v", err), http.StatusInternalServerError)
		return
	}

	// Render at a fixed scale: 20px per millisecond of frame-relative
	// offset, bar width folded into the offset margin (the bar itself is a
	// fixed-height marker; the numbers carry the precision).
	frames := make([]tracezFrame, 0, len(d.Frames))
	for _, df := range d.Frames {
		tf := tracezFrame{F: df, Missed: df.BudgetMs > 0 && df.ActualMs > df.BudgetMs}
		for _, t := range df.Tasks {
			off := int((t.StartUs - df.StartUs) / 1e3 * 20)
			if off < 0 {
				off = 0
			}
			if off > 600 {
				off = 600
			}
			tf.Lanes = append(tf.Lanes, tracezLane{
				Name:  t.Name,
				OffPx: off,
				Title: fmt.Sprintf("pred %.2fms actual %.2fms x%d", t.PredictedMs, t.ActualMs, t.Stripes),
			})
		}
		frames = append(frames, tf)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err = dumpTmpl.Execute(w, struct {
		File   string
		Dump   *Dump
		Frames []tracezFrame
	}{info.File, d, frames})
	if err != nil && w.Header().Get("Content-Type") != "" {
		// Template errors mid-stream can't change the status; nothing to do.
		_ = err
	}
}

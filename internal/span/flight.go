package span

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// TriggerReason classifies why a flight-recorder dump was taken
// (Event.Outcome on KindTrigger instants).
type TriggerReason int32

// Trigger reasons.
const (
	TriggerDeadlineMiss TriggerReason = iota
	TriggerRelErr
	TriggerTaskPanic
	TriggerQuarantine
	TriggerManual
)

// ReasonName renders a trigger reason.
func ReasonName(r TriggerReason) string {
	switch r {
	case TriggerDeadlineMiss:
		return "deadline_miss"
	case TriggerRelErr:
		return "prediction_relerr"
	case TriggerTaskPanic:
		return "task_panic"
	case TriggerQuarantine:
		return "quarantine"
	case TriggerManual:
		return "manual"
	}
	return "unknown"
}

// TriggerConfig tunes what arms a flight-recorder dump and how much
// post-trigger history is captured before the ring is snapshotted.
type TriggerConfig struct {
	// RingEvents sizes the underlying ring (0 = DefaultRingEvents).
	RingEvents int
	// DeadlineMiss arms the deadline-budget-miss trigger.
	DeadlineMiss bool
	// RelErr arms the prediction relative-error trigger when > 0:
	// |predicted-actual|/actual past this fires a dump.
	RelErr float64
	// TaskPanic arms the task-panic trigger.
	TaskPanic bool
	// Quarantine arms the stream-quarantine trigger.
	Quarantine bool
	// AfterFrames is how many more frames (across all streams) are recorded
	// after a trigger before the ring is snapshotted (0 = 12).
	AfterFrames int
	// CooldownFrames suppresses re-triggering for this many frames after a
	// dump is armed (0 = 128); triggers inside the window are coalesced
	// into the pending dump.
	CooldownFrames int
	// MaxDumps caps dumps per recorder lifetime (0 = 16).
	MaxDumps int
}

// DefaultTriggers arms every trigger with the default windows: the
// configuration `triplec serve -trace-dir` and the chaos harness use.
func DefaultTriggers() TriggerConfig {
	return TriggerConfig{
		DeadlineMiss: true,
		RelErr:       0.75,
		TaskPanic:    true,
		Quarantine:   true,
	}
}

func (c *TriggerConfig) normalize() {
	if c.RingEvents <= 0 {
		c.RingEvents = DefaultRingEvents
	}
	if c.AfterFrames <= 0 {
		c.AfterFrames = 12
	}
	if c.CooldownFrames <= 0 {
		c.CooldownFrames = 128
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 16
	}
}

// DumpInfo describes one written flight-recorder dump.
type DumpInfo struct {
	File      string    `json:"file"`
	Reason    string    `json:"reason"`
	Stream    int       `json:"stream"`
	Frame     int       `json:"frame"`
	Detail    float64   `json:"detail"`
	Events    int       `json:"events"`
	Frames    int       `json:"frames"`
	Coalesced int       `json:"coalesced"`
	WrittenAt time.Time `json:"written_at"`
}

type pendingDump struct {
	reason    TriggerReason
	stream    int32
	frame     int32
	detail    float64
	dueFrame  uint64
	coalesced int
}

// FlightRecorder couples a span Recorder to a trigger engine: frames keep
// streaming into the always-on ring, and when an armed condition fires the
// recorder waits AfterFrames more committed frames, then snapshots the
// ring into a Chrome trace-event JSON dump under its directory. Nil-safe
// throughout; trigger observation is allocation-free on the no-fire path.
type FlightRecorder struct {
	rec *Recorder
	dir string
	cfg TriggerConfig

	armed atomic.Bool // a pending dump exists (fast path for frame hook)

	mu        sync.Mutex
	pending   *pendingDump
	lastArmed uint64 // frames count when the last dump was armed
	seq       int
	dumps     []DumpInfo
	writeErr  error
}

// NewFlightRecorder builds a flight recorder writing dumps into dir
// (created if missing) with its own ring recorder.
func NewFlightRecorder(dir string, cfg TriggerConfig) (*FlightRecorder, error) {
	if dir == "" {
		return nil, fmt.Errorf("span: flight recorder needs a dump directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("span: create dump dir: %w", err)
	}
	cfg.normalize()
	fr := &FlightRecorder{rec: NewRecorder(cfg.RingEvents), dir: dir, cfg: cfg}
	fr.rec.onFrame = fr.frameCommitted
	return fr, nil
}

// Recorder returns the underlying span ring (never nil on a non-nil
// flight recorder).
func (fr *FlightRecorder) Recorder() *Recorder {
	if fr == nil {
		return nil
	}
	return fr.rec
}

// Dir returns the dump directory.
func (fr *FlightRecorder) Dir() string {
	if fr == nil {
		return ""
	}
	return fr.dir
}

// SetMeta installs the label tables on the underlying recorder.
func (fr *FlightRecorder) SetMeta(m Meta) { fr.Recorder().SetMeta(m) }

// ObserveFrame feeds one committed frame's deadline and prediction
// outcome to the trigger engine. Call it after FrameBuilder.Commit.
func (fr *FlightRecorder) ObserveFrame(stream, frame int, missed bool, predictedMs, actualMs float64) {
	if fr == nil {
		return
	}
	if fr.cfg.DeadlineMiss && missed {
		fr.trigger(TriggerDeadlineMiss, int32(stream), int32(frame), actualMs)
		return
	}
	if fr.cfg.RelErr > 0 && actualMs > 0 && predictedMs > 0 {
		rel := (predictedMs - actualMs) / actualMs
		if rel < 0 {
			rel = -rel
		}
		if rel > fr.cfg.RelErr {
			fr.trigger(TriggerRelErr, int32(stream), int32(frame), rel)
		}
	}
}

// ArmedDumpSeq returns the sequence number the currently pending dump
// will be written under (the N in trace-NNNN-reason.json), or -1 when no
// dump is armed. Metric exemplars use it to link a histogram bucket to
// the dump that will explain it.
func (fr *FlightRecorder) ArmedDumpSeq() int {
	if fr == nil || !fr.armed.Load() {
		return -1
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.pending == nil {
		return -1
	}
	return fr.seq
}

// ObservePanic feeds a task-panic frame to the trigger engine.
func (fr *FlightRecorder) ObservePanic(stream, frame int) {
	if fr == nil || !fr.cfg.TaskPanic {
		return
	}
	fr.trigger(TriggerTaskPanic, int32(stream), int32(frame), 0)
}

// ObserveQuarantine feeds a stream quarantine to the trigger engine.
func (fr *FlightRecorder) ObserveQuarantine(stream, frame int) {
	if fr == nil || !fr.cfg.Quarantine {
		return
	}
	fr.trigger(TriggerQuarantine, int32(stream), int32(frame), 0)
}

// trigger arms (or coalesces into) a pending dump and emits a KindTrigger
// instant so the cause is visible inside the dump itself.
func (fr *FlightRecorder) trigger(reason TriggerReason, stream, frame int32, detail float64) {
	fr.mu.Lock()
	if fr.pending != nil {
		fr.pending.coalesced++
		fr.mu.Unlock()
		return
	}
	frames := fr.rec.FramesCommitted()
	if len(fr.dumps) >= fr.cfg.MaxDumps ||
		(fr.lastArmed > 0 && frames < fr.lastArmed+uint64(fr.cfg.CooldownFrames)) {
		fr.mu.Unlock()
		return
	}
	fr.pending = &pendingDump{
		reason:   reason,
		stream:   stream,
		frame:    frame,
		detail:   detail,
		dueFrame: frames + uint64(fr.cfg.AfterFrames),
	}
	fr.lastArmed = frames
	fr.armed.Store(true)
	fr.mu.Unlock()

	fr.rec.Emit(Event{
		Kind:    KindTrigger,
		Stream:  stream,
		Frame:   frame,
		Task:    -1,
		Outcome: int32(reason),
		Arg0:    detail,
	})
}

// frameCommitted is the recorder's per-frame hook: once the pending dump's
// after-window elapses, snapshot and write. The disarmed fast path is one
// atomic load.
func (fr *FlightRecorder) frameCommitted(frames uint64) {
	if !fr.armed.Load() {
		return
	}
	fr.mu.Lock()
	p := fr.pending
	if p == nil || frames < p.dueFrame {
		fr.mu.Unlock()
		return
	}
	fr.pending = nil
	fr.armed.Store(false)
	fr.writeLocked(p)
	fr.mu.Unlock()
}

// Flush force-writes any pending dump regardless of its after-window (end
// of run: the remaining frames will never arrive) and returns the first
// write error the recorder hit, if any.
func (fr *FlightRecorder) Flush() error {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if p := fr.pending; p != nil {
		fr.pending = nil
		fr.armed.Store(false)
		fr.writeLocked(p)
	}
	return fr.writeErr
}

// writeLocked snapshots the ring and writes one dump file. Called with
// fr.mu held; the snapshot itself takes the ring mutex, which is never
// held while acquiring fr.mu, so lock order is safe.
func (fr *FlightRecorder) writeLocked(p *pendingDump) {
	events := fr.rec.Snapshot()
	frames := 0
	for i := range events {
		if events[i].Kind == KindFrame {
			frames++
		}
	}
	name := fmt.Sprintf("trace-%04d-%s.json", fr.seq, ReasonName(p.reason))
	fr.seq++
	path := filepath.Join(fr.dir, name)
	f, err := os.Create(path)
	if err == nil {
		err = WriteDump(f, fr.rec.Meta(), events, dumpHeader{
			Reason: ReasonName(p.reason), Stream: int(p.stream), Frame: int(p.frame),
			Detail: p.detail, Coalesced: p.coalesced,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		if fr.writeErr == nil {
			fr.writeErr = err
		}
		return
	}
	fr.dumps = append(fr.dumps, DumpInfo{
		File:      name,
		Reason:    ReasonName(p.reason),
		Stream:    int(p.stream),
		Frame:     int(p.frame),
		Detail:    p.detail,
		Events:    len(events),
		Frames:    frames,
		Coalesced: p.coalesced,
		WrittenAt: time.Now(),
	})
}

// Dumps returns the dumps written so far, oldest first.
func (fr *FlightRecorder) Dumps() []DumpInfo {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]DumpInfo, len(fr.dumps))
	copy(out, fr.dumps)
	return out
}

// Err returns the first dump-write error, if any.
func (fr *FlightRecorder) Err() error {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.writeErr
}

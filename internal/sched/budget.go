package sched

import (
	"errors"

	"triplec/internal/stats"
)

// BudgetController adapts the latency budget at runtime. The paper fixes
// the budget at initialization ("close to average case"); in practice the
// initial frame may be unrepresentative, so this controller re-centers the
// budget on a quantile of the recent processing latencies, bounded by a
// slew-rate limit so the viewer never sees the output latency jump.
type BudgetController struct {
	// Quantile of the recent-latency window the budget should sit at
	// (default 0.9: 90% of frames finish inside the budget without delay).
	Quantile float64
	// Window is the number of recent frames considered (default 60).
	Window int
	// MaxSlewMsPerFrame bounds how fast the budget may move (default 0.25).
	MaxSlewMsPerFrame float64

	recent []float64
}

// NewBudgetController returns a controller with the defaults above.
func NewBudgetController() *BudgetController {
	return &BudgetController{Quantile: 0.9, Window: 60, MaxSlewMsPerFrame: 0.25}
}

// Observe feeds one frame's processing latency and returns the recommended
// budget given the current one. Before the window fills, the current budget
// is kept.
func (c *BudgetController) Observe(currentBudgetMs, processingMs float64) (float64, error) {
	if c.Quantile <= 0 || c.Quantile > 1 {
		return 0, errors.New("sched: budget quantile out of range")
	}
	if c.Window < 2 {
		return 0, errors.New("sched: budget window too small")
	}
	c.recent = append(c.recent, processingMs)
	if len(c.recent) > c.Window {
		c.recent = c.recent[len(c.recent)-c.Window:]
	}
	if len(c.recent) < c.Window/2 {
		return currentBudgetMs, nil
	}
	target, err := stats.Percentile(c.recent, c.Quantile*100)
	if err != nil {
		return currentBudgetMs, err
	}
	// Slew-limit toward the target.
	delta := target - currentBudgetMs
	if delta > c.MaxSlewMsPerFrame {
		delta = c.MaxSlewMsPerFrame
	}
	if delta < -c.MaxSlewMsPerFrame {
		delta = -c.MaxSlewMsPerFrame
	}
	return currentBudgetMs + delta, nil
}

// Reset clears the window.
func (c *BudgetController) Reset() { c.recent = nil }

package sched

import (
	"errors"

	"triplec/internal/pipeline"
	"triplec/internal/stats"
	"triplec/internal/tasks"
)

// Software pipelining across frames: the flow graph splits naturally at the
// registration switch into an analysis front end (detect, RDG, MKX, CPLS,
// REG) and an enhancement back end (ROI EST, GW, ENH, ZOOM). When the two
// stages run on disjoint core partitions, frame t's back end overlaps frame
// t+1's front end: the output latency stays front+back, but the sustainable
// period drops to max(front, back). The paper keeps a per-frame view; this
// analysis quantifies the throughput headroom of the two-stage split.

// backEndTasks lists the enhancement-stage tasks.
var backEndTasks = map[tasks.Name]bool{
	tasks.NameROIEst: true,
	tasks.NameGWExt:  true,
	tasks.NameENH:    true,
	tasks.NameZOOM:   true,
}

// SplitStages divides a frame report's task times at the registration
// boundary and returns the front-end and back-end stage times.
func SplitStages(rep pipeline.Report) (frontMs, backMs float64) {
	for _, e := range rep.Execs {
		if backEndTasks[e.Task] {
			backMs += e.Ms
		} else {
			frontMs += e.Ms
		}
	}
	return frontMs, backMs
}

// PipelineEstimate summarizes a run under two-stage software pipelining.
type PipelineEstimate struct {
	AvgPeriodMs     float64 // mean sustainable inter-frame period
	AvgLatencyMs    float64 // mean per-frame latency (front + back)
	MaxPeriodMs     float64 // worst frame's period (throughput bound)
	SpeedupVsSerial float64 // serial latency / pipelined period
}

// EstimatePipelining computes the two-stage pipelining estimate over a run.
func EstimatePipelining(reports []pipeline.Report) (PipelineEstimate, error) {
	if len(reports) == 0 {
		return PipelineEstimate{}, errors.New("sched: no reports")
	}
	periods := make([]float64, len(reports))
	latencies := make([]float64, len(reports))
	for i, rep := range reports {
		front, back := SplitStages(rep)
		period := front
		if back > period {
			period = back
		}
		periods[i] = period
		latencies[i] = front + back
	}
	est := PipelineEstimate{
		AvgPeriodMs:  stats.Mean(periods),
		AvgLatencyMs: stats.Mean(latencies),
		MaxPeriodMs:  stats.Max(periods),
	}
	if est.AvgPeriodMs > 0 {
		est.SpeedupVsSerial = est.AvgLatencyMs / est.AvgPeriodMs
	}
	return est, nil
}

// Package sched implements the paper's Section 6: semi-automatic
// parallelization driven by Triple-C predictions. A runtime manager
// initializes a latency budget close to the average case, predicts the
// resource consumption of every upcoming frame, repartitions the flow graph
// on the fly (striping the streaming tasks, splitting the feature tasks
// functionally) to keep the output latency stable at the budget, and feeds
// the observed times back for profiling.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"triplec/internal/core"
	"triplec/internal/flowgraph"
	"triplec/internal/frame"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/qos"
	"triplec/internal/tasks"
)

// Decision is the manager's plan for one frame.
type Decision struct {
	Mapping     partition.Mapping
	PredictedMs float64 // predicted latency under the chosen mapping
	SerialMs    float64 // predicted latency of the serial mapping
	Repartition bool    // true when the mapping differs from the previous frame's
}

// Manager is the runtime resource manager.
type Manager struct {
	predictor *core.Predictor
	arch      platform.Arch
	machine   *platform.Machine

	// BudgetMs is the latency budget; 0 until initialized.
	BudgetMs float64
	// Headroom scales the budget check: a mapping is accepted when the
	// predicted latency is below BudgetMs*Headroom (default 1.0).
	Headroom float64
	// Sticky keeps the previous frame's mapping whenever it still satisfies
	// the predicted demand, avoiding repartitioning churn (on-the-fly
	// repartitioning has a control cost the runtime manager should not pay
	// without benefit).
	Sticky bool
	// Budgeter, when set, adapts BudgetMs at runtime from the observed
	// processing latencies (see BudgetController). The paper fixes the
	// budget at initialization; the controller re-centers it when the
	// initial frame was unrepresentative.
	Budgeter *BudgetController
	// Metrics, when set, publishes the manager's planning decisions and
	// budget to live instruments (see ManagerMetrics). Install before the
	// first Plan; the hooks run on the manager's goroutine.
	Metrics *ManagerMetrics

	switchMs    float64 // per-stripe fork/join overhead in ms
	lastMapping partition.Mapping
	coreBudget  int // cores this application may use; 0 = whole machine

	// Live-swappable forecast sources (see steer.go): steerSrc replaces the
	// predictor in Plan, tailSrc widens PredictedDemandMs with a tail
	// forecast. The scratch predictions keep the steered paths alloc-free.
	steerSrc   atomic.Pointer[steerBox]
	tailSrc    atomic.Pointer[steerBox]
	steerPred  core.FramePrediction
	demandPred core.FramePrediction
}

// NewManager builds a manager around a trained predictor for the given
// architecture.
func NewManager(p *core.Predictor, arch platform.Arch) (*Manager, error) {
	if p == nil {
		return nil, errors.New("sched: nil predictor")
	}
	machine, err := platform.NewMachine(arch)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	return &Manager{
		predictor: p,
		arch:      arch,
		machine:   machine,
		Headroom:  1.0,
		switchMs:  machine.CyclesToMs(arch.SwitchCost),
	}, nil
}

// Predictor exposes the wrapped predictor.
func (m *Manager) Predictor() *core.Predictor { return m.predictor }

// Arch exposes the architecture the manager plans for.
func (m *Manager) Arch() platform.Arch { return m.arch }

// InitBudget sets the latency budget from the first processed frame per the
// paper's initialization step: "the output latency is set to an initial
// value (close to average case)". The manager takes the first frame's
// serial latency scaled toward the average case.
func (m *Manager) InitBudget(firstFrameMs float64) {
	// The first frame runs at full granularity without an ROI; steady-state
	// frames are cheaper. 85% of the first latency approximates the
	// average case across scenarios.
	m.BudgetMs = firstFrameMs * 0.85
	m.recordBudget()
}

// estStripedMs estimates the execution time of a task predicted to take
// serialMs when striped over k cores: the compute part divides, each stripe
// adds fork/join overhead, and the estimate keeps a conservative fraction
// serial (memory traffic does not parallelize on a shared bus).
func (m *Manager) estStripedMs(serialMs float64, k int) float64 {
	if k <= 1 {
		return serialMs
	}
	const serialFraction = 0.08 // bus-bound share that does not scale
	par := serialMs * (1 - serialFraction)
	return serialMs*serialFraction + par/float64(k) + m.switchMs
}

// MinScenarioP is the transition probability above which a successor
// scenario is provisioned for when planning (pessimistic planning: a
// plausible switch to an expensive scenario must not cause an overrun).
const MinScenarioP = 0.04

// Plan predicts the next frame and chooses a mapping that keeps the
// predicted latency within the budget, striping the most expensive
// partitionable tasks first. The per-task demand is the pessimistic maximum
// over all plausible successor scenarios, so data-dependent switches do not
// surprise the mapping. With no budget set it returns the serial mapping
// (profiling mode).
func (m *Manager) Plan() Decision {
	dec := m.plan()
	m.recordPlan(dec)
	return dec
}

func (m *Manager) plan() Decision {
	// A promoted shadow backend steers the plan when installed and able to
	// forecast; otherwise (including immediately after a rollback or before
	// the source's first successful drive) fall through to the predictor.
	if src := m.demandSource(); src != nil && src.DemandInto(&m.steerPred) {
		return m.planSteered(&m.steerPred)
	}
	pred := m.predictor.PredictNext()
	serial := pred.TotalMs
	if m.BudgetMs <= 0 {
		dec := Decision{Mapping: partition.Serial(), PredictedMs: serial, SerialMs: serial}
		m.rememberMapping(dec.Mapping)
		return dec
	}

	// Pessimistic per-task demand over the plausible successor scenarios.
	// Every candidate is constrained to the physically determined
	// granularity, and the (constrained) worst case is always provisioned:
	// a mapping entry for a task that ends up not running costs nothing,
	// while a missing entry for a task that does run causes an overrun.
	ctx := m.predictor.NextContext()
	var scenarios []flowgraph.Scenario
	if last, ok := m.predictor.LastScenario(); ok {
		for _, s := range m.predictor.Scenarios.Successors(last, MinScenarioP) {
			scenarios = append(scenarios, m.predictor.ConstrainScenario(s))
		}
	}
	scenarios = append(scenarios, m.predictor.ConstrainScenario(flowgraph.WorstCase()))
	demand := map[tasks.Name]float64{}
	for _, s := range scenarios {
		for task, ms := range m.predictor.PredictTasksFor(s, ctx) {
			if ms > demand[task] {
				demand[task] = ms
			}
		}
	}
	return m.planWithDemand(demand, serial)
}

// planWithDemand chooses a mapping for the given per-task demand under the
// current budget: sticky hysteresis first, then greedy stripe doubling.
// Shared by the predictor-driven and steered planning paths.
func (m *Manager) planWithDemand(demand map[tasks.Name]float64, serial float64) Decision {
	dec := Decision{Mapping: partition.Serial(), PredictedMs: serial, SerialMs: serial}
	budget := m.BudgetMs * m.Headroom

	// Hysteresis: when the previous mapping still meets the budget for the
	// current demand, keep it verbatim.
	if m.Sticky && m.lastMapping != nil {
		total := 0.0
		for task, ms := range demand {
			total += m.estStripedMs(ms, m.lastMapping.StripesFor(task))
		}
		if total <= budget {
			dec.Mapping = m.lastMapping
			dec.PredictedMs = total
			return dec
		}
	}

	// Greedy repartitioning: while over budget, double the stripe count of
	// the task with the largest current estimated time that still has
	// stripe capacity.
	kOf := map[tasks.Name]int{}
	est := map[tasks.Name]float64{}
	for task, ms := range demand {
		kOf[task] = 1
		est[task] = ms
	}
	total := func() float64 {
		t := 0.0
		for _, v := range est {
			t += v
		}
		return t
	}
	for total() > budget {
		// Pick the best candidate to stripe further.
		var best tasks.Name
		bestGain := 0.0
		for task, ms := range est {
			maxK := m.maxStripesFor(task)
			k := kOf[task]
			if k >= maxK {
				continue
			}
			next := k * 2
			if next > maxK {
				next = maxK
			}
			gain := ms - m.estStripedMs(demand[task], next)
			if gain > bestGain {
				bestGain = gain
				best = task
			}
		}
		if bestGain <= 0 {
			break // no task can be split further profitably
		}
		k := kOf[best] * 2
		if maxK := m.maxStripesFor(best); k > maxK {
			k = maxK
		}
		kOf[best] = k
		est[best] = m.estStripedMs(demand[best], k)
	}

	mapping := partition.Mapping{}
	for task, k := range kOf {
		if k > 1 {
			mapping[task] = k
		}
	}
	dec.Mapping = mapping
	dec.PredictedMs = total()
	dec.Repartition = !sameMapping(mapping, m.lastMapping)
	m.rememberMapping(mapping)
	return dec
}

func (m *Manager) rememberMapping(mp partition.Mapping) {
	m.lastMapping = mp
}

func sameMapping(a, b partition.Mapping) bool {
	if len(a) != len(b) {
		return false
	}
	for t, k := range a {
		if b[t] != k {
			return false
		}
	}
	return true
}

// Observe feeds the executed frame back to the predictor (the paper's
// profiling step: statistics of the differences between consumed and
// predicted resources drive on-line model training) and, when a Budgeter is
// installed, adapts the latency budget.
func (m *Manager) Observe(obs core.Observation) {
	m.predictor.Observe(obs)
	if m.Budgeter != nil && m.BudgetMs > 0 {
		if b, err := m.Budgeter.Observe(m.BudgetMs, obs.TotalMs); err == nil {
			m.BudgetMs = b
			m.recordBudget()
		}
	}
}

// Result aggregates a managed run for the Fig. 7 comparison.
type Result struct {
	Reports    []pipeline.Report
	Decisions  []Decision
	Processing []float64 // per-frame processing latency
	Output     []float64 // per-frame output latency after the regulator
	Regulator  qos.Regulator
}

// RunManaged executes n frames with per-frame prediction-driven
// repartitioning: the paper's semi-automatic parallelization loop
// (initialization on the first frame, runtime adaptation, profiling).
func RunManaged(eng *pipeline.Engine, mgr *Manager, n int, source func(int) *frame.Frame, framePixels int) (Result, error) {
	if eng == nil || mgr == nil {
		return Result{}, errors.New("sched: nil engine or manager")
	}
	if n <= 0 {
		return Result{}, errors.New("sched: need at least one frame")
	}
	var res Result
	for i := 0; i < n; i++ {
		var mapping partition.Mapping
		var dec Decision
		if i == 0 {
			// Initialization: process the first frame serially to measure
			// the starting point.
			mapping = partition.Serial()
			dec = Decision{Mapping: mapping}
		} else {
			dec = mgr.Plan()
			mapping = dec.Mapping
		}
		rep, err := eng.Process(source(i), mapping)
		if err != nil {
			return Result{}, fmt.Errorf("sched: frame %d: %w", i, err)
		}
		if i == 0 && mgr.BudgetMs <= 0 {
			mgr.InitBudget(rep.LatencyMs)
		}
		mgr.Observe(core.FromReports([]pipeline.Report{rep}, framePixels)[0])
		res.Reports = append(res.Reports, rep)
		res.Decisions = append(res.Decisions, dec)
		res.Processing = append(res.Processing, rep.LatencyMs)
	}
	res.Regulator = qos.Regulator{BudgetMs: mgr.BudgetMs}
	res.Output = res.Regulator.Regulate(res.Processing)
	return res, nil
}

// RunStraightforward executes n frames with the static serial mapping — the
// paper's baseline whose latency varies between 60 and 120 ms (Fig. 7's red
// curve).
func RunStraightforward(eng *pipeline.Engine, n int, source func(int) *frame.Frame) ([]pipeline.Report, []float64, error) {
	reports, err := eng.RunSequence(n, source, partition.Serial())
	if err != nil {
		return nil, nil, err
	}
	return reports, pipeline.Latencies(reports), nil
}

// CompareFig7 summarizes the two runs the way the paper's Section 7 does.
type CompareFig7 struct {
	StraightWorstVsAvg float64 // ~85% in the paper
	ManagedWorstVsAvg  float64 // ~20% in the paper
	JitterReduction    float64 // ~70% in the paper
	OverrunRate        float64 // fraction of managed frames over budget
	BudgetMs           float64
}

// Summarize computes the Fig. 7 comparison numbers from a straightforward
// latency series and a managed run.
func Summarize(straight []float64, managed Result) (CompareFig7, error) {
	sw, err := qos.WorstVsAverage(straight)
	if err != nil {
		return CompareFig7{}, err
	}
	mw, err := qos.WorstVsAverage(managed.Output)
	if err != nil {
		return CompareFig7{}, err
	}
	jr, err := qos.JitterReduction(straight, managed.Output)
	if err != nil {
		return CompareFig7{}, err
	}
	return CompareFig7{
		StraightWorstVsAvg: sw,
		ManagedWorstVsAvg:  mw,
		JitterReduction:    jr,
		OverrunRate:        managed.Regulator.OverrunRate(managed.Processing),
		BudgetMs:           managed.Regulator.BudgetMs,
	}, nil
}

// Speedup returns how much lower the managed worst case is than the
// straightforward worst case.
func (c CompareFig7) Speedup(straight []float64, managed Result) float64 {
	if len(straight) == 0 || len(managed.Output) == 0 {
		return 0
	}
	worstS := straight[0]
	for _, v := range straight {
		worstS = math.Max(worstS, v)
	}
	worstM := managed.Output[0]
	for _, v := range managed.Output {
		worstM = math.Max(worstM, v)
	}
	if worstM == 0 {
		return 0
	}
	return worstS / worstM
}

package sched

import (
	"math"
	"strings"
	"testing"

	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/tasks"
)

func sampleReport() pipeline.Report {
	return pipeline.Report{
		Execs: []pipeline.TaskExec{
			{Task: tasks.NameDetect, Stripes: 1, Ms: 1},
			{Task: tasks.NameRDGFull, Stripes: 4, Ms: 10},
			{Task: tasks.NameMKXExt, Stripes: 1, Ms: 2},
			{Task: tasks.NameENH, Stripes: 2, Ms: 12},
		},
		LatencyMs: 25,
	}
}

func TestBuildTimelineBasics(t *testing.T) {
	tl, err := BuildTimeline(sampleReport(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.MakespanMs != 25 {
		t.Fatalf("makespan = %v, want 25", tl.MakespanMs)
	}
	// 1 + 4 + 1 + 2 intervals.
	if len(tl.Intervals) != 8 {
		t.Fatalf("intervals = %d, want 8", len(tl.Intervals))
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	// The RDG stripes must be concurrent on distinct cores.
	var rdgStart []float64
	cores := map[int]bool{}
	for _, iv := range tl.Intervals {
		if iv.Task == tasks.NameRDGFull {
			rdgStart = append(rdgStart, iv.StartMs)
			cores[iv.Core] = true
		}
	}
	if len(cores) != 4 {
		t.Fatalf("RDG stripes on %d cores, want 4", len(cores))
	}
	for _, s := range rdgStart {
		if s != rdgStart[0] {
			t.Fatal("stripes must start together")
		}
	}
}

func TestBuildTimelineValidation(t *testing.T) {
	if _, err := BuildTimeline(sampleReport(), 0, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := BuildTimeline(sampleReport(), 8, 9); err == nil {
		t.Fatal("base core out of range accepted")
	}
	// 4-stripe task does not fit from base core 6 on an 8-core machine.
	if _, err := BuildTimeline(sampleReport(), 8, 6); err == nil {
		t.Fatal("overflowing stripe placement accepted")
	}
}

func TestTimelineBusyAndUtilization(t *testing.T) {
	tl, err := BuildTimeline(sampleReport(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 hosts every task's stripe 0: 1 + 10 + 2 + 12 = 25 ms.
	if got := tl.BusyMs(0); math.Abs(got-25) > 1e-9 {
		t.Fatalf("core 0 busy = %v, want 25", got)
	}
	// Core 3 hosts only the 4th RDG stripe.
	if got := tl.BusyMs(3); math.Abs(got-10) > 1e-9 {
		t.Fatalf("core 3 busy = %v, want 10", got)
	}
	// Total busy = 1 + 40 + 2 + 24 = 67 core-ms over 8 * 25 = 200.
	if got := tl.Utilization(); math.Abs(got-67.0/200) > 1e-9 {
		t.Fatalf("utilization = %v, want %v", got, 67.0/200)
	}
}

func TestTimelineValidateCatchesOverlap(t *testing.T) {
	tl := Timeline{
		NumCores:   2,
		MakespanMs: 10,
		Intervals: []Interval{
			{Task: tasks.NameENH, Core: 0, StartMs: 0, EndMs: 6},
			{Task: tasks.NameZOOM, Core: 0, StartMs: 5, EndMs: 9},
		},
	}
	if tl.Validate() == nil {
		t.Fatal("overlap not caught")
	}
	bad := Timeline{NumCores: 1, Intervals: []Interval{{Core: 5}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-machine core not caught")
	}
	inv := Timeline{NumCores: 1, Intervals: []Interval{{Core: 0, StartMs: 5, EndMs: 1}}}
	if inv.Validate() == nil {
		t.Fatal("inverted interval not caught")
	}
}

func TestTimelineRender(t *testing.T) {
	tl, err := BuildTimeline(sampleReport(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := tl.Render(40)
	if !strings.Contains(out, "core 0") || !strings.Contains(out, "R") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4+2 { // header + 4 cores + legend
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
}

func TestTimelineBaseCoreOffset(t *testing.T) {
	tl, err := BuildTimeline(sampleReport(), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range tl.Intervals {
		if iv.Core < 4 {
			t.Fatalf("interval on core %d despite base 4", iv.Core)
		}
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineFromRealRun(t *testing.T) {
	seq := synthSeq(t, 777)
	eng := newEngine(t)
	m := partition.Mapping{tasks.NameRDGFull: 4, tasks.NameENH: 2}
	var sawUtil bool
	for i := 0; i < 10; i++ {
		f, _ := seq.Frame(i)
		rep, err := eng.Process(f, m)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := BuildTimeline(rep, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tl.Validate(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(tl.MakespanMs-rep.LatencyMs) > 1e-9 {
			t.Fatalf("makespan %v != latency %v", tl.MakespanMs, rep.LatencyMs)
		}
		if u := tl.Utilization(); u > 0 && u < 1 {
			sawUtil = true
		}
	}
	if !sawUtil {
		t.Fatal("utilization never in (0,1)")
	}
}

func TestTimelineEmptyReport(t *testing.T) {
	tl, err := BuildTimeline(pipeline.Report{}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Utilization() != 0 || tl.MakespanMs != 0 {
		t.Fatal("empty report must give zero timeline")
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

package sched

import (
	"triplec/internal/core"
	"triplec/internal/partition"
	"triplec/internal/tasks"
)

// This file is the live-swappable demand seam the promotion controller
// (internal/promote) steers: a promoted shadow backend's dense forecast
// replaces the manager's own predictor in Plan, and a quantile backend's
// P90 forecast can ride along as a tail guard that widens the deadline-miss
// headroom in PredictedDemandMs. Both sources are installed and removed
// with a single atomic pointer swap from the controller's goroutine while
// the manager keeps planning on its own — rollback is one Store away and
// takes effect at the very next Plan. The manager's predictor continues to
// observe every frame regardless of steering, so the baseline is warm the
// instant a rollback lands.

// steerBox wraps the interface so it can live in an atomic.Pointer.
type steerBox struct{ src core.DemandSource }

// allTaskNames caches the allocating tasks.AllNames() for the per-frame
// steered planning path.
var allTaskNames = tasks.AllNames()

// SetDemandSource steers the manager's planning by the given forecast
// source; nil restores the built-in predictor. Safe to call concurrently
// with Plan.
func (m *Manager) SetDemandSource(src core.DemandSource) {
	if src == nil {
		m.steerSrc.Store(nil)
		return
	}
	m.steerSrc.Store(&steerBox{src: src})
}

// SetTailGuard installs a forecast source whose total-ms forecast widens
// PredictedDemandMs whenever it exceeds the mean forecast — feed it the
// quantile-P90 backend so the skip/serial controller and the arbiter react
// to predicted tails instead of realized misses. Nil removes the guard.
func (m *Manager) SetTailGuard(src core.DemandSource) {
	if src == nil {
		m.tailSrc.Store(nil)
		return
	}
	m.tailSrc.Store(&steerBox{src: src})
}

func (m *Manager) demandSource() core.DemandSource {
	if box := m.steerSrc.Load(); box != nil {
		return box.src
	}
	return nil
}

func (m *Manager) tailSource() core.DemandSource {
	if box := m.tailSrc.Load(); box != nil {
		return box.src
	}
	return nil
}

// DemandSourceName reports which forecast currently drives planning: the
// steering source's name, or core.BackendBaseline when unsteered. This is
// the signal rollback-latency checks watch.
func (m *Manager) DemandSourceName() string {
	if src := m.demandSource(); src != nil {
		return src.SourceName()
	}
	return core.BackendBaseline
}

// planSteered plans from an external dense forecast instead of the
// manager's own predictor: the per-task demand is the forecast's masked
// task vector and the serial estimate its total. The budget check, sticky
// hysteresis and greedy striping are shared with the unsteered path.
func (m *Manager) planSteered(p *core.FramePrediction) Decision {
	serial := p.TotalMs
	if m.BudgetMs <= 0 {
		dec := Decision{Mapping: partition.Serial(), PredictedMs: serial, SerialMs: serial}
		m.rememberMapping(dec.Mapping)
		return dec
	}
	demand := make(map[tasks.Name]float64, tasks.NumNames)
	for ti := 0; ti < tasks.NumNames; ti++ {
		if p.Mask&(uint16(1)<<uint(ti)) == 0 {
			continue
		}
		if ms := p.TaskMs[ti]; ms > 0 {
			demand[allTaskNames[ti]] = ms
		}
	}
	return m.planWithDemand(demand, serial)
}

package sched

import (
	"errors"
	"fmt"

	"triplec/internal/core"
	"triplec/internal/frame"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/tasks"
)

// The paper's stated aim is "to execute more functions on the same
// platform": because Triple-C predicts the average-case demand instead of
// reserving the worst case, several imaging functions can share the
// multiprocessor. This file adds core budgeting to the manager and a
// multi-application runner that splits the machine between independent
// pipelines.

// CoresUsed returns the peak core demand of a mapping: tasks execute
// sequentially within a frame, so the demand is the largest stripe count.
func CoresUsed(m partition.Mapping) int {
	used := 1
	for _, t := range tasks.AllNames() {
		if k := m.StripesFor(t); k > used {
			used = k
		}
	}
	return used
}

// SetCoreBudget limits how many cores the manager's plans may use
// (0 restores the full machine). The budget models a platform partition
// granted to this application while other functions occupy the rest.
func (m *Manager) SetCoreBudget(cores int) error {
	if cores < 0 || cores > m.arch.NumCPUs {
		return fmt.Errorf("sched: core budget %d out of range 0..%d", cores, m.arch.NumCPUs)
	}
	m.coreBudget = cores
	if mm := m.Metrics; mm != nil {
		mm.CoreBudget.Set(float64(cores))
	}
	return nil
}

// CoreBudget returns the current core budget (0 = whole machine).
func (m *Manager) CoreBudget() int { return m.coreBudget }

// maxStripesFor applies the core budget on top of the task's intrinsic
// stripe limit.
func (m *Manager) maxStripesFor(task tasks.Name) int {
	maxK := partition.MaxStripes(task, m.arch.NumCPUs)
	if m.coreBudget > 0 && maxK > m.coreBudget {
		maxK = m.coreBudget
	}
	return maxK
}

// App bundles one application instance sharing the platform.
type App struct {
	Name        string
	Engine      *pipeline.Engine
	Manager     *Manager
	Source      func(int) *frame.Frame
	FramePixels int
}

// MultiResult is the outcome of a co-scheduled run.
type MultiResult struct {
	PerApp    []Result
	PeakCores []int // per-frame combined peak core demand across apps
}

// RunMultiApp co-schedules several applications frame by frame: each frame,
// every app plans under its core budget and processes its frame. The
// combined peak core demand is recorded so tests can verify the apps
// actually fit on the machine together.
func RunMultiApp(apps []App, n int) (MultiResult, error) {
	if len(apps) == 0 {
		return MultiResult{}, errors.New("sched: no applications")
	}
	if n <= 0 {
		return MultiResult{}, errors.New("sched: need at least one frame")
	}
	budgetTotal := 0
	for _, a := range apps {
		if a.Engine == nil || a.Manager == nil || a.Source == nil {
			return MultiResult{}, fmt.Errorf("sched: app %q incomplete", a.Name)
		}
		b := a.Manager.CoreBudget()
		if b == 0 {
			b = a.Manager.arch.NumCPUs
		}
		budgetTotal += b
	}
	if budgetTotal > apps[0].Manager.arch.NumCPUs {
		return MultiResult{}, fmt.Errorf("sched: combined core budgets %d exceed the %d-core machine",
			budgetTotal, apps[0].Manager.arch.NumCPUs)
	}

	out := MultiResult{PerApp: make([]Result, len(apps))}
	for i := 0; i < n; i++ {
		peak := 0
		for ai := range apps {
			a := &apps[ai]
			var dec Decision
			if i == 0 {
				dec = Decision{Mapping: partition.Serial()}
			} else {
				dec = a.Manager.Plan()
			}
			rep, err := a.Engine.Process(a.Source(i), dec.Mapping)
			if err != nil {
				return MultiResult{}, fmt.Errorf("sched: app %q frame %d: %w", a.Name, i, err)
			}
			if i == 0 && a.Manager.BudgetMs <= 0 {
				a.Manager.InitBudget(rep.LatencyMs)
			}
			a.Manager.Observe(core.FromReports([]pipeline.Report{rep}, a.FramePixels)[0])
			res := &out.PerApp[ai]
			res.Reports = append(res.Reports, rep)
			res.Decisions = append(res.Decisions, dec)
			res.Processing = append(res.Processing, rep.LatencyMs)
			peak += CoresUsed(dec.Mapping)
		}
		out.PeakCores = append(out.PeakCores, peak)
	}
	for ai := range apps {
		res := &out.PerApp[ai]
		res.Regulator.BudgetMs = apps[ai].Manager.BudgetMs
		res.Output = res.Regulator.Regulate(res.Processing)
	}
	return out, nil
}

package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"triplec/internal/pipeline"
	"triplec/internal/tasks"
)

// Timeline lays one frame's task executions out on the machine's cores —
// the Gantt view of a mapping. Tasks in this flow graph are serially
// dependent, so successive tasks occupy successive time slots; the stripes
// of one task run concurrently on distinct cores. The per-core utilization
// quantifies the headroom left for "more functions on the same platform".
type Timeline struct {
	Intervals  []Interval
	MakespanMs float64
	NumCores   int
}

// Interval is one stripe's occupancy of one core.
type Interval struct {
	Task    tasks.Name
	Stripe  int // 0-based stripe index within the task
	Core    int
	StartMs float64
	EndMs   float64
}

// BuildTimeline converts an executed frame report into a core timeline on a
// machine with numCores cores, placing each task's stripes on cores
// baseCore..baseCore+k-1 (baseCore supports multi-application layouts where
// an app owns a core range).
func BuildTimeline(rep pipeline.Report, numCores, baseCore int) (Timeline, error) {
	if numCores <= 0 {
		return Timeline{}, errors.New("sched: timeline needs at least one core")
	}
	if baseCore < 0 || baseCore >= numCores {
		return Timeline{}, fmt.Errorf("sched: base core %d out of range", baseCore)
	}
	tl := Timeline{NumCores: numCores}
	now := 0.0
	for _, e := range rep.Execs {
		k := e.Stripes
		if k < 1 {
			k = 1
		}
		if baseCore+k > numCores {
			return Timeline{}, fmt.Errorf("sched: task %s needs %d cores from %d, machine has %d",
				e.Task, k, baseCore, numCores)
		}
		for s := 0; s < k; s++ {
			tl.Intervals = append(tl.Intervals, Interval{
				Task: e.Task, Stripe: s, Core: baseCore + s,
				StartMs: now, EndMs: now + e.Ms,
			})
		}
		now += e.Ms
	}
	tl.MakespanMs = now
	return tl, nil
}

// Validate checks that no core hosts overlapping intervals.
func (t Timeline) Validate() error {
	perCore := map[int][]Interval{}
	for _, iv := range t.Intervals {
		if iv.Core < 0 || iv.Core >= t.NumCores {
			return fmt.Errorf("sched: interval on core %d outside machine", iv.Core)
		}
		if iv.EndMs < iv.StartMs {
			return fmt.Errorf("sched: inverted interval for %s", iv.Task)
		}
		perCore[iv.Core] = append(perCore[iv.Core], iv)
	}
	for core, ivs := range perCore {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].StartMs < ivs[j].StartMs })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].StartMs < ivs[i-1].EndMs-1e-9 {
				return fmt.Errorf("sched: core %d overlap between %s and %s",
					core, ivs[i-1].Task, ivs[i].Task)
			}
		}
	}
	return nil
}

// BusyMs returns the total busy time of one core.
func (t Timeline) BusyMs(core int) float64 {
	busy := 0.0
	for _, iv := range t.Intervals {
		if iv.Core == core {
			busy += iv.EndMs - iv.StartMs
		}
	}
	return busy
}

// Utilization returns the machine-wide utilization: total busy core-ms over
// numCores * makespan. Low utilization is the headroom the paper wants to
// hand to additional functions.
func (t Timeline) Utilization() float64 {
	if t.MakespanMs <= 0 || t.NumCores == 0 {
		return 0
	}
	busy := 0.0
	for _, iv := range t.Intervals {
		busy += iv.EndMs - iv.StartMs
	}
	return busy / (t.MakespanMs * float64(t.NumCores))
}

// Render draws an ASCII Gantt chart, one row per core, `width` characters
// across the makespan.
func (t Timeline) Render(width int) string {
	if width < 10 {
		width = 10
	}
	glyphFor := func(task tasks.Name) byte {
		if len(task) == 0 {
			return '?'
		}
		switch task {
		case tasks.NameRDGFull, tasks.NameRDGROI:
			return 'R'
		case tasks.NameMKXExt:
			return 'M'
		case tasks.NameCPLSSel:
			return 'C'
		case tasks.NameREG:
			return 'G'
		case tasks.NameROIEst:
			return 'r'
		case tasks.NameGWExt:
			return 'W'
		case tasks.NameENH:
			return 'E'
		case tasks.NameZOOM:
			return 'Z'
		default:
			return 'd'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: makespan %.1f ms, utilization %.0f%%\n",
		t.MakespanMs, 100*t.Utilization())
	for core := 0; core < t.NumCores; core++ {
		row := []byte(strings.Repeat(".", width))
		for _, iv := range t.Intervals {
			if iv.Core != core || t.MakespanMs == 0 {
				continue
			}
			s := int(iv.StartMs / t.MakespanMs * float64(width))
			e := int(iv.EndMs / t.MakespanMs * float64(width))
			if e <= s {
				e = s + 1
			}
			if e > width {
				e = width
			}
			for x := s; x < e; x++ {
				row[x] = glyphFor(iv.Task)
			}
		}
		fmt.Fprintf(&b, "core %d |%s|\n", core, row)
	}
	b.WriteString("legend: d=detect R=RDG M=MKX C=CPLS G=REG r=ROI_EST W=GW E=ENH Z=ZOOM\n")
	return b.String()
}

package sched

import (
	"testing"

	"triplec/internal/frame"
	"triplec/internal/pipeline"
	"triplec/internal/synth"
	"triplec/internal/tasks"
)

func TestSplitStages(t *testing.T) {
	rep := pipeline.Report{Execs: []pipeline.TaskExec{
		{Task: tasks.NameDetect, Ms: 1},
		{Task: tasks.NameRDGFull, Ms: 40},
		{Task: tasks.NameMKXExt, Ms: 2},
		{Task: tasks.NameREG, Ms: 2},
		{Task: tasks.NameROIEst, Ms: 1},
		{Task: tasks.NameENH, Ms: 24},
		{Task: tasks.NameZOOM, Ms: 12},
	}}
	front, back := SplitStages(rep)
	if front != 45 || back != 37 {
		t.Fatalf("SplitStages = %v, %v; want 45, 37", front, back)
	}
}

func TestEstimatePipeliningInvariants(t *testing.T) {
	// A clean acquisition (no dropouts) so most frames run the full back
	// end and the overlap gain is visible.
	cfg := synth.DefaultConfig(909090)
	cfg.Width, cfg.Height = 128, 128
	cfg.MarkerSpacing = 36
	cfg.NoiseSigma = 250
	cfg.QuantumGain = 0
	cfg.ClutterRate = 2
	cfg.DropoutEvery = 0
	seq, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	reports, err := eng.RunSequence(40, func(i int) *frame.Frame {
		f, _ := seq.Frame(i)
		return f
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimatePipelining(reports)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelining cannot be slower than serial: period <= latency.
	if est.AvgPeriodMs > est.AvgLatencyMs+1e-9 {
		t.Fatalf("period %v exceeds latency %v", est.AvgPeriodMs, est.AvgLatencyMs)
	}
	if est.SpeedupVsSerial < 1 {
		t.Fatalf("pipelined speedup %v below 1", est.SpeedupVsSerial)
	}
	if est.MaxPeriodMs < est.AvgPeriodMs {
		t.Fatal("max period below average")
	}
	// Frames with a real back end must show overlap gain — modest here
	// because the enhancement back end (ENH+ZOOM ~37 ms) dominates the
	// stage split; the estimate's value is exposing exactly that imbalance.
	if est.SpeedupVsSerial < 1.02 {
		t.Fatalf("expected measurable pipelining gain, got %v", est.SpeedupVsSerial)
	}
}

func TestEstimatePipeliningEmpty(t *testing.T) {
	if _, err := EstimatePipelining(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

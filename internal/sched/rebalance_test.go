package sched

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestSplitCoresProportional(t *testing.T) {
	b, err := SplitCores(8, []float64{30, 10})
	if err != nil {
		t.Fatal(err)
	}
	if b[0]+b[1] != 8 {
		t.Fatalf("budgets %v do not sum to 8", b)
	}
	if b[0] <= b[1] {
		t.Fatalf("heavier demand got %d cores, lighter got %d", b[0], b[1])
	}
}

func TestSplitCoresFloorsAtOne(t *testing.T) {
	b, err := SplitCores(4, []float64{1000, 0, -5, math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, v := range b {
		if v < 1 {
			t.Fatalf("stream %d got %d cores", i, v)
		}
		total += v
	}
	if total != 4 {
		t.Fatalf("budgets %v do not sum to 4", b)
	}
}

func TestSplitCoresMoreStreamsThanCores(t *testing.T) {
	// Regression: SplitCores used to hand every stream a one-core floor even
	// when that over-committed the machine (3 "cores" granted on a 2-core
	// split). The oversubscribed regime now degrades deterministically: the
	// total highest-demand streams get one core, the rest get the zero-budget
	// shed signal, and the budgets never sum past the machine.
	b, err := SplitCores(2, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 || b[1] != 1 || b[2] != 0 {
		t.Fatalf("budgets %v, want [1 1 0] (ties broken by lower index)", b)
	}
	// Demand ranking decides who keeps a core, not position.
	b, err = SplitCores(2, []float64{1, 9, 4})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || b[1] != 1 || b[2] != 1 {
		t.Fatalf("budgets %v, want [0 1 1] (highest demand first)", b)
	}
	// Non-finite and negative demands rank as zero instead of poisoning the
	// sort.
	b, err = SplitCores(1, []float64{math.NaN(), 2, -3})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || b[1] != 1 || b[2] != 0 {
		t.Fatalf("budgets %v, want [0 1 0]", b)
	}
}

// Acceptance property: for any machine size and any demand vector — including
// negative, NaN and Inf entries — the returned budgets are non-negative and
// sum to exactly the machine size. SplitCores must never over-commit.
func TestSplitCoresNeverOverCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 500; trial++ {
		total := 1 + rng.Intn(32)
		n := 1 + rng.Intn(12)
		demands := make([]float64, n)
		for i := range demands {
			switch rng.Intn(6) {
			case 0:
				demands[i] = math.NaN()
			case 1:
				demands[i] = math.Inf(1)
			case 2:
				demands[i] = -rng.Float64() * 100
			case 3:
				demands[i] = 0
			default:
				demands[i] = rng.Float64() * 100
			}
		}
		b, err := SplitCores(total, demands)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for i, v := range b {
			if v < 0 {
				t.Fatalf("trial %d: negative budget %d for stream %d (total %d, demands %v)", trial, v, i, total, demands)
			}
			if total >= n && v < 1 {
				t.Fatalf("trial %d: stream %d lost its one-core floor with %d cores for %d streams", trial, i, total, n)
			}
			sum += v
		}
		if sum != total {
			t.Fatalf("trial %d: budgets %v sum to %d, want exactly %d (demands %v)", trial, b, sum, total, demands)
		}
	}
}

func TestSplitCoresNoDemandSignal(t *testing.T) {
	b, err := SplitCores(8, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 4 || b[1] != 4 {
		t.Fatalf("even split expected, got %v", b)
	}
}

func TestSplitCoresValidation(t *testing.T) {
	if _, err := SplitCores(8, nil); err == nil {
		t.Fatal("empty demand list accepted")
	}
	if _, err := SplitCores(0, []float64{1}); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestSplitCoresExactSum(t *testing.T) {
	// Largest-remainder settlement must hit the total exactly for awkward
	// fractions.
	for total := 1; total <= 16; total++ {
		b, err := SplitCores(total, []float64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, v := range b {
			sum += v
		}
		if sum != total {
			t.Fatalf("total %d: budgets %v sum to %d, want %d", total, b, sum, total)
		}
	}
}

func TestCoreNeed(t *testing.T) {
	cases := []struct {
		demand, budget float64
		maxCores, want int
	}{
		{40, 40, 8, 1},
		{41, 40, 8, 2},
		{200, 10, 8, 8}, // clamped
		{0, 40, 8, 1},
		{40, 0, 8, 1},
		{math.NaN(), 40, 8, 1},
		{40, 40, 0, 1},
	}
	for _, c := range cases {
		if got := CoreNeed(c.demand, c.budget, c.maxCores); got != c.want {
			t.Fatalf("CoreNeed(%v, %v, %d) = %d, want %d", c.demand, c.budget, c.maxCores, got, c.want)
		}
	}
}

func TestMultiManagerRebalance(t *testing.T) {
	mm, err := NewMultiManager(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b := mm.BudgetFor(0); b != 4 {
		t.Fatalf("initial budget = %d, want even 4", b)
	}
	mm.ReportDemand(0, 60)
	mm.ReportDemand(1, 20)
	b := mm.Rebalance()
	if b[0] <= b[1] {
		t.Fatalf("rebalance ignored demand: %v", b)
	}
	if mm.Rebalances() != 1 {
		t.Fatalf("rebalances = %d, want 1", mm.Rebalances())
	}
	if d := mm.Demands(); d[0] != 60 || d[1] != 20 {
		t.Fatalf("demands = %v", d)
	}
}

func TestMultiManagerValidation(t *testing.T) {
	if _, err := NewMultiManager(0, 2); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewMultiManager(8, 0); err == nil {
		t.Fatal("zero streams accepted")
	}
}

// Concurrent reporting and rebalancing must be race-free (run with -race)
// and keep every budget within [1, total].
func TestMultiManagerConcurrent(t *testing.T) {
	const streams = 4
	mm, err := NewMultiManager(8, streams)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(streams)
	for s := 0; s < streams; s++ {
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				mm.ReportDemand(s, float64(10+s*7+i%13))
				if i%10 == 0 {
					mm.Rebalance()
				}
				if b := mm.BudgetFor(s); b < 1 || b > 8 {
					t.Errorf("stream %d budget %d out of range", s, b)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	total := 0
	for s := 0; s < streams; s++ {
		total += mm.BudgetFor(s)
	}
	if total != 8 {
		t.Fatalf("budgets sum to %d, want 8", total)
	}
}

// Out-of-range indices must be ignored, not panic.
func TestMultiManagerIndexBounds(t *testing.T) {
	mm, err := NewMultiManager(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mm.ReportDemand(-1, 10)
	mm.ReportDemand(5, 10)
	if b := mm.BudgetFor(-1); b != 1 {
		t.Fatalf("out-of-range budget = %d, want the one-core floor", b)
	}
}

func TestMultiManagerRetire(t *testing.T) {
	mm, err := NewMultiManager(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mm.ReportDemand(i, 40)
	}
	mm.Rebalance()
	if mm.ActiveStreams() != 4 {
		t.Fatalf("active = %d, want 4", mm.ActiveStreams())
	}
	// Quarantine stream 1: its cores flow to the survivors immediately.
	before := mm.Rebalances()
	mm.Retire(1)
	if mm.Rebalances() != before+1 {
		t.Fatal("retire did not rebalance immediately")
	}
	if mm.ActiveStreams() != 3 {
		t.Fatalf("active = %d after retire, want 3", mm.ActiveStreams())
	}
	if b := mm.BudgetFor(1); b != 0 {
		t.Fatalf("retired stream holds %d cores, want 0", b)
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += mm.BudgetFor(i)
	}
	if total != 8 {
		t.Fatalf("survivors hold %d cores, want the full 8", total)
	}
	// Reports against a retired stream are dropped.
	mm.ReportDemand(1, 500)
	if d := mm.Demands(); d[1] != 0 {
		t.Fatalf("retired stream demand = %v, want 0", d[1])
	}
	// Retiring twice (or out of range) is a no-op.
	mm.Retire(1)
	mm.Retire(-1)
	mm.Retire(99)
	if mm.ActiveStreams() != 3 || mm.Rebalances() != before+1 {
		t.Fatal("repeated retire was not a no-op")
	}
}

// An oversubscribed arbiter (more streams than cores) must hand out zero
// budgets instead of over-committing, and Retire's immediate re-split must
// promote a shed stream once a core frees up.
func TestMultiManagerOversubscribed(t *testing.T) {
	mm, err := NewMultiManager(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := func() int {
		s := 0
		for i := 0; i < 4; i++ {
			s += mm.BudgetFor(i)
		}
		return s
	}
	if sum() != 2 {
		t.Fatalf("initial oversubscribed budgets sum to %d, want 2", sum())
	}
	for i := 0; i < 4; i++ {
		mm.ReportDemand(i, float64(10*(i+1)))
	}
	b := mm.Rebalance()
	if b[2] != 1 || b[3] != 1 || b[0] != 0 || b[1] != 0 {
		t.Fatalf("budgets %v, want the two highest-demand streams to hold the cores", b)
	}
	// Retiring a core-holding stream re-splits among the three survivors:
	// the two highest-demand live streams (1 and 2) now hold the cores.
	mm.Retire(3)
	b = []int{mm.BudgetFor(0), mm.BudgetFor(1), mm.BudgetFor(2), mm.BudgetFor(3)}
	if b[1] != 1 || b[2] != 1 || b[0] != 0 || b[3] != 0 {
		t.Fatalf("post-retire budgets %v, want [0 1 1 0]", b)
	}
	if sum() != 2 {
		t.Fatalf("post-retire budgets sum to %d, want 2", sum())
	}
}

func TestMultiManagerRetireAll(t *testing.T) {
	mm, err := NewMultiManager(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mm.Retire(0)
	mm.Retire(1)
	// No active streams left: budgets freeze, nothing panics.
	mm.Rebalance()
	if mm.ActiveStreams() != 0 {
		t.Fatal("streams left active")
	}
}

package sched

import (
	"math"
	"sync"
	"testing"
)

func TestSplitCoresProportional(t *testing.T) {
	b, err := SplitCores(8, []float64{30, 10})
	if err != nil {
		t.Fatal(err)
	}
	if b[0]+b[1] != 8 {
		t.Fatalf("budgets %v do not sum to 8", b)
	}
	if b[0] <= b[1] {
		t.Fatalf("heavier demand got %d cores, lighter got %d", b[0], b[1])
	}
}

func TestSplitCoresFloorsAtOne(t *testing.T) {
	b, err := SplitCores(4, []float64{1000, 0, -5, math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, v := range b {
		if v < 1 {
			t.Fatalf("stream %d got %d cores", i, v)
		}
		total += v
	}
	if total != 4 {
		t.Fatalf("budgets %v do not sum to 4", b)
	}
}

func TestSplitCoresMoreStreamsThanCores(t *testing.T) {
	b, err := SplitCores(2, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 1 {
			t.Fatalf("stream %d got %d cores, want the one-core floor", i, v)
		}
	}
}

func TestSplitCoresNoDemandSignal(t *testing.T) {
	b, err := SplitCores(8, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 4 || b[1] != 4 {
		t.Fatalf("even split expected, got %v", b)
	}
}

func TestSplitCoresValidation(t *testing.T) {
	if _, err := SplitCores(8, nil); err == nil {
		t.Fatal("empty demand list accepted")
	}
	if _, err := SplitCores(0, []float64{1}); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestSplitCoresExactSum(t *testing.T) {
	// Largest-remainder settlement must hit the total exactly for awkward
	// fractions.
	for total := 1; total <= 16; total++ {
		b, err := SplitCores(total, []float64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, v := range b {
			sum += v
		}
		want := total
		if want < len(b) {
			want = len(b)
		}
		if sum != want {
			t.Fatalf("total %d: budgets %v sum to %d, want %d", total, b, sum, want)
		}
	}
}

func TestCoreNeed(t *testing.T) {
	cases := []struct {
		demand, budget float64
		maxCores, want int
	}{
		{40, 40, 8, 1},
		{41, 40, 8, 2},
		{200, 10, 8, 8}, // clamped
		{0, 40, 8, 1},
		{40, 0, 8, 1},
		{math.NaN(), 40, 8, 1},
		{40, 40, 0, 1},
	}
	for _, c := range cases {
		if got := CoreNeed(c.demand, c.budget, c.maxCores); got != c.want {
			t.Fatalf("CoreNeed(%v, %v, %d) = %d, want %d", c.demand, c.budget, c.maxCores, got, c.want)
		}
	}
}

func TestMultiManagerRebalance(t *testing.T) {
	mm, err := NewMultiManager(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b := mm.BudgetFor(0); b != 4 {
		t.Fatalf("initial budget = %d, want even 4", b)
	}
	mm.ReportDemand(0, 60)
	mm.ReportDemand(1, 20)
	b := mm.Rebalance()
	if b[0] <= b[1] {
		t.Fatalf("rebalance ignored demand: %v", b)
	}
	if mm.Rebalances() != 1 {
		t.Fatalf("rebalances = %d, want 1", mm.Rebalances())
	}
	if d := mm.Demands(); d[0] != 60 || d[1] != 20 {
		t.Fatalf("demands = %v", d)
	}
}

func TestMultiManagerValidation(t *testing.T) {
	if _, err := NewMultiManager(0, 2); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewMultiManager(8, 0); err == nil {
		t.Fatal("zero streams accepted")
	}
}

// Concurrent reporting and rebalancing must be race-free (run with -race)
// and keep every budget within [1, total].
func TestMultiManagerConcurrent(t *testing.T) {
	const streams = 4
	mm, err := NewMultiManager(8, streams)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(streams)
	for s := 0; s < streams; s++ {
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				mm.ReportDemand(s, float64(10+s*7+i%13))
				if i%10 == 0 {
					mm.Rebalance()
				}
				if b := mm.BudgetFor(s); b < 1 || b > 8 {
					t.Errorf("stream %d budget %d out of range", s, b)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	total := 0
	for s := 0; s < streams; s++ {
		total += mm.BudgetFor(s)
	}
	if total != 8 {
		t.Fatalf("budgets sum to %d, want 8", total)
	}
}

// Out-of-range indices must be ignored, not panic.
func TestMultiManagerIndexBounds(t *testing.T) {
	mm, err := NewMultiManager(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mm.ReportDemand(-1, 10)
	mm.ReportDemand(5, 10)
	if b := mm.BudgetFor(-1); b != 1 {
		t.Fatalf("out-of-range budget = %d, want the one-core floor", b)
	}
}

func TestMultiManagerRetire(t *testing.T) {
	mm, err := NewMultiManager(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mm.ReportDemand(i, 40)
	}
	mm.Rebalance()
	if mm.ActiveStreams() != 4 {
		t.Fatalf("active = %d, want 4", mm.ActiveStreams())
	}
	// Quarantine stream 1: its cores flow to the survivors immediately.
	before := mm.Rebalances()
	mm.Retire(1)
	if mm.Rebalances() != before+1 {
		t.Fatal("retire did not rebalance immediately")
	}
	if mm.ActiveStreams() != 3 {
		t.Fatalf("active = %d after retire, want 3", mm.ActiveStreams())
	}
	if b := mm.BudgetFor(1); b != 0 {
		t.Fatalf("retired stream holds %d cores, want 0", b)
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += mm.BudgetFor(i)
	}
	if total != 8 {
		t.Fatalf("survivors hold %d cores, want the full 8", total)
	}
	// Reports against a retired stream are dropped.
	mm.ReportDemand(1, 500)
	if d := mm.Demands(); d[1] != 0 {
		t.Fatalf("retired stream demand = %v, want 0", d[1])
	}
	// Retiring twice (or out of range) is a no-op.
	mm.Retire(1)
	mm.Retire(-1)
	mm.Retire(99)
	if mm.ActiveStreams() != 3 || mm.Rebalances() != before+1 {
		t.Fatal("repeated retire was not a no-op")
	}
}

func TestMultiManagerRetireAll(t *testing.T) {
	mm, err := NewMultiManager(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mm.Retire(0)
	mm.Retire(1)
	// No active streams left: budgets freeze, nothing panics.
	mm.Rebalance()
	if mm.ActiveStreams() != 0 {
		t.Fatal("streams left active")
	}
}

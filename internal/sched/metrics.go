package sched

import (
	"triplec/internal/metrics"
)

// ManagerMetrics is the runtime manager's live instrument set. Individual
// fields may be nil; every hook records only through the handles that are
// set (and the metrics primitives themselves are nil-safe), so callers can
// wire exactly the subset they expose.
type ManagerMetrics struct {
	// BudgetMs tracks the manager's current latency budget (updated by
	// InitBudget and, with an adaptive Budgeter, every Observe).
	BudgetMs *metrics.Gauge
	// PredictedMs tracks the predicted latency of each Plan's chosen
	// mapping; SerialMs tracks the serial forecast alongside it.
	PredictedMs, SerialMs *metrics.Gauge
	// CoreBudget tracks the manager's current core allocation (0 = whole
	// machine), updated by SetCoreBudget.
	CoreBudget *metrics.Gauge
	// Repartitions counts Plans whose mapping differed from the previous
	// frame's — the on-the-fly repartitioning rate.
	Repartitions *metrics.Counter
	// Plans counts Plan invocations.
	Plans *metrics.Counter
}

// MultiMetrics is the cross-stream arbiter's instrument set.
type MultiMetrics struct {
	// Rebalances counts applied core re-divisions.
	Rebalances *metrics.Counter
	// CoreAllocation, when its length matches the stream count, receives
	// every stream's budget after each re-division.
	CoreAllocation []*metrics.Gauge
}

// recordPlan publishes one Plan decision.
func (m *Manager) recordPlan(dec Decision) {
	mm := m.Metrics
	if mm == nil {
		return
	}
	mm.Plans.Inc()
	mm.PredictedMs.Set(dec.PredictedMs)
	mm.SerialMs.Set(dec.SerialMs)
	if dec.Repartition {
		mm.Repartitions.Inc()
	}
}

// recordBudget publishes the current latency budget.
func (m *Manager) recordBudget() {
	if mm := m.Metrics; mm != nil {
		mm.BudgetMs.Set(m.BudgetMs)
	}
}

package sched

import (
	"math"
	"testing"

	"triplec/internal/frame"
	"triplec/internal/platform"
)

func TestBudgetControllerValidation(t *testing.T) {
	c := NewBudgetController()
	c.Quantile = 0
	if _, err := c.Observe(40, 30); err == nil {
		t.Fatal("zero quantile accepted")
	}
	c = NewBudgetController()
	c.Window = 1
	if _, err := c.Observe(40, 30); err == nil {
		t.Fatal("tiny window accepted")
	}
}

func TestBudgetControllerHoldsDuringWarmup(t *testing.T) {
	c := NewBudgetController()
	for i := 0; i < c.Window/2-1; i++ {
		b, err := c.Observe(40, 100)
		if err != nil {
			t.Fatal(err)
		}
		if b != 40 {
			t.Fatalf("budget moved during warmup: %v", b)
		}
	}
}

func TestBudgetControllerConvergesUpward(t *testing.T) {
	c := NewBudgetController()
	budget := 30.0
	// Steady 50 ms processing: the budget must climb toward the 90th
	// percentile (50) at the slew rate.
	for i := 0; i < 400; i++ {
		var err error
		budget, err = c.Observe(budget, 50)
		if err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(budget-50) > 1 {
		t.Fatalf("budget %v did not converge to 50", budget)
	}
}

func TestBudgetControllerConvergesDownward(t *testing.T) {
	c := NewBudgetController()
	budget := 80.0
	for i := 0; i < 400; i++ {
		var err error
		budget, err = c.Observe(budget, 40)
		if err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(budget-40) > 1 {
		t.Fatalf("budget %v did not converge down to 40", budget)
	}
}

func TestBudgetControllerSlewLimited(t *testing.T) {
	c := NewBudgetController()
	budget := 30.0
	// Fill the window first.
	for i := 0; i < c.Window; i++ {
		var err error
		budget, err = c.Observe(budget, 100)
		if err != nil {
			t.Fatal(err)
		}
	}
	before := budget
	after, err := c.Observe(budget, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d := after - before; d > c.MaxSlewMsPerFrame+1e-9 {
		t.Fatalf("budget jumped %v in one frame", d)
	}
}

func TestBudgetControllerQuantileTracksTail(t *testing.T) {
	// Bimodal latencies 20/60 at 9:1 — the 90th percentile sits near the
	// low mode's top; with 50% at 60 it would sit at 60.
	c := NewBudgetController()
	budget := 40.0
	for i := 0; i < 600; i++ {
		lat := 20.0
		if i%10 == 9 {
			lat = 60
		}
		var err error
		budget, err = c.Observe(budget, lat)
		if err != nil {
			t.Fatal(err)
		}
	}
	if budget < 20 || budget > 61 {
		t.Fatalf("budget %v outside plausible quantile band", budget)
	}
}

func TestBudgetControllerReset(t *testing.T) {
	c := NewBudgetController()
	for i := 0; i < c.Window; i++ {
		if _, err := c.Observe(40, 90); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset()
	b, err := c.Observe(40, 90)
	if err != nil {
		t.Fatal(err)
	}
	if b != 40 {
		t.Fatalf("post-reset budget moved immediately: %v", b)
	}
}

func TestManagedRunWithAdaptiveBudget(t *testing.T) {
	seq := synthSeq(t, 515151)
	p := trainedPredictor(t)
	mgr, err := NewManager(p, platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	mgr.Budgeter = NewBudgetController()
	res, err := RunManaged(newEngine(t), mgr, 100, func(i int) *frame.Frame {
		f, _ := seq.Frame(i)
		return f
	}, 128*128)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.BudgetMs <= 0 {
		t.Fatalf("adaptive budget collapsed: %v", mgr.BudgetMs)
	}
	// The adapted system must stay stable: bounded overruns against the
	// final budget.
	over := 0
	for _, pr := range res.Processing[50:] {
		if pr > mgr.BudgetMs*1.5 {
			over++
		}
	}
	if over > 10 {
		t.Fatalf("adaptive budget left %d gross overruns", over)
	}
}

package sched

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file adds the dynamic cross-stream core re-allocation used by the
// multi-stream serving layer (internal/stream): RunMultiApp in multi.go
// co-schedules applications under *static* budgets fixed up front, while a
// MultiManager re-divides the machine between streams every control period
// from their latest Triple-C predictions — the arbitration shape of
// "Resource Allocation for Multiple Concurrent In-Network Stream-Processing
// Applications" (Benoit et al., 2009) applied to the paper's runtime
// manager.

// PredictedDemandMs is the manager's per-frame demand signal for
// cross-stream arbitration: the summed per-task Triple-C predictions for
// the scenario the stream is currently in (the most recently observed one).
// Conditioning on the observed scenario instead of the scenario table's
// most-likely successor matters for arbitration: the per-task models adapt
// online, so a stream stuck in a cheap degenerate mode (say, registration
// failing every frame) reports its true few-ms demand even though the
// offline-trained table still predicts a switch back to the full pipeline.
// Before any observation it falls back to the worst-case forecast.
func (m *Manager) PredictedDemandMs() float64 {
	if last, ok := m.predictor.LastScenario(); ok {
		return m.predictor.PredictForTasks(last.ActiveTasks(), m.predictor.NextContext())
	}
	return m.predictor.PredictNext().TotalMs
}

// SplitCores divides total cores across applications proportionally to
// their predicted per-frame demand (ms of serial work). The fractional
// shares are settled by largest remainder, and the returned budgets sum to
// exactly total for every input — SplitCores never over-commits the
// machine. When there are at least as many cores as applications, every
// application is floored at one core. When there are *more applications
// than cores* (the oversubscribed serving regime), the total
// highest-demand applications receive one core each (ties broken by lower
// index for determinism) and the rest receive a zero budget — the shed
// signal: a zero-budget stream must time-slice (the serving controller
// alternates it between skipped and serial frames) instead of pretending
// it owns a core that does not exist. Zero, negative and non-finite
// demands are treated as zero.
func SplitCores(total int, demands []float64) ([]int, error) {
	n := len(demands)
	if n == 0 {
		return nil, fmt.Errorf("sched: no demands to split %d cores over", total)
	}
	if total < 1 {
		return nil, fmt.Errorf("sched: cannot split %d cores", total)
	}
	budgets := make([]int, n)
	if total < n {
		// Deterministic degradation: one core each for the total
		// highest-demand applications, zero for the rest. Sorting the
		// indices (not the demands) keeps ties stable by index.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		d := func(i int) float64 {
			v := demands[i]
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return v
		}
		sort.SliceStable(order, func(a, b int) bool { return d(order[a]) > d(order[b]) })
		for _, i := range order[:total] {
			budgets[i] = 1
		}
		return budgets, nil
	}
	for i := range budgets {
		budgets[i] = 1
	}
	spare := total - n
	if spare <= 0 {
		return budgets, nil
	}
	sum := 0.0
	for _, d := range demands {
		if d > 0 && !math.IsNaN(d) && !math.IsInf(d, 0) {
			sum += d
		}
	}
	if sum <= 0 {
		// No demand signal yet: round-robin the spare cores.
		for i := 0; i < spare; i++ {
			budgets[i%n]++
		}
		return budgets, nil
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	given := 0
	for i, d := range demands {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			d = 0
		}
		share := d / sum * float64(spare)
		whole := int(share)
		budgets[i] += whole
		given += whole
		rems[i] = rem{idx: i, frac: share - float64(whole)}
	}
	// Largest remainder first; ties broken by index for determinism.
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; given < spare; i++ {
		budgets[rems[i%n].idx]++
		given++
	}
	return budgets, nil
}

// CoreNeed returns how many cores an application needs to bring demandMs of
// predicted serial work under its budgetMs deadline, assuming the striping
// scales ideally, clamped to [1, maxCores]. It is deliberately optimistic —
// the manager's own Plan applies the Amdahl correction — so the arbiter uses
// it only as a load signal, not as a guarantee.
func CoreNeed(demandMs, budgetMs float64, maxCores int) int {
	if maxCores < 1 {
		maxCores = 1
	}
	if demandMs <= 0 || budgetMs <= 0 || math.IsNaN(demandMs) || math.IsNaN(budgetMs) {
		return 1
	}
	need := int(math.Ceil(demandMs / budgetMs))
	if need < 1 {
		need = 1
	}
	if need > maxCores {
		need = maxCores
	}
	return need
}

// MultiManager arbitrates one machine's cores across several concurrently
// running streams. Streams report their per-frame predicted demand from
// their own goroutines; Rebalance re-divides the cores proportionally. The
// MultiManager never touches the streams' Managers directly — each stream
// reads its budget with BudgetFor and applies it to its own Manager, so the
// Manager itself stays single-goroutine (see the Engine concurrency
// contract in internal/pipeline).
//
// Reported demands are smoothed with an EWMA before the split: per-frame
// Triple-C predictions swing with the data-dependent scenario (a stream
// whose registration fails every other frame alternates between the cheap
// and the full pipeline), and re-dividing cores on every swing would thrash
// the allocation. The filter tracks each stream's demand level the same way
// the paper's Eq. 1 EWMA tracks long-term task-time structure.
//
// All methods are safe for concurrent use.
type MultiManager struct {
	// Alpha is the demand-smoothing factor in (0, 1]; 1 disables smoothing.
	// Mutate only before the first ReportDemand.
	Alpha float64
	// Metrics, when set, publishes every applied re-division (see
	// MultiMetrics). Mutate only before the first Rebalance.
	Metrics *MultiMetrics
	// OnRebalance, when set, is invoked after every applied re-division with
	// the previous and new per-stream core budgets (the span layer's
	// rebalance instant). It runs under the manager's lock and must not call
	// back into the MultiManager. Mutate only before the first Rebalance.
	OnRebalance func(before, after []int)

	mu         sync.Mutex
	totalCores int
	demands    []float64
	seen       []bool
	active     []bool
	budgets    []int
	rebalances int
}

// NewMultiManager builds an arbiter for n streams over totalCores host
// cores. Initially every stream holds an equal share.
func NewMultiManager(totalCores, n int) (*MultiManager, error) {
	if totalCores < 1 {
		return nil, fmt.Errorf("sched: multi-manager needs at least one core, got %d", totalCores)
	}
	if n < 1 {
		return nil, fmt.Errorf("sched: multi-manager needs at least one stream, got %d", n)
	}
	mm := &MultiManager{
		Alpha:      0.25,
		totalCores: totalCores,
		demands:    make([]float64, n),
		seen:       make([]bool, n),
		active:     make([]bool, n),
		budgets:    make([]int, n),
	}
	for i := range mm.active {
		mm.active[i] = true
	}
	even, err := SplitCores(totalCores, mm.demands)
	if err != nil {
		return nil, err
	}
	mm.budgets = even
	return mm, nil
}

// TotalCores returns the machine size being arbitrated.
func (mm *MultiManager) TotalCores() int { return mm.totalCores }

// ReportDemand folds stream i's latest predicted serial demand (ms) into
// its smoothed demand level.
func (mm *MultiManager) ReportDemand(i int, predictedMs float64) {
	if math.IsNaN(predictedMs) || math.IsInf(predictedMs, 0) || predictedMs < 0 {
		return
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if i < 0 || i >= len(mm.demands) || !mm.active[i] {
		return
	}
	a := mm.Alpha
	if a <= 0 || a > 1 {
		a = 1
	}
	if !mm.seen[i] {
		mm.demands[i] = predictedMs
		mm.seen[i] = true
		return
	}
	mm.demands[i] = (1-a)*mm.demands[i] + a*predictedMs
}

// Rebalance re-divides the cores from the currently reported demands and
// returns a copy of the new per-stream budgets. Retired streams are excluded
// from the split and hold a zero budget.
func (mm *MultiManager) Rebalance() []int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.rebalanceLocked()
	out := make([]int, len(mm.budgets))
	copy(out, mm.budgets)
	return out
}

func (mm *MultiManager) rebalanceLocked() {
	// Compact the active streams, split the full machine among them, and
	// scatter the shares back; retired slots get zero.
	idx := make([]int, 0, len(mm.demands))
	live := make([]float64, 0, len(mm.demands))
	for i, d := range mm.demands {
		if mm.active[i] {
			idx = append(idx, i)
			live = append(live, d)
		}
	}
	if len(idx) == 0 {
		return
	}
	b, err := SplitCores(mm.totalCores, live)
	if err != nil {
		return
	}
	var before []int
	if mm.OnRebalance != nil {
		before = make([]int, len(mm.budgets))
		copy(before, mm.budgets)
	}
	for i := range mm.budgets {
		mm.budgets[i] = 0
	}
	for j, i := range idx {
		mm.budgets[i] = b[j]
	}
	mm.rebalances++
	if m := mm.Metrics; m != nil {
		m.Rebalances.Inc()
		if len(m.CoreAllocation) == len(mm.budgets) {
			for i, cores := range mm.budgets {
				m.CoreAllocation[i].Set(float64(cores))
			}
		}
	}
	if mm.OnRebalance != nil {
		mm.OnRebalance(before, mm.budgets)
	}
}

// Retire permanently removes stream i from the arbitration (it crashed past
// its restart budget and was quarantined): its demand is zeroed, it receives
// a zero budget, and the machine is immediately re-divided among the
// remaining active streams so they regain the quarantined stream's cores
// without waiting for the next control period.
func (mm *MultiManager) Retire(i int) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if i < 0 || i >= len(mm.active) || !mm.active[i] {
		return
	}
	mm.active[i] = false
	mm.demands[i] = 0
	mm.seen[i] = false
	mm.rebalanceLocked()
}

// ActiveStreams returns how many streams are still being arbitrated.
func (mm *MultiManager) ActiveStreams() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	n := 0
	for _, a := range mm.active {
		if a {
			n++
		}
	}
	return n
}

// BudgetFor returns stream i's current core budget. A zero budget is the
// shed signal: either the stream was retired, or the machine is
// oversubscribed (more live streams than cores) and this stream lost the
// demand ranking — it must time-slice rather than plan with cores it does
// not own.
func (mm *MultiManager) BudgetFor(i int) int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if i < 0 || i >= len(mm.budgets) {
		return 1
	}
	return mm.budgets[i]
}

// Rebalances returns how many re-divisions have been applied.
func (mm *MultiManager) Rebalances() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.rebalances
}

// Demands returns a copy of the latest reported per-stream demands.
func (mm *MultiManager) Demands() []float64 {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out := make([]float64, len(mm.demands))
	copy(out, mm.demands)
	return out
}

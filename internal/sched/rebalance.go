package sched

import (
	"fmt"
	"math"
	"sync"
)

// This file adds the dynamic cross-stream core re-allocation used by the
// multi-stream serving layer (internal/stream): RunMultiApp in multi.go
// co-schedules applications under *static* budgets fixed up front, while a
// MultiManager re-divides the machine between streams every control period
// from their latest Triple-C predictions — the arbitration shape of
// "Resource Allocation for Multiple Concurrent In-Network Stream-Processing
// Applications" (Benoit et al., 2009) applied to the paper's runtime
// manager. The division itself is delegated to a Mapper (mapper.go): the
// greedy proportional baseline by default, the bi-criteria Pareto optimizer
// (internal/mapping) when configured.

// PredictedDemandMs is the manager's per-frame demand signal for
// cross-stream arbitration: the summed per-task Triple-C predictions for
// the scenario the stream is currently in (the most recently observed one).
// Conditioning on the observed scenario instead of the scenario table's
// most-likely successor matters for arbitration: the per-task models adapt
// online, so a stream stuck in a cheap degenerate mode (say, registration
// failing every frame) reports its true few-ms demand even though the
// offline-trained table still predicts a switch back to the full pipeline.
// Before any observation it falls back to the worst-case forecast. A
// steering source (promoted shadow backend, see steer.go) replaces the
// predictor here too, and an installed tail guard raises the reported
// demand to its total forecast whenever that is larger — so the skip/serial
// controller and the core arbiter provision for the predicted P90 tail
// instead of the mean.
func (m *Manager) PredictedDemandMs() float64 {
	var d float64
	if src := m.demandSource(); src != nil && src.DemandInto(&m.demandPred) {
		d = m.demandPred.TotalMs
	} else if last, ok := m.predictor.LastScenario(); ok {
		d = m.predictor.PredictForTasks(last.ActiveTasks(), m.predictor.NextContext())
	} else {
		d = m.predictor.PredictNext().TotalMs
	}
	if tg := m.tailSource(); tg != nil && tg.DemandInto(&m.demandPred) && m.demandPred.TotalMs > d {
		d = m.demandPred.TotalMs
	}
	return d
}

// SplitCores divides total cores across applications proportionally to
// their predicted per-frame demand (ms of serial work). The fractional
// shares are settled by largest remainder, and the returned budgets sum to
// exactly total for every input — SplitCores never over-commits the
// machine. When there are at least as many cores as applications, every
// application is floored at one core. When there are *more applications
// than cores* (the oversubscribed serving regime), the total
// highest-demand applications receive one core each (ties broken by lower
// index for determinism) and the rest receive a zero budget — the shed
// signal: a zero-budget stream must time-slice (the serving controller
// alternates it between skipped and serial frames) instead of pretending
// it owns a core that does not exist. Zero, negative and non-finite
// demands are treated as zero.
func SplitCores(total int, demands []float64) ([]int, error) {
	budgets := make([]int, len(demands))
	var s splitScratch
	if err := splitInto(budgets, total, demands, &s); err != nil {
		return nil, err
	}
	return budgets, nil
}

// splitInto is the allocation-free core of SplitCores: budgets is
// caller-provided output of len(demands), s holds reusable sort buffers.
// The small sorts are stable insertion sorts — the stream count is a
// handful, and avoiding sort.Slice keeps the steady-state rebalance path
// heap-free.
func splitInto(budgets []int, total int, demands []float64, s *splitScratch) error {
	n := len(demands)
	if n == 0 {
		return fmt.Errorf("sched: no demands to split %d cores over", total)
	}
	if total < 1 {
		return fmt.Errorf("sched: cannot split %d cores", total)
	}
	if len(budgets) != n {
		return fmt.Errorf("sched: %d budget slots for %d demands", len(budgets), n)
	}
	s.grow(n)
	for i := range budgets {
		budgets[i] = 0
	}
	if total < n {
		// Deterministic degradation: one core each for the total
		// highest-demand applications, zero for the rest. A stable
		// descending sort keeps ties ordered by index.
		order := s.order[:0]
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		for i := 1; i < n; i++ {
			for j := i; j > 0 && sanitizeDemand(demands[order[j]]) > sanitizeDemand(demands[order[j-1]]); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, i := range order[:total] {
			budgets[i] = 1
		}
		return nil
	}
	for i := range budgets {
		budgets[i] = 1
	}
	spare := total - n
	if spare <= 0 {
		return nil
	}
	sum := 0.0
	for _, d := range demands {
		sum += sanitizeDemand(d)
	}
	if sum <= 0 {
		// No demand signal yet: round-robin the spare cores.
		for i := 0; i < spare; i++ {
			budgets[i%n]++
		}
		return nil
	}
	rems := s.rems[:0]
	given := 0
	for i, d := range demands {
		d = sanitizeDemand(d)
		share := d / sum * float64(spare)
		whole := int(share)
		budgets[i] += whole
		given += whole
		rems = append(rems, rem{idx: i, frac: share - float64(whole)})
	}
	// Largest remainder first; ties broken by index for determinism.
	remLess := func(a, b rem) bool {
		if a.frac != b.frac {
			return a.frac > b.frac
		}
		return a.idx < b.idx
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && remLess(rems[j], rems[j-1]); j-- {
			rems[j], rems[j-1] = rems[j-1], rems[j]
		}
	}
	for i := 0; given < spare; i++ {
		budgets[rems[i%n].idx]++
		given++
	}
	return nil
}

// CoreNeed returns how many cores an application needs to bring demandMs of
// predicted serial work under its budgetMs deadline, assuming the striping
// scales ideally, clamped to [1, maxCores]. It is deliberately optimistic —
// the manager's own Plan applies the Amdahl correction — so the arbiter uses
// it only as a load signal, not as a guarantee.
func CoreNeed(demandMs, budgetMs float64, maxCores int) int {
	if maxCores < 1 {
		maxCores = 1
	}
	if demandMs <= 0 || budgetMs <= 0 || math.IsNaN(demandMs) || math.IsNaN(budgetMs) {
		return 1
	}
	need := int(math.Ceil(demandMs / budgetMs))
	if need < 1 {
		need = 1
	}
	if need > maxCores {
		need = maxCores
	}
	return need
}

// MultiManager arbitrates one machine's cores across several concurrently
// running streams. Streams report their per-frame predicted demand from
// their own goroutines; Rebalance re-divides the cores through the
// configured Mapper. The MultiManager never touches the streams' Managers
// directly — each stream reads its budget with BudgetFor (and its execution
// structure with PlanFor) and applies it to its own Manager, so the Manager
// itself stays single-goroutine (see the Engine concurrency contract in
// internal/pipeline).
//
// Reported demands are smoothed with an EWMA before the split: per-frame
// Triple-C predictions swing with the data-dependent scenario (a stream
// whose registration fails every other frame alternates between the cheap
// and the full pipeline), and re-dividing cores on every swing would thrash
// the allocation. The filter tracks each stream's demand level the same way
// the paper's Eq. 1 EWMA tracks long-term task-time structure.
//
// All methods are safe for concurrent use.
type MultiManager struct {
	// Alpha is the demand-smoothing factor in (0, 1]; 1 disables smoothing.
	// Mutate only before the first ReportDemand.
	Alpha float64
	// Mapper decides the per-stream plans at each re-division; nil selects
	// the greedy proportional baseline. It is invoked under the manager's
	// lock and must not call back in. Mutate only before the first
	// Rebalance.
	Mapper Mapper
	// Metrics, when set, publishes every applied re-division (see
	// MultiMetrics). Mutate only before the first Rebalance.
	Metrics *MultiMetrics
	// OnRebalance, when set, is invoked after every applied re-division with
	// the previous and new per-stream core budgets (the span layer's
	// rebalance instant). It runs under the manager's lock and must not call
	// back into the MultiManager. Mutate only before the first Rebalance.
	OnRebalance func(before, after []int)

	mu         sync.Mutex
	totalCores int
	demands    []StreamDemand
	seen       []bool
	active     []bool
	budgets    []int
	plans      []StreamPlan
	rebalances int

	// Reusable scratch so the steady-state rebalance path allocates nothing
	// (pinned by BenchmarkRebalance / TestRebalanceAllocFree).
	greedy    GreedyMapper
	idxBuf    []int
	demandBuf []StreamDemand
	planBuf   []StreamPlan
	coreBuf   []int
	beforeBuf []int
}

// NewMultiManager builds an arbiter for n streams over totalCores host
// cores. Initially every stream holds an equal share.
func NewMultiManager(totalCores, n int) (*MultiManager, error) {
	if totalCores < 1 {
		return nil, fmt.Errorf("sched: multi-manager needs at least one core, got %d", totalCores)
	}
	if n < 1 {
		return nil, fmt.Errorf("sched: multi-manager needs at least one stream, got %d", n)
	}
	mm := &MultiManager{
		Alpha:      0.25,
		totalCores: totalCores,
		demands:    make([]StreamDemand, n),
		seen:       make([]bool, n),
		active:     make([]bool, n),
		budgets:    make([]int, n),
		plans:      make([]StreamPlan, n),
		idxBuf:     make([]int, 0, n),
		demandBuf:  make([]StreamDemand, 0, n),
		planBuf:    make([]StreamPlan, n),
		coreBuf:    make([]int, n),
		beforeBuf:  make([]int, n),
	}
	for i := range mm.active {
		mm.active[i] = true
	}
	mm.greedy.scratch.grow(n)
	// Initial division: no demand signal yet, so splitInto round-robins the
	// machine evenly. Not counted as a rebalance.
	zeros := make([]float64, n)
	if err := splitInto(mm.budgets, totalCores, zeros, &mm.greedy.scratch); err != nil {
		return nil, err
	}
	for i, b := range mm.budgets {
		mm.plans[i] = GreedyPlan(b)
	}
	return mm, nil
}

// TotalCores returns the machine size being arbitrated.
func (mm *MultiManager) TotalCores() int { return mm.totalCores }

// ReportDemand folds stream i's latest predicted serial demand (ms) into
// its smoothed demand level. The scenario-conditioned cost profile, if any,
// is left untouched — use ReportStream to update both.
func (mm *MultiManager) ReportDemand(i int, predictedMs float64) {
	d := StreamDemand{TotalMs: predictedMs}
	mm.ReportStream(i, &d)
}

// ReportStream folds stream i's latest demand signal — scalar demand plus
// the scenario-conditioned cost profile — into its smoothed state. The first
// report is taken verbatim; later reports are EWMA-blended with Alpha. A
// report with an empty profile updates only the scalar (the profile keeps
// its last value), and a zero BudgetMs keeps the previously reported
// deadline. Allocation-free.
func (mm *MultiManager) ReportStream(i int, d *StreamDemand) {
	if d == nil || math.IsNaN(d.TotalMs) || math.IsInf(d.TotalMs, 0) || d.TotalMs < 0 {
		return
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if i < 0 || i >= len(mm.demands) || !mm.active[i] {
		return
	}
	a := mm.Alpha
	if a <= 0 || a > 1 {
		a = 1
	}
	cur := &mm.demands[i]
	if !mm.seen[i] {
		*cur = *d
		mm.seen[i] = true
		return
	}
	cur.TotalMs = (1-a)*cur.TotalMs + a*d.TotalMs
	if d.BudgetMs > 0 {
		cur.BudgetMs = d.BudgetMs
	}
	if d.FrameKB > 0 {
		cur.FrameKB = d.FrameKB
	}
	cur.Profile.Fold(&d.Profile, a)
}

// Rebalance re-divides the cores from the currently reported demands and
// returns a copy of the new per-stream budgets. Retired streams are excluded
// from the division and hold a zero budget.
func (mm *MultiManager) Rebalance() []int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.rebalanceLocked()
	out := make([]int, len(mm.budgets))
	copy(out, mm.budgets)
	return out
}

// Redivide is Rebalance without the defensive copy: the steady-state
// control-loop entry point for callers that read budgets back per stream
// with BudgetFor/PlanFor. With the default greedy mapper it performs no
// heap allocation.
func (mm *MultiManager) Redivide() {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.rebalanceLocked()
}

func (mm *MultiManager) rebalanceLocked() {
	// Compact the active streams, map the full machine onto them, and
	// scatter the plans back; retired slots get zero.
	idx := mm.idxBuf[:0]
	dem := mm.demandBuf[:0]
	for i := range mm.demands {
		if mm.active[i] {
			idx = append(idx, i)
			dem = append(dem, mm.demands[i])
		}
	}
	if len(idx) == 0 {
		return
	}
	plans := mm.planBuf[:len(idx)]
	var err error
	if mm.Mapper == nil {
		err = mm.greedy.mapInto(mm.coreBuf[:len(idx)], mm.totalCores, dem, plans)
	} else {
		err = mm.Mapper.Map(mm.totalCores, dem, plans)
	}
	if err != nil || ValidatePlans(mm.totalCores, plans) != nil {
		// A mapper that fails or violates its post-conditions leaves the
		// previous division in force: a stale budget beats a broken one.
		return
	}
	var before []int
	if mm.OnRebalance != nil {
		before = mm.beforeBuf[:len(mm.budgets)]
		copy(before, mm.budgets)
	}
	for i := range mm.budgets {
		mm.budgets[i] = 0
		mm.plans[i] = StreamPlan{}
	}
	for j, i := range idx {
		mm.budgets[i] = plans[j].Cores
		mm.plans[i] = plans[j]
	}
	mm.rebalances++
	if m := mm.Metrics; m != nil {
		m.Rebalances.Inc()
		if len(m.CoreAllocation) == len(mm.budgets) {
			for i, cores := range mm.budgets {
				m.CoreAllocation[i].Set(float64(cores))
			}
		}
	}
	if mm.OnRebalance != nil {
		mm.OnRebalance(before, mm.budgets)
	}
}

// Retire permanently removes stream i from the arbitration (it crashed past
// its restart budget and was quarantined): its demand is zeroed, it receives
// a zero budget, and the machine is immediately re-divided among the
// remaining active streams so they regain the quarantined stream's cores
// without waiting for the next control period.
func (mm *MultiManager) Retire(i int) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if i < 0 || i >= len(mm.active) || !mm.active[i] {
		return
	}
	mm.active[i] = false
	mm.demands[i] = StreamDemand{}
	mm.seen[i] = false
	mm.rebalanceLocked()
	mm.budgets[i] = 0
	mm.plans[i] = StreamPlan{}
}

// ActiveStreams returns how many streams are still being arbitrated.
func (mm *MultiManager) ActiveStreams() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	n := 0
	for _, a := range mm.active {
		if a {
			n++
		}
	}
	return n
}

// BudgetFor returns stream i's current core budget. A zero budget is the
// shed signal: either the stream was retired, or the machine is
// oversubscribed (more live streams than cores) and this stream lost the
// demand ranking — it must time-slice rather than plan with cores it does
// not own.
func (mm *MultiManager) BudgetFor(i int) int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if i < 0 || i >= len(mm.budgets) {
		return 1
	}
	return mm.budgets[i]
}

// PlanFor returns stream i's current execution plan — the mapping decision
// behind BudgetFor's scalar. Out-of-range indices return a one-core serial
// plan, mirroring BudgetFor.
func (mm *MultiManager) PlanFor(i int) StreamPlan {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if i < 0 || i >= len(mm.plans) {
		return StreamPlan{Cores: 1}
	}
	return mm.plans[i]
}

// Rebalances returns how many re-divisions have been applied.
func (mm *MultiManager) Rebalances() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.rebalances
}

// Demands returns a copy of the latest smoothed per-stream scalar demands.
func (mm *MultiManager) Demands() []float64 {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out := make([]float64, len(mm.demands))
	for i := range mm.demands {
		out[i] = mm.demands[i].TotalMs
	}
	return out
}

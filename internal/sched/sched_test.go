package sched

import (
	"testing"

	"triplec/internal/core"
	"triplec/internal/frame"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/platform"
	"triplec/internal/synth"
	"triplec/internal/tasks"
)

func synthSeq(t *testing.T, seed uint64) *synth.Sequence {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.Width, cfg.Height = 128, 128
	cfg.MarkerSpacing = 36
	cfg.NoiseSigma = 250
	cfg.QuantumGain = 0
	cfg.ClutterRate = 3
	cfg.DropoutEvery = 23
	s, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newEngine(t *testing.T) *pipeline.Engine {
	t.Helper()
	e, err := pipeline.New(pipeline.Config{
		Width: 128, Height: 128, MarkerSpacing: 36, Arch: platform.Blackford(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func trainedPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	var sets [][]core.Observation
	for i := 0; i < 4; i++ {
		seq := synthSeq(t, 5000+uint64(i)*31)
		eng := newEngine(t)
		reports, err := eng.RunSequence(60, func(j int) *frame.Frame {
			f, _ := seq.Frame(j)
			return f
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, core.FromReports(reports, 128*128))
	}
	p, err := core.Train(sets, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.ResetOnline()
	return p
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, platform.Blackford()); err == nil {
		t.Fatal("nil predictor accepted")
	}
	bad := platform.Blackford()
	bad.NumCPUs = 0
	if _, err := NewManager(trainedPredictor(t), bad); err == nil {
		t.Fatal("invalid arch accepted")
	}
}

func TestInitBudget(t *testing.T) {
	m, err := NewManager(trainedPredictor(t), platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	m.InitBudget(100)
	if m.BudgetMs != 85 {
		t.Fatalf("budget = %v, want 85 (close to average case)", m.BudgetMs)
	}
}

func TestPlanWithoutBudgetIsSerial(t *testing.T) {
	m, err := NewManager(trainedPredictor(t), platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	dec := m.Plan()
	if dec.Mapping.String() != "serial" {
		t.Fatalf("budget-less plan = %v, want serial", dec.Mapping)
	}
}

func TestPlanStripesWhenOverBudget(t *testing.T) {
	p := trainedPredictor(t)
	m, err := NewManager(p, platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	// Tiny budget forces maximal parallelization of the worst-case
	// cold-start prediction (RDG FULL dominates).
	m.BudgetMs = 5
	dec := m.Plan()
	if dec.Mapping.StripesFor(tasks.NameRDGFull) < 2 {
		t.Fatalf("over-budget plan did not stripe RDG FULL: %v", dec.Mapping)
	}
	if err := dec.Mapping.Validate(8); err != nil {
		t.Fatalf("planned mapping invalid: %v", err)
	}
	if dec.PredictedMs >= dec.SerialMs {
		t.Fatal("striped prediction must be below serial prediction")
	}
}

func TestPlanStaysSerialUnderGenerousBudget(t *testing.T) {
	p := trainedPredictor(t)
	m, err := NewManager(p, platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	m.BudgetMs = 10000
	dec := m.Plan()
	if dec.Mapping.String() != "serial" {
		t.Fatalf("under-budget plan must stay serial, got %v", dec.Mapping)
	}
}

func TestEstStripedMsMonotone(t *testing.T) {
	m, err := NewManager(trainedPredictor(t), platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	prev := m.estStripedMs(40, 1)
	for _, k := range []int{2, 4, 8} {
		cur := m.estStripedMs(40, k)
		if cur >= prev {
			t.Fatalf("striping to %d did not reduce the estimate (%v -> %v)", k, prev, cur)
		}
		prev = cur
	}
	if m.estStripedMs(40, 1) != 40 {
		t.Fatal("k=1 must be identity")
	}
}

func TestRunManagedValidation(t *testing.T) {
	m, _ := NewManager(trainedPredictor(t), platform.Blackford())
	if _, err := RunManaged(nil, m, 5, nil, 1); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := RunManaged(newEngine(t), nil, 5, nil, 1); err == nil {
		t.Fatal("nil manager accepted")
	}
	if _, err := RunManaged(newEngine(t), m, 0, nil, 1); err == nil {
		t.Fatal("zero frames accepted")
	}
}

// TestFig7Shape reproduces the paper's headline comparison: the
// semi-automatic parallel run must cut the worst-vs-average latency gap and
// the jitter substantially relative to the straightforward mapping.
func TestFig7Shape(t *testing.T) {
	const frames = 120
	seq := synthSeq(t, 424242)
	source := func(i int) *frame.Frame {
		f, _ := seq.Frame(i)
		return f
	}

	straightEng := newEngine(t)
	_, straight, err := RunStraightforward(straightEng, frames, source)
	if err != nil {
		t.Fatal(err)
	}

	p := trainedPredictor(t)
	mgr, err := NewManager(p, platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	managedEng := newEngine(t)
	managed, err := RunManaged(managedEng, mgr, frames, source, 128*128)
	if err != nil {
		t.Fatal(err)
	}

	cmp, err := Summarize(straight, managed)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("straight worst/avg=%.2f managed worst/avg=%.2f jitter reduction=%.2f overruns=%.2f budget=%.1f",
		cmp.StraightWorstVsAvg, cmp.ManagedWorstVsAvg, cmp.JitterReduction, cmp.OverrunRate, cmp.BudgetMs)

	if cmp.StraightWorstVsAvg < 0.4 {
		t.Fatalf("straightforward gap %.2f unexpectedly small (paper: ~85%%)", cmp.StraightWorstVsAvg)
	}
	if cmp.ManagedWorstVsAvg > cmp.StraightWorstVsAvg/2 {
		t.Fatalf("managed gap %.2f not clearly below straightforward %.2f",
			cmp.ManagedWorstVsAvg, cmp.StraightWorstVsAvg)
	}
	if cmp.JitterReduction < 0.5 {
		t.Fatalf("jitter reduction %.2f below 50%% (paper: ~70%%)", cmp.JitterReduction)
	}
	if cmp.OverrunRate > 0.25 {
		t.Fatalf("too many budget overruns: %.2f", cmp.OverrunRate)
	}
	if cmp.BudgetMs <= 0 {
		t.Fatal("budget was never initialized")
	}
}

func TestManagedMappingsValidate(t *testing.T) {
	seq := synthSeq(t, 31415)
	p := trainedPredictor(t)
	mgr, err := NewManager(p, platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunManaged(newEngine(t), mgr, 40, func(i int) *frame.Frame {
		f, _ := seq.Frame(i)
		return f
	}, 128*128)
	if err != nil {
		t.Fatal(err)
	}
	for i, dec := range res.Decisions {
		if err := dec.Mapping.Validate(8); err != nil {
			t.Fatalf("frame %d mapping invalid: %v", i, err)
		}
	}
	if len(res.Output) != 40 || len(res.Processing) != 40 {
		t.Fatal("series lengths wrong")
	}
}

func TestRepartitionFlag(t *testing.T) {
	p := trainedPredictor(t)
	m, err := NewManager(p, platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	m.BudgetMs = 5
	first := m.Plan()
	if !first.Repartition {
		t.Fatal("first non-serial plan must flag a repartition")
	}
	second := m.Plan()
	if second.Repartition {
		t.Fatal("identical consecutive plans must not flag a repartition")
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil, Result{Output: []float64{1}}); err == nil {
		t.Fatal("empty straight series accepted")
	}
}

func TestSpeedupPositive(t *testing.T) {
	c := CompareFig7{}
	res := Result{Output: []float64{40, 42}}
	if got := c.Speedup([]float64{80, 120}, res); got <= 1 {
		t.Fatalf("speedup = %v, want > 1", got)
	}
	if c.Speedup(nil, res) != 0 {
		t.Fatal("empty input must give 0")
	}
}

func TestRunStraightforwardSerialOnly(t *testing.T) {
	seq := synthSeq(t, 999)
	reports, lats, err := RunStraightforward(newEngine(t), 10, func(i int) *frame.Frame {
		f, _ := seq.Frame(i)
		return f
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 10 || len(lats) != 10 {
		t.Fatal("lengths wrong")
	}
	for _, r := range reports {
		for _, e := range r.Execs {
			if e.Stripes != 1 {
				t.Fatalf("straightforward run striped %s", e.Task)
			}
		}
	}
	_ = partition.Serial()
}

func TestStickyReducesRepartitions(t *testing.T) {
	seq := synthSeq(t, 606060)
	src := func(i int) *frame.Frame {
		f, _ := seq.Frame(i)
		return f
	}
	countRepartitions := func(sticky bool) (int, float64) {
		p := trainedPredictor(t)
		mgr, err := NewManager(p, platform.Blackford())
		if err != nil {
			t.Fatal(err)
		}
		mgr.Sticky = sticky
		res, err := RunManaged(newEngine(t), mgr, 80, src, 128*128)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, d := range res.Decisions {
			if d.Repartition {
				n++
			}
		}
		gap, err := Summarize(res.Processing, res)
		if err != nil {
			t.Fatal(err)
		}
		return n, gap.ManagedWorstVsAvg
	}
	churny, _ := countRepartitions(false)
	sticky, stickyGap := countRepartitions(true)
	if sticky > churny {
		t.Fatalf("sticky planning repartitioned more: %d vs %d", sticky, churny)
	}
	if stickyGap > 0.5 {
		t.Fatalf("sticky planning lost latency stability: gap %.2f", stickyGap)
	}
}

package sched

import (
	"testing"

	"triplec/internal/frame"
	"triplec/internal/partition"
	"triplec/internal/platform"
	"triplec/internal/tasks"
)

func TestCoresUsed(t *testing.T) {
	if CoresUsed(partition.Serial()) != 1 {
		t.Fatal("serial mapping must use one core")
	}
	m := partition.Mapping{tasks.NameRDGFull: 4, tasks.NameENH: 2}
	if CoresUsed(m) != 4 {
		t.Fatalf("CoresUsed = %d, want 4 (peak, not sum)", CoresUsed(m))
	}
}

func TestSetCoreBudgetValidation(t *testing.T) {
	m, err := NewManager(trainedPredictor(t), platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetCoreBudget(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := m.SetCoreBudget(9); err == nil {
		t.Fatal("budget above machine size accepted")
	}
	if err := m.SetCoreBudget(4); err != nil {
		t.Fatal(err)
	}
	if m.CoreBudget() != 4 {
		t.Fatal("budget not stored")
	}
}

func TestCoreBudgetLimitsPlans(t *testing.T) {
	p := trainedPredictor(t)
	m, err := NewManager(p, platform.Blackford())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetCoreBudget(2); err != nil {
		t.Fatal(err)
	}
	m.BudgetMs = 1 // force maximal striping
	dec := m.Plan()
	if used := CoresUsed(dec.Mapping); used > 2 {
		t.Fatalf("plan uses %d cores, budget is 2 (%v)", used, dec.Mapping)
	}
}

func TestRunMultiAppValidation(t *testing.T) {
	if _, err := RunMultiApp(nil, 5); err == nil {
		t.Fatal("no apps accepted")
	}
	p := trainedPredictor(t)
	m, _ := NewManager(p, platform.Blackford())
	app := App{Name: "a", Manager: m}
	if _, err := RunMultiApp([]App{app}, 5); err == nil {
		t.Fatal("incomplete app accepted")
	}
}

func TestRunMultiAppBudgetOverflow(t *testing.T) {
	mkApp := func(name string, seed uint64, budget int) App {
		p := trainedPredictor(t)
		m, err := NewManager(p, platform.Blackford())
		if err != nil {
			t.Fatal(err)
		}
		if budget > 0 {
			if err := m.SetCoreBudget(budget); err != nil {
				t.Fatal(err)
			}
		}
		seq := synthSeq(t, seed)
		return App{
			Name: name, Engine: newEngine(t), Manager: m,
			Source:      func(i int) *frame.Frame { f, _ := seq.Frame(i); return f },
			FramePixels: 128 * 128,
		}
	}
	// Two whole-machine apps cannot share an 8-core machine.
	apps := []App{mkApp("a", 1, 0), mkApp("b", 2, 0)}
	if _, err := RunMultiApp(apps, 3); err == nil {
		t.Fatal("over-committed machine accepted")
	}
}

// TestMultiAppSharesPlatform is the paper's "execute more functions on the
// same platform" claim: two independent imaging functions, each granted
// half the machine, both keep a bounded latency gap while their combined
// peak core demand never exceeds the platform.
func TestMultiAppSharesPlatform(t *testing.T) {
	mkApp := func(name string, seed uint64) App {
		p := trainedPredictor(t)
		m, err := NewManager(p, platform.Blackford())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetCoreBudget(4); err != nil {
			t.Fatal(err)
		}
		seq := synthSeq(t, seed)
		return App{
			Name: name, Engine: newEngine(t), Manager: m,
			Source:      func(i int) *frame.Frame { f, _ := seq.Frame(i); return f },
			FramePixels: 128 * 128,
		}
	}
	apps := []App{mkApp("angio-1", 1111), mkApp("angio-2", 2222)}
	res, err := RunMultiApp(apps, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerApp) != 2 {
		t.Fatalf("apps = %d", len(res.PerApp))
	}
	for i, peak := range res.PeakCores {
		if peak > 8 {
			t.Fatalf("frame %d: combined demand %d exceeds the machine", i, peak)
		}
	}
	for ai, r := range res.PerApp {
		if len(r.Output) != 60 {
			t.Fatalf("app %d output length %d", ai, len(r.Output))
		}
		gap, err := wva(r.Output)
		if err != nil {
			t.Fatal(err)
		}
		if gap > 0.6 {
			t.Fatalf("app %d worst-vs-avg gap %.2f too large under core budget", ai, gap)
		}
		if r.Regulator.OverrunRate(r.Processing) > 0.3 {
			t.Fatalf("app %d overruns too often", ai)
		}
	}
}

func wva(series []float64) (float64, error) {
	mean, worst := 0.0, series[0]
	for _, v := range series {
		mean += v
		if v > worst {
			worst = v
		}
	}
	mean /= float64(len(series))
	return (worst - mean) / mean, nil
}

package sched

import (
	"math"
	"testing"

	"triplec/internal/flowgraph"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/tasks"
)

// TestCoreNeedProperties sweeps the CoreNeed domain and checks the three
// invariants the arbiter leans on: the need is monotone non-decreasing in
// demand (for a fixed budget), never exceeds maxCores, and is at least one
// for any positive demand.
func TestCoreNeedProperties(t *testing.T) {
	budgets := []float64{0.5, 1, 5, 10, 33.3}
	demands := []float64{0.01, 0.5, 1, 2, 9.99, 10, 10.01, 50, 1000}
	for _, maxCores := range []int{1, 2, 4, 8, 64} {
		for _, b := range budgets {
			prev := 0
			for _, d := range demands {
				got := CoreNeed(d, b, maxCores)
				if got < 1 {
					t.Fatalf("CoreNeed(%v, %v, %d) = %d < 1", d, b, maxCores, got)
				}
				if got > maxCores {
					t.Fatalf("CoreNeed(%v, %v, %d) = %d > maxCores", d, b, maxCores, got)
				}
				if got < prev {
					t.Fatalf("CoreNeed not monotone in demand: budget %v maxCores %d, demand %v dropped to %d after %d",
						b, maxCores, d, got, prev)
				}
				prev = got
			}
		}
	}
}

// FuzzCoreNeed drives the same invariants from arbitrary (demand, budget,
// maxCores) triples, including the degenerate inputs (NaN, infinities,
// non-positive values) the scalar must absorb without panicking.
func FuzzCoreNeed(f *testing.F) {
	f.Add(10.0, 5.0, 4)
	f.Add(0.0, 0.0, 0)
	f.Add(math.Inf(1), 1.0, 8)
	f.Add(math.NaN(), math.NaN(), -3)
	f.Add(1e308, 1e-308, 1024)
	f.Fuzz(func(t *testing.T, demand, budget float64, maxCores int) {
		got := CoreNeed(demand, budget, maxCores)
		if got < 1 {
			t.Fatalf("CoreNeed(%v, %v, %d) = %d < 1", demand, budget, maxCores, got)
		}
		if lim := maxCores; lim >= 1 && got > lim {
			t.Fatalf("CoreNeed(%v, %v, %d) = %d > maxCores", demand, budget, maxCores, got)
		}
		if maxCores < 1 && got != 1 {
			t.Fatalf("CoreNeed(%v, %v, %d) = %d with clamped maxCores, want 1", demand, budget, maxCores, got)
		}
		// Monotonicity in demand for well-formed inputs.
		if budget > 0 && demand > 0 && !math.IsNaN(demand) && !math.IsInf(demand, 0) && demand > 1 {
			if lower := CoreNeed(demand/2, budget, maxCores); lower > got {
				t.Fatalf("CoreNeed(%v)=%d > CoreNeed(%v)=%d at budget %v", demand/2, lower, demand, got, budget)
			}
		}
	})
}

// TestGreedyMapperMatchesSplitCores: the mapper seam must not change the
// historical allocation — GreedyMapper's core budgets are exactly SplitCores
// over the scalar demands, and each plan is GreedyPlan of that share.
func TestGreedyMapperMatchesSplitCores(t *testing.T) {
	cases := []struct {
		total   int
		demands []float64
	}{
		{8, []float64{30, 10}},
		{8, []float64{1, 1, 1}},
		{3, []float64{5, 40, 40, 2}},
		{16, []float64{0, 0, 0, 0}},
		{5, []float64{math.NaN(), 10, -3}},
	}
	for _, tc := range cases {
		want, err := SplitCores(tc.total, tc.demands)
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]StreamDemand, len(tc.demands))
		for i, d := range tc.demands {
			ds[i].TotalMs = d
		}
		plans := make([]StreamPlan, len(ds))
		var g GreedyMapper
		if err := g.Map(tc.total, ds, plans); err != nil {
			t.Fatal(err)
		}
		for i, p := range plans {
			if p.Cores != want[i] {
				t.Fatalf("total %d demands %v: stream %d got %d cores, SplitCores says %d",
					tc.total, tc.demands, i, p.Cores, want[i])
			}
			if p != GreedyPlan(want[i]) {
				t.Fatalf("stream %d plan %+v != GreedyPlan(%d) %+v", i, p, want[i], GreedyPlan(want[i]))
			}
		}
		if err := ValidatePlans(tc.total, plans); err != nil {
			t.Fatalf("greedy plans invalid for total %d demands %v: %v", tc.total, tc.demands, err)
		}
	}
}

// FuzzGreedyMapperInvariants: for arbitrary machine sizes and demand
// vectors, the greedy mapper must always emit plans that pass ValidatePlans
// — cores conserved, floors respected, shed only when oversubscribed.
func FuzzGreedyMapperInvariants(f *testing.F) {
	f.Add(8, 30.0, 10.0, 1.0, uint8(2))
	f.Add(2, 0.0, 0.0, 0.0, uint8(3))
	f.Add(64, 1e9, 1e-9, math.Inf(1), uint8(4))
	f.Add(1, -5.0, math.NaN(), 7.0, uint8(1))
	f.Fuzz(func(t *testing.T, total int, d0, d1, d2 float64, n uint8) {
		if total < 1 || total > 512 {
			return
		}
		streams := int(n%8) + 1
		raw := []float64{d0, d1, d2}
		ds := make([]StreamDemand, streams)
		for i := range ds {
			ds[i].TotalMs = raw[i%len(raw)]
		}
		plans := make([]StreamPlan, streams)
		var g GreedyMapper
		if err := g.Map(total, ds, plans); err != nil {
			t.Fatalf("greedy map failed: %v", err)
		}
		if err := ValidatePlans(total, plans); err != nil {
			t.Fatalf("total %d streams %d demands %v: %v", total, streams, raw, err)
		}
		sum := 0
		for _, p := range plans {
			sum += p.Cores
		}
		if sum != total && total >= streams {
			t.Fatalf("greedy left cores on the table: used %d of %d", sum, total)
		}
	})
}

// TestStreamPlanMapping: the materialized stripe widths follow the plan's
// structure — pipelined plans stripe per stage partition, striped plans use
// the whole share, serial plans defer to the engine default.
func TestStreamPlanMapping(t *testing.T) {
	if m := (StreamPlan{Cores: 1}).Mapping(8); m != nil {
		t.Fatalf("serial plan materialized %v, want nil", m)
	}
	p := StreamPlan{Cores: 4, Pipelined: true, FrontCores: 1, BackCores: 3}
	m := p.Mapping(8)
	for _, task := range tasks.AllNames() {
		k := p.FrontCores
		if flowgraph.StageOf(task) == flowgraph.StageBack {
			k = p.BackCores
		}
		want := partition.MaxStripes(task, k)
		got := m[task]
		if want > 1 && got != want {
			t.Fatalf("task %s: stripe %d, want %d", task, got, want)
		}
		if want <= 1 && got != 0 {
			t.Fatalf("task %s: unexpected stripe entry %d", task, got)
		}
	}
	s := StreamPlan{Cores: 6, Striped: true}
	if got, want := s.Mapping(4), partition.Worst(4); len(got) != len(want) {
		t.Fatalf("striped mapping %v not capped at numCPUs: want %v", got, want)
	}
}

// TestValidatePlansRejects: each post-condition violation is caught.
func TestValidatePlansRejects(t *testing.T) {
	cases := []struct {
		name  string
		total int
		plans []StreamPlan
	}{
		{"overcommit", 4, []StreamPlan{{Cores: 3}, {Cores: 2}}},
		{"negative", 4, []StreamPlan{{Cores: -1}, {Cores: 2}}},
		{"shed with cores available", 4, []StreamPlan{{Cores: 4}, {Cores: 0}}},
		{"shed but structured", 1, []StreamPlan{{Cores: 1}, {Cores: 0, Striped: true}}},
		{"pipelined split mismatch", 4, []StreamPlan{{Cores: 4, Pipelined: true, FrontCores: 1, BackCores: 2}}},
		{"pipelined zero stage", 4, []StreamPlan{{Cores: 4, Pipelined: true, FrontCores: 0, BackCores: 4}}},
		{"oversubscribed undercommit", 2, []StreamPlan{{Cores: 1}, {Cores: 0}, {Cores: 0}}},
	}
	for _, tc := range cases {
		if err := ValidatePlans(tc.total, tc.plans); err == nil {
			t.Fatalf("%s: ValidatePlans accepted %v over %d cores", tc.name, tc.plans, tc.total)
		}
	}
	ok := []StreamPlan{{Cores: 2, Pipelined: true, FrontCores: 1, BackCores: 1}, {Cores: 2, Striped: true}}
	if err := ValidatePlans(4, ok); err != nil {
		t.Fatalf("valid plans rejected: %v", err)
	}
}

// TestRebalanceAllocFree pins the steady-state control path to zero heap
// allocations: once a MultiManager is warm, reporting demand (with a full
// cost profile) and re-dividing under the greedy mapper must not allocate.
func TestRebalanceAllocFree(t *testing.T) {
	mm, err := NewMultiManager(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := StreamDemand{TotalMs: 25, BudgetMs: 40, FrameKB: 128}
	d.Profile.Frames = 4
	d.Profile.Weight[0] = 1
	// Warm-up: first reports take the verbatim-copy path.
	for i := 0; i < 3; i++ {
		mm.ReportStream(i, &d)
	}
	mm.Redivide()
	avg := testing.AllocsPerRun(100, func() {
		d.TotalMs = 25
		mm.ReportStream(0, &d)
		mm.ReportStream(1, &d)
		mm.ReportStream(2, &d)
		mm.Redivide()
	})
	if avg != 0 {
		t.Fatalf("steady-state ReportStream+Redivide allocates %.1f objects/run, want 0", avg)
	}
}

// BenchmarkRebalance measures the steady-state cost of one control period:
// three demand reports plus a re-division on an 8-core machine.
func BenchmarkRebalance(b *testing.B) {
	mm, err := NewMultiManager(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	ds := [3]StreamDemand{
		{TotalMs: 30, BudgetMs: 40, FrameKB: 128},
		{TotalMs: 12, BudgetMs: 40, FrameKB: 128},
		{TotalMs: 55, BudgetMs: 40, FrameKB: 128},
	}
	for i := range ds {
		ds[i].Profile.Frames = 4
		ds[i].Profile.Weight[pipeline.NumScenarios-1] = 1
		mm.ReportStream(i, &ds[i])
	}
	mm.Redivide()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm.ReportStream(0, &ds[0])
		mm.ReportStream(1, &ds[1])
		mm.ReportStream(2, &ds[2])
		mm.Redivide()
	}
}

package sched

import (
	"fmt"
	"math"

	"triplec/internal/flowgraph"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/tasks"
)

// This file defines the arbiter's mapping seam: a Mapper turns per-stream
// demand signals into per-stream execution plans (cores + stage-to-core
// structure). The greedy baseline reproduces the historical behavior —
// SplitCores proportional division, pipeline iff the share allows two
// partitions, split the share evenly between the stages. The bi-criteria
// optimizer in internal/mapping implements the same interface and searches
// the mapping space instead.

// StreamDemand is one stream's demand signal for cross-stream arbitration.
type StreamDemand struct {
	// TotalMs is the smoothed predicted serial demand per frame (ms) — the
	// scalar SplitCores divides the machine proportionally to.
	TotalMs float64
	// BudgetMs is the stream's frame deadline (ms); 0 when unknown. The
	// optimizer uses it for deadline-tightness pressure.
	BudgetMs float64
	// FrameKB is the stream's per-frame payload size (KB); 0 when unknown.
	// The optimizer sizes the stage-handoff communication term with it.
	FrameKB int
	// Profile is the scenario-conditioned per-task cost model; a zero
	// profile (Frames == 0) means only TotalMs is known and mappers must
	// fall back to scalar reasoning.
	Profile pipeline.CostProfile
}

// StreamPlan is a mapper's decision for one stream.
type StreamPlan struct {
	// Cores is the stream's core budget; 0 is the shed signal (time-slice).
	Cores int
	// Pipelined selects the window-2 front/back overlap executor with the
	// stage partitions below; otherwise the stream runs frame-at-a-time.
	Pipelined bool
	// FrontCores and BackCores partition Cores between the two stages when
	// Pipelined (FrontCores + BackCores == Cores, both ≥ 1).
	FrontCores int
	BackCores  int
	// Striped stripes the partitionable tasks across all Cores without
	// pipelining (only meaningful when !Pipelined and Cores ≥ 2).
	Striped bool
}

// Mapping materializes the plan as the task-level stripe widths the engine
// executes: pipelined plans stripe each stage's tasks across that stage's
// partition, striped plans use the full budget, serial plans return nil
// (engine default). numCPUs caps stripe widths at the machine size.
func (p StreamPlan) Mapping(numCPUs int) partition.Mapping {
	switch {
	case p.Pipelined:
		m := partition.Mapping{}
		for _, t := range tasks.AllNames() {
			k := p.FrontCores
			if flowgraph.StageOf(t) == flowgraph.StageBack {
				k = p.BackCores
			}
			if k > numCPUs {
				k = numCPUs
			}
			if mx := partition.MaxStripes(t, k); mx > 1 {
				m[t] = mx
			}
		}
		return m
	case p.Striped && p.Cores >= 2:
		k := p.Cores
		if k > numCPUs {
			k = numCPUs
		}
		return partition.Worst(k)
	default:
		return nil
	}
}

// Mapper decides per-stream execution plans from demand signals. Map fills
// plans (len(plans) == len(demands)) without retaining either slice; the
// MultiManager calls it under its lock, so implementations must not call
// back into the manager and should avoid per-call allocation on the steady
// path.
type Mapper interface {
	Name() string
	Map(totalCores int, demands []StreamDemand, plans []StreamPlan) error
}

// GreedyMapper is the historical baseline: SplitCores proportional division
// on the scalar demands, pipeline iff the share allows two partitions, and
// an even front/back split (partition.Worst(share/2) per stage — exactly the
// PR-6 bench methodology).
type GreedyMapper struct {
	scratch splitScratch
}

// Name implements Mapper.
func (g *GreedyMapper) Name() string { return "greedy" }

// Map implements Mapper.
func (g *GreedyMapper) Map(totalCores int, demands []StreamDemand, plans []StreamPlan) error {
	if len(plans) != len(demands) {
		return fmt.Errorf("sched: %d plans for %d demands", len(plans), len(demands))
	}
	budgets := make([]int, len(demands))
	return g.mapInto(budgets, totalCores, demands, plans)
}

// mapInto is the allocation-free core of Map: budgets is caller-provided
// scratch of len(demands).
func (g *GreedyMapper) mapInto(budgets []int, totalCores int, demands []StreamDemand, plans []StreamPlan) error {
	g.scratch.demands = g.scratch.demands[:0]
	for _, d := range demands {
		g.scratch.demands = append(g.scratch.demands, d.TotalMs)
	}
	if err := splitInto(budgets, totalCores, g.scratch.demands, &g.scratch); err != nil {
		return err
	}
	for i, c := range budgets {
		plans[i] = GreedyPlan(c)
	}
	return nil
}

// GreedyPlan is the baseline per-stream structure for a core share: pipeline
// with an even stage split when the share allows two partitions, otherwise
// run serial.
func GreedyPlan(cores int) StreamPlan {
	p := StreamPlan{Cores: cores}
	if half := cores / 2; half >= 1 && cores >= 2 {
		p.Pipelined = true
		p.FrontCores = half
		p.BackCores = cores - half
	}
	return p
}

// DemandFromReports builds a stream's demand signal from a profiling prefix:
// mean serial latency as the scalar plus the full scenario-conditioned cost
// profile.
func DemandFromReports(reports []pipeline.Report, budgetMs float64) StreamDemand {
	d := StreamDemand{BudgetMs: budgetMs, Profile: pipeline.Profile(reports)}
	if len(reports) == 0 {
		return d
	}
	sum := 0.0
	for _, r := range reports {
		sum += r.LatencyMs
	}
	d.TotalMs = sum / float64(len(reports))
	return d
}

// ValidatePlans checks the Mapper post-conditions the serving layer relies
// on: budgets sum to at most totalCores; when the machine is not
// oversubscribed every stream holds at least one core; pipelined plans
// partition their share exactly; a zero budget appears only in the
// oversubscribed regime, where exactly totalCores streams hold one core.
func ValidatePlans(totalCores int, plans []StreamPlan) error {
	n := len(plans)
	sum, zeros := 0, 0
	for i, p := range plans {
		if p.Cores < 0 {
			return fmt.Errorf("sched: stream %d has negative budget %d", i, p.Cores)
		}
		sum += p.Cores
		if p.Cores == 0 {
			zeros++
			if p.Pipelined || p.Striped {
				return fmt.Errorf("sched: stream %d shed but still structured", i)
			}
		}
		if p.Pipelined {
			if p.FrontCores < 1 || p.BackCores < 1 || p.FrontCores+p.BackCores != p.Cores {
				return fmt.Errorf("sched: stream %d pipelined split %d+%d != %d cores",
					i, p.FrontCores, p.BackCores, p.Cores)
			}
		}
	}
	if sum > totalCores {
		return fmt.Errorf("sched: plans commit %d of %d cores", sum, totalCores)
	}
	if totalCores >= n && zeros > 0 {
		return fmt.Errorf("sched: %d streams shed with %d cores for %d streams", zeros, totalCores, n)
	}
	if totalCores < n && sum != totalCores {
		return fmt.Errorf("sched: oversubscribed plans use %d of %d cores", sum, totalCores)
	}
	return nil
}

// splitScratch holds the reusable buffers of splitInto so the steady-state
// rebalance path stays allocation-free.
type splitScratch struct {
	demands []float64
	order   []int
	rems    []rem
}

type rem struct {
	idx  int
	frac float64
}

func (s *splitScratch) grow(n int) {
	if cap(s.order) < n {
		s.order = make([]int, 0, n)
		s.rems = make([]rem, 0, n)
	}
	if cap(s.demands) < n {
		s.demands = make([]float64, 0, n)
	}
}

func sanitizeDemand(v float64) float64 {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

package pipeline

import (
	"math"
	"strings"
	"testing"

	"triplec/internal/frame"
)

// Regression: negative or NaN config values used to slip past the
// exactly-zero default checks and silently poison the bandwidth/throughput
// accounting.
func TestNewRejectsNegativeAndNaNConfig(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative ModelFrameKB", func(c *Config) { c.ModelFrameKB = -2048 }},
		{"negative FrameRate", func(c *Config) { c.FrameRate = -30 }},
		{"NaN FrameRate", func(c *Config) { c.FrameRate = math.NaN() }},
		{"NaN MarkerSpacing", func(c *Config) { c.MarkerSpacing = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
}

// Regression: charge used to discard the bandwidth.IntraTaskKB error, so a
// bad L2 size under-charged memory traffic with no signal. An L2 smaller
// than 1 KB passes the structural arch validation but truncates to zero
// capacity in the occupation model, which must now surface per report.
func TestChargeSurfacesAccountingErrors(t *testing.T) {
	cfg := testConfig()
	cfg.Arch.L2.SizeBytes = 512
	cfg.Arch.L2.LineBytes = 64
	cfg.Arch.L2.Assoc = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := testSeq(t, 5)
	f, _ := seq.Frame(0)
	rep, err := e.Process(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AccountingErrs) == 0 {
		t.Fatal("zero-capacity L2 produced no accounting errors")
	}
	for _, msg := range rep.AccountingErrs {
		if !strings.Contains(msg, "bandwidth accounting") {
			t.Fatalf("accounting error %q missing context", msg)
		}
	}
	// The healthy configuration stays clean.
	clean := newEngine(t)
	rep, err = clean.Process(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AccountingErrs) != 0 {
		t.Fatalf("healthy engine reported accounting errors: %v", rep.AccountingErrs)
	}
}

// Regression: a nil source func used to panic inside RunSequence, and a
// source returning nil mid-sequence surfaced only as a generic "empty
// frame" without the failing index.
func TestRunSequenceNilSource(t *testing.T) {
	e := newEngine(t)
	if _, err := e.RunSequence(3, nil, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestRunSequenceNilFrameNamesIndex(t *testing.T) {
	e := newEngine(t)
	seq := testSeq(t, 6)
	src := func(i int) *frame.Frame {
		if i == 2 {
			return nil
		}
		f, _ := seq.Frame(i)
		return f
	}
	_, err := e.RunSequence(5, src, nil)
	if err == nil {
		t.Fatal("nil frame mid-sequence accepted")
	}
	if !strings.Contains(err.Error(), "frame 2") {
		t.Fatalf("error %q does not name the failing frame index", err)
	}
}

package pipeline

import (
	"testing"

	"triplec/internal/frame"
	"triplec/internal/partition"
	"triplec/internal/platform"
	"triplec/internal/synth"
	"triplec/internal/tasks"
)

func testConfig() Config {
	return Config{
		Width: 128, Height: 128,
		MarkerSpacing: 36,
		Arch:          platform.Blackford(),
	}
}

func testSeq(t *testing.T, seed uint64) *synth.Sequence {
	t.Helper()
	cfg := synth.DefaultConfig(seed)
	cfg.Width, cfg.Height = 128, 128
	cfg.MarkerSpacing = 36
	cfg.NoiseSigma = 250
	cfg.QuantumGain = 0
	cfg.ClutterRate = 2
	cfg.DropoutEvery = 0
	s, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Width = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero width accepted")
	}
	cfg = testConfig()
	cfg.MarkerSpacing = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero spacing accepted")
	}
	cfg = testConfig()
	cfg.Arch.NumCPUs = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid arch accepted")
	}
}

func TestDefaults(t *testing.T) {
	e := newEngine(t)
	if e.cfg.ModelFrameKB != 2048 {
		t.Fatalf("ModelFrameKB default = %d, want 2048", e.cfg.ModelFrameKB)
	}
	if e.cfg.FrameRate != 30 {
		t.Fatalf("FrameRate default = %v, want 30", e.cfg.FrameRate)
	}
}

func TestProcessEmptyFrame(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Process(frame.New(0, 0), nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := e.Process(nil, nil); err == nil {
		t.Fatal("nil frame accepted")
	}
}

func TestProcessInvalidMapping(t *testing.T) {
	e := newEngine(t)
	f, _ := testSeq(t, 1).Frame(0)
	if _, err := e.Process(f, partition.Mapping{tasks.NameREG: 4}); err == nil {
		t.Fatal("invalid mapping accepted")
	}
}

func TestPipelineRecoversAndEnhances(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 7)
	var sawOutput, sawROI bool
	for i := 0; i < 30; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatencyMs <= 0 {
			t.Fatalf("frame %d: non-positive latency", i)
		}
		if rep.Output != nil {
			sawOutput = true
		}
		if !rep.ROI.Empty() {
			sawROI = true
		}
	}
	if !sawOutput {
		t.Fatal("pipeline never produced an enhanced output over 30 frames")
	}
	if !sawROI {
		t.Fatal("pipeline never estimated an ROI")
	}
}

func TestScenarioSwitching(t *testing.T) {
	// With contrast bursts scheduled, the pipeline must visit both RDG-on
	// and RDG-off scenarios, and both granularities.
	e := newEngine(t)
	s := testSeq(t, 11)
	seen := map[int]bool{}
	for i := 0; i < 60; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[rep.Scenario.Index()] = true
	}
	var rdgOn, rdgOff, roi, full bool
	for idx := range seen {
		sc := flowIdx(idx)
		if sc.RDGOn {
			rdgOn = true
		} else {
			rdgOff = true
		}
		if sc.ROIKnown {
			roi = true
		} else {
			full = true
		}
	}
	if !rdgOn || !rdgOff {
		t.Fatalf("pipeline did not switch RDG on and off: %v", seen)
	}
	if !roi || !full {
		t.Fatalf("pipeline did not switch granularity: %v", seen)
	}
}

func TestFirstFrameCannotRegister(t *testing.T) {
	e := newEngine(t)
	f, _ := testSeq(t, 13).Frame(0)
	rep, err := e.Process(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Registration.OK {
		t.Fatal("first frame registered without a predecessor")
	}
	if rep.Ran(tasks.NameENH) || rep.Ran(tasks.NameZOOM) {
		t.Fatal("enhancement must not run when registration fails")
	}
}

func TestROIGranularityReducesLatency(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 17)
	var fullLat, roiLat []float64
	for i := 0; i < 40; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Scenario.RDGOn {
			continue
		}
		if rep.Scenario.ROIKnown {
			roiLat = append(roiLat, rep.TaskMs(tasks.NameRDGROI))
		} else {
			fullLat = append(fullLat, rep.TaskMs(tasks.NameRDGFull))
		}
	}
	if len(fullLat) == 0 || len(roiLat) == 0 {
		t.Skip("sequence did not produce both granularities with RDG on")
	}
	if mean(roiLat) >= mean(fullLat) {
		t.Fatalf("ROI RDG (%.1f ms) must be cheaper than FULL (%.1f ms)",
			mean(roiLat), mean(fullLat))
	}
}

func TestStripingReducesRDGLatency(t *testing.T) {
	s := testSeq(t, 19)
	serialE := newEngine(t)
	stripedE := newEngine(t)
	var serialSum, stripedSum float64
	n := 0
	for i := 0; i < 20; i++ {
		f, _ := s.Frame(i)
		rs, err := serialE.Process(f, partition.Serial())
		if err != nil {
			t.Fatal(err)
		}
		rp, err := stripedE.Process(f, partition.TwoStripeRDG())
		if err != nil {
			t.Fatal(err)
		}
		if rs.Ran(tasks.NameRDGFull) && rp.Ran(tasks.NameRDGFull) {
			serialSum += rs.TaskMs(tasks.NameRDGFull)
			stripedSum += rp.TaskMs(tasks.NameRDGFull)
			n++
		}
	}
	if n == 0 {
		t.Skip("no common RDG FULL frames")
	}
	if stripedSum >= serialSum {
		t.Fatalf("2-stripe RDG (%.1f) must beat serial (%.1f)", stripedSum, serialSum)
	}
}

func TestLatencyInPaperBand(t *testing.T) {
	// With costs extrapolated to the 1024x1024 geometry, full-processing
	// frames must land in the paper's straightforward-mapping band
	// (roughly 30-130 ms; Fig. 7 shows 60-120 ms).
	e := newEngine(t)
	s := testSeq(t, 23)
	for i := 0; i < 40; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatencyMs < 2 || rep.LatencyMs > 200 {
			t.Fatalf("frame %d latency %.1f ms outside plausible band (scenario %s)",
				i, rep.LatencyMs, rep.Scenario)
		}
	}
}

func TestMemoryTrafficCharged(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 29)
	for i := 0; i < 10; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range rep.Execs {
			if ex.Task == tasks.NameRDGFull && ex.Cost.MemBytes <= 0 {
				t.Fatal("RDG FULL must carry cache-overflow memory traffic")
			}
		}
	}
}

func TestResetClearsState(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 31)
	for i := 0; i < 10; i++ {
		f, _ := s.Frame(i)
		if _, err := e.Process(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.Reset()
	f, _ := s.Frame(10)
	rep, err := e.Process(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Index != 0 {
		t.Fatalf("Reset must restart frame numbering, got %d", rep.Index)
	}
	if rep.Registration.OK {
		t.Fatal("Reset must clear the previous couple")
	}
	if rep.Scenario.ROIKnown {
		t.Fatal("Reset must clear the ROI")
	}
}

func TestRunSequence(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 37)
	reports, err := e.RunSequence(15, func(i int) *frame.Frame {
		f, _ := s.Frame(i)
		return f
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 15 {
		t.Fatalf("reports = %d, want 15", len(reports))
	}
	lats := Latencies(reports)
	if len(lats) != 15 || lats[0] <= 0 {
		t.Fatalf("latency series wrong: %v", lats)
	}
	if _, err := e.RunSequence(0, nil, nil); err == nil {
		t.Fatal("zero-length sequence accepted")
	}
}

func TestTaskSeries(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 41)
	reports, err := e.RunSequence(20, func(i int) *frame.Frame {
		f, _ := s.Frame(i)
		return f
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals, idx := TaskSeries(reports, tasks.NameMKXExt)
	if len(vals) != 20 || len(idx) != 20 {
		t.Fatalf("MKX runs every frame: got %d samples", len(vals))
	}
	enhVals, _ := TaskSeries(reports, tasks.NameENH)
	if len(enhVals) >= 20 {
		t.Fatal("ENH must not run on every frame (first frame cannot register)")
	}
}

func TestReportHelpers(t *testing.T) {
	r := Report{Execs: []TaskExec{{Task: tasks.NameENH, Ms: 24}}}
	if !r.Ran(tasks.NameENH) || r.Ran(tasks.NameZOOM) {
		t.Fatal("Ran wrong")
	}
	if r.TaskMs(tasks.NameENH) != 24 || r.TaskMs(tasks.NameZOOM) != 0 {
		t.Fatal("TaskMs wrong")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// flowIdx converts a scenario index back for assertions without importing
// flowgraph in every helper.
func flowIdx(i int) struct {
	RDGOn, ROIKnown, RegSuccess bool
} {
	return struct{ RDGOn, ROIKnown, RegSuccess bool }{
		RDGOn: i&4 != 0, ROIKnown: i&2 != 0, RegSuccess: i&1 != 0,
	}
}

func TestRealStripingIdenticalReports(t *testing.T) {
	seq := testSeq(t, 616)
	cfgA := testConfig()
	cfgB := testConfig()
	cfgB.RealStriping = true
	ea, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	m := partition.TwoStripeRDG()
	for i := 0; i < 15; i++ {
		f, _ := seq.Frame(i)
		ra, err := ea.Process(f, m)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := eb.Process(f, m)
		if err != nil {
			t.Fatal(err)
		}
		if ra.LatencyMs != rb.LatencyMs {
			t.Fatalf("frame %d: latency differs %v vs %v", i, ra.LatencyMs, rb.LatencyMs)
		}
		if ra.Scenario != rb.Scenario || ra.Candidates != rb.Candidates {
			t.Fatalf("frame %d: analysis outcome differs", i)
		}
	}
}

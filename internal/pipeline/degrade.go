package pipeline

import (
	"fmt"

	"triplec/internal/tasks"
)

// The degradation ladder makes the paper's data-dependent scenario switches
// available as *explicit* quality modes: under sustained overload or
// repeated failure the serving layer steps the pipeline down the ladder —
// shedding the most expensive optional work first, exactly the work the
// flow graph's own switches already prove the application survives without
// — and steps back up only after a cool-down, because switching quality
// modes has a transition cost of its own (cf. Jung et al.,
// arXiv:1603.05775: mode switches must be damped, not instantaneous).

// Quality is one rung of the degradation ladder, mildest first.
type Quality int

const (
	// QualityFull runs the whole flow graph.
	QualityFull Quality = iota
	// QualityRDGROI sheds full-frame ridge detection: RDG runs only at ROI
	// granularity (frames without a known ROI skip ridge detection), the
	// single most expensive task in the paper's Table 2.
	QualityRDGROI
	// QualityRDGOff sheds ridge detection entirely; marker extraction runs
	// on the raw frame.
	QualityRDGOff
	// QualityNoZoom additionally sheds the output zoom (the enhanced frame
	// is still computed for the temporal stack, but no zoomed output is
	// produced).
	QualityNoZoom
	// QualitySerial is the bottom rung: in addition to the NoZoom shedding
	// the serving layer forces the serial mapping, shrinking the stream's
	// core footprint to one.
	QualitySerial
)

// QualityMax is the bottom of the ladder.
const QualityMax = QualitySerial

func (q Quality) String() string {
	switch q {
	case QualityFull:
		return "full"
	case QualityRDGROI:
		return "rdg-roi"
	case QualityRDGOff:
		return "rdg-off"
	case QualityNoZoom:
		return "no-zoom"
	case QualitySerial:
		return "serial"
	}
	return fmt.Sprintf("quality(%d)", int(q))
}

// Sheds reports whether the quality level suppresses the given task.
func (q Quality) Sheds(name tasks.Name) bool {
	switch name {
	case tasks.NameRDGFull:
		return q >= QualityRDGROI
	case tasks.NameRDGROI:
		return q >= QualityRDGOff
	case tasks.NameZOOM:
		return q >= QualityNoZoom
	}
	return false
}

// ForceSerial reports whether the level demands the serial mapping.
func (q Quality) ForceSerial() bool { return q >= QualitySerial }

// DegraderConfig tunes the ladder's transition hysteresis. All counts are
// frames; the zero value means defaults.
type DegraderConfig struct {
	// StepDownAfter is the consecutive bad frames (deadline miss, task
	// failure, abandonment) that trigger a step down (default 3).
	StepDownAfter int
	// StepUpAfter is the consecutive good frames required to step back up
	// one rung — the cool-down (default 24; much larger than StepDownAfter
	// so the ladder reacts fast and recovers cautiously).
	StepUpAfter int
	// MinDwell is the minimum number of frames between two transitions, in
	// either direction, damping oscillation when the load sits exactly at a
	// rung boundary (default 8).
	MinDwell int
}

func (c DegraderConfig) withDefaults() DegraderConfig {
	if c.StepDownAfter == 0 {
		c.StepDownAfter = 3
	}
	if c.StepUpAfter == 0 {
		c.StepUpAfter = 24
	}
	if c.MinDwell == 0 {
		c.MinDwell = 8
	}
	return c
}

// Validate rejects negative hysteresis counts.
func (c DegraderConfig) Validate() error {
	if c.StepDownAfter < 0 || c.StepUpAfter < 0 || c.MinDwell < 0 {
		return fmt.Errorf("pipeline: degrader counts must be non-negative, got down=%d up=%d dwell=%d",
			c.StepDownAfter, c.StepUpAfter, c.MinDwell)
	}
	return nil
}

// Degrader is the per-stream ladder state machine. It is driven from the
// stream's serving goroutine (one Observe per offered frame) and is not
// safe for concurrent use. All methods are nil-safe so the serving loop
// carries no degradation-enabled branches.
type Degrader struct {
	cfg         DegraderConfig
	level       Quality
	bad, good   int // consecutive outcome counters
	sinceSwitch int // frames since the last transition
	transitions int
}

// NewDegrader builds a ladder controller (zero-value config = defaults).
func NewDegrader(cfg DegraderConfig) (*Degrader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Degrader{cfg: cfg.withDefaults()}
	d.sinceSwitch = d.cfg.MinDwell // the first transition needs no dwell
	return d, nil
}

// Level returns the current rung (QualityFull on a nil degrader).
func (d *Degrader) Level() Quality {
	if d == nil {
		return QualityFull
	}
	return d.level
}

// Transitions returns how many rung changes have been applied.
func (d *Degrader) Transitions() int {
	if d == nil {
		return 0
	}
	return d.transitions
}

// Observe feeds one frame outcome (ok = processed within budget, no
// failure) and returns true when the ladder changed rung.
func (d *Degrader) Observe(ok bool) bool {
	if d == nil {
		return false
	}
	d.sinceSwitch++
	if ok {
		d.good++
		d.bad = 0
	} else {
		d.bad++
		d.good = 0
	}
	if d.sinceSwitch < d.cfg.MinDwell {
		return false
	}
	if d.bad >= d.cfg.StepDownAfter && d.level < QualityMax {
		d.level++
		d.step()
		return true
	}
	if d.good >= d.cfg.StepUpAfter && d.level > QualityFull {
		d.level--
		d.step()
		return true
	}
	return false
}

func (d *Degrader) step() {
	d.bad, d.good = 0, 0
	d.sinceSwitch = 0
	d.transitions++
}

package pipeline

import (
	"errors"
	"strings"
	"testing"

	"triplec/internal/tasks"
)

// gateFunc is a scriptable TaskGate for tests.
type gateFunc struct {
	allow   func(tasks.Name) bool
	records []struct {
		task tasks.Name
		ok   bool
	}
}

func (g *gateFunc) Allow(task tasks.Name) bool {
	if g.allow == nil {
		return true
	}
	return g.allow(task)
}

func (g *gateFunc) Record(task tasks.Name, ok bool) {
	g.records = append(g.records, struct {
		task tasks.Name
		ok   bool
	}{task, ok})
}

func TestProcessRecoversTaskPanic(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 17)

	// Panic exactly once, inside ENH of frame 2.
	e.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if task == tasks.NameENH && frameIdx == 2 {
			panic("injected enhancement fault")
		}
	})

	var taskErr *TaskError
	processed := 0
	for i := 0; i < 10; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			if !errors.As(err, &taskErr) {
				t.Fatalf("frame %d: error is not a TaskError: %v", i, err)
			}
			continue
		}
		processed++
		if rep.LatencyMs <= 0 {
			t.Fatalf("frame %d: bad report after recovery", i)
		}
	}
	if taskErr == nil {
		t.Fatal("injected panic did not surface as a TaskError")
	}
	if taskErr.Task != tasks.NameENH || taskErr.Frame != 2 {
		t.Fatalf("panic attributed to %s at frame %d, want ENH at 2", taskErr.Task, taskErr.Frame)
	}
	if taskErr.Cause != "injected enhancement fault" {
		t.Fatalf("cause %v lost", taskErr.Cause)
	}
	if len(taskErr.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(taskErr.Error(), "ENH") || !strings.Contains(taskErr.Error(), "frame 2") {
		t.Fatalf("error string %q lacks attribution", taskErr.Error())
	}
	if processed != 9 {
		t.Fatalf("%d frames processed after one recovered panic, want 9", processed)
	}
}

func TestRecoveredPanicResetsTemporalState(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 19)
	for i := 0; i < 5; i++ {
		f, _ := s.Frame(i)
		if _, err := e.Process(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if frameIdx == 5 {
			panic("poison")
		}
	})
	f, _ := s.Frame(5)
	if _, err := e.Process(f, nil); err == nil {
		t.Fatal("poisoned frame succeeded")
	}
	e.SetTaskHook(nil)
	// The frame after a recovered panic starts from a clean temporal stack:
	// no predecessor, so registration cannot succeed, like frame 0.
	f, _ = s.Frame(6)
	rep, err := e.Process(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Index != 6 {
		t.Fatalf("frame index %d after recovery, want 6", rep.Index)
	}
	if rep.Registration.OK {
		t.Fatal("registration succeeded against state from before the panic")
	}
	if rep.Scenario.ROIKnown {
		t.Fatal("stale ROI survived the panic")
	}
}

func TestHookPanicAttributedToHookedTask(t *testing.T) {
	e := newEngine(t)
	f, _ := testSeq(t, 23).Frame(0)
	e.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if task == tasks.NameMKXExt {
			panic(42)
		}
	})
	_, err := e.Process(f, nil)
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("got %v", err)
	}
	if te.Task != tasks.NameMKXExt || te.Cause != 42 {
		t.Fatalf("attribution %s/%v, want MKX_EXT/42", te.Task, te.Cause)
	}
}

func TestGateSuppressesTask(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 29)
	g := &gateFunc{allow: func(task tasks.Name) bool { return task != tasks.NameZOOM }}
	e.SetGate(g)
	sawSuppressed := false
	for i := 0; i < 20; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ran(tasks.NameZOOM) || rep.Output != nil {
			t.Fatalf("frame %d: gated ZOOM ran", i)
		}
		for _, name := range rep.Suppressed {
			if name == tasks.NameZOOM {
				sawSuppressed = true
			}
		}
		// Enhancement must still run whenever registration succeeds.
		if rep.Registration.OK && !rep.Ran(tasks.NameENH) {
			t.Fatalf("frame %d: ENH vanished with ZOOM gated", i)
		}
	}
	if !sawSuppressed {
		t.Fatal("suppression never recorded on a report")
	}
	// Successful gated tasks must have been recorded as ok.
	okSeen := false
	for _, r := range g.records {
		if !r.ok {
			t.Fatalf("spurious failure recorded for %s", r.task)
		}
		okSeen = true
	}
	if !okSeen {
		t.Fatal("no gate outcomes recorded")
	}
}

func TestGateRecordsFailureOnPanic(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 31)
	g := &gateFunc{}
	e.SetGate(g)
	e.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if task == tasks.NameGWExt {
			panic("gw dies")
		}
	})
	var failures int
	for i := 0; i < 15; i++ {
		f, _ := s.Frame(i)
		_, err := e.Process(f, nil)
		var te *TaskError
		if errors.As(err, &te) && te.Task != tasks.NameGWExt {
			t.Fatalf("frame %d: panic attributed to %s", i, te.Task)
		}
	}
	for _, r := range g.records {
		if r.task == tasks.NameGWExt && !r.ok {
			failures++
		}
		if r.task == tasks.NameGWExt && r.ok {
			t.Fatal("panicking GW_EXT recorded as success")
		}
	}
	if failures == 0 {
		t.Fatal("GW_EXT failures never reached the gate")
	}
}

func TestQualityShedsTasksInProcess(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 37)
	e.SetQuality(QualityNoZoom)
	if e.Quality() != QualityNoZoom {
		t.Fatal("quality not applied")
	}
	for i := 0; i < 20; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Quality != QualityNoZoom {
			t.Fatalf("frame %d: report quality %v", i, rep.Quality)
		}
		if rep.Ran(tasks.NameRDGFull) || rep.Ran(tasks.NameRDGROI) || rep.Ran(tasks.NameZOOM) {
			t.Fatalf("frame %d: shed task ran at no-zoom", i)
		}
		if rep.Output != nil {
			t.Fatalf("frame %d: zoomed output produced with ZOOM shed", i)
		}
		if rep.Registration.OK && !rep.Ran(tasks.NameENH) {
			t.Fatalf("frame %d: ENH shed (must survive every rung)", i)
		}
	}
	// Back at full quality the pipeline produces output again.
	e.SetQuality(QualityFull)
	sawOutput := false
	for i := 20; i < 45; i++ {
		f, _ := s.Frame(i)
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Output != nil {
			sawOutput = true
		}
	}
	if !sawOutput {
		t.Fatal("no output after restoring full quality")
	}
}

func TestSetQualityClamps(t *testing.T) {
	e := newEngine(t)
	e.SetQuality(Quality(-3))
	if e.Quality() != QualityFull {
		t.Fatal("negative quality not clamped")
	}
	e.SetQuality(Quality(99))
	if e.Quality() != QualityMax {
		t.Fatal("oversized quality not clamped")
	}
}

package pipeline

import (
	"triplec/internal/flowgraph"
	"triplec/internal/platform"
	"triplec/internal/tasks"
)

// NumScenarios is the number of flow-graph scenarios a CostProfile keys on
// (flowgraph.Scenario.Index() ∈ [0, NumScenarios)).
const NumScenarios = 8

// CostProfile aggregates per-frame reports into the scenario-conditioned
// demand model the mapping layer scores candidate schedules with: for every
// flow-graph scenario, its observed frequency and the mean per-frame
// resource demand (cycles + external-memory traffic) of each task. Task
// costs are mapping-independent — TaskExec.Cost records the full work before
// striping divides it — so a profile measured under one mapping predicts the
// cost of any other.
//
// The struct is all fixed-size arrays: building and folding profiles
// allocates nothing, so the steady-state demand-reporting path of the
// serving layer can carry one per frame on the stack.
type CostProfile struct {
	// Frames is the number of reports folded in.
	Frames int
	// Weight is each scenario's frequency over the profiled frames
	// (sums to 1 when Frames > 0).
	Weight [NumScenarios]float64
	// Cost is the mean per-frame resource demand of each task within a
	// scenario, indexed by [flowgraph.Scenario.Index()][tasks.IndexOf(task)].
	// A zero entry means the task does not run in that scenario.
	Cost [NumScenarios][tasks.NumNames]platform.Cost
}

// Add folds one report into the profile, maintaining per-scenario running
// means. It is allocation-free.
func (p *CostProfile) Add(r Report) {
	si := r.Scenario.Index()
	if si < 0 || si >= NumScenarios {
		return
	}
	// Scenario frequencies: running mean of the indicator vector.
	p.Frames++
	inv := 1 / float64(p.Frames)
	for s := range p.Weight {
		hit := 0.0
		if s == si {
			hit = 1
		}
		p.Weight[s] += (hit - p.Weight[s]) * inv
	}
	// Task costs: running mean within the observed scenario.
	n := p.Weight[si] * float64(p.Frames) // frames observed in scenario si
	if n <= 0 {
		return
	}
	for _, e := range r.Execs {
		ti := tasks.IndexOf(e.Task)
		if ti < 0 {
			continue
		}
		c := &p.Cost[si][ti]
		c.Cycles += (e.Cost.Cycles - c.Cycles) / n
		c.MemBytes += (e.Cost.MemBytes - c.MemBytes) / n
	}
}

// Profile builds a cost profile over a report slice (e.g. a serial
// profiling prefix — the Triple-C methodology: measure first, then commit
// resources).
func Profile(reports []Report) CostProfile {
	var p CostProfile
	for _, r := range reports {
		p.Add(r)
	}
	return p
}

// SerialMs returns the profile's scenario-weighted mean serial frame time on
// the machine: the latency of running every active task on one core.
func (p *CostProfile) SerialMs(m *platform.Machine) float64 {
	total := 0.0
	for s := range p.Weight {
		w := p.Weight[s]
		if w <= 0 {
			continue
		}
		sum := 0.0
		for ti := range p.Cost[s] {
			c := p.Cost[s][ti]
			if c.Cycles <= 0 && c.MemBytes <= 0 {
				continue
			}
			sum += m.StripedMs(c, 1)
		}
		total += w * sum
	}
	return total
}

// StageMs returns the profile's scenario-weighted mean serial stage times
// at the pipeline cut (see flowgraph.StageOf).
func (p *CostProfile) StageMs(m *platform.Machine) (frontMs, backMs float64) {
	names := tasks.AllNames()
	for s := range p.Weight {
		w := p.Weight[s]
		if w <= 0 {
			continue
		}
		for ti, name := range names {
			c := p.Cost[s][ti]
			if c.Cycles <= 0 && c.MemBytes <= 0 {
				continue
			}
			ms := m.StripedMs(c, 1)
			if flowgraph.StageOf(name) == flowgraph.StageBack {
				backMs += w * ms
			} else {
				frontMs += w * ms
			}
		}
	}
	return frontMs, backMs
}

// MemBytes returns the profile's scenario-weighted mean per-frame
// external-memory traffic — the numerator of the roofline floor.
func (p *CostProfile) MemBytes() float64 {
	total := 0.0
	for s := range p.Weight {
		w := p.Weight[s]
		if w <= 0 {
			continue
		}
		for ti := range p.Cost[s] {
			total += w * p.Cost[s][ti].MemBytes
		}
	}
	return total
}

// Fold blends a newer profile into p with EWMA factor a ∈ (0, 1] (1 replaces
// p entirely), the same smoothing the arbiter applies to scalar demands:
// scenario weights converge to the stream's recent scenario mix, and task
// costs update only for scenarios the newer profile actually observed (an
// unobserved scenario keeps its last known costs rather than decaying to
// zero — a stream revisiting a scenario should be charged its real demand,
// not an artifact of how long it stayed away). Allocation-free.
func (p *CostProfile) Fold(next *CostProfile, a float64) {
	if next.Frames == 0 {
		return
	}
	if a <= 0 || a > 1 || p.Frames == 0 {
		a = 1
	}
	for s := range p.Weight {
		p.Weight[s] = (1-a)*p.Weight[s] + a*next.Weight[s]
		if next.Weight[s] <= 0 {
			continue
		}
		for ti := range p.Cost[s] {
			nc := next.Cost[s][ti]
			if nc.Cycles <= 0 && nc.MemBytes <= 0 {
				// The task did not run in this scenario's newer frames;
				// keep the prior estimate.
				continue
			}
			c := &p.Cost[s][ti]
			c.Cycles = (1-a)*c.Cycles + a*nc.Cycles
			c.MemBytes = (1-a)*c.MemBytes + a*nc.MemBytes
		}
	}
	p.Frames += next.Frames
}

package pipeline

import (
	"runtime"
	"testing"

	"triplec/internal/frame"
)

// TestProcessSteadyStateAllocBudget pins the per-frame heap traffic of the
// steady-state pipeline. With the frame pool and the Into-kernels threaded
// through the tasks, a processed 128x128 frame (32 KB of pixels) must stay
// within a few frame-equivalents of heap traffic per frame: the escaping
// zoom output, report bookkeeping and small per-component slices. Before
// the buffer-reuse work each frame allocated every intermediate fresh
// (smoothed, response, mask, resized grids, canvas, average), i.e. many
// hundreds of KB per frame; this budget fails if that regresses.
func TestProcessSteadyStateAllocBudget(t *testing.T) {
	e := newEngine(t)
	s := testSeq(t, 3)
	const warm, measured = 12, 24

	// Pre-generate inputs so synthesis cost stays out of the measurement.
	inputs := make([]*frame.Frame, warm+measured)
	for i := range inputs {
		inputs[i], _ = s.Frame(i)
	}
	for i := 0; i < warm; i++ {
		if _, err := e.Process(inputs[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := warm; i < warm+measured; i++ {
		if _, err := e.Process(inputs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)

	perFrame := float64(after.TotalAlloc-before.TotalAlloc) / measured
	framePixelBytes := float64(e.cfg.Width * e.cfg.Height * 2)
	// Budget: three frame-equivalents per processed frame. The dominant
	// remaining allocation is the zoom output, which escapes to the caller
	// by contract; everything else is bookkeeping.
	budget := 3 * framePixelBytes
	t.Logf("steady state: %.0f bytes/frame (budget %.0f)", perFrame, budget)
	if perFrame > budget {
		t.Errorf("steady-state pipeline allocates %.0f bytes/frame, budget %.0f", perFrame, budget)
	}
}

package pipeline

import (
	"fmt"
	"runtime/debug"

	"triplec/internal/frame"
	"triplec/internal/parallel"
	"triplec/internal/span"
	"triplec/internal/tasks"
)

// This file is the engine's fault boundary: every task invocation runs
// behind a panic guard that converts a crash into a typed *TaskError (the
// frame fails, the engine survives), an injectable pre-task hook lets the
// fault layer interpose deterministically, and a TaskGate (circuit breaker)
// can suppress an optional task whose failure rate tripped its circuit.

// TaskError is a panic recovered from a task execution, converted to an
// error so one poisoned frame cannot take down the stream (let alone the
// process). Task names the task that was executing, Frame the frame index.
type TaskError struct {
	Task  tasks.Name
	Frame int
	Cause any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("pipeline: task %s panicked at frame %d: %v", e.Task, e.Frame, e.Cause)
}

// TaskGate decides per frame whether an optional task may run — the shape
// of fault.Breaker, declared here so the pipeline does not depend on the
// fault package. Allow is consulted before gated tasks only (RDG variants,
// GW_EXT, ZOOM: the tasks the flow graph stays well-formed without); Record
// feeds their outcomes back.
type TaskGate interface {
	Allow(task tasks.Name) bool
	Record(task tasks.Name, ok bool)
}

// gatedTask reports whether a task is optional enough to be suppressed by
// an open circuit: the analysis core (detection, marker extraction, couple
// selection, registration, ROI estimation, enhancement) always runs.
func gatedTask(name tasks.Name) bool {
	switch name {
	case tasks.NameRDGFull, tasks.NameRDGROI, tasks.NameGWExt, tasks.NameZOOM:
		return true
	}
	return false
}

// SetTaskHook installs a hook invoked immediately before every task
// execution with the task name and frame index — the fault injector's
// interposition point. The hook runs on the processing goroutine and may
// panic (the guard converts it to a *TaskError attributed to that task).
// A nil fn removes the hook. Same single-goroutine contract as Process.
func (e *Engine) SetTaskHook(fn func(task tasks.Name, frameIdx int)) { e.hook = fn }

// SetGate installs a circuit-breaker gate over the optional tasks. A nil
// gate removes it. Same single-goroutine contract as Process.
func (e *Engine) SetGate(g TaskGate) { e.gate = g }

// SetSpanBuilder installs the per-frame span staging buffer the engine
// records task boundaries into (BeginFrame on Process entry, task spans in
// enter/charge, suppression instants, AbortFrame on panic unwind). The
// serving layer owns the builder and commits or abandons the staged frame
// after Process returns. A nil builder removes it; every recording call is
// nil-safe and allocation-free. Same single-goroutine contract as Process.
func (e *Engine) SetSpanBuilder(b *span.FrameBuilder) { e.spans = b }

// SpanBuilder returns the installed span staging buffer, if any.
func (e *Engine) SpanBuilder() *span.FrameBuilder { return e.spans }

// SetQuality sets the engine's quality level; Process suppresses the tasks
// the level sheds (see Quality). Same single-goroutine contract as Process.
func (e *Engine) SetQuality(q Quality) {
	if q < QualityFull {
		q = QualityFull
	}
	if q > QualityMax {
		q = QualityMax
	}
	e.quality = q
}

// Quality returns the engine's current quality level.
func (e *Engine) Quality() Quality { return e.quality }

// enter marks a task as executing (for panic attribution), opens its span
// (before the hook, so an injected panic aborts an attributed open span),
// and fires the pre-task hook. The hook call is serialized across the two
// pipeline halves in pipelined mode (see callHook), so a stateful injector
// observes one task at a time exactly as under serial execution.
func (e *Engine) enter(fx *frameExec, name tasks.Name) {
	fx.inTask = name
	e.spans.BeginTask(tasks.IndexOf(name))
	if e.hook != nil {
		e.callHook(name, fx.rep.Index)
	}
}

// callHook fires the pre-task hook, holding hookMu in pipelined mode so
// hooks from the overlapping front and back halves never interleave.
func (e *Engine) callHook(name tasks.Name, frameIdx int) {
	if e.lockHooks {
		e.hookMu.Lock()
		defer e.hookMu.Unlock()
	}
	e.hook(name, frameIdx)
}

// recordGate feeds one task outcome to the gate under the same
// serialization as callHook.
func (e *Engine) recordGate(name tasks.Name, ok bool) {
	if e.lockHooks {
		e.hookMu.Lock()
		defer e.hookMu.Unlock()
	}
	e.gate.Record(name, ok)
}

// gateAllows consults the gate under the same serialization as callHook.
func (e *Engine) gateAllows(name tasks.Name) bool {
	if e.lockHooks {
		e.hookMu.Lock()
		defer e.hookMu.Unlock()
	}
	return e.gate.Allow(name)
}

// allowTask merges quality shedding and the breaker gate for one optional
// task; a suppressed task is recorded on the report.
func (e *Engine) allowTask(fx *frameExec, name tasks.Name) bool {
	if e.quality.Sheds(name) {
		fx.rep.Suppressed = append(fx.rep.Suppressed, name)
		e.spans.Suppressed(tasks.IndexOf(name))
		return false
	}
	if e.gate != nil && gatedTask(name) && !e.gateAllows(name) {
		fx.rep.Suppressed = append(fx.rep.Suppressed, name)
		e.spans.Suppressed(tasks.IndexOf(name))
		return false
	}
	return true
}

// recoverFrame is the engine's panic guard (deferred by Process, invoked
// explicitly by the pipelined executor after the window drains): it converts
// the panic to a *TaskError, feeds the failure to the gate, and resets the
// inter-frame state (the panic may have left it half-updated, so the
// temporal stack is invalidated exactly like a failed registration). The
// frame counter is NOT advanced here — begin already consumed the frame's
// index.
func (e *Engine) recoverFrame(fx *frameExec, r any, rep *Report, err *error) {
	failed := fx.inTask
	te := &TaskError{Task: failed, Frame: fx.rep.Index, Cause: r}
	if pe, ok := r.(*parallel.PanicError); ok {
		te.Cause, te.Stack = pe.Value, pe.Stack
	} else {
		te.Stack = debug.Stack()
	}
	if e.gate != nil && gatedTask(failed) {
		e.recordGate(failed, false)
	}
	e.spans.AbortFrame()
	*rep = Report{}
	*err = te
	e.prevFrame = nil
	e.prevCouple = nil
	e.prevROI = frame.Rect{}
	e.enh.Reset()
	fx.inTask = ""
}

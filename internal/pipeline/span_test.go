package pipeline

import (
	"testing"

	"triplec/internal/span"
	"triplec/internal/tasks"
)

// TestProcessStagesTaskSpans checks that an engine with a span builder
// attached stages one task span per executed task, with the modeled time
// and stripe count the report carries.
func TestProcessStagesTaskSpans(t *testing.T) {
	e := newEngine(t)
	rec := span.NewRecorder(256)
	b := span.NewFrameBuilder(rec, 0)
	e.SetSpanBuilder(b)
	if e.SpanBuilder() != b {
		t.Fatal("SpanBuilder does not return the attached builder")
	}

	seq := testSeq(t, 3)
	f, _ := seq.Frame(0)
	rep, err := e.Process(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Commit(0, rep.Scenario.Index(), int(rep.Quality), span.OutcomeProcessed,
		1, 0, rep.LatencyMs, 0)

	evs := rec.Snapshot()
	byTask := map[int32]span.Event{}
	for _, ev := range evs {
		if ev.Kind == span.KindTask {
			byTask[ev.Task] = ev
		}
	}
	if len(byTask) != len(rep.Execs) {
		t.Fatalf("staged %d task spans, report ran %d tasks", len(byTask), len(rep.Execs))
	}
	for _, ex := range rep.Execs {
		ev, ok := byTask[int32(tasks.IndexOf(ex.Task))]
		if !ok {
			t.Errorf("no span staged for task %s", ex.Task)
			continue
		}
		if ev.Arg1 != ex.Ms {
			t.Errorf("%s span actual = %v ms, report charged %v ms", ex.Task, ev.Arg1, ex.Ms)
		}
		if int(ev.Cores) != ex.Stripes {
			t.Errorf("%s span stripes = %d, report says %d", ex.Task, ev.Cores, ex.Stripes)
		}
		if ev.DurNs < 0 {
			t.Errorf("%s span has negative duration", ex.Task)
		}
	}
	if got := rec.FramesCommitted(); got != 1 {
		t.Fatalf("FramesCommitted = %d, want 1", got)
	}
}

// TestPanicAbortsAttributedSpan checks the panic path: a task hook that
// panics leaves the in-flight task span attributed, and recoverFrame
// force-closes it so the failed frame can still be committed.
func TestPanicAbortsAttributedSpan(t *testing.T) {
	e := newEngine(t)
	rec := span.NewRecorder(256)
	b := span.NewFrameBuilder(rec, 0)
	e.SetSpanBuilder(b)
	e.SetTaskHook(func(name tasks.Name, frameIdx int) {
		if name == tasks.NameDetect {
			panic("injected")
		}
	})

	seq := testSeq(t, 3)
	f, _ := seq.Frame(0)
	if _, err := e.Process(f, nil); err == nil {
		t.Fatal("injected panic did not surface as TaskError")
	}
	if !b.Open() {
		t.Fatal("frame closed by the panic; serving layer can no longer commit it")
	}
	b.Commit(0, -1, 0, span.OutcomeFailed, 1, 0, 0, 0)

	evs := rec.Snapshot()
	var panicked *span.Event
	for i := range evs {
		if evs[i].Kind == span.KindTask && evs[i].Task == int32(tasks.IndexOf(tasks.NameDetect)) {
			panicked = &evs[i]
		}
	}
	if panicked == nil {
		t.Fatal("panicking task left no attributed span")
	}
	if panicked.Arg1 != 0 {
		t.Errorf("aborted span carries modeled time %v, want 0", panicked.Arg1)
	}
	root := evs[len(evs)-1]
	if root.Kind != span.KindFrame || root.Outcome != span.OutcomeFailed {
		t.Errorf("failed frame root wrong: %+v", root)
	}
}

// TestSuppressedTasksStageInstants checks that quality shedding stages
// suppressed-task instants rather than task spans.
func TestSuppressedTasksStageInstants(t *testing.T) {
	e := newEngine(t)
	rec := span.NewRecorder(256)
	b := span.NewFrameBuilder(rec, 0)
	e.SetSpanBuilder(b)
	e.SetQuality(QualityNoZoom)

	seq := testSeq(t, 3)
	f, _ := seq.Frame(0)
	rep, err := e.Process(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suppressed) == 0 {
		t.Skip("quality rung suppressed nothing on this frame")
	}
	b.Commit(0, rep.Scenario.Index(), int(rep.Quality), span.OutcomeProcessed, 1, 0, rep.LatencyMs, 0)

	suppressed := 0
	for _, ev := range rec.Snapshot() {
		if ev.Kind == span.KindSuppressed {
			suppressed++
		}
	}
	if suppressed != len(rep.Suppressed) {
		t.Errorf("staged %d suppressed instants, report lists %d", suppressed, len(rep.Suppressed))
	}
}

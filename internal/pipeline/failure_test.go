package pipeline

import (
	"testing"

	"triplec/internal/frame"
	"triplec/internal/stats"
	"triplec/internal/tasks"
)

// Failure injection: the pipeline must stay well-defined on pathological
// inputs — black frames, saturated frames, pure noise, tiny frames — never
// panicking, never producing negative latencies, and failing registration
// gracefully instead of fabricating couples.

func pathologicalFrames(t *testing.T) map[string]*frame.Frame {
	t.Helper()
	rng := stats.NewRNG(99)
	black := frame.New(128, 128)
	white := frame.New(128, 128)
	white.Fill(0xFFFF)
	noise := frame.New(128, 128)
	for i := range noise.Pix {
		noise.Pix[i] = uint16(rng.Uint64())
	}
	gradient := frame.New(128, 128)
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			gradient.Set(x, y, uint16(x*512))
		}
	}
	checker := frame.New(128, 128)
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			if (x+y)%2 == 0 {
				checker.Set(x, y, 0xFFFF)
			}
		}
	}
	return map[string]*frame.Frame{
		"black":    black,
		"white":    white,
		"noise":    noise,
		"gradient": gradient,
		"checker":  checker,
	}
}

func TestPipelineSurvivesPathologicalFrames(t *testing.T) {
	for name, f := range pathologicalFrames(t) {
		t.Run(name, func(t *testing.T) {
			e, err := New(testConfig())
			if err != nil {
				t.Fatal(err)
			}
			// Feed the same pathological frame repeatedly: the pipeline must
			// remain stable across its own state updates.
			for i := 0; i < 5; i++ {
				rep, err := e.Process(f, nil)
				if err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				if rep.LatencyMs <= 0 {
					t.Fatalf("frame %d: non-positive latency", i)
				}
				for _, ex := range rep.Execs {
					if ex.Ms < 0 || ex.Cost.Cycles < 0 {
						t.Fatalf("frame %d: negative cost for %s", i, ex.Task)
					}
				}
			}
		})
	}
}

func TestPipelineBlackFrameNoCouple(t *testing.T) {
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	black := frame.New(128, 128)
	rep, err := e.Process(black, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Couple != nil {
		t.Fatal("black frame must not yield a marker couple")
	}
	if rep.Registration.OK {
		t.Fatal("black frame must not register")
	}
	if rep.Output != nil {
		t.Fatal("black frame must not produce enhanced output")
	}
}

func TestPipelineNoiseFramesNeverEnhanceWrongly(t *testing.T) {
	// Pure-noise frames: couples may appear by chance but the motion
	// criterion must prevent sustained enhancement of garbage.
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4242)
	enhanced := 0
	for i := 0; i < 20; i++ {
		f := frame.New(128, 128)
		for j := range f.Pix {
			f.Pix[j] = uint16(rng.Uint64())
		}
		rep, err := e.Process(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Output != nil {
			enhanced++
		}
	}
	if enhanced > 5 {
		t.Fatalf("noise frames produced %d enhanced outputs", enhanced)
	}
}

func TestPipelineAlternatingPathology(t *testing.T) {
	// Alternating between a real-looking frame and a black frame exercises
	// the state machine's recovery paths (ROI reset, enhancer reset).
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := testSeq(t, 5)
	black := frame.New(128, 128)
	for i := 0; i < 12; i++ {
		var f *frame.Frame
		if i%2 == 0 {
			f, _ = seq.Frame(i)
		} else {
			f = black
		}
		if _, err := e.Process(f, nil); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestPipelineTinyFrames(t *testing.T) {
	cfg := testConfig()
	cfg.Width, cfg.Height = 16, 16
	cfg.MarkerSpacing = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := frame.New(16, 16)
	f.Fill(30000)
	for i := 0; i < 3; i++ {
		if _, err := e.Process(f, nil); err != nil {
			t.Fatalf("tiny frame %d: %v", i, err)
		}
	}
}

func TestTasksSurvivePathologicalInputs(t *testing.T) {
	p := tasks.DefaultCostParams(128 * 128)
	rdg := tasks.NewRidgeDetector(p)
	mkx := tasks.NewMarkerExtractor(p)
	gw := tasks.NewGuideWireExtractor(p)
	for name, f := range pathologicalFrames(t) {
		t.Run(name, func(t *testing.T) {
			res, cost := rdg.Run(f)
			if cost.Cycles < 0 {
				t.Fatal("negative RDG cost")
			}
			cands, _ := mkx.Run(f, res)
			couple := &tasks.Couple{
				A: tasks.Marker{X: 10, Y: 10}, B: tasks.Marker{X: 50, Y: 50},
			}
			couple.Spacing = couple.A.Dist(couple.B)
			if r, _ := gw.Run(f, couple); r.Coverage < 0 || r.Coverage > 1 {
				t.Fatalf("GW coverage out of range: %v", r.Coverage)
			}
			_ = cands
		})
	}
}

package pipeline

import "testing"

import "triplec/internal/tasks"

func mustDegrader(t *testing.T, cfg DegraderConfig) *Degrader {
	t.Helper()
	d, err := NewDegrader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQualitySheds(t *testing.T) {
	cases := []struct {
		q    Quality
		task tasks.Name
		shed bool
	}{
		{QualityFull, tasks.NameRDGFull, false},
		{QualityFull, tasks.NameZOOM, false},
		{QualityRDGROI, tasks.NameRDGFull, true},
		{QualityRDGROI, tasks.NameRDGROI, false},
		{QualityRDGOff, tasks.NameRDGROI, true},
		{QualityRDGOff, tasks.NameZOOM, false},
		{QualityNoZoom, tasks.NameZOOM, true},
		{QualitySerial, tasks.NameZOOM, true},
		// The analysis core is never shed, even at the bottom rung.
		{QualitySerial, tasks.NameENH, false},
		{QualitySerial, tasks.NameREG, false},
		{QualitySerial, tasks.NameMKXExt, false},
	}
	for _, c := range cases {
		if got := c.q.Sheds(c.task); got != c.shed {
			t.Errorf("%v.Sheds(%s) = %v, want %v", c.q, c.task, got, c.shed)
		}
	}
	if QualityFull.ForceSerial() || QualityNoZoom.ForceSerial() {
		t.Error("non-bottom rung forces serial")
	}
	if !QualitySerial.ForceSerial() {
		t.Error("bottom rung does not force serial")
	}
}

func TestQualityString(t *testing.T) {
	for q := QualityFull; q <= QualityMax; q++ {
		if s := q.String(); s == "" || s[0] == 'q' {
			t.Errorf("rung %d has placeholder string %q", int(q), s)
		}
	}
	if Quality(99).String() != "quality(99)" {
		t.Error("out-of-range rung not labeled")
	}
}

func TestDegraderConfigValidation(t *testing.T) {
	for _, cfg := range []DegraderConfig{
		{StepDownAfter: -1},
		{StepUpAfter: -1},
		{MinDwell: -1},
	} {
		if _, err := NewDegrader(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestDegraderStepsDownAndRecovers(t *testing.T) {
	d := mustDegrader(t, DegraderConfig{StepDownAfter: 3, StepUpAfter: 5, MinDwell: 2})
	// Two bad frames: not enough.
	d.Observe(false)
	d.Observe(false)
	if d.Level() != QualityFull {
		t.Fatalf("stepped down after 2 bad frames: %v", d.Level())
	}
	// Third consecutive bad frame trips a step down.
	if !d.Observe(false) {
		t.Fatal("no transition at StepDownAfter")
	}
	if d.Level() != QualityRDGROI {
		t.Fatalf("level %v, want rdg-roi", d.Level())
	}
	// Recovery: 5 consecutive good frames step back up.
	for i := 0; i < 4; i++ {
		if d.Observe(true) {
			t.Fatalf("stepped up early at good frame %d", i+1)
		}
	}
	if !d.Observe(true) {
		t.Fatal("no step up after StepUpAfter good frames")
	}
	if d.Level() != QualityFull {
		t.Fatalf("level %v after recovery, want full", d.Level())
	}
	if d.Transitions() != 2 {
		t.Fatalf("transitions %d, want 2", d.Transitions())
	}
	// Cannot step above full.
	for i := 0; i < 20; i++ {
		d.Observe(true)
	}
	if d.Level() != QualityFull {
		t.Fatal("stepped above full")
	}
}

func TestDegraderBottomsOut(t *testing.T) {
	d := mustDegrader(t, DegraderConfig{StepDownAfter: 1, StepUpAfter: 100, MinDwell: 1})
	for i := 0; i < 50; i++ {
		d.Observe(false)
	}
	if d.Level() != QualityMax {
		t.Fatalf("level %v under sustained failure, want serial", d.Level())
	}
	if d.Transitions() != int(QualityMax) {
		t.Fatalf("transitions %d, want %d", d.Transitions(), int(QualityMax))
	}
}

func TestDegraderMinDwellDampsOscillation(t *testing.T) {
	d := mustDegrader(t, DegraderConfig{StepDownAfter: 1, StepUpAfter: 1, MinDwell: 6})
	d.Observe(false) // first transition needs no dwell
	if d.Level() != QualityRDGROI {
		t.Fatalf("level %v, want rdg-roi", d.Level())
	}
	// Alternating outcomes within the dwell window: no further transitions.
	for i := 0; i < 5; i++ {
		if d.Observe(i%2 == 0) {
			t.Fatalf("transition inside dwell window at frame %d", i)
		}
	}
	if d.Transitions() != 1 {
		t.Fatalf("transitions %d, want 1", d.Transitions())
	}
}

func TestDegraderNilSafe(t *testing.T) {
	var d *Degrader
	if d.Observe(false) || d.Level() != QualityFull || d.Transitions() != 0 {
		t.Fatal("nil degrader misbehaved")
	}
}

package pipeline

import (
	"errors"
	"fmt"

	"triplec/internal/frame"
	"triplec/internal/partition"
)

// This file is the multi-frame software-pipelined executor: frame k's back
// half (GW_EXT → ENH → ZOOM) overlaps frame k+1's front half (DETECT → …
// → ROI_EST) with a bounded window of two frames in flight — the double
// buffering the flow graph's inter-frame dependency structure admits (see
// internal/flowgraph/stages.go for why the cut sits after ROI_EST).
//
// Output equivalence: every report, scenario resolution, temporal-state
// update and fault outcome is bit-identical to processing the same frames
// serially through Process. The front half advances the analysis state
// (prevFrame/prevCouple/prevROI) and fronts are serialized; the back half
// owns the enhancer's temporal stack and backs are serialized; the frame
// buffers recycle through frame's pool exactly as in serial execution. On a
// panic in either half the window drains, the panicking frame fails with
// the same *TaskError a serial run produces, the temporal state resets, and
// the co-in-flight frame — whose front may have observed pre-reset state —
// is reprocessed serially from scratch under its original frame index.
// Equivalence around faults therefore requires the installed task hook to
// be deterministic per (task, frame) pair, which every fault injector in
// internal/fault is.

// FrameResult is one frame's outcome from the pipelined executor: exactly
// what a serial Process call for that frame would have returned.
type FrameResult struct {
	Report Report
	Err    error
}

// backOutcome carries a completed back half (and its recovered panic, if
// any) from the back goroutine to the coordinator.
type backOutcome struct {
	fx  *frameExec
	pan any
}

// RunPipelined processes frames[0..n) like RunSequence but software-
// pipelined, and returns every frame's outcome instead of aborting on the
// first failed frame (a failed frame costs that frame, not the run — the
// same contract the serving layer implements over Process). The engine's
// span builder, if any, is detached for the duration of the run: the
// builder is single-writer and the two halves would interleave task spans.
func (e *Engine) RunPipelined(n int, source func(int) *frame.Frame, m partition.Mapping) ([]FrameResult, error) {
	if n <= 0 {
		return nil, errors.New("pipeline: need at least one frame")
	}
	if source == nil {
		return nil, errors.New("pipeline: nil frame source")
	}
	spans := e.spans
	e.spans = nil
	e.lockHooks = true
	defer func() {
		e.spans = spans
		e.lockHooks = false
	}()

	results := make([]FrameResult, n)
	var inflight chan backOutcome // back half of the previous frame, if any
	inflightIdx := -1

	launchBack := func(fx *frameExec, slot int) {
		ch := make(chan backOutcome, 1)
		go func() {
			var pan any
			func() {
				defer func() { pan = recover() }()
				fx.back()
			}()
			ch <- backOutcome{fx: fx, pan: pan}
		}()
		inflight = ch
		inflightIdx = slot
	}

	// drain joins the in-flight back half and settles its frame's result.
	// It reports whether the back half panicked — in which case the engine's
	// temporal state has been reset and the caller's current frame (if any)
	// must be reprocessed from scratch.
	drain := func() bool {
		if inflight == nil {
			return false
		}
		out := <-inflight
		inflight = nil
		if out.pan != nil {
			var rep Report
			var err error
			e.recoverFrame(out.fx, out.pan, &rep, &err)
			results[inflightIdx] = FrameResult{Report: rep, Err: err}
			return true
		}
		results[inflightIdx] = FrameResult{Report: out.fx.commit()}
		return false
	}

	for i := 0; i < n; i++ {
		f := source(i)
		if f == nil {
			drain()
			return nil, fmt.Errorf("pipeline: frame %d: source returned nil frame", i)
		}
		fx, err := e.begin(f, m)
		if err != nil {
			drain()
			return nil, fmt.Errorf("pipeline: frame %d: %w", i, err)
		}
		// Run this frame's front half concurrently with the previous
		// frame's in-flight back half, capturing (not yet handling) any
		// panic: recovery resets shared temporal state, so it must wait
		// until the window has drained.
		var frontPan any
		func() {
			defer func() { frontPan = recover() }()
			fx.front()
		}()

		if drain() {
			// The previous frame's back half panicked. Serially, its
			// failure would have reset the temporal state *before* this
			// frame ran — but this frame's front already observed the
			// pre-reset state, so its work is discarded and the frame is
			// reprocessed from scratch (serial path, original index) against
			// the now-reset state. Any front panic above is moot: the
			// reprocess replays the frame, hook and all.
			results[i] = e.reprocess(fx)
			continue
		}
		if frontPan != nil {
			var rep Report
			var err error
			e.recoverFrame(fx, frontPan, &rep, &err)
			results[i] = FrameResult{Report: rep, Err: err}
			continue
		}
		launchBack(fx, i)
	}
	drain()
	return results, nil
}

// reprocess discards fx's (possibly partial) front work and re-runs its
// frame through the serial path from the engine's current post-recovery
// state, rewinding the frame counter so the report index and hook firings
// match what a serial run would have produced for this frame.
func (e *Engine) reprocess(fx *frameExec) FrameResult {
	e.frameIdx = fx.rep.Index
	rep, err := e.Process(fx.f, fx.m)
	return FrameResult{Report: rep, Err: err}
}

// RunSequencePipelined is RunPipelined with RunSequence's abort-on-error
// contract: it returns the reports of all n frames, or the first frame
// error. Fault-free workloads get the pipelined overlap with an unchanged
// call shape.
func (e *Engine) RunSequencePipelined(n int, source func(int) *frame.Frame, m partition.Mapping) ([]Report, error) {
	results, err := e.RunPipelined(n, source, m)
	if err != nil {
		return nil, err
	}
	reports := make([]Report, 0, n)
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("pipeline: frame %d: %w", i, r.Err)
		}
		reports = append(reports, r.Report)
	}
	return reports, nil
}

// Package pipeline executes the feature-enhancement flow graph frame by
// frame on the machine model: it runs the real task implementations on the
// input frames, resolves the three data-dependent switches, charges every
// task's compute cycles and cache-overflow memory traffic to the platform,
// and reports the resulting effective latency under a given partitioning.
package pipeline

import (
	"errors"
	"fmt"
	"math"

	"triplec/internal/bandwidth"
	"triplec/internal/flowgraph"
	"triplec/internal/frame"
	"triplec/internal/memmodel"
	"triplec/internal/partition"
	"triplec/internal/platform"
	"triplec/internal/span"
	"triplec/internal/tasks"
)

// Config parameterizes an Engine.
type Config struct {
	// Width, Height are the processed frame dimensions.
	Width, Height int
	// MarkerSpacing is the a-priori couple distance passed to CPLS SEL.
	MarkerSpacing float64
	// Arch is the platform the latencies are computed for.
	Arch platform.Arch
	// ModelFrameKB is the frame size used for the bandwidth/cache accounting
	// (defaults to the paper's 2,048 KB so small synthetic frames still
	// exercise the full-geometry memory behaviour, consistent with the
	// PixelScale cost extrapolation).
	ModelFrameKB int
	// FrameRate in Hz, used for throughput bookkeeping (default 30).
	FrameRate float64
	// RealStriping executes data-parallel tasks with actual goroutine
	// stripes (tasks.RidgeDetector.RunStriped) instead of only modeling the
	// striping analytically. Results are bit-identical either way; this
	// exercises the host's cores.
	RealStriping bool
}

// TaskExec records one task execution within a frame.
type TaskExec struct {
	Task    tasks.Name
	Cost    platform.Cost // cycles + external-memory traffic
	Stripes int           // cores the task was striped over
	Ms      float64       // resulting execution time
}

// Report summarizes one processed frame.
type Report struct {
	Index        int
	Scenario     flowgraph.Scenario
	Execs        []TaskExec
	LatencyMs    float64 // sum of task times along the pipeline
	Couple       *tasks.Couple
	Registration tasks.Registration
	GuideWire    tasks.GWResult
	ROI          frame.Rect // ROI estimated this frame (empty if none)
	// AnalysisPixels is the size of the region the analysis tasks ran on
	// this frame: the previous frame's ROI when known, else the full frame.
	AnalysisPixels int
	Candidates     int          // marker candidates found
	Output         *frame.Frame // zoomed enhanced output (nil unless produced)
	Mapping        partition.Mapping
	// AccountingErrs collects non-fatal bookkeeping failures (e.g. the
	// intra-task bandwidth model rejecting the configured L2 size): the
	// frame still processes, but its memory-traffic charge is incomplete
	// and downstream consumers must not treat the cost as trustworthy.
	AccountingErrs []string
	// Quality is the degradation rung the frame was processed at.
	Quality Quality
	// Suppressed lists tasks withheld this frame by the quality level or an
	// open circuit (nil when nothing was shed).
	Suppressed []tasks.Name
}

// TaskMs returns the execution time of the named task within the report, or
// 0 if the task did not run.
func (r Report) TaskMs(name tasks.Name) float64 {
	for _, e := range r.Execs {
		if e.Task == name {
			return e.Ms
		}
	}
	return 0
}

// Ran reports whether the named task executed this frame.
func (r Report) Ran(name tasks.Name) bool {
	for _, e := range r.Execs {
		if e.Task == name {
			return true
		}
	}
	return false
}

// Engine holds the task instances and the inter-frame state (previous
// couple, estimated ROI, temporal-integration stack).
//
// Concurrency contract: an Engine is owned by exactly one goroutine at a
// time. Process and RunSequence mutate the inter-frame state, so concurrent
// calls on the same Engine are a data race; calls on *distinct* Engines are
// safe to run concurrently (the constructor shares no mutable state between
// instances). The multi-stream serving layer in internal/stream relies on
// this one-engine-per-goroutine discipline.
type Engine struct {
	cfg     Config
	machine *platform.Machine
	params  tasks.CostParams

	detect *tasks.StructureDetector
	rdg    *tasks.RidgeDetector
	mkx    *tasks.MarkerExtractor
	cpls   *tasks.CouplesSelector
	reg    *tasks.Registrator
	roiEst *tasks.ROIEstimator
	gw     *tasks.GuideWireExtractor
	enh    *tasks.Enhancer
	zoom   *tasks.Zoomer

	frameIdx   int
	prevFrame  *frame.Frame
	prevCouple *tasks.Couple
	prevROI    frame.Rect

	observer func(Report)
	spans    *span.FrameBuilder // per-frame span staging; nil-safe when unset

	// Fault boundary (see guard.go / degrade.go).
	hook    func(task tasks.Name, frameIdx int)
	gate    TaskGate
	quality Quality
	inTask  tasks.Name // task currently executing, for panic attribution
}

// New builds an engine for the given configuration.
func New(cfg Config) (*Engine, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, errors.New("pipeline: invalid frame dimensions")
	}
	if cfg.MarkerSpacing <= 0 || math.IsNaN(cfg.MarkerSpacing) {
		return nil, errors.New("pipeline: marker spacing must be positive")
	}
	if cfg.ModelFrameKB < 0 {
		return nil, fmt.Errorf("pipeline: model frame size %d KB is negative", cfg.ModelFrameKB)
	}
	if cfg.ModelFrameKB == 0 {
		cfg.ModelFrameKB = memmodel.PaperFrameKB
	}
	if cfg.FrameRate < 0 || math.IsNaN(cfg.FrameRate) {
		return nil, fmt.Errorf("pipeline: frame rate %v Hz is invalid", cfg.FrameRate)
	}
	if cfg.FrameRate == 0 {
		cfg.FrameRate = 30
	}
	machine, err := platform.NewMachine(cfg.Arch)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	p := tasks.DefaultCostParams(cfg.Width * cfg.Height)
	e := &Engine{
		cfg:     cfg,
		machine: machine,
		params:  p,
		detect:  tasks.NewStructureDetector(p),
		rdg:     tasks.NewRidgeDetector(p),
		mkx:     tasks.NewMarkerExtractor(p),
		cpls:    tasks.NewCouplesSelector(cfg.MarkerSpacing, p),
		reg:     tasks.NewRegistrator(p),
		roiEst:  tasks.NewROIEstimator(p),
		gw:      tasks.NewGuideWireExtractor(p),
		// The paper's ENH works at full-frame granularity (Table 2b: 24 ms,
		// Table 1: 8 MB intermediate); the canvas therefore matches the
		// frame size.
		enh:  tasks.NewEnhancer(cfg.Width, cfg.Height, p),
		zoom: tasks.NewZoomer(cfg.Width, cfg.Height, p),
	}
	return e, nil
}

// Machine exposes the engine's machine model.
func (e *Engine) Machine() *platform.Machine { return e.machine }

// Config returns the engine's effective configuration (defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// SetObserver installs a per-frame telemetry hook invoked at the end of
// every successful Process with the frame's report, on the processing
// goroutine, before Process returns. The report is passed by value so the
// hook cannot retain engine state; the hook must not call back into the
// engine (same single-goroutine contract as Process). A nil fn removes the
// hook.
func (e *Engine) SetObserver(fn func(Report)) { e.observer = fn }

// Params exposes the calibrated cost parameters.
func (e *Engine) Params() tasks.CostParams { return e.params }

// Reset clears the inter-frame state.
func (e *Engine) Reset() {
	e.frameIdx = 0
	e.prevFrame = nil
	e.prevCouple = nil
	e.prevROI = frame.Rect{}
	e.enh.Reset()
}

// charge computes a task's execution time under the mapping and appends the
// record to the report.
func (e *Engine) charge(rep *Report, name tasks.Name, cost platform.Cost, rdgOn bool, m partition.Mapping) {
	// Add the intra-task external-memory traffic from the cache analysis at
	// the modeled geometry.
	kb, err := bandwidth.IntraTaskKB(name, rdgOn, e.cfg.ModelFrameKB, e.cfg.Arch.L2.SizeBytes/1024)
	if err == nil {
		cost.MemBytes += float64(kb) * 1024
	} else {
		rep.AccountingErrs = append(rep.AccountingErrs,
			fmt.Sprintf("%s: bandwidth accounting: %v", name, err))
	}
	k := m.StripesFor(name)
	ms := e.machine.StripedMs(cost, k)
	rep.Execs = append(rep.Execs, TaskExec{Task: name, Cost: cost, Stripes: k, Ms: ms})
	rep.LatencyMs += ms
	e.spans.EndTask(ms, k)
	// Reaching charge means the task completed: feed the breaker a success
	// (failures are recorded by recoverFrame before the charge is reached).
	if e.gate != nil && gatedTask(name) {
		e.gate.Record(name, true)
	}
}

// Process runs one frame through the flow graph under the given mapping and
// returns the per-frame report. The mapping must validate against the
// engine's architecture.
//
// A panic inside a task (or the installed task hook) does not escape: it is
// recovered into a *TaskError, the frame fails, and the engine resets its
// inter-frame state so the next frame starts from a clean temporal stack.
func (e *Engine) Process(f *frame.Frame, m partition.Mapping) (rep Report, err error) {
	if f == nil || f.Pixels() == 0 {
		return Report{}, errors.New("pipeline: empty frame")
	}
	if m == nil {
		m = partition.Serial()
	}
	if err := m.Validate(e.cfg.Arch.NumCPUs); err != nil {
		return Report{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			e.recoverFrame(r, &rep, &err)
		}
	}()
	e.spans.BeginFrame(e.frameIdx)
	// Nine task slots at most (detect, rdg, mkx, cpls, reg, roi, gw, enh,
	// zoom); preallocating keeps the per-frame loop free of append growth.
	rep = Report{Index: e.frameIdx, Mapping: m, Quality: e.quality, Execs: make([]TaskExec, 0, 9)}
	bounds := f.Bounds

	// Switch 1: are dominant structures present (is RDG required)?
	e.enter(tasks.NameDetect)
	rdgOn, dCost := e.detect.Run(f)
	e.charge(&rep, tasks.NameDetect, dCost, rdgOn, m)

	// Granularity: ROI processing when the previous frame estimated one.
	roiKnown := !e.prevROI.Empty()
	analysis := f
	if roiKnown {
		analysis = f.SubFrame(e.prevROI)
	}
	rep.AnalysisPixels = analysis.Pixels()

	// RDG variant per switch 1 and the granularity; the variant may be shed
	// by the quality level or an open circuit (MKX then runs unfiltered on
	// the analysis region, exactly the RDG-off path of the flow graph).
	var ridge *tasks.RidgeResult
	if rdgOn {
		name := tasks.NameRDGFull
		if roiKnown {
			name = tasks.NameRDGROI
		}
		if e.allowTask(&rep, name) {
			e.enter(name)
			var rCost platform.Cost
			if k := m.StripesFor(name); e.cfg.RealStriping && k > 1 {
				ridge, rCost = e.rdg.RunStriped(analysis, k)
			} else {
				ridge, rCost = e.rdg.Run(analysis)
			}
			e.charge(&rep, name, rCost, rdgOn, m)
		}
	}

	// Marker extraction and couples selection.
	e.enter(tasks.NameMKXExt)
	cands, mCost := e.mkx.Run(analysis, ridge)
	e.charge(&rep, tasks.NameMKXExt, mCost, rdgOn, m)
	rep.Candidates = len(cands)
	if ridge != nil {
		// The ridge frames only feed MKX within this frame; recycle them.
		frame.Release(ridge.Response)
		frame.Release(ridge.Mask)
		ridge.Response, ridge.Mask = nil, nil
	}

	e.enter(tasks.NameCPLSSel)
	couple, cCost := e.cpls.Run(cands)
	e.charge(&rep, tasks.NameCPLSSel, cCost, rdgOn, m)
	rep.Couple = couple

	// Temporal registration against the previous frame (switch 3 input).
	e.enter(tasks.NameREG)
	reg, gCost := e.reg.Run(e.prevFrame, f, e.prevCouple, couple)
	e.charge(&rep, tasks.NameREG, gCost, rdgOn, m)
	rep.Registration = reg

	newROI := frame.Rect{}
	if reg.OK {
		// ROI estimation, guide-wire verification, enhancement, zoom.
		e.enter(tasks.NameROIEst)
		var roiCost platform.Cost
		newROI, roiCost = e.roiEst.Run(couple, bounds)
		e.charge(&rep, tasks.NameROIEst, roiCost, rdgOn, m)
		rep.ROI = newROI

		if e.allowTask(&rep, tasks.NameGWExt) {
			e.enter(tasks.NameGWExt)
			var gwCost platform.Cost
			rep.GuideWire, gwCost = e.gw.Run(f, couple)
			e.charge(&rep, tasks.NameGWExt, gwCost, rdgOn, m)
		}

		e.enter(tasks.NameENH)
		enhanced, eCost := e.enh.Run(f, couple)
		e.charge(&rep, tasks.NameENH, eCost, rdgOn, m)

		if e.allowTask(&rep, tasks.NameZOOM) {
			e.enter(tasks.NameZOOM)
			out, zCost := e.zoom.Run(enhanced)
			e.charge(&rep, tasks.NameZOOM, zCost, rdgOn, m)
			rep.Output = out
		}
	} else {
		// A broken registration invalidates the temporal stack.
		e.enh.Reset()
	}

	rep.Scenario = flowgraph.Scenario{RDGOn: rdgOn, ROIKnown: roiKnown, RegSuccess: reg.OK}

	// Advance inter-frame state.
	e.inTask = ""
	e.frameIdx++
	e.prevFrame = f
	if couple != nil {
		e.prevCouple = couple
	} else {
		e.prevCouple = nil
	}
	e.prevROI = newROI
	if e.observer != nil {
		e.observer(rep)
	}
	return rep, nil
}

// RunSequence processes frames[0..n) from a frame source function under a
// fixed mapping and returns all reports.
func (e *Engine) RunSequence(n int, source func(int) *frame.Frame, m partition.Mapping) ([]Report, error) {
	if n <= 0 {
		return nil, errors.New("pipeline: need at least one frame")
	}
	if source == nil {
		return nil, errors.New("pipeline: nil frame source")
	}
	reports := make([]Report, 0, n)
	for i := 0; i < n; i++ {
		f := source(i)
		if f == nil {
			return nil, fmt.Errorf("pipeline: frame %d: source returned nil frame", i)
		}
		rep, err := e.Process(f, m)
		if err != nil {
			return nil, fmt.Errorf("pipeline: frame %d: %w", i, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// Latencies extracts the per-frame latency series from reports.
func Latencies(reports []Report) []float64 {
	out := make([]float64, len(reports))
	for i, r := range reports {
		out[i] = r.LatencyMs
	}
	return out
}

// TaskSeries extracts the execution-time series of one task across reports;
// frames where the task did not run contribute no sample. The returned
// indices identify the source frames.
func TaskSeries(reports []Report, name tasks.Name) (values []float64, indices []int) {
	for _, r := range reports {
		for _, e := range r.Execs {
			if e.Task == name {
				values = append(values, e.Ms)
				indices = append(indices, r.Index)
			}
		}
	}
	return values, indices
}

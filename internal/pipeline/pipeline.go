// Package pipeline executes the feature-enhancement flow graph frame by
// frame on the machine model: it runs the real task implementations on the
// input frames, resolves the three data-dependent switches, charges every
// task's compute cycles and cache-overflow memory traffic to the platform,
// and reports the resulting effective latency under a given partitioning.
package pipeline

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"triplec/internal/bandwidth"
	"triplec/internal/flowgraph"
	"triplec/internal/frame"
	"triplec/internal/memmodel"
	"triplec/internal/parallel"
	"triplec/internal/partition"
	"triplec/internal/platform"
	"triplec/internal/span"
	"triplec/internal/tasks"
)

// Config parameterizes an Engine.
type Config struct {
	// Width, Height are the processed frame dimensions.
	Width, Height int
	// MarkerSpacing is the a-priori couple distance passed to CPLS SEL.
	MarkerSpacing float64
	// Arch is the platform the latencies are computed for.
	Arch platform.Arch
	// ModelFrameKB is the frame size used for the bandwidth/cache accounting
	// (defaults to the paper's 2,048 KB so small synthetic frames still
	// exercise the full-geometry memory behaviour, consistent with the
	// PixelScale cost extrapolation).
	ModelFrameKB int
	// FrameRate in Hz, used for throughput bookkeeping (default 30).
	FrameRate float64
	// RealStriping executes data-parallel tasks with actual goroutine
	// stripes (tasks.RidgeDetector.RunStriped) instead of only modeling the
	// striping analytically. Results are bit-identical either way; this
	// exercises the host's cores.
	RealStriping bool
}

// TaskExec records one task execution within a frame.
type TaskExec struct {
	Task    tasks.Name
	Cost    platform.Cost // cycles + external-memory traffic
	Stripes int           // cores the task was striped over
	Ms      float64       // resulting execution time
}

// Report summarizes one processed frame.
type Report struct {
	Index        int
	Scenario     flowgraph.Scenario
	Execs        []TaskExec
	LatencyMs    float64 // sum of task times along the pipeline
	Couple       *tasks.Couple
	Registration tasks.Registration
	GuideWire    tasks.GWResult
	ROI          frame.Rect // ROI estimated this frame (empty if none)
	// AnalysisPixels is the size of the region the analysis tasks ran on
	// this frame: the previous frame's ROI when known, else the full frame.
	AnalysisPixels int
	Candidates     int          // marker candidates found
	Output         *frame.Frame // zoomed enhanced output (nil unless produced)
	Mapping        partition.Mapping
	// AccountingErrs collects non-fatal bookkeeping failures (e.g. the
	// intra-task bandwidth model rejecting the configured L2 size): the
	// frame still processes, but its memory-traffic charge is incomplete
	// and downstream consumers must not treat the cost as trustworthy.
	AccountingErrs []string
	// Quality is the degradation rung the frame was processed at.
	Quality Quality
	// Suppressed lists tasks withheld this frame by the quality level or an
	// open circuit (nil when nothing was shed).
	Suppressed []tasks.Name
}

// TaskMs returns the execution time of the named task within the report, or
// 0 if the task did not run.
func (r Report) TaskMs(name tasks.Name) float64 {
	for _, e := range r.Execs {
		if e.Task == name {
			return e.Ms
		}
	}
	return 0
}

// Ran reports whether the named task executed this frame.
func (r Report) Ran(name tasks.Name) bool {
	for _, e := range r.Execs {
		if e.Task == name {
			return true
		}
	}
	return false
}

// StageMs returns the report's summed task time per pipeline stage: the
// front half (everything through ROI estimation — the producers of the
// inter-frame state the next frame's analysis consumes) and the back half
// (guide-wire extraction, enhancement, zoom). frontMs+backMs == LatencyMs.
func (r Report) StageMs() (frontMs, backMs float64) {
	for _, e := range r.Execs {
		if flowgraph.StageOf(e.Task) == flowgraph.StageBack {
			backMs += e.Ms
		} else {
			frontMs += e.Ms
		}
	}
	return frontMs, backMs
}

// Engine holds the task instances and the inter-frame state (previous
// couple, estimated ROI, temporal-integration stack).
//
// Concurrency contract: an Engine is owned by exactly one goroutine at a
// time. Process and RunSequence mutate the inter-frame state, so concurrent
// calls on the same Engine are a data race; calls on *distinct* Engines are
// safe to run concurrently (the constructor shares no mutable state between
// instances). The multi-stream serving layer in internal/stream relies on
// this one-engine-per-goroutine discipline. RunPipelined (pipelined.go) is
// the one sanctioned exception: it overlaps the back half of frame k with
// the front half of frame k+1 on an internal goroutine, partitioning the
// engine's state between the halves and serializing the shared fault
// boundary (hook/gate) behind hookMu.
type Engine struct {
	cfg     Config
	machine *platform.Machine
	params  tasks.CostParams

	detect *tasks.StructureDetector
	rdg    *tasks.RidgeDetector
	mkx    *tasks.MarkerExtractor
	cpls   *tasks.CouplesSelector
	reg    *tasks.Registrator
	roiEst *tasks.ROIEstimator
	gw     *tasks.GuideWireExtractor
	enh    *tasks.Enhancer
	zoom   *tasks.Zoomer

	frameIdx   int
	prevFrame  *frame.Frame
	prevCouple *tasks.Couple
	prevROI    frame.Rect

	observer func(Report)
	spans    *span.FrameBuilder // per-frame span staging; nil-safe when unset
	workers  *parallel.Pool     // shared striping pool (SetWorkers); nil = private goroutines

	// Fault boundary (see guard.go / degrade.go).
	hook      func(task tasks.Name, frameIdx int)
	gate      TaskGate
	quality   Quality
	hookMu    sync.Mutex // serializes hook/gate calls across pipeline halves
	lockHooks bool       // true only inside RunPipelined
}

// frameExec is one frame's in-flight execution state, threaded through the
// begin → front → back → commit stages. The serial Process runs all four on
// one goroutine; the pipelined executor hands the frameExec from the front
// goroutine to the back goroutine (with a happens-before edge), so every
// field is only ever touched by one goroutine at a time. Keeping the
// per-frame state here — instead of on the Engine — is what lets two frames
// be in flight at once: the Engine retains only the temporal state (prev*,
// the enhancer stack, the frame counter), each with a single owning stage.
type frameExec struct {
	e *Engine
	f *frame.Frame
	m partition.Mapping

	rep      Report
	bounds   frame.Rect
	rdgOn    bool
	roiKnown bool
	couple   *tasks.Couple
	regOK    bool
	newROI   frame.Rect
	inTask   tasks.Name // task currently executing, for panic attribution
}

// New builds an engine for the given configuration.
func New(cfg Config) (*Engine, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, errors.New("pipeline: invalid frame dimensions")
	}
	if cfg.MarkerSpacing <= 0 || math.IsNaN(cfg.MarkerSpacing) {
		return nil, errors.New("pipeline: marker spacing must be positive")
	}
	if cfg.ModelFrameKB < 0 {
		return nil, fmt.Errorf("pipeline: model frame size %d KB is negative", cfg.ModelFrameKB)
	}
	if cfg.ModelFrameKB == 0 {
		cfg.ModelFrameKB = memmodel.PaperFrameKB
	}
	if cfg.FrameRate < 0 || math.IsNaN(cfg.FrameRate) {
		return nil, fmt.Errorf("pipeline: frame rate %v Hz is invalid", cfg.FrameRate)
	}
	if cfg.FrameRate == 0 {
		cfg.FrameRate = 30
	}
	machine, err := platform.NewMachine(cfg.Arch)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	p := tasks.DefaultCostParams(cfg.Width * cfg.Height)
	e := &Engine{
		cfg:     cfg,
		machine: machine,
		params:  p,
		detect:  tasks.NewStructureDetector(p),
		rdg:     tasks.NewRidgeDetector(p),
		mkx:     tasks.NewMarkerExtractor(p),
		cpls:    tasks.NewCouplesSelector(cfg.MarkerSpacing, p),
		reg:     tasks.NewRegistrator(p),
		roiEst:  tasks.NewROIEstimator(p),
		gw:      tasks.NewGuideWireExtractor(p),
		// The paper's ENH works at full-frame granularity (Table 2b: 24 ms,
		// Table 1: 8 MB intermediate); the canvas therefore matches the
		// frame size.
		enh:  tasks.NewEnhancer(cfg.Width, cfg.Height, p),
		zoom: tasks.NewZoomer(cfg.Width, cfg.Height, p),
	}
	return e, nil
}

// Machine exposes the engine's machine model.
func (e *Engine) Machine() *platform.Machine { return e.machine }

// Config returns the engine's effective configuration (defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// SetObserver installs a per-frame telemetry hook invoked at the end of
// every successful Process with the frame's report, on the processing
// goroutine, before Process returns. The report is passed by value so the
// hook cannot retain engine state; the hook must not call back into the
// engine (same single-goroutine contract as Process). A nil fn removes the
// hook.
func (e *Engine) SetObserver(fn func(Report)) { e.observer = fn }

// SetWorkers installs a shared worker pool for the engine's real striping:
// with a pool set, RealStriping task executions run their stripes on the
// pool's workers (parallel.StripesOn) instead of spawning fresh goroutines,
// so independent streams batching stripes through one pool share the host's
// fixed concurrency. A nil pool restores private goroutines. Same
// single-goroutine contract as Process.
func (e *Engine) SetWorkers(p *parallel.Pool) { e.workers = p }

// Params exposes the calibrated cost parameters.
func (e *Engine) Params() tasks.CostParams { return e.params }

// Reset clears the inter-frame state.
func (e *Engine) Reset() {
	e.frameIdx = 0
	e.prevFrame = nil
	e.prevCouple = nil
	e.prevROI = frame.Rect{}
	e.enh.Reset()
}

// charge computes a task's execution time under the mapping and appends the
// record to the frame's report.
func (e *Engine) charge(fx *frameExec, name tasks.Name, cost platform.Cost) {
	// Add the intra-task external-memory traffic from the cache analysis at
	// the modeled geometry.
	kb, err := bandwidth.IntraTaskKB(name, fx.rdgOn, e.cfg.ModelFrameKB, e.cfg.Arch.L2.SizeBytes/1024)
	if err == nil {
		cost.MemBytes += float64(kb) * 1024
	} else {
		fx.rep.AccountingErrs = append(fx.rep.AccountingErrs,
			fmt.Sprintf("%s: bandwidth accounting: %v", name, err))
	}
	k := fx.m.StripesFor(name)
	ms := e.machine.StripedMs(cost, k)
	fx.rep.Execs = append(fx.rep.Execs, TaskExec{Task: name, Cost: cost, Stripes: k, Ms: ms})
	fx.rep.LatencyMs += ms
	e.spans.EndTask(ms, k)
	// Reaching charge means the task completed: feed the breaker a success
	// (failures are recorded by recoverFrame before the charge is reached).
	if e.gate != nil && gatedTask(name) {
		e.recordGate(name, true)
	}
}

// begin validates the inputs, opens the frame's span, and allocates the
// frame's execution state. The frame counter advances here — before the
// tasks run — so the pipelined executor can begin frame k+1 while frame k's
// back half is still in flight; a failed frame still consumes its index,
// exactly as the serial accounting always did.
func (e *Engine) begin(f *frame.Frame, m partition.Mapping) (*frameExec, error) {
	if f == nil || f.Pixels() == 0 {
		return nil, errors.New("pipeline: empty frame")
	}
	if m == nil {
		m = partition.Serial()
	}
	if err := m.Validate(e.cfg.Arch.NumCPUs); err != nil {
		return nil, err
	}
	e.spans.BeginFrame(e.frameIdx)
	fx := &frameExec{
		e:      e,
		f:      f,
		m:      m,
		bounds: f.Bounds,
		// Nine task slots at most (detect, rdg, mkx, cpls, reg, roi, gw,
		// enh, zoom); preallocating keeps the per-frame loop free of append
		// growth.
		rep: Report{Index: e.frameIdx, Mapping: m, Quality: e.quality, Execs: make([]TaskExec, 0, 9)},
	}
	e.frameIdx++
	return fx, nil
}

// front runs the frame's front-stage tasks — DETECT through ROI_EST, the
// producers of every piece of inter-frame state the *next* frame's analysis
// consumes — and advances that state (prevFrame/prevCouple/prevROI) on
// return. Once front returns, the next frame's front may start even while
// this frame's back half is still running.
func (fx *frameExec) front() {
	e := fx.e
	f := fx.f

	// Switch 1: are dominant structures present (is RDG required)?
	e.enter(fx, tasks.NameDetect)
	rdgOn, dCost := e.detect.Run(f)
	fx.rdgOn = rdgOn
	e.charge(fx, tasks.NameDetect, dCost)

	// Granularity: ROI processing when the previous frame estimated one.
	fx.roiKnown = !e.prevROI.Empty()
	analysis := f
	if fx.roiKnown {
		analysis = f.SubFrame(e.prevROI)
	}
	fx.rep.AnalysisPixels = analysis.Pixels()

	// RDG variant per switch 1 and the granularity; the variant may be shed
	// by the quality level or an open circuit (MKX then runs unfiltered on
	// the analysis region, exactly the RDG-off path of the flow graph).
	var ridge *tasks.RidgeResult
	if rdgOn {
		name := tasks.NameRDGFull
		if fx.roiKnown {
			name = tasks.NameRDGROI
		}
		if e.allowTask(fx, name) {
			e.enter(fx, name)
			var rCost platform.Cost
			if k := fx.m.StripesFor(name); e.cfg.RealStriping && k > 1 {
				ridge, rCost = e.rdg.RunStripedOn(e.workers, analysis, k)
			} else {
				ridge, rCost = e.rdg.Run(analysis)
			}
			e.charge(fx, name, rCost)
		}
	}

	// Marker extraction and couples selection.
	e.enter(fx, tasks.NameMKXExt)
	cands, mCost := e.mkx.Run(analysis, ridge)
	e.charge(fx, tasks.NameMKXExt, mCost)
	fx.rep.Candidates = len(cands)
	if ridge != nil {
		// The ridge frames only feed MKX within this frame; recycle them.
		frame.Release(ridge.Response)
		frame.Release(ridge.Mask)
		ridge.Response, ridge.Mask = nil, nil
	}

	e.enter(fx, tasks.NameCPLSSel)
	couple, cCost := e.cpls.Run(cands)
	e.charge(fx, tasks.NameCPLSSel, cCost)
	fx.rep.Couple = couple
	fx.couple = couple

	// Temporal registration against the previous frame (switch 3 input).
	e.enter(fx, tasks.NameREG)
	reg, gCost := e.reg.Run(e.prevFrame, f, e.prevCouple, couple)
	e.charge(fx, tasks.NameREG, gCost)
	fx.rep.Registration = reg
	fx.regOK = reg.OK

	if reg.OK {
		// ROI estimation stays in the front half even though it runs after
		// registration: the next frame's analysis granularity is this ROI.
		e.enter(fx, tasks.NameROIEst)
		var roiCost platform.Cost
		fx.newROI, roiCost = e.roiEst.Run(couple, fx.bounds)
		e.charge(fx, tasks.NameROIEst, roiCost)
		fx.rep.ROI = fx.newROI
	}

	// Advance the inter-frame analysis state: this is the registration
	// dependency edge the pipeline is bounded by, so it must happen at the
	// end of the front half, not after the back half.
	e.prevFrame = f
	if couple != nil {
		e.prevCouple = couple
	} else {
		e.prevCouple = nil
	}
	e.prevROI = fx.newROI
}

// back runs the frame's back-stage tasks — guide-wire extraction,
// enhancement, zoom — which feed nothing into the next frame's front half.
// The enhancer's temporal stack is back-stage state: consecutive backs are
// serialized, so its updates (including the reset on a failed registration)
// stay ordered even when this back overlaps the next frame's front.
func (fx *frameExec) back() {
	e := fx.e
	if !fx.regOK {
		// A broken registration invalidates the temporal stack.
		e.enh.Reset()
		return
	}
	if e.allowTask(fx, tasks.NameGWExt) {
		e.enter(fx, tasks.NameGWExt)
		var gwCost platform.Cost
		fx.rep.GuideWire, gwCost = e.gw.Run(fx.f, fx.couple)
		e.charge(fx, tasks.NameGWExt, gwCost)
	}

	e.enter(fx, tasks.NameENH)
	enhanced, eCost := e.enh.Run(fx.f, fx.couple)
	e.charge(fx, tasks.NameENH, eCost)

	if e.allowTask(fx, tasks.NameZOOM) {
		e.enter(fx, tasks.NameZOOM)
		out, zCost := e.zoom.Run(enhanced)
		e.charge(fx, tasks.NameZOOM, zCost)
		fx.rep.Output = out
	}
}

// commit finalizes the frame's report and fires the observer. It runs on
// the coordinating goroutine in both the serial and the pipelined executor.
func (fx *frameExec) commit() Report {
	fx.rep.Scenario = flowgraph.Scenario{RDGOn: fx.rdgOn, ROIKnown: fx.roiKnown, RegSuccess: fx.regOK}
	fx.inTask = ""
	if fx.e.observer != nil {
		fx.e.observer(fx.rep)
	}
	return fx.rep
}

// Process runs one frame through the flow graph under the given mapping and
// returns the per-frame report. The mapping must validate against the
// engine's architecture.
//
// A panic inside a task (or the installed task hook) does not escape: it is
// recovered into a *TaskError, the frame fails, and the engine resets its
// inter-frame state so the next frame starts from a clean temporal stack.
func (e *Engine) Process(f *frame.Frame, m partition.Mapping) (rep Report, err error) {
	fx, err := e.begin(f, m)
	if err != nil {
		return Report{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			e.recoverFrame(fx, r, &rep, &err)
		}
	}()
	fx.front()
	fx.back()
	return fx.commit(), nil
}

// RunSequence processes frames[0..n) from a frame source function under a
// fixed mapping and returns all reports.
func (e *Engine) RunSequence(n int, source func(int) *frame.Frame, m partition.Mapping) ([]Report, error) {
	if n <= 0 {
		return nil, errors.New("pipeline: need at least one frame")
	}
	if source == nil {
		return nil, errors.New("pipeline: nil frame source")
	}
	reports := make([]Report, 0, n)
	for i := 0; i < n; i++ {
		f := source(i)
		if f == nil {
			return nil, fmt.Errorf("pipeline: frame %d: source returned nil frame", i)
		}
		rep, err := e.Process(f, m)
		if err != nil {
			return nil, fmt.Errorf("pipeline: frame %d: %w", i, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// Latencies extracts the per-frame latency series from reports.
func Latencies(reports []Report) []float64 {
	out := make([]float64, len(reports))
	for i, r := range reports {
		out[i] = r.LatencyMs
	}
	return out
}

// TaskSeries extracts the execution-time series of one task across reports;
// frames where the task did not run contribute no sample. The returned
// indices identify the source frames.
func TaskSeries(reports []Report, name tasks.Name) (values []float64, indices []int) {
	for _, r := range reports {
		for _, e := range r.Execs {
			if e.Task == name {
				values = append(values, e.Ms)
				indices = append(indices, r.Index)
			}
		}
	}
	return values, indices
}

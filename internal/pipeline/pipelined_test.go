package pipeline

import (
	"errors"
	"reflect"
	"testing"

	"triplec/internal/frame"
	"triplec/internal/parallel"
	"triplec/internal/partition"
	"triplec/internal/tasks"
)

// goldenFrames pre-renders a shared, read-only frame slice so the serial
// and pipelined engines consume bit-identical inputs.
func goldenFrames(t *testing.T, seed uint64, n int) []*frame.Frame {
	t.Helper()
	s := testSeq(t, seed)
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i], _ = s.Frame(i)
	}
	return out
}

// runSerialGolden processes the frames through the serial path with the
// serving layer's one-failed-frame-costs-one-frame contract.
func runSerialGolden(e *Engine, frames []*frame.Frame, m partition.Mapping) []FrameResult {
	out := make([]FrameResult, len(frames))
	for i, f := range frames {
		rep, err := e.Process(f, m)
		out[i] = FrameResult{Report: rep, Err: err}
	}
	return out
}

func sameFrame(a, b *frame.Frame) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Bounds != b.Bounds || len(a.Pix) != len(b.Pix) {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

// assertSameResults compares every frame outcome bit-for-bit: reports,
// scenarios, task charges, output pixels, and fault attribution.
func assertSameResults(t *testing.T, serial, pipelined []FrameResult) {
	t.Helper()
	if len(serial) != len(pipelined) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(pipelined))
	}
	for i := range serial {
		s, p := serial[i], pipelined[i]
		if (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("frame %d: serial err %v, pipelined err %v", i, s.Err, p.Err)
		}
		if s.Err != nil {
			var st, pt *TaskError
			if !errors.As(s.Err, &st) || !errors.As(p.Err, &pt) {
				t.Fatalf("frame %d: non-TaskError failures %v / %v", i, s.Err, p.Err)
			}
			if st.Task != pt.Task || st.Frame != pt.Frame {
				t.Fatalf("frame %d: fault attribution differs: serial %s@%d, pipelined %s@%d",
					i, st.Task, st.Frame, pt.Task, pt.Frame)
			}
			continue
		}
		sr, pr := s.Report, p.Report
		if sr.Index != pr.Index || sr.Scenario != pr.Scenario {
			t.Fatalf("frame %d: index/scenario differ: %d %v vs %d %v",
				i, sr.Index, sr.Scenario, pr.Index, pr.Scenario)
		}
		if sr.LatencyMs != pr.LatencyMs || sr.AnalysisPixels != pr.AnalysisPixels ||
			sr.Candidates != pr.Candidates || sr.ROI != pr.ROI || sr.Quality != pr.Quality {
			t.Fatalf("frame %d: report scalars differ:\nserial    %+v\npipelined %+v", i, sr, pr)
		}
		if !reflect.DeepEqual(sr.Execs, pr.Execs) {
			t.Fatalf("frame %d: task execs differ:\nserial    %+v\npipelined %+v", i, sr.Execs, pr.Execs)
		}
		if !reflect.DeepEqual(sr.Registration, pr.Registration) ||
			!reflect.DeepEqual(sr.GuideWire, pr.GuideWire) ||
			!reflect.DeepEqual(sr.Couple, pr.Couple) ||
			!reflect.DeepEqual(sr.Suppressed, pr.Suppressed) {
			t.Fatalf("frame %d: task results differ", i)
		}
		if !sameFrame(sr.Output, pr.Output) {
			t.Fatalf("frame %d: output pixels differ", i)
		}
	}
}

// The pipelined executor must be bit-identical to serial execution on a
// clean run: same reports, same scenarios, same output pixels.
func TestPipelinedGoldenEqualsSerial(t *testing.T) {
	const n = 40
	frames := goldenFrames(t, 7, n)
	serialRes := runSerialGolden(newEngine(t), frames, nil)
	pipeRes, err := newEngine(t).RunPipelined(n, func(i int) *frame.Frame { return frames[i] }, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, serialRes, pipeRes)
}

// Bit-identity must also hold around faults injected mid-window, in both
// halves: a back-half panic with the next frame's front already in flight,
// and a front-half panic with the previous back in flight.
func TestPipelinedGoldenEqualsSerialWithFaults(t *testing.T) {
	const n = 40
	frames := goldenFrames(t, 11, n)
	// Deterministic per (task, frame) — the pipelined executor's documented
	// requirement. Frames 9/17 fault in the back half (ENH, ZOOM), frames
	// 13/25 in the front half (MKX, REG), frame 26 immediately after a
	// recovery.
	hook := func(task tasks.Name, frameIdx int) {
		switch {
		case frameIdx == 9 && task == tasks.NameENH,
			frameIdx == 17 && task == tasks.NameZOOM,
			frameIdx == 13 && task == tasks.NameMKXExt,
			frameIdx == 25 && task == tasks.NameREG,
			frameIdx == 26 && task == tasks.NameDetect:
			panic("injected")
		}
	}
	se := newEngine(t)
	se.SetTaskHook(hook)
	serialRes := runSerialGolden(se, frames, nil)
	failures := 0
	for _, r := range serialRes {
		if r.Err != nil {
			failures++
		}
	}
	if failures != 5 {
		t.Fatalf("serial run hit %d faults, want 5 (fixture drift)", failures)
	}

	pe := newEngine(t)
	pe.SetTaskHook(hook)
	pipeRes, err := pe.RunPipelined(n, func(i int) *frame.Frame { return frames[i] }, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, serialRes, pipeRes)
}

// RunSequencePipelined keeps RunSequence's abort-on-error contract and its
// report shape on clean runs.
func TestRunSequencePipelinedMatchesRunSequence(t *testing.T) {
	const n = 25
	frames := goldenFrames(t, 19, n)
	src := func(i int) *frame.Frame { return frames[i] }
	want, err := newEngine(t).RunSequence(n, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := newEngine(t).RunSequencePipelined(n, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Scenario != got[i].Scenario || want[i].LatencyMs != got[i].LatencyMs {
			t.Fatalf("frame %d diverges", i)
		}
	}
}

func TestRunPipelinedValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := e.RunPipelined(0, func(int) *frame.Frame { return nil }, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := e.RunPipelined(3, nil, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	frames := goldenFrames(t, 3, 2)
	if _, err := e.RunPipelined(3, func(i int) *frame.Frame {
		if i >= 2 {
			return nil
		}
		return frames[i]
	}, nil); err == nil {
		t.Fatal("nil mid-run frame accepted")
	}
	// The engine survives and the span builder is restored for serial use.
	if _, err := e.Process(frames[0], nil); err != nil {
		t.Fatalf("engine unusable after aborted pipelined run: %v", err)
	}
}

// Stress the overlap under -race: real striping on a shared pool, a gate, a
// stateless injected fault pattern, and a hook that hammers the fault
// boundary from both halves. Run with -race this is the pipelining data-race
// regression test.
func TestPipelinedFaultStress(t *testing.T) {
	const n = 60
	frames := goldenFrames(t, 23, n)
	cfg := testConfig()
	cfg.RealStriping = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.NewPool(4)
	defer pool.Close()
	e.SetWorkers(pool)
	e.SetTaskHook(func(task tasks.Name, frameIdx int) {
		// Deterministic per (task, frame): fault scattered across both
		// stages, including consecutive frames (mid-window recoveries).
		if (frameIdx*31+int(tasks.IndexOf(task)))%17 == 5 {
			panic("stress")
		}
	})
	m := partition.Mapping{tasks.NameRDGFull: 4, tasks.NameRDGROI: 2}
	results, err := e.RunPipelined(n, func(i int) *frame.Frame { return frames[i] }, m)
	if err != nil {
		t.Fatal(err)
	}
	processed, failed := 0, 0
	for i, r := range results {
		if r.Err != nil {
			failed++
			continue
		}
		processed++
		if r.Report.Index != i {
			t.Fatalf("result %d carries report index %d", i, r.Report.Index)
		}
	}
	if processed == 0 || failed == 0 {
		t.Fatalf("stress run degenerate: %d processed, %d failed", processed, failed)
	}
	// The same faults through the serial path must match — the stress
	// pattern is part of the golden contract too.
	se, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se.SetWorkers(pool)
	se.SetTaskHook(func(task tasks.Name, frameIdx int) {
		if (frameIdx*31+int(tasks.IndexOf(task)))%17 == 5 {
			panic("stress")
		}
	})
	assertSameResults(t, runSerialGolden(se, frames, m), results)
}

package promote

import (
	"bytes"
	"strings"
	"testing"

	"triplec/internal/core"
	"triplec/internal/experiments"
	"triplec/internal/fault"
	"triplec/internal/flowgraph"
	"triplec/internal/sched"
	"triplec/internal/shadow"
)

func TestNewControllerRejectsBaselineChallenger(t *testing.T) {
	if _, err := NewController(Config{Challenger: core.BackendBaseline}); err == nil {
		t.Fatal("controller accepted the deployed baseline as its own challenger")
	}
}

func TestParseStateRoundTrip(t *testing.T) {
	for st := StateShadow; st <= StateQuarantined; st++ {
		got, err := ParseState(st.String())
		if err != nil || got != st {
			t.Fatalf("ParseState(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseState("limbo"); err == nil {
		t.Fatal("unknown state parsed")
	}
}

// TestReplayMiscalDeterministicRollback is the forced-rollback drill plus
// the determinism contract in one replay pair: the same seed and fault
// schedule must produce byte-identical transition logs across two runs, the
// miscalibrated challenger must never end the run promoted, and the
// rollback must land within one rebalance interval with a healthy
// post-rollback miss rate.
func TestReplayMiscalDeterministicRollback(t *testing.T) {
	cfg := ReplayConfig{
		Streams:      2,
		Frames:       200,
		Miscalibrate: true,
		// Mild ambient spikes: enough to exercise the fault schedule in the
		// determinism contract without drowning the post-rollback miss rate
		// (spikes are environmental and keep firing after the rollback).
		Fault: &fault.Config{
			Seed:     99,
			Defaults: fault.Probs{Spike: 0.01},
			SpikeMs:  25,
		},
	}
	run := func() (*ReplayResult, string) {
		var log bytes.Buffer
		res, _, err := Replay(cfg, &log)
		if err != nil {
			t.Fatal(err)
		}
		return res, log.String()
	}
	res, log1 := run()
	_, log2 := run()

	if log1 != log2 {
		t.Fatalf("transition logs differ between identical runs:\n--- run 1:\n%s--- run 2:\n%s", log1, log2)
	}
	if log1 == "" {
		t.Fatal("no transitions logged: the miscalibrated challenger was never canaried")
	}
	if len(res.Transitions) == 0 {
		t.Fatal("empty transition slice")
	}
	first := res.Transitions[0]
	if first.From != StateShadow || first.To != StateCanary || first.Backend != shadow.BackendMiscal {
		t.Fatalf("first transition %+v, want shadow -> canary of %s", first, shadow.BackendMiscal)
	}
	if res.FinalState == StatePromoted || res.FinalState == StateShadow {
		t.Fatalf("final state %s: the miscalibrated challenger was never caught", res.FinalState)
	}
	caught := false
	for _, tr := range res.Transitions {
		if tr.To == StateRolledBack || tr.To == StateQuarantined {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatal("no rollback or quarantine in the transition log")
	}
	if res.RollbackFrame < 0 {
		t.Fatal("replay did not record the rollback frame")
	}
	// Rollback must complete within one rebalance interval (the serving
	// layer's default is 4 demand reports); the controller un-steers every
	// manager synchronously, so the observed lag is zero serving steps.
	if res.RollbackLagFrames < 0 || res.RollbackLagFrames > 4 {
		t.Fatalf("rollback re-steer lag %d serving steps, want within one rebalance interval (≤ 4)",
			res.RollbackLagFrames)
	}
	// Post-rollback the fleet plans from the baseline again: the miss rate
	// must sit below the guard that triggered the rollback.
	if rate := res.PostRollbackMissRate(); res.PostRollbackFrames > 16 && rate >= 0.25 {
		t.Fatalf("post-rollback miss rate %.3f over %d frames, want below the 0.25 guard",
			rate, res.PostRollbackFrames)
	}
}

// TestStatRingPercentile pins the adaptive-guard history ring: bounded
// retention, interpolated order statistics, degenerate sizes.
func TestStatRingPercentile(t *testing.T) {
	var r statRing
	r.k = 4
	if got := r.percentile(0.5); got != 0 {
		t.Fatalf("empty ring percentile = %v, want 0", got)
	}
	r.push(0.3)
	if got := r.percentile(0.95); got != 0.3 {
		t.Fatalf("single-entry p95 = %v, want 0.3", got)
	}
	// Push past capacity: only the last 4 values (0.2 0.4 0.6 0.8) survive.
	for _, v := range []float64{0.9, 0.2, 0.4, 0.6, 0.8} {
		r.push(v)
	}
	if r.n != 4 {
		t.Fatalf("ring kept %d entries, want 4", r.n)
	}
	if got := r.percentile(0); got != 0.2 {
		t.Fatalf("p0 = %v, want 0.2", got)
	}
	if got := r.percentile(1); got != 0.8 {
		t.Fatalf("p100 = %v, want 0.8", got)
	}
	if got, want := r.percentile(0.5), 0.5; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
}

// TestAdaptiveGuardsMiscalRollback runs the forced-rollback drill with
// baseline-derived guardrails: the canary must wait for the baseline
// history to warm up, the derived thresholds must appear in the canary
// transition reason, the miscalibrated challenger must still be caught,
// the breach reason must be tagged baseline-derived, and the whole thing
// must stay byte-deterministic.
func TestAdaptiveGuardsMiscalRollback(t *testing.T) {
	cfg := ReplayConfig{
		Streams:      2,
		Frames:       240,
		Miscalibrate: true,
		Promote:      Config{AdaptiveGuards: true},
	}
	run := func() (*ReplayResult, *Controller, string) {
		var log bytes.Buffer
		res, ctl, err := Replay(cfg, &log)
		if err != nil {
			t.Fatal(err)
		}
		return res, ctl, log.String()
	}
	res, ctl, log1 := run()
	_, _, log2 := run()
	if log1 != log2 {
		t.Fatalf("adaptive transition logs differ between identical runs:\n--- run 1:\n%s--- run 2:\n%s", log1, log2)
	}
	if len(res.Transitions) == 0 {
		t.Fatal("no transitions: the named challenger was never canaried")
	}
	first := res.Transitions[0]
	if first.From != StateShadow || first.To != StateCanary {
		t.Fatalf("first transition %+v, want shadow -> canary", first)
	}
	// Canary entry is gated on two folded 64-frame baseline windows.
	if first.Frame < 2*guardWindow {
		t.Fatalf("canary at fleet frame %d, before the %d-frame baseline warmup", first.Frame, 2*guardWindow)
	}
	if !strings.Contains(first.Reason, "adaptive guards over") {
		t.Fatalf("canary reason %q does not carry the derived thresholds", first.Reason)
	}
	if res.FinalState == StatePromoted || res.FinalState == StateShadow {
		t.Fatalf("final state %s: the miscalibrated challenger slipped past the adaptive guards", res.FinalState)
	}
	tagged := false
	for _, tr := range res.Transitions {
		if (tr.To == StateRolledBack || tr.To == StateQuarantined) &&
			strings.Contains(tr.Reason, "(baseline-derived)") {
			tagged = true
			break
		}
	}
	if !tagged {
		t.Fatalf("no rollback with a baseline-derived breach reason in:\n%s", log1)
	}
	st := ctl.Status()
	if st.GuardMode != "adaptive" {
		t.Fatalf("status guard_mode %q, want adaptive", st.GuardMode)
	}
	if !st.Guards.Ready || st.Guards.Windows < 2 {
		t.Fatalf("status guards not ready after the drill: %+v", st.Guards)
	}
	if st.Guards.MinHitRate <= 0 {
		t.Fatalf("derived scenario-hit floor %v, want > 0 (the baseline hits most scenarios)", st.Guards.MinHitRate)
	}
}

// exactBackend forecasts the observation it last saw — a perfectly
// calibrated challenger for exercising the steady canary path.
type exactBackend struct {
	name string
	pred core.FramePrediction
}

func (e *exactBackend) Name() string { return e.name }

func (e *exactBackend) Observe(obs *core.FrameObs) {
	e.pred = core.FramePrediction{
		Scenario: obs.Scenario,
		Mask:     obs.Mask,
		TaskMs:   obs.TaskMs,
		TotalMs:  obs.TotalMs,
	}
}

func (e *exactBackend) Predict(dst *core.FramePrediction) { *dst = e.pred }

func (e *exactBackend) Reset() { e.pred = core.FramePrediction{} }

// TestCanaryObservationPathAllocFree pins the controller's steady-state
// per-frame work — board scoring feeding observeScores, plus the served
// deadline outcome — at zero allocations while a canary is live.
func TestCanaryObservationPathAllocFree(t *testing.T) {
	study := experiments.DefaultStudy()
	study.FrameW, study.FrameH = 96, 96
	study.TrainSeqs = 2
	study.TrainFrames = 30
	p, err := study.TrainPredictor()
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := sched.NewManager(p, study.Arch)
	if err != nil {
		t.Fatal(err)
	}
	board, err := shadow.NewBoard("pin", []core.Backend{
		&exactBackend{name: core.BackendBaseline},
		&exactBackend{name: "challenger"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(Config{
		Challenger:   "challenger",
		CanaryFrames: 1 << 20, // hold the canary open for the whole pin
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachStream("pin", board, mgr); err != nil {
		t.Fatal(err)
	}

	obs := core.FrameObs{
		Scenario:    flowgraph.WorstCase(),
		TotalMs:     10,
		FramePixels: 100,
		Mask:        1,
	}
	obs.TaskMs[0] = 10
	// Warm up: prime the forecasts and take the shadow -> canary transition
	// (which appends to the log) outside the measured window.
	for i := 0; i < 8; i++ {
		board.ObserveFrame(&obs)
		ctl.ObserveServed(0, false)
	}
	if st := ctl.State(); st != StateCanary {
		t.Fatalf("controller in %s after warmup, want canary", st)
	}
	allocs := testing.AllocsPerRun(300, func() {
		board.ObserveFrame(&obs)
		ctl.ObserveServed(0, false)
	})
	if allocs != 0 {
		t.Fatalf("canary observation path allocates %.1f times per frame, want 0", allocs)
	}
	if st := ctl.State(); st != StateCanary {
		t.Fatalf("controller left canary during the pin: %s", st)
	}
}

// TestStreamPredictorSteering: the per-stream predictor identity follows
// the canary assignment and snaps back to the baseline on rollback.
func TestStreamPredictorSteering(t *testing.T) {
	var res *ReplayResult
	var ctl *Controller
	var err error
	res, ctl, err = Replay(ReplayConfig{Streams: 2, Frames: 60, Miscalibrate: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RollbackFrame < 0 {
		t.Fatalf("expected a rollback within 60 frames, final state %s", res.FinalStateS)
	}
	// After the rollback every stream must be back on the baseline.
	if st := ctl.State(); st == StateCanary || st == StatePromoted {
		t.Fatalf("still steering after the drill: %s", st)
	}
	for i := 0; i < res.Streams; i++ {
		if got := ctl.StreamPredictor(i); got != core.BackendBaseline {
			t.Fatalf("stream %d predictor %q after rollback, want %q", i, got, core.BackendBaseline)
		}
	}
}

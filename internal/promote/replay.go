package promote

import (
	"errors"
	"fmt"
	"io"
	"time"

	"triplec/internal/core"
	"triplec/internal/experiments"
	"triplec/internal/fault"
	"triplec/internal/frame"
	"triplec/internal/partition"
	"triplec/internal/pipeline"
	"triplec/internal/sched"
	"triplec/internal/shadow"
	"triplec/internal/tasks"
)

// Replay runs the full promotion state machine over a recorded synthetic
// trace deterministically: every stream is served round-robin from a single
// goroutine, the fault injector's spikes are overlaid onto the modeled
// frame latency instead of sleeping on the wall clock, and the transition
// log is written as transitions happen — so two runs with the same
// ReplayConfig produce byte-identical logs. This is the `triplec promote`
// subcommand's engine and the determinism/rollback-latency test bed.

// ReplayConfig parameterizes a deterministic promotion replay.
type ReplayConfig struct {
	Streams int    // concurrent streams (default 2)
	Frames  int    // frames per stream (default 240)
	Seed    uint64 // synthetic-sequence base seed (default 11)
	Train   int    // training sequences (default 2)
	// BudgetMs fixes the per-frame latency budget; 0 initializes it from
	// each stream's first processed frame (the paper's rule).
	BudgetMs float64
	// Miscalibrate appends the deliberately miscalibrated challenger
	// (shadow.BackendMiscal) to every roster and names it the challenger —
	// the forced-rollback drill.
	Miscalibrate bool
	// MiscalFactor scales the miscalibrated challenger's forecasts
	// (default 0.25: plans sized for a quarter of the true demand).
	MiscalFactor float64
	// Promote tunes the controller. Challenger is overridden to
	// shadow.BackendMiscal when Miscalibrate is set.
	Promote Config
	// Fault, when set, injects deterministic faults on every stream; spike
	// durations are added to the modeled frame latency (no wall-clock
	// sleeps), panics fail the frame like the serving layer does.
	Fault *fault.Config
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Streams <= 0 {
		c.Streams = 2
	}
	if c.Frames <= 0 {
		c.Frames = 240
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Train <= 0 {
		c.Train = 2
	}
	if c.MiscalFactor <= 0 {
		c.MiscalFactor = 0.25
	}
	return c
}

// ReplayResult summarizes a replay.
type ReplayResult struct {
	FinalState  State        `json:"-"`
	FinalStateS string       `json:"final_state"`
	Transitions []Transition `json:"transitions"`
	Streams     int          `json:"streams"`
	Frames      int          `json:"frames"`
	Processed   int          `json:"processed"`
	Failed      int          `json:"failed"`
	Misses      int          `json:"misses"`
	// RollbackFrame is the fleet scored-frame count at the first rollback
	// (or quarantine), -1 when none happened.
	RollbackFrame int `json:"rollback_frame"`
	// RollbackLagFrames counts how many further per-stream serving steps
	// ran before every manager reported the baseline demand source again
	// (-1 when no rollback; 0 = instant, always ≤ one rebalance interval).
	RollbackLagFrames int `json:"rollback_lag_frames"`
	// PostRollbackMisses/Frames cover every frame served after the first
	// rollback, fleet-wide.
	PostRollbackMisses int `json:"post_rollback_misses"`
	PostRollbackFrames int `json:"post_rollback_frames"`
}

// PostRollbackMissRate is the fleet deadline-miss rate after the first
// rollback (0 when no frames followed it).
func (r *ReplayResult) PostRollbackMissRate() float64 {
	if r.PostRollbackFrames == 0 {
		return 0
	}
	return float64(r.PostRollbackMisses) / float64(r.PostRollbackFrames)
}

// replayStream is one stream's serving state in the round-robin loop.
type replayStream struct {
	eng       *pipeline.Engine
	mgr       *sched.Manager
	board     *shadow.Board
	src       func(int) *frame.Frame
	obs       core.FrameObs
	processed int
}

// Replay builds the fleet, runs the state machine over frames*streams
// serving steps and returns the result plus the controller. Transition-log
// lines stream to logW as they happen (pass io.Discard to skip).
func Replay(cfg ReplayConfig, logW io.Writer) (*ReplayResult, *Controller, error) {
	cfg = cfg.withDefaults()
	if logW == nil {
		logW = io.Discard
	}

	study := experiments.DefaultStudy()
	study.TrainSeqs = cfg.Train
	study.TrainFrames = 60
	fp := study.FramePixels()

	train, err := study.TrainingSets()
	if err != nil {
		return nil, nil, err
	}

	pcfg := cfg.Promote
	if cfg.Miscalibrate {
		pcfg.Challenger = shadow.BackendMiscal
	}
	ctl, err := NewController(pcfg)
	if err != nil {
		return nil, nil, err
	}

	// Fault plan: spikes accumulate into a per-stream latency overlay
	// instead of sleeping, so the replay is wall-clock free and the
	// "latency" a spiked frame is judged on is the modeled time plus the
	// injected spike — exactly what the guardrails must catch.
	spikeOverlay := make([]float64, cfg.Streams)
	var baseInj *fault.Injector
	if cfg.Fault != nil {
		baseInj, err = fault.New(*cfg.Fault)
		if err != nil {
			return nil, nil, err
		}
		spikeMs := cfg.Fault.SpikeMs
		if spikeMs == 0 {
			spikeMs = 25 // the injector's own default
		}
		baseInj.SetSleep(func(time.Duration) {})
		baseInj.SetOnFault(func(si int, _ tasks.Name, _ int, kind fault.Kind) {
			if kind == fault.KindSpike && si >= 0 && si < len(spikeOverlay) {
				spikeOverlay[si] += spikeMs
			}
		})
	}

	streams := make([]*replayStream, cfg.Streams)
	for i := range streams {
		p, err := study.TrainPredictor()
		if err != nil {
			return nil, nil, err
		}
		mgr, err := sched.NewManager(p, study.Arch)
		if err != nil {
			return nil, nil, err
		}
		mgr.Sticky = true
		mgr.BudgetMs = cfg.BudgetMs
		eng, err := study.Engine()
		if err != nil {
			return nil, nil, err
		}
		seq, err := study.Sequence(cfg.Seed + uint64(i)*1013)
		if err != nil {
			return nil, nil, err
		}
		src := experiments.Source(seq)
		if baseInj != nil {
			inj := baseInj.ForStream(i)
			eng.SetTaskHook(inj.BeforeTask)
			src = inj.WrapSource(src)
		}
		backends, err := shadow.TrainBackends(p, train, core.TrainConfig{})
		if err != nil {
			return nil, nil, err
		}
		if cfg.Miscalibrate {
			inner, err := shadow.TrainBackends(p, train, core.TrainConfig{})
			if err != nil {
				return nil, nil, err
			}
			backends = append(backends, shadow.NewMiscalibrated(inner[0], cfg.MiscalFactor))
		}
		board, err := shadow.NewBoard(fmt.Sprintf("stream%d", i), backends)
		if err != nil {
			return nil, nil, err
		}
		streams[i] = &replayStream{eng: eng, mgr: mgr, board: board, src: src}
		if err := ctl.AttachStream(board.Stream(), board, mgr); err != nil {
			return nil, nil, err
		}
	}
	var logErr error
	ctl.SetOnTransition(func(t Transition) {
		if _, err := fmt.Fprintln(logW, t.String()); err != nil && logErr == nil {
			logErr = err
		}
	})

	res := &ReplayResult{
		Streams:           cfg.Streams,
		Frames:            cfg.Frames,
		RollbackFrame:     -1,
		RollbackLagFrames: -1,
	}
	seenTransitions := 0
	rolledBack := false
	pendingLag := false
	lagSteps := 0

	for fi := 0; fi < cfg.Frames; fi++ {
		for si, st := range streams {
			var dec sched.Decision
			if st.processed == 0 {
				dec = sched.Decision{Mapping: partition.Serial()}
			} else {
				dec = st.mgr.Plan()
			}
			spikeOverlay[si] = 0
			f := st.src(fi)
			if f == nil {
				return nil, nil, fmt.Errorf("promote: stream %d frame %d: nil source frame", si, fi)
			}
			rep, perr := st.eng.Process(f, dec.Mapping)
			if perr != nil {
				var te *pipeline.TaskError
				if errors.As(perr, &te) {
					res.Failed++
					if rolledBack {
						res.PostRollbackFrames++
					}
					continue
				}
				return nil, nil, fmt.Errorf("promote: stream %d frame %d: %w", si, fi, perr)
			}
			if st.processed == 0 && st.mgr.BudgetMs <= 0 {
				st.mgr.InitBudget(rep.LatencyMs)
			}
			st.processed++
			res.Processed++
			st.mgr.Observe(core.FromReports([]pipeline.Report{rep}, fp)[0])
			core.DenseFromReport(&rep, fp, &st.obs)
			st.board.ObserveFrame(&st.obs) // drives the controller via the board observer
			lat := rep.LatencyMs + spikeOverlay[si]
			missed := st.mgr.BudgetMs > 0 && lat > st.mgr.BudgetMs
			if missed {
				res.Misses++
			}
			ctl.ObserveServed(si, missed)
			if rolledBack {
				res.PostRollbackFrames++
				if missed {
					res.PostRollbackMisses++
				}
			}

			// Rollback-latency accounting: after the first rollback, count
			// serving steps until every manager plans from the baseline again.
			if ts := ctl.Transitions(); len(ts) > seenTransitions {
				for _, t := range ts[seenTransitions:] {
					if !rolledBack && (t.To == StateRolledBack || t.To == StateQuarantined) {
						rolledBack = true
						pendingLag = true
						lagSteps = 0
						res.RollbackFrame = int(t.Frame)
					}
				}
				seenTransitions = len(ts)
			}
			if pendingLag {
				allBaseline := true
				for _, other := range streams {
					if other.mgr.DemandSourceName() != core.BackendBaseline {
						allBaseline = false
						break
					}
				}
				if allBaseline {
					res.RollbackLagFrames = lagSteps
					pendingLag = false
				} else {
					lagSteps++
				}
			}
		}
	}
	if logErr != nil {
		return nil, nil, logErr
	}
	res.FinalState = ctl.State()
	res.FinalStateS = res.FinalState.String()
	res.Transitions = ctl.Transitions()
	return res, ctl, nil
}
